type category = Hw | Sw_dp | Sw_imu | Sw_app | Sw_os

let categories = [ Hw; Sw_dp; Sw_imu; Sw_app; Sw_os ]

let category_name = function
  | Hw -> "HW"
  | Sw_dp -> "SW(DP)"
  | Sw_imu -> "SW(IMU)"
  | Sw_app -> "SW(app)"
  | Sw_os -> "SW(OS)"

let index = function Hw -> 0 | Sw_dp -> 1 | Sw_imu -> 2 | Sw_app -> 3 | Sw_os -> 4

type t = { mutable ledger : Rvi_sim.Simtime.t array }

let create () = { ledger = Array.make 5 Rvi_sim.Simtime.zero }

let add t cat d =
  let i = index cat in
  t.ledger.(i) <- Rvi_sim.Simtime.add t.ledger.(i) d

let get t cat = t.ledger.(index cat)

let total t =
  Array.fold_left Rvi_sim.Simtime.add Rvi_sim.Simtime.zero t.ledger

let reset t = t.ledger <- Array.make 5 Rvi_sim.Simtime.zero

let fraction t cat =
  let tot = Rvi_sim.Simtime.to_ps (total t) in
  if tot = 0 then 0.0
  else float_of_int (Rvi_sim.Simtime.to_ps (get t cat)) /. float_of_int tot

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun c ->
      Format.fprintf ppf "%-8s %a@," (category_name c) Rvi_sim.Simtime.pp
        (get t c))
    categories;
  Format.fprintf ppf "total    %a@]" Rvi_sim.Simtime.pp (total t)
