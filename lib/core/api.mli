(** The OS coprocessor invocation services (paper §3.1, Figure 6).

    Three system calls are provided to software designers:

    - [FPGA_LOAD] loads a coprocessor definition in the reconfigurable
      hardware and ensures exclusive use of the resource;
    - [FPGA_MAP_OBJECT] declares a data object (identifier, pointer, size,
      direction flags) for which the OS will provide dynamic allocation;
    - [FPGA_EXECUTE] passes scalar parameters, initialises the IMU,
      launches the coprocessor and puts the caller to interruptible sleep.

    [install] registers the handlers on the kernel's syscall table; the
    [fpga_*] functions below are the user-side stubs (what the C library
    would provide), going through the full syscall path with its entry and
    exit costs. An application written against these five calls — see
    {!page-examples} — contains no platform detail at all. *)

type t

val install : kernel:Rvi_os.Kernel.t -> vim:Vim.t -> pld:Rvi_fpga.Pld.t -> t
(** Registers [FPGA_LOAD] / [FPGA_MAP_OBJECT] / [FPGA_EXECUTE] /
    [FPGA_UNLOAD] on the kernel. Raises [Invalid_argument] if called twice
    on one kernel. *)

val vim : t -> Vim.t
val pld : t -> Rvi_fpga.Pld.t

(** {1 User-side stubs} *)

val fpga_load : t -> Rvi_fpga.Bitstream.t -> (unit, Rvi_os.Syscall.errno) result

val fpga_map_object :
  t ->
  id:int ->
  buf:Rvi_os.Uspace.buf ->
  dir:Mapped_object.direction ->
  ?stream:bool ->
  unit ->
  (unit, Rvi_os.Syscall.errno) result

val fpga_execute : t -> params:int list -> (unit, Rvi_os.Syscall.errno) result

val fpga_unload : t -> (unit, Rvi_os.Syscall.errno) result
(** Releases the lattice and forgets the object mappings. *)

val last_error : t -> string option
(** Human-readable detail of the most recent kernel-side failure. *)

val last_transient : t -> bool
(** Whether the most recent [FPGA_EXECUTE] failure classified
    {!Vim.Transient} — i.e. a clean re-execution (or the software
    fallback) may still deliver the result. The runner's retry/degrade
    ladder keys on this rather than on the errno, so translation modes
    with their own transient error set (SVA walk failures) recover the
    same way paper mode does. *)

val reset : t -> unit
(** Platform pooling: forgets user-side bit-stream registrations (handle
    numbering restarts from 1, so a pooled run issues the same syscall
    arguments as a fresh platform) and clears {!last_error}. *)
