test/test_mem.ml: Alcotest Bytes Char QCheck QCheck_alcotest Rvi_mem Rvi_sim
