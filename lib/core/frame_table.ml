type slot =
  | Free
  | Param
  | Held of { obj_id : int; vpn : int; loaded_at : int }

type t = {
  slots : slot array;
  pinned : bool array; (* wired frames: never eviction victims *)
}

let create ~frames =
  if frames < 1 then invalid_arg "Frame_table.create: need at least one frame";
  { slots = Array.make frames Free; pinned = Array.make frames false }

let frames t = Array.length t.slots

let check t frame op =
  if frame < 0 || frame >= frames t then
    invalid_arg (Printf.sprintf "Frame_table.%s: frame %d out of range" op frame)

let slot t ~frame =
  check t frame "slot";
  t.slots.(frame)

let find t ~obj_id ~vpn =
  let rec go i =
    if i >= frames t then None
    else
      match t.slots.(i) with
      | Held h when h.obj_id = obj_id && h.vpn = vpn -> Some i
      | Held _ | Free | Param -> go (i + 1)
  in
  go 0

let resident t =
  let acc = ref [] in
  for i = frames t - 1 downto 0 do
    match t.slots.(i) with
    | Held h -> acc := (i, h.obj_id, h.vpn) :: !acc
    | Free | Param -> ()
  done;
  !acc

let free_frame t =
  let rec go i =
    if i >= frames t then None
    else match t.slots.(i) with Free -> Some i | Param | Held _ -> go (i + 1)
  in
  go 0

let hold t ~frame ~obj_id ~vpn ~loaded_at =
  check t frame "hold";
  (match t.slots.(frame) with
  | Free -> ()
  | Param | Held _ -> invalid_arg "Frame_table.hold: frame not free");
  (match find t ~obj_id ~vpn with
  | Some other ->
    invalid_arg
      (Printf.sprintf "Frame_table.hold: object %d page %d already in frame %d"
         obj_id vpn other)
  | None -> ());
  t.slots.(frame) <- Held { obj_id; vpn; loaded_at }

let set_param t ~frame =
  check t frame "set_param";
  (match t.slots.(frame) with
  | Free -> ()
  | Param | Held _ -> invalid_arg "Frame_table.set_param: frame not free");
  t.slots.(frame) <- Param

let param_frame t =
  let rec go i =
    if i >= frames t then None
    else match t.slots.(i) with Param -> Some i | Free | Held _ -> go (i + 1)
  in
  go 0

let wire t ~frame =
  check t frame "wire";
  (match t.slots.(frame) with
  | Free -> invalid_arg "Frame_table.wire: cannot wire a free frame"
  | Param | Held _ -> ());
  t.pinned.(frame) <- true

let unwire t ~frame =
  check t frame "unwire";
  t.pinned.(frame) <- false

(* The parameter-passing page is wired by construction: while it is live
   the coprocessor may read parameters from it at any time, so it must
   never be an eviction victim. (The explicit param-recycling path goes
   through [release], which clears the slot first.) *)
let wired t ~frame =
  check t frame "wired";
  t.pinned.(frame) || t.slots.(frame) = Param

let release t ~frame =
  check t frame "release";
  t.slots.(frame) <- Free;
  t.pinned.(frame) <- false

let release_all t =
  Array.fill t.slots 0 (frames t) Free;
  Array.fill t.pinned 0 (frames t) false

(* Context save/restore for tenant preemption: slots are immutable
   variants, so a shallow array copy is a complete snapshot. *)

type image = { i_slots : slot array; i_pinned : bool array }

let save t = { i_slots = Array.copy t.slots; i_pinned = Array.copy t.pinned }

let restore t img =
  if Array.length img.i_slots <> frames t then
    invalid_arg "Frame_table.restore: image from a different geometry";
  Array.blit img.i_slots 0 t.slots 0 (frames t);
  Array.blit img.i_pinned 0 t.pinned 0 (frames t)

let held_count t =
  Array.fold_left
    (fun acc s -> match s with Held _ -> acc + 1 | Free | Param -> acc)
    0 t.slots
