(** Finite-state-machine scaffolding.

    A thin layer over {!Reg} that names the machine, exposes the current
    state during the compute phase, and renders states for waveform and log
    output. Coprocessor and IMU control paths are written as [Fsm]s. *)

type 'a t

val create : name:string -> init:'a -> show:('a -> string) -> 'a t

val state : 'a t -> 'a
(** Committed (pre-edge) state — what combinational logic sees. *)

val goto : 'a t -> 'a -> unit
(** Selects the state entered at the next commit. *)

val stay : 'a t -> unit
(** Explicitly keep the current state (equivalent to [goto m (state m)]). *)

val commit : 'a t -> unit

val reset : 'a t -> 'a -> unit

val fast_forward : 'a t -> transitions:int -> 'a -> unit
(** [fast_forward m ~transitions s] applies the aggregate effect of a
    skipped idle span in one step: the machine lands in [s] (both register
    views, as between edges) and {!transitions} is advanced by the number
    of state-changing commits the span would have performed. Used by
    components implementing the {!Rvi_sim.Clock.component} [skip]
    contract for countdown states. *)

val name : 'a t -> string

val show : 'a t -> string
(** Rendering of the committed state. *)

val transitions : 'a t -> int
(** Number of commits that changed the state (machine activity measure). *)
