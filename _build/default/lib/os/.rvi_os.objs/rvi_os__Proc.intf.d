lib/os/proc.mli: Format
