lib/fpga/pld.mli: Bitstream Device Format
