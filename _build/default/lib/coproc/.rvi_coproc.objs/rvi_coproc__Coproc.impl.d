lib/coproc/coproc.ml: Rvi_sim
