lib/core/frame_table.ml: Array Printf
