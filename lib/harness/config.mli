(** System configuration for a reproduction run.

    Bundles everything that varies across the paper's experiments and our
    ablations: the device (hence dual-port RAM geometry), the replacement
    policy, the transfer mode, prefetching, the IMU variant and the TLB
    size. Policies carry state, so the configuration stores a constructor
    and every run gets a fresh instance. *)

type imu_kind = Four_cycle | Pipelined

val imu_kind_name : imu_kind -> string

type t = {
  device : Rvi_fpga.Device.t;
  policy : unit -> Rvi_core.Policy.t;
  policy_name : string;
  transfer : Rvi_core.Vim.transfer_mode;
  prefetch : Rvi_core.Prefetch.t;
  overlap_prefetch : bool;
      (** overlap speculative transfers with coprocessor execution *)
  copy_engine : Rvi_core.Vim.copy_engine;
  eager_mapping : bool;  (** pre-map pages at FPGA_EXECUTE (the default) *)
  imu_kind : imu_kind;
  tlb_entries : int option;  (** [None]: one entry per dual-port page *)
  tlb_organization : Rvi_core.Tlb.organization;
  translation : Rvi_core.Translation_mode.t;
      (** address-translation scheme: the paper's per-object page lists, or
          the shared-virtual-addressing IOMMU mode (L1+L2 TLB hierarchy
          with a cycle-costed page-table walker) *)
  seed : int;
  trace : Rvi_obs.Trace.t option;
      (** structured event trace attached to every platform built from this
          configuration; events accumulate across runs (see {!Rvi_obs}) *)
  injector : Rvi_inject.Injector.t option;
      (** fault injector wired into every hardware boundary of platforms
          built from this configuration (dual-port RAM, interrupt
          controller, IMU, VIM); [None] = no injection, byte-identical
          behaviour to the pre-injection system *)
  recovery : Rvi_core.Vim.recovery;  (** VIM recovery policy *)
  watchdog : Rvi_sim.Simtime.t;
      (** VIM watchdog on the gap between progress points *)
  exec_retries : int;
      (** whole-execution retries on a transient error or a bad output
          before degrading to the software fallback; only consulted when an
          injector is attached *)
}

val default : unit -> t
(** The paper's measured system: EPXA1, FIFO replacement, double CPU
    transfers, no prefetch, 4-cycle IMU, TLB entry per page, seed 42. *)

val with_policy : t -> string -> t
(** Replace the policy by name ([Invalid_argument] on unknown names). *)

val describe : t -> string

val imu_config : t -> Rvi_core.Imu.config
val vim_config : t -> Rvi_core.Vim.config
