lib/mem/dma.ml: Rvi_sim
