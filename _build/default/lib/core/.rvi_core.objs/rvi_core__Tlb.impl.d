lib/core/tlb.ml: Array List Printf Rvi_sim
