lib/core/tlb.mli: Rvi_sim
