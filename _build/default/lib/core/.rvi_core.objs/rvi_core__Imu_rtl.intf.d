lib/core/imu_rtl.mli: Cp_port Rvi_mem Rvi_sim
