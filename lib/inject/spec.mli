(** Injection specifications — which faults, how often.

    A specification is a list of (fault kind, rate) rules. The rate is the
    probability that one {e injection opportunity} (one PLD write, one page
    copy, one TLB refill, one interrupt raise, ...) actually injects the
    fault, so per-access kinds want much smaller rates than per-service
    kinds.

    The concrete syntax (the [--inject] argument of [rvisim]) is a
    comma-separated rule list: [kind[:rate]]. [all] expands to every kind
    (at scaled default rates when a rate is given). Later rules override
    earlier ones: ["all:0.01,hang:0"] injects everything except hangs. *)

type rule = { kind : Fault.kind; rate : float }

type t = rule list

val rate : t -> Fault.kind -> float
(** The rate for a kind, [0.0] when absent. *)

val default_rate : Fault.kind -> float
(** Campaign-calibrated default rate for one kind. *)

val all : ?factor:float -> unit -> t
(** Every kind at [factor] times its default rate ([factor] defaults
    to 1). *)

val scale : float -> t -> t
(** Multiply every rate by a factor, clamping to 1. Raises
    [Invalid_argument] on a negative factor. *)

val parse : string -> (t, string) result
(** Parse the concrete syntax. The result lists each mentioned kind once,
    in {!Fault.all} order. *)

val to_string : t -> string
(** Round-trips through {!parse}. *)

val grammar : string
(** One-line description of the SPEC grammar, for [--help] texts. *)
