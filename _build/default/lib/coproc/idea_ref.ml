let modulus = 65537

let mul a b =
  let a = if a = 0 then 65536 else a land 0xFFFF in
  let b = if b = 0 then 65536 else b land 0xFFFF in
  let p = a * b mod modulus in
  if p = 65536 then 0 else p

let add a b = (a + b) land 0xFFFF
let add_inv a = -a land 0xFFFF

(* Multiplicative inverse modulo 65537 by Fermat (65537 is prime); the
   0 ≡ 2^16 representation makes 0 self-inverse. *)
let mul_inv a =
  if a = 0 then 0
  else begin
    let rec power base exp acc =
      if exp = 0 then acc
      else
        let acc = if exp land 1 = 1 then acc * base mod modulus else acc in
        power (base * base mod modulus) (exp lsr 1) acc
    in
    let inv = power (a land 0xFFFF) (modulus - 2) 1 in
    if inv = 65536 then 0 else inv
  end

let key_of_words words =
  if Array.length words <> 8 then invalid_arg "Idea_ref.key_of_words: need 8 words";
  Array.map
    (fun w ->
      if w < 0 || w > 0xFFFF then
        invalid_arg "Idea_ref.key_of_words: word out of 16 bits";
      w)
    words

let expand_key key =
  let key = key_of_words key in
  let sub = Array.make 52 0 in
  Array.blit key 0 sub 0 8;
  (* sub.(i) for i >= 8 comes from the key rotated left by 25 bits per
     group of eight; expressed directly on previous subkeys. *)
  for i = 8 to 51 do
    let base = i land lnot 7 in
    let j = i land 7 in
    let w k = sub.(base - 8 + k) in
    sub.(i) <-
      (if j < 6 then ((w (j + 1) lsl 9) lor (w (j + 2) lsr 7)) land 0xFFFF
       else if j = 6 then ((w 7 lsl 9) lor (w 0 lsr 7)) land 0xFFFF
       else ((w 0 lsl 9) lor (w 1 lsr 7)) land 0xFFFF)
  done;
  sub

let invert_key ek =
  if Array.length ek <> 52 then invalid_arg "Idea_ref.invert_key: need 52 subkeys";
  let dk = Array.make 52 0 in
  dk.(0) <- mul_inv ek.(48);
  dk.(1) <- add_inv ek.(49);
  dk.(2) <- add_inv ek.(50);
  dk.(3) <- mul_inv ek.(51);
  dk.(4) <- ek.(46);
  dk.(5) <- ek.(47);
  for i = 1 to 7 do
    let j = 48 - (6 * i) in
    dk.(6 * i) <- mul_inv ek.(j);
    dk.((6 * i) + 1) <- add_inv ek.(j + 2);
    dk.((6 * i) + 2) <- add_inv ek.(j + 1);
    dk.((6 * i) + 3) <- mul_inv ek.(j + 3);
    dk.((6 * i) + 4) <- ek.(j - 2);
    dk.((6 * i) + 5) <- ek.(j - 1)
  done;
  dk.(48) <- mul_inv ek.(0);
  dk.(49) <- add_inv ek.(1);
  dk.(50) <- add_inv ek.(2);
  dk.(51) <- mul_inv ek.(3);
  dk

let crypt_block sub (x1, x2, x3, x4) =
  let x1 = ref x1 and x2 = ref x2 and x3 = ref x3 and x4 = ref x4 in
  for r = 0 to 7 do
    let k = 6 * r in
    let y1 = mul !x1 sub.(k) in
    let y2 = add !x2 sub.(k + 1) in
    let y3 = add !x3 sub.(k + 2) in
    let y4 = mul !x4 sub.(k + 3) in
    let t0 = mul (y1 lxor y3) sub.(k + 4) in
    let t1 = mul (add (y2 lxor y4) t0) sub.(k + 5) in
    let t2 = add t0 t1 in
    x1 := y1 lxor t1;
    x2 := y3 lxor t1;
    x3 := y2 lxor t2;
    x4 := y4 lxor t2
  done;
  ( mul !x1 sub.(48),
    add !x3 sub.(49),
    add !x2 sub.(50),
    mul !x4 sub.(51) )

let block_bytes = 8

let get16 b pos =
  (Char.code (Bytes.get b pos) lsl 8) lor Char.code (Bytes.get b (pos + 1))

let put16 b pos v =
  Bytes.set b pos (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (pos + 1) (Char.chr (v land 0xFF))

let block_of_bytes b ~pos =
  (get16 b pos, get16 b (pos + 2), get16 b (pos + 4), get16 b (pos + 6))

let block_to_bytes b ~pos (x1, x2, x3, x4) =
  put16 b pos x1;
  put16 b (pos + 2) x2;
  put16 b (pos + 4) x3;
  put16 b (pos + 6) x4

(* A little-endian 32-bit bus word [b0 | b1<<8 | b2<<16 | b3<<24] carries
   the block bytes in storage order, so the big-endian 16-bit words are
   (b0<<8|b1) and (b2<<8|b3). *)
let words_of_le32 ~lo ~hi =
  let byte w i = (w lsr (8 * i)) land 0xFF in
  ( (byte lo 0 lsl 8) lor byte lo 1,
    (byte lo 2 lsl 8) lor byte lo 3,
    (byte hi 0 lsl 8) lor byte hi 1,
    (byte hi 2 lsl 8) lor byte hi 3 )

let le32_of_words (x1, x2, x3, x4) =
  let lo =
    ((x1 lsr 8) land 0xFF)
    lor ((x1 land 0xFF) lsl 8)
    lor (((x2 lsr 8) land 0xFF) lsl 16)
    lor ((x2 land 0xFF) lsl 24)
  in
  let hi =
    ((x3 lsr 8) land 0xFF)
    lor ((x3 land 0xFF) lsl 8)
    lor (((x4 lsr 8) land 0xFF) lsl 16)
    lor ((x4 land 0xFF) lsl 24)
  in
  (lo, hi)

let xor_block (a1, a2, a3, a4) (b1, b2, b3, b4) =
  (a1 lxor b1, a2 lxor b2, a3 lxor b3, a4 lxor b4)

let iv_of_words words =
  if Array.length words <> 4 then invalid_arg "Idea_ref.iv_of_words: need 4 words";
  Array.iter
    (fun w ->
      if w < 0 || w > 0xFFFF then
        invalid_arg "Idea_ref.iv_of_words: word out of 16 bits")
    words;
  (words.(0), words.(1), words.(2), words.(3))

let cbc ~key ~decrypt ~iv input =
  let n = Bytes.length input in
  if n mod block_bytes <> 0 then
    invalid_arg "Idea_ref.cbc: length must be a multiple of 8";
  let sub = expand_key key in
  let sub = if decrypt then invert_key sub else sub in
  let out = Bytes.create n in
  let chain = ref (iv_of_words iv) in
  for i = 0 to (n / block_bytes) - 1 do
    let pos = i * block_bytes in
    let block = block_of_bytes input ~pos in
    let result =
      if decrypt then begin
        let plain = xor_block (crypt_block sub block) !chain in
        chain := block;
        plain
      end
      else begin
        let cipher = crypt_block sub (xor_block block !chain) in
        chain := cipher;
        cipher
      end
    in
    block_to_bytes out ~pos result
  done;
  out

let ecb ~key ~decrypt input =
  let n = Bytes.length input in
  if n mod block_bytes <> 0 then
    invalid_arg "Idea_ref.ecb: length must be a multiple of 8";
  let sub = expand_key key in
  let sub = if decrypt then invert_key sub else sub in
  let out = Bytes.create n in
  for i = 0 to (n / block_bytes) - 1 do
    let pos = i * block_bytes in
    block_to_bytes out ~pos (crypt_block sub (block_of_bytes input ~pos))
  done;
  out
