(** {!Mem_port.S} with raw physical dual-port-RAM access — the "typical
    coprocessor" baseline.

    No IMU: every access completes in a single cycle against a hardwired
    base-address table that the driver (i.e. the programmer) must fill with
    the physical location of each array, exactly the burden Figure 3's
    middle listing shows. Out-of-bounds accesses fail the run — this is
    what "exceeds available memory" means for the normal coprocessor in
    Figure 9. Parameters are read from a register file poked by the
    driver. *)

include Mem_port.S

exception Out_of_region of { region : int; addr : int }

val create : dpram:Rvi_mem.Dpram.t -> t

val set_region : t -> region:int -> base:int -> size:int -> unit
(** Hardwire a region's physical window. Raises [Invalid_argument] if the
    window exceeds the memory. *)

val set_params : t -> int list -> unit
val assert_start : t -> unit
val finished : t -> bool
val accesses : t -> int
