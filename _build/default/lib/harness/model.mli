(** Closed-form performance model of the virtualised system.

    A longer version of the paper would carry these equations in an
    appendix: execution time decomposed into coprocessor data-path cycles,
    interface-translation cycles and OS page-movement costs, all derived
    from the design constants rather than fitted to runs. The test suite
    holds the model against the cycle-level simulator — if either drifts,
    [model/*] tests fail, which protects both the simulator (against
    accidental timing regressions) and the documentation (against going
    stale).

    The model covers the hardware time exactly up to protocol details (it
    is derived from the same FSMs) and the compulsory data movement; it
    deliberately does not predict replacement-policy-dependent refault
    traffic, reporting instead the compulsory lower bound. *)

type prediction = {
  hw_ms : float;  (** coprocessor + IMU time *)
  dp_compulsory_ms : float;
      (** user <-> dual-port movement if every page moved exactly once *)
  compulsory_pages : int;  (** distinct data pages touched *)
}

val access_round_trip : Config.t -> int
(** Coprocessor cycles from issuing a virtual access to consuming its
    response, for a coprocessor clocked with the IMU: one request pulse,
    [lookup_states] search cycles, the access cycle, the synchroniser
    stage and the consume cycle. *)

val adpcm_vim : Config.t -> input_bytes:int -> prediction
val idea_vim : Config.t -> input_bytes:int -> prediction
val fir_vim : Config.t -> taps:int -> input_bytes:int -> prediction

val pp : Format.formatter -> prediction -> unit
