(* Tests for the observability layer: the bounded-memory histogram's
   one-bin percentile error bound (as a property against an exact oracle),
   the trace ring buffer, and both exporters with a JSONL round trip. *)

module Simtime = Rvi_sim.Simtime
module Histogram = Rvi_sim.Histogram
module Stats = Rvi_sim.Stats
module Trace = Rvi_obs.Trace
module Export = Rvi_obs.Export

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* {1 Histogram percentiles} *)

(* The exact order statistic the histogram approximates: the
   ceil(q/100 * n)-th smallest sample (clamped to rank 1), matching the
   rank rule in Histogram.percentile. *)
let exact_percentile samples q =
  let sorted = List.sort Float.compare samples in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  let rank =
    let r = int_of_float (Float.ceil (q /. 100.0 *. float_of_int n)) in
    if r < 1 then 1 else r
  in
  arr.(rank - 1)

(* Positive samples spanning six decades, generated from integers so the
   distribution shape (and shrinking) stays simple. *)
let samples_arb =
  QCheck.(
    map
      (fun l -> List.map (fun i -> float_of_int i /. 1000.0) l)
      (list_of_size Gen.(1 -- 300) (int_range 1 1_000_000_000)))

let prop_percentile_one_bin =
  QCheck.Test.make
    ~name:"histogram percentile is within one bin of the exact order statistic"
    ~count:200 samples_arb
    (fun samples ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) samples;
      List.for_all
        (fun q ->
          let est = Histogram.percentile h q in
          let exact = exact_percentile samples q in
          abs (Histogram.bin_index est - Histogram.bin_index exact) <= 1)
        [ 1.0; 25.0; 50.0; 90.0; 95.0; 99.0; 100.0 ])

let test_histogram_basics () =
  let h = Histogram.create () in
  Alcotest.(check (float 0.0)) "empty percentile" 0.0 (Histogram.percentile h 50.0);
  List.iter (Histogram.add h) [ 1.0; 2.0; 3.0; 4.0 ];
  checki "count" 4 (Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 10.0 (Histogram.sum h);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Histogram.min h);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Histogram.max h);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Histogram.mean h);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Histogram.percentile: q outside [0,100]") (fun () ->
      ignore (Histogram.percentile h 101.0));
  Histogram.reset h;
  checki "reset clears" 0 (Histogram.count h)

let test_histogram_underflow () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ -1.0; 0.0; 5.0; 6.0 ];
  (* Ranks 1 and 2 are the two non-positive samples: reported as 0. *)
  Alcotest.(check (float 0.0)) "p25 underflow" 0.0 (Histogram.percentile h 25.0);
  Alcotest.(check (float 0.0)) "p50 underflow" 0.0 (Histogram.percentile h 50.0);
  checkb "p99 above underflow" true (Histogram.percentile h 99.0 > 5.0);
  Alcotest.(check (float 1e-9)) "min is exact" (-1.0) (Histogram.min h)

let qs = [ 0.0; 1.0; 25.0; 50.0; 75.0; 95.0; 99.0; 100.0 ]

let prop_single_sample_percentiles =
  (* A one-sample histogram has only one order statistic: every percentile
     must report exactly that sample (bin-midpoint rounding clamped away
     by the exact min/max), p50 included. *)
  QCheck.Test.make
    ~name:"every percentile of a single-sample histogram is that sample"
    ~count:300
    QCheck.(int_range 1 1_000_000_000)
    (fun i ->
      let x = float_of_int i /. 1000.0 in
      let h = Histogram.create () in
      Histogram.add h x;
      List.for_all (fun q -> Histogram.percentile h q = x) qs)

let prop_percentiles_within_min_max =
  QCheck.Test.make
    ~name:"percentiles of positive samples stay within [min, max]" ~count:200
    samples_arb
    (fun samples ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) samples;
      let lo = Histogram.min h and hi = Histogram.max h in
      List.for_all
        (fun q ->
          let v = Histogram.percentile h q in
          v >= lo && v <= hi)
        qs)

let observables h =
  ( Histogram.count h,
    Histogram.sum h,
    Histogram.min h,
    Histogram.max h,
    Histogram.mean h,
    List.map (Histogram.percentile h) qs )

let prop_merge_empty_identity =
  QCheck.Test.make
    ~name:"merging an empty histogram is the identity (both directions)"
    ~count:200 samples_arb
    (fun samples ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) samples;
      let before = observables h in
      (* empty into populated: nothing may move *)
      Histogram.merge_into ~into:h (Histogram.create ());
      let after = observables h in
      (* populated into empty: the copy must look exactly like the source *)
      let fresh = Histogram.create () in
      Histogram.merge_into ~into:fresh h;
      before = after && observables fresh = before)

let test_histogram_exact_boundaries () =
  (* Values sitting exactly on a bin edge must land in the bin whose
     lower bound they are — the log-quotient rounding must not push them
     one bin off in either direction. gamma^k for the histogram's
     gamma = 1.05, min 1e-6. *)
  let gamma = 1.05 and min_value = 1e-6 in
  for k = 0 to 400 do
    let edge = min_value *. (gamma ** float_of_int k) in
    checki (Printf.sprintf "edge %d in its own bin" k) k (Histogram.bin_index edge)
  done;
  (* A bin's representative value round-trips to the same bin. *)
  for i = 0 to 1023 do
    checki
      (Printf.sprintf "bin_value %d round-trips" i)
      i
      (Histogram.bin_index (Histogram.bin_value i))
  done

let test_stats_summary_percentiles () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.observe s "lat" (float_of_int i)
  done;
  match Stats.summary s "lat" with
  | None -> Alcotest.fail "no summary"
  | Some { Stats.count; p50; p95; p99; _ } ->
    checki "count" 100 count;
    checkb "p50 near 50" true (Float.abs (p50 -. 50.0) /. 50.0 < 0.06);
    checkb "p95 near 95" true (Float.abs (p95 -. 95.0) /. 95.0 < 0.06);
    checkb "p99 near 99" true (Float.abs (p99 -. 99.0) /. 99.0 < 0.06)

(* {1 Trace ring buffer} *)

let test_ring_overflow () =
  let tr = Trace.create ~capacity:4 () in
  for i = 0 to 9 do
    Trace.emit tr ~at:(Simtime.of_ns i) (Trace.Tlb_invalidate { ppn = i })
  done;
  checki "length capped" 4 (Trace.length tr);
  checki "emitted counts all" 10 (Trace.emitted tr);
  checki "dropped the rest" 6 (Trace.dropped tr);
  Alcotest.(check (list int))
    "oldest overwritten first" [ 6; 7; 8; 9 ]
    (List.map (fun e -> e.Trace.seq) (Trace.events tr));
  Trace.clear tr;
  checki "clear empties" 0 (Trace.length tr)

(* {1 Exporters} *)

(* One event of every kind, with args exercising escaping. *)
let all_kinds =
  [
    Trace.Exec_begin;
    Trace.Exec_end { ok = false };
    Trace.Fault { obj_id = 1; vpn = 2; refill_only = true };
    Trace.Decode;
    Trace.Copy { bytes = 2048; dma = true };
    Trace.Tlb_update { obj_id = 1; vpn = 2; ppn = 3 };
    Trace.Tlb_invalidate { ppn = 7 };
    Trace.Page_load { obj_id = 0; vpn = 4; frame = 5; bytes = 2048 };
    Trace.Page_writeback { obj_id = 0; vpn = 4; frame = 5; bytes = 2048 };
    Trace.Page_evict
      { obj_id = 0; vpn = 9; frame = 6; policy = "second-chance"; dirty = true };
    Trace.Prefetch { obj_id = 2; vpn = 1; frame = 3 };
    Trace.Irq_raise { line = 0; name = "a \"quoted\"\nname\twith\\escapes" };
    Trace.Irq_service;
    Trace.Watchdog;
    Trace.Inject { fault = "dpram" };
    Trace.Retry { what = "page_load"; attempt = 2 };
    Trace.Recover { what = "execute"; retries = 1 };
    Trace.Degrade { reason = "EIO (bus error)" };
  ]

let all_kind_events () =
  let tr = Trace.create () in
  List.iteri
    (fun i k ->
      Trace.emit tr ~at:(Simtime.of_ns (10 * i)) ~dur:(Simtime.of_ns i) k)
    all_kinds;
  Trace.events tr

let test_jsonl_roundtrip () =
  let events = all_kind_events () in
  let back = Export.of_jsonl (Export.to_jsonl events) in
  checkb "round trip is the identity" true (back = events)

let test_jsonl_errors () =
  checki "blank lines skipped" 0 (List.length (Export.of_jsonl "\n\n"));
  Alcotest.check_raises "malformed line" (Export.Parse_error "expected { at 0")
    (fun () -> ignore (Export.of_jsonl "nonsense"))

let prop_jsonl_roundtrip =
  let kind_arb =
    QCheck.(
      map
        (fun (i, (b, s)) ->
          match i mod 5 with
          | 0 -> Trace.Fault { obj_id = i; vpn = i + 1; refill_only = b }
          | 1 -> Trace.Copy { bytes = i; dma = b }
          | 2 -> Trace.Page_evict
                   { obj_id = i; vpn = i; frame = i; policy = s; dirty = b }
          | 3 -> Trace.Irq_raise { line = i; name = s }
          | _ -> Trace.Exec_end { ok = b })
        (pair (int_bound 1_000_000) (pair bool printable_string)))
  in
  QCheck.Test.make ~name:"random events survive the jsonl round trip" ~count:200
    QCheck.(list_of_size Gen.(0 -- 40) (pair kind_arb (int_bound 1_000_000)))
    (fun specs ->
      let tr = Trace.create () in
      List.iter
        (fun (k, t) ->
          Trace.emit tr ~at:(Simtime.of_ns t) ~dur:(Simtime.of_ns (t / 2)) k)
        specs;
      let events = Trace.events tr in
      Export.of_jsonl (Export.to_jsonl events) = events)

let test_chrome_export () =
  let doc = Export.to_chrome (all_kind_events ()) in
  let has needle =
    let n = String.length needle and ln = String.length doc in
    let rec go i = i + n <= ln && (String.sub doc i n = needle || go (i + 1)) in
    go 0
  in
  checkb "document wrapper" true (has "\"traceEvents\":[");
  checkb "fault span name" true (has "\"fault-service (refill)\"");
  checkb "decode span name" true (has "\"SWimu decode\"");
  checkb "copy span name" true (has "\"SWdp copy (DMA)\"");
  checkb "tlb span name" true (has "\"TLB update\"");
  checkb "thread metadata" true (has "\"VIM service\"");
  checkb "spans on the span track" true (has "\"ph\":\"X\"");
  checkb "instants on the instant track" true (has "\"ph\":\"i\"");
  checkb "escaping applied" true (has "a \\\"quoted\\\"\\nname")

let test_chrome_sorted () =
  (* Spans are emitted at completion (outer after inner); the exporter must
     re-sort so the outer span precedes the inner at equal/earlier starts. *)
  let tr = Trace.create () in
  Trace.emit tr ~at:(Simtime.of_ns 10) ~dur:(Simtime.of_ns 2) Trace.Decode;
  Trace.emit tr ~at:(Simtime.of_ns 10) ~dur:(Simtime.of_ns 8)
    (Trace.Fault { obj_id = 0; vpn = 0; refill_only = false });
  let doc = Export.to_chrome (Trace.events tr) in
  let idx needle =
    let n = String.length needle in
    let rec go i =
      if i + n > String.length doc then Alcotest.failf "missing %s" needle
      else if String.sub doc i n = needle then i
      else go (i + 1)
    in
    go 0
  in
  checkb "longer span first at equal start" true
    (idx "fault-service" < idx "SWimu decode")

let suite =
  [
    QCheck_alcotest.to_alcotest prop_percentile_one_bin;
    QCheck_alcotest.to_alcotest prop_single_sample_percentiles;
    QCheck_alcotest.to_alcotest prop_percentiles_within_min_max;
    QCheck_alcotest.to_alcotest prop_merge_empty_identity;
    Alcotest.test_case "histogram/basics" `Quick test_histogram_basics;
    Alcotest.test_case "histogram/underflow" `Quick test_histogram_underflow;
    Alcotest.test_case "histogram/exact-bin-boundaries" `Quick
      test_histogram_exact_boundaries;
    Alcotest.test_case "stats/summary-percentiles" `Quick
      test_stats_summary_percentiles;
    Alcotest.test_case "trace/ring-overflow" `Quick test_ring_overflow;
    Alcotest.test_case "export/jsonl-roundtrip" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "export/jsonl-errors" `Quick test_jsonl_errors;
    QCheck_alcotest.to_alcotest prop_jsonl_roundtrip;
    Alcotest.test_case "export/chrome" `Quick test_chrome_export;
    Alcotest.test_case "export/chrome-sorted" `Quick test_chrome_sorted;
  ]
