lib/coproc/mem_port.mli: Rvi_core
