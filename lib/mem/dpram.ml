type t = {
  ram : Ram.t;
  geom : Page.geometry;
  stats : Rvi_sim.Stats.t;
  c_pld_reads : Rvi_sim.Stats.counter;
  c_pld_writes : Rvi_sim.Stats.counter;
  c_cpu_words : Rvi_sim.Stats.counter;
  c_parity_checks : Rvi_sim.Stats.counter;
  c_parity_steps : Rvi_sim.Stats.counter;
  corrupted : (int, unit) Hashtbl.t;
      (* byte addresses whose stored parity no longer matches the data,
         i.e. locations where an injected bit flip is still latent *)
  page_flips : int array;
      (* per-page count of latent corrupted bytes — the index the parity
         checker consults, so a check's cost never depends on how much
         corruption *other* pages carry *)
  mutable corrupted_total : int;
  mutable injector : Rvi_inject.Injector.t option;
}

let create geom =
  let stats = Rvi_sim.Stats.create () in
  {
    ram = Ram.create ~size:(Page.total_bytes geom);
    geom;
    stats;
    c_pld_reads = Rvi_sim.Stats.counter stats "pld_reads";
    c_pld_writes = Rvi_sim.Stats.counter stats "pld_writes";
    c_cpu_words = Rvi_sim.Stats.counter stats "cpu_words";
    c_parity_checks = Rvi_sim.Stats.counter stats "parity_page_checks";
    c_parity_steps = Rvi_sim.Stats.counter stats "parity_scan_steps";
    corrupted = Hashtbl.create 16;
    page_flips = Array.make geom.Page.n_pages 0;
    corrupted_total = 0;
    injector = None;
  }

let set_injector t inj = t.injector <- inj

let geometry t = t.geom
let size t = Ram.size t.ram
let n_pages t = t.geom.Page.n_pages
let page_size t = t.geom.Page.page_size

let page_of_addr t addr = addr / t.geom.Page.page_size

let mark_corrupt t addr =
  if not (Hashtbl.mem t.corrupted addr) then begin
    Hashtbl.add t.corrupted addr ();
    let p = page_of_addr t addr in
    t.page_flips.(p) <- t.page_flips.(p) + 1;
    t.corrupted_total <- t.corrupted_total + 1
  end

let clear_corruption t ~pos ~len =
  if t.corrupted_total > 0 then
    for addr = pos to pos + len - 1 do
      if Hashtbl.mem t.corrupted addr then begin
        Hashtbl.remove t.corrupted addr;
        let p = page_of_addr t addr in
        t.page_flips.(p) <- t.page_flips.(p) - 1;
        t.corrupted_total <- t.corrupted_total - 1
      end
    done

let read t ~width addr =
  Rvi_sim.Stats.tick t.c_pld_reads;
  Ram.read t.ram ~width addr

let write t ~width addr v =
  Rvi_sim.Stats.tick t.c_pld_writes;
  Ram.write t.ram ~width addr v;
  (* A store refreshes the parity of the bytes it covers... *)
  clear_corruption t ~pos:addr ~len:(width / 8);
  (* ...unless the cell flips a bit underneath it. The flip lands in the
     array (later reads see it) and leaves the parity stale, which is how
     the kernel's flush-time parity check catches it. *)
  match t.injector with
  | Some inj when Rvi_inject.Injector.fire inj Rvi_inject.Fault.Dpram_flip ->
    let bit = Rvi_inject.Injector.draw inj width in
    let byte_addr = addr + (bit / 8) in
    Ram.write8 t.ram byte_addr (Ram.read8 t.ram byte_addr lxor (1 lsl (bit mod 8)));
    mark_corrupt t byte_addr;
    Rvi_sim.Stats.incr t.stats "bit_flips"
  | _ -> ()

let check_page t page op =
  if page < 0 || page >= n_pages t then
    invalid_arg (Printf.sprintf "Dpram.%s: page %d out of [0, %d)" op page (n_pages t))

let parity_error t ~page =
  check_page t page "parity_error";
  Rvi_sim.Stats.tick t.c_parity_checks;
  (* One indexed probe per check ("scan step"), regardless of how many
     latent flips other pages hold. *)
  Rvi_sim.Stats.tick t.c_parity_steps;
  t.page_flips.(page) > 0

let clear_page_corruption t page =
  if t.page_flips.(page) > 0 then
    clear_corruption t ~pos:(Page.base t.geom page) ~len:(page_size t)

let load_page t ~page buf ~src ~len =
  check_page t page "load_page";
  if len < 0 || len > page_size t then invalid_arg "Dpram.load_page: bad length";
  let base = Page.base t.geom page in
  Ram.blit_from_bytes buf ~src t.ram ~dst:base ~len;
  if len < page_size t then Ram.fill t.ram ~pos:(base + len) ~len:(page_size t - len) '\000';
  clear_page_corruption t page;
  Rvi_sim.Stats.incr t.stats "pages_loaded"

let store_page t ~page buf ~dst ~len =
  check_page t page "store_page";
  if len < 0 || len > page_size t then invalid_arg "Dpram.store_page: bad length";
  let base = Page.base t.geom page in
  Ram.blit_to_bytes t.ram ~src:base buf ~dst ~len;
  Rvi_sim.Stats.incr t.stats "pages_stored"

(* Page-granular device-to-device blits: the VIM copy engine moves whole
   pages between SDRAM and the dual-port array directly, instead of
   bouncing through an intermediate [Bytes.t]. Semantics (tail zero-fill,
   parity refresh, stats) match [load_page]/[store_page] exactly. *)
let load_page_from_ram t ~page src ~src_pos ~len =
  check_page t page "load_page_from_ram";
  if len < 0 || len > page_size t then
    invalid_arg "Dpram.load_page_from_ram: bad length";
  let base = Page.base t.geom page in
  Ram.blit src ~src:src_pos t.ram ~dst:base ~len;
  if len < page_size t then
    Ram.fill t.ram ~pos:(base + len) ~len:(page_size t - len) '\000';
  clear_page_corruption t page;
  Rvi_sim.Stats.incr t.stats "pages_loaded"

let store_page_to_ram t ~page dst ~dst_pos ~len =
  check_page t page "store_page_to_ram";
  if len < 0 || len > page_size t then
    invalid_arg "Dpram.store_page_to_ram: bad length";
  let base = Page.base t.geom page in
  Ram.blit t.ram ~src:base dst ~dst:dst_pos ~len;
  Rvi_sim.Stats.incr t.stats "pages_stored"

let clear_page t ~page =
  check_page t page "clear_page";
  Ram.fill t.ram ~pos:(Page.base t.geom page) ~len:(page_size t) '\000';
  clear_page_corruption t page

let cpu_read32 t addr =
  Rvi_sim.Stats.tick t.c_cpu_words;
  Ram.read32 t.ram addr

let cpu_write32 t addr v =
  Rvi_sim.Stats.tick t.c_cpu_words;
  Ram.write32 t.ram addr v;
  clear_corruption t ~pos:addr ~len:4

let stats t = t.stats

(* Platform pooling: restore the power-on image — all-zero array, no latent
   corruption, zeroed counters (in place, so the pre-resolved port-traffic
   handles stay attached), no injector. *)
let reset t =
  Ram.fill t.ram ~pos:0 ~len:(Ram.size t.ram) '\000';
  Hashtbl.reset t.corrupted;
  Array.fill t.page_flips 0 (Array.length t.page_flips) 0;
  t.corrupted_total <- 0;
  t.injector <- None;
  Rvi_sim.Stats.soft_reset t.stats
