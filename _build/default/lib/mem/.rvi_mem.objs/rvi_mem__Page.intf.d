lib/mem/page.mli: Format
