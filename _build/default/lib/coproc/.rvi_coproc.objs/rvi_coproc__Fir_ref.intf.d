lib/coproc/fir_ref.mli: Bytes
