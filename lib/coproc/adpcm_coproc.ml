module Cp_port = Rvi_core.Cp_port

let obj_in = 0
let obj_out = 1

(* The serial decode unit: step-table lookup, three conditional adds, two
   clamps and the index update, one operation class per cycle. *)
let decode_cycles = 14

(* Table lookups, branches and 16-bit saturation on the ARM. *)
let sw_cycles_per_sample = 146

module Make (P : Mem_port.S) = struct
  type state =
    | Wait_start
    | Read_param
    | Wait_param
    | Wait_byte of int (* byte index *)
    | Decode of { byte_index : int; high : bool; left : int }
    | Wait_write of { byte_index : int; high : bool }
    | Done

  let show = function
    | Wait_start -> "wait_start"
    | Read_param -> "rd_param"
    | Wait_param -> "wait_param"
    | Wait_byte i -> Printf.sprintf "wait_byte[%d]" i
    | Decode { byte_index; high; left } ->
      Printf.sprintf "decode[%d.%c:%d]" byte_index (if high then 'h' else 'l') left
    | Wait_write { byte_index; high } ->
      Printf.sprintf "wait_wr[%d.%c]" byte_index (if high then 'h' else 'l')
    | Done -> "done"

  type m = {
    port : P.t;
    fsm : state Rvi_hw.Fsm.t;
    mutable n_bytes : int;
    mutable byte : int;
    mutable decoder : Adpcm_ref.state;
    stats : Rvi_sim.Stats.t;
    c_cycles : Rvi_sim.Stats.counter;
    c_samples : Rvi_sim.Stats.counter;
  }

  let begin_run m =
    m.decoder <- Adpcm_ref.initial_state ();
    Mem_port.read_param
      ~issue:(fun ~region ~addr ->
        P.issue m.port ~region ~addr ~wr:false ~width:Cp_port.W32 ~data:0)
      ~index:0;
    Rvi_hw.Fsm.goto m.fsm Wait_param

  let fetch m i =
    P.issue m.port ~region:obj_in ~addr:i ~wr:false ~width:Cp_port.W8 ~data:0;
    Rvi_hw.Fsm.goto m.fsm (Wait_byte i)

  (* Sample index produced by the given nibble of the given byte. *)
  let sample_index ~byte_index ~high = (2 * byte_index) + if high then 1 else 0

  let compute m =
    P.sample m.port;
    Rvi_sim.Stats.tick m.c_cycles;
    match Rvi_hw.Fsm.state m.fsm with
    | Wait_start ->
      if P.start_seen m.port then Rvi_hw.Fsm.goto m.fsm Read_param
      else Rvi_hw.Fsm.stay m.fsm
    | Read_param -> begin_run m
    | Wait_param ->
      if P.ready m.port then begin
        m.n_bytes <- P.data m.port;
        if m.n_bytes = 0 then begin
          P.finish m.port;
          Rvi_hw.Fsm.goto m.fsm Done
        end
        else fetch m 0
      end
      else Rvi_hw.Fsm.stay m.fsm
    | Wait_byte i ->
      if P.ready m.port then begin
        m.byte <- P.data m.port land 0xFF;
        Rvi_hw.Fsm.goto m.fsm
          (Decode { byte_index = i; high = false; left = decode_cycles })
      end
      else Rvi_hw.Fsm.stay m.fsm
    | Decode { byte_index; high; left } ->
      if left > 1 then
        Rvi_hw.Fsm.goto m.fsm (Decode { byte_index; high; left = left - 1 })
      else begin
        let code = if high then m.byte lsr 4 else m.byte land 0xF in
        let sample = Adpcm_ref.decode_nibble m.decoder code land 0xFFFF in
        P.issue m.port ~region:obj_out
          ~addr:(2 * sample_index ~byte_index ~high)
          ~wr:true ~width:Cp_port.W16 ~data:sample;
        Rvi_sim.Stats.tick m.c_samples;
        Rvi_hw.Fsm.goto m.fsm (Wait_write { byte_index; high })
      end
    | Wait_write { byte_index; high } ->
      if P.ready m.port then
        if not high then
          Rvi_hw.Fsm.goto m.fsm
            (Decode { byte_index; high = true; left = decode_cycles })
        else if byte_index + 1 < m.n_bytes then fetch m (byte_index + 1)
        else begin
          P.finish m.port;
          Rvi_hw.Fsm.goto m.fsm Done
        end
      else Rvi_hw.Fsm.stay m.fsm
    | Done ->
      if P.start_seen m.port then Rvi_hw.Fsm.goto m.fsm Read_param
      else Rvi_hw.Fsm.stay m.fsm

  (* Wait states are unbounded no-ops while the port is quiescent. A
     [Decode] countdown additionally exposes its remaining [left - 1]
     decrement ticks — pure bookkeeping applied wholesale by [skip] — which
     is the big win: 13 of every 14 decode cycles per nibble vanish. *)
  let idle_hint m =
    if not (P.quiescent m.port) then 0
    else
      match Rvi_hw.Fsm.state m.fsm with
      | Wait_start | Wait_param | Wait_byte _ | Wait_write _ | Done -> max_int
      | Decode { left; _ } -> left - 1
      | Read_param -> 0

  let skip m k =
    Rvi_sim.Stats.tick_by m.c_cycles k;
    match Rvi_hw.Fsm.state m.fsm with
    | Decode { byte_index; high; left } ->
      Rvi_hw.Fsm.fast_forward m.fsm ~transitions:k
        (Decode { byte_index; high; left = left - k })
    | _ -> ()

  let create port =
    let stats = Rvi_sim.Stats.create () in
    let m =
      {
        port;
        fsm = Rvi_hw.Fsm.create ~name:"adpcmdecode" ~init:Wait_start ~show;
        n_bytes = 0;
        byte = 0;
        decoder = Adpcm_ref.initial_state ();
        stats;
        c_cycles = Rvi_sim.Stats.counter stats "cycles";
        c_samples = Rvi_sim.Stats.counter stats "samples";
      }
    in
    {
      Coproc.name = "adpcmdecode";
      component =
        Rvi_sim.Clock.component ~name:"adpcmdecode"
          ~idle_hint:(fun () -> idle_hint m)
          ~skip:(fun k -> skip m k)
          ~compute:(fun () -> compute m)
          ~commit:(fun () ->
            Rvi_hw.Fsm.commit m.fsm;
            P.commit m.port)
            ();
      finished = (fun () -> Rvi_hw.Fsm.state m.fsm = Done);
      reset =
        (fun () ->
          Rvi_hw.Fsm.reset m.fsm Wait_start;
          m.n_bytes <- 0;
          P.reset m.port);
      stats = m.stats;
    }
end

module Virtual = struct
  module M = Make (Vport)

  let create port =
    let vport = Vport.create port in
    (vport, M.create vport)
end
