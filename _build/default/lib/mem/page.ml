type geometry = { page_size : int; n_pages : int }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let geometry ~page_size ~n_pages =
  if not (is_power_of_two page_size) || page_size < 16 then
    invalid_arg "Page.geometry: page_size must be a power of two >= 16";
  if n_pages < 1 then invalid_arg "Page.geometry: n_pages >= 1 required";
  { page_size; n_pages }

let total_bytes g = g.page_size * g.n_pages
let vpn g addr = addr / g.page_size
let offset g addr = addr land (g.page_size - 1)
let base g page = page * g.page_size
let page_count g ~len = (len + g.page_size - 1) / g.page_size

let pp ppf g =
  Format.fprintf ppf "%d pages x %d B (%d B total)" g.n_pages g.page_size
    (total_bytes g)
