lib/harness/workload.mli: Bytes
