(** Occupancy of the dual-port-RAM page frames.

    The VIM's bookkeeping: which physical page holds which (object, virtual
    page) pair, which one is the parameter page, and when each frame was
    populated. Dirtiness lives in the IMU's TLB (set by hardware); the VIM
    reads it from there at eviction time. *)

type slot =
  | Free
  | Param  (** the parameter-passing page *)
  | Held of { obj_id : int; vpn : int; loaded_at : int }

type t

val create : frames:int -> t
val frames : t -> int

val slot : t -> frame:int -> slot

val find : t -> obj_id:int -> vpn:int -> int option
(** Frame currently holding the pair, if resident. *)

val resident : t -> (int * int * int) list
(** All [(frame, obj_id, vpn)] of held frames, ascending frame order. *)

val free_frame : t -> int option

val hold : t -> frame:int -> obj_id:int -> vpn:int -> loaded_at:int -> unit
(** Raises [Invalid_argument] if the frame is not free or the pair is
    already resident elsewhere. *)

val set_param : t -> frame:int -> unit
val param_frame : t -> int option

val wire : t -> frame:int -> unit
(** Pins an occupied frame: {!wired} reports it and the VIM's candidate
    builder excludes it from eviction. Raises [Invalid_argument] on a
    free frame. *)

val unwire : t -> frame:int -> unit

val wired : t -> frame:int -> bool
(** True for explicitly wired frames and, by construction, for the live
    parameter page — neither may ever be an eviction victim. *)

val release : t -> frame:int -> unit
(** Marks the frame free (from any state) and clears its wiring. *)

val release_all : t -> unit

val held_count : t -> int

(** {1 Context save/restore}

    Tenant preemption snapshots the occupancy with the rest of the VIM
    context and reinstates it on resume. *)

type image

val save : t -> image
val restore : t -> image -> unit
(** Raises [Invalid_argument] if the image's frame count differs. *)
