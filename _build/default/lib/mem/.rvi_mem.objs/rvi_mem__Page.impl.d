lib/mem/page.ml: Format
