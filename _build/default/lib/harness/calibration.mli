(** Calibration of the simulated platform against the paper's testbed.

    The reproduction runs on a simulator, not on the Excalibur board, so
    absolute times depend on a small set of constants. Each is derived
    from a figure the paper states (or from the device datasheet) rather
    than fitted freely; {!val-check} recomputes the headline analytical
    predictions so a unit test can pin them.

    Derivations:
    - [cpu_freq_hz] = 133 MHz: stated in §4.
    - [adpcm_clock_hz] = 40 MHz, [idea_imu_clock_hz] = 24 MHz with the
      core at 6 MHz ([idea_divide] = 4): stated in §4.1.
    - [Idea_coproc.sw_cycles_per_block] = 6757: Figure 9 reports 26 ms for
      4 KB (512 blocks) of software IDEA at 133 MHz; 26 ms x 133 MHz / 512
      = 6754 cycles, rounded to keep 4/8/16/32 KB at 26/53/105/211 ms.
    - [Adpcm_ref] software cost = 146 cycles/sample: Figure 8's software
      bars (~4.5 ms at 2 KB input = 4096 samples).
    - AHB copy cost = 20 CPU cycles/word: an uncached load/store pair to
      on-chip RAM through the AHB on the ARM922T; this reproduces the
      paper's observation that dual-port management dominates overhead.
    - IMU translation = 4 cycles/access: Figure 7.
    - [Adpcm_coproc.decode_cycles] = 14 and [Idea_coproc.stage_cycles] =
      13: chosen so the hardware bars land at the paper's speedups
      (1.5-1.6x for adpcmdecode, ~18x normal / ~11-12x VIM for IDEA);
      these are the only two fitted constants, both plausible for serial
      FSM data paths in a small PLD. *)

val cpu_freq_hz : int
val adpcm_clock_hz : int
val idea_imu_clock_hz : int
val idea_divide : int

val adpcm_bitstream : Rvi_fpga.Bitstream.t
val idea_bitstream : Rvi_fpga.Bitstream.t
val vecadd_bitstream : Rvi_fpga.Bitstream.t

val fir_bitstream : Rvi_fpga.Bitstream.t
(** The FIR extension workload: 40 MHz, serial MAC, coefficient file. *)

(** Paper-reported reference points used by EXPERIMENTS.md and the tests. *)

val paper_idea_sw_ms : (int * float) list
(** input KB -> software milliseconds (26/53/105/211). *)

val paper_adpcm_speedup : float * float
(** Figure 8's speedup range (1.5, 1.6). *)

val paper_idea_normal_speedup : float
(** ~18x. *)

val paper_idea_vim_speedup : float * float
(** 11-12x. *)

type prediction = {
  name : string;
  expected : float;
  computed : float;
  tolerance : float;  (** relative *)
}

val check : unit -> prediction list
(** Closed-form sanity checks (e.g. software IDEA time for 4 KB) that the
    constants above reproduce the paper's stated numbers. *)
