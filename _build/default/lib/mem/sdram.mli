(** External SDRAM holding user-space data.

    The 64 MB board memory where application buffers live. The simulated
    kernel copies pages between here and the dual-port RAM; applications
    (and software baselines) read and write their buffers directly. A bump
    allocator hands out buffer addresses — the simulated processes never
    free individual buffers, whole address spaces are discarded at once,
    exactly like the arena lifetime of the short-lived benchmark programs. *)

type t

val create : size:int -> t
val size : t -> int

val alloc : t -> ?align:int -> int -> int
(** [alloc t n] reserves [n] bytes and returns their base address.
    [align] (default 4, power of two) aligns the base. Raises [Out_of_memory]
    if the arena is exhausted. *)

val used : t -> int
val release_all : t -> unit
(** Resets the allocator (contents are left in place). *)

val read8 : t -> int -> int
val write8 : t -> int -> int -> unit
val read16 : t -> int -> int
val write16 : t -> int -> int -> unit
val read32 : t -> int -> int
val write32 : t -> int -> int -> unit

val write_bytes : t -> int -> Bytes.t -> unit
val read_bytes : t -> int -> len:int -> Bytes.t

val blit_out : t -> src:int -> Bytes.t -> dst:int -> len:int -> unit
val blit_in : Bytes.t -> src:int -> t -> dst:int -> len:int -> unit
