lib/harness/jobs.mli: Config Rvi_sim
