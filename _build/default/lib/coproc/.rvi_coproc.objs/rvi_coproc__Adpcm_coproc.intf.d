lib/coproc/adpcm_coproc.mli: Coproc Mem_port Rvi_core Vport
