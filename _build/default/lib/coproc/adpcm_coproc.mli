(** The [adpcmdecode] coprocessor (paper §4.1, Figure 8).

    Runs at 40 MHz together with the IMU on the paper's board. Objects:
    0 = compressed input (bytes), 1 = decoded output (16-bit samples).
    One scalar parameter: the input size in bytes. The decode data path is
    a sequential multi-cycle unit — {!decode_cycles} cycles per sample —
    matching the modest FSM the paper synthesised rather than a fully
    pipelined design. *)

val obj_in : int
val obj_out : int

val decode_cycles : int
(** Data-path latency per decoded sample (calibrated; see
    {!Rvi_harness.Calibration}). *)

val sw_cycles_per_sample : int
(** Calibrated ARM cycles per sample of the pure-software decoder. *)

module Make (P : Mem_port.S) : sig
  val create : P.t -> Coproc.t
end

module Virtual : sig
  val create : Rvi_core.Cp_port.t -> Vport.t * Coproc.t
end
