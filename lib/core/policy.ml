type candidate = {
  frame : int;
  page : int * int;
  loaded_at : int;
  last_access : int;
  referenced : bool;
  dirty : bool;
}

type oracle_state = {
  (* for each page, the sorted positions of its references *)
  occurrences : (int * int, int array) Hashtbl.t;
  position : unit -> int;
  trace_len : int;
}

type kind =
  | Fifo
  | Lru
  | Random of Rvi_sim.Prng.t
  | Second_chance of { mutable hand : int }
  | Oracle of oracle_state

type t = { kind : kind }

let fifo () = { kind = Fifo }
let lru () = { kind = Lru }
(* The victim stream must be independent of every other consumer seeded
   from the same campaign seed — the fault injector in particular uses
   [Prng.create ~seed] directly, and sharing its stream head would let
   enabling --inject silently perturb replacement decisions. A derived
   stream keeps victim sequences identical with and without injection
   (pinned by a regression test). *)
let random_stream_index = 0x9EC7

let random ~seed =
  { kind = Random (Rvi_sim.Prng.derive ~seed ~index:random_stream_index) }
let second_chance () = { kind = Second_chance { hand = 0 } }

let oracle ~trace ~position =
  let occurrences = Hashtbl.create 64 in
  Array.iteri
    (fun i page ->
      let prev = Option.value (Hashtbl.find_opt occurrences page) ~default:[] in
      Hashtbl.replace occurrences page (i :: prev))
    trace;
  let occurrences =
    let frozen = Hashtbl.create (Hashtbl.length occurrences) in
    Hashtbl.iter
      (fun page rev -> Hashtbl.replace frozen page (Array.of_list (List.rev rev)))
      occurrences;
    frozen
  in
  { kind = Oracle { occurrences; position; trace_len = Array.length trace } }

(* First reference of [page] at or after [pos], or [infinity]. *)
let next_use st page ~pos =
  match Hashtbl.find_opt st.occurrences page with
  | None -> max_int
  | Some occ ->
    (* binary search: first element >= pos *)
    let lo = ref 0 and hi = ref (Array.length occ) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if occ.(mid) < pos then lo := mid + 1 else hi := mid
    done;
    if !lo >= Array.length occ then max_int else occ.(!lo)

let name t =
  match t.kind with
  | Fifo -> "fifo"
  | Lru -> "lru"
  | Random _ -> "random"
  | Second_chance _ -> "second-chance"
  | Oracle _ -> "oracle"

let all_names = [ "fifo"; "lru"; "random"; "second-chance" ]

let of_name ?(seed = 42) = function
  | "fifo" -> Some (fifo ())
  | "lru" -> Some (lru ())
  | "random" -> Some (random ~seed)
  | "second-chance" -> Some (second_chance ())
  | _ -> None

(* Minimum by a measure, breaking ties by lowest frame number so the choice
   is deterministic. *)
let min_by measure candidates =
  Array.fold_left
    (fun best c ->
      match best with
      | None -> Some c
      | Some b ->
        let mc = measure c and mb = measure b in
        if mc < mb || (mc = mb && c.frame < b.frame) then Some c else best)
    None candidates

let choose t ~clear_ref candidates =
  if Array.length candidates = 0 then invalid_arg "Policy.choose: no candidates";
  match t.kind with
  | Fifo -> (
    match min_by (fun c -> c.loaded_at) candidates with
    | Some c -> c.frame
    | None -> assert false)
  | Lru -> (
    (* Hardware-assisted LRU: the TLB stamps every translated access; a
       page never accessed since load falls back to its load stamp. *)
    match min_by (fun c -> Stdlib.max c.last_access c.loaded_at) candidates with
    | Some c -> c.frame
    | None -> assert false)
  | Random prng -> candidates.(Rvi_sim.Prng.int prng (Array.length candidates)).frame
  | Oracle st -> (
    let pos = st.position () in
    (* Belady: evict the page used farthest in the future (ties by frame
       number for determinism). *)
    let best = ref None in
    Array.iter
      (fun c ->
        let nu = next_use st c.page ~pos in
        match !best with
        | None -> best := Some (c, nu)
        | Some (b, bnu) ->
          if nu > bnu || (nu = bnu && c.frame < b.frame) then best := Some (c, nu))
      candidates;
    match !best with Some (c, _) -> c.frame | None -> assert false)
  | Second_chance st ->
    (* Clock scan over the candidates ordered by frame number: skip (and
       strip) referenced pages, take the first unreferenced one. After a
       full revolution everything is unreferenced. *)
    let sorted = Array.copy candidates in
    Array.sort (fun a b -> Int.compare a.frame b.frame) sorted;
    let n = Array.length sorted in
    let start =
      let rec find i = if i >= n then 0 else if sorted.(i).frame >= st.hand then i else find (i + 1) in
      find 0
    in
    let rec scan i remaining referenced_state =
      let c = sorted.(i mod n) in
      if remaining = 0 then c.frame
      else if referenced_state.(i mod n) then begin
        clear_ref c.frame;
        referenced_state.(i mod n) <- false;
        scan ((i + 1) mod n) (remaining - 1) referenced_state
      end
      else c.frame
    in
    let refs = Array.map (fun c -> c.referenced) sorted in
    let victim = scan start (2 * n) refs in
    st.hand <- victim + 1;
    victim
