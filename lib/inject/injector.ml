module Prng = Rvi_sim.Prng
module Stats = Rvi_sim.Stats

(* Bernoulli draws compare a 30-bit slice of the PRNG stream against a
   precomputed integer threshold: cheap, exact for rate 0 and 1, and
   deterministic across platforms (no float accumulation). *)
let resolution = 1 lsl 30

(* Pre-resolved per-kind state: threshold plus counter handles, so the
   hot [fire] path (every guarded PLD access) neither walks an assoc list
   nor formats counter names. *)
type arm = {
  thr : int;
  c_chances : Stats.counter;
  c_injected : Stats.counter;
}

type t = {
  prng : Prng.t;
  arms : arm option array; (* indexed by Fault.index *)
  spec : Spec.t;
  seed : int;
  stats : Stats.t;
  mutable enabled : bool;
  mutable observer : (Fault.kind -> unit) option;
}

let threshold rate =
  if rate >= 1.0 then resolution
  else if rate <= 0.0 then 0
  else int_of_float (rate *. float_of_int resolution)

let create ~seed ~spec =
  let stats = Stats.create () in
  let arms = Array.make Fault.n_kinds None in
  List.iter
    (fun r ->
      let kind = r.Spec.kind in
      arms.(Fault.index kind) <-
        Some
          {
            thr = threshold r.Spec.rate;
            c_chances =
              Stats.counter stats
                (Printf.sprintf "chances_%s" (Fault.name kind));
            c_injected =
              Stats.counter stats
                (Printf.sprintf "injected_%s" (Fault.name kind));
          })
    spec;
  {
    prng = Prng.create ~seed;
    arms;
    spec;
    seed;
    stats;
    enabled = true;
    observer = None;
  }

let seed t = t.seed
let spec t = t.spec
let stats t = t.stats
let set_enabled t b = t.enabled <- b
let enabled t = t.enabled
let set_observer t f = t.observer <- f

let fire t kind =
  match Array.unsafe_get t.arms (Fault.index kind) with
  | None -> false
  | Some { thr = 0; _ } -> false
  | Some arm ->
    if not t.enabled then false
    else begin
      Stats.tick arm.c_chances;
      let hit = Prng.next t.prng land (resolution - 1) < arm.thr in
      if hit then begin
        Stats.tick arm.c_injected;
        match t.observer with Some f -> f kind | None -> ()
      end;
      hit
    end

let draw t bound = Prng.int t.prng bound

let injected t kind =
  Stats.get t.stats (Printf.sprintf "injected_%s" (Fault.name kind))

let injected_total t =
  List.fold_left (fun acc k -> acc + injected t k) 0 Fault.all
