(** Clock domains driving synchronous components.

    A clock fires a rising edge every period. On each edge, every registered
    component first has its [compute] function called (it reads the values
    that other components committed on previous edges and decides its next
    state) and then its [commit] function (it publishes the new state). The
    two-phase discipline gives register-transfer semantics: all components
    observe a consistent pre-edge snapshot regardless of registration order.

    A component registered with [~divide:n] only ticks on edges where
    [cycle mod n = phase]; this models a slower derived clock, e.g. the
    paper's 6 MHz IDEA core deriving from the 24 MHz memory clock.

    {2 Batched execution and idle fast-forward}

    Edges are not one engine event each. Inside an engine run span (whose
    bound the engine publishes as its {!Engine.horizon}), the clock executes
    edges inline, advancing time itself, until the span ends, a queued event
    intervenes, or an interrupt source requests a break — so the per-edge
    cost is two array sweeps, with no closure allocation and no heap
    traffic. Observable behaviour (component call sequence, [cycles],
    observer timestamps, engine [now] at run-loop boundaries) is identical
    to per-edge scheduling; the qcheck equivalence property in [test_sim]
    pins this against the reference implementation ([~batched:false]).

    Components may additionally opt into idle fast-forward by providing
    [idle_hint]/[skip] (see {!component}): when every component of a domain
    reports its upcoming ticks as no-ops, the clock jumps over the dead
    cycles in O(components) instead of ticking through them. *)

type component = {
  name : string;
  compute : unit -> unit;
  commit : unit -> unit;
  idle_hint : (unit -> int) option;
  skip : (int -> unit) option;
  commit_hazard : bool;
}

val component :
  ?idle_hint:(unit -> int) ->
  ?skip:(int -> unit) ->
  ?commit_hazard:bool ->
  name:string ->
  compute:(unit -> unit) ->
  commit:(unit -> unit) ->
  unit ->
  component
(** [idle_hint ()] must return how many of the component's {e own upcoming
    ticks} are guaranteed no-ops — would leave component state, shared port
    state and every counter exactly as ticking normally would — under the
    promise that no other component executes and no input changes until the
    component ticks again ([max_int] means "idle until an input changes",
    [0] means "my next tick does real work"). The hint must be a pure
    function of current state: it is re-queried at every edge where the
    component is enabled, {e in slot order during the compute phase}, so
    it sees everything earlier-registered slots latched for it this edge.

    [skip k] is called instead of [k] consecutive ticks the clock decided
    to fast-forward over; it must apply their exact aggregate effect
    (cycle counters, activity stats, countdown registers). [idle_hint] and
    [skip] must be given together; components that omit them disable
    fast-forward (but not batching) for their whole clock domain.

    [commit_hazard] (default [false]) must be set when the component's
    commit phase consumes state that a {e later-registered} slot's compute
    may write in the same edge — e.g. a bus wrapper whose commit moves a
    request its owning coprocessor posted during compute. Such a slot's
    hint is re-checked at its commit turn before the tick is skipped;
    hazard-free slots elide the whole tick on the compute-turn hint
    alone. *)

val compose : component -> component -> component
(** [compose a b] is one component behaving exactly like [a] and [b]
    registered back to back on the same clock at the same rate: [a]'s
    compute/commit/skip always run before [b]'s, the composite idle hint
    is the min of the two, and a skip is forwarded to both. On an edge
    where only one side has work the other side's [compute]/[commit] run
    instead of its [skip 1] — indistinguishable by the idle-hint
    contract. Use it to collapse tightly-coupled pipelines (IMU and
    coprocessor wrapper) into a single slot and halve per-edge dispatch. *)

type t

val create : ?batched:bool -> Engine.t -> name:string -> freq_hz:int -> t
(** Creates a stopped clock attached to [engine]. [batched] defaults to
    [true]; [~batched:false] forces the seed one-event-per-edge scheduling
    and exists as the reference side of differential tests. *)

val add : ?divide:int -> ?phase:int -> t -> component -> unit
(** Registers a component, in order, O(1) amortised. [divide] defaults to 1
    (every edge); [phase] defaults to 0 and must satisfy
    [0 <= phase < divide]. *)

val on_edge : t -> (int -> unit) -> unit
(** Registers an observer called after all commits on each edge with the
    just-completed cycle index. Used by waveform tracers. Observers must
    see every edge, so a clock with observers never fast-forwards (it
    still batches). *)

val start : t -> unit
(** Starts the clock: the first edge fires one period from now. Idempotent.

    Note the asserted stop/start contract: a {!stop}/[start] pair does not
    preserve edge phase — the restarted domain begins a fresh grid one full
    period after [start], like a reset release. Cycle timestamps therefore
    shift across VIM reconfigurations by design. *)

val stop : t -> unit
(** Stops the clock after the current edge, if any. Idempotent. *)

val running : t -> bool

val reset : t -> unit
(** Stops the clock and rewinds {!cycles} to zero while keeping every
    registered component and observer. After [reset], a {!start} produces
    the same edge grid and cycle indices as a freshly created clock —
    the contract the platform pool's in-place reuse relies on. *)

val cycles : t -> int
(** Number of edges elapsed since creation (executed or fast-forwarded). *)

val freq_hz : t -> int
val period : t -> Simtime.t
val name : t -> string
