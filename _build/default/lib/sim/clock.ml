type component = {
  name : string;
  compute : unit -> unit;
  commit : unit -> unit;
}

let component ~name ~compute ~commit = { name; compute; commit }

type slot = { comp : component; divide : int; phase : int }

type t = {
  engine : Engine.t;
  clk_name : string;
  freq_hz : int;
  period : Simtime.t;
  mutable slots : slot list; (* in registration order *)
  mutable observers : (int -> unit) list; (* in registration order *)
  mutable cycles : int;
  mutable running : bool;
  mutable generation : int; (* invalidates edges scheduled before a stop *)
}

let create engine ~name ~freq_hz =
  {
    engine;
    clk_name = name;
    freq_hz;
    period = Simtime.period_of_hz freq_hz;
    slots = [];
    observers = [];
    cycles = 0;
    running = false;
    generation = 0;
  }

let add ?(divide = 1) ?(phase = 0) t comp =
  if divide < 1 then invalid_arg "Clock.add: divide < 1";
  if phase < 0 || phase >= divide then invalid_arg "Clock.add: bad phase";
  t.slots <- t.slots @ [ { comp; divide; phase } ]

let on_edge t f = t.observers <- t.observers @ [ f ]

let enabled t slot = t.cycles mod slot.divide = slot.phase

let edge t =
  let active = List.filter (enabled t) t.slots in
  List.iter (fun s -> s.comp.compute ()) active;
  List.iter (fun s -> s.comp.commit ()) active;
  let cycle = t.cycles in
  t.cycles <- t.cycles + 1;
  List.iter (fun f -> f cycle) t.observers

let rec schedule_edge t =
  let gen = t.generation in
  Engine.schedule_after t.engine t.period (fun () ->
      if t.running && gen = t.generation then begin
        edge t;
        schedule_edge t
      end)

let start t =
  if not t.running then begin
    t.running <- true;
    t.generation <- t.generation + 1;
    schedule_edge t
  end

let stop t =
  if t.running then begin
    t.running <- false;
    t.generation <- t.generation + 1
  end

let running t = t.running
let cycles t = t.cycles
let freq_hz t = t.freq_hz
let period t = t.period
let name t = t.clk_name
