lib/core/imu_pipelined.ml: Imu
