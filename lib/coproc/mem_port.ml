module type S = sig
  type t

  val sample : t -> unit
  val start_seen : t -> bool

  val issue :
    t ->
    region:int ->
    addr:int ->
    wr:bool ->
    width:Rvi_core.Cp_port.width ->
    data:int ->
    unit

  val busy : t -> bool
  val ready : t -> bool
  val data : t -> int
  val finish : t -> unit
  val commit : t -> unit
  val reset : t -> unit

  val quiescent : t -> bool
  (** Whether one [sample]/[commit] tick of the owning coprocessor would
      leave the port in exactly this state (no latched start or response
      to consume, no request to move) — the port half of the
      {!Rvi_sim.Clock.component} idle contract. Implementations must be
      exact: [true] promises the tick is a no-op as long as no other
      component runs. *)
end

let read_param ~issue ~index = issue ~region:Rvi_core.Cp_port.param_obj ~addr:(4 * index)
