type result = int

type errno = ENOSYS | EINVAL | EBUSY | ENOMEM | ENOSPC | EFAULT | EIO

let errno_code = function
  | ENOSYS -> 38
  | EINVAL -> 22
  | EBUSY -> 16
  | ENOMEM -> 12
  | ENOSPC -> 28
  | EFAULT -> 14
  | EIO -> 5

let errno_of_code = function
  | 38 -> Some ENOSYS
  | 22 -> Some EINVAL
  | 16 -> Some EBUSY
  | 12 -> Some ENOMEM
  | 28 -> Some ENOSPC
  | 14 -> Some EFAULT
  | 5 -> Some EIO
  | _ -> None

let errno_name = function
  | ENOSYS -> "ENOSYS"
  | EINVAL -> "EINVAL"
  | EBUSY -> "EBUSY"
  | ENOMEM -> "ENOMEM"
  | ENOSPC -> "ENOSPC"
  | EFAULT -> "EFAULT"
  | EIO -> "EIO"

let err e = -errno_code e

let fpga_load = 3200
let fpga_map_object = 3201
let fpga_execute = 3202
let fpga_unload = 3203

type entry = { name : string; handler : int array -> result; mutable calls : int }

type t = { table : (int, entry) Hashtbl.t }

let create () = { table = Hashtbl.create 8 }

let register t ~number ~name handler =
  if Hashtbl.mem t.table number then
    invalid_arg (Printf.sprintf "Syscall.register: number %d already bound" number);
  Hashtbl.add t.table number { name; handler; calls = 0 }

let name_of t ~number =
  Option.map (fun e -> e.name) (Hashtbl.find_opt t.table number)

let dispatch t ~number args =
  match Hashtbl.find_opt t.table number with
  | None -> err ENOSYS
  | Some e ->
    e.calls <- e.calls + 1;
    e.handler args

let invocations t =
  Hashtbl.fold (fun _ e acc -> (e.name, e.calls) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
