(** Page replacement policies (paper §3.3).

    "When no page is available for allocation, several replacement policies
    are possible (e.g., first-in first-out, least recently used, random)."
    All three are implemented, plus the classic second-chance (clock)
    approximation of LRU; the [abl-policy] ablation compares them.

    The policy chooses among candidate frames described by hardware-kept
    metadata: load stamp (frame table), last-access stamp and reference bit
    (IMU TLB). *)

type candidate = {
  frame : int;
  page : int * int;  (** (object identifier, virtual page) held in it *)
  loaded_at : int;  (** IMU cycle when the page was placed *)
  last_access : int;  (** IMU cycle of the most recent translated access *)
  referenced : bool;  (** hardware reference bit *)
  dirty : bool;
}

type t

val fifo : unit -> t
val lru : unit -> t
val random : seed:int -> t
val second_chance : unit -> t

val oracle : trace:(int * int) array -> position:(unit -> int) -> t
(** Belady's optimal replacement, made online by profiling: [trace] is the
    page reference string recorded on a previous run of the same workload
    (the coprocessor's access sequence does not depend on the policy, so
    it replays exactly), and [position] reports how many references the
    current run has performed. The victim is the candidate whose next use
    lies farthest in the future. This is the "efficient allocation
    algorithms" direction the paper's conclusion calls for. *)

val name : t -> string

val all_names : string list
val of_name : ?seed:int -> string -> t option
(** [of_name "random"] needs [seed] (defaults to 42). *)

val choose : t -> clear_ref:(int -> unit) -> candidate array -> int
(** Picks the victim frame. [clear_ref frame] lets the second-chance scan
    strip hardware reference bits as it passes. The candidate array must be
    non-empty ([Invalid_argument] otherwise). Deterministic for a given
    policy state and candidate list. *)
