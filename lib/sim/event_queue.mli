(** Priority queue of timestamped events.

    A classic array-backed binary min-heap. Events carry an insertion
    sequence number so that two events scheduled for the same instant pop in
    insertion order, which keeps simulations deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:Simtime.t -> 'a -> unit
(** [push q ~time x] inserts [x] with priority [time]. *)

val pop : 'a t -> (Simtime.t * 'a) option
(** Removes and returns the event with the smallest time (ties broken by
    insertion order), or [None] if the queue is empty. *)

val peek_time : 'a t -> Simtime.t option
(** The time of the next event without removing it. *)

val peek_time_ps : 'a t -> int
(** Time of the earliest queued cell in picoseconds, [max_int] when the
    queue is empty; never allocates. *)

val clear : 'a t -> unit
