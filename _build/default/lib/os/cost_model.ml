type t = {
  cpu_freq_hz : int;
  syscall_entry : int;
  syscall_exit : int;
  irq_entry : int;
  irq_exit : int;
  fault_decode : int;
  tlb_update : int;
  page_bookkeeping : int;
  param_word : int;
  configure_pld : int;
  process_wakeup : int;
}

let default ~cpu_freq_hz =
  if cpu_freq_hz <= 0 then invalid_arg "Cost_model.default: bad frequency";
  {
    cpu_freq_hz;
    syscall_entry = 600;
    syscall_exit = 400;
    irq_entry = 500;
    irq_exit = 350;
    fault_decode = 450;
    tlb_update = 180;
    page_bookkeeping = 250;
    param_word = 40;
    configure_pld = 4_000_000;
    process_wakeup = 800;
  }

let time_of_cycles t n =
  if n < 0 then invalid_arg "Cost_model.time_of_cycles: negative cycles";
  Rvi_sim.Simtime.of_cycles ~hz:t.cpu_freq_hz n

let cycles_of_time t d = Rvi_sim.Simtime.cycles_of ~hz:t.cpu_freq_hz d
