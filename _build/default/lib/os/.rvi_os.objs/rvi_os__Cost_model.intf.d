lib/os/cost_model.mli: Rvi_sim
