lib/coproc/arbiter.mli: Rvi_core Rvi_sim
