type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable now : Simtime.t;
  mutable events_processed : int;
  mutable horizon : Simtime.t option;
      (* upper bound of the run span currently executing; clock domains
         batch edges inline up to it instead of re-entering the heap *)
  mutable break_requested : bool;
      (* set by interrupt sources so an inline batch ends early and the
         driving run loop re-checks its condition *)
}

exception Stalled

let create () =
  {
    queue = Event_queue.create ();
    now = Simtime.zero;
    events_processed = 0;
    horizon = None;
    break_requested = false;
  }

let now t = t.now
let horizon t = t.horizon
let peek_next t = Event_queue.peek_time t.queue

(* Allocation-free variant for the clock's per-edge batching check:
   [max_int] when the queue is empty. *)
let[@inline] peek_ps t = Event_queue.peek_time_ps t.queue
let request_break t = t.break_requested <- true

let take_break t =
  if t.break_requested then begin
    t.break_requested <- false;
    true
  end
  else false

let schedule_at t time f =
  if Simtime.(time < t.now) then
    invalid_arg "Engine.schedule_at: time in the past";
  Event_queue.push t.queue ~time f

let schedule_after t delay f = schedule_at t (Simtime.add t.now delay) f

(* Clock-edge hot path: runs once per inline-batched edge, so the guard
   reads the queue head through the allocation-free [peek_time_ps]
   ([max_int] when empty) instead of the option-boxing [peek_time]. *)
let jump_to t time =
  if Simtime.(time < t.now) then invalid_arg "Engine.jump_to: time in the past";
  if Event_queue.peek_time_ps t.queue < Simtime.to_ps time then
    invalid_arg "Engine.jump_to: would skip a queued event";
  t.now <- time;
  t.events_processed <- t.events_processed + 1

(* Trusted variant for the clock's inline edge loop: the caller has this
   very edge bounded the target by the horizon and by the queue head, so
   the guards in [jump_to] would only re-prove facts it just established —
   at the price of one extra queue peek per simulated edge. *)
let[@inline] jump_unchecked t time =
  t.now <- time;
  t.events_processed <- t.events_processed + 1

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, f) ->
    t.now <- time;
    t.events_processed <- t.events_processed + 1;
    f ();
    true

(* Both run loops publish their span bound as the horizon for the duration
   of the loop (restoring the previous bound on exit, so a nested
   [run_until] inside a [run_while] segment batches against its own
   deadline), and clear any break left over from outside the span — a
   break's only meaning is "end the current inline batch". *)
let with_horizon t h f =
  let saved = t.horizon in
  t.horizon <- h;
  t.break_requested <- false;
  Fun.protect ~finally:(fun () -> t.horizon <- saved) f

let run_until t deadline =
  with_horizon t (Some deadline) (fun () ->
      let rec loop () =
        match Event_queue.peek_time t.queue with
        | Some time when Simtime.(time <= deadline) ->
          ignore (step t);
          loop ()
        | Some _ | None -> ()
      in
      loop ());
  if Simtime.(t.now < deadline) then t.now <- deadline

let advance t dt = run_until t (Simtime.add t.now dt)

let run_while ?horizon t cond =
  with_horizon t horizon (fun () ->
      let rec loop () =
        if cond () then
          if step t then loop () else raise Stalled
      in
      loop ())

let events_processed t = t.events_processed

(* Platform pooling: discard every queued event and rewind the timeline to
   the origin, so a reused engine is indistinguishable from [create ()] —
   absolute timestamps (trace events, cycle stamps) match a fresh platform
   bit for bit. *)
let reset t =
  Event_queue.clear t.queue;
  t.now <- Simtime.zero;
  t.events_processed <- 0;
  t.horizon <- None;
  t.break_requested <- false
