lib/core/imu_regs.mli:
