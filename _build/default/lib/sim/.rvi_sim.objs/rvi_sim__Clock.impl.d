lib/sim/clock.ml: Engine List Simtime
