examples/portability.ml: List Printf Rvi_fpga Rvi_harness Rvi_sim
