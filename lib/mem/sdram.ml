type t = { ram : Ram.t; mutable brk : int }

let create ~size = { ram = Ram.create ~size; brk = 0 }
let size t = Ram.size t.ram

let alloc t ?(align = 4) n =
  if n < 0 then invalid_arg "Sdram.alloc: negative size";
  if align <= 0 || align land (align - 1) <> 0 then
    invalid_arg "Sdram.alloc: alignment must be a power of two";
  let base = (t.brk + align - 1) land lnot (align - 1) in
  if base + n > size t then raise Out_of_memory;
  t.brk <- base + n;
  base

let used t = t.brk
let release_all t = t.brk <- 0

let read8 t = Ram.read8 t.ram
let write8 t = Ram.write8 t.ram
let read16 t = Ram.read16 t.ram
let write16 t = Ram.write16 t.ram
let read32 t = Ram.read32 t.ram
let write32 t = Ram.write32 t.ram

let write_bytes t addr b =
  Ram.blit_from_bytes b ~src:0 t.ram ~dst:addr ~len:(Bytes.length b)

let read_bytes t addr ~len =
  let b = Bytes.create len in
  Ram.blit_to_bytes t.ram ~src:addr b ~dst:0 ~len;
  b

let read_into t addr buf ~dst ~len =
  Ram.blit_to_bytes t.ram ~src:addr buf ~dst ~len

let blit_out t ~src b ~dst ~len = Ram.blit_to_bytes t.ram ~src b ~dst ~len
let blit_in b ~src t ~dst ~len = Ram.blit_from_bytes b ~src t.ram ~dst ~len

let raw t = t.ram

let reset t =
  if t.brk > 0 then Ram.fill t.ram ~pos:0 ~len:t.brk '\000';
  t.brk <- 0
