.PHONY: all build test bench bench-smoke sva-smoke chaos-smoke serve-smoke examples check faults-smoke faults-determinism clean

all: build

build:
	dune build @all

test:
	dune runtest

# Everything CI runs: a clean build, the test suite, and a guard against
# accidentally committing the dune build tree.
check:
	dune build @all
	dune runtest
	$(MAKE) sva-smoke
	$(MAKE) chaos-smoke
	$(MAKE) serve-smoke
	@if git ls-files --error-unmatch _build >/dev/null 2>&1 || \
	   git diff --cached --name-only --diff-filter=AM | grep -q '^_build/'; then \
	  echo "error: _build/ is tracked or staged; it must stay ignored" >&2; \
	  exit 1; \
	fi

# Seeded mini fault-injection campaign: fails on any uncaught exception or
# on a degraded run whose software fallback produced wrong output. Keeps a
# JSONL trace of every injection/retry/recovery decision for post-mortems.
# Artefacts land under results/ so the repo root stays clean.
faults-smoke:
	mkdir -p results
	dune exec bin/rvisim.exe -- faults --runs 100 --seed 2004 --jobs 1 \
	  --trace results/faults-smoke.trace.jsonl --csv results/faults-smoke.csv

# Determinism gate: the sharded runner must reproduce the serial
# campaign byte for byte.
faults-determinism:
	mkdir -p results
	dune exec bin/rvisim.exe -- faults --runs 100 --seed 2004 --jobs 1 \
	  --csv results/faults-j1.csv
	dune exec bin/rvisim.exe -- faults --runs 100 --seed 2004 --jobs 4 \
	  --csv results/faults-j4.csv
	cmp results/faults-j1.csv results/faults-j4.csv
	@echo "faults --jobs 4 is byte-identical to --jobs 1"

bench:
	dune exec bench/main.exe

# Quick campaign benchmark: appends one trajectory point (commit, host
# cores, runs/s) to BENCH_campaign.json and fails if serial throughput
# regressed more than 20% against the newest committed point. The gate
# compares runs/s, so a smaller --runs smoke still gates correctly.
bench-smoke:
	dune exec bin/rvisim.exe -- bench --runs 100 --jobs 2 --gate 0.2

# Chaos smoke: a bounded generated campaign (any invariant violation
# inside the generated envelope is a real bug and fails the gate) plus a
# replay of every pinned repro under test/corpus/. Violations found by
# the campaign are shrunk to minimal repros under results/corpus/, which
# CI uploads as an artefact.
chaos-smoke:
	mkdir -p results/corpus
	dune exec bin/rvisim.exe -- chaos --seed 2004 --count 50 --jobs 2 \
	  --shrink --corpus results/corpus
	dune exec bin/rvisim.exe -- chaos --replay test/corpus/*.scenario

# Multi-tenant service smoke: every policy in both translation modes
# over a sharded campaign that must reproduce the serial digest, with
# every service invariant enforced (no starvation, clean interfaces,
# sane latency statistics). Appends one trajectory point per cell to
# BENCH_serve.json and gates against the newest committed points.
serve-smoke:
	mkdir -p results
	dune exec bin/rvisim.exe -- serve --tenants 40 --requests 400 \
	  --policy all --translation both --seed 42 --jobs 2 \
	  --verify-determinism --csv results/serve-smoke.csv \
	  --json BENCH_serve.json --gate 0.5

# Translation-mode smoke: runs the adpcm ablation in both translation
# modes and asserts paper mode never touches the page-table walker while
# IOMMU/SVA mode always does — the cheap end-to-end guard that the mode
# switch is actually switching.
sva-smoke:
	dune exec bin/rvisim.exe -- ablate --translation --smoke

examples:
	dune exec examples/quickstart.exe
	dune exec examples/adpcm_player.exe
	dune exec examples/idea_crypto.exe
	dune exec examples/portability.exe
	dune exec examples/multiprogramming.exe
	dune exec examples/trace_explorer.exe
	dune exec examples/codesign_flow.exe
	dune exec examples/fault_storm.exe

clean:
	dune clean
