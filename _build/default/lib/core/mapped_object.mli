(** Data objects declared through [FPGA_MAP_OBJECT] (paper §3.1).

    An object is the arrangement between the software and the hardware
    designer: the software declares "object 0 is this vector", the
    coprocessor addresses it by identifier and byte offset, and the OS owns
    its placement. The direction flag is the optimisation hint the call's
    optional flags argument carries: output-only pages need not be loaded
    from user space before first use. *)

type direction = In | Out | Inout

val direction_name : direction -> string

type t = private {
  id : int;  (** coprocessor-visible identifier, 0..254 *)
  buf : Rvi_os.Uspace.buf;  (** backing user-space buffer *)
  dir : direction;
  stream : bool;  (** sequential-access hint enabling prefetch *)
}

val make :
  id:int -> buf:Rvi_os.Uspace.buf -> dir:direction -> ?stream:bool -> unit -> t
(** Raises [Invalid_argument] for identifiers outside [0, 254] or an empty
    buffer. [stream] defaults to [false]. *)

val size : t -> int

val page_span : t -> Rvi_mem.Page.geometry -> int
(** Number of pages the object occupies. *)

val bytes_on_page : t -> Rvi_mem.Page.geometry -> vpn:int -> int
(** How many bytes of the object live on virtual page [vpn] — a full page
    except possibly the last. Zero if [vpn] is beyond the object. *)

val user_offset : t -> Rvi_mem.Page.geometry -> vpn:int -> int
(** Offset of that page's data inside the user buffer. *)

val pp : Format.formatter -> t -> unit
