(** The serve campaign driver: a cell per (policy, translation-mode)
    pair, each an independent seeded service simulation, fanned out over
    the persistent domain pool. Results — including the per-request CSV
    and its digest — are a pure function of the cell list, never of the
    domain count. *)

type cell = {
  cl_policy : Sched_policy.t;
  cl_translation : Rvi_core.Translation_mode.t;
  cl_seed : int;
  cl_tenants : int;
  cl_requests : int;
  cl_rate_hz : int;  (** 0 = closed loop *)
  cl_quantum_us : int;
  cl_bytes : int;
}

type cell_result = {
  cr_cell : cell;
  cr_report : Slo.report;
  cr_outcome : Service.outcome;
  cr_csv : string;  (** one row per completion, completion order *)
  cr_digest : string;  (** hex digest of [cr_csv] *)
  cr_wall_s : float;
}

val cell_label : cell -> string
val csv_header : string

val run_cell : cell -> cell_result

val cells :
  policies:Sched_policy.t list ->
  translations:Rvi_core.Translation_mode.t list ->
  seed:int ->
  tenants:int ->
  requests:int ->
  rate_hz:int ->
  quantum_us:int ->
  bytes:int ->
  cell list

val campaign : ?jobs:int -> cell list -> cell_result list
(** Results in cell order whatever [jobs] is. *)

val digest : cell_result list -> string
(** Concatenated per-cell digests — the classification fingerprint the
    determinism check compares across [--jobs] values. *)

val violations : cell_result -> string list
(** Human-readable invariant violations of one cell: starved tenants,
    consistency failures, insane SLO statistics, a blown dispatch
    budget. Empty on a clean run. *)
