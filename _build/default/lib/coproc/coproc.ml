type t = {
  name : string;
  component : Rvi_sim.Clock.component;
  finished : unit -> bool;
  reset : unit -> unit;
  stats : Rvi_sim.Stats.t;
}
