(** Round-robin scheduler over the process table.

    Minimal but real: a run queue, a current process, sleep/wake
    transitions. During a coprocessor run the caller sleeps and — unless an
    overlap workload is registered — the idle task runs, exactly as on the
    paper's single-application Linux setup. *)

type t

val create : unit -> t
(** Contains only the idle task (pid 0). *)

val spawn : t -> name:string -> Proc.t
(** Allocates a pid and enqueues a new [Ready] process. *)

val current : t -> Proc.t
(** The running process (the idle task if nothing else is runnable). *)

val find : t -> pid:int -> Proc.t option

val schedule : t -> Proc.t
(** Picks the next [Ready] process round-robin, makes it [Running] (moving
    the previous one back to [Ready] if it was running) and returns it.
    Returns the idle task when the run queue is empty. *)

val sleep_current : t -> unit
(** Puts the current process to sleep and schedules another. The idle task
    cannot sleep. *)

val wake : t -> pid:int -> unit
(** Makes a sleeping process [Ready]. No-op if it is not sleeping — but
    such redundant wakes are counted (see {!redundant_wakes}): a caller
    waking a process twice has a double-wake bug. *)

val redundant_wakes : t -> int
(** Number of {!wake} calls that found an existing process not sleeping. *)

val exit_current : t -> unit

val context_switches : t -> int

val processes : t -> Proc.t list
(** All processes, idle task first. *)

val reset : t -> unit
(** Platform pooling: every non-exited process back to [Ready], the idle
    task current, counters rewound. Raises [Invalid_argument] if a process
    has exited — such a platform must not be reused. *)
