(** Multiprogramming the reconfigurable lattice.

    [FPGA_LOAD] "ensures the exclusive use of the resource" (§3.1), which
    makes the lattice a scheduled resource as soon as several applications
    want coprocessors — the concern of the related work the paper cites
    (Walder & Platzner; Dales). This module models that workload: a batch
    of jobs from different applications, each needing its own bit-stream,
    executed on one device under a dispatch discipline.

    Because the Excalibur reconfigures in tens of milliseconds, the
    discipline matters: first-come-first-served over an interleaved
    arrival order thrashes the configuration port, while batching jobs by
    bit-stream amortises it. The experiment quantifies exactly that
    trade-off. *)

type app_kind = Adpcm | Idea | Fir

val app_name : app_kind -> string

type job = { kind : app_kind; seed : int; input_bytes : int }

type discipline =
  | Fcfs  (** run jobs in arrival order, reconfiguring whenever needed *)
  | Grouped  (** stable-sort by bit-stream first (batching dispatcher) *)

val discipline_name : discipline -> string

type result = {
  jobs_done : int;
  all_verified : bool;
  makespan : Rvi_sim.Simtime.t;  (** submission of first to completion of last *)
  reconfigurations : int;
  configuration_time : Rvi_sim.Simtime.t;  (** total time spent reconfiguring *)
}

val run : Config.t -> jobs:job list -> discipline -> result
(** Builds one platform (kernel, PLD, dual-port RAM) with a station per
    application kind — its own IMU, clock domain, VIM on a dedicated
    interrupt line — and dispatches the batch. Every job's output is
    verified against its software reference. *)

val mixed_batch : seed:int -> jobs_per_app:int -> job list
(** The standard experiment workload: interleaved adpcm (4 KB), IDEA
    (4 KB) and FIR (8 KB) jobs. *)
