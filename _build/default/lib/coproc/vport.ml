module Cp_port = Rvi_core.Cp_port

type request = {
  region : int;
  addr : int;
  wr : bool;
  width : Cp_port.width;
  data : int;
}

(* The bus side of the wrapper lives in the IMU clock domain
   ([sync_component]): requests leave as single-cycle CP_ACCESS pulses at
   the IMU rate and the IMU's single-cycle response pulses are latched
   into sticky flags, which the (possibly slower) coprocessor consumes at
   its own rate. *)
type t = {
  port : Cp_port.t;
  mutable pending : request option; (* posted by the coprocessor *)
  mutable waiting : bool; (* pulse sent, response not yet consumed *)
  mutable resp_valid : bool;
  mutable resp_data : int;
  mutable start_flag : bool;
  (* values latched for the coprocessor's current compute cycle *)
  mutable hit_now : bool;
  mutable data_now : int;
  mutable start_now : bool;
  mutable fin_req : bool;
  mutable accesses : int;
}

let create port =
  {
    port;
    pending = None;
    waiting = false;
    resp_valid = false;
    resp_data = 0;
    start_flag = false;
    hit_now = false;
    data_now = 0;
    start_now = false;
    fin_req = false;
    accesses = 0;
  }

let sync_compute t =
  if t.port.Cp_port.cp_start then t.start_flag <- true;
  if t.waiting && t.port.Cp_port.cp_tlbhit then begin
    t.resp_valid <- true;
    t.resp_data <- t.port.Cp_port.cp_din
  end

let sync_commit t =
  let p = t.port in
  (match t.pending with
  | Some r when not t.waiting ->
    p.Cp_port.cp_obj <- r.region;
    p.Cp_port.cp_addr <- r.addr;
    p.Cp_port.cp_wr <- r.wr;
    p.Cp_port.cp_width <- r.width;
    p.Cp_port.cp_dout <- r.data;
    p.Cp_port.cp_access <- true;
    t.pending <- None;
    t.waiting <- true
  | Some _ | None -> p.Cp_port.cp_access <- false);
  p.Cp_port.cp_fin <- t.fin_req

let sync_component t =
  Rvi_sim.Clock.component ~name:"vport-sync"
    ~compute:(fun () -> sync_compute t)
    ~commit:(fun () -> sync_commit t)

let sample t =
  t.start_now <- t.start_flag;
  t.start_flag <- false;
  if t.start_now then t.fin_req <- false;
  t.hit_now <- t.resp_valid;
  if t.hit_now then begin
    t.data_now <- t.resp_data;
    t.resp_valid <- false;
    t.waiting <- false
  end

let start_seen t = t.start_now
let busy t = t.pending <> None || t.waiting
let ready t = t.hit_now
let data t = t.data_now

let issue t ~region ~addr ~wr ~width ~data =
  assert (not (busy t));
  t.pending <- Some { region; addr; wr; width; data };
  t.accesses <- t.accesses + 1

let finish t = t.fin_req <- true

(* Port driving happens in the IMU domain ({!sync_component}); nothing to
   do at the coprocessor's own commit. *)
let commit _t = ()

let reset t =
  t.pending <- None;
  t.waiting <- false;
  t.resp_valid <- false;
  t.resp_data <- 0;
  t.start_flag <- false;
  t.hit_now <- false;
  t.data_now <- 0;
  t.start_now <- false;
  t.fin_req <- false

let accesses t = t.accesses
