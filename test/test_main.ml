(* Test entry point: one Alcotest suite per library plus integration. *)

let () =
  Alcotest.run "rvi"
    [
      ("sim", Test_sim.suite);
      ("obs", Test_obs.suite);
      ("hw", Test_hw.suite);
      ("mem", Test_mem.suite);
      ("fpga", Test_fpga.suite);
      ("os", Test_os.suite);
      ("inject", Test_inject.suite);
      ("core", Test_core.suite);
      ("vim", Test_vim.suite);
      ("rtl", Test_rtl.suite);
      ("coproc", Test_coproc.suite);
      ("harness", Test_harness.suite);
      ("par", Test_par.suite);
      ("scenario", Test_scenario.suite);
      ("svc", Test_svc.suite);
    ]
