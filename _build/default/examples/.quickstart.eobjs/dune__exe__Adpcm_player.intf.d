examples/adpcm_player.mli:
