module Simtime = Rvi_sim.Simtime
module Clock = Rvi_sim.Clock
module Kernel = Rvi_os.Kernel
module Uspace = Rvi_os.Uspace
module Device = Rvi_fpga.Device

let null_formatter =
  Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

(* Ablation sweeps shard variant-per-item over domains: every variant
   builds its own engine/kernel/device stack, so rows are independent
   and [Par.map] keeps them in variant order whatever [jobs] is.
   Rendering happens after the barrier, on the calling domain. *)
let par_variants ?(jobs = 1) f variants =
  List.concat (Rvi_par.Par.map ~domains:jobs ~chunk:1 f variants)

(* {1 Figure 7} *)

type fig7 = { waveform : string; vcd : string; latency_cycles : int }

let fig7 ?(pipelined = false) ppf () =
  let cfg =
    let base = Config.default () in
    if pipelined then { base with Config.imu_kind = Config.Pipelined } else base
  in
  let p =
    Platform.create ~app_name:"fig7" cfg
      ~bitstream:Calibration.vecadd_bitstream
      ~make:Rvi_coproc.Vecadd.Virtual.create
  in
  let kernel = p.Platform.kernel in
  let api = p.Platform.api in
  let wave = Platform.trace p in
  let n = 4 in
  let a, b = Workload.vectors ~seed:7 ~n in
  let word_bytes words =
    let bts = Bytes.create (4 * Array.length words) in
    Array.iteri
      (fun i w ->
        for k = 0 to 3 do
          Bytes.set bts ((4 * i) + k) (Char.chr ((w lsr (8 * k)) land 0xFF))
        done)
      words;
    bts
  in
  let buf_a = Uspace.of_bytes kernel (word_bytes a) in
  let buf_b = Uspace.of_bytes kernel (word_bytes b) in
  let buf_c = Uspace.alloc kernel (4 * n) in
  let ok r = match r with Ok () -> () | Error _ -> failwith "fig7: setup failed" in
  ok (Rvi_core.Api.fpga_load api Calibration.vecadd_bitstream);
  ok
    (Rvi_core.Api.fpga_map_object api ~id:Rvi_coproc.Vecadd.obj_a ~buf:buf_a
       ~dir:Rvi_core.Mapped_object.In ());
  ok
    (Rvi_core.Api.fpga_map_object api ~id:Rvi_coproc.Vecadd.obj_b ~buf:buf_b
       ~dir:Rvi_core.Mapped_object.In ());
  ok
    (Rvi_core.Api.fpga_map_object api ~id:Rvi_coproc.Vecadd.obj_c ~buf:buf_c
       ~dir:Rvi_core.Mapped_object.Out ());
  ok (Rvi_core.Api.fpga_execute api ~params:[ n ]);
  (* Find a translated *data* read: a CP_ACCESS pulse on object A followed
     by CP_TLBHIT (parameter-page reads hit too, so skip object 255). *)
  let access = Rvi_hw.Wave.values wave "cp_access" in
  let hit = Rvi_hw.Wave.values wave "cp_tlbhit" in
  let obj = Rvi_hw.Wave.values wave "cp_obj" in
  let wr = Rvi_hw.Wave.values wave "cp_wr" in
  let find_pulse () =
    let n = Array.length access in
    let rec go i =
      if i >= n then None
      else if
        access.(i) = 1
        && obj.(i) <> Rvi_core.Cp_port.param_obj
        && wr.(i) = 0
      then Some i
      else go (i + 1)
    in
    go 0
  in
  let pulse = Option.value (find_pulse ()) ~default:0 in
  let latency =
    let rec go k = if pulse + k >= Array.length hit then k else if hit.(pulse + k) = 1 then k else go (k + 1) in
    go 1
  in
  let from_cycle = max 0 (pulse - 1) in
  let waveform = Rvi_hw.Wave.render_ascii ~from_cycle ~cycles:(latency + 4) wave in
  let vcd =
    Rvi_hw.Wave.to_vcd
      ~timescale_ps:(Simtime.to_ps (Clock.period p.Platform.clock))
      wave
  in
  Format.fprintf ppf
    "@.== Figure 7: coprocessor read access through the %s IMU ==@.%s@.Data \
     is ready on rising edge %d after CP_ACCESS (paper: 4th edge).@."
    (if pipelined then "pipelined" else "4-cycle")
    waveform latency;
  { waveform; vcd; latency_cycles = latency }

(* {1 Figures 8 and 9} *)

let fig8 ?(sizes_kb = [ 2; 4; 8 ]) ?jobs ppf cfg =
  let rows =
    par_variants ?jobs
      (fun kb ->
        let input = Workload.adpcm_stream ~seed:(100 + kb) ~bytes:(kb * 1024) in
        [ Runner.adpcm_sw cfg ~input; Runner.adpcm_vim cfg ~input ])
      sizes_kb
  in
  Report.print_table
    ~title:"== Figure 8: adpcmdecode execution times (SW vs VIM-based) =="
    ppf rows;
  Report.bar_chart ~title:"(stacked bars, as in the paper's Figure 8)"
    ~baseline_version:"SW" ppf rows;
  rows

let fig9 ?(sizes_kb = [ 4; 8; 16; 32 ]) ?jobs ppf cfg =
  let key = Workload.idea_key ~seed:cfg.Config.seed in
  let rows =
    par_variants ?jobs
      (fun kb ->
        let input = Workload.idea_plaintext ~seed:(200 + kb) ~bytes:(kb * 1024) in
        [
          Runner.idea_sw cfg ~key ~input;
          Runner.idea_normal cfg ~key ~input;
          Runner.idea_vim cfg ~key ~input;
        ])
      sizes_kb
  in
  Report.print_table
    ~title:
      "== Figure 9: IDEA execution times (SW vs normal coprocessor vs \
       VIM-based) =="
    ppf rows;
  Report.bar_chart ~title:"(stacked bars, as in the paper's Figure 9)"
    ~baseline_version:"SW" ppf rows;
  rows

(* {1 Overhead claims} *)

type overheads = {
  adpcm_imu_share_max : float;
  idea_translation_share : float;
  dp_share_of_overhead : float;
}

let overheads ppf cfg =
  let f8 = fig8 null_formatter cfg in
  let f9 = fig9 null_formatter cfg in
  let ms = Simtime.to_ms in
  let adpcm_imu_share_max =
    List.fold_left
      (fun acc (r : Report.row) ->
        if r.Report.version = "VIM" && r.Report.outcome = Report.Measured then
          Float.max acc (ms r.Report.sw_imu /. ms r.Report.total)
        else acc)
      0.0 f8
  in
  let idea_translation_share =
    (* Compare hardware time with and without translation at a size both
       versions can run (8 KB). *)
    let find version kb =
      List.find_opt
        (fun (r : Report.row) ->
          r.Report.version = version && r.Report.input_bytes = kb * 1024
          && r.Report.outcome = Report.Measured)
        f9
    in
    match (find "VIM" 8, find "NORMAL" 8) with
    | Some v, Some n when ms v.Report.hw > 0.0 ->
      (ms v.Report.hw -. ms n.Report.hw) /. ms v.Report.hw
    | _ -> 0.0
  in
  let dp_share_of_overhead =
    let dp, rest =
      List.fold_left
        (fun (dp, rest) (r : Report.row) ->
          if r.Report.version = "VIM" && r.Report.outcome = Report.Measured then
            ( dp +. ms r.Report.sw_dp,
              rest +. ms r.Report.sw_imu +. ms r.Report.sw_os )
          else (dp, rest))
        (0.0, 0.0) (f8 @ f9)
    in
    if dp +. rest > 0.0 then dp /. (dp +. rest) else 0.0
  in
  let o = { adpcm_imu_share_max; idea_translation_share; dp_share_of_overhead } in
  Format.fprintf ppf
    "@.== §4.1 overhead claims ==@.IMU-management share of total (max over \
     adpcm runs): %.2f%% (paper: up to 2.5%%)@.IDEA translation overhead \
     share of HW time: %.1f%% (paper: about 20%%)@.Dual-port management \
     share of software overhead: %.1f%% (paper: the largest fraction)@."
    (100.0 *. o.adpcm_imu_share_max)
    (100.0 *. o.idea_translation_share)
    (100.0 *. o.dp_share_of_overhead);
  o

(* {1 Ablations} *)

let print_labeled ppf ~title rows =
  Format.fprintf ppf "@.== %s ==@." title;
  Report.print_table ppf (List.map snd rows);
  List.iter
    (fun (label, (r : Report.row)) ->
      match r.Report.outcome with
      | Report.Measured ->
        Format.fprintf ppf "  %-28s %8.3f ms  (faults %d)@." label
          (Simtime.to_ms r.Report.total) r.Report.faults
      | Report.Exceeds_memory ->
        Format.fprintf ppf "  %-28s exceeds available memory@." label
      | Report.Degraded m ->
        Format.fprintf ppf "  %-28s degraded to software (%s)@." label m
      | Report.Failed m -> Format.fprintf ppf "  %-28s FAILED: %s@." label m)
    rows

let adpcm_8k cfg = Workload.adpcm_stream ~seed:cfg.Config.seed ~bytes:(8 * 1024)
let idea_32k cfg = Workload.idea_plaintext ~seed:cfg.Config.seed ~bytes:(32 * 1024)

let ablation_policy ?jobs ppf cfg =
  let input = adpcm_8k cfg in
  let key = Workload.idea_key ~seed:cfg.Config.seed in
  let pt = idea_32k cfg in
  let rows =
    par_variants ?jobs
      (fun name ->
        let cfg = Config.with_policy cfg name in
        [
          ("adpcm-8KB/" ^ name, Runner.adpcm_vim cfg ~input);
          ("idea-32KB/" ^ name, Runner.idea_vim cfg ~key ~input:pt);
        ])
      Rvi_core.Policy.all_names
  in
  print_labeled ppf ~title:"Ablation: replacement policy (§3.3)" rows;
  rows

let ablation_prefetch ?jobs ppf cfg =
  let input = adpcm_8k cfg in
  let variants =
    [
      ("off", Rvi_core.Prefetch.off);
      ("sequential-1", Rvi_core.Prefetch.sequential ~depth:1);
      ("sequential-2", Rvi_core.Prefetch.sequential ~depth:2);
    ]
  in
  let rows =
    par_variants ?jobs
      (fun (label, prefetch) ->
        let cfg = { cfg with Config.prefetch } in
        [ ("adpcm-8KB/prefetch-" ^ label, Runner.adpcm_vim cfg ~input) ])
      variants
  in
  print_labeled ppf ~title:"Ablation: page prefetching (§3.3)" rows;
  rows

let ablation_pipelined_imu ?jobs ppf cfg =
  let key = Workload.idea_key ~seed:cfg.Config.seed in
  let pt = idea_32k cfg in
  let input = adpcm_8k cfg in
  let rows =
    par_variants ?jobs
      (fun kind ->
        let cfg = { cfg with Config.imu_kind = kind } in
        let label = Config.imu_kind_name kind in
        [
          ("idea-32KB/" ^ label, Runner.idea_vim cfg ~key ~input:pt);
          ("adpcm-8KB/" ^ label, Runner.adpcm_vim cfg ~input);
        ])
      [ Config.Four_cycle; Config.Pipelined ]
  in
  print_labeled ppf
    ~title:"Ablation: pipelined IMU (the paper's announced follow-up, §4.1)"
    rows;
  rows

let ablation_transfer ?jobs ppf cfg =
  let input = adpcm_8k cfg in
  let key = Workload.idea_key ~seed:cfg.Config.seed in
  let pt = idea_32k cfg in
  let rows =
    par_variants ?jobs
      (fun (label, transfer) ->
        let cfg = { cfg with Config.transfer } in
        [
          ("adpcm-8KB/" ^ label, Runner.adpcm_vim cfg ~input);
          ("idea-32KB/" ^ label, Runner.idea_vim cfg ~key ~input:pt);
        ])
      [ ("double", Rvi_core.Vim.Double); ("single", Rvi_core.Vim.Single) ]
  in
  print_labeled ppf
    ~title:"Ablation: page transfer mode (naive double vs announced single, §4.1)"
    rows;
  rows

let ablation_tlb_size ?jobs ppf cfg =
  let key = Workload.idea_key ~seed:cfg.Config.seed in
  let pt = idea_32k cfg in
  let rows =
    par_variants ?jobs
      (fun entries ->
        let cfg = { cfg with Config.tlb_entries = Some entries } in
        [ (entries, Runner.idea_vim cfg ~key ~input:pt) ])
      [ 2; 4; 8 ]
  in
  print_labeled ppf ~title:"Ablation: TLB size (entries vs refill faults)"
    (List.map (fun (n, r) -> (Printf.sprintf "idea-32KB/tlb-%d" n, r)) rows);
  rows

let portability ?jobs ppf cfg =
  let input = adpcm_8k cfg in
  let key = Workload.idea_key ~seed:cfg.Config.seed in
  let pt = idea_32k cfg in
  let rows =
    par_variants ?jobs
      (fun device ->
        let cfg = { cfg with Config.device } in
        let name = device.Device.name in
        [
          ("adpcm-8KB/" ^ name, Runner.adpcm_vim cfg ~input);
          ("idea-32KB/" ^ name, Runner.idea_vim cfg ~key ~input:pt);
        ])
      Device.all
  in
  print_labeled ppf
    ~title:
      "Portability: identical application and coprocessor across devices \
       (§4: only the kernel module is recompiled)"
    rows;
  rows

let ablation_chunked_normal ppf cfg =
  let key = Workload.idea_key ~seed:cfg.Config.seed in
  let input = Workload.idea_plaintext ~seed:cfg.Config.seed ~bytes:(16 * 1024) in
  let vim_row = Runner.idea_vim cfg ~key ~input in
  let plain_row = Runner.idea_normal cfg ~key ~input in
  (* The hand-written chunking loop of Figure 3: split into 4 KB pieces. *)
  let chunked_row =
    let engine = Rvi_sim.Engine.create () in
    let cost =
      Rvi_os.Cost_model.default
        ~cpu_freq_hz:cfg.Config.device.Device.cpu_freq_hz
    in
    let kernel = Kernel.create ~engine ~cost () in
    let dpram = Rvi_mem.Dpram.create (Device.geometry cfg.Config.device) in
    let dport = Rvi_coproc.Dport.create ~dpram in
    let module M = Rvi_coproc.Idea_coproc.Make (Rvi_coproc.Dport) in
    let coproc = M.create dport in
    let clock =
      Clock.create engine ~name:"pld" ~freq_hz:Calibration.idea_imu_clock_hz
    in
    Clock.add clock ~divide:Calibration.idea_divide
      coproc.Rvi_coproc.Coproc.component;
    let sched = Kernel.sched kernel in
    ignore (Rvi_os.Sched.spawn sched ~name:"idea-chunked");
    ignore (Rvi_os.Sched.schedule sched);
    let n = Bytes.length input in
    let in_buf = Uspace.of_bytes kernel input in
    let out_buf = Uspace.alloc kernel n in
    let chunk_bytes = 4 * 1024 in
    let chunks =
      List.init (n / chunk_bytes) (fun c ->
          let pos = c * chunk_bytes in
          let regions =
            [
              {
                Rvi_coproc.Normal_driver.region = Rvi_coproc.Idea_coproc.obj_in;
                buf = Uspace.sub in_buf ~pos ~len:chunk_bytes;
                dir = Rvi_core.Mapped_object.In;
              };
              {
                Rvi_coproc.Normal_driver.region = Rvi_coproc.Idea_coproc.obj_out;
                buf = Uspace.sub out_buf ~pos ~len:chunk_bytes;
                dir = Rvi_core.Mapped_object.Out;
              };
            ]
          in
          ( regions,
            Rvi_coproc.Idea_coproc.params ~n_blocks:(chunk_bytes / 8)
              ~decrypt:false ~key ))
    in
    let base =
      {
        (Runner.run_sw cfg ~app:"idea" ~input_bytes:n ~cycles:0
           ~work:(fun () -> true))
        with
        Report.version = "CHUNKED";
        total = Simtime.zero;
        sw_app = Simtime.zero;
        verified = false;
      }
    in
    match
      Rvi_coproc.Normal_driver.run_chunked ~kernel ~dpram
        ~ahb:cfg.Config.device.Device.ahb ~clocks:[ clock ] ~dport ~coproc
        ~chunks ()
    with
    | Ok () ->
      let acct = Kernel.accounting kernel in
      let out = Uspace.read kernel out_buf in
      {
        base with
        Report.total = Rvi_os.Accounting.total acct;
        hw = Rvi_os.Accounting.get acct Rvi_os.Accounting.Hw;
        sw_dp = Rvi_os.Accounting.get acct Rvi_os.Accounting.Sw_dp;
        verified =
          Bytes.equal out (Rvi_coproc.Idea_ref.ecb ~key ~decrypt:false input);
      }
    | Error e ->
      {
        base with
        Report.outcome =
          Report.Failed (Rvi_coproc.Normal_driver.error_to_string e);
      }
  in
  let rows =
    [
      ("idea-16KB/normal-plain", plain_row);
      ("idea-16KB/normal-chunked", chunked_row);
      ("idea-16KB/vim", vim_row);
    ]
  in
  print_labeled ppf
    ~title:
      "Ablation: hand-chunked normal driver vs VIM beyond the dual-port \
       memory (Figure 3's while loop)"
    rows;
  rows

let ablation_tlb_org ?jobs ppf cfg =
  let key = Workload.idea_key ~seed:cfg.Config.seed in
  let pt = idea_32k cfg in
  let input = adpcm_8k cfg in
  let rows =
    par_variants ?jobs
      (fun org ->
        let cfg = { cfg with Config.tlb_organization = org } in
        let label = Rvi_core.Tlb.organization_name org in
        [
          ("adpcm-8KB/" ^ label, Runner.adpcm_vim cfg ~input);
          ("idea-32KB/" ^ label, Runner.idea_vim cfg ~key ~input:pt);
        ])
      [
        Rvi_core.Tlb.Fully_associative;
        Rvi_core.Tlb.Set_associative 2;
        Rvi_core.Tlb.Direct_mapped;
      ]
  in
  print_labeled ppf
    ~title:
      "Ablation: TLB organisation (the paper's CAM vs cheaper indexed arrays; conflicts show up as refill faults)"
    rows;
  rows

let ablation_dma ?jobs ppf cfg =
  let input = adpcm_8k cfg in
  let key = Workload.idea_key ~seed:cfg.Config.seed in
  let pt = idea_32k cfg in
  let rows =
    par_variants ?jobs
      (fun (label, copy_engine) ->
        let cfg = { cfg with Config.copy_engine } in
        [
          ("adpcm-8KB/" ^ label, Runner.adpcm_vim cfg ~input);
          ("idea-32KB/" ^ label, Runner.idea_vim cfg ~key ~input:pt);
        ])
      [
        ("cpu-copy", Rvi_core.Vim.Cpu);
        ("dma", Rvi_core.Vim.Dma_engine Rvi_mem.Dma.default);
      ]
  in
  print_labeled ppf
    ~title:"Ablation: page movement by CPU copies (the paper) vs DMA engine"
    rows;
  rows

let ablation_overlap ?jobs ppf cfg =
  let input = adpcm_8k cfg in
  let variants =
    [
      ("none", Rvi_core.Prefetch.off, false);
      ("sync", Rvi_core.Prefetch.sequential ~depth:2, false);
      ("overlapped", Rvi_core.Prefetch.sequential ~depth:2, true);
    ]
  in
  let rows =
    par_variants ?jobs
      (fun (label, prefetch, overlap_prefetch) ->
        let cfg = { cfg with Config.prefetch; overlap_prefetch } in
        [ ("adpcm-8KB/prefetch-" ^ label, Runner.adpcm_vim cfg ~input) ])
      variants
  in
  print_labeled ppf
    ~title:
      "Ablation: overlapping prefetch transfers with coprocessor execution \
       (§4.1 future work)"
    rows;
  rows

(* {1 Translation-mode ablation (IOMMU/SVA extension)} *)

type translation_point = {
  label : string;
  mode : Rvi_core.Translation_mode.t;
  row : Report.row;
  l1_hits : int;
  l1_misses : int;
  l2_hits : int;
  l2_misses : int;
  walks : int;
  walk_faults : int;
  walk_p50 : float;
  walk_p95 : float;
}

(* Each variant runs through a private single-entry pool so the platform
   survives the run and its hardware counters — TLB hit/miss at both
   levels, the walker's latency histogram — can be peeked afterwards. *)
let translation_workloads ~smoke cfg =
  let adpcm =
    let input = adpcm_8k cfg in
    ( "adpcm-8KB",
      "adpcmdecode",
      fun pool cfg -> Runner.adpcm_vim ~pool cfg ~input )
  in
  let idea =
    let key = Workload.idea_key ~seed:cfg.Config.seed in
    let pt = idea_32k cfg in
    ("idea-32KB", "idea", fun pool cfg -> Runner.idea_vim ~pool cfg ~key ~input:pt)
  in
  let fir =
    let coeffs = Workload.fir_coeffs ~taps:16 in
    let shift = 12 in
    let input = Workload.fir_signal ~seed:cfg.Config.seed ~bytes:(16 * 1024) in
    ("fir-16KB", "fir", fun pool cfg -> Runner.fir_vim ~pool cfg ~coeffs ~shift ~input)
  in
  let vecadd =
    let a, b = Workload.vectors ~seed:cfg.Config.seed ~n:2048 in
    ("vecadd-2048", "vecadd", fun pool cfg -> Runner.vecadd_vim ~pool cfg ~a ~b)
  in
  if smoke then [ adpcm ] else [ adpcm; idea; fir; vecadd ]

let ablation_translation ?jobs ?(smoke = false) ppf cfg =
  let variants =
    List.concat_map
      (fun wl ->
        List.map (fun mode -> (wl, mode)) Rvi_core.Translation_mode.all)
      (translation_workloads ~smoke cfg)
  in
  let points =
    par_variants ?jobs
      (fun ((name, app_key, run), mode) ->
        let cfg = { cfg with Config.translation = mode } in
        let pool = Platform.Pool.create () in
        let row = run pool cfg in
        let l1_hits, l1_misses, l2_hits, l2_misses, walks, walk_faults, p50, p95
            =
          match Platform.Pool.find pool ~key:app_key with
          | None -> (0, 0, 0, 0, 0, 0, 0.0, 0.0)
          | Some p ->
            let imu = p.Platform.imu in
            let get tlb n = Rvi_sim.Stats.get (Rvi_core.Tlb.stats tlb) n in
            let l1 = Rvi_core.Imu.tlb imu in
            let l2h, l2m =
              match Rvi_core.Imu.l2 imu with
              | Some l2 -> (get l2 "hits", get l2 "misses")
              | None -> (0, 0)
            in
            let walks, walk_faults, p50, p95 =
              match Rvi_core.Imu.walker imu with
              | Some w ->
                let ws = Rvi_core.Walker.stats w in
                let p50, p95 =
                  match Rvi_sim.Stats.summary ws "walk_cycles" with
                  | Some s -> (s.Rvi_sim.Stats.p50, s.Rvi_sim.Stats.p95)
                  | None -> (0.0, 0.0)
                in
                (Rvi_sim.Stats.get ws "walks", Rvi_sim.Stats.get ws "walk_faults", p50, p95)
              | None -> (0, 0, 0.0, 0.0)
            in
            (get l1 "hits", get l1 "misses", l2h, l2m, walks, walk_faults, p50, p95)
        in
        [
          {
            label =
              Printf.sprintf "%s/%s" name (Rvi_core.Translation_mode.name mode);
            mode;
            row;
            l1_hits;
            l1_misses;
            l2_hits;
            l2_misses;
            walks;
            walk_faults;
            walk_p50 = p50;
            walk_p95 = p95;
          };
        ])
      variants
  in
  Format.fprintf ppf
    "@.== Ablation: address translation — paper objects vs IOMMU/SVA \
     (two-level TLB + page-table walker) ==@.";
  Format.fprintf ppf
    "  %-26s %10s %7s %9s %8s %8s %6s %11s %s@." "workload/mode" "total ms"
    "faults" "flt/1k-ac" "L1 hit%" "L2 hit%" "walks" "walk p50/95" "ok";
  List.iter
    (fun pt ->
      let r = pt.row in
      match r.Report.outcome with
      | Report.Measured | Report.Degraded _ ->
        let pct h m = if h + m = 0 then 0.0 else 100.0 *. float h /. float (h + m) in
        let per_1k =
          if r.Report.accesses = 0 then 0.0
          else 1000.0 *. float r.Report.faults /. float r.Report.accesses
        in
        Format.fprintf ppf
          "  %-26s %10.3f %7d %9.2f %8.2f %8.2f %6d %5.0f/%-5.0f %s@."
          pt.label
          (Simtime.to_ms r.Report.total)
          r.Report.faults per_1k
          (pct pt.l1_hits pt.l1_misses)
          (pct pt.l2_hits pt.l2_misses)
          pt.walks pt.walk_p50 pt.walk_p95
          (if r.Report.verified then "yes" else "NO")
      | Report.Exceeds_memory ->
        Format.fprintf ppf "  %-26s exceeds available memory@." pt.label
      | Report.Failed m -> Format.fprintf ppf "  %-26s FAILED: %s@." pt.label m)
    points;
  Format.fprintf ppf
    "(SVA pays walker latency on cold pages but drops the per-object map \
     syscalls; paper mode is byte-identical to the pre-SVA system)@.";
  points

(* {1 Extensions beyond the paper} *)

let ext_fir ?(sizes_kb = [ 4; 16; 32 ]) ?jobs ppf cfg =
  let coeffs = Workload.fir_coeffs ~taps:16 in
  let shift = 12 in
  let rows =
    par_variants ?jobs
      (fun kb ->
        let input = Workload.fir_signal ~seed:(300 + kb) ~bytes:(kb * 1024) in
        [
          Runner.fir_sw cfg ~coeffs ~shift ~input;
          Runner.fir_normal cfg ~coeffs ~shift ~input;
          Runner.fir_vim cfg ~coeffs ~shift ~input;
        ])
      sizes_kb
  in
  Report.print_table
    ~title:
      "== Extension: 16-tap FIR filter (third application, all three \
       versions) =="
    ppf rows;
  Report.bar_chart ~title:"(stacked bars)" ~baseline_version:"SW" ppf rows;
  rows

type miss_curve = {
  refs : int;
  frames_available : int;
  lru : int array;
  fifo_at_available : int;
  measured_faults : int;
}

let miss_curve ppf cfg =
  let input = adpcm_8k cfg in
  let p =
    Platform.create ~app_name:"mrc" cfg
      ~bitstream:Calibration.adpcm_bitstream
      ~make:Rvi_coproc.Adpcm_coproc.Virtual.create
  in
  let collect = Mrc.record p.Platform.imu in
  let in_buf = Platform.alloc_bytes p input in
  let out_buf =
    Platform.alloc p (Rvi_coproc.Adpcm_ref.decoded_size (Bytes.length input))
  in
  let ok = function
    | Ok () -> ()
    | Error _ -> failwith "miss_curve: setup failed"
  in
  ok (Rvi_core.Api.fpga_load p.Platform.api Calibration.adpcm_bitstream);
  ok
    (Rvi_core.Api.fpga_map_object p.Platform.api
       ~id:Rvi_coproc.Adpcm_coproc.obj_in ~buf:in_buf
       ~dir:Rvi_core.Mapped_object.In ~stream:true ());
  ok
    (Rvi_core.Api.fpga_map_object p.Platform.api
       ~id:Rvi_coproc.Adpcm_coproc.obj_out ~buf:out_buf
       ~dir:Rvi_core.Mapped_object.Out ~stream:true ());
  ok (Rvi_core.Api.fpga_execute p.Platform.api ~params:[ Bytes.length input ]);
  let refs = collect () in
  let frames_available = Rvi_mem.Dpram.n_pages p.Platform.dpram in
  let lru = Mrc.lru_misses refs ~max_frames:16 in
  let fifo_at_available = Mrc.fifo_misses refs ~frames:frames_available in
  let vstats = Rvi_core.Vim.stats p.Platform.vim in
  let measured_faults = Rvi_sim.Stats.get vstats "faults" in
  let premapped = Rvi_sim.Stats.get vstats "premapped" in
  let c =
    {
      refs = Array.length refs;
      frames_available;
      lru;
      fifo_at_available;
      measured_faults;
    }
  in
  Format.fprintf ppf
    "@.== Extension: miss-ratio curve of adpcm-8KB (Mattson stack analysis \
     over the IMU access trace) ==@.%d page references over %d distinct \
     pages; device has %d frames (one holds parameters).@."
    c.refs
    (Mrc.distinct_pages refs)
    frames_available;
  Mrc.pp_curve ppf ~frames_available ~lru ~refs:c.refs;
  Format.fprintf ppf
    "An ideal demand pager at %d frames would take %d placements (the curve); \
     the shipped VIM performed %d (%d pre-mapped + %d demand faults). The \
     gap is the cost of eager FIFO placement on this trace — precisely the \
     'efficient allocation algorithms' the paper's conclusion calls for.@."
    frames_available
    lru.(min (Array.length lru) frames_available - 1)
    (premapped + measured_faults) premapped measured_faults;
  (match Rvi_sim.Stats.summary vstats "fault_service_us" with
  | Some s ->
    Format.fprintf ppf
      "Fault service latency: %.1f us mean (%.1f min / %.1f max over %d \
       faults) — interrupt entry, decode, page movement, TLB refill, \
       resume.@."
      s.Rvi_sim.Stats.mean s.Rvi_sim.Stats.min s.Rvi_sim.Stats.max
      s.Rvi_sim.Stats.count
  | None -> ());
  c

(* Custom EPXA1 variants for the geometry sweeps. *)
let custom_device ~page_size ~dpram_bytes =
  {
    Rvi_fpga.Device.epxa1 with
    Rvi_fpga.Device.name =
      Printf.sprintf "EPXA1/%dB-pages-%dKB" page_size (dpram_bytes / 1024);
    page_size;
    dpram_bytes;
  }

let sweep_page_size ppf cfg =
  let input = adpcm_8k cfg in
  let rows =
    List.map
      (fun page_size ->
        let device = custom_device ~page_size ~dpram_bytes:(16 * 1024) in
        let cfg = { cfg with Config.device } in
        (page_size, Runner.adpcm_vim cfg ~input))
      [ 512; 1024; 2048; 4096 ]
  in
  Format.fprintf ppf
    "@.== Sweep: page size at a fixed 16 KB dual-port memory (adpcm-8KB) ==@.%8s %8s %10s %8s %10s %10s@." "page" "frames" "total(ms)" "faults"
    "SWdp(ms)" "SWimu(ms)";
  List.iter
    (fun (page_size, (r : Report.row)) ->
      Format.fprintf ppf "%7dB %8d %10.3f %8d %10.3f %10.3f@." page_size
        ((16 * 1024) / page_size)
        (Simtime.to_ms r.Report.total)
        r.Report.faults
        (Simtime.to_ms r.Report.sw_dp)
        (Simtime.to_ms r.Report.sw_imu))
    rows;
  Format.fprintf ppf
    "(small pages trade copy volume for fault-service overhead; large pages the reverse — the classic VM granularity trade-off on the interface memory)@.";
  rows

let sweep_memory_size ppf cfg =
  let input = adpcm_8k cfg in
  let rows =
    List.map
      (fun kb ->
        let device = custom_device ~page_size:2048 ~dpram_bytes:(kb * 1024) in
        let cfg = { cfg with Config.device } in
        (kb, Runner.adpcm_vim cfg ~input))
      [ 4; 8; 16; 32; 64 ]
  in
  Format.fprintf ppf
    "@.== Sweep: dual-port memory size at fixed 2 KB pages (adpcm-8KB) ==@.%8s %8s %10s %8s %10s@." "memory" "frames" "total(ms)" "faults"
    "SWdp(ms)";
  List.iter
    (fun (kb, (r : Report.row)) ->
      Format.fprintf ppf "%6dKB %8d %10.3f %8d %10.3f@." kb (kb / 2)
        (Simtime.to_ms r.Report.total)
        r.Report.faults
        (Simtime.to_ms r.Report.sw_dp))
    rows;
  rows

let ext_cbc ppf cfg =
  let key = Workload.idea_key ~seed:cfg.Config.seed in
  let iv = Array.init 4 (fun i -> (cfg.Config.seed + i) land 0xFFFF) in
  let input = Workload.idea_plaintext ~seed:cfg.Config.seed ~bytes:(8 * 1024) in
  let rows =
    List.map
      (fun mode -> Runner.idea_cbc_vim cfg ~mode ~key ~iv ~input)
      Rvi_coproc.Idea_coproc.
        [ Ecb_encrypt; Ecb_decrypt; Cbc_encrypt; Cbc_decrypt ]
  in
  Report.print_table
    ~title:
      "== Extension: block-cipher modes on the 3-stage pipeline (CBC \
       encryption is a recurrence and serialises it; CBC decryption still \
       pipelines) =="
    ppf rows;
  rows

(* Two coprocessors (adpcmdecode + FIR) behind one IMU via the arbiter,
   sharing the paged dual-port memory and one unchanged VIM. *)
let ext_dual_on ppf cfg =
  let adpcm_input = Workload.adpcm_stream ~seed:cfg.Config.seed ~bytes:(4 * 1024) in
  let fir_input = Workload.fir_signal ~seed:cfg.Config.seed ~bytes:(12 * 1024) in
  let coeffs = Workload.fir_coeffs ~taps:16 in
  let shift = 12 in
  let taps = Array.length coeffs in
  let n_out = (Bytes.length fir_input / 2) - taps + 1 in
  (* Serial baseline: the two kernels one after the other. *)
  let serial_adpcm = Runner.adpcm_vim cfg ~input:adpcm_input in
  let serial_fir = Runner.fir_vim cfg ~coeffs ~shift ~input:fir_input in
  let serial_ms =
    Simtime.to_ms serial_adpcm.Report.total +. Simtime.to_ms serial_fir.Report.total
  in
  (* Concurrent run. *)
  let engine = Rvi_sim.Engine.create () in
  let cost =
    Rvi_os.Cost_model.default ~cpu_freq_hz:cfg.Config.device.Device.cpu_freq_hz
  in
  let kernel = Kernel.create ~engine ~cost ~sdram_bytes:(4 * 1024 * 1024) () in
  let dpram = Rvi_mem.Dpram.create (Device.geometry cfg.Config.device) in
  let pld = Rvi_fpga.Pld.create cfg.Config.device in
  let port = Rvi_core.Cp_port.create () in
  let imu =
    Rvi_core.Imu.create ~config:(Config.imu_config cfg) ~port ~dpram
      ~raise_irq:(fun () -> Rvi_os.Irq.raise_line (Kernel.irq kernel) ~line:0)
      ()
  in
  let clock =
    Clock.create engine ~name:"pld" ~freq_hz:Calibration.adpcm_clock_hz
  in
  let vim =
    Rvi_core.Vim.create ~kernel ~dpram ~imu ~ahb:cfg.Config.device.Device.ahb
      ~clocks:[ clock ] (Config.vim_config cfg)
  in
  let api = Rvi_core.Api.install ~kernel ~vim ~pld in
  let arbiter = Rvi_coproc.Arbiter.create ~upstream:port ~children:2 in
  (* The adpcm child keeps its object ids; the FIR child's are remapped
     into 2/3/4 by a thin shim, exactly the renumbering the two hardware
     designers would agree on. *)
  let vport_a = Rvi_coproc.Vport.create (Rvi_coproc.Arbiter.child_port arbiter 0) in
  let module MA = Rvi_coproc.Adpcm_coproc.Make (Rvi_coproc.Vport) in
  let coproc_a = MA.create vport_a in
  let module Fir_shifted = struct
    include Rvi_coproc.Vport

    let issue t ~region ~addr ~wr ~width ~data =
      let region =
        if region = Rvi_core.Cp_port.param_obj then region else region + 2
      in
      issue t ~region ~addr ~wr ~width ~data
  end in
  let vport_b = Rvi_coproc.Vport.create (Rvi_coproc.Arbiter.child_port arbiter 1) in
  let module MB = Rvi_coproc.Fir_coproc.Make (Fir_shifted) in
  let coproc_b = MB.create vport_b in
  Clock.add clock (Rvi_core.Imu.component imu);
  Clock.add clock (Rvi_coproc.Arbiter.component arbiter);
  Clock.add clock (Rvi_coproc.Vport.sync_component vport_a);
  Clock.add clock (Rvi_coproc.Vport.sync_component vport_b);
  Clock.add clock coproc_a.Rvi_coproc.Coproc.component;
  Clock.add clock coproc_b.Rvi_coproc.Coproc.component;
  let sched = Kernel.sched kernel in
  ignore (Rvi_os.Sched.spawn sched ~name:"dual");
  ignore (Rvi_os.Sched.schedule sched);
  let buf_ain = Uspace.of_bytes kernel adpcm_input in
  let buf_aout =
    Uspace.alloc kernel
      (Rvi_coproc.Adpcm_ref.decoded_size (Bytes.length adpcm_input))
  in
  let coeff_bytes =
    let b = Bytes.create (2 * taps) in
    Array.iteri
      (fun i c ->
        let u = c land 0xFFFF in
        Bytes.set b (2 * i) (Char.chr (u land 0xFF));
        Bytes.set b ((2 * i) + 1) (Char.chr ((u lsr 8) land 0xFF)))
      coeffs;
    b
  in
  let buf_fin = Uspace.of_bytes kernel fir_input in
  let buf_fco = Uspace.of_bytes kernel coeff_bytes in
  let buf_fout =
    Uspace.alloc kernel
      (Rvi_coproc.Fir_ref.output_bytes ~taps (Bytes.length fir_input))
  in
  let dual_bitstream =
    Rvi_fpga.Bitstream.make ~name:"adpcm+fir" ~logic_elements:4_100
      ~imu_freq_hz:Calibration.adpcm_clock_hz
      ~param_words:(2 * Rvi_coproc.Arbiter.slot_words)
      ()
  in
  let ok = function
    | Ok () -> ()
    | Error _ -> failwith "ext_dual: setup failed"
  in
  ok (Rvi_core.Api.fpga_load api dual_bitstream);
  let map ~id ~buf ~dir =
    ok (Rvi_core.Api.fpga_map_object api ~id ~buf ~dir ~stream:true ())
  in
  map ~id:0 ~buf:buf_ain ~dir:Rvi_core.Mapped_object.In;
  map ~id:1 ~buf:buf_aout ~dir:Rvi_core.Mapped_object.Out;
  map ~id:2 ~buf:buf_fin ~dir:Rvi_core.Mapped_object.In;
  map ~id:3 ~buf:buf_fco ~dir:Rvi_core.Mapped_object.In;
  map ~id:4 ~buf:buf_fout ~dir:Rvi_core.Mapped_object.Out;
  Rvi_os.Accounting.reset (Kernel.accounting kernel);
  let t0 = Kernel.now kernel in
  let params =
    (* slot 0: adpcm; slot 1: fir *)
    let pad slot = slot @ List.init (Rvi_coproc.Arbiter.slot_words - List.length slot) (fun _ -> 0) in
    pad [ Bytes.length adpcm_input ] @ pad [ n_out; taps; shift ]
  in
  ok (Rvi_core.Api.fpga_execute api ~params);
  let dual_ms = Simtime.to_ms (Simtime.sub (Kernel.now kernel) t0) in
  let adpcm_ok =
    Bytes.equal (Uspace.read kernel buf_aout)
      (Rvi_coproc.Adpcm_ref.decode adpcm_input)
  in
  let fir_ok =
    Bytes.equal (Uspace.read kernel buf_fout)
      (Rvi_coproc.Fir_ref.filter_bytes ~coeffs ~shift fir_input)
  in
  let grants = Rvi_coproc.Arbiter.grants arbiter in
  Format.fprintf ppf
    "%-8s serial %.3f ms, concurrent %.3f ms (%.2fx); grants adpcm %d / fir %d; outputs %s@."
    cfg.Config.device.Device.name serial_ms dual_ms (serial_ms /. dual_ms)
    grants.(0) grants.(1)
    (if adpcm_ok && fir_ok then "bit-exact" else "WRONG");
  (serial_ms, dual_ms, adpcm_ok && fir_ok)

let ext_dual ppf cfg =
  Format.fprintf ppf
    "@.== Extension: two coprocessors behind one IMU (arbiter): adpcm-4KB + fir-12KB ==@.";
  let r1 = ext_dual_on ppf cfg in
  let r4 = ext_dual_on ppf { cfg with Config.device = Rvi_fpga.Device.epxa4 } in
  Format.fprintf ppf
    "(on the EPXA1 the two working sets thrash the 16 KB memory and eat the \
     concurrency; with the EPXA4's 64 KB both kernels fit and the shared \
     port pays off — same binaries, same VIM)@.";
  ignore r4;
  r1

(* Profile-guided optimal replacement: record the reference string once,
   then replay the same workload under Belady's choices. The workload is
   the adversarial classic — vector add cycles through three pages (A, B,
   C) while a shrunken device offers only two data frames, where FIFO and
   LRU thrash and the clairvoyant policy wins. *)
let ext_oracle ppf cfg =
  let n = 512 in
  let a, b = Workload.vectors ~seed:cfg.Config.seed ~n in
  let device =
    { cfg.Config.device with Rvi_fpga.Device.dpram_bytes = 4 * 1024; name = "TINY4" }
  in
  let cfg = { cfg with Config.device; eager_mapping = false } in
  let to_bytes words =
    let bts = Bytes.create (4 * Array.length words) in
    Array.iteri
      (fun i w ->
        for k = 0 to 3 do
          Bytes.set bts ((4 * i) + k) (Char.chr ((w lsr (8 * k)) land 0xFF))
        done)
      words;
    bts
  in
  let run ?policy ?record () =
    let engine = Rvi_sim.Engine.create () in
    let cost =
      Rvi_os.Cost_model.default ~cpu_freq_hz:cfg.Config.device.Device.cpu_freq_hz
    in
    let kernel = Kernel.create ~engine ~cost ~sdram_bytes:(1024 * 1024) () in
    let dpram = Rvi_mem.Dpram.create (Device.geometry cfg.Config.device) in
    let port = Rvi_core.Cp_port.create () in
    let imu =
      Rvi_core.Imu.create ~config:(Config.imu_config cfg) ~port ~dpram
        ~raise_irq:(fun () -> Rvi_os.Irq.raise_line (Kernel.irq kernel) ~line:0)
        ()
    in
    let position = ref 0 in
    let collected = ref [] in
    Rvi_core.Imu.set_trace imu
      (Some
         (fun e ->
           incr position;
           if record = Some true then
             collected := (e.Rvi_core.Imu.obj_id, e.Rvi_core.Imu.vpn) :: !collected));
    let vim_cfg =
      {
        (Config.vim_config cfg) with
        Rvi_core.Vim.policy =
          (match policy with
          | Some make -> make ~position:(fun () -> !position)
          | None -> Rvi_core.Policy.fifo ());
      }
    in
    let clock =
      Clock.create engine ~name:"pld" ~freq_hz:Calibration.adpcm_clock_hz
    in
    let vim =
      Rvi_core.Vim.create ~kernel ~dpram ~imu ~ahb:cfg.Config.device.Device.ahb
        ~clocks:[ clock ] vim_cfg
    in
    let pld = Rvi_fpga.Pld.create cfg.Config.device in
    let api = Rvi_core.Api.install ~kernel ~vim ~pld in
    let vport, coproc = Rvi_coproc.Vecadd.Virtual.create port in
    Clock.add clock (Rvi_core.Imu.component imu);
    Clock.add clock (Rvi_coproc.Vport.sync_component vport);
    Clock.add clock coproc.Rvi_coproc.Coproc.component;
    let sched = Kernel.sched kernel in
    ignore (Rvi_os.Sched.spawn sched ~name:"oracle");
    ignore (Rvi_os.Sched.schedule sched);
    let buf_a = Uspace.of_bytes kernel (to_bytes a) in
    let buf_b = Uspace.of_bytes kernel (to_bytes b) in
    let buf_c = Uspace.alloc kernel (4 * n) in
    let ok = function Ok () -> () | Error _ -> failwith "ext_oracle: run" in
    ok (Rvi_core.Api.fpga_load api Calibration.vecadd_bitstream);
    ok
      (Rvi_core.Api.fpga_map_object api ~id:0 ~buf:buf_a
         ~dir:Rvi_core.Mapped_object.In ());
    ok
      (Rvi_core.Api.fpga_map_object api ~id:1 ~buf:buf_b
         ~dir:Rvi_core.Mapped_object.In ());
    ok
      (Rvi_core.Api.fpga_map_object api ~id:2 ~buf:buf_c
         ~dir:Rvi_core.Mapped_object.Out ());
    ok (Rvi_core.Api.fpga_execute api ~params:[ n ]);
    let verified =
      Bytes.equal (Uspace.read kernel buf_c)
        (to_bytes (Rvi_coproc.Vecadd.reference ~a ~b))
    in
    ( Rvi_sim.Stats.get (Rvi_core.Vim.stats vim) "faults",
      verified,
      Array.of_list (List.rev !collected) )
  in
  let _, _, profile_trace = run ~record:true () in
  let results =
    [
      ("fifo", run ~policy:(fun ~position:_ -> Rvi_core.Policy.fifo ()) ());
      ("lru", run ~policy:(fun ~position:_ -> Rvi_core.Policy.lru ()) ());
      ( "oracle",
        run
          ~policy:(fun ~position ->
            Rvi_core.Policy.oracle ~trace:profile_trace ~position)
          () );
    ]
  in
  let opt_bound = Mrc.opt_misses profile_trace ~frames:2 in
  Format.fprintf ppf
    "@.== Extension: profile-guided optimal replacement (vecadd-512, 3 \
     cycling pages over 2 data frames, demand paging) ==@.%10s %10s %10s@."
    "policy" "faults" "verified";
  List.iter
    (fun (name, (faults, verified, _)) ->
      Format.fprintf ppf "%10s %10d %10b@." name faults verified)
    results;
  Format.fprintf ppf
    "analytic OPT bound at 2 data frames: %d misses — the oracle reaches \
     Belady's decisions live from a trace recorded on a previous run of \
     the same workload (the reference string is policy-independent).@."
    opt_bound;
  (List.map (fun (name, (f, v, _)) -> (name, (f, v))) results, opt_bound)

let sensitivity ?jobs ppf cfg =
  (* The AHB cost per uncached word is the least-certain calibration
     constant; sweep it across a 4x range and check that no conclusion
     flips: the VIM stays ahead of software and behind the normal
     coprocessor where the latter can run at all. *)
  let rows =
    par_variants ?jobs
      (fun cycles_per_word ->
        let ahb =
          Rvi_mem.Ahb.make ~word_bytes:4 ~setup_cycles:120 ~cycles_per_word
        in
        let device = { Rvi_fpga.Device.epxa1 with Rvi_fpga.Device.ahb } in
        let cfg = { cfg with Config.device } in
        let input = adpcm_8k cfg in
        let a_sw = Runner.adpcm_sw cfg ~input in
        let a_vim = Runner.adpcm_vim cfg ~input in
        let key = Workload.idea_key ~seed:cfg.Config.seed in
        let pt = Workload.idea_plaintext ~seed:cfg.Config.seed ~bytes:(8 * 1024) in
        let i_sw = Runner.idea_sw cfg ~key ~input:pt in
        let i_nrm = Runner.idea_normal cfg ~key ~input:pt in
        let i_vim = Runner.idea_vim cfg ~key ~input:pt in
        [ (cycles_per_word, (a_sw, a_vim), (i_sw, i_nrm, i_vim)) ])
      [ 10; 20; 40 ]
  in
  Format.fprintf ppf
    "@.== Sensitivity: AHB cycles per uncached word (calibrated value 20) ==@.%10s %16s %16s %16s@." "cyc/word" "adpcm-8KB VIM" "idea-8KB NORMAL"
    "idea-8KB VIM";
  List.iter
    (fun (cpw, (a_sw, a_vim), (i_sw, i_nrm, i_vim)) ->
      let spd b r =
        match Report.speedup ~baseline:b r with
        | Some s -> Printf.sprintf "%.2fx" s
        | None -> "-"
      in
      Format.fprintf ppf "%10d %16s %16s %16s@." cpw (spd a_sw a_vim)
        (spd i_sw i_nrm) (spd i_sw i_vim))
    rows;
  Format.fprintf ppf
    "(the orderings SW < VIM and VIM < NORMAL hold across the whole range)@.";
  rows

let multiprogramming ?(jobs_per_app = 4) ppf cfg =
  let jobs = Jobs.mixed_batch ~seed:cfg.Config.seed ~jobs_per_app in
  let results =
    List.map
      (fun d -> (Jobs.discipline_name d, Jobs.run cfg ~jobs d))
      [ Jobs.Fcfs; Jobs.Grouped ]
  in
  Format.fprintf ppf
    "@.== Extension: multiprogramming the lattice (%d mixed jobs under \
     FPGA_LOAD's exclusive lock) ==@."
    (List.length jobs);
  Format.fprintf ppf "%-10s %10s %12s %14s %10s@." "dispatch" "makespan"
    "reconfigs" "config time" "verified";
  List.iter
    (fun (name, (r : Jobs.result)) ->
      Format.fprintf ppf "%-10s %8.2fms %12d %12.2fms %10b@." name
        (Simtime.to_ms r.Jobs.makespan)
        r.Jobs.reconfigurations
        (Simtime.to_ms r.Jobs.configuration_time)
        r.Jobs.all_verified)
    results;
  Format.fprintf ppf
    "(grouping jobs by bit-stream amortises the lattice's reconfiguration \
     cost — the scheduling concern of the related work the paper cites)@.";
  results

let all ?jobs ppf cfg =
  ignore (fig7 ppf ());
  ignore (fig7 ~pipelined:true ppf ());
  ignore (fig8 ?jobs ppf cfg);
  ignore (fig9 ?jobs ppf cfg);
  ignore (overheads ppf cfg);
  ignore (ablation_policy ?jobs ppf cfg);
  ignore (ablation_prefetch ?jobs ppf cfg);
  ignore (ablation_pipelined_imu ?jobs ppf cfg);
  ignore (ablation_transfer ?jobs ppf cfg);
  ignore (ablation_tlb_size ?jobs ppf cfg);
  ignore (portability ?jobs ppf cfg);
  ignore (ablation_chunked_normal ppf cfg);
  ignore (ablation_dma ?jobs ppf cfg);
  ignore (ablation_overlap ?jobs ppf cfg);
  ignore (ablation_tlb_org ?jobs ppf cfg);
  ignore (ablation_translation ?jobs ppf cfg);
  ignore (ext_fir ?jobs ppf cfg);
  ignore (miss_curve ppf cfg);
  ignore (ext_cbc ppf cfg);
  ignore (multiprogramming ppf cfg);
  ignore (sweep_page_size ppf cfg);
  ignore (sweep_memory_size ppf cfg);
  ignore (ext_dual ppf cfg);
  ignore (ext_oracle ppf cfg);
  ignore (sensitivity ?jobs ppf cfg)
