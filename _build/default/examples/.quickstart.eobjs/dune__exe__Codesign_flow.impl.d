examples/codesign_flow.ml: Array Bytes Char Filename List Printf Rvi_coproc Rvi_core Rvi_fpga Rvi_harness String Sys
