lib/core/vhdl_gen.ml: Array Buffer Cp_port Imu Printf Rvi_fpga Rvi_hw String
