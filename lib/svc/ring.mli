(** Bounded descriptor ring (virtqueue shape).

    Fixed capacity, FIFO order, refusal — not overwrite — when full:
    a full submission ring is the tenant-side backpressure signal the
    admission control builds on. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] on a non-positive capacity. *)

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool

val push : 'a t -> 'a -> bool
(** [false] when the ring is full; the element is not enqueued. *)

val pop : 'a t -> 'a option
val peek : 'a t -> 'a option

val to_list : 'a t -> 'a list
(** Oldest first; the ring is unchanged. *)
