lib/core/prefetch.ml: List Printf
