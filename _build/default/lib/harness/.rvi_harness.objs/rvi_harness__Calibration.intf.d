lib/harness/calibration.mli: Rvi_fpga
