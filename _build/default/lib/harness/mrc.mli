(** Miss-ratio-curve analysis over coprocessor access traces.

    The paper closes by calling for "the development of efficient
    allocation algorithms in the OS". The first tool such work needs is
    the miss-ratio curve of a workload: how many page faults a policy
    would take for every possible number of dual-port page frames. This
    module computes it from an IMU access trace — LRU analytically in one
    pass via Mattson's stack algorithm (LRU obeys the inclusion property,
    so a single stack simulation covers every memory size at once), FIFO
    by direct simulation per size (FIFO famously does not: Belady's
    anomaly, which {!fifo_misses} lets you observe). *)

type page = int * int
(** (object identifier, virtual page number). *)

val record : Rvi_core.Imu.t -> unit -> page array
(** [record imu] installs a trace probe; the returned thunk detaches it
    and yields the page reference string seen so far. *)

val distinct_pages : page array -> int
(** Compulsory misses — the number of distinct pages referenced. *)

val lru_stack_distances : page array -> int option array
(** Per reference: its LRU stack distance (0 = most recently used), or
    [None] for a first touch. *)

val lru_misses : page array -> max_frames:int -> int array
(** [lru_misses refs ~max_frames].(k-1) is the number of misses an LRU
    pool of [k] frames takes on the reference string. Non-increasing in
    [k]; converges to {!distinct_pages}. *)

val fifo_misses : page array -> frames:int -> int
(** Misses of a FIFO pool of the given size (direct simulation). *)

val pp_curve :
  Format.formatter -> frames_available:int -> lru:int array -> refs:int -> unit
(** Renders the curve with a marker at the machine's actual frame count. *)

val opt_misses : page array -> frames:int -> int
(** Misses of Belady's optimal (clairvoyant) replacement — the lower bound
    any online policy is judged against. *)
