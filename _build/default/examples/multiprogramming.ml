(* multiprogramming: several applications sharing one lattice.

   FPGA_LOAD "ensures the exclusive use of the resource" (§3.1), so when
   an audio decoder, a cipher and a filter all want their coprocessor, the
   dispatcher decides who holds the lattice when — and reconfiguration is
   tens of milliseconds on the Excalibur, far more than most jobs. This
   program runs the same mixed batch under a naive first-come-first-served
   dispatcher and under one that batches jobs by bit-stream, then shows a
   blocked FPGA_LOAD from a second process.

   Run with:  dune exec examples/multiprogramming.exe *)

module Jobs = Rvi_harness.Jobs

let () =
  let cfg = Rvi_harness.Config.default () in
  let jobs = Jobs.mixed_batch ~seed:7 ~jobs_per_app:5 in
  Printf.printf "batch: %d jobs (adpcm 4KB / idea 4KB / fir 8KB interleaved)\n\n"
    (List.length jobs);
  Printf.printf "%-10s %12s %10s %14s %9s\n" "dispatch" "makespan" "reconfigs"
    "config time" "verified";
  let results =
    List.map
      (fun d -> (d, Jobs.run cfg ~jobs d))
      [ Jobs.Fcfs; Jobs.Grouped ]
  in
  List.iter
    (fun (d, (r : Jobs.result)) ->
      Printf.printf "%-10s %10.2fms %10d %12.2fms %9b\n"
        (Jobs.discipline_name d)
        (Rvi_sim.Simtime.to_ms r.Jobs.makespan)
        r.Jobs.reconfigurations
        (Rvi_sim.Simtime.to_ms r.Jobs.configuration_time)
        r.Jobs.all_verified)
    results;
  (match results with
  | [ (_, fcfs); (_, grouped) ] ->
    Printf.printf
      "\nbatching by bit-stream made the batch %.1fx faster (reconfiguration \
       thrash removed)\n"
      (Rvi_sim.Simtime.to_ms fcfs.Jobs.makespan
      /. Rvi_sim.Simtime.to_ms grouped.Jobs.makespan)
  | _ -> ());
  (* The lock itself, seen from a second process. *)
  let pld = Rvi_fpga.Pld.create Rvi_fpga.Device.epxa1 in
  (match Rvi_fpga.Pld.configure pld ~pid:1 Rvi_harness.Calibration.adpcm_bitstream with
  | Ok () -> ()
  | Error _ -> assert false);
  (match Rvi_fpga.Pld.configure pld ~pid:2 Rvi_harness.Calibration.idea_bitstream with
  | Error e ->
    Printf.printf "\nprocess 2's FPGA_LOAD while process 1 holds the lattice: %s\n"
      (Rvi_fpga.Pld.error_to_string e)
  | Ok () -> print_endline "lock failed to hold!");
  List.iter
    (fun (_, (r : Jobs.result)) -> if not r.Jobs.all_verified then exit 1)
    results
