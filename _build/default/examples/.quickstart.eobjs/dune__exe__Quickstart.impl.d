examples/quickstart.ml: Array Bytes Char Printf Rvi_coproc Rvi_core Rvi_fpga Rvi_harness Rvi_os Rvi_sim
