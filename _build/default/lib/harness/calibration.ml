let cpu_freq_hz = 133_000_000
let adpcm_clock_hz = 40_000_000
let idea_imu_clock_hz = 24_000_000
let idea_divide = 4

let adpcm_bitstream =
  Rvi_fpga.Bitstream.make ~name:"adpcmdecode_vim" ~logic_elements:2_600
    ~imu_freq_hz:adpcm_clock_hz ~param_words:1 ()

let idea_bitstream =
  Rvi_fpga.Bitstream.make ~name:"idea_vim" ~logic_elements:3_900
    ~imu_freq_hz:idea_imu_clock_hz ~coproc_divide:idea_divide ~param_words:10 ()

let vecadd_bitstream =
  Rvi_fpga.Bitstream.make ~name:"vecadd_vim" ~logic_elements:450
    ~imu_freq_hz:adpcm_clock_hz ~param_words:1 ()

let fir_bitstream =
  Rvi_fpga.Bitstream.make ~name:"fir_vim" ~logic_elements:1_800
    ~imu_freq_hz:adpcm_clock_hz ~param_words:3 ()

let paper_idea_sw_ms = [ (4, 26.0); (8, 53.0); (16, 105.0); (32, 211.0) ]
let paper_adpcm_speedup = (1.5, 1.6)
let paper_idea_normal_speedup = 18.0
let paper_idea_vim_speedup = (11.0, 12.0)

type prediction = {
  name : string;
  expected : float;
  computed : float;
  tolerance : float;
}

let ms_of_cycles ~hz cycles = float_of_int cycles /. float_of_int hz *. 1e3

let check () =
  let idea_sw_4kb =
    (* 4 KB = 512 blocks of software IDEA. *)
    ms_of_cycles ~hz:cpu_freq_hz (512 * Rvi_coproc.Idea_coproc.sw_cycles_per_block)
  in
  let adpcm_sw_2kb =
    (* 2 KB input = 4096 samples of software decode. *)
    ms_of_cycles ~hz:cpu_freq_hz (4096 * Rvi_coproc.Adpcm_coproc.sw_cycles_per_sample)
  in
  let ahb_page_copy_us =
    (* One 2 KB page over the AHB, single transfer. *)
    float_of_int (Rvi_mem.Ahb.copy_cycles Rvi_mem.Ahb.default ~bytes:2048)
    /. float_of_int cpu_freq_hz *. 1e6
  in
  [
    {
      name = "software IDEA, 4 KB (ms)";
      expected = 26.0;
      computed = idea_sw_4kb;
      tolerance = 0.02;
    };
    {
      name = "software adpcmdecode, 2 KB input (ms)";
      expected = 4.5;
      computed = adpcm_sw_2kb;
      tolerance = 0.05;
    };
    {
      name = "AHB single transfer of one 2 KB page (us)";
      expected = 77.9;
      computed = ahb_page_copy_us;
      tolerance = 0.05;
    };
  ]
