type t = {
  name : string;
  logic_elements : int;
  dpram_bytes : int;
  page_size : int;
  cpu_freq_hz : int;
  ahb : Rvi_mem.Ahb.t;
}

let epxa1 =
  {
    name = "EPXA1";
    logic_elements = 4_160;
    dpram_bytes = 16 * 1024;
    page_size = 2 * 1024;
    cpu_freq_hz = 133_000_000;
    ahb = Rvi_mem.Ahb.default;
  }

let epxa4 =
  {
    epxa1 with
    name = "EPXA4";
    logic_elements = 16_640;
    dpram_bytes = 64 * 1024;
  }

let epxa10 =
  {
    epxa1 with
    name = "EPXA10";
    logic_elements = 38_400;
    dpram_bytes = 128 * 1024;
  }

(* Cross-vendor port: the Xilinx Virtex-II Pro the paper cites alongside
   the Excalibur ([17]). PowerPC 405 at 300 MHz, block-RAM buffer organised
   as eight 4 KB pages, PLB instead of AHB (cheaper per uncached word at
   the higher core clock). Porting the VIM here is exactly the recompile-
   the-module exercise of §4. *)
let xc2vp7 =
  {
    name = "XC2VP7";
    logic_elements = 11_088;
    dpram_bytes = 32 * 1024;
    page_size = 4 * 1024;
    cpu_freq_hz = 300_000_000;
    ahb = Rvi_mem.Ahb.make ~word_bytes:4 ~setup_cycles:150 ~cycles_per_word:14;
  }

let all = [ epxa1; epxa4; epxa10; xc2vp7 ]

let by_name name =
  let target = String.lowercase_ascii name in
  List.find_opt (fun d -> String.lowercase_ascii d.name = target) all

let geometry d =
  Rvi_mem.Page.geometry ~page_size:d.page_size
    ~n_pages:(d.dpram_bytes / d.page_size)

let pp ppf d =
  Format.fprintf ppf "%s (%d LEs, %d KB dual-port RAM, CPU %d MHz)" d.name
    d.logic_elements (d.dpram_bytes / 1024)
    (d.cpu_freq_hz / 1_000_000)
