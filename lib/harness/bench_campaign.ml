let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

type point = {
  benchmark : string;
  commit : string;
  host_cores : int;
  runs : int;
  seed : int;
  jobs : int;
  serial_s : float;
  parallel_s : float;
  serial_runs_per_sec : float;
  parallel_runs_per_sec : float;
  speedup : float;
  deterministic : bool;
  survival : float;
  phase_setup_s : float;
  phase_execute_s : float;
  phase_report_s : float;
}

let classification results =
  List.map (fun r -> (r.Faults.index, Faults.outcome_name r.Faults.outcome)) results

let command_line cmd =
  try
    let ic = Unix.open_process_in cmd in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 -> Some (String.trim line)
    | _ -> None
  with _ -> None

let git_commit () =
  match command_line "git rev-parse --short HEAD 2>/dev/null" with
  | None | Some "" -> "unknown"
  | Some hash -> (
    (* a point measured on uncommitted sources must not impersonate the
       commit it sits on *)
    match command_line "git status --porcelain 2>/dev/null" with
    | Some "" -> hash
    | Some _ -> hash ^ "-dirty"
    | None -> hash)

(* Each translation mode is its own benchmark series: SVA runs pay for
   page-table walks, so gating its throughput against the paper-mode
   baseline (or vice versa) would misfire. The label keys the series. *)
let benchmark_label = function
  | Rvi_core.Translation_mode.Paper_objects -> "faults-campaign"
  | Rvi_core.Translation_mode.Iommu_sva -> "faults-campaign-sva"

let run ?(runs = 200) ?(seed = 2004)
    ?(translation = Rvi_core.Translation_mode.Paper_objects) ~jobs () =
  (* Untimed warm-up so the measured passes see a steady state: first-touch
     page faults on the executable, a grown major heap, and a populated
     platform pool all land here instead of inflating [serial_s]. *)
  ignore (Faults.campaign ~translation ~runs:(min 10 runs) ~seed ());
  (* Phase totals are read right after the serial pass so they attribute
     exactly the [serial_s] wall time (the parallel pass would race the
     accumulators and mix in sharded runs). *)
  Runner.Phases.reset ();
  let serial, serial_s =
    time (fun () -> Faults.campaign ~translation ~runs ~seed ())
  in
  let phase_setup_s, phase_execute_s, phase_report_s = Runner.Phases.totals () in
  let parallel, parallel_s =
    time (fun () -> Faults.campaign ~translation ~jobs ~runs ~seed ())
  in
  let per_sec t = if t > 0.0 then float_of_int runs /. t else 0.0 in
  {
    benchmark = benchmark_label translation;
    commit = git_commit ();
    host_cores = Domain.recommended_domain_count ();
    runs;
    seed;
    jobs;
    serial_s;
    parallel_s;
    serial_runs_per_sec = per_sec serial_s;
    parallel_runs_per_sec = per_sec parallel_s;
    speedup = (if parallel_s > 0.0 then serial_s /. parallel_s else 0.0);
    deterministic =
      classification serial = classification parallel
      && Faults.summarize serial = Faults.summarize parallel;
    survival = Faults.survival (Faults.summarize serial);
    phase_setup_s;
    phase_execute_s;
    phase_report_s;
  }

let point_json r =
  Printf.sprintf
    "  {\n\
    \    \"benchmark\": %S,\n\
    \    \"commit\": %S,\n\
    \    \"host_cores\": %d,\n\
    \    \"runs\": %d,\n\
    \    \"seed\": %d,\n\
    \    \"jobs\": %d,\n\
    \    \"serial_s\": %.6f,\n\
    \    \"parallel_s\": %.6f,\n\
    \    \"serial_runs_per_sec\": %.2f,\n\
    \    \"parallel_runs_per_sec\": %.2f,\n\
    \    \"speedup\": %.3f,\n\
    \    \"deterministic\": %b,\n\
    \    \"survival_pct\": %.2f,\n\
    \    \"phase_setup_s\": %.6f,\n\
    \    \"phase_execute_s\": %.6f,\n\
    \    \"phase_report_s\": %.6f\n\
    \  }"
    r.benchmark r.commit r.host_cores r.runs r.seed r.jobs r.serial_s r.parallel_s
    r.serial_runs_per_sec r.parallel_runs_per_sec r.speedup r.deterministic
    r.survival r.phase_setup_s r.phase_execute_s r.phase_report_s

let default_path = "BENCH_campaign.json"

let read_file path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))

let write_file path content =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)

(* The file is machine-written (by this module), so appending splices the
   new entry in front of the array's closing bracket rather than pulling
   in a JSON parser the toolchain doesn't ship. *)
let append ?(path = default_path) r =
  let entry = point_json r in
  let fresh = "[\n" ^ entry ^ "\n]\n" in
  let content =
    match read_file path with
    | None -> fresh
    | Some old -> (
      match String.rindex_opt old ']' with
      | None -> fresh
      | Some i ->
        let body = String.trim (String.sub old 0 i) in
        if body = "[" then fresh else body ^ ",\n" ^ entry ^ "\n]\n")
  in
  write_file path content;
  path

(* Last occurrence of [key] at or after [from], or -1. *)
let last_index_from s ~from key =
  let kl = String.length key and n = String.length s in
  let last = ref (-1) in
  for i = (if from < 0 then 0 else from) to n - kl do
    if String.sub s i kl = key then last := i
  done;
  !last

let float_field_at s pos key =
  let kl = String.length key and n = String.length s in
  (* First occurrence at or after [pos] — the field inside that entry. *)
  let found = ref (-1) and i = ref pos in
  while !found < 0 && !i <= n - kl do
    if String.sub s !i kl = key then found := !i;
    incr i
  done;
  if !found < 0 then None
  else begin
    let j = !found + kl in
    let stop = ref j in
    while
      !stop < n && s.[!stop] <> ',' && s.[!stop] <> '\n' && s.[!stop] <> '}'
    do
      incr stop
    done;
    float_of_string_opt (String.trim (String.sub s j (!stop - j)))
  end

let last_serial_rps ?(path = default_path) ?(benchmark = "faults-campaign") () =
  match read_file path with
  | None -> None
  | Some s ->
    (* The newest point of *this* benchmark series: two-mode row pairs
       interleave paper and SVA entries, and a gate must only ever
       compare like with like. *)
    let label = Printf.sprintf "\"benchmark\": %S" benchmark in
    let at = last_index_from s ~from:0 label in
    if at < 0 then None else float_field_at s at "\"serial_runs_per_sec\":"

let print ppf r =
  Format.fprintf ppf
    "%s %d runs, seed %d [%s, %d cores]: serial %.2fs (%.1f runs/s), \
     --jobs %d %.2fs (%.1f runs/s), speedup %.2fx, classifications %s@."
    r.benchmark r.runs r.seed r.commit r.host_cores r.serial_s
    r.serial_runs_per_sec
    r.jobs r.parallel_s r.parallel_runs_per_sec r.speedup
    (if r.deterministic then "identical" else "DIVERGED (bug)");
  Format.fprintf ppf
    "  serial phase split: setup %.2fs, execute %.2fs, report %.2fs@."
    r.phase_setup_s r.phase_execute_s r.phase_report_s
