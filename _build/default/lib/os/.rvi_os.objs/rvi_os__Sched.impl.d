lib/os/sched.ml: Array List Proc
