lib/mem/ram.mli: Bytes
