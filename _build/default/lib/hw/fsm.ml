type 'a t = {
  fsm_name : string;
  reg : 'a Reg.t;
  show_fn : 'a -> string;
  mutable transitions : int;
}

let create ~name ~init ~show =
  { fsm_name = name; reg = Reg.create init; show_fn = show; transitions = 0 }

let state t = Reg.get t.reg
let goto t s = Reg.set t.reg s
let stay t = Reg.set t.reg (Reg.get t.reg)

let commit t =
  let before = Reg.get t.reg in
  Reg.commit t.reg;
  if Reg.get t.reg <> before then t.transitions <- t.transitions + 1

let reset t s = Reg.reset t.reg s
let name t = t.fsm_name
let show t = t.show_fn (Reg.get t.reg)
let transitions t = t.transitions
