(** Named event counters and running scalar summaries.

    Lightweight instrumentation shared by every simulated component:
    a table of integer counters plus streaming summaries backed by
    bounded-memory {!Histogram}s, so every summary answers percentile
    queries (p50/p95/p99) as well as min/max/mean. *)

type t

val create : unit -> t

val incr : ?by:int -> t -> string -> unit
(** Increments counter [name] (created at 0 on first use). *)

val get : t -> string -> int
(** Current value of a counter, 0 if never incremented. *)

(** {1 Pre-resolved counter handles}

    Per-cycle hot paths (IMU ticks, DP-RAM port traffic) resolve their
    counters once at construction time and bump the handle, instead of
    hashing the counter name on every event. A handle aliases the cell the
    table holds: {!get}, {!counters} and {!merge_into} observe handle
    updates immediately. After {!reset} old handles are detached from the
    table; re-resolve with {!counter}. *)

type counter

val counter : t -> string -> counter
(** Resolves (creating at 0 if needed) the named counter. *)

val tick : counter -> unit
(** Adds 1. *)

val tick_by : counter -> int -> unit
val value : counter -> int

val observe : t -> string -> float -> unit
(** Feeds a sample into the named scalar summary. *)

type summary = {
  count : int;
  min : float;
  max : float;
  mean : float;
  p50 : float;  (** median, within one histogram bin of exact *)
  p95 : float;
  p99 : float;
}

val summary : t -> string -> summary option

val histogram : t -> string -> Histogram.t option
(** The histogram backing a summary, for arbitrary percentile queries. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into src] adds every counter and summary of [src] to
    [into] (creating names [into] lacks). Counter addition and
    bin-wise histogram merging are associative and commutative, so
    per-shard sinks fold into the same aggregate in any merge order —
    the contract parallel campaign runners rely on. [src] is
    unchanged. *)

val reset : t -> unit

val soft_reset : t -> unit
(** Zeroes every counter {e in place} (pre-resolved {!counter} handles stay
    attached, unlike {!reset}) and drops all summaries. {!get} and
    {!summary} behave as on a fresh table afterwards; {!counters} still
    lists the zeroed names. This is the reset the platform pool uses on
    components that cache counter handles. *)

val pp : Format.formatter -> t -> unit
