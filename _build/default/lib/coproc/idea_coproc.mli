(** The IDEA coprocessor (paper §4.1, Figure 9).

    "A complex coprocessor core running at 6 MHz with 3 pipeline stages";
    the IMU and the memory subsystem run at 24 MHz and synchronisation is
    by stalling. Objects: 0 = input blocks, 1 = output blocks. Scalar
    parameters: block count, decrypt flag, then the eight 16-bit key words.

    The pipeline is modelled structurally: a fetch unit reading 64-bit
    blocks as two 32-bit bus words, three stages of {!stage_cycles} each
    (about three cipher rounds per stage, a few cycles per round for the
    serial 16x16 multiplier mod 2^16+1 that fits the EPXA1's lattice), and
    a retire unit. Fetch and retire share the single memory port, retire
    having priority. *)

val obj_in : int
val obj_out : int

val stages : int
val stage_cycles : int

val key_setup_cycles : int
(** One-time subkey expansion at start-up. *)

val sw_cycles_per_block : int
(** Calibrated ARM cycles per block of the software cipher — chosen so the
    software version reproduces the paper's 26 ms for 4 KB at 133 MHz. *)

type mode = Ecb_encrypt | Ecb_decrypt | Cbc_encrypt | Cbc_decrypt
(** CBC chains each block with the previous ciphertext. Decryption still
    pipelines (the chaining value is the *previous input*, known ahead),
    but CBC encryption serialises the 3-stage pipeline — each block's
    input needs the previous block's output. The [ext-cbc] experiment
    quantifies that classic asymmetry on this core. *)

val mode_code : mode -> int
val mode_of_code : int -> mode option
val mode_name : mode -> string

val params : n_blocks:int -> decrypt:bool -> key:int array -> int list
(** ECB parameter-page layout (back-compatible shorthand). *)

val params_mode :
  n_blocks:int -> mode:mode -> key:int array -> ?iv:int array -> unit -> int list
(** Full layout: block count, mode, eight key words, four IV words
    (ignored in ECB modes; defaults to zero). *)

module Make (P : Mem_port.S) : sig
  val create : P.t -> Coproc.t
end

module Virtual : sig
  val create : Rvi_core.Cp_port.t -> Vport.t * Coproc.t
end
