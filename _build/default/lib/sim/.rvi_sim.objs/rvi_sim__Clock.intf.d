lib/sim/clock.mli: Engine Simtime
