module Simtime = Rvi_sim.Simtime
module Engine = Rvi_sim.Engine
module Kernel = Rvi_os.Kernel
module Accounting = Rvi_os.Accounting

type region_spec = {
  region : int;
  buf : Rvi_os.Uspace.buf;
  dir : Rvi_core.Mapped_object.direction;
}

type error =
  | Exceeds_memory of { required : int; available : int }
  | Access_error of { region : int; addr : int }
  | Hardware_stall

let error_to_string = function
  | Exceeds_memory { required; available } ->
    Printf.sprintf "data set (%d B) exceeds available memory (%d B)" required
      available
  | Access_error { region; addr } ->
    Printf.sprintf "coprocessor access outside region %d window (offset %#x)"
      region addr
  | Hardware_stall -> "coprocessor made no progress before the watchdog"

let align4 n = (n + 3) land lnot 3

let charge_copy kernel ahb bytes =
  Kernel.charge kernel Accounting.Sw_dp
    ~cycles:(Rvi_mem.Ahb.copy_cycles ahb ~bytes)

let copy_in kernel dpram ahb spec ~base =
  match spec.dir with
  | Rvi_core.Mapped_object.In | Rvi_core.Mapped_object.Inout ->
    let len = spec.buf.Rvi_os.Uspace.size in
    let tmp =
      Rvi_mem.Sdram.read_bytes (Kernel.sdram kernel) spec.buf.Rvi_os.Uspace.addr
        ~len
    in
    let geom = Rvi_mem.Dpram.geometry dpram in
    let page_size = geom.Rvi_mem.Page.page_size in
    (* The window may straddle pages; move it page piece by page piece. *)
    let rec move off =
      if off < len then begin
        let addr = base + off in
        let page = Rvi_mem.Page.vpn geom addr in
        let in_page = Rvi_mem.Page.offset geom addr in
        let n = Stdlib.min (len - off) (page_size - in_page) in
        let piece = Bytes.sub tmp off n in
        let cur = Bytes.create page_size in
        Rvi_mem.Dpram.store_page dpram ~page cur ~dst:0 ~len:page_size;
        Bytes.blit piece 0 cur in_page n;
        Rvi_mem.Dpram.load_page dpram ~page cur ~src:0 ~len:page_size;
        move (off + n)
      end
    in
    move 0;
    charge_copy kernel ahb len
  | Rvi_core.Mapped_object.Out -> ()

let copy_out kernel dpram ahb spec ~base =
  match spec.dir with
  | Rvi_core.Mapped_object.Out | Rvi_core.Mapped_object.Inout ->
    let len = spec.buf.Rvi_os.Uspace.size in
    let geom = Rvi_mem.Dpram.geometry dpram in
    let page_size = geom.Rvi_mem.Page.page_size in
    let tmp = Bytes.create len in
    let rec move off =
      if off < len then begin
        let addr = base + off in
        let page = Rvi_mem.Page.vpn geom addr in
        let in_page = Rvi_mem.Page.offset geom addr in
        let n = Stdlib.min (len - off) (page_size - in_page) in
        let cur = Bytes.create page_size in
        Rvi_mem.Dpram.store_page dpram ~page cur ~dst:0 ~len:page_size;
        Bytes.blit cur in_page tmp off n;
        move (off + n)
      end
    in
    move 0;
    Rvi_mem.Sdram.write_bytes (Kernel.sdram kernel) spec.buf.Rvi_os.Uspace.addr
      tmp;
    charge_copy kernel ahb len
  | Rvi_core.Mapped_object.In -> ()

let run ~kernel ~dpram ~ahb ~clocks ~dport ~coproc ~regions ~params
    ?(watchdog = Simtime.of_ms 10_000) () =
  let required =
    List.fold_left (fun acc s -> acc + align4 s.buf.Rvi_os.Uspace.size) 0 regions
  in
  let available = Rvi_mem.Dpram.size dpram in
  if required > available then Error (Exceeds_memory { required; available })
  else begin
    (* Hardwire the windows, exactly what the hand-written HDL/C pair does. *)
    let bases =
      List.fold_left
        (fun (next, acc) s ->
          Dport.set_region dport ~region:s.region ~base:next
            ~size:s.buf.Rvi_os.Uspace.size;
          (next + align4 s.buf.Rvi_os.Uspace.size, (s, next) :: acc))
        (0, []) regions
      |> snd |> List.rev
    in
    List.iter (fun (s, base) -> copy_in kernel dpram ahb s ~base) bases;
    Dport.set_params dport params;
    Dport.assert_start dport;
    let engine = Kernel.engine kernel in
    let acct = Kernel.accounting kernel in
    List.iter Rvi_sim.Clock.start clocks;
    let deadline = Simtime.add (Engine.now engine) watchdog in
    let hw_start = Engine.now engine in
    let outcome =
      match
        Engine.run_while engine (fun () ->
            (not (coproc.Coproc.finished ()))
            && Simtime.(Engine.now engine < deadline))
      with
      | () -> if coproc.Coproc.finished () then Ok () else Error Hardware_stall
      | exception Dport.Out_of_region { region; addr } ->
        Error (Access_error { region; addr })
      | exception Engine.Stalled -> Error Hardware_stall
    in
    Accounting.add acct Accounting.Hw
      (Simtime.sub (Engine.now engine) hw_start);
    List.iter Rvi_sim.Clock.stop clocks;
    match outcome with
    | Ok () ->
      List.iter (fun (s, base) -> copy_out kernel dpram ahb s ~base) bases;
      Ok ()
    | Error e -> Error e
  end

let run_chunked ~kernel ~dpram ~ahb ~clocks ~dport ~coproc ~chunks
    ?(watchdog = Simtime.of_ms 10_000) () =
  let rec go = function
    | [] -> Ok ()
    | (regions, params) :: rest -> (
      coproc.Coproc.reset ();
      match
        run ~kernel ~dpram ~ahb ~clocks ~dport ~coproc ~regions ~params
          ~watchdog ()
      with
      | Ok () -> go rest
      | Error e -> Error e)
  in
  go chunks
