examples/quickstart.mli:
