let max_taps = 64

let check_s16 name v =
  if v < -32768 || v > 32767 then
    invalid_arg (Printf.sprintf "Fir_ref: %s out of signed 16-bit range" name)

let sat16 v = if v < -32768 then -32768 else if v > 32767 then 32767 else v

let validate ~coeffs ~shift n =
  let taps = Array.length coeffs in
  if taps = 0 then invalid_arg "Fir_ref: empty coefficient set";
  if taps > max_taps then invalid_arg "Fir_ref: too many taps";
  if taps > n then invalid_arg "Fir_ref: fewer samples than taps";
  if shift < 0 || shift > 30 then invalid_arg "Fir_ref: shift out of [0, 30]";
  Array.iter (check_s16 "coefficient") coeffs

let filter ~coeffs ~shift x =
  validate ~coeffs ~shift (Array.length x);
  Array.iter (check_s16 "sample") x;
  let taps = Array.length coeffs in
  let n_out = Array.length x - taps + 1 in
  Array.init n_out (fun i ->
      let acc = ref 0 in
      for k = 0 to taps - 1 do
        acc := !acc + (coeffs.(k) * x.(i + k))
      done;
      sat16 (!acc asr shift))

let get_s16 b pos =
  let v = Char.code (Bytes.get b pos) lor (Char.code (Bytes.get b (pos + 1)) lsl 8) in
  if v land 0x8000 <> 0 then v - 0x10000 else v

let put_s16 b pos v =
  let u = v land 0xFFFF in
  Bytes.set b pos (Char.chr (u land 0xFF));
  Bytes.set b (pos + 1) (Char.chr ((u lsr 8) land 0xFF))

let samples_of_bytes b =
  if Bytes.length b mod 2 <> 0 then invalid_arg "Fir_ref: odd byte length";
  Array.init (Bytes.length b / 2) (fun i -> get_s16 b (2 * i))

let bytes_of_samples s =
  let b = Bytes.create (2 * Array.length s) in
  Array.iteri (fun i v -> put_s16 b (2 * i) v) s;
  b

let filter_bytes ~coeffs ~shift input =
  bytes_of_samples (filter ~coeffs ~shift (samples_of_bytes input))

let output_bytes ~taps input_bytes = input_bytes - (2 * (taps - 1))

let lowpass ~taps ~cutoff =
  if taps < 1 || taps > max_taps then invalid_arg "Fir_ref.lowpass: bad taps";
  if cutoff <= 0.0 || cutoff >= 0.5 then
    invalid_arg "Fir_ref.lowpass: cutoff outside (0, 0.5)";
  let pi = 4.0 *. atan 1.0 in
  let mid = float_of_int (taps - 1) /. 2.0 in
  let raw =
    Array.init taps (fun k ->
        let t = float_of_int k -. mid in
        let sinc =
          if abs_float t < 1e-9 then 2.0 *. cutoff
          else sin (2.0 *. pi *. cutoff *. t) /. (pi *. t)
        in
        let window =
          0.54 -. (0.46 *. cos (2.0 *. pi *. float_of_int k /. float_of_int (taps - 1)))
        in
        sinc *. window)
  in
  (* Scale so the DC gain is about one in Q12, keeping every coefficient
     within 16 bits. *)
  let sum = Array.fold_left ( +. ) 0.0 raw in
  Array.map (fun c -> sat16 (int_of_float (c /. sum *. 4096.0))) raw

let sw_cycles_per_tap = 9
let sw_cycles_per_output = 24
