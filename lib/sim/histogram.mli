(** Fixed-bin logarithmic histogram.

    Bounded memory (1024 bins at 5% geometric growth, ~21 decades of
    range) whatever the stream length, supporting percentile queries with
    a bounded relative error: a reported percentile is the geometric
    midpoint of the bin containing the exact order statistic, so it is
    always within one bin (a factor of the growth ratio) of the exact
    value. Non-positive samples are kept in a dedicated underflow bin and
    reported as 0. *)

type t

val create : unit -> t
val add : t -> float -> unit

val count : t -> int
val sum : t -> float
val min : t -> float
(** Exact running minimum (0 when empty). *)

val max : t -> float
(** Exact running maximum (0 when empty). *)

val mean : t -> float

val percentile : t -> float -> float
(** [percentile t q] for [q] in [0..100]. Raises [Invalid_argument]
    outside that range; 0 when empty. Positive results are clamped into
    the exact [min..max] of the observed samples, so a single-sample
    histogram reports that sample at every [q]. *)

val bin_index : float -> int
(** The bin a value falls into (-1 for the underflow bin) — exposed so
    tests can assert the one-bin error bound. *)

val bin_value : int -> float
(** Representative (geometric midpoint) value of a bin. *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into src] adds [src]'s samples to [into] bin-wise.
    Because every histogram shares the fixed bin layout the merge is
    exact: counts, mean, min/max and percentiles equal those of the
    concatenated sample streams, whatever order shards are merged in —
    the associativity parallel sinks rely on. [src] is unchanged. *)

val reset : t -> unit
