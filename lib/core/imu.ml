type config = {
  lookup_states : int;
  tlb_entries : int;
  tlb_organization : Tlb.organization;
  translation : Translation_mode.t;
  l2_entries : int;
  l2_hit_cycles : int;
  walker : Walker.config;
}

let default_config =
  {
    lookup_states = 2;
    tlb_entries = 8;
    tlb_organization = Tlb.Fully_associative;
    translation = Translation_mode.Paper_objects;
    l2_entries = 64;
    l2_hit_cycles = 2;
    walker = Walker.default_config;
  }

let pipelined_config = { default_config with lookup_states = 0 }

(* SVA mode runs a single address space per execution, so every TLB entry
   carries the same tag; keyed by the global virtual page number alone. *)
let sva_asid = 0

(* Access protocol: the coprocessor pulses CP_ACCESS for exactly one cycle
   with the request fields held; the IMU latches it on the next edge and
   answers with a one-cycle CP_TLBHIT pulse when the dual-port access
   completes — on the 4th rising edge after the request with the default
   2-cycle CAM search (Figure 7). A miss parks the FSM in [Faulted] with
   the coprocessor stalled until the OS resumes translation. *)
type state =
  | Idle
  | Wait of int * int (* edges left before the access cycle, resolved page *)
  | Miss_wait of int (* edges left before the fault is signalled *)
  | Faulted

let show_state = function
  | Idle -> "idle"
  | Wait (n, _) -> Printf.sprintf "lookup%d" n
  | Miss_wait n -> Printf.sprintf "miss%d" n
  | Faulted -> "fault"

type access_event = {
  at_cycle : int;
  obj_id : int;
  vpn : int;
  offset : int;
  wr : bool;
  tlb_hit : bool;
}

type t = {
  cfg : config;
  port : Cp_port.t;
  dpram : Rvi_mem.Dpram.t;
  geom : Rvi_mem.Page.geometry;
  raise_irq : unit -> unit;
  tlb : Tlb.t;
  l2 : Tlb.t option; (* SVA: shared second-level TLB behind the L1 CAM *)
  walker : Walker.t option; (* SVA: hardware page-table walker *)
  sva_base : int array; (* SVA: per-object window base VA, -1 = unset *)
  mutable page_table : Rvi_os.Page_table.t option;
  fsm : state Rvi_hw.Fsm.t;
  (* Latched request being translated — flat mutable fields (no
     [request option] box) because one is latched per coprocessor access,
     squarely on the campaign hot path. [req_valid] is the option tag. *)
  mutable req_valid : bool;
  mutable req_obj : int;
  mutable req_addr : int;
  mutable req_wr : bool;
  mutable req_data : int;
  mutable req_width : Cp_port.width;
  mutable param_page : int option;
  mutable params_done : bool;
  mutable fault : (int * int) option;
  mutable fin_seen : bool;
  mutable prev_fin : bool; (* for rising-edge detection across executions *)
  mutable start_pending : bool;
  mutable resume_pending : bool;
  mutable just_resumed : bool;
  (* outputs computed this cycle, committed at the edge *)
  mutable out_start : bool;
  mutable out_tlbhit : bool;
  mutable out_din : int;
  mutable cycle : int;
  mutable trace : (access_event -> unit) option;
  mutable hung : bool;
  mutable walk_errored : bool;
      (* the last SVA translation attempt aborted on an injected PTW bus
         error: the re-fault after resume is legitimate, not a double
         fault *)
  mutable injector : Rvi_inject.Injector.t option;
  stats : Rvi_sim.Stats.t;
  (* pre-resolved handles for the per-cycle / per-access hot paths *)
  c_busy : Rvi_sim.Stats.counter;
  c_hang : Rvi_sim.Stats.counter;
  c_stall : Rvi_sim.Stats.counter;
  c_accesses : Rvi_sim.Stats.counter;
  c_reads : Rvi_sim.Stats.counter;
  c_writes : Rvi_sim.Stats.counter;
  c_param_reads : Rvi_sim.Stats.counter;
}

let create ?(config = default_config) ?l2 ~port ~dpram ~raise_irq () =
  if config.lookup_states < 0 then invalid_arg "Imu.create: negative lookup_states";
  let stats = Rvi_sim.Stats.create () in
  let l2, walker =
    match config.translation with
    | Translation_mode.Paper_objects -> (None, None)
    | Translation_mode.Iommu_sva ->
      let l2 =
        match l2 with
        | Some tlb -> tlb
        | None -> Tlb.create ~entries:config.l2_entries ()
      in
      (Some l2, Some (Walker.create config.walker))
  in
  {
    cfg = config;
    port;
    dpram;
    geom = Rvi_mem.Dpram.geometry dpram;
    raise_irq;
    tlb =
      Tlb.create ~organization:config.tlb_organization
        ~entries:config.tlb_entries ();
    l2;
    walker;
    sva_base = Array.make (Cp_port.param_obj + 1) (-1);
    page_table = None;
    fsm = Rvi_hw.Fsm.create ~name:"imu" ~init:Idle ~show:show_state;
    req_valid = false;
    req_obj = 0;
    req_addr = 0;
    req_wr = false;
    req_data = 0;
    req_width = Cp_port.W32;
    param_page = None;
    params_done = false;
    fault = None;
    fin_seen = false;
    prev_fin = false;
    start_pending = false;
    resume_pending = false;
    just_resumed = false;
    out_start = false;
    out_tlbhit = false;
    out_din = 0;
    cycle = 0;
    trace = None;
    hung = false;
    walk_errored = false;
    injector = None;
    stats;
    c_busy = Rvi_sim.Stats.counter stats "busy_cycles";
    c_hang = Rvi_sim.Stats.counter stats "hang_cycles";
    c_stall = Rvi_sim.Stats.counter stats "stall_cycles";
    c_accesses = Rvi_sim.Stats.counter stats "accesses";
    c_reads = Rvi_sim.Stats.counter stats "reads";
    c_writes = Rvi_sim.Stats.counter stats "writes";
    c_param_reads = Rvi_sim.Stats.counter stats "param_reads";
  }

let config t = t.cfg
let tlb t = t.tlb
let port t = t.port

(* Translation attempt for the latched request: the physical page on a hit,
   [None] on a miss. Parameter-object accesses bypass the TLB; the first
   non-parameter access marks the parameters consumed. *)
let resolve t ~stamp =
  if t.req_obj = Cp_port.param_obj then begin
    match t.param_page with
    | Some ppn ->
      Rvi_sim.Stats.tick t.c_param_reads;
      Some ppn
    | None -> failwith "Imu: parameter access with no parameter page configured"
  end
  else begin
    if not t.params_done then t.params_done <- true;
    let vpn = Rvi_mem.Page.vpn t.geom t.req_addr in
    Tlb.translate t.tlb ~obj_id:t.req_obj ~vpn ~stamp ~wr:t.req_wr
  end

(* SVA: the per-object window register rebases the coprocessor's
   object-local address onto the process VA space. A negative base means
   the window was never programmed — an unconditional fault. *)
let sva_va t =
  let base = t.sva_base.(t.req_obj) in
  if base < 0 then None else Some (base + t.req_addr)

(* Virtual page of the latched request under the active translation mode
   (SVA: the process-global page; -1 for an unprogrammed window). *)
let req_vpn t =
  match t.cfg.translation with
  | Translation_mode.Paper_objects -> Rvi_mem.Page.vpn t.geom t.req_addr
  | Translation_mode.Iommu_sva -> (
    match sva_va t with
    | Some va -> Rvi_mem.Page.vpn t.geom va
    | None -> -1)

let req_offset t =
  match t.cfg.translation with
  | Translation_mode.Paper_objects -> Rvi_mem.Page.offset t.geom t.req_addr
  | Translation_mode.Iommu_sva ->
    if t.req_obj = Cp_port.param_obj then Rvi_mem.Page.offset t.geom t.req_addr
    else (
      match sva_va t with
      | Some va -> Rvi_mem.Page.offset t.geom va
      | None -> 0)

(* Replacement down the hierarchy must not lose write-back state: a dirty
   victim leaving a TLB level marks the L2 entry for the same page, or
   failing that the PTE (the architectural home of the dirty bit). *)
let fold_dirty_to_pte t ~vpn =
  match t.page_table with
  | Some pt -> (
    match Rvi_os.Page_table.find pt ~vpn with
    | Some pte -> pte.Rvi_os.Page_table.dirty <- true
    | None -> ())
  | None -> ()

let fold_dirty_from_l1 t ~vpn =
  match t.l2 with
  | Some l2 -> (
    match Tlb.lookup l2 ~obj_id:sva_asid ~vpn with
    | Tlb.Hit slot -> Tlb.mark_dirty l2 ~slot
    | Tlb.Miss -> fold_dirty_to_pte t ~vpn)
  | None -> fold_dirty_to_pte t ~vpn

(* Hardware refill of one TLB level: an invalid way if there is one, else
   the LRU entry among the allowed ways, with the victim's dirty bit
   folded down by [fold]. Returns the slot written. *)
let hw_refill tlb ~vpn ~ppn ~stamp ~fold =
  let slot =
    match Tlb.free_way_slot tlb ~obj_id:sva_asid ~vpn with
    | Some s -> s
    | None ->
      let victim = ref (-1) and lru = ref max_int in
      List.iter
        (fun s ->
          let e = Tlb.get tlb ~slot:s in
          if e.Tlb.last_access < !lru then begin
            victim := s;
            lru := e.Tlb.last_access
          end)
        (Tlb.way_slots tlb ~obj_id:sva_asid ~vpn);
      let s = !victim in
      let e = Tlb.get tlb ~slot:s in
      if e.Tlb.valid && e.Tlb.dirty then fold e.Tlb.vpn;
      s
  in
  Tlb.insert tlb ~slot ~obj_id:sva_asid ~vpn ~ppn ~stamp;
  slot

(* An L2 refill write can disturb a neighbouring cell, exactly like the
   L1 corruption the paper-mode injector models. The entries are
   parity-protected: the corrupt entry is detected and dropped rather than
   translating wrongly, its dirty bit folded down to the PTE first (the
   architectural home) so no write-back is lost. The page stays resident —
   the next touch misses both levels, re-walks, and re-wires the
   translation from the PTE. *)
let corrupt_l2_maybe t l2 =
  match t.injector with
  | None -> ()
  | Some inj ->
    if Rvi_inject.Injector.fire inj Rvi_inject.Fault.L2_corrupt then begin
      let victims = ref [] in
      for s = Tlb.entries l2 - 1 downto 0 do
        let e = Tlb.get l2 ~slot:s in
        if e.Tlb.valid then victims := s :: !victims
      done;
      match !victims with
      | [] -> ()
      | vs ->
        let s = List.nth vs (Rvi_inject.Injector.draw inj (List.length vs)) in
        let e = Tlb.get l2 ~slot:s in
        if e.Tlb.dirty then fold_dirty_to_pte t ~vpn:e.Tlb.vpn;
        Tlb.invalidate l2 ~slot:s;
        Rvi_sim.Stats.incr t.stats "l2_corruptions"
    end

(* SVA translation of the latched request: L1 CAM, then the shared L2,
   then the walker over the process's page table — refilling upwards on
   the way back, as a hardware IOMMU does. Returns the physical page
   ([None] means a VIM-serviced fault) and the search cycles spent beyond
   the L1 CAM window. *)
let resolve_sva t =
  let stamp = t.cycle + t.cfg.lookup_states in
  if t.req_obj = Cp_port.param_obj then begin
    match t.param_page with
    | Some ppn ->
      Rvi_sim.Stats.tick t.c_param_reads;
      (Some ppn, 0)
    | None -> failwith "Imu: parameter access with no parameter page configured"
  end
  else begin
    if not t.params_done then t.params_done <- true;
    match sva_va t with
    | None -> (None, 0) (* unprogrammed window: fault without searching *)
    | Some va -> (
      let vpn = Rvi_mem.Page.vpn t.geom va in
      match Tlb.translate t.tlb ~obj_id:sva_asid ~vpn ~stamp ~wr:t.req_wr with
      | Some ppn -> (Some ppn, 0)
      | None -> (
        let l2 =
          match t.l2 with
          | Some l2 -> l2
          | None -> failwith "Imu: SVA mode with no L2 TLB"
        in
        let extra = t.cfg.l2_hit_cycles in
        match Tlb.translate l2 ~obj_id:sva_asid ~vpn ~stamp ~wr:false with
        | Some ppn ->
          let slot =
            hw_refill t.tlb ~vpn ~ppn ~stamp ~fold:(fun v ->
                fold_dirty_from_l1 t ~vpn:v)
          in
          Tlb.touch t.tlb ~slot ~stamp ~wr:t.req_wr;
          (Some ppn, extra)
        | None -> (
          match (t.page_table, t.walker) with
          | Some pt, Some w -> (
            match t.injector with
            | Some inj
              when Rvi_inject.Injector.fire inj Rvi_inject.Fault.Walker_hang
              ->
              (* The walker wedges mid-walk: the access never completes and
                 SR shows nothing. Only the VIM's watchdog (and the CR
                 reset that follows) reclaims the interface — the same
                 recovery row as a coprocessor hang. *)
              t.hung <- true;
              Rvi_sim.Stats.incr t.stats "walker_hangs";
              (None, 0)
            | _ -> (
              match t.injector with
              | Some inj
                when Rvi_inject.Injector.fire inj Rvi_inject.Fault.Ptw_error
                ->
                (* The walk's bus read answers with an error response: the
                   walk aborts after one level's worth of cycles and the
                   fault goes to the VIM, which resumes translation so the
                   hardware re-walks — bounded by the VIM's walk-retry
                   budget. *)
                t.walk_errored <- true;
                Rvi_sim.Stats.incr t.stats "ptw_errors";
                (None, extra + (Walker.config w).Walker.cycles_per_level)
              | _ -> (
                let o = Walker.walk w pt ~vpn in
                let extra = extra + o.Walker.cycles in
                match o.Walker.frame with
                | Some ppn ->
                  ignore
                    (hw_refill l2 ~vpn ~ppn ~stamp ~fold:(fun v ->
                         fold_dirty_to_pte t ~vpn:v));
                  corrupt_l2_maybe t l2;
                  let slot =
                    hw_refill t.tlb ~vpn ~ppn ~stamp ~fold:(fun v ->
                        fold_dirty_from_l1 t ~vpn:v)
                  in
                  Tlb.touch t.tlb ~slot ~stamp ~wr:t.req_wr;
                  (Some ppn, extra)
                | None -> (None, extra))))
          | _ -> (None, extra))))
  end

let enter_fault t =
  let vpn = req_vpn t in
  let key = (t.req_obj, vpn) in
  (* A repeat fault right after resume normally means the OS failed to
     install a translation — a kernel bug worth crashing on. The one
     legitimate case is an SVA walk that aborted on an injected PTW bus
     error: the translation exists, the walk of it failed, and the VIM
     bounds how often we come back here. *)
  if t.just_resumed && t.fault = Some key && not t.walk_errored then
    failwith
      (Printf.sprintf
         "Imu: double fault on object %d page %d — OS resumed without \
          installing a translation"
         t.req_obj vpn);
  t.walk_errored <- false;
  t.fault <- Some key;
  t.just_resumed <- false;
  Rvi_sim.Stats.incr t.stats "faults";
  Rvi_hw.Fsm.goto t.fsm Faulted;
  t.raise_irq ()

let perform_access t ppn =
  let offset = req_offset t in
  let bytes = Cp_port.width_bytes t.req_width in
  if offset + bytes > t.geom.Rvi_mem.Page.page_size then
    failwith "Imu: access crosses a page boundary (coprocessor must align)";
  let paddr = Rvi_mem.Page.base t.geom ppn + offset in
  let width = Cp_port.width_bits t.req_width in
  if t.req_wr then begin
    let data =
      (* A wrong-result fault: the datapath computes garbage, so the store
         carries a silently corrupted value. Nothing traps — only output
         verification can catch it. *)
      match t.injector with
      | Some inj when Rvi_inject.Injector.fire inj Rvi_inject.Fault.Coproc_wrong ->
        Rvi_sim.Stats.incr t.stats "wrong_results";
        t.req_data lxor (1 + Rvi_inject.Injector.draw inj ((1 lsl width) - 1))
      | _ -> t.req_data
    in
    Rvi_mem.Dpram.write t.dpram ~width paddr data;
    Rvi_sim.Stats.tick t.c_writes
  end
  else begin
    t.out_din <- Rvi_mem.Dpram.read t.dpram ~width paddr;
    Rvi_sim.Stats.tick t.c_reads
  end;
  t.out_tlbhit <- true;
  t.just_resumed <- false;
  t.walk_errored <- false;
  t.fault <- None

(* The CAM search result is a pure function of the TLB image at latch time
   (nothing else touches the TLB while the coprocessor is mid-access, and
   the coprocessor itself is stalled), so the IMU resolves it immediately —
   stamped with the cycle the search would have completed on — and parks in
   a countdown state whose idle hint lets the clock absorb the whole search
   window in one skip. Port waveforms, counters and the fault/IRQ edge are
   bit-identical to stepping the search cycle by cycle; only the host work
   of the intermediate edges disappears. *)
let translate_or_fault t =
  let resolved, extra =
    match t.cfg.translation with
    | Translation_mode.Paper_objects ->
      (resolve t ~stamp:(t.cycle + t.cfg.lookup_states), 0)
    | Translation_mode.Iommu_sva -> resolve_sva t
  in
  (* [extra] stretches the countdown by the L2 search and walker cycles
     (always 0 in paper mode, keeping that path byte-identical). *)
  let states = t.cfg.lookup_states + extra in
  if t.hung then
    (* A walker hang injected during resolution: the access never
       completes. [compute] keeps the FSM where it is until the watchdog
       abort resets the interface. *)
    Rvi_hw.Fsm.stay t.fsm
  else
  match resolved with
  | Some ppn ->
    if states = 0 then begin
      perform_access t ppn;
      Rvi_hw.Fsm.goto t.fsm Idle
    end
    else Rvi_hw.Fsm.goto t.fsm (Wait (states, ppn))
  | None ->
    if states = 0 then enter_fault t
    else Rvi_hw.Fsm.goto t.fsm (Miss_wait (states - 1))

let begin_translation t =
  let p = t.port in
  t.req_valid <- true;
  t.req_obj <- p.Cp_port.cp_obj;
  t.req_addr <- p.Cp_port.cp_addr;
  t.req_wr <- p.Cp_port.cp_wr;
  t.req_data <- p.Cp_port.cp_dout;
  t.req_width <- p.Cp_port.cp_width;
  Rvi_sim.Stats.tick t.c_accesses;
  (match t.trace with
  | Some probe when t.req_obj <> Cp_port.param_obj ->
    let vpn = req_vpn t in
    let tlb_hit =
      match t.cfg.translation with
      | Translation_mode.Paper_objects ->
        Tlb.lookup t.tlb ~obj_id:t.req_obj ~vpn <> Tlb.Miss
      | Translation_mode.Iommu_sva ->
        vpn >= 0 && Tlb.lookup t.tlb ~obj_id:sva_asid ~vpn <> Tlb.Miss
    in
    probe
      {
        at_cycle = t.cycle;
        obj_id = t.req_obj;
        vpn;
        offset = req_offset t;
        wr = t.req_wr;
        tlb_hit;
      }
  | Some _ -> ()
  | None -> ());
  match t.injector with
  | Some inj when Rvi_inject.Injector.fire inj Rvi_inject.Fault.Coproc_hang ->
    (* The accelerator wedges: the latched access never completes, CP_TLBHIT
       never pulses, and SR shows neither fault nor fin. Only the VIM's
       watchdog (followed by a CR reset) gets out of this. *)
    t.hung <- true;
    Rvi_sim.Stats.incr t.stats "hangs";
    Rvi_hw.Fsm.stay t.fsm
  | _ -> translate_or_fault t

let compute t =
  t.out_start <- false;
  t.out_tlbhit <- false;
  if t.hung then begin
    Rvi_sim.Stats.tick t.c_hang;
    Rvi_hw.Fsm.stay t.fsm
  end
  else begin
  (match Rvi_hw.Fsm.state t.fsm with
  | Idle -> ()
  | Wait _ | Miss_wait _ | Faulted -> Rvi_sim.Stats.tick t.c_busy);
  (* CP_FIN is level-held by the coprocessor; latch its rising edge so a
     completion left over from a previous execution is not re-reported. *)
  let fin_now = t.port.Cp_port.cp_fin in
  if fin_now && (not t.prev_fin) && not t.fin_seen then begin
    t.fin_seen <- true;
    t.raise_irq ()
  end;
  t.prev_fin <- fin_now;
  match Rvi_hw.Fsm.state t.fsm with
  | Idle ->
    if t.start_pending then begin
      t.start_pending <- false;
      t.out_start <- true;
      Rvi_hw.Fsm.stay t.fsm
    end
    else if t.port.Cp_port.cp_access && not t.fin_seen then begin_translation t
    else Rvi_hw.Fsm.stay t.fsm
  | Wait (n, ppn) when n > 0 -> Rvi_hw.Fsm.goto t.fsm (Wait (n - 1, ppn))
  | Wait (_, ppn) ->
    if not t.req_valid then
      failwith "Imu: access state with no latched request";
    perform_access t ppn;
    Rvi_hw.Fsm.goto t.fsm Idle
  | Miss_wait n when n > 0 -> Rvi_hw.Fsm.goto t.fsm (Miss_wait (n - 1))
  | Miss_wait _ ->
    if not t.req_valid then
      failwith "Imu: lookup state with no latched request";
    enter_fault t
  | Faulted ->
    Rvi_sim.Stats.tick t.c_stall;
    if t.resume_pending then begin
      t.resume_pending <- false;
      t.just_resumed <- true;
      if not t.req_valid then
        failwith "Imu: resume with no latched request";
      translate_or_fault t
    end
    else Rvi_hw.Fsm.stay t.fsm
  end

let commit t =
  Rvi_hw.Fsm.commit t.fsm;
  t.port.Cp_port.cp_start <- t.out_start;
  t.port.Cp_port.cp_tlbhit <- t.out_tlbhit;
  if t.out_tlbhit then t.port.Cp_port.cp_din <- t.out_din;
  t.cycle <- t.cycle + 1

(* Idle fast-forward contract ({!Rvi_sim.Clock.component}): a tick is a
   no-op iff it would leave the FSM, the CP port and every counter exactly
   as executing it would, given no other component runs meanwhile. The
   output pulses ([cp_start]/[cp_tlbhit]) make the tick after an active
   cycle non-idle (it must drop the pulse), and a CP_FIN level change means
   rising-edge detection work, so both force an immediate tick. The
   [Wait]/[Miss_wait] countdowns are pure bookkeeping (the translation was
   resolved at latch time): their remaining decrements can be applied
   wholesale by [skip], which is what makes a whole CAM search cost one
   executed edge. *)
let idle_hint t =
  let p = t.port in
  if p.Cp_port.cp_start || p.Cp_port.cp_tlbhit then 0
  else if t.hung then max_int
  else if p.Cp_port.cp_fin <> t.prev_fin then 0
  else
    match Rvi_hw.Fsm.state t.fsm with
    | Idle ->
      if t.start_pending || (p.Cp_port.cp_access && not t.fin_seen) then 0
      else max_int
    | Wait (n, _) -> n
    | Miss_wait n -> n
    | Faulted -> if t.resume_pending then 0 else max_int

let skip t k =
  t.cycle <- t.cycle + k;
  if t.hung then Rvi_sim.Stats.tick_by t.c_hang k
  else
    match Rvi_hw.Fsm.state t.fsm with
    | Idle -> ()
    | Wait (n, ppn) ->
      Rvi_sim.Stats.tick_by t.c_busy k;
      Rvi_hw.Fsm.fast_forward t.fsm ~transitions:k (Wait (n - k, ppn))
    | Miss_wait n ->
      Rvi_sim.Stats.tick_by t.c_busy k;
      Rvi_hw.Fsm.fast_forward t.fsm ~transitions:k (Miss_wait (n - k))
    | Faulted ->
      Rvi_sim.Stats.tick_by t.c_busy k;
      Rvi_sim.Stats.tick_by t.c_stall k

let component t =
  Rvi_sim.Clock.component ~name:"imu"
    ~idle_hint:(fun () -> idle_hint t)
    ~skip:(fun k -> skip t k)
    ~compute:(fun () -> compute t)
    ~commit:(fun () -> commit t)
    ()

let read_ar t =
  if t.req_valid then Imu_regs.ar_encode ~obj_id:t.req_obj ~addr:t.req_addr
  else 0

let read_sr t =
  Imu_regs.sr_encode
    ~fault:(Rvi_hw.Fsm.state t.fsm = Faulted)
    ~fin:t.fin_seen
    ~busy:(Rvi_hw.Fsm.state t.fsm <> Idle)
    ~params_done:t.params_done

let write_cr t word =
  if Imu_regs.test word Imu_regs.cr_reset then begin
    Rvi_hw.Fsm.reset t.fsm Idle;
    t.hung <- false;
    t.walk_errored <- false;
    t.req_valid <- false;
    t.fault <- None;
    t.fin_seen <- false;
    t.prev_fin <- t.port.Cp_port.cp_fin;
    t.params_done <- false;
    t.start_pending <- false;
    t.resume_pending <- false;
    t.just_resumed <- false;
    t.out_start <- false;
    t.out_tlbhit <- false;
    t.port.Cp_port.cp_start <- false;
    t.port.Cp_port.cp_tlbhit <- false
  end;
  if Imu_regs.test word Imu_regs.cr_start then t.start_pending <- true;
  if Imu_regs.test word Imu_regs.cr_resume then t.resume_pending <- true

(* Platform pooling: full power-on reset. Everything [write_cr cr_reset]
   scrubs, plus the cycle counter, the TLB image, the parameter page, the
   data latch and the stats (in place — the pre-resolved handles above stay
   attached). Call after the CP port itself has been reset so the FIN
   level latch starts from the port's quiescent state. *)
let reset t =
  Rvi_hw.Fsm.reset t.fsm Idle;
  t.req_valid <- false;
  t.param_page <- None;
  t.params_done <- false;
  t.fault <- None;
  t.fin_seen <- false;
  t.prev_fin <- t.port.Cp_port.cp_fin;
  t.start_pending <- false;
  t.resume_pending <- false;
  t.just_resumed <- false;
  t.out_start <- false;
  t.out_tlbhit <- false;
  t.out_din <- 0;
  t.cycle <- 0;
  t.hung <- false;
  t.walk_errored <- false;
  t.injector <- None;
  Tlb.reset t.tlb;
  (match t.l2 with Some l2 -> Tlb.reset l2 | None -> ());
  (match t.walker with Some w -> Walker.reset w | None -> ());
  Array.fill t.sva_base 0 (Array.length t.sva_base) (-1);
  t.page_table <- None;
  Rvi_sim.Stats.soft_reset t.stats

(* {2 Context save/restore (tenant preemption)}

   A context is everything the hardware would hold in flip-flops for the
   executing tenant: the FSM state, the latched request, the per-run
   flags, the TLB images, the SVA window registers and page-table
   binding, and the CP-port signal levels (the port is shared wiring
   between the IMU and the coprocessor, so a full swap must reinstate
   its committed levels too). Bindings that belong to the platform, not
   the tenant — the injector, the access-trace probe, the stats handles
   — deliberately stay out.

   The service only preempts with the station clock stopped (between
   [Vim.exec_pump] slices), so both FSM register views agree and
   [Fsm.reset] on restore is exact. *)

type context = {
  cx_state : state;
  cx_req_valid : bool;
  cx_req_obj : int;
  cx_req_addr : int;
  cx_req_wr : bool;
  cx_req_data : int;
  cx_req_width : Cp_port.width;
  cx_param_page : int option;
  cx_params_done : bool;
  cx_fault : (int * int) option;
  cx_fin_seen : bool;
  cx_prev_fin : bool;
  cx_start_pending : bool;
  cx_resume_pending : bool;
  cx_just_resumed : bool;
  cx_out_start : bool;
  cx_out_tlbhit : bool;
  cx_out_din : int;
  cx_cycle : int;
  cx_hung : bool;
  cx_walk_errored : bool;
  cx_tlb : Tlb.image;
  cx_l2 : Tlb.image option;
  cx_sva_base : int array;
  cx_page_table : Rvi_os.Page_table.t option;
  cx_port_obj : int;
  cx_port_addr : int;
  cx_port_dout : int;
  cx_port_access : bool;
  cx_port_wr : bool;
  cx_port_width : Cp_port.width;
  cx_port_fin : bool;
  cx_port_start : bool;
  cx_port_tlbhit : bool;
  cx_port_din : int;
}

let save_context t =
  {
    cx_state = Rvi_hw.Fsm.state t.fsm;
    cx_req_valid = t.req_valid;
    cx_req_obj = t.req_obj;
    cx_req_addr = t.req_addr;
    cx_req_wr = t.req_wr;
    cx_req_data = t.req_data;
    cx_req_width = t.req_width;
    cx_param_page = t.param_page;
    cx_params_done = t.params_done;
    cx_fault = t.fault;
    cx_fin_seen = t.fin_seen;
    cx_prev_fin = t.prev_fin;
    cx_start_pending = t.start_pending;
    cx_resume_pending = t.resume_pending;
    cx_just_resumed = t.just_resumed;
    cx_out_start = t.out_start;
    cx_out_tlbhit = t.out_tlbhit;
    cx_out_din = t.out_din;
    cx_cycle = t.cycle;
    cx_hung = t.hung;
    cx_walk_errored = t.walk_errored;
    cx_tlb = Tlb.save t.tlb;
    cx_l2 = Option.map Tlb.save t.l2;
    cx_sva_base = Array.copy t.sva_base;
    cx_page_table = t.page_table;
    cx_port_obj = t.port.Cp_port.cp_obj;
    cx_port_addr = t.port.Cp_port.cp_addr;
    cx_port_dout = t.port.Cp_port.cp_dout;
    cx_port_access = t.port.Cp_port.cp_access;
    cx_port_wr = t.port.Cp_port.cp_wr;
    cx_port_width = t.port.Cp_port.cp_width;
    cx_port_fin = t.port.Cp_port.cp_fin;
    cx_port_start = t.port.Cp_port.cp_start;
    cx_port_tlbhit = t.port.Cp_port.cp_tlbhit;
    cx_port_din = t.port.Cp_port.cp_din;
  }

let restore_context t cx =
  Rvi_hw.Fsm.reset t.fsm cx.cx_state;
  t.req_valid <- cx.cx_req_valid;
  t.req_obj <- cx.cx_req_obj;
  t.req_addr <- cx.cx_req_addr;
  t.req_wr <- cx.cx_req_wr;
  t.req_data <- cx.cx_req_data;
  t.req_width <- cx.cx_req_width;
  t.param_page <- cx.cx_param_page;
  t.params_done <- cx.cx_params_done;
  t.fault <- cx.cx_fault;
  t.fin_seen <- cx.cx_fin_seen;
  t.prev_fin <- cx.cx_prev_fin;
  t.start_pending <- cx.cx_start_pending;
  t.resume_pending <- cx.cx_resume_pending;
  t.just_resumed <- cx.cx_just_resumed;
  t.out_start <- cx.cx_out_start;
  t.out_tlbhit <- cx.cx_out_tlbhit;
  t.out_din <- cx.cx_out_din;
  t.cycle <- cx.cx_cycle;
  t.hung <- cx.cx_hung;
  t.walk_errored <- cx.cx_walk_errored;
  Tlb.restore t.tlb cx.cx_tlb;
  (match (t.l2, cx.cx_l2) with
  | Some l2, Some img -> Tlb.restore l2 img
  | Some l2, None -> Tlb.reset l2
  | None, _ -> ());
  Array.blit cx.cx_sva_base 0 t.sva_base 0 (Array.length t.sva_base);
  t.page_table <- cx.cx_page_table;
  t.port.Cp_port.cp_obj <- cx.cx_port_obj;
  t.port.Cp_port.cp_addr <- cx.cx_port_addr;
  t.port.Cp_port.cp_dout <- cx.cx_port_dout;
  t.port.Cp_port.cp_access <- cx.cx_port_access;
  t.port.Cp_port.cp_wr <- cx.cx_port_wr;
  t.port.Cp_port.cp_width <- cx.cx_port_width;
  t.port.Cp_port.cp_fin <- cx.cx_port_fin;
  t.port.Cp_port.cp_start <- cx.cx_port_start;
  t.port.Cp_port.cp_tlbhit <- cx.cx_port_tlbhit;
  t.port.Cp_port.cp_din <- cx.cx_port_din

let set_param_page t p = t.param_page <- p

(* {2 SVA register/binding interface (driven by the VIM)} *)

let l2 t = t.l2
let walker t = t.walker

let set_sva_window t ~obj ~base =
  if obj < 0 || obj > Cp_port.max_data_obj then
    invalid_arg (Printf.sprintf "Imu.set_sva_window: bad object id %d" obj);
  if base < 0 then invalid_arg "Imu.set_sva_window: negative base address";
  t.sva_base.(obj) <- base

let sva_window t ~obj =
  if obj < 0 || obj >= Array.length t.sva_base || t.sva_base.(obj) < 0 then None
  else Some t.sva_base.(obj)

let set_page_table t pt = t.page_table <- pt
let page_table t = t.page_table

let sva_invalidate t ~vpn =
  let drop tlb =
    match Tlb.lookup tlb ~obj_id:sva_asid ~vpn with
    | Tlb.Hit slot ->
      let dirty = (Tlb.get tlb ~slot).Tlb.dirty in
      Tlb.invalidate tlb ~slot;
      dirty
    | Tlb.Miss -> false
  in
  let d1 = drop t.tlb in
  let d2 = match t.l2 with Some l2 -> drop l2 | None -> false in
  if d1 || d2 then fold_dirty_to_pte t ~vpn

let set_trace t probe = t.trace <- probe
let set_injector t inj = t.injector <- inj
let hung t = t.hung
let fault t = if Rvi_hw.Fsm.state t.fsm = Faulted then t.fault else None
let params_done t = t.params_done
let finished t = t.fin_seen
let cycle t = t.cycle
let stats t = t.stats
