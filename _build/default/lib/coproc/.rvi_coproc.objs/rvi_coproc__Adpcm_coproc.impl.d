lib/coproc/adpcm_coproc.ml: Adpcm_ref Coproc Mem_port Printf Rvi_core Rvi_hw Rvi_sim Vport
