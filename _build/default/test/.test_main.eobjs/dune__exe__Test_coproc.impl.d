test/test_coproc.ml: Alcotest Array Bytes Char Gen List QCheck QCheck_alcotest Rvi_coproc Rvi_core Rvi_harness Rvi_mem Rvi_os Rvi_sim String
