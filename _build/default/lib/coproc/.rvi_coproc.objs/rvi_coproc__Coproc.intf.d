lib/coproc/coproc.mli: Rvi_sim
