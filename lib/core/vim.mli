(** The Virtual Interface Manager (paper §3.3) — the OS half of the
    virtualisation layer, a kernel module in the original system.

    It owns the dual-port RAM as a pool of page frames, keeps the mapping
    between (object, virtual page) pairs and frames, and responds to the
    two IMU interrupt causes:

    - {b page fault} — the coprocessor touched a page not in the dual-port
      memory: pick a frame (evicting by the configured policy if none is
      free, writing dirty contents back to user space), load the missing
      data, refill the TLB and resume translation;
    - {b end of operation} — flush every dirty resident page back to user
      space and wake the sleeping caller.

    All software work is charged to the kernel's ledger: decode and TLB
    manipulation to [Sw_imu], data movement to [Sw_dp] (doubled in
    [Double] transfer mode — the naive bounce-buffer implementation the
    paper measures and promises to remove), the rest to [Sw_os]. *)

type transfer_mode =
  | Single  (** one copy per page movement *)
  | Double
      (** the paper's "simple implementation of the VIM which makes two
          transfers each time a page is loaded or unloaded" *)

type copy_engine =
  | Cpu  (** uncached processor loads/stores over the AHB (the paper) *)
  | Dma_engine of Rvi_mem.Dma.t
      (** the stripe's DMA controller: cheap per word, CPU only pays the
          channel setup. Implies single transfers. *)

type recovery = {
  max_retries : int;
      (** bounded retries for a failed page transfer before the execution
          aborts with {!Bus_error} / {!Dma_failed} *)
  backoff : Rvi_sim.Simtime.t;
      (** base retry backoff, doubled on each attempt *)
  poll : Rvi_sim.Simtime.t;
      (** SR poll interval while waiting for the coprocessor, used to catch
          causes whose interrupt edge was lost; polling only happens when an
          injector is attached, and [zero] disables it outright *)
}

val default_recovery : recovery
(** 3 retries, 10 µs base backoff, 200 µs poll. *)

(** {1 The recovery state machine, reified}

    Every recovery decision — the VIM's page-transfer retries, the SVA
    walk-retry bounding, the lost-interrupt polling, the watchdog abort
    and the runner's whole-execution retry/fallback ladder — is one row of
    this table. The implementations dispatch through {!decide}, so the
    property tests that enumerate it cover the machine that actually
    runs. *)

type fault_class =
  | Copy_error  (** AHB error / DMA abort on a page transfer *)
  | Walk_error  (** SVA: a page-table walk aborted on a bus error *)
  | Hang  (** no progress: the coprocessor or the walker wedged *)
  | Lost_irq  (** a cause latched in SR with no interrupt edge *)
  | Bad_output  (** clean exit, wrong result (caught by verification) *)

val fault_class_name : fault_class -> string
val all_fault_classes : fault_class list

type action =
  | Retry of { backoff : Rvi_sim.Simtime.t }
      (** re-issue the failed operation after [backoff] *)
  | Poll  (** read SR at the poll interval until the cause surfaces *)
  | Abort  (** abort_cleanup; the error propagates to the caller *)
  | Degrade  (** hand the computation to the software fallback *)

val action_name : action -> string

val decide : recovery -> cls:fault_class -> attempt:int -> action
(** The transition table: the action after the [attempt]-th (1-based)
    failure of one operation of class [cls] under policy [recovery].
    Total, and terminal past the retry budget: [Retry] is only answered
    while [attempt <= max_retries], so no fault class can keep the
    interface wedged. Raises [Invalid_argument] when [attempt < 1]. *)

type config = {
  policy : Policy.t;
  transfer : transfer_mode;
  prefetch : Prefetch.t;
  overlap_prefetch : bool;
      (** resume the coprocessor before performing speculative loads, so
          the transfers overlap hardware execution — the paper's §4.1
          future work ("allowing overlapping of processor and coprocessor
          execution") *)
  copy_engine : copy_engine;
  eager_mapping : bool;
      (** pre-map object pages at [FPGA_EXECUTE] ("performs the mapping",
          §3.1); disable for pure demand paging *)
  watchdog : Rvi_sim.Simtime.t;
      (** abort limit on the gap between two progress points (interrupt
          services) of one coprocessor execution *)
  injector : Rvi_inject.Injector.t option;
      (** fault injector consulted at the VIM's own boundaries (page
          copies, TLB refills, the wait loop); [None] disables injection
          and the recovery polling with it *)
  recovery : recovery;
}

val default_config : unit -> config
(** The paper's measured system: FIFO, [Double] transfers by [Cpu],
    prefetch off (hence no overlap), 10 s watchdog. *)

type error =
  | Unmapped_object of int
  | Object_overflow of { obj_id : int; vpn : int }
  | No_frames
  | Too_many_params of { given : int; capacity : int }
      (** more scalar parameters than the parameter page holds *)
  | Hardware_stall
  | Nothing_loaded
  | Bus_error  (** page-copy retries exhausted against AHB error responses *)
  | Dma_failed  (** page-copy retries exhausted against DMA failures *)
  | Parity_error of { frame : int }
      (** a latent dual-port-RAM bit flip caught by the flush-time parity
          sweep; the frame's data is untrustworthy *)
  | Sva_fault of { vpn : int }
      (** SVA mode: the walker faulted on a virtual page outside the
          process address space (or before any window was programmed) *)
  | Walk_failed of { vpn : int }
      (** SVA mode: the hardware page-table walk of a present PTE kept
          aborting (injected PTW bus errors) through the walk-retry
          budget *)

val error_to_string : error -> string

type severity =
  | Transient  (** environmental: a clean re-execution may succeed *)
  | Fatal  (** caller or configuration bug: retrying reproduces it *)

val classify : error -> severity

type t

val create :
  ?irq_line:int ->
  kernel:Rvi_os.Kernel.t ->
  dpram:Rvi_mem.Dpram.t ->
  imu:Imu.t ->
  ahb:Rvi_mem.Ahb.t ->
  clocks:Rvi_sim.Clock.t list ->
  config ->
  t
(** [clocks] are the hardware clock domains to run during execution. The
    IMU interrupt handler is installed on the kernel's [irq_line]
    (default 0); multiprogramming setups give each configured design its
    own line. *)

val config : t -> config
val kernel : t -> Rvi_os.Kernel.t

val reset : t -> config -> unit
(** Re-arms the VIM for the next execution on a pooled platform: installs
    the given configuration (a freshly built one — new policy state,
    injector, recovery parameters) and scrubs all interface state (object
    map, frame table, write-back and dirtiness tables, error/finished
    latches, stats). The IRQ handler registration and abort hook are
    kept. *)

val map_object : t -> Mapped_object.t -> (unit, string) result
(** Declares an object ([FPGA_MAP_OBJECT] backend). Fails on a duplicate
    identifier. *)

val translation : t -> Translation_mode.t
(** The IMU's translation mode (from its configuration). *)

val sva_note_object : t -> id:int -> base:int -> (unit, string) result
(** SVA-mode [FPGA_MAP_OBJECT] shim: no pages are described to the VIM —
    translation is by process virtual address — but the object's base VA
    is programmed into the IMU's per-object window register so existing
    bitstreams addressing [CP_OBJ]+[CP_ADDR] keep working unmodified. *)

val unmap_all : t -> unit
val objects : t -> Mapped_object.t list
val find_object : t -> id:int -> Mapped_object.t option

val execute : t -> params:int list -> (unit, error) result
(** [FPGA_EXECUTE] backend: resets the IMU, seeds the parameter page,
    starts the coprocessor, sleeps the caller, services faults until the
    end-of-operation interrupt, flushes dirty pages and wakes the caller. *)

(** {1 Sliced execution (the multi-tenant service)}

    The same machine as {!execute}, cut into preemptible quanta. A
    session never sleeps or wakes a process — admission control lives in
    the service ({!Rvi_svc}) — which is what isolates tenants from each
    other's scheduler activity. *)

type session
(** One in-flight [FPGA_EXECUTE]: carries the watchdog deadline (re-armed
    on serviced progress, resumed with its remaining budget after a
    preemption) and the start timestamp
    for the trace span. *)

type context
(** A parked tenant's complete interface state: the IMU flip-flop
    context (FSM, latched request, TLB images, SVA windows, CP-port
    levels), the frame-table occupancy, the full dual-port-RAM image and
    the VIM's own bookkeeping (write-back and dirty sets, object map,
    page-table binding, walk-retry streak). *)

val exec_start :
  ?page_table:Rvi_os.Page_table.t -> t -> params:int list ->
  (session, error) result
(** {!execute}'s prologue: scrub, seed the parameter page, bind the
    translation (SVA mode uses [page_table] when given, the current
    process's otherwise), start the clocks and the coprocessor. The
    caller keeps running — nothing sleeps. *)

val exec_pump :
  t -> session -> until:Rvi_sim.Simtime.t ->
  [ `Done of (unit, error) result | `Running ]
(** Advances simulated time to at most [until], servicing interrupts
    exactly as {!execute}'s pump does (watchdog, lost-IRQ polling,
    spurious-edge opportunities included). [`Running] is only returned
    quiesced — pending causes latched at quantum expiry are serviced
    first — so the scheduler may {!exec_preempt} immediately. [`Done]
    stops the clocks, runs the abort path on error and closes the trace
    span. *)

val exec_preempt : t -> session -> context
(** Stops the station clocks and snapshots the whole interface context.
    Charged as one full dual-port-RAM copy plus page bookkeeping. Only
    legal after [`Running]. *)

val exec_resume : t -> context -> session
(** Reinstates a parked context (frames, pages, IMU, bookkeeping),
    restarts the clocks and returns a fresh session whose watchdog
    resumes with the budget it had left at preemption — time spent
    parked does not count against the tenant's progress budget, but
    parking does not refresh it, so a hung tenant preempted every
    quantum still trips its watchdog. *)

val stats : t -> Rvi_sim.Stats.t
(** ["faults"], ["tlb_refill_faults"], ["evictions"], ["writebacks"],
    ["pages_loaded"], ["pages_cleared"], ["prefetched"],
    ["param_releases"], ["executions"]; with injection also
    ["copy_errors"], ["copy_retries"], ["copies_recovered"],
    ["copy_retries_exhausted"], ["tlb_corruptions"], ["parity_errors"],
    ["lost_irq_recovered"], ["watchdog_fires"], ["aborts"],
    ["spurious_irqs"]; in SVA mode also ["walk_retries"] and
    ["walk_retries_exhausted"] (PTW bus-error recovery). *)

val frame_table : t -> Frame_table.t
(** Exposed for tests and for the ablation harness. *)

val set_abort_hook : t -> (unit -> unit) -> unit
(** Called by the abort path after the IMU reset, to reset the
    coprocessor side of the interface (port signals, synchroniser,
    coprocessor FSM) — the platform wires this, since a hung coprocessor
    left mid-access would wedge the next FPGA_EXECUTE. *)

val consistency : t -> (unit, string) result
(** Cross-checks the software frame table against the hardware TLBs (both
    levels in SVA mode): no page resident in two frames, no valid TLB
    entry pointing at a frame the table does not hold for that page, no
    dirty frame without an owner able to flush it — a mapped object in
    paper mode, a matching PTE in SVA mode. [Error] describes every
    violation found. *)
