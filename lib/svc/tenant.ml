module Simtime = Rvi_sim.Simtime
module Histogram = Rvi_sim.Histogram
module Jobs = Rvi_harness.Jobs

type status = Clean | Recovered of int | Degraded

let status_name = function
  | Clean -> "clean"
  | Recovered n -> Printf.sprintf "recovered%d" n
  | Degraded -> "degraded"

type request = {
  rid : int;
  tenant : int;
  kind : Jobs.app_kind;
  seed : int;
  bytes : int;
  submitted_at : Simtime.t;
}

type completion = {
  c_rid : int;
  c_tenant : int;
  c_kind : Jobs.app_kind;
  c_status : status;
  c_preemptions : int;
  c_retries : int;
  c_submitted_at : Simtime.t;
  c_started_at : Simtime.t;
  c_finished_at : Simtime.t;
}

let latency c = Simtime.sub c.c_finished_at c.c_submitted_at
let latency_us c = Simtime.to_ps (latency c) / 1_000_000

type t = {
  id : int;
  weight : int;
  sq : request Ring.t;
  cq : completion Ring.t;
  mutable vtime : float;
  mutable submitted : int;
  mutable dropped : int;
  mutable completed : int;
  mutable degraded : int;
  mutable recovered : int;
  mutable pending : int;
  mutable last_progress : Simtime.t;
  mutable starved : bool;
  mutable cq_overruns : int;
  lat : Histogram.t;
}

let create ~id ~weight ~sq_capacity ~cq_capacity =
  if weight <= 0 then invalid_arg "Tenant.create: weight must be positive";
  {
    id;
    weight;
    sq = Ring.create ~capacity:sq_capacity;
    cq = Ring.create ~capacity:cq_capacity;
    vtime = 0.0;
    submitted = 0;
    dropped = 0;
    completed = 0;
    degraded = 0;
    recovered = 0;
    pending = 0;
    last_progress = Simtime.zero;
    starved = false;
    cq_overruns = 0;
    lat = Histogram.create ();
  }

let submit t req =
  if Ring.push t.sq req then begin
    t.submitted <- t.submitted + 1;
    t.pending <- t.pending + 1;
    true
  end
  else begin
    t.dropped <- t.dropped + 1;
    false
  end

let complete t c =
  t.completed <- t.completed + 1;
  t.pending <- t.pending - 1;
  t.last_progress <- c.c_finished_at;
  (match c.c_status with
  | Clean -> ()
  | Recovered _ -> t.recovered <- t.recovered + 1
  | Degraded -> t.degraded <- t.degraded + 1);
  Histogram.add t.lat (float_of_int (latency_us c));
  if not (Ring.push t.cq c) then begin
    (* The consumer lags: age out the oldest completion so the ring
       keeps the most recent window, and account the overrun. *)
    ignore (Ring.pop t.cq);
    ignore (Ring.push t.cq c);
    t.cq_overruns <- t.cq_overruns + 1
  end

let mean_latency_us t =
  if Histogram.count t.lat = 0 then 0.0 else Histogram.mean t.lat
