(* Focused unit tests for the VIM's bookkeeping, driven through a real
   platform so every path exercises the actual hardware underneath, plus
   the port-equivalence property that underpins the paper's portability
   claim. *)

module Simtime = Rvi_sim.Simtime
module Engine = Rvi_sim.Engine
module Clock = Rvi_sim.Clock
module Stats = Rvi_sim.Stats
module Config = Rvi_harness.Config
module Platform = Rvi_harness.Platform
module Calibration = Rvi_harness.Calibration
module Workload = Rvi_harness.Workload
module Api = Rvi_core.Api
module Vim = Rvi_core.Vim
module Cp_port = Rvi_core.Cp_port

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let cfg () = Config.default ()

let vecadd_platform ?(cfg = cfg ()) () =
  Platform.create ~app_name:"vimtest" cfg
    ~bitstream:Calibration.vecadd_bitstream
    ~make:Rvi_coproc.Vecadd.Virtual.create

let to_bytes words =
  let b = Bytes.create (4 * Array.length words) in
  Array.iteri
    (fun i w ->
      for k = 0 to 3 do
        Bytes.set b ((4 * i) + k) (Char.chr ((w lsr (8 * k)) land 0xFF))
      done)
    words;
  b

let run_vecadd p n =
  let a, b = Workload.vectors ~seed:5 ~n in
  let buf_a = Platform.alloc_bytes p (to_bytes a) in
  let buf_b = Platform.alloc_bytes p (to_bytes b) in
  let buf_c = Platform.alloc p (4 * n) in
  let ok = function Ok () -> () | Error _ -> Alcotest.fail "setup failed" in
  ok (Api.fpga_load p.Platform.api Calibration.vecadd_bitstream);
  ok
    (Api.fpga_map_object p.Platform.api ~id:0 ~buf:buf_a
       ~dir:Rvi_core.Mapped_object.In ~stream:true ());
  ok
    (Api.fpga_map_object p.Platform.api ~id:1 ~buf:buf_b
       ~dir:Rvi_core.Mapped_object.In ~stream:true ());
  ok
    (Api.fpga_map_object p.Platform.api ~id:2 ~buf:buf_c
       ~dir:Rvi_core.Mapped_object.Out ~stream:true ());
  ok (Api.fpga_execute p.Platform.api ~params:[ n ]);
  let expected = to_bytes (Rvi_coproc.Vecadd.reference ~a ~b) in
  checkb "output correct" true (Bytes.equal (Platform.read p buf_c) expected)

(* {1 Pre-mapping (FPGA_EXECUTE "performs the mapping")} *)

let test_premap_fills_frames () =
  let p = vecadd_platform () in
  (* 3 objects x 1 page each + parameter page: everything pre-maps. *)
  run_vecadd p 128;
  let s = Vim.stats p.Platform.vim in
  checki "three pages pre-mapped" 3 (Stats.get s "premapped");
  checki "no demand faults" 0 (Stats.get s "faults")

let test_premap_stops_at_capacity () =
  let p = vecadd_platform () in
  (* 3 objects x 4 pages = 12 pages against 7 data frames. *)
  run_vecadd p 2048;
  let s = Vim.stats p.Platform.vim in
  checki "pre-maps exactly the free frames" 7 (Stats.get s "premapped");
  checkb "remaining pages fault in" true (Stats.get s "faults" > 0)

(* {1 Frame and TLB state after completion} *)

let test_clean_state_after_fin () =
  let p = vecadd_platform () in
  run_vecadd p 1024;
  checki "no frames held after flush" 0
    (Rvi_core.Frame_table.held_count (Vim.frame_table p.Platform.vim));
  checkb "no parameter page held" true
    (Rvi_core.Frame_table.param_frame (Vim.frame_table p.Platform.vim) = None);
  checki "TLB fully invalidated" 0
    (Rvi_core.Tlb.valid_count (Rvi_core.Imu.tlb p.Platform.imu))

(* {1 Parameter-page recycling (§3.2)} *)

let test_param_page_recycled_under_pressure () =
  let p = vecadd_platform () in
  (* Large run: the spent parameter page must be reclaimed for data. *)
  run_vecadd p 4096;
  let s = Vim.stats p.Platform.vim in
  checki "parameter page released once" 1 (Stats.get s "param_releases")

let test_param_page_kept_when_room () =
  let p = vecadd_platform () in
  run_vecadd p 128;
  let s = Vim.stats p.Platform.vim in
  checki "no need to recycle" 0 (Stats.get s "param_releases")

(* {1 Write-back of evicted output pages (correctness corner)} *)

let test_written_back_pages_reload () =
  (* An output page evicted dirty and faulted in again must come back from
     user space with its earlier contents — otherwise results are lost.
     vecadd with many pages on a tiny 4-frame memory forces exactly that. *)
  let device =
    { Rvi_fpga.Device.epxa1 with Rvi_fpga.Device.dpram_bytes = 8 * 1024; name = "TINY8" }
  in
  let p = vecadd_platform ~cfg:{ (cfg ()) with Config.device } () in
  run_vecadd p 3000;
  let s = Vim.stats p.Platform.vim in
  checkb "evictions happened" true (Stats.get s "evictions" > 0);
  checkb "write-backs happened" true (Stats.get s "writebacks" > 0)

(* {1 Double transfers cost exactly twice (unit-level)} *)

let test_transfer_factor () =
  let run transfer =
    let p = vecadd_platform ~cfg:{ (cfg ()) with Config.transfer } () in
    run_vecadd p 2048;
    Rvi_os.Accounting.get
      (Rvi_os.Kernel.accounting p.Platform.kernel)
      Rvi_os.Accounting.Sw_dp
  in
  let double = run Vim.Double and single = run Vim.Single in
  checki "double is exactly twice single"
    (2 * Simtime.to_ps single)
    (Simtime.to_ps double)

(* {1 Port equivalence: the portability claim as a property}

   The same coprocessor FSM runs behind the virtual port (through IMU,
   TLB, VIM, page faults) and behind the direct physical port. For random
   access scripts the data read and the memory effects must be identical.
   This is the module-system enforcement of §2's portability goal, checked
   dynamically. *)

module Script_coproc (P : Rvi_coproc.Mem_port.S) = struct
  (* Replays a list of accesses: (region, addr, width, write?, data). *)
  type action = int * int * Cp_port.width * bool * int

  type m = {
    port : P.t;
    script : action array;
    mutable index : int;
    mutable started : bool;
    mutable waiting : bool;
    reads : (int * int) Queue.t; (* (script index, value) *)
  }

  let compute m =
    P.sample m.port;
    if (not m.started) && P.start_seen m.port then m.started <- true;
    if m.started then
      if m.waiting then begin
        if P.ready m.port then begin
          let region, _, _, wr, _ = m.script.(m.index) in
          ignore region;
          if not wr then Queue.push (m.index, P.data m.port) m.reads;
          m.index <- m.index + 1;
          m.waiting <- false;
          if m.index >= Array.length m.script then P.finish m.port
        end
      end
      else if m.index < Array.length m.script && not (P.busy m.port) then begin
        let region, addr, width, wr, data = m.script.(m.index) in
        P.issue m.port ~region ~addr ~wr ~width ~data;
        m.waiting <- true
      end

  let create port script =
    let m =
      {
        port;
        script = Array.of_list script;
        index = 0;
        started = false;
        waiting = false;
        reads = Queue.create ();
      }
    in
    ( m,
      {
        Rvi_coproc.Coproc.name = "script";
        component =
          Clock.component ~name:"script"
            ~compute:(fun () -> compute m)
            ~commit:(fun () -> P.commit m.port)
            ();
        finished = (fun () -> m.index >= Array.length m.script);
        reset = ignore;
        stats = Stats.create ();
      } )
end

let random_script prng ~obj_bytes ~n =
  List.init n (fun _ ->
      let region = Rvi_sim.Prng.int prng 2 in
      let width, bytes =
        match Rvi_sim.Prng.int prng 3 with
        | 0 -> (Cp_port.W8, 1)
        | 1 -> (Cp_port.W16, 2)
        | _ -> (Cp_port.W32, 4)
      in
      let addr = Rvi_sim.Prng.int prng (obj_bytes - bytes + 1) in
      (* Keep accesses aligned within pages by aligning to the width. *)
      let addr = addr - (addr mod bytes) in
      let wr = region = 1 && Rvi_sim.Prng.bool prng in
      let data = Rvi_sim.Prng.int prng 0x1000000 in
      (region, addr, width, wr, data))

let run_script_virtual script ~obj_bytes ~init0 ~init1 =
  let module SC = Script_coproc (Rvi_coproc.Vport) in
  let made = ref None in
  let p =
    Platform.create (cfg ()) ~bitstream:Calibration.vecadd_bitstream
      ~make:(fun port ->
        let vport = Rvi_coproc.Vport.create port in
        let m, coproc = SC.create vport script in
        made := Some m;
        (vport, coproc))
  in
  let m = Option.get !made in
  let buf0 = Platform.alloc_bytes p init0 in
  let buf1 = Platform.alloc_bytes p init1 in
  let ok = function Ok () -> () | Error _ -> Alcotest.fail "setup failed" in
  ok (Api.fpga_load p.Platform.api Calibration.vecadd_bitstream);
  ok
    (Api.fpga_map_object p.Platform.api ~id:0 ~buf:buf0
       ~dir:Rvi_core.Mapped_object.In ());
  ok
    (Api.fpga_map_object p.Platform.api ~id:1 ~buf:buf1
       ~dir:Rvi_core.Mapped_object.Inout ());
  ok (Api.fpga_execute p.Platform.api ~params:[ 0 ]);
  ignore obj_bytes;
  let reads = List.of_seq (Queue.to_seq m.reads) in
  (reads, Platform.read p buf1)

let run_script_direct script ~obj_bytes ~init0 ~init1 =
  let module SC = Script_coproc (Rvi_coproc.Dport) in
  let engine = Engine.create () in
  let cost = Rvi_os.Cost_model.default ~cpu_freq_hz:133_000_000 in
  let kernel = Rvi_os.Kernel.create ~engine ~cost ~sdram_bytes:(1024 * 1024) () in
  let dpram =
    Rvi_mem.Dpram.create (Rvi_fpga.Device.geometry Rvi_fpga.Device.epxa1)
  in
  let dport = Rvi_coproc.Dport.create ~dpram in
  let m, coproc = SC.create dport script in
  let clock = Clock.create engine ~name:"c" ~freq_hz:40_000_000 in
  Clock.add clock ~divide:1 coproc.Rvi_coproc.Coproc.component;
  let buf0 = Rvi_os.Uspace.of_bytes kernel init0 in
  let buf1 = Rvi_os.Uspace.of_bytes kernel init1 in
  let regions =
    [
      {
        Rvi_coproc.Normal_driver.region = 0;
        buf = buf0;
        dir = Rvi_core.Mapped_object.In;
      };
      {
        Rvi_coproc.Normal_driver.region = 1;
        buf = buf1;
        dir = Rvi_core.Mapped_object.Inout;
      };
    ]
  in
  (match
     Rvi_coproc.Normal_driver.run ~kernel ~dpram ~ahb:Rvi_mem.Ahb.default
       ~clocks:[ clock ] ~dport ~coproc ~regions ~params:[ 0 ] ()
   with
  | Ok () -> ()
  | Error e ->
    Alcotest.failf "direct run failed: %s"
      (Rvi_coproc.Normal_driver.error_to_string e));
  ignore obj_bytes;
  let reads = List.of_seq (Queue.to_seq m.reads) in
  (reads, Rvi_os.Uspace.read kernel buf1)

let prop_port_equivalence =
  QCheck.Test.make ~name:"virtual and direct ports are observably equivalent"
    ~count:8
    QCheck.(pair (int_bound 10_000) (int_range 20 120))
    (fun (seed, n) ->
      let obj_bytes = 4096 in
      let prng = Rvi_sim.Prng.create ~seed in
      let script = random_script prng ~obj_bytes ~n in
      let init0 = Workload.random_bytes ~seed:(seed + 1) ~n:obj_bytes in
      let init1 = Workload.random_bytes ~seed:(seed + 2) ~n:obj_bytes in
      let r_virt = run_script_virtual script ~obj_bytes ~init0 ~init1 in
      let r_dir = run_script_direct script ~obj_bytes ~init0 ~init1 in
      fst r_virt = fst r_dir && Bytes.equal (snd r_virt) (snd r_dir))

let suite =
  [
    Alcotest.test_case "vim/premap-fills" `Quick test_premap_fills_frames;
    Alcotest.test_case "vim/premap-capacity" `Quick test_premap_stops_at_capacity;
    Alcotest.test_case "vim/clean-after-fin" `Quick test_clean_state_after_fin;
    Alcotest.test_case "vim/param-page-recycled" `Quick
      test_param_page_recycled_under_pressure;
    Alcotest.test_case "vim/param-page-kept" `Quick test_param_page_kept_when_room;
    Alcotest.test_case "vim/writeback-reload" `Quick test_written_back_pages_reload;
    Alcotest.test_case "vim/transfer-factor" `Quick test_transfer_factor;
    QCheck_alcotest.to_alcotest prop_port_equivalence;
  ]

let test_param_page_overflow () =
  let p = vecadd_platform () in
  let ok = function Ok () -> () | Error _ -> Alcotest.fail "setup failed" in
  ok (Api.fpga_load p.Platform.api Calibration.vecadd_bitstream);
  let buf = Platform.alloc p 64 in
  ok
    (Api.fpga_map_object p.Platform.api ~id:0 ~buf
       ~dir:Rvi_core.Mapped_object.In ());
  (* 513 words cannot fit a 2 KB parameter page; they must be rejected
     rather than silently overwriting the first data frame. *)
  match
    Api.fpga_execute p.Platform.api ~params:(List.init 513 (fun i -> i))
  with
  | Error Rvi_os.Syscall.EINVAL -> ()
  | Ok () -> Alcotest.fail "oversized parameter list accepted"
  | Error e -> Alcotest.failf "wrong errno %s" (Rvi_os.Syscall.errno_name e)

(* {1 Regression: TLB refills stamp the inserted entry (LRU thrash)}

   Tlb.insert used to reset last_access to 0, so a just-refilled entry
   looked least-recently-used and the LRU scan in Vim.refill_tlb kept
   re-victimising the pages whose faults had just been serviced. With a
   4-entry TLB over vecadd's 3-page working set the stamped insert takes a
   handful of refill faults; the zero-stamp bug took thousands (measured:
   7 vs 2559 on this exact workload). *)

let test_refill_stamp_no_thrash () =
  let p =
    vecadd_platform ~cfg:{ (cfg ()) with Config.tlb_entries = Some 4 } ()
  in
  run_vecadd p 2048;
  let refills = Stats.get (Vim.stats p.Platform.vim) "tlb_refill_faults" in
  checkb
    (Printf.sprintf "LRU does not thrash on refills (%d)" refills)
    true (refills < 100)

(* {1 Regression: the caller is woken exactly once}

   Vim.execute used to wake the caller unconditionally after the pump loop
   even though handle_fin had already woken it on the happy path. The
   second wake was latent (Sched.wake is a no-op on a ready process) but
   is exactly the class of bug that breaks once wake gains side effects —
   the scheduler now counts such redundant wakes. *)

let test_caller_woken_once () =
  let p = vecadd_platform () in
  run_vecadd p 2048;
  let sched = Rvi_os.Kernel.sched p.Platform.kernel in
  checki "no redundant wakes" 0 (Rvi_os.Sched.redundant_wakes sched)

(* {1 Trace integration: spans nest and match the counters} *)

let test_trace_spans () =
  let tr = Rvi_obs.Trace.create () in
  let p =
    vecadd_platform ~cfg:{ (cfg ()) with Config.trace = Some tr } ()
  in
  run_vecadd p 2048;
  let module Trace = Rvi_obs.Trace in
  let events = Trace.events tr in
  let count pred = List.length (List.filter (fun e -> pred e.Trace.kind) events) in
  let s = Vim.stats p.Platform.vim in
  checki "one execute span" 1
    (count (function Trace.Exec_end _ -> true | _ -> false));
  checki "fault spans match the counter"
    (Stats.get s "faults")
    (count (function Trace.Fault _ -> true | _ -> false));
  checki "eviction events match"
    (Stats.get s "evictions")
    (count (function Trace.Page_evict _ -> true | _ -> false));
  checki "writeback events match"
    (Stats.get s "writebacks")
    (count (function Trace.Page_writeback _ -> true | _ -> false));
  (* Every fault span lies inside the execute span, and contains at least
     the decode segment that started its service. *)
  let exec =
    List.find (fun e -> match e.Trace.kind with Trace.Exec_end _ -> true | _ -> false) events
  in
  let ends e = Simtime.add e.Trace.at e.Trace.dur in
  List.iter
    (fun e ->
      match e.Trace.kind with
      | Trace.Fault _ ->
        checkb "fault within execute" true
          Simtime.(exec.Trace.at <= e.Trace.at && ends e <= ends exec);
        checkb "fault contains a decode segment" true
          (List.exists
             (fun d ->
               d.Trace.kind = Trace.Decode
               && Simtime.(e.Trace.at <= d.Trace.at && ends d <= ends e))
             events)
      | _ -> ())
    events;
  (* The trace round-trips through the JSONL exporter unchanged. *)
  checkb "jsonl round trip" true
    (Rvi_obs.Export.of_jsonl (Rvi_obs.Export.to_jsonl events) = events)

let suite = suite @ [
  Alcotest.test_case "vim/param-page-overflow" `Quick test_param_page_overflow;
  Alcotest.test_case "vim/regression-refill-stamp" `Quick
    test_refill_stamp_no_thrash;
  Alcotest.test_case "vim/regression-single-wake" `Quick test_caller_woken_once;
  Alcotest.test_case "vim/trace-spans" `Quick test_trace_spans;
]
