lib/core/imu_regs.ml:
