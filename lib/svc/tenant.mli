(** A tenant of the coprocessor service: a pair of descriptor rings
    (submission and completion), a fair-share weight and the running
    accounting the SLO report is computed from. *)

type status =
  | Clean  (** first execution verified *)
  | Recovered of int  (** verified after this many whole-execution retries *)
  | Degraded  (** software fallback: output written by the reference *)

val status_name : status -> string

type request = {
  rid : int;  (** globally unique request id *)
  tenant : int;
  kind : Rvi_harness.Jobs.app_kind;
  seed : int;  (** workload generator seed *)
  bytes : int;  (** input size (already kind-aligned) *)
  submitted_at : Rvi_sim.Simtime.t;
}

type completion = {
  c_rid : int;
  c_tenant : int;
  c_kind : Rvi_harness.Jobs.app_kind;
  c_status : status;
  c_preemptions : int;
  c_retries : int;
  c_submitted_at : Rvi_sim.Simtime.t;
  c_started_at : Rvi_sim.Simtime.t;
  c_finished_at : Rvi_sim.Simtime.t;
}

val latency : completion -> Rvi_sim.Simtime.t
(** Submission to completion. *)

val latency_us : completion -> int

type t = {
  id : int;
  weight : int;  (** WFQ share, >= 1 *)
  sq : request Ring.t;
  cq : completion Ring.t;
  mutable vtime : float;  (** virtual service received, in us per weight *)
  mutable submitted : int;
  mutable dropped : int;  (** refused at a full submission ring *)
  mutable completed : int;
  mutable degraded : int;
  mutable recovered : int;
  mutable pending : int;  (** submitted, not yet completed *)
  mutable last_progress : Rvi_sim.Simtime.t;
  mutable starved : bool;
  mutable cq_overruns : int;
  lat : Rvi_sim.Histogram.t;  (** per-request latency, microseconds *)
}

val create : id:int -> weight:int -> sq_capacity:int -> cq_capacity:int -> t

val submit : t -> request -> bool
(** Push onto the submission ring; [false] (and a [dropped] tick) when
    the ring is full — the admission-control refusal. *)

val complete : t -> completion -> unit
(** Records the completion: counters, latency histogram, progress stamp,
    completion-ring push (aging out the oldest entry on overrun). *)

val mean_latency_us : t -> float
