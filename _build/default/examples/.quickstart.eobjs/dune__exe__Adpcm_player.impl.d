examples/adpcm_player.ml: Bytes Char Format Printf Rvi_coproc Rvi_fpga Rvi_harness String
