(** AMBA AHB transfer-cost model.

    On the Excalibur, the processor reaches the dual-port RAM through the
    AHB; those accesses are uncached and considerably slower than cached
    SDRAM accesses, which is why the paper's dual-port-memory management
    time dominates the virtualisation overhead. This module knows how many
    CPU cycles a kernel copy of a given size costs; the time itself is
    charged by the kernel's cost model. *)

type t = {
  word_bytes : int;  (** bus word width in bytes (4 on the EPXA1 AHB) *)
  setup_cycles : int;  (** per-transfer software + arbitration setup *)
  cycles_per_word : int;
      (** CPU cycles per bus word moved by a load/store pair, uncached *)
}

val default : t
(** Calibrated for the 133 MHz ARM922T of the EPXA1 (see
    {!Rvi_harness.Calibration}). *)

val make : word_bytes:int -> setup_cycles:int -> cycles_per_word:int -> t

val words : t -> bytes:int -> int
(** Bus words needed for a transfer of [bytes] (rounded up). *)

val copy_cycles : t -> bytes:int -> int
(** CPU cycles to copy [bytes] between SDRAM and the dual-port RAM. Zero
    bytes costs zero (no transfer issued). *)
