lib/hw/reg.ml:
