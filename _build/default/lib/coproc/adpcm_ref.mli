(** IMA/DVI ADPCM codec — the software reference for the paper's
    [adpcmdecode] multimedia benchmark.

    Each input byte carries two 4-bit codes (low nibble first); each code
    decodes to one signed 16-bit PCM sample, so decoding produces four
    times the input size — the ratio the paper relies on to size its
    Figure 8 working sets. The decoder is the exact function the
    coprocessor implements; the encoder exists to generate realistic
    compressed streams for the workloads. *)

val step_table : int array
(** The 89-entry quantiser step table. *)

val index_table : int array
(** The 16-entry index-adaptation table. *)

type state = { mutable predictor : int; mutable index : int }

val initial_state : unit -> state

val decode_nibble : state -> int -> int
(** [decode_nibble st code] consumes a 4-bit code and returns the next
    signed 16-bit sample ([-32768, 32767]). *)

val encode_sample : state -> int -> int
(** [encode_sample st sample] returns the 4-bit code for the next sample. *)

val decoded_size : int -> int
(** Output bytes for a given input size (4x). *)

val decode : Bytes.t -> Bytes.t
(** Whole-stream decode: samples stored little-endian, two's complement. *)

val encode : Bytes.t -> Bytes.t
(** Whole-stream encode of little-endian 16-bit samples; input length must
    be a multiple of 4. *)
