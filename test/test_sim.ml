(* Unit and property tests for the simulation kernel (rvi_sim). *)

module Simtime = Rvi_sim.Simtime
module Event_queue = Rvi_sim.Event_queue
module Engine = Rvi_sim.Engine
module Clock = Rvi_sim.Clock
module Stats = Rvi_sim.Stats
module Prng = Rvi_sim.Prng

let check = Alcotest.check
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* {1 Simtime} *)

let test_time_units () =
  checki "ns" 1_000 (Simtime.to_ps (Simtime.of_ns 1));
  checki "us" 1_000_000 (Simtime.to_ps (Simtime.of_us 1));
  checki "ms" 1_000_000_000 (Simtime.to_ps (Simtime.of_ms 1));
  check (Alcotest.float 1e-9) "to_ms" 1.5 (Simtime.to_ms (Simtime.of_us 1500));
  check (Alcotest.float 1e-9) "to_s" 0.002 (Simtime.to_s (Simtime.of_ms 2))

let test_time_arith () =
  let a = Simtime.of_ns 3 and b = Simtime.of_ns 5 in
  checki "add" 8_000 (Simtime.to_ps (Simtime.add a b));
  checki "sub" 2_000 (Simtime.to_ps (Simtime.sub b a));
  checki "mul" 15_000 (Simtime.to_ps (Simtime.mul a 5));
  checkb "le" true Simtime.(a <= b);
  checkb "lt" true Simtime.(a < b);
  checki "min" 3_000 (Simtime.to_ps (Simtime.min a b));
  checki "max" 5_000 (Simtime.to_ps (Simtime.max a b));
  Alcotest.check_raises "sub negative" (Invalid_argument "Simtime.sub: negative result")
    (fun () -> ignore (Simtime.sub a b))

let test_time_invalid () =
  Alcotest.check_raises "negative ps" (Invalid_argument "Simtime.of_ps: negative")
    (fun () -> ignore (Simtime.of_ps (-1)));
  Alcotest.check_raises "zero hz"
    (Invalid_argument "Simtime.period_of_hz: non-positive frequency") (fun () ->
      ignore (Simtime.period_of_hz 0))

let test_period () =
  checki "133MHz period" 7518 (Simtime.to_ps (Simtime.period_of_hz 133_000_000));
  checki "40MHz period" 25_000 (Simtime.to_ps (Simtime.period_of_hz 40_000_000));
  checki "cycles at 1GHz" 1000 (Simtime.cycles_of ~hz:1_000_000_000 (Simtime.of_us 1));
  checki "of_cycles" 25_000_000
    (Simtime.to_ps (Simtime.of_cycles ~hz:40_000_000 1000))

let test_time_pp () =
  let s t = Format.asprintf "%a" Simtime.pp t in
  check Alcotest.string "zero" "0s" (s Simtime.zero);
  check Alcotest.string "ps" "500ps" (s (Simtime.of_ps 500));
  check Alcotest.string "ms" "2.000ms" (s (Simtime.of_ms 2))

(* {1 Event_queue} *)

let test_queue_order () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:(Simtime.of_ns 5) "c";
  Event_queue.push q ~time:(Simtime.of_ns 1) "a";
  Event_queue.push q ~time:(Simtime.of_ns 3) "b";
  let pop () =
    match Event_queue.pop q with Some (_, x) -> x | None -> "empty"
  in
  check Alcotest.string "first" "a" (pop ());
  check Alcotest.string "second" "b" (pop ());
  check Alcotest.string "third" "c" (pop ());
  checkb "empty" true (Event_queue.is_empty q)

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  let t = Simtime.of_ns 7 in
  List.iter (fun x -> Event_queue.push q ~time:t x) [ 1; 2; 3; 4; 5 ];
  let rec drain acc =
    match Event_queue.pop q with
    | Some (_, x) -> drain (x :: acc)
    | None -> List.rev acc
  in
  check Alcotest.(list int) "insertion order preserved" [ 1; 2; 3; 4; 5 ] (drain [])

let test_queue_peek_clear () =
  let q = Event_queue.create () in
  checkb "peek empty" true (Event_queue.peek_time q = None);
  Event_queue.push q ~time:(Simtime.of_ns 2) ();
  checkb "peek" true (Event_queue.peek_time q = Some (Simtime.of_ns 2));
  checki "length" 1 (Event_queue.length q);
  Event_queue.clear q;
  checki "cleared" 0 (Event_queue.length q)

let prop_queue_sorted =
  QCheck.Test.make ~name:"event_queue pops in nondecreasing time order"
    ~count:200
    QCheck.(list (int_bound 100_000))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> Event_queue.push q ~time:(Simtime.of_ps t) ()) times;
      let rec drain last =
        match Event_queue.pop q with
        | None -> true
        | Some (t, ()) -> Simtime.(last <= t) && drain t
      in
      drain Simtime.zero)

let prop_queue_conserves =
  QCheck.Test.make ~name:"event_queue conserves elements" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let q = Event_queue.create () in
      List.iteri
        (fun i x -> Event_queue.push q ~time:(Simtime.of_ps (abs x)) (i, x))
        xs;
      let rec drain acc =
        match Event_queue.pop q with
        | None -> acc
        | Some (_, e) -> drain (e :: acc)
      in
      let out = drain [] in
      List.sort compare out = List.sort compare (List.mapi (fun i x -> (i, x)) xs))

let prop_queue_stable_ties =
  (* Same-timestamp events must pop in insertion order, and the drained
     sequence must therefore equal a stable sort of the pushes by time.
     A tiny time range makes ties the common case rather than the
     exception. *)
  QCheck.Test.make ~name:"event_queue is a stable priority queue" ~count:300
    QCheck.(list (int_bound 7))
    (fun times ->
      let q = Event_queue.create () in
      let tagged = List.mapi (fun i t -> (t, i)) times in
      List.iter
        (fun (t, i) -> Event_queue.push q ~time:(Simtime.of_ps t) (t, i))
        tagged;
      let rec drain acc =
        match Event_queue.pop q with
        | None -> List.rev acc
        | Some (_, e) -> drain (e :: acc)
      in
      drain []
      = List.stable_sort (fun (a, _) (b, _) -> compare a b) tagged)

let prop_queue_pop_monotone =
  (* Interleaved pushes and pops: whatever the schedule, the time
     returned by each pop never goes backwards relative to the previous
     pop, provided no intervening push was earlier than the watermark --
     which the generator guarantees by pushing nondecreasing times. *)
  QCheck.Test.make ~name:"event_queue pop times are monotone under interleaving"
    ~count:200
    QCheck.(list (pair (int_bound 50) bool))
    (fun ops ->
      let q = Event_queue.create () in
      let now = ref 0 in
      let last = ref Simtime.zero in
      let ok = ref true in
      List.iter
        (fun (dt, is_pop) ->
          if is_pop then (
            match Event_queue.pop q with
            | None -> ()
            | Some (t, ()) ->
              if not Simtime.(!last <= t) then ok := false;
              last := t)
          else (
            now := !now + dt;
            Event_queue.push q ~time:(Simtime.of_ps !now) ()))
        ops;
      !ok)

(* {1 Engine} *)

let test_engine_schedule () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule_at e (Simtime.of_ns 10) (fun () -> log := 10 :: !log);
  Engine.schedule_at e (Simtime.of_ns 5) (fun () -> log := 5 :: !log);
  Engine.run_until e (Simtime.of_ns 7);
  check Alcotest.(list int) "only first fired" [ 5 ] !log;
  checki "time advanced to deadline" (Simtime.to_ps (Simtime.of_ns 7))
    (Simtime.to_ps (Engine.now e));
  Engine.run_until e (Simtime.of_ns 20);
  check Alcotest.(list int) "both fired" [ 10; 5 ] !log

let test_engine_advance () =
  let e = Engine.create () in
  Engine.advance e (Simtime.of_us 3);
  checki "advance moves clock" (Simtime.to_ps (Simtime.of_us 3))
    (Simtime.to_ps (Engine.now e))

let test_engine_past_schedule () =
  let e = Engine.create () in
  Engine.advance e (Simtime.of_ns 100);
  Alcotest.check_raises "past scheduling rejected"
    (Invalid_argument "Engine.schedule_at: time in the past") (fun () ->
      Engine.schedule_at e (Simtime.of_ns 10) ignore)

let test_engine_cascade () =
  (* An event scheduling another event inside the same run. *)
  let e = Engine.create () in
  let hits = ref 0 in
  Engine.schedule_after e (Simtime.of_ns 1) (fun () ->
      incr hits;
      Engine.schedule_after e (Simtime.of_ns 1) (fun () -> incr hits));
  Engine.run_until e (Simtime.of_ns 10);
  checki "cascaded" 2 !hits

let test_engine_run_while_stall () =
  let e = Engine.create () in
  Alcotest.check_raises "stalled" Engine.Stalled (fun () ->
      Engine.run_while e (fun () -> true))

(* {1 Clock} *)

let test_clock_edges () =
  let e = Engine.create () in
  let c = Clock.create e ~name:"c" ~freq_hz:1_000_000 in
  let ticks = ref 0 in
  Clock.add c (Clock.component ~name:"n" ~compute:(fun () -> incr ticks) ~commit:ignore ());
  Clock.start c;
  Engine.run_until e (Simtime.of_us 10);
  checki "10 edges in 10us at 1MHz" 10 !ticks;
  checki "cycles" 10 (Clock.cycles c);
  Clock.stop c;
  Engine.run_until e (Simtime.of_us 20);
  checki "no edges while stopped" 10 !ticks

let test_clock_two_phase () =
  (* Component B must see A's value from the previous edge, regardless of
     registration order. *)
  let e = Engine.create () in
  let c = Clock.create e ~name:"c" ~freq_hz:1_000_000 in
  let a = Rvi_hw.Reg.create 0 in
  let seen = ref [] in
  Clock.add c
    (Clock.component ~name:"a"
       ~compute:(fun () -> Rvi_hw.Reg.set a (Rvi_hw.Reg.get a + 1))
       ~commit:(fun () -> Rvi_hw.Reg.commit a) ());
  Clock.add c
    (Clock.component ~name:"b"
       ~compute:(fun () -> seen := Rvi_hw.Reg.get a :: !seen)
       ~commit:ignore ());
  Clock.start c;
  Engine.run_until e (Simtime.of_us 3);
  check Alcotest.(list int) "b sees pre-edge values" [ 2; 1; 0 ] !seen

let test_clock_divide () =
  let e = Engine.create () in
  let c = Clock.create e ~name:"c" ~freq_hz:1_000_000 in
  let fast = ref 0 and slow = ref 0 in
  Clock.add c (Clock.component ~name:"f" ~compute:(fun () -> incr fast) ~commit:ignore ());
  Clock.add c ~divide:4
    (Clock.component ~name:"s" ~compute:(fun () -> incr slow) ~commit:ignore ());
  Clock.start c;
  Engine.run_until e (Simtime.of_us 16);
  checki "fast edges" 16 !fast;
  checki "slow edges" 4 !slow

let test_clock_divide_phase () =
  let e = Engine.create () in
  let c = Clock.create e ~name:"c" ~freq_hz:1_000_000 in
  let cycles_seen = ref [] in
  Clock.add c ~divide:4 ~phase:2
    (Clock.component ~name:"p"
       ~compute:(fun () -> cycles_seen := Clock.cycles c :: !cycles_seen)
       ~commit:ignore ());
  Clock.start c;
  Engine.run_until e (Simtime.of_us 12);
  check Alcotest.(list int) "phase offset" [ 10; 6; 2 ] !cycles_seen

let test_clock_bad_args () =
  let e = Engine.create () in
  let c = Clock.create e ~name:"c" ~freq_hz:1000 in
  Alcotest.check_raises "bad divide" (Invalid_argument "Clock.add: divide < 1")
    (fun () ->
      Clock.add c ~divide:0 (Clock.component ~name:"x" ~compute:ignore ~commit:ignore ()));
  Alcotest.check_raises "bad phase" (Invalid_argument "Clock.add: bad phase")
    (fun () ->
      Clock.add c ~divide:2 ~phase:2
        (Clock.component ~name:"x" ~compute:ignore ~commit:ignore ()))

let test_clock_observer () =
  let e = Engine.create () in
  let c = Clock.create e ~name:"c" ~freq_hz:1_000_000 in
  let seen = ref [] in
  Clock.on_edge c (fun cycle -> seen := cycle :: !seen);
  Clock.start c;
  Engine.run_until e (Simtime.of_us 3);
  check Alcotest.(list int) "observer cycles" [ 2; 1; 0 ] !seen

let test_clock_many_components () =
  (* Regression for the O(n^2) registration bug: [add] appended to an
     immutable list with [@ [slot]]. A thousand components must register
     quickly and still fire in registration order on every edge. *)
  let e = Engine.create () in
  let c = Clock.create e ~name:"c" ~freq_hz:1_000_000 in
  let n = 1000 in
  let order = ref [] in
  for i = 0 to n - 1 do
    Clock.add c
      (Clock.component
         ~name:(string_of_int i)
         ~compute:(fun () -> order := i :: !order)
         ~commit:ignore ())
  done;
  Clock.start c;
  Engine.run_until e (Simtime.of_us 3);
  checki "all components ticked every edge" (3 * n) (List.length !order);
  let edges =
    (* !order is reverse chronological: split into per-edge slices *)
    List.init 3 (fun k -> List.filteri (fun i _ -> i / n = k) !order)
  in
  List.iter
    (fun edge ->
      check
        Alcotest.(list int)
        "slot order preserved within an edge"
        (List.init n (fun i -> n - 1 - i))
        edge)
    edges

let test_clock_stop_start_phase () =
  (* Pins the documented stop/start contract: a restarted clock begins a
     fresh edge grid one full period after [start] — it does not resume
     the old grid. At 1 MHz: edges at 1,2,3 us; stop at 3.5 us; restart;
     next edges at 4.5 and 5.5 us. *)
  let e = Engine.create () in
  let c = Clock.create e ~name:"c" ~freq_hz:1_000_000 in
  let edge_times = ref [] in
  Clock.on_edge c (fun _ ->
      edge_times := Simtime.to_ps (Engine.now e) :: !edge_times);
  Clock.start c;
  Engine.run_until e (Simtime.of_ns 3500);
  Clock.stop c;
  Clock.start c;
  Engine.run_until e (Simtime.of_ns 6000);
  let ns n = Simtime.to_ps (Simtime.of_ns n) in
  check
    Alcotest.(list int)
    "edge grid restarts one period after start"
    [ ns 5500; ns 4500; ns 3000; ns 2000; ns 1000 ]
    !edge_times;
  checki "five edges counted" 5 (Clock.cycles c)

(* {2 Batched/fast-forward equivalence}

   The batched clock (inline edges, idle fast-forward, per-slot no-op
   elision) must be observationally identical to the seed per-edge
   scheduler, which survives as [~batched:false]. Components are mirrored
   pure models: a cyclic work/idle schedule over the component's own
   ticks, where only work ticks log. The batched side gets honest
   [idle_hint]/[skip] implementations derived from the schedule; the
   reference side gets none (the reference path never consults them). *)

let make_sched_component ~hinted sched log =
  let n = Array.length sched in
  let ticks = ref 0 in
  let works k = sched.(k mod n) in
  let compute () = if works !ticks then log := !ticks :: !log in
  let commit () = incr ticks in
  if not hinted then
    (Clock.component ~name:"m" ~compute ~commit (), ticks)
  else
    let idle_hint () =
      let rec count k =
        if k >= n then max_int (* fully idle schedule: idle forever *)
        else if works (!ticks + k) then k
        else count (k + 1)
      in
      count 0
    in
    let skip k = ticks := !ticks + k in
    (Clock.component ~name:"m" ~idle_hint ~skip ~compute ~commit (), ticks)

let run_sched_side ~batched ~hinted ~observe comps spans =
  let e = Engine.create () in
  let c = Clock.create ~batched e ~name:"c" ~freq_hz:1_000_000 in
  let logs =
    List.map
      (fun (divide, phase, sched) ->
        let log = ref [] in
        let comp, ticks = make_sched_component ~hinted sched log in
        Clock.add c ~divide ~phase comp;
        (log, ticks))
      comps
  in
  let obs = ref [] in
  if observe then Clock.on_edge c (fun cycle -> obs := cycle :: !obs);
  Clock.start c;
  List.iter
    (fun (dur_us, toggle) ->
      if toggle then
        if Clock.running c then Clock.stop c else Clock.start c;
      Engine.advance e (Simtime.of_us dur_us))
    spans;
  ( List.map (fun (log, ticks) -> (!log, !ticks)) logs,
    Clock.cycles c,
    Simtime.to_ps (Engine.now e),
    !obs )

let gen_sched_comps =
  QCheck.(
    list_of_size
      Gen.(1 -- 4)
      (triple (int_range 1 4) (int_bound 3)
         (list_of_size Gen.(1 -- 5) (pair (int_bound 3) (int_bound 50)))))

let build_comps raw =
  List.map
    (fun (divide, phase_raw, segments) ->
      let sched =
        List.concat_map
          (fun (work, idle) ->
            List.init work (fun _ -> true) @ List.init idle (fun _ -> false))
          segments
      in
      let sched = if sched = [] then [ true ] else sched in
      (divide, phase_raw mod divide, Array.of_list sched))
    raw

let prop_clock_batched_equiv =
  QCheck.Test.make
    ~name:"batched+fast-forward clock == reference per-edge clock" ~count:60
    QCheck.(
      pair gen_sched_comps
        (list_of_size Gen.(1 -- 6) (pair (int_range 1 300) bool)))
    (fun (raw, spans) ->
      let comps = build_comps raw in
      let fast = run_sched_side ~batched:true ~hinted:true ~observe:false comps spans in
      let ref_ = run_sched_side ~batched:false ~hinted:false ~observe:false comps spans in
      fast = ref_)

let prop_clock_batched_equiv_observed =
  (* With an edge observer the clock may not fast-forward (observers see
     every cycle) but still batches; both the tick streams and the
     observer's cycle stream must match the reference. *)
  QCheck.Test.make
    ~name:"batched clock with observer == reference (no fast-forward)"
    ~count:40
    QCheck.(
      pair gen_sched_comps
        (list_of_size Gen.(1 -- 4) (pair (int_range 1 120) bool)))
    (fun (raw, spans) ->
      let comps = build_comps raw in
      let fast = run_sched_side ~batched:true ~hinted:true ~observe:true comps spans in
      let ref_ = run_sched_side ~batched:false ~hinted:false ~observe:true comps spans in
      fast = ref_)

(* {1 Stats} *)

let test_stats () =
  let s = Stats.create () in
  Stats.incr s "a";
  Stats.incr s ~by:4 "a";
  Stats.incr s "b";
  checki "a" 5 (Stats.get s "a");
  checki "b" 1 (Stats.get s "b");
  checki "absent" 0 (Stats.get s "zzz");
  check
    Alcotest.(list (pair string int))
    "sorted counters"
    [ ("a", 5); ("b", 1) ]
    (Stats.counters s);
  Stats.observe s "lat" 1.0;
  Stats.observe s "lat" 3.0;
  (match Stats.summary s "lat" with
  | Some { Stats.count; min; max; mean; p50; p95; p99 } ->
    checki "count" 2 count;
    check (Alcotest.float 1e-9) "min" 1.0 min;
    check (Alcotest.float 1e-9) "max" 3.0 max;
    check (Alcotest.float 1e-9) "mean" 2.0 mean;
    (* Percentiles come from the log-scale histogram: within one 5% bin. *)
    check (Alcotest.float 0.1) "p50" 1.0 p50;
    check (Alcotest.float 0.2) "p95" 3.0 p95;
    check (Alcotest.float 0.2) "p99" 3.0 p99
  | None -> Alcotest.fail "missing summary");
  Stats.reset s;
  checki "reset" 0 (Stats.get s "a")

(* {1 Prng} *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:123 and b = Prng.create ~seed:123 in
  for _ = 1 to 100 do
    checki "same stream" (Prng.next a) (Prng.next b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Prng.next a = Prng.next b then incr same
  done;
  checkb "streams differ" true (!same < 5)

let prop_prng_bounds =
  QCheck.Test.make ~name:"prng int stays within bound" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let p = Prng.create ~seed in
      let v = Prng.int p bound in
      v >= 0 && v < bound)

let draws p n = List.init n (fun _ -> Prng.next p)

let prop_prng_derive_pure =
  (* derive is a pure function of (seed, index): two generators built
     from the same pair replay the same stream. *)
  QCheck.Test.make ~name:"prng derive is a pure function of (seed, index)"
    ~count:200
    QCheck.(pair small_int (int_bound 10_000))
    (fun (seed, index) ->
      draws (Prng.derive ~seed ~index) 16 = draws (Prng.derive ~seed ~index) 16)

let prop_prng_derive_index_independent =
  (* Distinct indices under one seed give streams that never collide in
     their first draws -- the property the sharded campaign runner
     relies on for per-run stream independence. *)
  QCheck.Test.make
    ~name:"prng derive streams for distinct indices are independent" ~count:200
    QCheck.(triple small_int (int_bound 10_000) (int_range 1 10_000))
    (fun (seed, index, delta) ->
      let a = draws (Prng.derive ~seed ~index) 16 in
      let b = draws (Prng.derive ~seed ~index:(index + delta)) 16 in
      List.for_all2 (fun x y -> x <> y) a b)

let prop_prng_derive_seed_sensitive =
  QCheck.Test.make ~name:"prng derive streams differ across seeds" ~count:200
    QCheck.(pair small_int (int_bound 10_000))
    (fun (seed, index) ->
      draws (Prng.derive ~seed ~index) 8
      <> draws (Prng.derive ~seed:(seed + 1) ~index) 8)

let test_prng_derive_decorrelated () =
  (* Adjacent indices: the xor of paired 62-bit draws should look like
     random bits, i.e. average popcount near 31 per draw. *)
  let a = Prng.derive ~seed:2004 ~index:41 in
  let b = Prng.derive ~seed:2004 ~index:42 in
  let total = ref 0 in
  let n = 64 in
  for _ = 1 to n do
    let x = Prng.next a lxor Prng.next b in
    let pop = ref 0 in
    let v = ref x in
    while !v <> 0 do
      v := !v land (!v - 1);
      incr pop
    done;
    total := !total + !pop
  done;
  let mean = float_of_int !total /. float_of_int n in
  checkb "mean xor popcount within [27, 35]" true (mean >= 27. && mean <= 35.)

let test_prng_fill () =
  let p = Prng.create ~seed:9 in
  let b = Bytes.make 64 '\000' in
  Prng.fill_bytes p b;
  let nonzero = ref 0 in
  Bytes.iter (fun c -> if c <> '\000' then incr nonzero) b;
  checkb "mostly nonzero" true (!nonzero > 48)

let test_prng_split () =
  let p = Prng.create ~seed:5 in
  let q = Prng.split p in
  checkb "split stream differs" true (Prng.next p <> Prng.next q)

let suite =
  [
    Alcotest.test_case "simtime/units" `Quick test_time_units;
    Alcotest.test_case "simtime/arith" `Quick test_time_arith;
    Alcotest.test_case "simtime/invalid" `Quick test_time_invalid;
    Alcotest.test_case "simtime/period" `Quick test_period;
    Alcotest.test_case "simtime/pp" `Quick test_time_pp;
    Alcotest.test_case "event_queue/order" `Quick test_queue_order;
    Alcotest.test_case "event_queue/fifo-ties" `Quick test_queue_fifo_ties;
    Alcotest.test_case "event_queue/peek-clear" `Quick test_queue_peek_clear;
    QCheck_alcotest.to_alcotest prop_queue_sorted;
    QCheck_alcotest.to_alcotest prop_queue_conserves;
    QCheck_alcotest.to_alcotest prop_queue_stable_ties;
    QCheck_alcotest.to_alcotest prop_queue_pop_monotone;
    Alcotest.test_case "engine/schedule" `Quick test_engine_schedule;
    Alcotest.test_case "engine/advance" `Quick test_engine_advance;
    Alcotest.test_case "engine/past" `Quick test_engine_past_schedule;
    Alcotest.test_case "engine/cascade" `Quick test_engine_cascade;
    Alcotest.test_case "engine/stall" `Quick test_engine_run_while_stall;
    Alcotest.test_case "clock/edges" `Quick test_clock_edges;
    Alcotest.test_case "clock/two-phase" `Quick test_clock_two_phase;
    Alcotest.test_case "clock/divide" `Quick test_clock_divide;
    Alcotest.test_case "clock/divide-phase" `Quick test_clock_divide_phase;
    Alcotest.test_case "clock/bad-args" `Quick test_clock_bad_args;
    Alcotest.test_case "clock/observer" `Quick test_clock_observer;
    Alcotest.test_case "clock/many-components" `Quick test_clock_many_components;
    Alcotest.test_case "clock/stop-start-phase" `Quick
      test_clock_stop_start_phase;
    QCheck_alcotest.to_alcotest prop_clock_batched_equiv;
    QCheck_alcotest.to_alcotest prop_clock_batched_equiv_observed;
    Alcotest.test_case "stats/counters-summaries" `Quick test_stats;
    Alcotest.test_case "prng/deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng/seed-sensitivity" `Quick test_prng_seed_sensitivity;
    QCheck_alcotest.to_alcotest prop_prng_bounds;
    QCheck_alcotest.to_alcotest prop_prng_derive_pure;
    QCheck_alcotest.to_alcotest prop_prng_derive_index_independent;
    QCheck_alcotest.to_alcotest prop_prng_derive_seed_sensitive;
    Alcotest.test_case "prng/derive-decorrelated" `Quick
      test_prng_derive_decorrelated;
    Alcotest.test_case "prng/fill" `Quick test_prng_fill;
    Alcotest.test_case "prng/split" `Quick test_prng_split;
  ]
