lib/coproc/fir_ref.ml: Array Bytes Char Printf
