lib/harness/platform.mli: Bytes Config Rvi_coproc Rvi_core Rvi_fpga Rvi_hw Rvi_mem Rvi_os Rvi_sim
