(* The multi-tenant coprocessor service.

   One physical platform — kernel, PLD, dual-port RAM — with a station
   per application kind exactly as [Rvi_harness.Jobs] builds them (own
   IMU, clock domain, VIM on a dedicated interrupt line), but driven
   through [Vim]'s sliced-execution API instead of the blocking
   [execute]: requests arrive on per-tenant submission rings, a
   pluggable policy picks the next candidate, and under the preemptive
   policy a running tenant can be parked mid-execution ([exec_preempt])
   and resumed later ([exec_resume]) with no observable difference in
   its output.

   Single-PLD discipline: only the dispatched station's clock runs, so
   simulated time advances only inside the active tenant's quantum. At
   most one parked context per station (a station's parked tenant must
   resume before fresh work of that kind), bounding preempted state to
   one full dual-port-RAM image per kind. *)

module Simtime = Rvi_sim.Simtime
module Engine = Rvi_sim.Engine
module Clock = Rvi_sim.Clock
module Kernel = Rvi_os.Kernel
module Uspace = Rvi_os.Uspace
module Accounting = Rvi_os.Accounting
module Cost_model = Rvi_os.Cost_model
module Device = Rvi_fpga.Device
module Pld = Rvi_fpga.Pld
module Vim = Rvi_core.Vim
module Imu = Rvi_core.Imu
module Mapped_object = Rvi_core.Mapped_object
module Config = Rvi_harness.Config
module Jobs = Rvi_harness.Jobs
module Workload = Rvi_harness.Workload
module Calibration = Rvi_harness.Calibration

let kinds = [| Jobs.Adpcm; Jobs.Idea; Jobs.Fir |]

let station_index = function Jobs.Adpcm -> 0 | Jobs.Idea -> 1 | Jobs.Fir -> 2

let normalize_bytes kind bytes =
  match kind with
  | Jobs.Adpcm -> max 1 bytes
  | Jobs.Idea -> (max 8 bytes + 7) / 8 * 8
  | Jobs.Fir ->
    (* >= 2*taps so at least one output sample exists, and even. *)
    let b = max 32 bytes in
    b - (b land 1)

(* The per-application recipes of [Jobs.run_job], split into a prepare
   phase (buffers, parameters, host-computed reference) so the service
   can verify, retry and fall back around the sliced execution. *)

type prepared = {
  p_params : int list;
  p_objects : Mapped_object.t list;
  p_out : Uspace.buf;
  p_expected : Bytes.t;
}

let prepare kernel kind ~seed ~bytes =
  match kind with
  | Jobs.Adpcm ->
    let input = Workload.adpcm_stream ~seed ~bytes in
    let in_buf = Uspace.of_bytes kernel input in
    let out_buf = Uspace.alloc kernel (Rvi_coproc.Adpcm_ref.decoded_size bytes) in
    {
      p_params = [ bytes ];
      p_objects =
        [
          Mapped_object.make ~id:Rvi_coproc.Adpcm_coproc.obj_in ~buf:in_buf
            ~dir:Mapped_object.In ~stream:true ();
          Mapped_object.make ~id:Rvi_coproc.Adpcm_coproc.obj_out ~buf:out_buf
            ~dir:Mapped_object.Out ~stream:true ();
        ];
      p_out = out_buf;
      p_expected = Rvi_coproc.Adpcm_ref.decode input;
    }
  | Jobs.Idea ->
    let key = Workload.idea_key ~seed in
    let input = Workload.idea_plaintext ~seed ~bytes in
    let in_buf = Uspace.of_bytes kernel input in
    let out_buf = Uspace.alloc kernel bytes in
    {
      p_params =
        Rvi_coproc.Idea_coproc.params ~n_blocks:(bytes / 8) ~decrypt:false ~key;
      p_objects =
        [
          Mapped_object.make ~id:Rvi_coproc.Idea_coproc.obj_in ~buf:in_buf
            ~dir:Mapped_object.In ~stream:true ();
          Mapped_object.make ~id:Rvi_coproc.Idea_coproc.obj_out ~buf:out_buf
            ~dir:Mapped_object.Out ~stream:true ();
        ];
      p_out = out_buf;
      p_expected = Rvi_coproc.Idea_ref.ecb ~key ~decrypt:false input;
    }
  | Jobs.Fir ->
    let coeffs = Workload.fir_coeffs ~taps:16 in
    let shift = 12 in
    let taps = Array.length coeffs in
    let input = Workload.fir_signal ~seed ~bytes in
    let coeff_bytes = Bytes.create (2 * taps) in
    Array.iteri
      (fun i c ->
        let u = c land 0xFFFF in
        Bytes.set coeff_bytes (2 * i) (Char.chr (u land 0xFF));
        Bytes.set coeff_bytes ((2 * i) + 1) (Char.chr ((u lsr 8) land 0xFF)))
      coeffs;
    let in_buf = Uspace.of_bytes kernel input in
    let coeff_buf = Uspace.of_bytes kernel coeff_bytes in
    let out_buf = Uspace.alloc kernel (Rvi_coproc.Fir_ref.output_bytes ~taps bytes) in
    {
      p_params =
        Rvi_coproc.Fir_coproc.params ~n_out:((bytes / 2) - taps + 1) ~taps ~shift;
      p_objects =
        [
          Mapped_object.make ~id:Rvi_coproc.Fir_coproc.obj_in ~buf:in_buf
            ~dir:Mapped_object.In ~stream:true ();
          Mapped_object.make ~id:Rvi_coproc.Fir_coproc.obj_coeff ~buf:coeff_buf
            ~dir:Mapped_object.In ~stream:false ();
          Mapped_object.make ~id:Rvi_coproc.Fir_coproc.obj_out ~buf:out_buf
            ~dir:Mapped_object.Out ~stream:true ();
        ];
      p_out = out_buf;
      p_expected = Rvi_coproc.Fir_ref.filter_bytes ~coeffs ~shift input;
    }

type inflight = {
  i_req : Tenant.request;
  i_enq_seq : int;
  i_prep : prepared;
  i_started_at : Simtime.t;
  mutable i_preemptions : int;
  mutable i_retries : int;
}

type station = {
  st_index : int;
  st_kind : Jobs.app_kind;
  st_bitstream : Rvi_fpga.Bitstream.t;
  st_vim : Vim.t;
  st_proc : Rvi_os.Proc.t;
  st_queue : (Tenant.request * int) Queue.t;
  mutable st_parked : (inflight * Vim.context) option;
}

type params = {
  sp_policy : Sched_policy.t;
  sp_quantum : Simtime.t;
  sp_sdram_bytes : int;
  sp_backlog_limit : int;
  sp_aging : Simtime.t;
  sp_starvation_budget : Simtime.t;
}

let default_params policy =
  {
    sp_policy = policy;
    sp_quantum = Simtime.of_us 50;
    sp_sdram_bytes = 16 * 1024 * 1024;
    sp_backlog_limit = 4096;
    sp_aging = Simtime.of_ms 50;
    sp_starvation_budget = Simtime.of_ms 2_000;
  }

type feed = {
  f_next_arrival : unit -> Simtime.t option;
      (* earliest pending open-loop arrival, for idle fast-forward *)
  f_deliver : now:Simtime.t -> unit;
      (* move every arrival due at [now] onto its tenant's ring *)
  f_notify : Tenant.completion -> now:Simtime.t -> unit;
}

let null_feed =
  {
    f_next_arrival = (fun () -> None);
    f_deliver = (fun ~now:_ -> ());
    f_notify = (fun _ ~now:_ -> ());
  }

type t = {
  cfg : Config.t;
  params : params;
  kernel : Kernel.t;
  engine : Engine.t;
  pld : Pld.t;
  stations : station array;
  tenants : Tenant.t array;
  quantum_us : float;
  reconfig_bias_us : float;
  age_limit_us : float;
  mutable feed : feed;
  mutable enq_seq : int;
  mutable backlog : int;
  mutable parked_count : int;
  mutable completions : int;
  mutable reconfigurations : int;
  mutable configuration_time : Simtime.t;
  mutable preemptions : int;
  mutable resumes : int;
  mutable force_drain : bool;
  mutable starved : int list;
  mutable inconsistencies : string list;
  mutable exhausted : bool;
}

let bitstream_of = function
  | Jobs.Adpcm -> Calibration.adpcm_bitstream
  | Jobs.Idea -> Calibration.idea_bitstream
  | Jobs.Fir -> Calibration.fir_bitstream

let make_station (cfg : Config.t) ~kernel ~dpram ~irq_line kind =
  let bitstream = bitstream_of kind in
  let port = Rvi_core.Cp_port.create () in
  let imu =
    Imu.create ~config:(Config.imu_config cfg) ~port ~dpram
      ~raise_irq:(fun () ->
        Rvi_os.Irq.raise_line (Kernel.irq kernel) ~line:irq_line)
      ()
  in
  let clock =
    Clock.create (Kernel.engine kernel)
      ~name:(Jobs.app_name kind ^ "-pld")
      ~freq_hz:bitstream.Rvi_fpga.Bitstream.imu_freq_hz
  in
  let vim =
    Vim.create ~irq_line ~kernel ~dpram ~imu
      ~ahb:cfg.Config.device.Device.ahb ~clocks:[ clock ]
      (Config.vim_config cfg)
  in
  let vport, coproc =
    match kind with
    | Jobs.Adpcm -> Rvi_coproc.Adpcm_coproc.Virtual.create port
    | Jobs.Idea -> Rvi_coproc.Idea_coproc.Virtual.create port
    | Jobs.Fir -> Rvi_coproc.Fir_coproc.Virtual.create port
  in
  Vim.set_abort_hook vim (fun () ->
      Rvi_core.Cp_port.reset port;
      Rvi_coproc.Vport.reset vport;
      coproc.Rvi_coproc.Coproc.reset ());
  let divide = bitstream.Rvi_fpga.Bitstream.coproc_divide in
  if divide = 1 then
    Clock.add clock
      (Rvi_coproc.Vport.fused_component vport ~imu
         coproc.Rvi_coproc.Coproc.component)
  else begin
    Clock.add clock (Imu.component imu);
    Clock.add clock (Rvi_coproc.Vport.sync_component vport);
    Clock.add clock ~divide coproc.Rvi_coproc.Coproc.component
  end;
  (match cfg.Config.injector with
  | Some inj -> Imu.set_injector imu (Some inj)
  | None -> ());
  let proc =
    Rvi_os.Sched.spawn (Kernel.sched kernel) ~name:(Jobs.app_name kind ^ "-svc")
  in
  {
    st_index = station_index kind;
    st_kind = kind;
    st_bitstream = bitstream;
    st_vim = vim;
    st_proc = proc;
    st_queue = Queue.create ();
    st_parked = None;
  }

let create (cfg : Config.t) (params : params) ~tenants =
  if Simtime.compare params.sp_quantum Simtime.zero <= 0 then
    invalid_arg "Service.create: quantum must be positive";
  let engine = Engine.create () in
  let cost = Cost_model.default ~cpu_freq_hz:cfg.Config.device.Device.cpu_freq_hz in
  let kernel =
    Kernel.create ~engine ~cost ~sdram_bytes:params.sp_sdram_bytes ()
  in
  (match cfg.Config.trace with
  | Some _ as tr -> Kernel.set_trace kernel tr
  | None -> ());
  let dpram = Rvi_mem.Dpram.create (Device.geometry cfg.Config.device) in
  let pld = Pld.create cfg.Config.device in
  (match cfg.Config.injector with
  | Some inj ->
    Rvi_mem.Dpram.set_injector dpram (Some inj);
    Rvi_os.Irq.set_injector (Kernel.irq kernel) (Some inj)
  | None -> ());
  let stations =
    Array.map
      (fun kind ->
        make_station cfg ~kernel ~dpram ~irq_line:(station_index kind) kind)
      kinds
  in
  ignore (Rvi_os.Sched.schedule (Kernel.sched kernel));
  let cpu_hz = float_of_int cfg.Config.device.Device.cpu_freq_hz in
  {
    cfg;
    params;
    kernel;
    engine;
    pld;
    stations;
    tenants;
    quantum_us = float_of_int (Simtime.to_ps params.sp_quantum) /. 1e6;
    reconfig_bias_us =
      float_of_int cost.Cost_model.configure_pld /. cpu_hz *. 1e6;
    age_limit_us = float_of_int (Simtime.to_ps params.sp_aging) /. 1e6;
    feed = null_feed;
    enq_seq = 0;
    backlog = 0;
    parked_count = 0;
    completions = 0;
    reconfigurations = 0;
    configuration_time = Simtime.zero;
    preemptions = 0;
    resumes = 0;
    force_drain = false;
    starved = [];
    inconsistencies = [];
    exhausted = false;
  }

let vim_of_kind t kind = t.stations.(station_index kind).st_vim
let kernel t = t.kernel
let tenants t = t.tenants

(* {2 Queues and candidates} *)

let drain t =
  Array.iter
    (fun (tn : Tenant.t) ->
      let rec go () =
        if t.backlog < t.params.sp_backlog_limit then
          match Ring.pop tn.Tenant.sq with
          | Some (req : Tenant.request) ->
            let st = t.stations.(station_index req.Tenant.kind) in
            Queue.add (req, t.enq_seq) st.st_queue;
            t.enq_seq <- t.enq_seq + 1;
            t.backlog <- t.backlog + 1;
            go ()
          | None -> ()
      in
      go ())
    t.tenants

let age_us t (req : Tenant.request) =
  float_of_int
    (Simtime.to_ps (Kernel.now t.kernel) - Simtime.to_ps req.Tenant.submitted_at)
  /. 1e6

let candidate_of t st : Sched_policy.candidate option =
  match st.st_parked with
  | Some (infl, _) ->
    let tn = t.tenants.(infl.i_req.Tenant.tenant) in
    Some
      {
        Sched_policy.c_station = st.st_index;
        c_kind = st.st_kind;
        c_tenant = tn.Tenant.id;
        c_vtime = tn.Tenant.vtime;
        c_seq = infl.i_enq_seq;
        c_age_us = age_us t infl.i_req;
        c_parked = true;
      }
  | None ->
    if t.force_drain then None
    else
      Option.map
        (fun ((req : Tenant.request), seq) ->
          let tn = t.tenants.(req.Tenant.tenant) in
          {
            Sched_policy.c_station = st.st_index;
            c_kind = st.st_kind;
            c_tenant = tn.Tenant.id;
            c_vtime = tn.Tenant.vtime;
            c_seq = seq;
            c_age_us = age_us t req;
            c_parked = false;
          })
        (Queue.peek_opt st.st_queue)

let candidates t =
  Array.to_list t.stations |> List.filter_map (candidate_of t)

let loaded_kind t =
  match Pld.loaded t.pld with
  | None -> None
  | Some bs ->
    Array.to_list t.stations
    |> List.find_opt (fun st -> st.st_bitstream = bs)
    |> Option.map (fun st -> st.st_kind)

let ensure_configured t st =
  if Pld.loaded t.pld <> Some st.st_bitstream then begin
    (match Pld.owner t.pld with
    | Some owner -> (
      match Pld.release t.pld ~pid:owner with
      | Ok () -> ()
      | Error _ -> failwith "Service: PLD release failed")
    | None -> ());
    let t_cfg = Kernel.now t.kernel in
    Kernel.charge t.kernel Accounting.Sw_os
      ~cycles:(Kernel.cost t.kernel).Cost_model.configure_pld;
    (match Pld.configure t.pld ~pid:st.st_proc.Rvi_os.Proc.pid st.st_bitstream with
    | Ok () -> ()
    | Error e -> failwith ("Service: " ^ Pld.error_to_string e));
    t.configuration_time <-
      Simtime.add t.configuration_time (Simtime.sub (Kernel.now t.kernel) t_cfg);
    t.reconfigurations <- t.reconfigurations + 1
  end

let bind_objects st (prep : prepared) =
  let vim = st.st_vim in
  Vim.unmap_all vim;
  List.iter
    (fun (o : Mapped_object.t) ->
      let r =
        match Vim.translation vim with
        | Rvi_core.Translation_mode.Paper_objects -> Vim.map_object vim o
        | Rvi_core.Translation_mode.Iommu_sva ->
          Vim.sva_note_object vim ~id:o.Mapped_object.id
            ~base:o.Mapped_object.buf.Uspace.addr
      in
      match r with
      | Ok () -> ()
      | Error m -> failwith ("Service: map failed: " ^ m))
    prep.p_objects

(* {2 Starvation and arena bookkeeping} *)

let check_starvation t =
  let now_ps = Simtime.to_ps (Kernel.now t.kernel) in
  let budget_ps = Simtime.to_ps t.params.sp_starvation_budget in
  Array.iter
    (fun (tn : Tenant.t) ->
      if
        (not tn.Tenant.starved)
        && tn.Tenant.pending > 0
        && now_ps - Simtime.to_ps tn.Tenant.last_progress > budget_ps
      then begin
        tn.Tenant.starved <- true;
        t.starved <- tn.Tenant.id :: t.starved
      end)
    t.tenants

let mark_pending_starved t =
  Array.iter
    (fun (tn : Tenant.t) ->
      if (not tn.Tenant.starved) && tn.Tenant.pending > 0 then begin
        tn.Tenant.starved <- true;
        t.starved <- tn.Tenant.id :: t.starved
      end)
    t.tenants

let maybe_recycle_arena t =
  let sdram = Kernel.sdram t.kernel in
  if t.parked_count = 0 then begin
    if Rvi_mem.Sdram.used sdram > 0 then Rvi_mem.Sdram.release_all sdram;
    t.force_drain <- false
  end
  else if Rvi_mem.Sdram.used sdram > t.params.sp_sdram_bytes / 2 then
    (* Parked contexts pin their user buffers; run them to completion
       before the bump allocator wraps into live data. *)
    t.force_drain <- true

(* {2 The dispatch machine} *)

let charge_vtime t (infl : inflight) ~slice_start =
  let tn = t.tenants.(infl.i_req.Tenant.tenant) in
  let served_us =
    float_of_int (Simtime.to_ps (Kernel.now t.kernel) - Simtime.to_ps slice_start)
    /. 1e6
  in
  tn.Tenant.vtime <- tn.Tenant.vtime +. (served_us /. float_of_int tn.Tenant.weight)

let should_preempt t (infl : inflight) =
  (not t.force_drain)
  && Sched_policy.preemptive t.params.sp_policy
  &&
  let cur = t.tenants.(infl.i_req.Tenant.tenant) in
  List.exists
    (fun (c : Sched_policy.candidate) ->
      c.Sched_policy.c_vtime +. t.quantum_us < cur.Tenant.vtime)
    (candidates t)

let rec pump_loop t st infl session =
  let slice_start = Kernel.now t.kernel in
  let until = Simtime.add slice_start t.params.sp_quantum in
  let r = Vim.exec_pump st.st_vim session ~until in
  charge_vtime t infl ~slice_start;
  match r with
  | `Done result -> finish_exec t st infl result
  | `Running ->
    t.feed.f_deliver ~now:(Kernel.now t.kernel);
    drain t;
    if should_preempt t infl then begin
      let ctx = Vim.exec_preempt st.st_vim session in
      infl.i_preemptions <- infl.i_preemptions + 1;
      t.preemptions <- t.preemptions + 1;
      st.st_parked <- Some (infl, ctx);
      t.parked_count <- t.parked_count + 1
    end
    else pump_loop t st infl session

and finish_exec t st infl result =
  let verified =
    match result with
    | Ok () ->
      Bytes.equal (Uspace.read t.kernel infl.i_prep.p_out) infl.i_prep.p_expected
    | Error _ -> false
  in
  if verified then
    record t st infl
      (if infl.i_retries = 0 then Tenant.Clean
       else Tenant.Recovered infl.i_retries)
  else
    let retryable =
      match result with
      | Error e -> Vim.classify e = Vim.Transient
      | Ok () -> true (* wrong output: environmental, a clean rerun may pass *)
    in
    if retryable && infl.i_retries < t.cfg.Config.exec_retries then begin
      infl.i_retries <- infl.i_retries + 1;
      bind_objects st infl.i_prep;
      match
        Vim.exec_start ~page_table:st.st_proc.Rvi_os.Proc.page_table st.st_vim
          ~params:infl.i_prep.p_params
      with
      | Ok session -> pump_loop t st infl session
      | Error _ -> fallback t st infl
    end
    else fallback t st infl

and fallback t st infl =
  (* Verified-by-construction software path: the host reference already
     computed the answer, deliver it and mark the request degraded. *)
  Uspace.write t.kernel infl.i_prep.p_out infl.i_prep.p_expected;
  record t st infl Tenant.Degraded

and record t st infl status =
  let now = Kernel.now t.kernel in
  let req = infl.i_req in
  let tn = t.tenants.(req.Tenant.tenant) in
  let c =
    {
      Tenant.c_rid = req.Tenant.rid;
      c_tenant = req.Tenant.tenant;
      c_kind = req.Tenant.kind;
      c_status = status;
      c_preemptions = infl.i_preemptions;
      c_retries = infl.i_retries;
      c_submitted_at = req.Tenant.submitted_at;
      c_started_at = infl.i_started_at;
      c_finished_at = now;
    }
  in
  Tenant.complete tn c;
  t.completions <- t.completions + 1;
  (match Vim.consistency st.st_vim with
  | Ok () -> ()
  | Error m ->
    t.inconsistencies <-
      Printf.sprintf "rid %d (%s, tenant %d): %s" req.Tenant.rid
        (Jobs.app_name req.Tenant.kind) req.Tenant.tenant m
      :: t.inconsistencies);
  t.feed.f_notify c ~now;
  t.feed.f_deliver ~now;
  drain t;
  maybe_recycle_arena t;
  if t.completions land 63 = 0 then check_starvation t

let dispatch t st (cand : Sched_policy.candidate) =
  ensure_configured t st;
  if cand.Sched_policy.c_parked then begin
    match st.st_parked with
    | Some (infl, ctx) ->
      st.st_parked <- None;
      t.parked_count <- t.parked_count - 1;
      t.resumes <- t.resumes + 1;
      let session = Vim.exec_resume st.st_vim ctx in
      pump_loop t st infl session
    | None -> assert false
  end
  else begin
    let req, seq = Queue.pop st.st_queue in
    t.backlog <- t.backlog - 1;
    let tn = t.tenants.(req.Tenant.tenant) in
    tn.Tenant.last_progress <- Kernel.now t.kernel;
    let prep =
      prepare t.kernel req.Tenant.kind ~seed:req.Tenant.seed
        ~bytes:req.Tenant.bytes
    in
    bind_objects st prep;
    let infl =
      {
        i_req = req;
        i_enq_seq = seq;
        i_prep = prep;
        i_started_at = Kernel.now t.kernel;
        i_preemptions = 0;
        i_retries = 0;
      }
    in
    match
      Vim.exec_start ~page_table:st.st_proc.Rvi_os.Proc.page_table st.st_vim
        ~params:prep.p_params
    with
    | Ok session -> pump_loop t st infl session
    | Error _ -> fallback t st infl
  end

(* {2 The service loop} *)

type outcome = {
  o_completed : int;
  o_makespan : Simtime.t;
  o_reconfigurations : int;
  o_configuration_time : Simtime.t;
  o_preemptions : int;
  o_resumes : int;
  o_starved : int list;
  o_inconsistencies : string list;
  o_exhausted : bool;
}

let run t feed ~expect =
  t.feed <- feed;
  let t0 = Kernel.now t.kernel in
  (* Liveness backstop. A hung execution is resumed and preempted once
     per quantum until its watchdog fires, so a single attempt can
     legitimately consume watchdog/quantum dispatch iterations; size the
     budget for every request exhausting its full retry ladder that way
     before calling the service wedged. *)
  let budget =
    let per_attempt =
      2
      + Simtime.to_ps t.cfg.Config.watchdog
        / max 1 (Simtime.to_ps t.params.sp_quantum)
    in
    1000 + (100 * max 1 expect)
    + (max 1 expect * (1 + t.cfg.Config.exec_retries) * per_attempt)
  in
  let iters = ref 0 in
  feed.f_deliver ~now:t0;
  drain t;
  let rec loop () =
    if !iters >= budget then t.exhausted <- true
    else begin
      incr iters;
      match
        Sched_policy.select t.params.sp_policy ~loaded:(loaded_kind t)
          ~reconfig_bias_us:t.reconfig_bias_us ~age_limit_us:t.age_limit_us
          (candidates t)
      with
      | Some cand ->
        dispatch t t.stations.(cand.Sched_policy.c_station) cand;
        loop ()
      | None ->
        if t.force_drain then begin
          (* every parked context drained; safe to recycle *)
          t.force_drain <- false;
          maybe_recycle_arena t;
          loop ()
        end
        else begin
          match feed.f_next_arrival () with
          | Some at ->
            let now = Kernel.now t.kernel in
            let target = if Simtime.compare at now > 0 then at else now in
            (* idle fast-forward to the next open-loop arrival — the
               engine advances its clock even with an empty queue *)
            Engine.run_until t.engine target;
            feed.f_deliver ~now:(Kernel.now t.kernel);
            drain t;
            check_starvation t;
            loop ()
          | None -> ()
        end
    end
  in
  loop ();
  check_starvation t;
  if t.exhausted then mark_pending_starved t;
  t.feed <- null_feed;
  {
    o_completed = t.completions;
    o_makespan = Simtime.sub (Kernel.now t.kernel) t0;
    o_reconfigurations = t.reconfigurations;
    o_configuration_time = t.configuration_time;
    o_preemptions = t.preemptions;
    o_resumes = t.resumes;
    o_starved = List.sort compare t.starved;
    o_inconsistencies = List.rev t.inconsistencies;
    o_exhausted = t.exhausted;
  }
