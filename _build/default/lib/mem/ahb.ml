type t = { word_bytes : int; setup_cycles : int; cycles_per_word : int }

let make ~word_bytes ~setup_cycles ~cycles_per_word =
  if word_bytes <= 0 || setup_cycles < 0 || cycles_per_word <= 0 then
    invalid_arg "Ahb.make: non-positive parameter";
  { word_bytes; setup_cycles; cycles_per_word }

(* An uncached load/store pair across the AHB to on-chip RAM costs about 20
   CPU cycles on the 133 MHz ARM922T: pipeline stalls on the uncached load
   plus bus arbitration. See Rvi_harness.Calibration for the derivation. *)
let default = { word_bytes = 4; setup_cycles = 120; cycles_per_word = 20 }

let words t ~bytes =
  if bytes < 0 then invalid_arg "Ahb.words: negative size";
  (bytes + t.word_bytes - 1) / t.word_bytes

let copy_cycles t ~bytes =
  if bytes = 0 then 0
  else t.setup_cycles + (words t ~bytes * t.cycles_per_word)
