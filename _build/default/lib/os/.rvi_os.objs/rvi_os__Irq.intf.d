lib/os/irq.mli:
