lib/core/policy.mli:
