type entry = {
  mutable valid : bool;
  mutable obj_id : int;
  mutable vpn : int;
  mutable ppn : int;
  mutable dirty : bool;
  mutable referenced : bool;
  mutable last_access : int;
}

type organization = Fully_associative | Direct_mapped | Set_associative of int

let organization_name = function
  | Fully_associative -> "cam"
  | Direct_mapped -> "direct-mapped"
  | Set_associative n -> Printf.sprintf "%d-way" n

type t = {
  slots : entry array;
  organization : organization;
  stats : Rvi_sim.Stats.t;
  c_hits : Rvi_sim.Stats.counter;
  c_misses : Rvi_sim.Stats.counter;
  mutable mru : int;
      (* slot of the last successful translation, -1 for none: the page-run
         fast path. A streaming coprocessor touches the same page for many
         consecutive words, so [translate] checks this slot with three
         compares before falling back to the organization's way scan. Any
         write to the array ([insert]/[invalidate]) drops the memo, keeping
         the fast path trivially coherent. *)
}

let fresh_entry () =
  {
    valid = false;
    obj_id = 0;
    vpn = 0;
    ppn = 0;
    dirty = false;
    referenced = false;
    last_access = 0;
  }

let create ?(organization = Fully_associative) ~entries () =
  if entries < 1 then invalid_arg "Tlb.create: need at least one entry";
  (match organization with
  | Set_associative n when n < 1 || entries mod n <> 0 ->
    invalid_arg "Tlb.create: ways must divide the entry count"
  | Set_associative _ | Fully_associative | Direct_mapped -> ());
  let stats = Rvi_sim.Stats.create () in
  {
    slots = Array.init entries (fun _ -> fresh_entry ());
    organization;
    stats;
    c_hits = Rvi_sim.Stats.counter stats "hits";
    c_misses = Rvi_sim.Stats.counter stats "misses";
    mru = -1;
  }

let entries t = Array.length t.slots
let organization t = t.organization

(* The index hash a hardware TLB would compute from the tag bits. *)
let hash ~obj_id ~vpn = (vpn lxor (obj_id * 7)) land max_int

let way_slots t ~obj_id ~vpn =
  let n = Array.length t.slots in
  match t.organization with
  | Fully_associative -> List.init n (fun i -> i)
  | Direct_mapped -> [ hash ~obj_id ~vpn mod n ]
  | Set_associative ways ->
    let sets = n / ways in
    let set = hash ~obj_id ~vpn mod sets in
    List.init ways (fun w -> (set * ways) + w)

let free_way_slot t ~obj_id ~vpn =
  List.find_opt
    (fun slot -> not t.slots.(slot).valid)
    (way_slots t ~obj_id ~vpn)

type lookup = Hit of int | Miss

(* Per-access path: scan the candidate ways without materialising the
   [way_slots] list (this runs on every coprocessor memory access). *)
let lookup t ~obj_id ~vpn =
  let slots = t.slots in
  let matches i =
    let e = slots.(i) in
    e.valid && e.obj_id = obj_id && e.vpn = vpn
  in
  let rec scan i stop = if i >= stop then Miss else if matches i then Hit i else scan (i + 1) stop in
  match t.organization with
  | Fully_associative -> scan 0 (Array.length slots)
  | Direct_mapped ->
    let i = hash ~obj_id ~vpn mod Array.length slots in
    if matches i then Hit i else Miss
  | Set_associative ways ->
    let sets = Array.length slots / ways in
    let set = hash ~obj_id ~vpn mod sets in
    scan (set * ways) ((set * ways) + ways)

let[@inline] hit t e ~stamp ~wr =
  if wr then e.dirty <- true;
  e.referenced <- true;
  e.last_access <- stamp;
  Rvi_sim.Stats.tick t.c_hits;
  Some e.ppn

let translate t ~obj_id ~vpn ~stamp ~wr =
  (* Page-run fast path: re-check the memoised slot before scanning. Sound
     because a set memo implies no duplicate mapping exists ([insert] is
     the only way to create one and it drops the memo), so the scan would
     find this same slot; the entry-side effects and stat ticks below are
     the ones the scan path performs, keeping reports bit-identical. *)
  let m = t.mru in
  if m >= 0 then begin
    let e = Array.unsafe_get t.slots m in
    if e.valid && e.obj_id = obj_id && e.vpn = vpn then hit t e ~stamp ~wr
    else
      match lookup t ~obj_id ~vpn with
      | Miss ->
        Rvi_sim.Stats.tick t.c_misses;
        None
      | Hit i ->
        t.mru <- i;
        hit t t.slots.(i) ~stamp ~wr
  end
  else
    match lookup t ~obj_id ~vpn with
    | Miss ->
      Rvi_sim.Stats.tick t.c_misses;
      None
    | Hit i ->
      t.mru <- i;
      hit t t.slots.(i) ~stamp ~wr

let check_slot t slot op =
  if slot < 0 || slot >= Array.length t.slots then
    invalid_arg (Printf.sprintf "Tlb.%s: slot %d out of range" op slot)

let touch t ~slot ~stamp ~wr =
  check_slot t slot "touch";
  let e = t.slots.(slot) in
  if wr then e.dirty <- true;
  e.referenced <- true;
  e.last_access <- stamp

let mark_dirty t ~slot =
  check_slot t slot "mark_dirty";
  t.slots.(slot).dirty <- true

let insert t ~slot ~obj_id ~vpn ~ppn ~stamp =
  check_slot t slot "insert";
  t.mru <- -1;
  let e = t.slots.(slot) in
  e.valid <- true;
  e.obj_id <- obj_id;
  e.vpn <- vpn;
  e.ppn <- ppn;
  e.dirty <- false;
  e.referenced <- false;
  (* Stamp the refill with the current cycle: a fresh entry is the most
     recently used, not the least. Stamping 0 here made every LRU scan
     re-victimise the page whose fault was just serviced. *)
  e.last_access <- stamp;
  Rvi_sim.Stats.incr t.stats "refills"

let free_slot t =
  let rec go i =
    if i >= Array.length t.slots then None
    else if not t.slots.(i).valid then Some i
    else go (i + 1)
  in
  go 0

let slot_of_ppn t ~ppn =
  let rec go i =
    if i >= Array.length t.slots then None
    else if t.slots.(i).valid && t.slots.(i).ppn = ppn then Some i
    else go (i + 1)
  in
  go 0

let invalidate t ~slot =
  check_slot t slot "invalidate";
  t.mru <- -1;
  if t.slots.(slot).valid then begin
    t.slots.(slot).valid <- false;
    Rvi_sim.Stats.incr t.stats "invalidations"
  end

let invalidate_all t =
  Array.iteri (fun slot _ -> invalidate t ~slot) t.slots

let get t ~slot =
  check_slot t slot "get";
  t.slots.(slot)

let clear_referenced t ~slot =
  check_slot t slot "clear_referenced";
  t.slots.(slot).referenced <- false

let valid_count t =
  Array.fold_left (fun acc e -> if e.valid then acc + 1 else acc) 0 t.slots

let stats t = t.stats

(* Context save/restore for tenant preemption: the image is a plain copy
   of every slot, so restoring it reproduces the translation state the
   CAM held at save time. Like [reset], neither direction ticks a stat
   (swapping contexts is not software flushing); [restore] drops the MRU
   memo because the memoised slot belongs to the outgoing context. *)

type image = entry array

let save t = Array.map (fun e -> { e with valid = e.valid }) t.slots

let restore t (img : image) =
  if Array.length img <> Array.length t.slots then
    invalid_arg "Tlb.restore: image from a different geometry";
  Array.iteri
    (fun i s ->
      let e = t.slots.(i) in
      e.valid <- s.valid;
      e.obj_id <- s.obj_id;
      e.vpn <- s.vpn;
      e.ppn <- s.ppn;
      e.dirty <- s.dirty;
      e.referenced <- s.referenced;
      e.last_access <- s.last_access)
    img;
  t.mru <- -1

(* Platform pooling: scrub every slot back to the power-on image (no
   "invalidations" ticks — this is a reset, not software flushing) and zero
   the counters in place so the pre-resolved hit/miss handles stay live. *)
let reset t =
  Array.iter
    (fun e ->
      e.valid <- false;
      e.obj_id <- 0;
      e.vpn <- 0;
      e.ppn <- 0;
      e.dirty <- false;
      e.referenced <- false;
      e.last_access <- 0)
    t.slots;
  t.mru <- -1;
  Rvi_sim.Stats.soft_reset t.stats
