type acc = {
  mutable count : int;
  mutable min : float;
  mutable max : float;
  mutable sum : float;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  summaries : (string, acc) Hashtbl.t;
}

type summary = { count : int; min : float; max : float; mean : float }

let create () = { counters = Hashtbl.create 16; summaries = Hashtbl.create 16 }

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add t.counters name (ref by)

let get t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let observe t name x =
  match Hashtbl.find_opt t.summaries name with
  | Some a ->
    a.count <- a.count + 1;
    a.min <- Float.min a.min x;
    a.max <- Float.max a.max x;
    a.sum <- a.sum +. x
  | None -> Hashtbl.add t.summaries name { count = 1; min = x; max = x; sum = x }

let summary t name =
  match Hashtbl.find_opt t.summaries name with
  | None -> None
  | Some a ->
    Some { count = a.count; min = a.min; max = a.max; mean = a.sum /. float_of_int a.count }

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.summaries

let pp ppf t =
  let items = counters t in
  Format.fprintf ppf "@[<v>";
  List.iter (fun (k, v) -> Format.fprintf ppf "%s = %d@," k v) items;
  Format.fprintf ppf "@]"
