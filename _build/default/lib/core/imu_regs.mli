(** The IMU's processor-visible registers (paper, Figure 4).

    Three registers sit on the bus next to the TLB:

    - [AR] — address register: the virtual address (object identifier and
      byte offset) of the most recent coprocessor access. The OS examines
      it to learn which access faulted.
    - [SR] — status register: fault / finished / busy / parameters-consumed
      flags.
    - [CR] — control register: start / resume / interrupt-enable / reset
      command bits (write-only strobes except the enable).

    Encodings are fixed so that tests can exercise the exact bit-level
    protocol a driver would use. *)

(** {1 AR} *)

val ar_encode : obj_id:int -> addr:int -> int
(** [obj_id] in bits 31..24, byte offset in bits 23..0. *)

val ar_obj : int -> int
val ar_addr : int -> int

(** {1 SR} *)

val sr_fault : int (* bit 0 *)
val sr_fin : int (* bit 1 *)
val sr_busy : int (* bit 2 *)
val sr_params_done : int (* bit 3 *)

val sr_encode :
  fault:bool -> fin:bool -> busy:bool -> params_done:bool -> int

(** {1 CR} *)

val cr_start : int (* bit 0 *)
val cr_resume : int (* bit 1 *)
val cr_irq_enable : int (* bit 2 *)
val cr_reset : int (* bit 3 *)

val test : int -> int -> bool
(** [test word mask] is true when all bits of [mask] are set in [word]. *)
