test/test_fpga.ml: Alcotest List Rvi_fpga Rvi_mem String
