type t = {
  engine : Rvi_sim.Engine.t;
  cost : Cost_model.t;
  acct : Accounting.t;
  irq : Irq.t;
  sched : Sched.t;
  sdram : Rvi_mem.Sdram.t;
  syscalls : Syscall.t;
  stats : Rvi_sim.Stats.t;
  mutable trace : Rvi_obs.Trace.t option;
}

let create ~engine ~cost ?(sdram_bytes = 64 * 1024 * 1024) () =
  let irq = Irq.create () in
  (* An interrupt turning pending must end any inline-batched clock run so
     the execution loop re-checks its wait condition at the raising edge. *)
  Irq.set_wake irq (Some (fun () -> Rvi_sim.Engine.request_break engine));
  {
    engine;
    cost;
    acct = Accounting.create ();
    irq;
    sched = Sched.create ();
    sdram = Rvi_mem.Sdram.create ~size:sdram_bytes;
    syscalls = Syscall.create ();
    stats = Rvi_sim.Stats.create ();
    trace = None;
  }

let engine t = t.engine
let cost t = t.cost
let accounting t = t.acct
let irq t = t.irq
let sched t = t.sched
let sdram t = t.sdram
let syscalls t = t.syscalls
let stats t = t.stats
let now t = Rvi_sim.Engine.now t.engine
let trace t = t.trace

let set_trace t tr =
  t.trace <- tr;
  (* Interrupt arrivals are hardware events (the IMU raising its line);
     timestamp them as they happen, not when the CPU gets around to the
     handler. *)
  Irq.set_observer t.irq
    (match tr with
    | None -> None
    | Some tr ->
      Some
        (fun ~line ~name ->
          Rvi_obs.Trace.emit tr ~at:(now t) (Rvi_obs.Trace.Irq_raise { line; name })))

(* Platform pooling: scrub all run state — accounting ledger, IRQ pending
   lines, scheduler bookkeeping, the SDRAM arena (zeroed back to the fresh
   image), syscall/interrupt counters and the trace binding. The syscall
   table and IRQ handler registrations are structure and stay. *)
let reset t =
  Accounting.reset t.acct;
  Irq.reset t.irq;
  Sched.reset t.sched;
  Rvi_mem.Sdram.reset t.sdram;
  Rvi_sim.Stats.reset t.stats;
  set_trace t None

let charge_time t cat d =
  Accounting.add t.acct cat d;
  Rvi_sim.Engine.advance t.engine d

let charge t cat ~cycles =
  charge_time t cat (Cost_model.time_of_cycles t.cost cycles)

let syscall t ~number args =
  Rvi_sim.Stats.incr t.stats "syscalls";
  charge t Accounting.Sw_os ~cycles:t.cost.Cost_model.syscall_entry;
  let r = Syscall.dispatch t.syscalls ~number args in
  charge t Accounting.Sw_os ~cycles:t.cost.Cost_model.syscall_exit;
  r

let service_interrupts t =
  let serviced = ref 0 in
  while Irq.any_pending t.irq do
    let t0 = now t in
    charge t Accounting.Sw_imu ~cycles:t.cost.Cost_model.irq_entry;
    if Irq.dispatch_one t.irq then incr serviced;
    charge t Accounting.Sw_imu ~cycles:t.cost.Cost_model.irq_exit;
    match t.trace with
    | Some tr ->
      Rvi_obs.Trace.emit tr ~at:t0
        ~dur:(Rvi_sim.Simtime.sub (now t) t0)
        Rvi_obs.Trace.Irq_service
    | None -> ()
  done;
  if !serviced > 0 then Rvi_sim.Stats.incr t.stats ~by:!serviced "interrupts";
  !serviced
