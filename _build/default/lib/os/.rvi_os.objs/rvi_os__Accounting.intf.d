lib/os/accounting.mli: Format Rvi_sim
