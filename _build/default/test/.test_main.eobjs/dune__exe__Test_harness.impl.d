test/test_harness.ml: Alcotest Array Bytes Char Float Format Gen List Printf QCheck QCheck_alcotest Rvi_coproc Rvi_core Rvi_fpga Rvi_harness Rvi_mem Rvi_os Rvi_sim String
