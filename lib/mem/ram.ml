type t = { data : Bytes.t }

let create ~size =
  if size <= 0 then invalid_arg "Ram.create: non-positive size";
  { data = Bytes.make size '\000' }

let size t = Bytes.length t.data

let check t addr bytes op =
  if addr < 0 || addr + bytes > Bytes.length t.data then
    invalid_arg
      (Printf.sprintf "Ram.%s: address %#x (+%d) out of [0, %#x)" op addr bytes
         (Bytes.length t.data))

let read8 t addr =
  check t addr 1 "read8";
  Char.code (Bytes.unsafe_get t.data addr)

let write8 t addr v =
  check t addr 1 "write8";
  Bytes.unsafe_set t.data addr (Char.unsafe_chr (v land 0xFF))

(* The 16/32-bit accessors use the stdlib's single-load primitives; the
   bounds check stays explicit so error messages keep naming the device
   operation. Values are unsigned little-endian words, same range as the
   historical byte-at-a-time loops ([0, 2^width)). *)

let read16 t addr =
  check t addr 2 "read16";
  Bytes.get_uint16_le t.data addr

let write16 t addr v =
  check t addr 2 "write16";
  Bytes.set_uint16_le t.data addr (v land 0xFFFF)

let read32 t addr =
  check t addr 4 "read32";
  Int32.to_int (Bytes.get_int32_le t.data addr) land 0xFFFFFFFF

let write32 t addr v =
  check t addr 4 "write32";
  Bytes.set_int32_le t.data addr (Int32.of_int v)

let read t ~width addr =
  match width with
  | 8 -> read8 t addr
  | 16 -> read16 t addr
  | 32 -> read32 t addr
  | _ -> invalid_arg "Ram.read: width must be 8, 16 or 32"

let write t ~width addr v =
  match width with
  | 8 -> write8 t addr v
  | 16 -> write16 t addr v
  | 32 -> write32 t addr v
  | _ -> invalid_arg "Ram.write: width must be 8, 16 or 32"

let blit_from_bytes src ~src:spos t ~dst ~len =
  check t dst len "blit_from_bytes";
  Bytes.blit src spos t.data dst len

let blit_to_bytes t ~src dst ~dst:dpos ~len =
  check t src len "blit_to_bytes";
  Bytes.blit t.data src dst dpos len

let blit src ~src:spos dst ~dst:dpos ~len =
  check src spos len "blit(src)";
  check dst dpos len "blit(dst)";
  Bytes.blit src.data spos dst.data dpos len

let fill t ~pos ~len c =
  check t pos len "fill";
  Bytes.fill t.data pos len c

let dump t ~pos ~len =
  check t pos len "dump";
  Bytes.sub t.data pos len
