lib/harness/report.mli: Format Rvi_sim
