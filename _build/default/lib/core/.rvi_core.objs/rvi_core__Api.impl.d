lib/core/api.ml: Array Hashtbl Mapped_object Printf Rvi_fpga Rvi_os Vim
