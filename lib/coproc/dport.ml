module Cp_port = Rvi_core.Cp_port

exception Out_of_region of { region : int; addr : int }

type request = {
  region : int;
  addr : int;
  wr : bool;
  width : Cp_port.width;
  data : int;
}

type t = {
  dpram : Rvi_mem.Dpram.t;
  regions : (int, int * int) Hashtbl.t; (* region -> base, size *)
  mutable params : int array;
  mutable pending : request option; (* issued this cycle *)
  mutable inflight : request option; (* in the RAM, completes next sample *)
  mutable ready_now : bool;
  mutable data_now : int;
  mutable start_req : bool;
  mutable start_now : bool;
  mutable fin : bool;
  mutable accesses : int;
}

let create ~dpram =
  {
    dpram;
    regions = Hashtbl.create 8;
    params = [||];
    pending = None;
    inflight = None;
    ready_now = false;
    data_now = 0;
    start_req = false;
    start_now = false;
    fin = false;
    accesses = 0;
  }

let set_region t ~region ~base ~size =
  if base < 0 || size < 0 || base + size > Rvi_mem.Dpram.size t.dpram then
    invalid_arg "Dport.set_region: window outside the dual-port RAM";
  Hashtbl.replace t.regions region (base, size)

let set_params t params = t.params <- Array.of_list params
let assert_start t = t.start_req <- true
let finished t = t.fin

let perform t r =
  if r.region = Cp_port.param_obj then begin
    let index = r.addr / 4 in
    if r.wr || index < 0 || index >= Array.length t.params then
      raise (Out_of_region { region = r.region; addr = r.addr });
    t.data_now <- t.params.(index)
  end
  else begin
    match Hashtbl.find_opt t.regions r.region with
    | None -> raise (Out_of_region { region = r.region; addr = r.addr })
    | Some (base, size) ->
      let bytes = Cp_port.width_bytes r.width in
      if r.addr < 0 || r.addr + bytes > size then
        raise (Out_of_region { region = r.region; addr = r.addr });
      let width = Cp_port.width_bits r.width in
      if r.wr then Rvi_mem.Dpram.write t.dpram ~width (base + r.addr) r.data
      else t.data_now <- Rvi_mem.Dpram.read t.dpram ~width (base + r.addr)
  end

let sample t =
  t.start_now <- t.start_req;
  if t.start_now then begin
    t.start_req <- false;
    t.fin <- false
  end;
  t.ready_now <- false;
  match t.inflight with
  | Some r ->
    perform t r;
    t.inflight <- None;
    t.ready_now <- true
  | None -> ()

let start_seen t = t.start_now
let busy t = t.pending <> None || t.inflight <> None
let ready t = t.ready_now
let data t = t.data_now

(* Unlike the virtual port, a direct port completes requests on the owning
   coprocessor's own ticks, so any queued or in-flight request (or a pulse
   still high) makes the next tick do real work. *)
let quiescent t =
  (not t.start_req) && (not t.start_now) && t.pending = None
  && t.inflight = None && not t.ready_now

let issue t ~region ~addr ~wr ~width ~data =
  assert (not (busy t));
  t.pending <- Some { region; addr; wr; width; data };
  t.accesses <- t.accesses + 1

let finish t = t.fin <- true

let commit t =
  match t.pending with
  | Some r ->
    t.inflight <- Some r;
    t.pending <- None
  | None -> ()

let reset t =
  t.pending <- None;
  t.inflight <- None;
  t.ready_now <- false;
  t.data_now <- 0;
  t.start_req <- false;
  t.start_now <- false;
  t.fin <- false

let accesses t = t.accesses
