(** Driver for the "typical coprocessor" baseline (paper, Figure 3 middle
    listing; the "normal coprocessor" of Figure 9).

    This is everything the paper's virtualisation layer exists to remove:
    the programmer hardwires each array to a physical dual-port window,
    copies the data in, starts the machine, and copies results out. If the
    working set does not fit the memory the plain driver simply cannot run
    the job — the "exceeds available memory" bars of Figure 9 — unless the
    programmer also writes the chunking loop, provided here as
    {!run_chunked} for the corresponding ablation. *)

type region_spec = {
  region : int;
  buf : Rvi_os.Uspace.buf;
  dir : Rvi_core.Mapped_object.direction;
}

type error =
  | Exceeds_memory of { required : int; available : int }
  | Access_error of { region : int; addr : int }
  | Hardware_stall

val error_to_string : error -> string

val run :
  kernel:Rvi_os.Kernel.t ->
  dpram:Rvi_mem.Dpram.t ->
  ahb:Rvi_mem.Ahb.t ->
  clocks:Rvi_sim.Clock.t list ->
  dport:Dport.t ->
  coproc:Coproc.t ->
  regions:region_spec list ->
  params:int list ->
  ?watchdog:Rvi_sim.Simtime.t ->
  unit ->
  (unit, error) result
(** One shot: place the regions, copy inputs in, execute, copy outputs
    back. Data movement is charged to [Sw_dp] (a single transfer per
    direction — the hand-written memcpy), hardware time to [Hw]. *)

val run_chunked :
  kernel:Rvi_os.Kernel.t ->
  dpram:Rvi_mem.Dpram.t ->
  ahb:Rvi_mem.Ahb.t ->
  clocks:Rvi_sim.Clock.t list ->
  dport:Dport.t ->
  coproc:Coproc.t ->
  chunks:(region_spec list * int list) list ->
  ?watchdog:Rvi_sim.Simtime.t ->
  unit ->
  (unit, error) result
(** The Figure 3 while-loop: the caller has partitioned the job into
    chunks, each a set of buffer slices plus per-chunk parameters; every
    chunk must fit the memory. Stops at the first failing chunk. *)
