(** The FIR coprocessor.

    A direct-form machine with a coefficient register file (filled once
    from object 1 at start-up), a sliding sample window, and a serial
    multiply-accumulate unit — one tap per cycle, the classic minimal-area
    FIR for a small PLD. Runs at 40 MHz with the IMU, like the paper's
    adpcmdecode core.

    Objects: 0 = input samples (16-bit), 1 = coefficients (16-bit),
    2 = output samples. Scalar parameters: output count, tap count,
    accumulator shift. *)

val obj_in : int
val obj_coeff : int
val obj_out : int

val mac_cycles_per_tap : int
(** Serial MAC latency per tap (1 — one multiplier, fully pipelined). *)

val params : n_out:int -> taps:int -> shift:int -> int list

module Make (P : Mem_port.S) : sig
  val create : P.t -> Coproc.t
end

module Virtual : sig
  val create : Rvi_core.Cp_port.t -> Vport.t * Coproc.t
end
