lib/fpga/device.ml: Format List Rvi_mem String
