lib/coproc/fir_coproc.ml: Array Coproc Fir_ref Mem_port Printf Rvi_core Rvi_hw Rvi_sim Vport
