(** DMA engine between SDRAM and the dual-port RAM.

    The Excalibur stripe contains a DMA controller the paper's simple VIM
    does not use — its announced single-transfer rework is the natural
    place to use it. Programming the channel costs CPU cycles; the burst
    itself then streams at bus rate without the per-word uncached-access
    stalls that make processor copies so expensive (one word per bus cycle
    instead of ~20 CPU cycles per word). *)

type t = {
  word_bytes : int;
  setup_cycles : int;  (** CPU cycles to program the channel descriptor *)
  bus_hz : int;  (** burst clock *)
  bus_cycles_per_word : int;
}

val default : t
(** 32-bit words, 300-cycle setup, 66 MHz AHB bursting one word/cycle. *)

val make :
  word_bytes:int -> setup_cycles:int -> bus_hz:int -> bus_cycles_per_word:int -> t

val setup_cycles : t -> int

val transfer_time : t -> bytes:int -> Rvi_sim.Simtime.t
(** Burst duration for a transfer of [bytes]; zero bytes take no time. *)

val transfer : ?notify:(bytes:int -> Rvi_sim.Simtime.t -> unit) -> t -> bytes:int -> Rvi_sim.Simtime.t
(** Like {!transfer_time}, but reports each non-empty burst to [notify]
    first — the hook the observability layer uses to put DMA transfers on
    the event trace. *)
