module Prng = Rvi_sim.Prng
module Spec = Rvi_inject.Spec
module Fault = Rvi_inject.Fault
module Config = Rvi_harness.Config

type t = {
  seed : int;
  apps : string list;
  input_kb : int;
  device : string;
  translation : Rvi_core.Translation_mode.t;
  imu : Config.imu_kind;
  tlb_entries : int option;
  tlb_org : Rvi_core.Tlb.organization;
  policy : string;
  prefetch_depth : int;
  transfer : Rvi_core.Vim.transfer_mode;
  rates : Spec.t;
  events : (Fault.kind * int) list;
  watchdog_us : int;
  exec_retries : int;
  max_retries : int;
  tenants : int;
  slo_p99_ms : int;
}

let default =
  {
    seed = 42;
    apps = [ "adpcm" ];
    input_kb = 4;
    device = "epxa1";
    translation = Rvi_core.Translation_mode.Paper_objects;
    imu = Config.Four_cycle;
    tlb_entries = None;
    tlb_org = Rvi_core.Tlb.Fully_associative;
    policy = "fifo";
    prefetch_depth = 0;
    transfer = Rvi_core.Vim.Double;
    rates = [];
    events = [];
    watchdog_us = 10_000;
    exec_retries = 2;
    max_retries = 3;
    tenants = 1;
    slo_p99_ms = 0;
  }

(* The seeded adversarial scenario the shrinker acceptance test starts
   from: a hung coprocessor plus a lost completion interrupt with the
   watchdog disabled. Nothing can reclaim the interface, so the run
   violates the progress invariant — and the hang alone suffices, which
   is exactly what shrinking must discover. *)
let known_bad =
  {
    default with
    apps = [ "adpcm"; "idea" ];
    events = [ (Fault.Coproc_hang, 1); (Fault.Irq_lost, 1) ];
    rates = Spec.all ~factor:0.5 ();
    watchdog_us = 0;
  }

(* {1 Serialisation}

   One scenario per line, [key=value] pairs joined by [;] in a fixed
   field order, so a corpus file diffs cleanly and a line round-trips
   bit-exactly. Empty lists print as ["-"]. *)

let imu_tag = function Config.Four_cycle -> "4-cycle" | Config.Pipelined -> "pipelined"

let imu_of_tag = function
  | "4-cycle" -> Some Config.Four_cycle
  | "pipelined" -> Some Config.Pipelined
  | _ -> None

let org_tag = function
  | Rvi_core.Tlb.Fully_associative -> "fa"
  | Rvi_core.Tlb.Direct_mapped -> "dm"
  | Rvi_core.Tlb.Set_associative n -> Printf.sprintf "sa%d" n

let org_of_tag s =
  match s with
  | "fa" -> Some Rvi_core.Tlb.Fully_associative
  | "dm" -> Some Rvi_core.Tlb.Direct_mapped
  | _ ->
    if String.length s > 2 && String.sub s 0 2 = "sa" then
      match int_of_string_opt (String.sub s 2 (String.length s - 2)) with
      | Some n when n > 0 -> Some (Rvi_core.Tlb.Set_associative n)
      | _ -> None
    else None

let transfer_tag = function
  | Rvi_core.Vim.Single -> "single"
  | Rvi_core.Vim.Double -> "double"

let transfer_of_tag = function
  | "single" -> Some Rvi_core.Vim.Single
  | "double" -> Some Rvi_core.Vim.Double
  | _ -> None

let events_string = function
  | [] -> "-"
  | evs ->
    String.concat "+"
      (List.map (fun (k, n) -> Printf.sprintf "%s@%d" (Fault.name k) n) evs)

let events_of_string s =
  if s = "-" then Ok []
  else
    let parse_one item =
      match String.index_opt item '@' with
      | None -> Error (Printf.sprintf "event %S: expected kind@ordinal" item)
      | Some i -> (
        let kname = String.sub item 0 i in
        let ord = String.sub item (i + 1) (String.length item - i - 1) in
        match (Fault.of_name kname, int_of_string_opt ord) with
        | Some k, Some n when n > 0 -> Ok (k, n)
        | None, _ -> Error (Printf.sprintf "event %S: unknown fault kind" item)
        | _, _ -> Error (Printf.sprintf "event %S: bad ordinal" item))
    in
    List.fold_left
      (fun acc item ->
        match (acc, parse_one item) with
        | Error e, _ | _, Error e -> Error e
        | Ok l, Ok ev -> Ok (l @ [ ev ]))
      (Ok [])
      (String.split_on_char '+' s)

let to_string t =
  String.concat ";"
    [
      Printf.sprintf "seed=%d" t.seed;
      Printf.sprintf "apps=%s" (String.concat "+" t.apps);
      Printf.sprintf "kb=%d" t.input_kb;
      Printf.sprintf "dev=%s" t.device;
      Printf.sprintf "mode=%s" (Rvi_core.Translation_mode.name t.translation);
      Printf.sprintf "imu=%s" (imu_tag t.imu);
      Printf.sprintf "tlb=%s"
        (match t.tlb_entries with None -> "per-page" | Some n -> string_of_int n);
      Printf.sprintf "org=%s" (org_tag t.tlb_org);
      Printf.sprintf "policy=%s" t.policy;
      Printf.sprintf "pf=%d" t.prefetch_depth;
      Printf.sprintf "xfer=%s" (transfer_tag t.transfer);
      Printf.sprintf "rates=%s"
        (match t.rates with [] -> "-" | r -> Spec.to_string r);
      Printf.sprintf "events=%s" (events_string t.events);
      Printf.sprintf "wd_us=%d" t.watchdog_us;
      Printf.sprintf "retries=%d" t.exec_retries;
      Printf.sprintf "vim_retries=%d" t.max_retries;
      Printf.sprintf "tenants=%d" t.tenants;
      Printf.sprintf "slo_ms=%d" t.slo_p99_ms;
    ]

let of_string line =
  let ( let* ) r f = match r with Error e -> Error e | Ok v -> f v in
  let int_field k v =
    match int_of_string_opt v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "%s: expected an integer, got %S" k v)
  in
  let apply sc (k, v) =
    match k with
    | "seed" ->
      let* n = int_field k v in
      Ok { sc with seed = n }
    | "apps" ->
      let apps = String.split_on_char '+' v in
      if
        apps <> []
        && List.for_all (fun a -> List.mem a Rvi_harness.Faults.app_names) apps
      then Ok { sc with apps }
      else Error (Printf.sprintf "apps: unknown application in %S" v)
    | "kb" ->
      let* n = int_field k v in
      if n >= 1 then Ok { sc with input_kb = n }
      else Error "kb: must be >= 1"
    | "dev" -> (
      match Rvi_fpga.Device.by_name v with
      | Some _ -> Ok { sc with device = v }
      | None -> Error (Printf.sprintf "dev: unknown device %S" v))
    | "mode" -> (
      match Rvi_core.Translation_mode.of_name v with
      | Some m -> Ok { sc with translation = m }
      | None -> Error (Printf.sprintf "mode: unknown translation mode %S" v))
    | "imu" -> (
      match imu_of_tag v with
      | Some i -> Ok { sc with imu = i }
      | None -> Error (Printf.sprintf "imu: unknown IMU kind %S" v))
    | "tlb" ->
      if v = "per-page" then Ok { sc with tlb_entries = None }
      else
        let* n = int_field k v in
        if n >= 1 then Ok { sc with tlb_entries = Some n }
        else Error "tlb: must be >= 1 or per-page"
    | "org" -> (
      match org_of_tag v with
      | Some o -> Ok { sc with tlb_org = o }
      | None -> Error (Printf.sprintf "org: unknown TLB organization %S" v))
    | "policy" ->
      if List.mem v Rvi_core.Policy.all_names then Ok { sc with policy = v }
      else Error (Printf.sprintf "policy: unknown policy %S" v)
    | "pf" ->
      let* n = int_field k v in
      if n >= 0 then Ok { sc with prefetch_depth = n }
      else Error "pf: must be >= 0"
    | "xfer" -> (
      match transfer_of_tag v with
      | Some x -> Ok { sc with transfer = x }
      | None -> Error (Printf.sprintf "xfer: unknown transfer mode %S" v))
    | "rates" ->
      if v = "-" then Ok { sc with rates = [] }
      else
        let* r = Spec.parse v in
        Ok { sc with rates = r }
    | "events" ->
      let* evs = events_of_string v in
      Ok { sc with events = evs }
    | "wd_us" ->
      let* n = int_field k v in
      if n >= 0 then Ok { sc with watchdog_us = n }
      else Error "wd_us: must be >= 0"
    | "retries" ->
      let* n = int_field k v in
      if n >= 0 then Ok { sc with exec_retries = n }
      else Error "retries: must be >= 0"
    | "vim_retries" ->
      let* n = int_field k v in
      if n >= 0 then Ok { sc with max_retries = n }
      else Error "vim_retries: must be >= 0"
    | "tenants" ->
      let* n = int_field k v in
      if n >= 1 then Ok { sc with tenants = n }
      else Error "tenants: must be >= 1"
    | "slo_ms" ->
      let* n = int_field k v in
      if n >= 0 then Ok { sc with slo_p99_ms = n }
      else Error "slo_ms: must be >= 0"
    | _ -> Error (Printf.sprintf "unknown scenario field %S" k)
  in
  let fields = String.split_on_char ';' (String.trim line) in
  List.fold_left
    (fun acc field ->
      let* sc = acc in
      match String.index_opt field '=' with
      | None -> Error (Printf.sprintf "expected key=value, got %S" field)
      | Some i ->
        apply sc
          ( String.sub field 0 i,
            String.sub field (i + 1) (String.length field - i - 1) ))
    (Ok default) fields

(* {1 Generation}

   Every dimension is drawn from [Prng.derive ~seed ~index], so scenario
   [i] of a campaign is a function of the campaign seed and [i] alone —
   independent of sharding, host, or how many scenarios precede it.

   Generated scenarios stay within the envelope the recovery machinery is
   specified to survive: watchdogs are sane (1-50 ms), retry budgets are
   nonzero, and fault pressure is bounded. Anything the checker flags in
   this envelope is a real robustness bug, not a configuration the system
   is entitled to fail on. *)

let pick g xs = List.nth xs (Prng.int g (List.length xs))

let generate ~seed ~index =
  let g = Prng.derive ~seed ~index in
  let napps = 1 + Prng.int g 2 in
  let apps =
    (* Rotate a deterministic starting point through the app list. *)
    let all = Rvi_harness.Faults.app_names in
    let start = Prng.int g (List.length all) in
    List.init napps (fun i ->
        List.nth all ((start + i) mod List.length all))
  in
  let input_kb = 1 + Prng.int g 8 in
  let device = pick g [ "epxa1"; "epxa1"; "epxa4"; "xc2vp7" ] in
  let translation =
    pick g
      [
        Rvi_core.Translation_mode.Paper_objects;
        Rvi_core.Translation_mode.Iommu_sva;
      ]
  in
  let imu = pick g [ Config.Four_cycle; Config.Pipelined ] in
  let tlb_entries = pick g [ None; None; Some 4; Some 8 ] in
  let tlb_org =
    pick g
      [
        Rvi_core.Tlb.Fully_associative;
        Rvi_core.Tlb.Fully_associative;
        Rvi_core.Tlb.Direct_mapped;
        Rvi_core.Tlb.Set_associative 2;
      ]
  in
  let policy = pick g [ "fifo"; "lru"; "random"; "second-chance" ] in
  let prefetch_depth = Prng.int g 3 in
  let transfer = pick g [ Rvi_core.Vim.Single; Rvi_core.Vim.Double ] in
  let rates =
    match Prng.int g 4 with
    | 0 -> []
    | 1 -> Spec.all ~factor:0.5 ()
    | 2 -> Spec.all ()
    | _ ->
      (* Pressure on a single kind, at several times its default rate. *)
      let kind = pick g Fault.all in
      [ { Spec.kind; rate = Stdlib.min 1.0 (4.0 *. Spec.default_rate kind) } ]
  in
  let events =
    List.init (Prng.int g 3) (fun _ ->
        (pick g Fault.all, 1 + Prng.int g 3))
    (* Distinct ordinals per kind: set_events rejects duplicates by
       deduplicating, so collapse here for a stable measure. *)
    |> List.sort_uniq compare
  in
  let watchdog_us = 1_000 + Prng.int g 49_001 in
  let exec_retries = 1 + Prng.int g 3 in
  let max_retries = 1 + Prng.int g 4 in
  let seed = Prng.next g land 0x3FFF_FFFF in
  (* Multi-tenant axes are drawn after every pre-existing field, so
     scenario (seed, index) keeps its historical single-tenant shape bar
     the new fields. Roughly one scenario in four goes through the
     service; declared SLOs are generous — sub-second makespans mean any
     breach is a genuine scheduling bug, not load. *)
  let tenants = if Prng.int g 4 = 0 then 2 + Prng.int g 7 else 1 in
  let slo_p99_ms =
    if tenants > 1 && Prng.int g 2 = 0 then 5_000 + Prng.int g 5_000 else 0
  in
  {
    seed;
    apps;
    input_kb;
    device;
    translation;
    imu;
    tlb_entries;
    tlb_org;
    policy;
    prefetch_depth;
    transfer;
    rates;
    events;
    watchdog_us;
    exec_retries;
    max_retries;
    tenants;
    slo_p99_ms;
  }

(* {1 Shrinking order}

   The measure the shrinker strictly decreases: fault events dominate,
   then rate rules, then workload breadth, then every geometry field that
   differs from the default. A minimal repro is the scenario with the
   smallest measure that still shows the original violation class. *)

let measure t =
  let non_default = [
    t.device <> default.device;
    t.translation <> default.translation;
    t.imu <> default.imu;
    t.tlb_entries <> default.tlb_entries;
    t.tlb_org <> default.tlb_org;
    t.policy <> default.policy;
    t.prefetch_depth <> default.prefetch_depth;
    t.transfer <> default.transfer;
    t.exec_retries <> default.exec_retries;
    t.max_retries <> default.max_retries;
    t.slo_p99_ms <> default.slo_p99_ms;
  ] in
  (10 * List.length t.events)
  + (5 * List.length t.rates)
  + (4 * (List.length t.apps - 1))
  + (3 * (t.tenants - 1))
  + t.input_kb
  + List.fold_left (fun n b -> if b then n + 1 else n) 0 non_default

let pp ppf t = Format.pp_print_string ppf (to_string t)
