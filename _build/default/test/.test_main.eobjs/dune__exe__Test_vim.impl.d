test/test_vim.ml: Alcotest Array Bytes Char List Option QCheck QCheck_alcotest Queue Rvi_coproc Rvi_core Rvi_fpga Rvi_harness Rvi_mem Rvi_os Rvi_sim
