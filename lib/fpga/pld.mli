(** The reconfigurable lattice (PLD).

    Holds at most one configured bit-stream at a time. [FPGA_LOAD]
    "ensures the exclusive use of the resource": the lattice is locked by
    the owning process until released. Configuration checks that the design
    fits the device — the paper notes that IDEA's parallelism was limited by
    the EPXA1's PLD resources, so over-capacity designs must be rejected,
    not silently accepted. *)

type t

type error =
  | Too_large of { required : int; available : int }
      (** bit-stream needs more logic elements than the device has *)
  | Locked_by of int  (** another process (pid) holds the lattice *)
  | Not_owner of int  (** release attempted by a process that is not the owner *)
  | Empty  (** release attempted with nothing configured *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val create : Device.t -> t
val device : t -> Device.t

val configure : t -> pid:int -> Bitstream.t -> (unit, error) result
(** Loads a bit-stream and locks the lattice for [pid]. A process that
    already owns the lattice may reconfigure it. *)

val release : t -> pid:int -> (unit, error) result
(** Unlocks and clears the configuration. Only the owner may release. *)

val loaded : t -> Bitstream.t option
val owner : t -> int option

val reconfigurations : t -> int
(** Number of successful [configure] calls, for the scheduling ablations. *)

val reset : t -> unit
(** Back to the unconfigured, unlocked power-on state (platform pool). *)
