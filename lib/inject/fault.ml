type kind =
  | Dpram_flip
  | Ahb_error
  | Dma_error
  | Tlb_corrupt
  | Coproc_hang
  | Coproc_wrong
  | Irq_lost
  | Irq_spurious
  | Ptw_error
  | L2_corrupt
  | Walker_hang

let all =
  [
    Dpram_flip;
    Ahb_error;
    Dma_error;
    Tlb_corrupt;
    Coproc_hang;
    Coproc_wrong;
    Irq_lost;
    Irq_spurious;
    Ptw_error;
    L2_corrupt;
    Walker_hang;
  ]

(* Dense index for per-kind tables on the injector's hot path. *)
let index = function
  | Dpram_flip -> 0
  | Ahb_error -> 1
  | Dma_error -> 2
  | Tlb_corrupt -> 3
  | Coproc_hang -> 4
  | Coproc_wrong -> 5
  | Irq_lost -> 6
  | Irq_spurious -> 7
  | Ptw_error -> 8
  | L2_corrupt -> 9
  | Walker_hang -> 10

let n_kinds = 11

let name = function
  | Dpram_flip -> "dpram"
  | Ahb_error -> "ahb"
  | Dma_error -> "dma"
  | Tlb_corrupt -> "tlb"
  | Coproc_hang -> "hang"
  | Coproc_wrong -> "wrong"
  | Irq_lost -> "irq-lost"
  | Irq_spurious -> "irq-spurious"
  | Ptw_error -> "ptw"
  | L2_corrupt -> "l2-corrupt"
  | Walker_hang -> "walker-hang"

let of_name s =
  List.find_opt (fun k -> name k = s) all

let describe = function
  | Dpram_flip -> "dual-port RAM single-bit upset (parity-detected)"
  | Ahb_error -> "AHB bus-error response during a kernel page copy"
  | Dma_error -> "DMA channel aborts a transfer"
  | Tlb_corrupt -> "a valid TLB entry is corrupted and dropped by the CAM"
  | Coproc_hang -> "coprocessor stops making progress (watchdog territory)"
  | Coproc_wrong -> "coprocessor writes a corrupted result word"
  | Irq_lost -> "a raised interrupt line is dropped before the CPU sees it"
  | Irq_spurious -> "an interrupt with no pending cause"
  | Ptw_error -> "the page-table walk aborts on a bus-error response (SVA)"
  | L2_corrupt -> "a valid shared-L2 TLB entry is corrupted and dropped (SVA)"
  | Walker_hang -> "the page-table walker wedges mid-walk (SVA, watchdog territory)"

let pp ppf k = Format.pp_print_string ppf (name k)
