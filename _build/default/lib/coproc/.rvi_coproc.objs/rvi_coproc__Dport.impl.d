lib/coproc/dport.ml: Array Hashtbl Rvi_core Rvi_mem
