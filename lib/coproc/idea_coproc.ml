module Cp_port = Rvi_core.Cp_port

let obj_in = 0
let obj_out = 1
let stages = 3
let stage_cycles = 10
let key_setup_cycles = 64

(* Eight rounds of four 16-bit multiplications mod 2^16+1 in software,
   each tens of cycles on the ARM922T; 26 ms / 512 blocks at 133 MHz. *)
let sw_cycles_per_block = 6757

type mode = Ecb_encrypt | Ecb_decrypt | Cbc_encrypt | Cbc_decrypt

let mode_code = function
  | Ecb_encrypt -> 0
  | Ecb_decrypt -> 1
  | Cbc_encrypt -> 2
  | Cbc_decrypt -> 3

let mode_of_code = function
  | 0 -> Some Ecb_encrypt
  | 1 -> Some Ecb_decrypt
  | 2 -> Some Cbc_encrypt
  | 3 -> Some Cbc_decrypt
  | _ -> None

let mode_name = function
  | Ecb_encrypt -> "ecb-encrypt"
  | Ecb_decrypt -> "ecb-decrypt"
  | Cbc_encrypt -> "cbc-encrypt"
  | Cbc_decrypt -> "cbc-decrypt"

let n_params = 14

let params_mode ~n_blocks ~mode ~key ?(iv = [| 0; 0; 0; 0 |]) () =
  let key = Idea_ref.key_of_words key in
  let _ = Idea_ref.iv_of_words iv in
  (n_blocks :: mode_code mode :: Array.to_list key) @ Array.to_list iv

let params ~n_blocks ~decrypt ~key =
  params_mode ~n_blocks
    ~mode:(if decrypt then Ecb_decrypt else Ecb_encrypt)
    ~key ()

module Make (P : Mem_port.S) = struct
  type phase =
    | Wait_start
    | Read_param of int
    | Wait_param of int
    | Key_setup of int
    | Run
    | Done

  let show = function
    | Wait_start -> "wait_start"
    | Read_param i -> Printf.sprintf "rd_param[%d]" i
    | Wait_param i -> Printf.sprintf "wait_param[%d]" i
    | Key_setup n -> Printf.sprintf "key_setup[%d]" n
    | Run -> "run"
    | Done -> "done"

  type fetch_state =
    | F_idle
    | F_wait_lo
    | F_hold_lo of int (* low word read, waiting for the port *)
    | F_wait_hi of int (* low word *)
  type retire_state = R_idle | R_wait_lo | R_wait_hi

  type slot = { result_lo : int; result_hi : int; mutable left : int }

  type m = {
    port : P.t;
    fsm : phase Rvi_hw.Fsm.t;
    raw_params : int array;
    mutable n_blocks : int;
    mutable mode : mode;
    mutable chain : int * int * int * int;
    mutable subkeys : int array;
    (* pipeline *)
    pipe : slot option array;
    mutable out_buf : (int * int) option;
    mutable fetch : fetch_state;
    mutable fetched : int;
    mutable retire : retire_state;
    mutable retire_buf : int * int;
    mutable retired : int;
    stats : Rvi_sim.Stats.t;
    c_cycles : Rvi_sim.Stats.counter;
    c_blocks : Rvi_sim.Stats.counter;
  }

  let read_param m i =
    Mem_port.read_param
      ~issue:(fun ~region ~addr ->
        P.issue m.port ~region ~addr ~wr:false ~width:Cp_port.W32 ~data:0)
      ~index:i

  let setup_keys m =
    m.mode <- Option.value (mode_of_code m.raw_params.(1)) ~default:Ecb_encrypt;
    let key = Array.sub m.raw_params 2 8 in
    let sub = Idea_ref.expand_key key in
    let decrypting =
      match m.mode with
      | Ecb_decrypt | Cbc_decrypt -> true
      | Ecb_encrypt | Cbc_encrypt -> false
    in
    m.subkeys <- (if decrypting then Idea_ref.invert_key sub else sub);
    m.chain <-
      ( m.raw_params.(10) land 0xFFFF,
        m.raw_params.(11) land 0xFFFF,
        m.raw_params.(12) land 0xFFFF,
        m.raw_params.(13) land 0xFFFF )

  let begin_run m =
    m.n_blocks <- m.raw_params.(0);
    Array.fill m.pipe 0 stages None;
    m.out_buf <- None;
    m.fetch <- F_idle;
    m.fetched <- 0;
    m.retire <- R_idle;
    m.retired <- 0;
    if m.n_blocks = 0 then begin
      P.finish m.port;
      Rvi_hw.Fsm.goto m.fsm Done
    end
    else Rvi_hw.Fsm.goto m.fsm Run

  (* One cycle of the retire unit. Returns true if it claimed the port. *)
  let step_retire m =
    match m.retire with
    | R_idle -> (
      match m.out_buf with
      | Some (lo, hi) when not (P.busy m.port) ->
        m.out_buf <- None;
        m.retire_buf <- (lo, hi);
        P.issue m.port ~region:obj_out ~addr:(8 * m.retired) ~wr:true
          ~width:Cp_port.W32 ~data:lo;
        m.retire <- R_wait_lo;
        true
      | Some _ | None -> false)
    | R_wait_lo ->
      if P.ready m.port then
        if not (P.busy m.port) then begin
          let _, hi = m.retire_buf in
          P.issue m.port ~region:obj_out
            ~addr:((8 * m.retired) + 4)
            ~wr:true ~width:Cp_port.W32 ~data:hi;
          m.retire <- R_wait_hi;
          true
        end
        else true (* port stolen is impossible: we are the only user now *)
      else true (* still waiting: the port is ours *)
    | R_wait_hi ->
      if P.ready m.port then begin
        m.retired <- m.retired + 1;
        Rvi_sim.Stats.tick m.c_blocks;
        m.retire <- R_idle;
        false
      end
      else true

  (* One cycle of the fetch unit; only runs when the port is free. *)
  let step_fetch m ~port_free =
    match m.fetch with
    | F_idle ->
      (* CBC encryption is a recurrence: the next block cannot enter the
         pipeline until the previous one has left it. *)
      let chain_ready =
        m.mode <> Cbc_encrypt || Array.for_all (fun s -> s = None) m.pipe
      in
      if port_free && chain_ready && m.fetched < m.n_blocks && m.pipe.(0) = None
      then begin
        P.issue m.port ~region:obj_in ~addr:(8 * m.fetched) ~wr:false
          ~width:Cp_port.W32 ~data:0;
        m.fetch <- F_wait_lo
      end
    | F_wait_lo ->
      if P.ready m.port then begin
        let lo = P.data m.port in
        if port_free then begin
          P.issue m.port ~region:obj_in
            ~addr:((8 * m.fetched) + 4)
            ~wr:false ~width:Cp_port.W32 ~data:0;
          m.fetch <- F_wait_hi lo
        end
        else m.fetch <- F_hold_lo lo
      end
    | F_hold_lo lo ->
      if port_free then begin
        P.issue m.port ~region:obj_in
          ~addr:((8 * m.fetched) + 4)
          ~wr:false ~width:Cp_port.W32 ~data:0;
        m.fetch <- F_wait_hi lo
      end
    | F_wait_hi lo ->
      if P.ready m.port then begin
        let hi = P.data m.port in
        (* The whole block transform is computed here and carried through
           the pipeline; the slots model timing only. *)
        let block = Idea_ref.words_of_le32 ~lo ~hi in
        let result =
          match m.mode with
          | Ecb_encrypt | Ecb_decrypt -> Idea_ref.crypt_block m.subkeys block
          | Cbc_encrypt ->
            let cipher =
              Idea_ref.crypt_block m.subkeys (Idea_ref.xor_block block m.chain)
            in
            m.chain <- cipher;
            cipher
          | Cbc_decrypt ->
            let plain =
              Idea_ref.xor_block (Idea_ref.crypt_block m.subkeys block) m.chain
            in
            m.chain <- block;
            plain
        in
        let rlo, rhi = Idea_ref.le32_of_words result in
        m.pipe.(0) <- Some { result_lo = rlo; result_hi = rhi; left = stage_cycles };
        m.fetched <- m.fetched + 1;
        m.fetch <- F_idle
      end

  let step_pipeline m =
    (* Retire-side first so a freed slot can be refilled the same cycle
       order guarantees forward progress, not combinational magic. *)
    (match m.pipe.(stages - 1) with
    | Some s when s.left = 0 && m.out_buf = None ->
      m.out_buf <- Some (s.result_lo, s.result_hi);
      m.pipe.(stages - 1) <- None
    | Some _ | None -> ());
    for i = stages - 2 downto 0 do
      match (m.pipe.(i), m.pipe.(i + 1)) with
      | Some s, None when s.left = 0 ->
        s.left <- stage_cycles;
        m.pipe.(i + 1) <- Some s;
        m.pipe.(i) <- None
      | _ -> ()
    done;
    Array.iter
      (function Some s when s.left > 0 -> s.left <- s.left - 1 | Some _ | None -> ())
      m.pipe

  let run_cycle m =
    step_pipeline m;
    let retire_claimed = step_retire m in
    step_fetch m ~port_free:((not retire_claimed) && not (P.busy m.port));
    if m.retired = m.n_blocks then begin
      P.finish m.port;
      Rvi_hw.Fsm.goto m.fsm Done
    end
    else Rvi_hw.Fsm.stay m.fsm

  let compute m =
    P.sample m.port;
    Rvi_sim.Stats.tick m.c_cycles;
    match Rvi_hw.Fsm.state m.fsm with
    | Wait_start ->
      if P.start_seen m.port then Rvi_hw.Fsm.goto m.fsm (Read_param 0)
      else Rvi_hw.Fsm.stay m.fsm
    | Read_param i ->
      read_param m i;
      Rvi_hw.Fsm.goto m.fsm (Wait_param i)
    | Wait_param i ->
      if P.ready m.port then begin
        m.raw_params.(i) <- P.data m.port;
        if i + 1 < n_params then Rvi_hw.Fsm.goto m.fsm (Read_param (i + 1))
        else Rvi_hw.Fsm.goto m.fsm (Key_setup key_setup_cycles)
      end
      else Rvi_hw.Fsm.stay m.fsm
    | Key_setup n ->
      if n > 1 then Rvi_hw.Fsm.goto m.fsm (Key_setup (n - 1))
      else begin
        setup_keys m;
        begin_run m
      end
    | Run -> run_cycle m
    | Done ->
      if P.start_seen m.port then Rvi_hw.Fsm.goto m.fsm (Read_param 0)
      else Rvi_hw.Fsm.stay m.fsm

  (* The pipelined [Run] state almost always moves something (fetch,
     pipe advance, retire), so it never claims idleness; the parameter and
     start waits are unbounded port waits, and [Key_setup] is a pure
     countdown whose remaining decrements [skip] applies wholesale. *)
  let idle_hint m =
    if not (P.quiescent m.port) then 0
    else
      match Rvi_hw.Fsm.state m.fsm with
      | Wait_start | Wait_param _ | Done -> max_int
      | Key_setup n -> n - 1
      | Read_param _ | Run -> 0

  let skip m k =
    Rvi_sim.Stats.tick_by m.c_cycles k;
    match Rvi_hw.Fsm.state m.fsm with
    | Key_setup n ->
      Rvi_hw.Fsm.fast_forward m.fsm ~transitions:k (Key_setup (n - k))
    | _ -> ()

  let create port =
    let stats = Rvi_sim.Stats.create () in
    let m =
      {
        port;
        fsm = Rvi_hw.Fsm.create ~name:"idea" ~init:Wait_start ~show;
        raw_params = Array.make n_params 0;
        n_blocks = 0;
        mode = Ecb_encrypt;
        chain = (0, 0, 0, 0);
        subkeys = [||];
        pipe = Array.make stages None;
        out_buf = None;
        fetch = F_idle;
        fetched = 0;
        retire = R_idle;
        retire_buf = (0, 0);
        retired = 0;
        stats;
        c_cycles = Rvi_sim.Stats.counter stats "cycles";
        c_blocks = Rvi_sim.Stats.counter stats "blocks";
      }
    in
    {
      Coproc.name = "idea";
      component =
        Rvi_sim.Clock.component ~name:"idea"
          ~idle_hint:(fun () -> idle_hint m)
          ~skip:(fun k -> skip m k)
          ~compute:(fun () -> compute m)
          ~commit:(fun () ->
            Rvi_hw.Fsm.commit m.fsm;
            P.commit m.port)
            ();
      finished = (fun () -> Rvi_hw.Fsm.state m.fsm = Done);
      reset =
        (fun () ->
          Rvi_hw.Fsm.reset m.fsm Wait_start;
          P.reset m.port);
      stats = m.stats;
    }
end

module Virtual = struct
  module M = Make (Vport)

  let create port =
    let vport = Vport.create port in
    (vport, M.create vport)
end
