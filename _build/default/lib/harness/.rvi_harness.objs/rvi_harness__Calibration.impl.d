lib/harness/calibration.ml: Rvi_coproc Rvi_fpga Rvi_mem
