(** Simulated processes.

    [FPGA_EXECUTE] "puts the calling process in an interruptible sleep
    mode"; the process table and states exist so that the syscall layer can
    model that honestly (and so the scheduler ablations can run competing
    processes). *)

type state = Ready | Running | Sleeping | Exited

val state_name : state -> string

type t = private {
  pid : int;
  name : string;
  mutable state : state;
  mutable wakeups : int;  (** times this process was woken from sleep *)
  page_table : Page_table.t;
      (** the process's VA space as the IOMMU sees it (SVA translation
          mode); unused — and empty — under the paper's object mode *)
}

val make : pid:int -> name:string -> t
(** A fresh process in state [Ready]. *)

val set_state : t -> state -> unit
(** Enforces legal transitions; raises [Invalid_argument] on, e.g.,
    waking an [Exited] process. *)

val pp : Format.formatter -> t -> unit
