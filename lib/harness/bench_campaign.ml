let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

type result = {
  runs : int;
  seed : int;
  jobs : int;
  serial_s : float;
  parallel_s : float;
  serial_runs_per_sec : float;
  parallel_runs_per_sec : float;
  speedup : float;
  deterministic : bool;
  survival : float;
}

let classification results =
  List.map (fun r -> (r.Faults.index, Faults.outcome_name r.Faults.outcome)) results

let run ?(runs = 200) ?(seed = 2004) ~jobs () =
  let serial, serial_s = time (fun () -> Faults.campaign ~runs ~seed ()) in
  let parallel, parallel_s =
    time (fun () -> Faults.campaign ~jobs ~runs ~seed ())
  in
  let per_sec t = if t > 0.0 then float_of_int runs /. t else 0.0 in
  {
    runs;
    seed;
    jobs;
    serial_s;
    parallel_s;
    serial_runs_per_sec = per_sec serial_s;
    parallel_runs_per_sec = per_sec parallel_s;
    speedup = (if parallel_s > 0.0 then serial_s /. parallel_s else 0.0);
    deterministic =
      classification serial = classification parallel
      && Faults.summarize serial = Faults.summarize parallel;
    survival = Faults.survival (Faults.summarize serial);
  }

let to_json r =
  Printf.sprintf
    "{\n\
    \  \"benchmark\": \"faults-campaign\",\n\
    \  \"runs\": %d,\n\
    \  \"seed\": %d,\n\
    \  \"jobs\": %d,\n\
    \  \"serial_s\": %.6f,\n\
    \  \"parallel_s\": %.6f,\n\
    \  \"serial_runs_per_sec\": %.2f,\n\
    \  \"parallel_runs_per_sec\": %.2f,\n\
    \  \"speedup\": %.3f,\n\
    \  \"deterministic\": %b,\n\
    \  \"survival_pct\": %.2f\n\
     }\n"
    r.runs r.seed r.jobs r.serial_s r.parallel_s r.serial_runs_per_sec
    r.parallel_runs_per_sec r.speedup r.deterministic r.survival

let default_path = "BENCH_campaign.json"

let write ?(path = default_path) r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json r));
  path

let print ppf r =
  Format.fprintf ppf
    "campaign %d runs, seed %d: serial %.2fs (%.1f runs/s), --jobs %d %.2fs \
     (%.1f runs/s), speedup %.2fx, classifications %s@."
    r.runs r.seed r.serial_s r.serial_runs_per_sec r.jobs r.parallel_s
    r.parallel_runs_per_sec r.speedup
    (if r.deterministic then "identical" else "DIVERGED (bug)")
