lib/harness/model.mli: Config Format
