lib/mem/dpram.mli: Bytes Page Rvi_sim
