lib/os/syscall.ml: Hashtbl List Option Printf String
