(** Fault taxonomy for the injection layer.

    One constructor per hardware boundary the virtualisation layer crosses.
    Every kind models a failure a real virtualised-FPGA stack must survive:
    memory upsets, bus errors, DMA aborts, TLB corruption, coprocessor
    misbehaviour, and interrupt-delivery failures. *)

type kind =
  | Dpram_flip
      (** flip one bit of a word written to the dual-port RAM by the PLD
          port; the RAM's (modelled) parity detects it on the next kernel
          page access *)
  | Ahb_error
      (** the AHB answers a kernel page copy with a bus-error response;
          the copy must be re-issued *)
  | Dma_error
      (** the DMA channel aborts mid-transfer; the channel must be
          re-armed *)
  | Tlb_corrupt
      (** a valid TLB entry is corrupted; the parity-protected CAM drops
          it, and the next touch takes a refill fault *)
  | Coproc_hang
      (** the coprocessor stops issuing accesses and never finishes; only
          the watchdog can reclaim the interface *)
  | Coproc_wrong
      (** the coprocessor writes a corrupted result word — silent data
          corruption, detectable only by output verification *)
  | Irq_lost
      (** the IMU raises its interrupt line but the controller never
          latches it; progress stalls until the OS polls the SR *)
  | Irq_spurious
      (** the interrupt controller reports a line with no pending cause *)
  | Ptw_error
      (** SVA mode: the page-table walker's bus read returns an error
          response; the walk aborts and the OS must retry it (resume
          re-walks) *)
  | L2_corrupt
      (** SVA mode: a valid entry of the shared second-level TLB is
          corrupted; parity drops it, and the next touch re-walks the page
          table and re-wires the page *)
  | Walker_hang
      (** SVA mode: the page-table walker wedges mid-walk and never
          answers; only the watchdog (followed by a CR reset) reclaims the
          interface *)

val all : kind list
(** Every kind, in declaration order. *)

val index : kind -> int
(** Dense index in [0, n_kinds) for per-kind tables on hot paths. *)

val n_kinds : int

val name : kind -> string
(** Short stable identifier, used by the [--inject] SPEC grammar and by
    stats counters ("dpram", "ahb", "dma", "tlb", "hang", "wrong",
    "irq-lost", "irq-spurious", "ptw", "l2-corrupt", "walker-hang"). *)

val of_name : string -> kind option

val describe : kind -> string
(** One-line human description. *)

val pp : Format.formatter -> kind -> unit
