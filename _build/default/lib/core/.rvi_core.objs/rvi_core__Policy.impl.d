lib/core/policy.ml: Array Hashtbl Int List Option Rvi_sim Stdlib
