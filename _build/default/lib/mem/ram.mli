(** Flat byte-addressable memory.

    Shared storage primitive behind {!Dpram} and {!Sdram}: bounds-checked
    byte/halfword/word access in little-endian order, plus bulk moves. *)

type t

val create : size:int -> t
(** Zero-initialised memory of [size] bytes. *)

val size : t -> int

val read8 : t -> int -> int
val write8 : t -> int -> int -> unit

val read16 : t -> int -> int
val write16 : t -> int -> int -> unit
(** Little-endian, no alignment requirement (the modelled buses allow
    unaligned halfword access through byte lanes). *)

val read32 : t -> int -> int
val write32 : t -> int -> int -> unit

val read : t -> width:int -> int -> int
(** [read t ~width addr] dispatches on [width] in {8,16,32} bits. *)

val write : t -> width:int -> int -> int -> unit

val blit_from_bytes : Bytes.t -> src:int -> t -> dst:int -> len:int -> unit
val blit_to_bytes : t -> src:int -> Bytes.t -> dst:int -> len:int -> unit
val blit : t -> src:int -> t -> dst:int -> len:int -> unit

val fill : t -> pos:int -> len:int -> char -> unit

val dump : t -> pos:int -> len:int -> Bytes.t
(** Copy of a region, for tests and debugging. *)
