(** Fixed-width bit vectors.

    Values are unsigned integers of a declared width between 1 and 62 bits,
    the range used by every bus and register in the modelled system
    (addresses, 16/32-bit data words, TLB tags). All arithmetic wraps
    modulo [2^width], like hardware registers. *)

type t

val width : t -> int
val to_int : t -> int

val make : width:int -> int -> t
(** [make ~width v] truncates [v] to [width] bits. Raises [Invalid_argument]
    unless [1 <= width <= 62] and [v >= 0]. *)

val zero : width:int -> t
val ones : width:int -> t
(** All bits set. *)

val max_int : width:int -> int
(** Largest value representable in [width] bits. *)

val add : t -> t -> t
(** Wrapping addition; operands must have equal width. *)

val sub : t -> t -> t
(** Wrapping subtraction (two's complement); equal widths required. *)

val succ : t -> t

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

val shift_left : t -> int -> t
val shift_right : t -> int -> t
(** Logical shifts; bits shifted out are lost, width is preserved. *)

val bit : t -> int -> bool
(** [bit v i] is bit [i] (LSB = 0). Raises [Invalid_argument] if out of
    range. *)

val set_bit : t -> int -> bool -> t

val slice : hi:int -> lo:int -> t -> t
(** [slice ~hi ~lo v] extracts bits [hi..lo] inclusive as a vector of width
    [hi - lo + 1]. *)

val concat : t -> t -> t
(** [concat hi lo] forms a vector with [hi] in the upper bits. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Hexadecimal with width annotation, e.g. [12'h0a3]. *)

val pp_bin : Format.formatter -> t -> unit
