test/test_os.ml: Alcotest Array Bytes List Rvi_os Rvi_sim
