module Cp_port = Rvi_core.Cp_port

let obj_a = 0
let obj_b = 1
let obj_c = 2

let reference ~a ~b =
  if Array.length a <> Array.length b then
    invalid_arg "Vecadd.reference: length mismatch";
  Array.init (Array.length a) (fun i -> (a.(i) + b.(i)) land 0xFFFF_FFFF)

(* Load, load, add, store per element on a simple in-order core. *)
let sw_cycles_per_element = 12

module Make (P : Mem_port.S) = struct
  type state =
    | Wait_start
    | Read_param
    | Wait_param
    | Wait_a of int
    | Wait_b of int
    | Write_c of int
    | Wait_c of int
    | Done

  let show = function
    | Wait_start -> "wait_start"
    | Read_param -> "rd_param"
    | Wait_param -> "wait_param"
    | Wait_a i -> Printf.sprintf "wait_a[%d]" i
    | Wait_b i -> Printf.sprintf "wait_b[%d]" i
    | Write_c i -> Printf.sprintf "wr_c[%d]" i
    | Wait_c i -> Printf.sprintf "wait_c[%d]" i
    | Done -> "done"

  type m = {
    port : P.t;
    fsm : state Rvi_hw.Fsm.t;
    mutable n : int;
    mutable reg_a : int;
    mutable reg_c : int;
    stats : Rvi_sim.Stats.t;
    c_cycles : Rvi_sim.Stats.counter;
    c_elements : Rvi_sim.Stats.counter;
  }

  let read m ~obj ~index =
    P.issue m.port ~region:obj ~addr:(4 * index) ~wr:false ~width:Cp_port.W32
      ~data:0

  let write m ~obj ~index ~data =
    P.issue m.port ~region:obj ~addr:(4 * index) ~wr:true ~width:Cp_port.W32
      ~data

  (* Advance past element [i]: either fetch the next one or finish. *)
  let next_element m i =
    if i + 1 < m.n then begin
      read m ~obj:obj_a ~index:(i + 1);
      Rvi_hw.Fsm.goto m.fsm (Wait_a (i + 1))
    end
    else begin
      P.finish m.port;
      Rvi_hw.Fsm.goto m.fsm Done
    end

  let compute m =
    P.sample m.port;
    Rvi_sim.Stats.tick m.c_cycles;
    match Rvi_hw.Fsm.state m.fsm with
    | Wait_start ->
      if P.start_seen m.port then Rvi_hw.Fsm.goto m.fsm Read_param
      else Rvi_hw.Fsm.stay m.fsm
    | Read_param ->
      Mem_port.read_param
        ~issue:(fun ~region ~addr ->
          P.issue m.port ~region ~addr ~wr:false ~width:Cp_port.W32 ~data:0)
        ~index:0;
      Rvi_hw.Fsm.goto m.fsm Wait_param
    | Wait_param ->
      if P.ready m.port then begin
        m.n <- P.data m.port;
        if m.n = 0 then begin
          P.finish m.port;
          Rvi_hw.Fsm.goto m.fsm Done
        end
        else begin
          read m ~obj:obj_a ~index:0;
          Rvi_hw.Fsm.goto m.fsm (Wait_a 0)
        end
      end
      else Rvi_hw.Fsm.stay m.fsm
    | Wait_a i ->
      if P.ready m.port then begin
        m.reg_a <- P.data m.port;
        read m ~obj:obj_b ~index:i;
        Rvi_hw.Fsm.goto m.fsm (Wait_b i)
      end
      else Rvi_hw.Fsm.stay m.fsm
    | Wait_b i ->
      if P.ready m.port then begin
        m.reg_c <- (m.reg_a + P.data m.port) land 0xFFFF_FFFF;
        Rvi_hw.Fsm.goto m.fsm (Write_c i)
      end
      else Rvi_hw.Fsm.stay m.fsm
    | Write_c i ->
      write m ~obj:obj_c ~index:i ~data:m.reg_c;
      Rvi_sim.Stats.tick m.c_elements;
      Rvi_hw.Fsm.goto m.fsm (Wait_c i)
    | Wait_c i ->
      if P.ready m.port then next_element m i else Rvi_hw.Fsm.stay m.fsm
    | Done ->
      if P.start_seen m.port then Rvi_hw.Fsm.goto m.fsm Read_param
      else Rvi_hw.Fsm.stay m.fsm

  (* Every wait state polls the port; with the port quiescent those polls
     are pure no-op ticks until some other component supplies the response
     or start pulse, so they can be fast-forwarded without bound. The
     active states (issuing, adding) always do real work. *)
  let idle_hint m =
    if not (P.quiescent m.port) then 0
    else
      match Rvi_hw.Fsm.state m.fsm with
      | Wait_start | Wait_param | Wait_a _ | Wait_b _ | Wait_c _ | Done ->
        max_int
      | Read_param | Write_c _ -> 0

  let skip m k = Rvi_sim.Stats.tick_by m.c_cycles k

  let create port =
    let stats = Rvi_sim.Stats.create () in
    let m =
      {
        port;
        fsm = Rvi_hw.Fsm.create ~name:"vecadd" ~init:Wait_start ~show;
        n = 0;
        reg_a = 0;
        reg_c = 0;
        stats;
        c_cycles = Rvi_sim.Stats.counter stats "cycles";
        c_elements = Rvi_sim.Stats.counter stats "elements";
      }
    in
    {
      Coproc.name = "vecadd";
      component =
        Rvi_sim.Clock.component ~name:"vecadd"
          ~idle_hint:(fun () -> idle_hint m)
          ~skip:(fun k -> skip m k)
          ~compute:(fun () -> compute m)
          ~commit:(fun () ->
            Rvi_hw.Fsm.commit m.fsm;
            P.commit m.port)
            ();
      finished = (fun () -> Rvi_hw.Fsm.state m.fsm = Done);
      reset =
        (fun () ->
          Rvi_hw.Fsm.reset m.fsm Wait_start;
          m.n <- 0;
          P.reset m.port);
      stats = m.stats;
    }
end

module Virtual = struct
  module M = Make (Vport)

  let create port =
    let vport = Vport.create port in
    (vport, M.create vport)
end
