module Kernel = Rvi_os.Kernel
module Syscall = Rvi_os.Syscall
module Accounting = Rvi_os.Accounting
module Cost_model = Rvi_os.Cost_model

type t = {
  kernel : Kernel.t;
  vim : Vim.t;
  pld : Rvi_fpga.Pld.t;
  bitstreams : (int, Rvi_fpga.Bitstream.t) Hashtbl.t;
  mutable next_handle : int;
  mutable last_error : string option;
  mutable last_transient : bool;
      (* the last FPGA_EXECUTE error classified {!Vim.Transient} *)
}

let dir_code = function
  | Mapped_object.In -> 0
  | Mapped_object.Out -> 1
  | Mapped_object.Inout -> 2

let dir_of_code = function
  | 0 -> Some Mapped_object.In
  | 1 -> Some Mapped_object.Out
  | 2 -> Some Mapped_object.Inout
  | _ -> None

let fail t msg errno =
  t.last_error <- Some msg;
  Syscall.err errno

let handle_load t args =
  if Array.length args <> 1 then fail t "FPGA_LOAD: bad argument count" Syscall.EINVAL
  else
    match Hashtbl.find_opt t.bitstreams args.(0) with
    | None -> fail t "FPGA_LOAD: unknown bit-stream" Syscall.EINVAL
    | Some bs -> (
      let pid = (Rvi_os.Sched.current (Kernel.sched t.kernel)).Rvi_os.Proc.pid in
      let cost = Kernel.cost t.kernel in
      Kernel.charge t.kernel Accounting.Sw_os ~cycles:cost.Cost_model.configure_pld;
      match Rvi_fpga.Pld.configure t.pld ~pid bs with
      | Ok () ->
        t.last_error <- None;
        0
      | Error (Rvi_fpga.Pld.Too_large _ as e) ->
        fail t (Rvi_fpga.Pld.error_to_string e) Syscall.ENOSPC
      | Error (Rvi_fpga.Pld.Locked_by _ as e) ->
        fail t (Rvi_fpga.Pld.error_to_string e) Syscall.EBUSY
      | Error e -> fail t (Rvi_fpga.Pld.error_to_string e) Syscall.EINVAL)

let handle_map t args =
  if Array.length args <> 5 then
    fail t "FPGA_MAP_OBJECT: bad argument count" Syscall.EINVAL
  else
    let id = args.(0) and addr = args.(1) and size = args.(2) in
    let dir = dir_of_code args.(3) and stream = args.(4) <> 0 in
    match dir with
    | None -> fail t "FPGA_MAP_OBJECT: bad direction flag" Syscall.EINVAL
    | Some dir -> (
      match
        let buf = Rvi_os.Uspace.view t.kernel ~addr ~size in
        Mapped_object.make ~id ~buf ~dir ~stream ()
      with
      | exception Invalid_argument msg -> fail t msg Syscall.EFAULT
      | obj -> (
        match Vim.translation t.vim with
        | Translation_mode.Iommu_sva -> (
          (* SVA shim: the object table stays empty — translation goes
             through the process page table — but the validated base VA
             still programs the IMU's window register. *)
          match Vim.sva_note_object t.vim ~id ~base:addr with
          | Ok () ->
            t.last_error <- None;
            0
          | Error msg -> fail t msg Syscall.EINVAL)
        | Translation_mode.Paper_objects -> (
          match Vim.map_object t.vim obj with
          | Ok () ->
            t.last_error <- None;
            0
          | Error msg -> fail t msg Syscall.EINVAL)))

let handle_execute t args =
  if Rvi_fpga.Pld.loaded t.pld = None then
    fail t (Vim.error_to_string Vim.Nothing_loaded) Syscall.EINVAL
  else
    match Vim.execute t.vim ~params:(Array.to_list args) with
    | Ok () ->
      t.last_error <- None;
      t.last_transient <- false;
      0
    | Error e ->
      t.last_transient <- (Vim.classify e = Vim.Transient);
      let errno =
        match e with
        | Vim.Unmapped_object _ | Vim.Object_overflow _ | Vim.Sva_fault _ ->
          Syscall.EFAULT
        | Vim.No_frames -> Syscall.ENOMEM
        | Vim.Too_many_params _ -> Syscall.EINVAL
        | Vim.Hardware_stall | Vim.Bus_error | Vim.Dma_failed
        | Vim.Parity_error _ | Vim.Walk_failed _ ->
          Syscall.EIO
        | Vim.Nothing_loaded -> Syscall.EINVAL
      in
      fail t (Vim.error_to_string e) errno

let handle_unload t args =
  if Array.length args <> 0 then
    fail t "FPGA_UNLOAD: bad argument count" Syscall.EINVAL
  else begin
    let pid = (Rvi_os.Sched.current (Kernel.sched t.kernel)).Rvi_os.Proc.pid in
    match Rvi_fpga.Pld.release t.pld ~pid with
    | Ok () ->
      Vim.unmap_all t.vim;
      t.last_error <- None;
      0
    | Error e -> fail t (Rvi_fpga.Pld.error_to_string e) Syscall.EBUSY
  end

let install ~kernel ~vim ~pld =
  let t =
    {
      kernel;
      vim;
      pld;
      bitstreams = Hashtbl.create 4;
      next_handle = 1;
      last_error = None;
      last_transient = false;
    }
  in
  let table = Kernel.syscalls kernel in
  Syscall.register table ~number:Syscall.fpga_load ~name:"fpga_load"
    (handle_load t);
  Syscall.register table ~number:Syscall.fpga_map_object ~name:"fpga_map_object"
    (handle_map t);
  Syscall.register table ~number:Syscall.fpga_execute ~name:"fpga_execute"
    (handle_execute t);
  Syscall.register table ~number:Syscall.fpga_unload ~name:"fpga_unload"
    (handle_unload t);
  t

let vim t = t.vim
let pld t = t.pld

let decode_result t r =
  if r >= 0 then Ok ()
  else
    match Syscall.errno_of_code (-r) with
    | Some e -> Error e
    | None ->
      t.last_error <- Some (Printf.sprintf "unknown errno %d" (-r));
      Error Syscall.EINVAL

(* Register the bit-stream object on the "user side" and pass its handle —
   the moral equivalent of the C API's pointer argument. *)
let fpga_load t bs =
  let handle = t.next_handle in
  t.next_handle <- handle + 1;
  Hashtbl.replace t.bitstreams handle bs;
  decode_result t (Kernel.syscall t.kernel ~number:Syscall.fpga_load [| handle |])

let fpga_map_object t ~id ~buf ~dir ?(stream = false) () =
  let args =
    [|
      id;
      buf.Rvi_os.Uspace.addr;
      buf.Rvi_os.Uspace.size;
      dir_code dir;
      (if stream then 1 else 0);
    |]
  in
  decode_result t (Kernel.syscall t.kernel ~number:Syscall.fpga_map_object args)

let fpga_execute t ~params =
  decode_result t
    (Kernel.syscall t.kernel ~number:Syscall.fpga_execute (Array.of_list params))

let fpga_unload t =
  decode_result t (Kernel.syscall t.kernel ~number:Syscall.fpga_unload [||])

let last_error t = t.last_error
let last_transient t = t.last_transient

(* Platform pooling: forget user-side bit-stream registrations so handle
   numbering restarts from 1 — a pooled run issues the same handles (and
   therefore the same syscall arguments) as a fresh platform. *)
let reset t =
  Hashtbl.reset t.bitstreams;
  t.next_handle <- 1;
  t.last_error <- None;
  t.last_transient <- false
