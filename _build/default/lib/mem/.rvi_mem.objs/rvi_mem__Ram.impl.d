lib/mem/ram.ml: Bytes Char Printf
