(** Wall-clock benchmark of the parallel campaign runner.

    Times the same seeded fault campaign serially and with
    [jobs] domains, checks the two classify every run identically
    (the {!Rvi_par.Par} determinism contract, asserted on real wall
    time, not just in unit tests), and renders the numbers as the
    [BENCH_campaign.json] document the perf trajectory tracks. *)

type result = {
  runs : int;
  seed : int;
  jobs : int;
  serial_s : float;  (** wall-clock of the [jobs = 1] campaign *)
  parallel_s : float;  (** wall-clock of the [jobs = n] campaign *)
  serial_runs_per_sec : float;
  parallel_runs_per_sec : float;
  speedup : float;  (** [serial_s /. parallel_s] *)
  deterministic : bool;
      (** per-run classification vectors and merged summaries equal *)
  survival : float;  (** campaign survival %, a sanity anchor *)
}

val run : ?runs:int -> ?seed:int -> jobs:int -> unit -> result
(** Defaults: 200 runs, seed 2004. *)

val to_json : result -> string

val default_path : string
(** ["BENCH_campaign.json"]. *)

val write : ?path:string -> result -> string
(** Writes {!to_json} to [path] (default {!default_path}); returns the
    path written. *)

val print : Format.formatter -> result -> unit
