lib/coproc/idea_coproc.ml: Array Coproc Idea_ref Mem_port Option Printf Rvi_core Rvi_hw Rvi_sim Vport
