type t = {
  idle : Proc.t;
  mutable procs : Proc.t list; (* excluding idle, creation order *)
  mutable cur : Proc.t;
  mutable next_pid : int;
  mutable switches : int;
  mutable cursor : int; (* round-robin position in [procs] *)
  mutable redundant_wakes : int;
}

let create () =
  let idle = Proc.make ~pid:0 ~name:"idle" in
  Proc.set_state idle Proc.Running;
  {
    idle;
    procs = [];
    cur = idle;
    next_pid = 1;
    switches = 0;
    cursor = 0;
    redundant_wakes = 0;
  }

let spawn t ~name =
  let p = Proc.make ~pid:t.next_pid ~name in
  t.next_pid <- t.next_pid + 1;
  t.procs <- t.procs @ [ p ];
  p

let current t = t.cur

let find t ~pid =
  if pid = 0 then Some t.idle
  else List.find_opt (fun p -> p.Proc.pid = pid) t.procs

let pick_ready t =
  let n = List.length t.procs in
  if n = 0 then None
  else begin
    let arr = Array.of_list t.procs in
    let rec go i =
      if i >= n then None
      else
        let p = arr.((t.cursor + i) mod n) in
        if p.Proc.state = Proc.Ready then begin
          t.cursor <- (t.cursor + i + 1) mod n;
          Some p
        end
        else go (i + 1)
    in
    go 0
  end

let switch_to t p =
  if p != t.cur then begin
    if t.cur.Proc.state = Proc.Running then Proc.set_state t.cur Proc.Ready;
    if p.Proc.state = Proc.Ready then Proc.set_state p Proc.Running;
    t.cur <- p;
    t.switches <- t.switches + 1
  end

let schedule t =
  (match pick_ready t with
  | Some p -> switch_to t p
  | None ->
    if t.cur.Proc.state <> Proc.Running then begin
      if t.idle.Proc.state = Proc.Ready then Proc.set_state t.idle Proc.Running;
      if t.idle != t.cur then t.switches <- t.switches + 1;
      t.cur <- t.idle
    end);
  t.cur

let sleep_current t =
  if t.cur == t.idle then invalid_arg "Sched.sleep_current: idle task cannot sleep";
  Proc.set_state t.cur Proc.Sleeping;
  ignore (schedule t)

let wake t ~pid =
  match find t ~pid with
  | Some p when p.Proc.state = Proc.Sleeping -> Proc.set_state p Proc.Ready
  | Some _ ->
    (* Waking a process that is not sleeping is harmless but points at a
       double-wake bug in the caller; count it so tests can assert it
       never happens. *)
    t.redundant_wakes <- t.redundant_wakes + 1
  | None -> ()

let redundant_wakes t = t.redundant_wakes

let exit_current t =
  if t.cur == t.idle then invalid_arg "Sched.exit_current: idle task cannot exit";
  Proc.set_state t.cur Proc.Exited;
  ignore (schedule t)

let context_switches t = t.switches
let processes t = t.idle :: t.procs

(* Platform pooling: return to the post-create image while keeping the
   spawned processes (their pids and names are part of the pooled
   platform's structure). Every non-exited process goes back to [Ready],
   the idle task runs, and the bookkeeping counters rewind. Exited
   processes cannot be revived — a platform that lost a process must not
   be reused (the pool drops platforms on any raised exception). *)
let reset t =
  List.iter
    (fun p ->
      match p.Proc.state with
      | Proc.Running | Proc.Sleeping -> Proc.set_state p Proc.Ready
      | Proc.Ready -> ()
      | Proc.Exited -> invalid_arg "Sched.reset: exited process cannot rejoin")
    t.procs;
  if t.idle.Proc.state = Proc.Ready then Proc.set_state t.idle Proc.Running;
  t.cur <- t.idle;
  t.switches <- 0;
  t.cursor <- 0;
  t.redundant_wakes <- 0
