(* codesign_flow: the §2 toolchain in one sitting.

   "An appropriately augmented OS, a compiler, and a synthesiser must be
   sufficient to port the accelerated application across different
   systems." For a new coprocessor idea — say a histogram unit — the
   designer pair agrees on the object arrangement once, and this flow
   emits everything both sides start from:

   - the C header + stub the software designer links against,
   - the portable VHDL entity the hardware designer fills in,
   - the platform-specific IMU entity and stripe wrapper per device,
   - and, once a golden model runs in the simulator, a self-checking
     testbench generated from its capture.

   Run with:  dune exec examples/codesign_flow.exe   (writes ./codesign/) *)

let write_file dir (name, contents) =
  let path = Filename.concat dir name in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Printf.printf "  %s (%d bytes)\n" path (String.length contents)

let () =
  let dir = "codesign" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;

  (* The arrangement: object 0 = input bytes, object 1 = 256 bins. *)
  let spec =
    Rvi_core.Stub_gen.make ~app:"histogram"
      ~objects:
        [
          {
            Rvi_core.Stub_gen.id = 0;
            c_name = "input";
            ty = Rvi_core.Stub_gen.U8;
            dir = Rvi_core.Mapped_object.In;
            stream = true;
          };
          {
            Rvi_core.Stub_gen.id = 1;
            c_name = "bins";
            ty = Rvi_core.Stub_gen.U32;
            dir = Rvi_core.Mapped_object.Inout;
            stream = false;
          };
        ]
      ~params:[ "input_bytes" ]
  in
  print_endline "software side (the 'compiler'):";
  List.iter (write_file dir) (Rvi_core.Stub_gen.emit_all spec);

  print_endline "hardware side (the 'synthesiser' input), per device:";
  List.iter
    (fun device ->
      let design =
        Rvi_core.Vhdl_gen.make ~name:"histogram" ~device ()
      in
      let subdir = Filename.concat dir device.Rvi_fpga.Device.name in
      if not (Sys.file_exists subdir) then Sys.mkdir subdir 0o755;
      Printf.printf " %s:\n" device.Rvi_fpga.Device.name;
      List.iter (write_file subdir) (Rvi_core.Vhdl_gen.emit_all design))
    [ Rvi_fpga.Device.epxa1; Rvi_fpga.Device.xc2vp7 ];

  (* Co-simulation vectors from a golden run (vecadd stands in for the
     not-yet-written histogram core). *)
  let p =
    Rvi_harness.Platform.create (Rvi_harness.Config.default ())
      ~bitstream:Rvi_harness.Calibration.vecadd_bitstream
      ~make:Rvi_coproc.Vecadd.Virtual.create
  in
  let wave = Rvi_harness.Platform.trace p in
  let a, b = Rvi_harness.Workload.vectors ~seed:1 ~n:8 in
  let to_bytes words =
    let bts = Bytes.create (4 * Array.length words) in
    Array.iteri
      (fun i w ->
        for k = 0 to 3 do
          Bytes.set bts ((4 * i) + k) (Char.chr ((w lsr (8 * k)) land 0xFF))
        done)
      words;
    bts
  in
  let buf_a = Rvi_harness.Platform.alloc_bytes p (to_bytes a) in
  let buf_b = Rvi_harness.Platform.alloc_bytes p (to_bytes b) in
  let buf_c = Rvi_harness.Platform.alloc p 32 in
  let ok = function Ok () -> () | Error _ -> failwith "golden run failed" in
  ok
    (Rvi_core.Api.fpga_load p.Rvi_harness.Platform.api
       Rvi_harness.Calibration.vecadd_bitstream);
  ok
    (Rvi_core.Api.fpga_map_object p.Rvi_harness.Platform.api ~id:0 ~buf:buf_a
       ~dir:Rvi_core.Mapped_object.In ());
  ok
    (Rvi_core.Api.fpga_map_object p.Rvi_harness.Platform.api ~id:1 ~buf:buf_b
       ~dir:Rvi_core.Mapped_object.In ());
  ok
    (Rvi_core.Api.fpga_map_object p.Rvi_harness.Platform.api ~id:2 ~buf:buf_c
       ~dir:Rvi_core.Mapped_object.Out ());
  ok (Rvi_core.Api.fpga_execute p.Rvi_harness.Platform.api ~params:[ 8 ]);
  let design =
    Rvi_core.Vhdl_gen.make ~name:"vecadd" ~device:Rvi_fpga.Device.epxa1 ()
  in
  print_endline "co-simulation vectors from the golden model:";
  write_file dir
    ("vecadd_tb.vhd", Rvi_core.Vhdl_gen.testbench_vhdl ~max_cycles:600 design ~wave);
  print_endline "\nboth sides now hold the same contract; the OS does the rest."
