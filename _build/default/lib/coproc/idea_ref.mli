(** The IDEA block cipher — software reference for the paper's
    cryptographic benchmark.

    64-bit blocks, 128-bit keys, 8.5 rounds built from XOR, addition modulo
    2^16 and multiplication modulo 2^16 + 1 (with 0 representing 2^16).
    Decryption is encryption under the inverted key schedule. The block
    byte layout (big-endian 16-bit words, as in the published test vectors)
    is defined here once and shared with the coprocessor model, so the two
    are bit-exact by construction. *)

val mul : int -> int -> int
(** Multiplication modulo 65537 on 16-bit operands with 0 ≡ 2^16. *)

val add : int -> int -> int
val mul_inv : int -> int
val add_inv : int -> int

val key_of_words : int array -> int array
(** Validates 8 16-bit words as a 128-bit key (returns a copy). *)

val expand_key : int array -> int array
(** The 52 encryption subkeys (25-bit key rotations). *)

val invert_key : int array -> int array
(** Decryption subkeys from encryption subkeys. *)

val crypt_block : int array -> int * int * int * int -> int * int * int * int
(** One block through the 8.5 rounds under the given subkeys. *)

(** {1 Byte-level interface (shared with the coprocessor model)} *)

val block_bytes : int

val block_of_bytes : Bytes.t -> pos:int -> int * int * int * int
val block_to_bytes : Bytes.t -> pos:int -> int * int * int * int -> unit

val words_of_le32 : lo:int -> hi:int -> int * int * int * int
(** Reassemble the four big-endian 16-bit block words from the two
    little-endian 32-bit bus words a coprocessor reads. *)

val le32_of_words : int * int * int * int -> int * int
(** Inverse of {!words_of_le32}: [(lo, hi)] bus words. *)

val ecb : key:int array -> decrypt:bool -> Bytes.t -> Bytes.t
(** Whole-buffer ECB; the length must be a multiple of 8 bytes. *)

val xor_block :
  int * int * int * int -> int * int * int * int -> int * int * int * int

val iv_of_words : int array -> int * int * int * int
(** Validates four 16-bit words as an initialisation vector. *)

val cbc :
  key:int array -> decrypt:bool -> iv:int array -> Bytes.t -> Bytes.t
(** Cipher-block chaining over the buffer. Encryption chains each
    plaintext block with the previous ciphertext block; decryption
    inverts it. [iv] is four 16-bit words. *)
