type t = {
  name : string;
  logic_elements : int;
  imu_freq_hz : int;
  coproc_divide : int;
  param_words : int;
}

let make ~name ~logic_elements ~imu_freq_hz ?(coproc_divide = 1) ~param_words () =
  if logic_elements <= 0 then invalid_arg "Bitstream.make: logic_elements <= 0";
  if imu_freq_hz <= 0 then invalid_arg "Bitstream.make: imu_freq_hz <= 0";
  if coproc_divide < 1 then invalid_arg "Bitstream.make: coproc_divide < 1";
  if param_words < 0 then invalid_arg "Bitstream.make: param_words < 0";
  { name; logic_elements; imu_freq_hz; coproc_divide; param_words }

let coproc_freq_hz t = t.imu_freq_hz / t.coproc_divide

let pp ppf t =
  Format.fprintf ppf "%s (%d LEs, IMU %d MHz, coproc %d MHz)" t.name
    t.logic_elements
    (t.imu_freq_hz / 1_000_000)
    (coproc_freq_hz t / 1_000_000)
