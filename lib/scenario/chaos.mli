(** The generative chaos harness: run scenarios, classify them against
    the declared invariants, shrink failures to minimal repros, and
    persist those as a self-checking corpus.

    The invariants every scenario inside the generated envelope must
    hold:

    - {b no crash} — no uncaught exception anywhere in the stack;
    - {b consistency} — the VIM consistency checker (software frame table
      vs hardware TLBs, both levels in SVA mode) is clean after the run;
    - {b bit-exact output} — the delivered output (hardware or verified
      software fallback) matches the golden reference;
    - {b recovery converges} — faults end in recovery or a verifiable
      degrade, never an unrecovered failure;
    - {b progress} — the run finishes well under {!progress_gap_ms};
    - {b stat sanity} — the report's counters are coherent.

    Multi-tenant scenarios ([tenants > 1]) run through the service
    ({!Rvi_svc.Service}) instead of the single-tenant runner and add two
    more invariants:

    - {b no starvation} — no tenant with queued work goes a whole
      starvation budget without progress;
    - {b SLO sanity} — the latency report is statistically possible
      (p99 >= p50, aggregate and per tenant) and, when the scenario
      declares a p99 objective, the measured p99 meets it. *)

type violation =
  | Crash of string
  | Inconsistent of string
  | Bad_output of string
  | Unrecovered of string
  | Progress_gap of float  (** run time in ms *)
  | Stat_insane of string
  | Starved of int  (** tenant id *)
  | Slo_insane of string

val violation_class : violation -> string
(** Stable label: ["crash"], ["inconsistent"], ["bad-output"],
    ["unrecovered"], ["progress-gap"], ["stat-insane"], ["starved"] or
    ["slo-insane"]. *)

val violation_detail : violation -> string

type report = {
  index : int;  (** campaign index, [-1] for ad-hoc runs *)
  scenario : Scenario.t;
  violations : violation list;  (** most severe first; empty = pass *)
  runs : Rvi_harness.Faults.run_result list;  (** one per app of the mix *)
}

val classification : report -> string
(** ["pass"] or the class of the most severe violation — the label the
    shrinker preserves and the corpus' [# expect:] header records. *)

val progress_gap_ms : float
(** Threshold of the progress invariant (500 ms simulated). *)

val run : ?index:int -> Scenario.t -> report
(** Execute one scenario. Single-tenant: every application of the mix
    through the full stack under the scenario's injector, with the VIM
    consistency checker probed on the live platform after each run.
    Multi-tenant: a closed-loop service campaign of two requests per
    tenant under the same injector, classified against the service
    invariants ([runs] is empty for these). Deterministic in the
    scenario alone. *)

val campaign :
  ?jobs:int -> ?progress:(report -> unit) -> seed:int -> count:int -> unit ->
  report list
(** [count] generated scenarios ({!Scenario.generate}) executed
    scenario-per-shard over the shared domain pool when [jobs > 1].
    Report [i] depends only on [(seed, i)], so the corpus and the
    classification are independent of [jobs] and reproducible from the
    seed. [progress] fires per report (post-barrier in parallel runs). *)

type summary = {
  scenarios : int;
  passes : int;
  by_class : (string * int) list;  (** violation class -> count, sorted *)
}

val summarize : report list -> summary
val print_summary : Format.formatter -> summary -> unit

val shrink : ?max_steps:int -> cls:string -> Scenario.t -> Scenario.t
(** Delta-debug a violating scenario down to a minimal repro with the
    same classification: drop fault events (halves, then singles), drop
    rate rules, collapse the app mix, halve the input, reset geometry to
    the default — accepting only strictly {!Scenario.measure}-smaller
    candidates that still classify as [cls]. Greedy first-improvement;
    terminates because the measure strictly decreases. *)

(** {1 Corpus persistence} *)

val corpus_entry : report -> string
(** Serialised scenario plus an [# expect: <class>] header. *)

val corpus_filename : campaign_seed:int -> report -> string

val save_corpus : dir:string -> campaign_seed:int -> report list -> string list
(** Write one file per report under [dir] (created as needed); returns
    the paths. Deterministic names and contents. *)

val load_corpus_file : string -> (Scenario.t * string option, string) result
(** The scenario and the [# expect:] class, if present. *)

val replay : string -> (report, string) result
(** Load a corpus file, run it, and check the observed classification
    against the [# expect:] header; [Error] on mismatch or parse
    failure. *)
