(* Fault storm: the reliability layer end to end.

   Runs the ADPCM decoder through the virtualised interface while a
   seeded injector misbehaves at every hardware boundary — bus errors,
   DMA failures, bit flips in the dual-port RAM, corrupted TLB entries,
   lost and spurious interrupt edges, coprocessor hangs — at several
   multiples of the calibrated default rates, and shows what the VIM's
   recovery machinery makes of it: in-VIM copy retries, lost-IRQ polling,
   watchdog aborts, whole-execution retries, and finally degradation to
   the software reference. The output is verified bit-for-bit in every
   case; only the time (and the outcome label) changes.

   Run with:  dune exec examples/fault_storm.exe *)

module Config = Rvi_harness.Config
module Runner = Rvi_harness.Runner
module Report = Rvi_harness.Report
module Workload = Rvi_harness.Workload
module Injector = Rvi_inject.Injector
module Spec = Rvi_inject.Spec
module Stats = Rvi_sim.Stats

let () =
  let input = Workload.adpcm_stream ~seed:42 ~bytes:4096 in
  Printf.printf
    "adpcmdecode, 4 KB compressed input, under increasing fault rates\n\n";
  Printf.printf "%-10s %-10s %-28s %-9s %s\n" "rate" "injected" "outcome"
    "retries" "output";
  List.iter
    (fun factor ->
      let inj = Injector.create ~seed:7 ~spec:(Spec.all ~factor ()) in
      let cfg =
        {
          (Config.default ()) with
          Config.injector = Some inj;
          watchdog = Rvi_harness.Faults.default_watchdog;
        }
      in
      let row = Runner.adpcm_vim cfg ~input in
      let outcome =
        match row.Report.outcome with
        | Report.Measured -> "measured"
        | Report.Degraded _ -> "degraded to software"
        | Report.Exceeds_memory -> "exceeds memory"
        | Report.Failed m -> "FAILED: " ^ m
      in
      Printf.printf "x%-9.1f %-10d %-28s %-9d %s\n" factor
        (Injector.injected_total inj)
        outcome row.Report.retries
        (if row.Report.verified then "bit-exact" else "WRONG")
    )
    [ 0.0; 1.0; 10.0; 100.0 ];
  (* A short campaign: the same machinery, classified over many seeds. *)
  Printf.printf "\n60-run campaign at default rates (seed 2004):\n";
  let results = Rvi_harness.Faults.campaign ~runs:60 ~seed:2004 () in
  let s = Rvi_harness.Faults.summarize results in
  Rvi_harness.Faults.print_summary Format.std_formatter s;
  if not (Rvi_harness.Faults.passed s) then exit 1
