lib/core/vhdl_gen.mli: Imu Rvi_fpga Rvi_hw
