(** Page prefetching (paper §3.3, §4.1).

    "Speculative actions as prefetching could be used in order to avoid
    translation misses". The predictor runs inside the fault handler: when
    an object carrying the stream hint faults on page [v], the next [depth]
    pages are loaded into any *free* frames in the same service — saving
    their future fault round-trips (interrupt entry, decode, resume). The
    prefetcher never evicts on speculation. *)

type t = Off | Sequential of { depth : int }

val off : t
val sequential : depth:int -> t
(** Raises [Invalid_argument] if [depth < 1]. *)

val name : t -> string

val predict : t -> stream:bool -> vpn:int -> last_vpn:int -> int list
(** Virtual pages to fetch speculatively after a fault on [vpn] of an
    object whose last page is [last_vpn]. Empty when disabled, when the
    object lacks the stream hint, or at the end of the object. *)
