lib/core/frame_table.mli:
