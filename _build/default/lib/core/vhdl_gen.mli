(** VHDL skeleton generation for the virtualisation interface.

    §2 of the paper: "an appropriately augmented OS, a compiler, and a
    synthesiser must be sufficient to port the accelerated application
    across different systems". The synthesis side starts from interface
    declarations; this module emits them so a hardware designer targets
    exactly the simulated contract:

    - the portable coprocessor entity with the Figure 4 [CP_*] port
      (identical on every platform);
    - the platform-specific IMU entity, its generics derived from a
      device/bit-stream pair (page geometry, TLB depth, CAM latency);
    - a top-level "stripe" wrapper instantiating both and exposing the
      dual-port-RAM pins;
    - a package with the shared constants.

    Output is plain VHDL-93 text; tests check its structure, and it gives
    downstream users a synthesisable starting point that matches the
    simulation bit for bit at the interface. *)

type design = {
  name : string;  (** coprocessor entity name, e.g. ["idea_core"] *)
  device : Rvi_fpga.Device.t;
  imu_config : Imu.config;
  data_width : int;  (** widest coprocessor access in bits (8/16/32) *)
}

val make :
  name:string ->
  device:Rvi_fpga.Device.t ->
  ?imu_config:Imu.config ->
  ?data_width:int ->
  unit ->
  design
(** Defaults: the 4-cycle IMU, 32-bit data. Raises [Invalid_argument] for
    an empty or non-identifier name or an unsupported width. *)

val package_vhdl : design -> string
(** [<name>_vif_pkg]: address widths, object-id width, page constants. *)

val coproc_entity_vhdl : design -> string
(** The portable entity declaration the coprocessor designer fills in. *)

val imu_entity_vhdl : design -> string
(** The platform-specific IMU entity with TLB generics and the dual-port
    RAM pins of Figure 4. *)

val toplevel_vhdl : design -> string
(** The stripe wrapper instantiating the IMU and the coprocessor. *)

val emit_all : design -> (string * string) list
(** [(filename, contents)] for the four units, in compile order. *)

val testbench_vhdl : ?max_cycles:int -> design -> wave:Rvi_hw.Wave.t -> string
(** A self-checking VHDL testbench generated from a golden-model capture
    (e.g. {!Rvi_harness.Platform.trace} of a verified run): one process
    replays the coprocessor-side stimulus cycle by cycle and asserts the
    IMU-side responses ([CP_TLBHIT], [CP_DIN], [CP_START]) against the
    recorded values. This is how the simulated model hands co-simulation
    vectors to an RTL flow. At most [max_cycles] (default 4096) leading
    cycles are emitted. *)
