lib/core/cp_port.mli: Rvi_hw
