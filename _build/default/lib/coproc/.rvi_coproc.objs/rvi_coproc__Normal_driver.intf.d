lib/coproc/normal_driver.mli: Coproc Dport Rvi_core Rvi_mem Rvi_os Rvi_sim
