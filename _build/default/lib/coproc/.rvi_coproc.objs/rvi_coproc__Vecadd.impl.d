lib/coproc/vecadd.ml: Array Coproc Mem_port Printf Rvi_core Rvi_hw Rvi_sim Vport
