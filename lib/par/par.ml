let recommended_domains () = Domain.recommended_domain_count ()

let default_chunk ~domains n =
  if domains <= 1 then Stdlib.max 1 n
  else Stdlib.max 1 ((n + (4 * domains) - 1) / (4 * domains))

let shard_of_index ~chunk i =
  if chunk <= 0 then invalid_arg "Par.shard_of_index: non-positive chunk";
  i / chunk

(* One slot per item. [Error] keeps the first exception of that index so
   the lowest-indexed failure wins, exactly as it would serially. *)
type 'b slot = Empty | Done of 'b | Raised of exn

let mapi ?(domains = 1) ?chunk f items =
  let n = List.length items in
  let domains = Stdlib.min (Stdlib.max 1 domains) (Stdlib.max 1 n) in
  let chunk =
    match chunk with
    | None -> default_chunk ~domains n
    | Some c ->
      if c <= 0 then invalid_arg "Par.map: non-positive chunk";
      c
  in
  if domains = 1 then List.mapi f items
  else begin
    let arr = Array.of_list items in
    let slots = Array.make n Empty in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let start = Atomic.fetch_and_add next chunk in
        if start >= n then continue := false
        else
          for i = start to Stdlib.min n (start + chunk) - 1 do
            slots.(i) <-
              (match f i arr.(i) with
              | v -> Done v
              | exception e -> Raised e)
          done
      done
    in
    let spawned = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    (* Scan low index first so the re-raised exception is the one the
       serial path would have raised. *)
    Array.iter (function Raised e -> raise e | _ -> ()) slots;
    Array.to_list
      (Array.map
         (function
           | Done v -> v
           | Raised _ | Empty -> assert false (* every index claimed once *))
         slots)
  end

let map ?domains ?chunk f items = mapi ?domains ?chunk (fun _ x -> f x) items

let map_merge ?domains ?chunk ~f ~merge init items =
  List.fold_left merge init (map ?domains ?chunk f items)

(* Persistent worker domains. [Domain.spawn] costs milliseconds (a fresh
   minor heap, a new systhread); a campaign that calls [map] hundreds of
   times was paying that on every call. The pool spawns [domains - 1]
   workers once; each [run] hands every worker the same self-scheduling
   job closure (the exact chunk-claiming loop of [mapi], so results stay
   a pure function of the input list), the submitting domain participates
   as the last worker, and a generation counter plus two condition
   variables sequence job start and completion. *)
module Pool = struct
  type t = {
    domains : int;
    mutable workers : unit Domain.t list;
    m : Mutex.t;
    start : Condition.t;  (* a new generation (or shutdown) is visible *)
    finished : Condition.t;  (* a worker retired from the current job *)
    mutable job : (unit -> unit) option;
    mutable generation : int;
    mutable active : int;  (* workers still inside the current job *)
    mutable stopping : bool;
  }

  let worker_loop t =
    let seen = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock t.m;
      while (not t.stopping) && t.generation = !seen do
        Condition.wait t.start t.m
      done;
      if t.stopping then begin
        Mutex.unlock t.m;
        running := false
      end
      else begin
        seen := t.generation;
        let job = Option.get t.job in
        Mutex.unlock t.m;
        (* Jobs trap per-item exceptions into result slots themselves; a
           raise here would mean a bug in the pool, not in [f]. *)
        job ();
        Mutex.lock t.m;
        t.active <- t.active - 1;
        if t.active = 0 then Condition.broadcast t.finished;
        Mutex.unlock t.m
      end
    done

  let create ?domains () =
    let domains =
      match domains with
      | None -> recommended_domains ()
      | Some d -> Stdlib.max 1 d
    in
    let t =
      {
        domains;
        workers = [];
        m = Mutex.create ();
        start = Condition.create ();
        finished = Condition.create ();
        job = None;
        generation = 0;
        active = 0;
        stopping = false;
      }
    in
    t.workers <- List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
    t

  let domains t = t.domains

  (* Only callable from the domain that created the pool, one job at a
     time — exactly the campaign drivers' usage. *)
  let run t job =
    if t.stopping then invalid_arg "Par.Pool.run: pool is shut down";
    Mutex.lock t.m;
    t.job <- Some job;
    t.generation <- t.generation + 1;
    t.active <- List.length t.workers;
    Condition.broadcast t.start;
    Mutex.unlock t.m;
    job ();
    Mutex.lock t.m;
    while t.active > 0 do
      Condition.wait t.finished t.m
    done;
    t.job <- None;
    Mutex.unlock t.m

  let mapi t ?chunk f items =
    let n = List.length items in
    let chunk =
      match chunk with
      | None -> default_chunk ~domains:t.domains n
      | Some c ->
        if c <= 0 then invalid_arg "Par.Pool.map: non-positive chunk";
        c
    in
    if t.domains = 1 || n <= 1 then List.mapi f items
    else begin
      let arr = Array.of_list items in
      let slots = Array.make n Empty in
      let next = Atomic.make 0 in
      let job () =
        let continue = ref true in
        while !continue do
          let start = Atomic.fetch_and_add next chunk in
          if start >= n then continue := false
          else
            for i = start to Stdlib.min n (start + chunk) - 1 do
              slots.(i) <-
                (match f i arr.(i) with
                | v -> Done v
                | exception e -> Raised e)
            done
        done
      in
      run t job;
      Array.iter (function Raised e -> raise e | _ -> ()) slots;
      Array.to_list
        (Array.map
           (function Done v -> v | Raised _ | Empty -> assert false)
           slots)
    end

  let map t ?chunk f items = mapi t ?chunk (fun _ x -> f x) items

  let shutdown t =
    if not t.stopping then begin
      Mutex.lock t.m;
      t.stopping <- true;
      Condition.broadcast t.start;
      Mutex.unlock t.m;
      List.iter Domain.join t.workers;
      t.workers <- []
    end

  (* Process-wide pool for the campaign drivers: recreated only when the
     requested width changes, so back-to-back campaigns reuse the same
     domains. *)
  let shared_pool = ref None
  let shared_m = Mutex.create ()

  let shared ~domains =
    let domains = Stdlib.max 1 domains in
    Mutex.lock shared_m;
    let t =
      match !shared_pool with
      | Some t when t.domains = domains && not t.stopping -> t
      | prev ->
        (match prev with Some t -> shutdown t | None -> ());
        let t = create ~domains () in
        shared_pool := Some t;
        t
    in
    Mutex.unlock shared_m;
    t
end
