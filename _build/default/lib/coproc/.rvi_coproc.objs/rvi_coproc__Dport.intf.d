lib/coproc/dport.mli: Mem_port Rvi_mem
