lib/harness/workload.ml: Array Bytes Char Float Rvi_coproc Rvi_sim
