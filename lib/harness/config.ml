type imu_kind = Four_cycle | Pipelined

let imu_kind_name = function
  | Four_cycle -> "4-cycle"
  | Pipelined -> "pipelined"

type t = {
  device : Rvi_fpga.Device.t;
  policy : unit -> Rvi_core.Policy.t;
  policy_name : string;
  transfer : Rvi_core.Vim.transfer_mode;
  prefetch : Rvi_core.Prefetch.t;
  overlap_prefetch : bool;
  copy_engine : Rvi_core.Vim.copy_engine;
  eager_mapping : bool;
  imu_kind : imu_kind;
  tlb_entries : int option;
  tlb_organization : Rvi_core.Tlb.organization;
  translation : Rvi_core.Translation_mode.t;
  seed : int;
  trace : Rvi_obs.Trace.t option;
  injector : Rvi_inject.Injector.t option;
  recovery : Rvi_core.Vim.recovery;
  watchdog : Rvi_sim.Simtime.t;
  exec_retries : int;
}

let default () =
  {
    device = Rvi_fpga.Device.epxa1;
    policy = Rvi_core.Policy.fifo;
    policy_name = "fifo";
    transfer = Rvi_core.Vim.Double;
    prefetch = Rvi_core.Prefetch.off;
    overlap_prefetch = false;
    copy_engine = Rvi_core.Vim.Cpu;
    eager_mapping = true;
    imu_kind = Four_cycle;
    tlb_entries = None;
    tlb_organization = Rvi_core.Tlb.Fully_associative;
    translation = Rvi_core.Translation_mode.Paper_objects;
    seed = 42;
    trace = None;
    injector = None;
    recovery = Rvi_core.Vim.default_recovery;
    watchdog = Rvi_sim.Simtime.of_ms 30_000;
    exec_retries = 2;
  }

let with_policy t name =
  match Rvi_core.Policy.of_name ~seed:t.seed name with
  | Some _ ->
    {
      t with
      policy = (fun () -> Option.get (Rvi_core.Policy.of_name ~seed:t.seed name));
      policy_name = name;
    }
  | None -> invalid_arg (Printf.sprintf "Config.with_policy: unknown policy %S" name)

let describe t =
  Printf.sprintf "%s, %s, %s transfer, prefetch %s, %s IMU, TLB %s%s"
    t.device.Rvi_fpga.Device.name t.policy_name
    (match t.transfer with Rvi_core.Vim.Single -> "single" | Rvi_core.Vim.Double -> "double")
    (Rvi_core.Prefetch.name t.prefetch)
    (imu_kind_name t.imu_kind)
    (match t.tlb_entries with None -> "full" | Some n -> string_of_int n)
    (match t.translation with
    | Rvi_core.Translation_mode.Paper_objects -> ""
    | Rvi_core.Translation_mode.Iommu_sva -> ", iommu-sva")

let n_pages t = t.device.Rvi_fpga.Device.dpram_bytes / t.device.Rvi_fpga.Device.page_size

let imu_config t =
  let tlb_entries = Option.value t.tlb_entries ~default:(n_pages t) in
  let base =
    match t.imu_kind with
    | Four_cycle -> Rvi_core.Imu.default_config
    | Pipelined -> Rvi_core.Imu.pipelined_config
  in
  {
    base with
    Rvi_core.Imu.tlb_entries;
    tlb_organization = t.tlb_organization;
    translation = t.translation;
  }

let vim_config t =
  {
    Rvi_core.Vim.policy = t.policy ();
    transfer = t.transfer;
    prefetch = t.prefetch;
    overlap_prefetch = t.overlap_prefetch;
    copy_engine = t.copy_engine;
    eager_mapping = t.eager_mapping;
    watchdog = t.watchdog;
    injector = t.injector;
    recovery = t.recovery;
  }
