type kind =
  | Dpram_flip
  | Ahb_error
  | Dma_error
  | Tlb_corrupt
  | Coproc_hang
  | Coproc_wrong
  | Irq_lost
  | Irq_spurious

let all =
  [
    Dpram_flip;
    Ahb_error;
    Dma_error;
    Tlb_corrupt;
    Coproc_hang;
    Coproc_wrong;
    Irq_lost;
    Irq_spurious;
  ]

(* Dense index for per-kind tables on the injector's hot path. *)
let index = function
  | Dpram_flip -> 0
  | Ahb_error -> 1
  | Dma_error -> 2
  | Tlb_corrupt -> 3
  | Coproc_hang -> 4
  | Coproc_wrong -> 5
  | Irq_lost -> 6
  | Irq_spurious -> 7

let n_kinds = 8

let name = function
  | Dpram_flip -> "dpram"
  | Ahb_error -> "ahb"
  | Dma_error -> "dma"
  | Tlb_corrupt -> "tlb"
  | Coproc_hang -> "hang"
  | Coproc_wrong -> "wrong"
  | Irq_lost -> "irq-lost"
  | Irq_spurious -> "irq-spurious"

let of_name s =
  List.find_opt (fun k -> name k = s) all

let describe = function
  | Dpram_flip -> "dual-port RAM single-bit upset (parity-detected)"
  | Ahb_error -> "AHB bus-error response during a kernel page copy"
  | Dma_error -> "DMA channel aborts a transfer"
  | Tlb_corrupt -> "a valid TLB entry is corrupted and dropped by the CAM"
  | Coproc_hang -> "coprocessor stops making progress (watchdog territory)"
  | Coproc_wrong -> "coprocessor writes a corrupted result word"
  | Irq_lost -> "a raised interrupt line is dropped before the CPU sees it"
  | Irq_spurious -> "an interrupt with no pending cause"

let pp ppf k = Format.pp_print_string ppf (name k)
