lib/harness/experiments.mli: Config Format Jobs Report
