module Prng = Rvi_sim.Prng
module Stats = Rvi_sim.Stats

(* Bernoulli draws compare a 30-bit slice of the PRNG stream against a
   precomputed integer threshold: cheap, exact for rate 0 and 1, and
   deterministic across platforms (no float accumulation). *)
let resolution = 1 lsl 30

(* Pre-resolved per-kind state: threshold plus counter handles, so the
   hot [fire] path (every guarded PLD access) neither walks an assoc list
   nor formats counter names. *)
type arm = {
  thr : int;
  c_chances : Stats.counter;
  c_injected : Stats.counter;
}

type t = {
  prng : Prng.t;
  arms : arm option array; (* indexed by Fault.index *)
  spec : Spec.t;
  seed : int;
  stats : Stats.t;
  (* Deterministic one-shot events: per kind, the remaining 1-based
     opportunity ordinals at which the fault fires, sorted ascending.
     [opps] counts opportunities seen for kinds with events armed. Event
     hits consume no PRNG state, so the Bernoulli streams of other kinds
     are unaffected by arming events. *)
  events : int list array;
  opps : int array;
  mutable enabled : bool;
  mutable observer : (Fault.kind -> unit) option;
}

let threshold rate =
  if rate >= 1.0 then resolution
  else if rate <= 0.0 then 0
  else int_of_float (rate *. float_of_int resolution)

let create ~seed ~spec =
  let stats = Stats.create () in
  let arms = Array.make Fault.n_kinds None in
  List.iter
    (fun r ->
      let kind = r.Spec.kind in
      arms.(Fault.index kind) <-
        Some
          {
            thr = threshold r.Spec.rate;
            c_chances =
              Stats.counter stats
                (Printf.sprintf "chances_%s" (Fault.name kind));
            c_injected =
              Stats.counter stats
                (Printf.sprintf "injected_%s" (Fault.name kind));
          })
    spec;
  {
    prng = Prng.create ~seed;
    arms;
    spec;
    seed;
    stats;
    events = Array.make Fault.n_kinds [];
    opps = Array.make Fault.n_kinds 0;
    enabled = true;
    observer = None;
  }

(* Arm deterministic events. Counter handles are created on demand so an
   event-only kind still shows up in the per-kind statistics. *)
let set_events t evs =
  List.iter
    (fun (kind, n) ->
      if n <= 0 then
        invalid_arg
          (Printf.sprintf "Injector.set_events: ordinal %d for %s (want >= 1)"
             n (Fault.name kind));
      let i = Fault.index kind in
      if t.arms.(i) = None then
        t.arms.(i) <-
          Some
            {
              thr = 0;
              c_chances =
                Stats.counter t.stats
                  (Printf.sprintf "chances_%s" (Fault.name kind));
              c_injected =
                Stats.counter t.stats
                  (Printf.sprintf "injected_%s" (Fault.name kind));
            };
      t.events.(i) <- List.sort_uniq Int.compare (n :: t.events.(i)))
    evs

let pending_events t =
  Array.fold_left (fun acc l -> acc + List.length l) 0 t.events

let seed t = t.seed
let spec t = t.spec
let stats t = t.stats
let set_enabled t b = t.enabled <- b
let enabled t = t.enabled
let set_observer t f = t.observer <- f

(* Event check for one opportunity: counts the opportunity and answers
   whether the head event fires now. Only consulted while events remain
   armed for the kind, so drained kinds pay nothing. *)
let event_fires t i =
  match t.events.(i) with
  | [] -> false
  | n :: rest ->
    t.opps.(i) <- t.opps.(i) + 1;
    if t.opps.(i) = n then begin
      t.events.(i) <- rest;
      true
    end
    else false

let fire t kind =
  let i = Fault.index kind in
  match Array.unsafe_get t.arms i with
  | None -> false
  | Some arm ->
    if not t.enabled then false
    else if event_fires t i then begin
      (* A deterministic hit: counted like a Bernoulli one, but without
         consuming PRNG state (the event replaces this opportunity's
         draw). *)
      Stats.tick arm.c_chances;
      Stats.tick arm.c_injected;
      (match t.observer with Some f -> f kind | None -> ());
      true
    end
    else if arm.thr = 0 then false
    else begin
      Stats.tick arm.c_chances;
      let hit = Prng.next t.prng land (resolution - 1) < arm.thr in
      if hit then begin
        Stats.tick arm.c_injected;
        match t.observer with Some f -> f kind | None -> ()
      end;
      hit
    end

let draw t bound = Prng.int t.prng bound

let injected t kind =
  Stats.get t.stats (Printf.sprintf "injected_%s" (Fault.name kind))

let injected_total t =
  List.fold_left (fun acc k -> acc + injected t k) 0 Fault.all
