lib/coproc/vport.mli: Mem_port Rvi_core Rvi_sim
