(** The runtime fault injector.

    One injector is shared by every hardware model of a platform (dual-port
    RAM, interrupt controller, IMU) and by the VIM. At each injection
    opportunity the owning component calls {!fire}; the injector draws from
    its own seeded PRNG stream and answers whether the fault happens now.

    Determinism: the outcome of a run is a pure function of the injector
    seed, the specification and the workload — the injector never consults
    wall-clock time or global randomness, so campaigns replay bit-identically
    from their seed. *)

type t

val create : seed:int -> spec:Spec.t -> t

val seed : t -> int
val spec : t -> Spec.t

val fire : t -> Fault.kind -> bool
(** One injection opportunity. [true] means the caller must inject the
    fault now. Kinds with no rule (or rate 0) never fire and consume no
    PRNG state, so disabling a kind does not shift the others' streams. *)

val set_events : t -> (Fault.kind * int) list -> unit
(** Arm deterministic one-shot events: [(kind, n)] makes {!fire} answer
    [true] at the [n]-th injection opportunity (1-based) for [kind],
    regardless of any Bernoulli rule. An event hit consumes no PRNG state
    — background rate streams replay identically with or without events
    armed on other kinds. Duplicate ordinals for one kind collapse;
    ordinals must be >= 1 ([Invalid_argument] otherwise). The scenario
    harness uses this to replay shrunk fault schedules exactly. *)

val pending_events : t -> int
(** Events armed but not yet fired. *)

val draw : t -> int -> int
(** Uniform in [0, bound): pick which bit to flip, which TLB slot to
    corrupt, ... Raises [Invalid_argument] if [bound <= 0]. *)

val set_enabled : t -> bool -> unit
(** Disarm ([false]) or re-arm the injector; while disarmed {!fire} always
    answers [false] without consuming PRNG state. *)

val enabled : t -> bool

val set_observer : t -> (Fault.kind -> unit) option -> unit
(** Called once per injected fault — the observability layer uses it to
    timestamp injections. *)

val stats : t -> Rvi_sim.Stats.t
(** Per-kind counters: ["chances_<kind>"] (opportunities seen) and
    ["injected_<kind>"]. *)

val injected : t -> Fault.kind -> int
val injected_total : t -> int
