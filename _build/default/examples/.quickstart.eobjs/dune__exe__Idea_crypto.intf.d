examples/idea_crypto.mli:
