module Jobs = Rvi_harness.Jobs

type t = Fcfs | Grouped | Wfq

let all = [ Fcfs; Grouped; Wfq ]
let name = function Fcfs -> "fcfs" | Grouped -> "grouped" | Wfq -> "wfq"

let of_name = function
  | "fcfs" -> Some Fcfs
  | "grouped" -> Some Grouped
  | "wfq" -> Some Wfq
  | _ -> None

let preemptive = function Wfq -> true | Fcfs | Grouped -> false

type candidate = {
  c_station : int;
  c_kind : Jobs.app_kind;
  c_tenant : int;
  c_vtime : float;
  c_seq : int;
  c_age_us : float;
  c_parked : bool;
}

(* Total orders. Every comparison bottoms out on [c_seq], which is
   unique, so selection is deterministic whatever the candidate order. *)

let by_seq a b = compare a.c_seq b.c_seq

let by_vtime a b =
  match compare a.c_vtime b.c_vtime with 0 -> by_seq a b | c -> c

let minimum cmp = function
  | [] -> None
  | x :: rest ->
    Some (List.fold_left (fun best c -> if cmp c best < 0 then c else best) x rest)

let select policy ~loaded ~reconfig_bias_us ~age_limit_us candidates =
  match candidates with
  | [] -> None
  | _ -> (
    let resident c = loaded = Some c.c_kind in
    match policy with
    | Fcfs -> minimum by_seq candidates
    | Grouped -> (
      (* Batch by bit-stream: finish the resident kind's backlog before
         paying a reconfiguration — the [Jobs] grouping result turned
         into an online rule. The aging escape bounds the starvation
         that rule invites under a sustained resident-kind load: once
         the globally oldest candidate has waited past the limit it
         runs regardless of residency. *)
      match minimum by_seq candidates with
      | Some oldest when oldest.c_age_us > age_limit_us -> Some oldest
      | oldest -> (
        match minimum by_seq (List.filter resident candidates) with
        | Some c -> Some c
        | None -> oldest))
    | Wfq -> (
      match minimum by_vtime candidates with
      | None -> None
      | Some best ->
        if resident best then Some best
        else
          (* Reconfiguration-cost awareness: a resident-kind candidate
             within one configuration's worth of virtual time of the
             fair-share winner runs first — the fairness debt is smaller
             than the reconfiguration it avoids. *)
          let near c = c.c_vtime <= best.c_vtime +. reconfig_bias_us in
          (match
             minimum by_vtime
               (List.filter (fun c -> resident c && near c) candidates)
           with
          | Some c -> Some c
          | None -> Some best)))
