module Cp_port = Rvi_core.Cp_port

let obj_in = 0
let obj_coeff = 1
let obj_out = 2
let mac_cycles_per_tap = 1

let params ~n_out ~taps ~shift = [ n_out; taps; shift ]

let sat16 v = if v < -32768 then -32768 else if v > 32767 then 32767 else v
let to_s16 u = if u land 0x8000 <> 0 then (u land 0xFFFF) - 0x10000 else u land 0xFFFF

module Make (P : Mem_port.S) = struct
  type state =
    | Wait_start
    | Read_param of int
    | Wait_param of int
    | Load_coeff of int
    | Wait_coeff of int
    | Fill_window of int (* samples read so far *)
    | Wait_fill of int
    | Fetch of int (* output index: read x[i + taps - 1] *)
    | Wait_sample of int
    | Mac of { out_index : int; tap : int; acc : int }
    | Wait_write of int
    | Done

  let show = function
    | Wait_start -> "wait_start"
    | Read_param i -> Printf.sprintf "rd_param[%d]" i
    | Wait_param i -> Printf.sprintf "wait_param[%d]" i
    | Load_coeff i -> Printf.sprintf "ld_coeff[%d]" i
    | Wait_coeff i -> Printf.sprintf "wait_coeff[%d]" i
    | Fill_window i -> Printf.sprintf "fill[%d]" i
    | Wait_fill i -> Printf.sprintf "wait_fill[%d]" i
    | Fetch i -> Printf.sprintf "fetch[%d]" i
    | Wait_sample i -> Printf.sprintf "wait_x[%d]" i
    | Mac { out_index; tap; _ } -> Printf.sprintf "mac[%d.%d]" out_index tap
    | Wait_write i -> Printf.sprintf "wait_wr[%d]" i
    | Done -> "done"

  type m = {
    port : P.t;
    fsm : state Rvi_hw.Fsm.t;
    mutable n_out : int;
    mutable taps : int;
    mutable shift : int;
    coeffs : int array; (* register file *)
    window : int array; (* sliding sample window *)
    stats : Rvi_sim.Stats.t;
    c_cycles : Rvi_sim.Stats.counter;
    c_outputs : Rvi_sim.Stats.counter;
  }

  let read16 m ~obj ~index =
    P.issue m.port ~region:obj ~addr:(2 * index) ~wr:false ~width:Cp_port.W16
      ~data:0

  (* Wait states are unbounded no-ops behind a quiescent port. A [Mac] in
     progress exposes its remaining single-tap cycles: the serial MAC's
     inputs (coefficient file and sample window) are frozen while it runs,
     so [skip] can accumulate the absorbed taps wholesale — same partial
     sums, same cycle count, one executed edge per output instead of one
     per tap. The final tap must execute (it posts the result write). *)
  let idle_hint m =
    if not (P.quiescent m.port) then 0
    else
      match Rvi_hw.Fsm.state m.fsm with
      | Wait_start | Wait_param _ | Wait_coeff _ | Wait_fill _
      | Wait_sample _ | Wait_write _ | Done ->
        max_int
      | Read_param _ | Load_coeff _ | Fill_window _ | Fetch _ -> 0
      | Mac { tap; _ } -> m.taps - 1 - tap

  let skip m k =
    Rvi_sim.Stats.tick_by m.c_cycles k;
    match Rvi_hw.Fsm.state m.fsm with
    | Mac { out_index; tap; acc } ->
      let acc = ref acc in
      for j = tap to tap + k - 1 do
        acc := !acc + (m.coeffs.(j) * m.window.(j))
      done;
      Rvi_hw.Fsm.fast_forward m.fsm ~transitions:k
        (Mac { out_index; tap = tap + k; acc = !acc })
    | _ -> ()

  let compute m =
    P.sample m.port;
    Rvi_sim.Stats.tick m.c_cycles;
    match Rvi_hw.Fsm.state m.fsm with
    | Wait_start ->
      if P.start_seen m.port then Rvi_hw.Fsm.goto m.fsm (Read_param 0)
      else Rvi_hw.Fsm.stay m.fsm
    | Read_param i ->
      Mem_port.read_param
        ~issue:(fun ~region ~addr ->
          P.issue m.port ~region ~addr ~wr:false ~width:Cp_port.W32 ~data:0)
        ~index:i;
      Rvi_hw.Fsm.goto m.fsm (Wait_param i)
    | Wait_param i ->
      if P.ready m.port then begin
        (match i with
        | 0 -> m.n_out <- P.data m.port
        | 1 -> m.taps <- P.data m.port
        | _ -> m.shift <- P.data m.port);
        if i < 2 then Rvi_hw.Fsm.goto m.fsm (Read_param (i + 1))
        else if m.n_out = 0 || m.taps = 0 || m.taps > Fir_ref.max_taps then begin
          P.finish m.port;
          Rvi_hw.Fsm.goto m.fsm Done
        end
        else Rvi_hw.Fsm.goto m.fsm (Load_coeff 0)
      end
      else Rvi_hw.Fsm.stay m.fsm
    | Load_coeff i ->
      read16 m ~obj:obj_coeff ~index:i;
      Rvi_hw.Fsm.goto m.fsm (Wait_coeff i)
    | Wait_coeff i ->
      if P.ready m.port then begin
        m.coeffs.(i) <- to_s16 (P.data m.port);
        if i + 1 < m.taps then Rvi_hw.Fsm.goto m.fsm (Load_coeff (i + 1))
        else Rvi_hw.Fsm.goto m.fsm (Fill_window 0)
      end
      else Rvi_hw.Fsm.stay m.fsm
    | Fill_window i ->
      if i = m.taps - 1 then Rvi_hw.Fsm.goto m.fsm (Fetch 0)
      else begin
        read16 m ~obj:obj_in ~index:i;
        Rvi_hw.Fsm.goto m.fsm (Wait_fill i)
      end
    | Wait_fill i ->
      if P.ready m.port then begin
        m.window.(i) <- to_s16 (P.data m.port);
        Rvi_hw.Fsm.goto m.fsm (Fill_window (i + 1))
      end
      else Rvi_hw.Fsm.stay m.fsm
    | Fetch i ->
      read16 m ~obj:obj_in ~index:(i + m.taps - 1);
      Rvi_hw.Fsm.goto m.fsm (Wait_sample i)
    | Wait_sample i ->
      if P.ready m.port then begin
        m.window.(m.taps - 1) <- to_s16 (P.data m.port);
        Rvi_hw.Fsm.goto m.fsm (Mac { out_index = i; tap = 0; acc = 0 })
      end
      else Rvi_hw.Fsm.stay m.fsm
    | Mac { out_index; tap; acc } ->
      (* One multiply-accumulate per cycle through the serial MAC. *)
      let acc = acc + (m.coeffs.(tap) * m.window.(tap)) in
      if tap + 1 < m.taps then
        Rvi_hw.Fsm.goto m.fsm (Mac { out_index; tap = tap + 1; acc })
      else begin
        let y = sat16 (acc asr m.shift) land 0xFFFF in
        P.issue m.port ~region:obj_out ~addr:(2 * out_index) ~wr:true
          ~width:Cp_port.W16 ~data:y;
        Rvi_sim.Stats.tick m.c_outputs;
        Rvi_hw.Fsm.goto m.fsm (Wait_write out_index)
      end
    | Wait_write i ->
      if P.ready m.port then
        if i + 1 < m.n_out then begin
          (* Slide the window by one sample. *)
          Array.blit m.window 1 m.window 0 (m.taps - 1);
          Rvi_hw.Fsm.goto m.fsm (Fetch (i + 1))
        end
        else begin
          P.finish m.port;
          Rvi_hw.Fsm.goto m.fsm Done
        end
      else Rvi_hw.Fsm.stay m.fsm
    | Done ->
      if P.start_seen m.port then Rvi_hw.Fsm.goto m.fsm (Read_param 0)
      else Rvi_hw.Fsm.stay m.fsm

  let create port =
    let stats = Rvi_sim.Stats.create () in
    let m =
      {
        port;
        fsm = Rvi_hw.Fsm.create ~name:"fir" ~init:Wait_start ~show;
        n_out = 0;
        taps = 0;
        shift = 0;
        coeffs = Array.make Fir_ref.max_taps 0;
        window = Array.make Fir_ref.max_taps 0;
        stats;
        c_cycles = Rvi_sim.Stats.counter stats "cycles";
        c_outputs = Rvi_sim.Stats.counter stats "outputs";
      }
    in
    {
      Coproc.name = "fir";
      component =
        Rvi_sim.Clock.component ~name:"fir"
          ~idle_hint:(fun () -> idle_hint m)
          ~skip:(fun k -> skip m k)
          ~compute:(fun () -> compute m)
          ~commit:(fun () ->
            Rvi_hw.Fsm.commit m.fsm;
            P.commit m.port)
            ();
      finished = (fun () -> Rvi_hw.Fsm.state m.fsm = Done);
      reset =
        (fun () ->
          Rvi_hw.Fsm.reset m.fsm Wait_start;
          P.reset m.port);
      stats = m.stats;
    }
end

module Virtual = struct
  module M = Make (Vport)

  let create port =
    let vport = Vport.create port in
    (vport, M.create vport)
end
