lib/harness/runner.ml: Array Bytes Calibration Char Config List Platform Printf Report Rvi_coproc Rvi_core Rvi_fpga Rvi_mem Rvi_os Rvi_sim
