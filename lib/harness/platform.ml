module Clock = Rvi_sim.Clock
module Kernel = Rvi_os.Kernel
module Device = Rvi_fpga.Device

type t = {
  engine : Rvi_sim.Engine.t;
  kernel : Rvi_os.Kernel.t;
  dpram : Rvi_mem.Dpram.t;
  pld : Rvi_fpga.Pld.t;
  port : Rvi_core.Cp_port.t;
  imu : Rvi_core.Imu.t;
  clock : Rvi_sim.Clock.t;
  vim : Rvi_core.Vim.t;
  api : Rvi_core.Api.t;
  vport : Rvi_coproc.Vport.t;
  coproc : Rvi_coproc.Coproc.t;
  proc : Rvi_os.Proc.t;
}

let create ?(app_name = "app") ?(sdram_bytes = 4 * 1024 * 1024) (cfg : Config.t)
    ~bitstream ~make =
  let engine = Rvi_sim.Engine.create () in
  let cost =
    Rvi_os.Cost_model.default ~cpu_freq_hz:cfg.Config.device.Device.cpu_freq_hz
  in
  let kernel = Kernel.create ~engine ~cost ~sdram_bytes () in
  (match cfg.Config.trace with
  | Some _ as tr -> Kernel.set_trace kernel tr
  | None -> ());
  let dpram = Rvi_mem.Dpram.create (Device.geometry cfg.Config.device) in
  let pld = Rvi_fpga.Pld.create cfg.Config.device in
  let port = Rvi_core.Cp_port.create () in
  let imu =
    Rvi_core.Imu.create ~config:(Config.imu_config cfg) ~port ~dpram
      ~raise_irq:(fun () -> Rvi_os.Irq.raise_line (Kernel.irq kernel) ~line:0)
      ()
  in
  let clock =
    Clock.create engine ~name:"pld"
      ~freq_hz:bitstream.Rvi_fpga.Bitstream.imu_freq_hz
  in
  let vim =
    Rvi_core.Vim.create ~kernel ~dpram ~imu ~ahb:cfg.Config.device.Device.ahb
      ~clocks:[ clock ] (Config.vim_config cfg)
  in
  (match cfg.Config.injector with
  | Some inj ->
    (* One injector drives every hardware boundary of the platform, so a
       single seed reproduces the whole fault schedule. *)
    Rvi_mem.Dpram.set_injector dpram (Some inj);
    Rvi_os.Irq.set_injector (Kernel.irq kernel) (Some inj);
    Rvi_core.Imu.set_injector imu (Some inj);
    (match cfg.Config.trace with
    | Some tr ->
      Rvi_inject.Injector.set_observer inj
        (Some
           (fun k ->
             Rvi_obs.Trace.emit tr ~at:(Kernel.now kernel)
               (Rvi_obs.Trace.Inject { fault = Rvi_inject.Fault.name k })))
    | None -> ())
  | None -> ());
  let api = Rvi_core.Api.install ~kernel ~vim ~pld in
  let vport, coproc = make port in
  Rvi_core.Vim.set_abort_hook vim (fun () ->
      Rvi_core.Cp_port.reset port;
      Rvi_coproc.Vport.reset vport;
      coproc.Rvi_coproc.Coproc.reset ());
  let divide = bitstream.Rvi_fpga.Bitstream.coproc_divide in
  if divide = 1 then
    (* Everything ticks at the IMU rate: collapse the whole pipeline
       (IMU, bus wrapper, coprocessor) into one slot — identical edge
       order, one dispatch per edge instead of three. *)
    Clock.add clock
      (Rvi_coproc.Vport.fused_component vport ~imu
         coproc.Rvi_coproc.Coproc.component)
  else begin
    Clock.add clock (Rvi_core.Imu.component imu);
    Clock.add clock (Rvi_coproc.Vport.sync_component vport);
    Clock.add clock ~divide coproc.Rvi_coproc.Coproc.component
  end;
  let sched = Kernel.sched kernel in
  let proc = Rvi_os.Sched.spawn sched ~name:app_name in
  ignore (Rvi_os.Sched.schedule sched);
  { engine; kernel; dpram; pld; port; imu; clock; vim; api; vport; coproc; proc }

(* In-place re-arm of a pooled platform: scrub every component back to its
   power-on image (timeline rewound to zero, memories zeroed, counters
   zeroed with hot-path handles kept) and re-attach the per-run bindings
   (trace sink, injector, VIM configuration) exactly as [create] does. The
   contract — asserted by a qcheck property in the test suite — is that a
   run on a reset platform produces a byte-identical report and trace to
   the same run on a freshly created platform. Structure (device geometry,
   bit-stream wiring, registered clock components, spawned process) is
   reused, which is the point: a campaign run stops paying a 4 MB zeroed
   SDRAM allocation plus full platform construction per run. *)
let reset t (cfg : Config.t) =
  if Config.imu_config cfg <> Rvi_core.Imu.config t.imu then
    invalid_arg "Platform.reset: IMU/TLB configuration differs from creation";
  if Device.geometry cfg.Config.device <> Rvi_mem.Dpram.geometry t.dpram then
    invalid_arg "Platform.reset: device geometry differs from creation";
  Rvi_sim.Engine.reset t.engine;
  Clock.reset t.clock;
  Kernel.reset t.kernel;
  Rvi_mem.Dpram.reset t.dpram;
  Rvi_fpga.Pld.reset t.pld;
  Rvi_core.Cp_port.reset t.port;
  Rvi_coproc.Vport.reset t.vport;
  t.coproc.Rvi_coproc.Coproc.reset ();
  (* After the port: the IMU re-latches the quiescent CP_FIN level. *)
  Rvi_core.Imu.reset t.imu;
  Rvi_core.Vim.reset t.vim (Config.vim_config cfg);
  Rvi_core.Api.reset t.api;
  (match cfg.Config.trace with
  | Some _ as tr -> Kernel.set_trace t.kernel tr
  | None -> ());
  (match cfg.Config.injector with
  | Some inj ->
    Rvi_mem.Dpram.set_injector t.dpram (Some inj);
    Rvi_os.Irq.set_injector (Kernel.irq t.kernel) (Some inj);
    Rvi_core.Imu.set_injector t.imu (Some inj);
    (match cfg.Config.trace with
    | Some tr ->
      Rvi_inject.Injector.set_observer inj
        (Some
           (fun k ->
             Rvi_obs.Trace.emit tr ~at:(Kernel.now t.kernel)
               (Rvi_obs.Trace.Inject { fault = Rvi_inject.Fault.name k })))
    | None -> ())
  | None -> ());
  ignore (Rvi_os.Sched.schedule (Kernel.sched t.kernel))

(* A pool of platforms keyed by application name (each application has its
   own bit-stream and coprocessor wiring, so platforms are only
   interchangeable within one key). Never shared across domains: parallel
   campaign shards each hold their own pool in domain-local storage.

   Crash discipline: [acquire] removes the platform from the pool and
   [stash] puts it back, so a run that raises leaves the (possibly wedged)
   platform out of the pool for good — the next run simply builds a fresh
   one. *)
module Pool = struct
  type platform = t
  type t = (string, platform) Hashtbl.t

  let create () : t = Hashtbl.create 8
  let size (pool : t) = Hashtbl.length pool

  let acquire (pool : t) ~key cfg ~create:make_fresh =
    match Hashtbl.find_opt pool key with
    | Some p -> (
      Hashtbl.remove pool key;
      (* A platform that cannot be re-armed (e.g. its process exited) is
         dropped; falling back to construction keeps pooled behaviour a
         strict refinement of the fresh path. *)
      match reset p cfg with
      | () -> p
      | exception _ -> make_fresh ())
    | None -> make_fresh ()

  let stash (pool : t) ~key p = Hashtbl.replace pool key p
  let find (pool : t) ~key = Hashtbl.find_opt pool key
  let clear (pool : t) = Hashtbl.reset pool
end

let alloc t n = Rvi_os.Uspace.alloc t.kernel n
let alloc_bytes t b = Rvi_os.Uspace.of_bytes t.kernel b
let read t buf = Rvi_os.Uspace.read t.kernel buf

let trace t =
  let wave = Rvi_hw.Wave.create () in
  Rvi_hw.Wave.add_signal wave ~name:"clk" ~width:1 (fun () -> 1);
  Rvi_core.Cp_port.probe t.port wave;
  Rvi_hw.Wave.attach wave t.clock;
  wave
