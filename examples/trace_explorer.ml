(* trace_explorer: the analysis tool-chain around a single run.

   Records the coprocessor's page reference string through the IMU's trace
   probe while decoding an ADPCM clip, then answers the questions an OS
   researcher (the paper's conclusion audience) would ask of it:

   - how many faults would LRU take at every possible memory size
     (Mattson stack analysis — one pass, every size at once)?
   - what is the clairvoyant lower bound (Belady's OPT)?
   - how did the shipped FIFO VIM actually do?

   It also dumps the first micro-seconds of the signal-level capture as a
   VCD file for a waveform viewer, a self-checking VHDL testbench
   generated from the same capture, and the structured event trace in both
   exporter formats (Chrome trace_event for Perfetto, JSONL for scripts),
   with a span-level breakdown of where fault-service time went.

   Run with:  dune exec examples/trace_explorer.exe *)

module Platform = Rvi_harness.Platform
module Mrc = Rvi_harness.Mrc
module Trace = Rvi_obs.Trace
module Export = Rvi_obs.Export

let () =
  let cfg =
    {
      (Rvi_harness.Config.default ()) with
      Rvi_harness.Config.trace = Some (Trace.create ());
    }
  in
  let input = Rvi_harness.Workload.adpcm_stream ~seed:11 ~bytes:(8 * 1024) in
  let p =
    Platform.create ~app_name:"explorer" cfg
      ~bitstream:Rvi_harness.Calibration.adpcm_bitstream
      ~make:Rvi_coproc.Adpcm_coproc.Virtual.create
  in
  let collect = Mrc.record p.Platform.imu in
  let wave = Platform.trace p in
  let in_buf = Platform.alloc_bytes p input in
  let out_buf =
    Platform.alloc p (Rvi_coproc.Adpcm_ref.decoded_size (Bytes.length input))
  in
  let ok = function Ok () -> () | Error _ -> failwith "setup failed" in
  ok (Rvi_core.Api.fpga_load p.Platform.api Rvi_harness.Calibration.adpcm_bitstream);
  ok
    (Rvi_core.Api.fpga_map_object p.Platform.api ~id:0 ~buf:in_buf
       ~dir:Rvi_core.Mapped_object.In ~stream:true ());
  ok
    (Rvi_core.Api.fpga_map_object p.Platform.api ~id:1 ~buf:out_buf
       ~dir:Rvi_core.Mapped_object.Out ~stream:true ());
  ok (Rvi_core.Api.fpga_execute p.Platform.api ~params:[ Bytes.length input ]);
  let refs = collect () in
  let frames = Rvi_mem.Dpram.n_pages p.Platform.dpram in
  Printf.printf "recorded %d page references over %d distinct pages\n\n"
    (Array.length refs) (Mrc.distinct_pages refs);
  let lru = Mrc.lru_misses refs ~max_frames:12 in
  Printf.printf "%6s %10s %10s %10s\n" "frames" "LRU" "FIFO" "OPT";
  for k = 1 to 12 do
    Printf.printf "%6d %10d %10d %10d%s\n" k
      lru.(k - 1)
      (Mrc.fifo_misses refs ~frames:k)
      (Mrc.opt_misses refs ~frames:k)
      (if k = frames then "   <- this device" else "")
  done;
  let vim_faults =
    Rvi_sim.Stats.get (Rvi_core.Vim.stats p.Platform.vim) "faults"
  in
  let premapped =
    Rvi_sim.Stats.get (Rvi_core.Vim.stats p.Platform.vim) "premapped"
  in
  Printf.printf
    "\nshipped VIM (eager + FIFO): %d placements (%d pre-mapped + %d faults)\n"
    (premapped + vim_faults) premapped vim_faults;
  (* Signal-level artefacts. *)
  let vcd = Rvi_hw.Wave.to_vcd ~timescale_ps:25_000 wave in
  let oc = open_out "adpcm_capture.vcd" in
  output_string oc vcd;
  close_out oc;
  Printf.printf "\nwrote adpcm_capture.vcd (%d cycles)\n" (Rvi_hw.Wave.length wave);
  let design =
    Rvi_core.Vhdl_gen.make ~name:"adpcmdecode" ~device:cfg.Rvi_harness.Config.device ()
  in
  (* The full capture would be an enormous testbench; take a window. *)
  let tb = Rvi_core.Vhdl_gen.testbench_vhdl ~max_cycles:2000 design ~wave in
  let oc = open_out "adpcmdecode_tb.vhd" in
  output_string oc tb;
  close_out oc;
  Printf.printf "wrote adpcmdecode_tb.vhd (co-simulation vectors)\n";
  (* Structured event trace: both exporter formats, then answer "where did
     the fault-service time go?" from the spans themselves. *)
  match cfg.Rvi_harness.Config.trace with
  | None -> ()
  | Some tr ->
    let events = Trace.events tr in
    Export.write_file "adpcm_trace.json" (Export.to_chrome events);
    Export.write_file "adpcm_trace.jsonl" (Export.to_jsonl events);
    let reread =
      let ic = open_in "adpcm_trace.jsonl" in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Export.of_jsonl s
    in
    Printf.printf
      "wrote adpcm_trace.json (Chrome trace_event; load in Perfetto)\n";
    Printf.printf "wrote adpcm_trace.jsonl (%d events, %d re-read back)\n"
      (List.length events) (List.length reread);
    let us e = Rvi_sim.Simtime.to_us e.Trace.dur in
    let total pred =
      List.fold_left
        (fun acc e -> if pred e.Trace.kind then acc +. us e else acc)
        0.0 events
    in
    let faults =
      List.filter
        (fun e -> match e.Trace.kind with Trace.Fault _ -> true | _ -> false)
        events
    in
    Printf.printf
      "\nfault service from the trace: %d spans, %.1f us total\n\
      \  SWimu decode %.1f us + SWdp copy %.1f us + TLB update %.1f us\n"
      (List.length faults)
      (total (function Trace.Fault _ -> true | _ -> false))
      (total (function Trace.Decode -> true | _ -> false))
      (total (function Trace.Copy _ -> true | _ -> false))
      (total (function Trace.Tlb_update _ -> true | _ -> false));
    match
      List.fold_left
        (fun acc e ->
          match acc with Some w when us w >= us e -> acc | _ -> Some e)
        None faults
    with
    | Some e -> Format.printf "slowest fault: %a@." Trace.pp_event e
    | None -> ()
