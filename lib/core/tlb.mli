(** The IMU's translation look-aside buffer.

    A small fully-associative table (content-addressable memory in the real
    IMU) mapping (object identifier, virtual page number) to a physical
    dual-port-RAM page. Entries carry validity, dirtiness and a hardware
    reference bit/stamp, "like in typical VMM systems" (paper §3.2).

    The hardware side ({!lookup}) is exercised by the IMU on every
    coprocessor access; the software side (insert/invalidate) is driven by
    the VIM over the register interface. *)

type entry = private {
  mutable valid : bool;
  mutable obj_id : int;
  mutable vpn : int;
  mutable ppn : int;  (** physical page inside the dual-port RAM *)
  mutable dirty : bool;  (** set by hardware on a translated write *)
  mutable referenced : bool;  (** set by hardware on any translated access *)
  mutable last_access : int;  (** hardware stamp of the last access *)
}

type organization =
  | Fully_associative
      (** the paper's CAM: any entry can hold any translation *)
  | Direct_mapped  (** entry index = hash(object, page) — smallest area *)
  | Set_associative of int  (** n-way: CAM cells only within a set *)

val organization_name : organization -> string

type t

val create : ?organization:organization -> entries:int -> unit -> t
(** Default {!Fully_associative}. [Set_associative n] requires [n] to
    divide [entries]. *)

val entries : t -> int
val organization : t -> organization

val way_slots : t -> obj_id:int -> vpn:int -> int list
(** The slots allowed to hold this translation under the TLB's
    organisation (all of them for the CAM). Refills must pick among
    these. *)

type lookup = Hit of int (* slot *) | Miss

val lookup : t -> obj_id:int -> vpn:int -> lookup
(** CAM match on the upper address bits. Does not touch usage metadata. *)

val translate : t -> obj_id:int -> vpn:int -> stamp:int -> wr:bool -> int option
(** Hardware access path: on a hit returns the physical page and updates
    the dirty/reference/stamp metadata.

    Internally memoises the slot of the last successful translation (the
    page-run fast path): a streaming access that stays on one page is
    served with three compares instead of a way scan. The memo is dropped
    on every {!insert} and {!invalidate}, so results, metadata updates and
    hit/miss counts are bit-identical to the pure scan — a qcheck property
    in [test_core] pins [translate] against a scan-only reference model. *)

val insert : t -> slot:int -> obj_id:int -> vpn:int -> ppn:int -> stamp:int -> unit
(** Software refill. The entry starts clean and unreferenced, with its
    usage stamp set to [stamp] (the current IMU cycle): a just-refilled
    entry counts as most recently used, so LRU scans do not immediately
    re-victimise the page whose fault was just serviced. *)

val free_slot : t -> int option
(** An invalid slot, if any. *)

val free_way_slot : t -> obj_id:int -> vpn:int -> int option
(** An invalid slot among {!way_slots}, if any. *)

val slot_of_ppn : t -> ppn:int -> int option
(** The valid slot translating to a physical page, if any. *)

val invalidate : t -> slot:int -> unit
val invalidate_all : t -> unit

val get : t -> slot:int -> entry
val clear_referenced : t -> slot:int -> unit

val touch : t -> slot:int -> stamp:int -> wr:bool -> unit
(** Applies the hardware-side access effects to an entry without a scan:
    sets the reference bit and usage stamp, and the dirty bit when [wr].
    Used by the SVA refill paths, where the hardware (L2 hit or walker)
    installs a translation and completes the very access that missed. *)

val mark_dirty : t -> slot:int -> unit
(** Folds write-back state down the hierarchy: marks an entry dirty, as
    when a dirty L1 entry is replaced and its state moves to the L2. *)

val valid_count : t -> int

val stats : t -> Rvi_sim.Stats.t
(** ["hits"], ["misses"], ["refills"], ["invalidations"]. *)

val reset : t -> unit
(** Scrubs every slot back to the power-on image and zeroes the counters
    in place (no ["invalidations"] ticks — this models a hardware reset,
    not software flushing). Used by the platform pool. *)

(** {1 Context save/restore}

    Tenant preemption (the multi-tenant service) swaps the whole CAM
    image with the rest of the IMU context. Neither direction ticks a
    stat counter — a context switch is not software flushing. *)

type image

val save : t -> image
(** A value copy of every slot; the TLB is unchanged. *)

val restore : t -> image -> unit
(** Overwrites every slot from the image (which must come from a TLB of
    the same entry count) and drops the MRU memo. *)
