(** Fault-injection campaigns.

    Runs the paper's applications under a seeded {!Rvi_inject} injector and
    classifies how each run ended: clean, recovered by the VIM/runner
    retry machinery, degraded to the software reference, failed, or
    crashed (an uncaught exception — always a bug). A campaign is a pure
    function of its seed: the master PRNG derives one injector seed per
    run, so the same seed replays identical per-run outcomes. *)

type outcome =
  | Clean  (** no fault was injected and the run verified *)
  | Recovered of { retries : int }
      (** faults were injected, yet the output verified; [retries] counts
          whole-execution retries (in-VIM recoveries don't need any) *)
  | Degraded of { reason : string; verified : bool }
      (** retries exhausted; the software fallback supplied the output *)
  | Failed of string  (** clean refusal (error return, bad output) *)
  | Crashed of string  (** uncaught exception — a robustness bug *)

val outcome_name : outcome -> string
(** ["ok"], ["recovered"], ["degraded"], ["failed"] or ["crashed"]. *)

type run_result = {
  index : int;
  seed : int;  (** the injector seed of this run *)
  app : string;
  outcome : outcome;
  injected : int;  (** faults actually injected *)
  total_ms : float;
}

type summary = {
  runs : int;
  clean : int;
  recovered : int;
  degraded : int;
  failed : int;
  crashed : int;
  injected : int;  (** faults injected across the whole campaign *)
  bad_degraded : int;
      (** degraded runs whose fallback output failed verification *)
}

val default_watchdog : Rvi_sim.Simtime.t
(** Campaign watchdog (10 ms simulated) — hung coprocessors only
    terminate through it, so campaigns want a much shorter one than the
    interactive default while staying above the largest healthy progress
    gap of the campaign workloads. *)

type workload
(** One prepared application input (see {!workloads}). *)

val workloads : seed:int -> (string * workload) array
(** The four campaign applications with deterministically generated
    inputs. *)

val app_names : string list
(** The campaign application names, in {!workloads} order. *)

val workload_of : seed:int -> bytes:int -> string -> string * workload
(** One named application ("adpcm", "idea", "fir" or "vecadd") with
    roughly [bytes] of deterministically generated input (rounded to the
    application's block granule, floored so the working set exceeds the
    dual-port memory). Raises [Invalid_argument] on unknown names. *)

val run_one :
  ?trace:Rvi_obs.Trace.t ->
  ?pool:Platform.Pool.t ->
  ?base:Config.t ->
  ?events:(Rvi_inject.Fault.kind * int) list ->
  ?inspect:(Platform.t -> unit) ->
  ?translation:Rvi_core.Translation_mode.t ->
  spec:Rvi_inject.Spec.t ->
  recovery:Rvi_core.Vim.recovery ->
  watchdog:Rvi_sim.Simtime.t ->
  exec_retries:int ->
  seed:int ->
  string * workload ->
  run_result
(** One seeded run. [base] (default {!Config.default}) supplies the
    platform geometry — device, policy, TLB, prefetch — that the injector,
    recovery and watchdog settings are layered onto; [translation]
    defaults to the base configuration's mode. [events] arms deterministic
    one-shot faults on top of the rate-based [spec]
    (see {!Rvi_inject.Injector.set_events}); [inspect] runs against the
    live platform after the run (the chaos harness' consistency probe). *)

val campaign :
  ?trace:Rvi_obs.Trace.t ->
  ?spec:Rvi_inject.Spec.t ->
  ?recovery:Rvi_core.Vim.recovery ->
  ?watchdog:Rvi_sim.Simtime.t ->
  ?exec_retries:int ->
  ?progress:(run_result -> unit) ->
  ?jobs:int ->
  ?chunk:int ->
  ?reuse_platforms:bool ->
  ?translation:Rvi_core.Translation_mode.t ->
  runs:int ->
  seed:int ->
  unit ->
  run_result list
(** [runs] seeded runs rotating over the four applications (ADPCM, IDEA,
    FIR, vector add) with working sets larger than the dual-port memory.

    [jobs] (default 1) shards the runs over that many domains through
    {!Rvi_par.Par.map}. Results are independent of [jobs]: every run's
    injector seed derives from the campaign seed and the run index
    alone, each parallel run records into its own trace sink (stamped
    with its chunk ordinal as the shard id) and sinks merge into
    [trace] in run order after the barrier. With [jobs = 1] the code
    path — shared sink, in-line [progress] — is exactly the historical
    serial one; with [jobs > 1], [progress] fires after the barrier, in
    run order. [chunk] overrides the shard size
    ({!Rvi_par.Par.default_chunk} otherwise).

    [reuse_platforms] (default [true]) serves runs from per-domain
    {!Platform.Pool}s — pooled platforms are reset, not rebuilt,
    between runs, which is where campaign throughput comes from. The
    reset contract makes results identical either way; set [false] to
    force a fresh platform per run (the property tests do). Parallel
    campaigns run on the shared persistent domain pool
    ({!Rvi_par.Par.Pool.shared}) rather than spawning domains per
    call.

    [translation] (default [Paper_objects]) selects the address
    translation mode every run's platform is configured with, so the
    same campaign doubles as an IOMMU/SVA soak test. *)

val summarize : run_result list -> summary

val passed : summary -> bool
(** No crashes and no unverified degraded output — the campaign's pass
    criterion. *)

val survival : summary -> float
(** Percentage of runs that ended with a correct output (clean, recovered,
    or degraded with a verified fallback). *)

val print_summary : Format.formatter -> summary -> unit

val csv : run_result list -> string
(** Header plus one line per run. *)

(** {1 Rate × policy sweep} *)

type cell = { factor : float; max_retries : int; cell_summary : summary }

val sweep :
  ?trace:Rvi_obs.Trace.t ->
  ?factors:float list ->
  ?retry_policies:int list ->
  ?watchdog:Rvi_sim.Simtime.t ->
  ?jobs:int ->
  runs:int ->
  seed:int ->
  unit ->
  cell list
(** The full [factors x retry_policies] matrix. [jobs] (default 1)
    shards whole cells over domains — each cell is an independent
    reseeded campaign, so cell summaries are identical whatever [jobs]
    is; per-cell trace sinks (shard id = cell index) merge into [trace]
    in cell order. *)

val print_sweep : Format.formatter -> cell list -> unit
