.PHONY: all build test bench examples clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/adpcm_player.exe
	dune exec examples/idea_crypto.exe
	dune exec examples/portability.exe
	dune exec examples/multiprogramming.exe
	dune exec examples/trace_explorer.exe
	dune exec examples/codesign_flow.exe

clean:
	dune clean
