(* Trace exporters and the JSON-lines reader.

   Two formats:
   - JSON lines: one flat object per event, stream-friendly, read back by
     {!of_jsonl} (round-trip safe);
   - Chrome trace_event: a [{"traceEvents":[...]}] document that
     about://tracing and Perfetto load directly, rendering every
     FPGA_EXECUTE as a timeline of nested spans (execute > interrupt >
     fault service > decode / copy / TLB-update segments). *)

module Simtime = Rvi_sim.Simtime

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let arg_to_json = function
  | Trace.Int i -> string_of_int i
  | Trace.Str s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Trace.Bool b -> if b then "true" else "false"

(* {1 JSON lines} *)

let event_to_json (e : Trace.event) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"seq\":%d,\"ts_ps\":%d,\"dur_ps\":%d,\"shard\":%d,\"kind\":\"%s\""
       e.Trace.seq
       (Simtime.to_ps e.Trace.at)
       (Simtime.to_ps e.Trace.dur) e.Trace.shard
       (Trace.kind_name e.Trace.kind));
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf (Printf.sprintf ",\"%s\":%s" k (arg_to_json v)))
    (Trace.args e.Trace.kind);
  Buffer.add_char buf '}';
  Buffer.contents buf

let to_jsonl events =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (event_to_json e);
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

(* {2 Reader}

   A minimal parser for the flat objects {!to_jsonl} emits: string, integer
   and boolean values only, no nesting. Not a general JSON parser. *)

exception Parse_error of string

let parse_object line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
  let skip_ws () =
    while !pos < n && (match line.[!pos] with ' ' | '\t' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if !pos >= n || line.[!pos] <> c then fail (Printf.sprintf "expected %c" c);
    incr pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match line.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          if !pos >= n then fail "dangling escape";
          (match line.[!pos] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            if !pos + 4 >= n then fail "short unicode escape";
            let code = int_of_string ("0x" ^ String.sub line (!pos + 1) 4) in
            pos := !pos + 4;
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else fail "non-ASCII escape unsupported"
          | c -> fail (Printf.sprintf "unknown escape \\%c" c));
          incr pos;
          go ()
        | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_value () =
    skip_ws ();
    if !pos >= n then fail "missing value"
    else
      match line.[!pos] with
      | '"' -> Trace.Str (parse_string ())
      | 't' ->
        if !pos + 4 <= n && String.sub line !pos 4 = "true" then begin
          pos := !pos + 4;
          Trace.Bool true
        end
        else fail "bad literal"
      | 'f' ->
        if !pos + 5 <= n && String.sub line !pos 5 = "false" then begin
          pos := !pos + 5;
          Trace.Bool false
        end
        else fail "bad literal"
      | '-' | '0' .. '9' ->
        let start = !pos in
        if line.[!pos] = '-' then incr pos;
        while !pos < n && (match line.[!pos] with '0' .. '9' -> true | _ -> false) do
          incr pos
        done;
        Trace.Int (int_of_string (String.sub line start (!pos - start)))
      | _ -> fail "unsupported value"
  in
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if !pos < n && line.[!pos] = '}' then incr pos
  else begin
    let rec members () =
      let key = (skip_ws (); parse_string ()) in
      expect ':';
      let v = parse_value () in
      fields := (key, v) :: !fields;
      skip_ws ();
      if !pos < n && line.[!pos] = ',' then begin
        incr pos;
        members ()
      end
      else expect '}'
    in
    members ()
  end;
  List.rev !fields

let event_of_json line =
  let fields = parse_object line in
  let lookup k = List.assoc_opt k fields in
  let int k =
    match lookup k with
    | Some (Trace.Int i) -> i
    | _ -> raise (Parse_error (Printf.sprintf "missing integer field %S" k))
  in
  let kind_name =
    match lookup "kind" with
    | Some (Trace.Str s) -> s
    | _ -> raise (Parse_error "missing \"kind\"")
  in
  match Trace.kind_of_name kind_name lookup with
  | Some kind ->
    {
      Trace.seq = int "seq";
      at = Simtime.of_ps (int "ts_ps");
      dur = Simtime.of_ps (int "dur_ps");
      (* Absent in traces written before shards existed: those are
         serial, i.e. shard 0. *)
      shard = (match lookup "shard" with Some (Trace.Int i) -> i | _ -> 0);
      kind;
    }
  | None -> raise (Parse_error (Printf.sprintf "unknown kind %S" kind_name))

let of_jsonl s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map event_of_json

(* {1 Chrome trace_event} *)

let span_tid = 1
let instant_tid = 2

let is_span (e : Trace.event) =
  match e.Trace.kind with
  | Trace.Exec_end _ | Trace.Fault _ | Trace.Decode | Trace.Copy _
  | Trace.Tlb_update _ | Trace.Irq_service ->
    true
  | _ -> false

let chrome_name (e : Trace.event) =
  match e.Trace.kind with
  | Trace.Exec_end _ -> "execute"
  | Trace.Fault { refill_only; _ } ->
    if refill_only then "fault-service (refill)" else "fault-service"
  | Trace.Decode -> "SWimu decode"
  | Trace.Copy { dma; _ } -> if dma then "SWdp copy (DMA)" else "SWdp copy"
  | Trace.Tlb_update _ -> "TLB update"
  | k -> Trace.kind_name k

(* Each shard renders as its own process so Perfetto lays parallel
   campaign chunks out side by side; shard 0 (serial runs) keeps the
   historical pid 1. *)
let chrome_pid (e : Trace.event) = e.Trace.shard + 1

let chrome_event (e : Trace.event) =
  let args =
    Trace.args e.Trace.kind
    |> List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" k (arg_to_json v))
    |> String.concat ","
  in
  let common =
    Printf.sprintf "\"name\":\"%s\",\"cat\":\"%s\",\"pid\":%d,\"ts\":%.6f,\"args\":{%s}"
      (json_escape (chrome_name e))
      (Trace.category e.Trace.kind)
      (chrome_pid e)
      (Simtime.to_us e.Trace.at) args
  in
  if is_span e then
    Printf.sprintf "{%s,\"ph\":\"X\",\"tid\":%d,\"dur\":%.6f}" common span_tid
      (Simtime.to_us e.Trace.dur)
  else Printf.sprintf "{%s,\"ph\":\"i\",\"tid\":%d,\"s\":\"t\"}" common instant_tid

let metadata events =
  let shards =
    List.sort_uniq compare (List.map (fun e -> e.Trace.shard) events)
  in
  let shards = if shards = [] then [ 0 ] else shards in
  List.concat_map
    (fun shard ->
      let pid = shard + 1 in
      let pname = if shard = 0 then "rvisim" else Printf.sprintf "rvisim shard %d" shard in
      [
        Printf.sprintf
          "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":\"%s\"}}"
          pid pname;
        Printf.sprintf
          "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"VIM service\"}}"
          pid span_tid;
        Printf.sprintf
          "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"interface events\"}}"
          pid instant_tid;
      ])
    shards

let to_chrome events =
  (* Spans are emitted at completion: restore start-time order, longest
     first at equal starts, so the viewer nests them correctly. *)
  let sorted =
    List.stable_sort
      (fun (a : Trace.event) (b : Trace.event) ->
        match Simtime.compare a.Trace.at b.Trace.at with
        | 0 -> Simtime.compare b.Trace.dur a.Trace.dur
        | c -> c)
      events
  in
  let entries = metadata events @ List.map chrome_event sorted in
  "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"
  ^ String.concat ",\n" entries
  ^ "\n]}\n"

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)
