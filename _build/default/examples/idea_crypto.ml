(* idea_crypto: the paper's cryptographic workload as an application.

   Encrypts 24 KB through the 3-stage pipelined IDEA coprocessor, then
   decrypts the ciphertext through the same coprocessor (the decrypt flag
   in the parameter page selects the inverted key schedule) and checks the
   round trip. 24 KB + 24 KB cannot fit the 16 KB dual-port memory, which
   is precisely where the normal coprocessor gives up and the VIM does not.

   Run with:  dune exec examples/idea_crypto.exe *)

let () =
  let cfg = Rvi_harness.Config.default () in
  let key = Rvi_harness.Workload.idea_key ~seed:99 in
  let plaintext = Rvi_harness.Workload.idea_plaintext ~seed:99 ~bytes:(24 * 1024) in
  Printf.printf "IDEA over %d KB (key %s)\n"
    (Bytes.length plaintext / 1024)
    (String.concat ""
       (Array.to_list (Array.map (Printf.sprintf "%04x") key)));

  (* The normal coprocessor cannot even attempt this size. *)
  let normal = Rvi_harness.Runner.idea_normal cfg ~key ~input:plaintext in
  (match normal.Rvi_harness.Report.outcome with
  | Rvi_harness.Report.Exceeds_memory ->
    print_endline "normal coprocessor: exceeds available memory (as in Figure 9)"
  | _ -> print_endline "normal coprocessor: unexpectedly ran?");

  (* Encrypt through the VIM-based coprocessor. *)
  let enc = Rvi_harness.Runner.idea_vim cfg ~key ~input:plaintext in
  let ciphertext = Rvi_coproc.Idea_ref.ecb ~key ~decrypt:false plaintext in
  Printf.printf "encrypt: %.3f ms, verified %b\n"
    (Rvi_sim.Simtime.to_ms enc.Rvi_harness.Report.total)
    enc.Rvi_harness.Report.verified;

  (* Decrypt the ciphertext through the same coprocessor. *)
  let dec = Rvi_harness.Runner.idea_vim ~decrypt:true cfg ~key ~input:ciphertext in
  Printf.printf "decrypt: %.3f ms, verified %b\n"
    (Rvi_sim.Simtime.to_ms dec.Rvi_harness.Report.total)
    dec.Rvi_harness.Report.verified;

  (* Round trip at the reference level too. *)
  let recovered = Rvi_coproc.Idea_ref.ecb ~key ~decrypt:true ciphertext in
  Printf.printf "round trip: %s\n"
    (if Bytes.equal recovered plaintext then "plaintext recovered" else "MISMATCH");

  let sw = Rvi_harness.Runner.idea_sw cfg ~key ~input:plaintext in
  (match Rvi_harness.Report.speedup ~baseline:sw enc with
  | Some s -> Printf.printf "speedup over software: %.1fx\n" s
  | None -> ());
  if
    not
      (Rvi_harness.Report.ok enc
      && Rvi_harness.Report.ok dec
      && Bytes.equal recovered plaintext)
  then exit 1
