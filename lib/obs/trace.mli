(** Ring-buffered structured event trace.

    Every interesting step of a virtualised execution — fault service,
    TLB refills and invalidations, page movement with the policy's victim
    choice, prefetch, DMA copies, interrupt entry/exit, the watchdog —
    is recorded as a structured event carrying its simulated start time
    and duration. The buffer is a fixed-capacity ring: tracing a run of
    any length costs bounded memory, and the newest events win.

    Spans (events with a non-zero duration) are emitted at completion
    with a retrospective start time, so buffer order is emission order,
    not start-time order; exporters sort when a format requires it. *)

module Simtime = Rvi_sim.Simtime

type kind =
  | Exec_begin  (** instant: FPGA_EXECUTE entered *)
  | Exec_end of { ok : bool }  (** span over the whole FPGA_EXECUTE *)
  | Fault of { obj_id : int; vpn : int; refill_only : bool }
      (** span over one fault service, interrupt decode included *)
  | Decode  (** span: SR/AR read and cause decode (SW-IMU) *)
  | Copy of { bytes : int; dma : bool }  (** span: data movement (SW-DP) *)
  | Tlb_update of { obj_id : int; vpn : int; ppn : int }
      (** span: TLB refill write (SW-IMU) *)
  | Tlb_invalidate of { ppn : int }
  | Page_load of { obj_id : int; vpn : int; frame : int; bytes : int }
  | Page_writeback of { obj_id : int; vpn : int; frame : int; bytes : int }
  | Page_evict of {
      obj_id : int;
      vpn : int;
      frame : int;
      policy : string;  (** replacement policy that chose this victim *)
      dirty : bool;
    }
  | Prefetch of { obj_id : int; vpn : int; frame : int }
  | Irq_raise of { line : int; name : string }
  | Irq_service  (** span: interrupt entry to exit *)
  | Watchdog  (** the execution watchdog fired *)
  | Inject of { fault : string }
      (** instant: the fault injector fired ({!Rvi_inject.Fault.name}) *)
  | Retry of { what : string; attempt : int }
      (** the recovery machine is retrying an operation ("copy",
          "execute", ...) *)
  | Recover of { what : string; retries : int }
      (** an operation succeeded after [retries] retries (or, for
          "lost_irq", a poll caught a latched cause whose edge was lost) *)
  | Degrade of { reason : string }
      (** hardware given up on: the caller falls back to software *)

type event = {
  seq : int;
  at : Simtime.t;
  dur : Simtime.t;
  shard : int;
      (** the shard (parallel campaign chunk) whose sink recorded this
          event; 0 for serial runs *)
  kind : kind;
}

type t

val create : ?capacity:int -> ?shard:int -> unit -> t
(** [capacity] defaults to 65536 events. [shard] (default 0) is stamped
    into every event this sink records — parallel campaign runners give
    each shard its own sink so exports stay well-formed after merging. *)

val shard : t -> int
(** The shard id this sink stamps. *)

val emit : t -> at:Simtime.t -> ?dur:Simtime.t -> kind -> unit
(** Records an event ([dur] defaults to zero: an instant). When the ring
    is full the oldest event is overwritten and {!dropped} grows. *)

val append : t -> event -> unit
(** Re-records an existing event (same time, duration, shard and kind),
    restamping only its sequence number with this sink's next one. The
    primitive {!merge_into} is built on. *)

val length : t -> int
(** Events currently held. *)

val emitted : t -> int
(** Events ever emitted (= next sequence number). *)

val dropped : t -> int
(** Events overwritten because the ring was full. *)

val events : t -> event list
(** Held events, oldest first. *)

val clear : t -> unit

val merge_into : into:t -> t -> unit
(** [merge_into ~into src] appends [src]'s held events to [into] in
    [src]'s order (sequence numbers reassigned by [into], shard stamps
    preserved) and adds [src]'s drop count. Merging per-shard sinks in
    run-index order yields a merged trace independent of how many
    domains executed the shards. [src] is unchanged. *)

(** {2 Structured payloads (shared by exporters)} *)

type arg = Int of int | Str of string | Bool of bool

val kind_name : kind -> string
val args : kind -> (string * arg) list

val kind_of_name : string -> (string -> arg option) -> kind option
(** [kind_of_name name lookup] rebuilds a kind from its {!kind_name} and
    a field accessor — the inverse used by trace readers. *)

val category : kind -> string
(** The paper's time category this event belongs to ("swimu", "swdp",
    "vim", "paging", "exec", "irq", "reliability"). *)

val pp_event : Format.formatter -> event -> unit
