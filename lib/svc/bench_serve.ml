(* The gated perf series for the serve campaign, one JSON entry per
   (policy, mode) cell appended to BENCH_serve.json — same machine-written
   splice-before-the-closing-bracket format as BENCH_campaign.json, and
   the same read-the-baseline-before-appending gate discipline. *)

let command_line cmd =
  try
    let ic = Unix.open_process_in cmd in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 -> Some (String.trim line)
    | _ -> None
  with _ -> None

let git_commit () =
  match command_line "git rev-parse --short HEAD 2>/dev/null" with
  | None | Some "" -> "unknown"
  | Some hash -> (
    match command_line "git status --porcelain 2>/dev/null" with
    | Some "" -> hash
    | Some _ -> hash ^ "-dirty"
    | None -> hash)

type point = {
  benchmark : string;  (* "serve-<policy>-<mode>" *)
  commit : string;
  tenants : int;
  requests : int;
  completed : int;
  seed : int;
  jobs : int;
  wall_s : float;
  runs_per_sec : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  jain : float;
  makespan_ms : float;
  reconfigurations : int;
  preemptions : int;
  deterministic : bool;
  digest : string;
}

let benchmark_label (c : Serve.cell) =
  Printf.sprintf "serve-%s-%s"
    (Sched_policy.name c.Serve.cl_policy)
    (Rvi_core.Translation_mode.name c.Serve.cl_translation)

let of_result ?(jobs = 1) ?(deterministic = true) (r : Serve.cell_result) =
  let report = r.Serve.cr_report in
  {
    benchmark = benchmark_label r.Serve.cr_cell;
    commit = git_commit ();
    tenants = r.Serve.cr_cell.Serve.cl_tenants;
    requests = r.Serve.cr_cell.Serve.cl_requests;
    completed = report.Slo.r_completed;
    seed = r.Serve.cr_cell.Serve.cl_seed;
    jobs;
    wall_s = r.Serve.cr_wall_s;
    runs_per_sec =
      (if r.Serve.cr_wall_s > 0.0 then
         float_of_int report.Slo.r_completed /. r.Serve.cr_wall_s
       else 0.0);
    p50_us = report.Slo.r_p50_us;
    p95_us = report.Slo.r_p95_us;
    p99_us = report.Slo.r_p99_us;
    jain = report.Slo.r_jain;
    makespan_ms = report.Slo.r_makespan_ms;
    reconfigurations = report.Slo.r_reconfigurations;
    preemptions = report.Slo.r_preemptions;
    deterministic;
    digest = r.Serve.cr_digest;
  }

let point_json p =
  Printf.sprintf
    "  {\n\
    \    \"benchmark\": %S,\n\
    \    \"commit\": %S,\n\
    \    \"tenants\": %d,\n\
    \    \"requests\": %d,\n\
    \    \"completed\": %d,\n\
    \    \"seed\": %d,\n\
    \    \"jobs\": %d,\n\
    \    \"wall_s\": %.6f,\n\
    \    \"runs_per_sec\": %.2f,\n\
    \    \"p50_us\": %.1f,\n\
    \    \"p95_us\": %.1f,\n\
    \    \"p99_us\": %.1f,\n\
    \    \"jain\": %.4f,\n\
    \    \"makespan_ms\": %.3f,\n\
    \    \"reconfigurations\": %d,\n\
    \    \"preemptions\": %d,\n\
    \    \"deterministic\": %b,\n\
    \    \"digest\": %S\n\
    \  }"
    p.benchmark p.commit p.tenants p.requests p.completed p.seed p.jobs p.wall_s
    p.runs_per_sec p.p50_us p.p95_us p.p99_us p.jain p.makespan_ms
    p.reconfigurations p.preemptions p.deterministic p.digest

let default_path = "BENCH_serve.json"

let read_file path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))

let write_file path content =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)

let append ?(path = default_path) p =
  let entry = point_json p in
  let fresh = "[\n" ^ entry ^ "\n]\n" in
  let content =
    match read_file path with
    | None -> fresh
    | Some old -> (
      match String.rindex_opt old ']' with
      | None -> fresh
      | Some i ->
        let body = String.trim (String.sub old 0 i) in
        if body = "[" then fresh else body ^ ",\n" ^ entry ^ "\n]\n")
  in
  write_file path content;
  path

let last_index_from s ~from key =
  let kl = String.length key and n = String.length s in
  let last = ref (-1) in
  for i = (if from < 0 then 0 else from) to n - kl do
    if String.sub s i kl = key then last := i
  done;
  !last

let float_field_at s pos key =
  let kl = String.length key and n = String.length s in
  let found = ref (-1) and i = ref pos in
  while !found < 0 && !i <= n - kl do
    if String.sub s !i kl = key then found := !i;
    incr i
  done;
  if !found < 0 then None
  else begin
    let j = !found + kl in
    let stop = ref j in
    while
      !stop < n && s.[!stop] <> ',' && s.[!stop] <> '\n' && s.[!stop] <> '}'
    do
      incr stop
    done;
    float_of_string_opt (String.trim (String.sub s j (!stop - j)))
  end

type baseline = { base_runs_per_sec : float; base_p99_us : float }

let last_baseline ?(path = default_path) ~benchmark () =
  match read_file path with
  | None -> None
  | Some s -> (
    let label = Printf.sprintf "\"benchmark\": %S" benchmark in
    let at = last_index_from s ~from:0 label in
    if at < 0 then None
    else
      match
        ( float_field_at s at "\"runs_per_sec\":",
          float_field_at s at "\"p99_us\":" )
      with
      | Some rps, Some p99 ->
        Some { base_runs_per_sec = rps; base_p99_us = p99 }
      | _ -> None)

(* The regression gate: host throughput must not fall below
   (1 - tol) x baseline, and the simulated tail latency must not grow
   past (1 + tol) x baseline. Returns the failures (empty = pass). *)
let gate ~tolerance ~(baseline : baseline option) p =
  match baseline with
  | None -> []
  | Some b ->
    List.concat
      [
        (if
           b.base_runs_per_sec > 0.0
           && p.runs_per_sec < (1.0 -. tolerance) *. b.base_runs_per_sec
         then
           [ Printf.sprintf
               "%s: %.1f runs/s is below the %.1f gate (baseline %.1f, \
                tolerance %.0f%%)"
               p.benchmark p.runs_per_sec
               ((1.0 -. tolerance) *. b.base_runs_per_sec)
               b.base_runs_per_sec (tolerance *. 100.0) ]
         else []);
        (if
           b.base_p99_us > 0.0
           && p.p99_us > (1.0 +. tolerance) *. b.base_p99_us
         then
           [ Printf.sprintf
               "%s: p99 %.0f us exceeds the %.0f gate (baseline %.0f, \
                tolerance %.0f%%)"
               p.benchmark p.p99_us
               ((1.0 +. tolerance) *. b.base_p99_us)
               b.base_p99_us (tolerance *. 100.0) ]
         else []);
      ]

let print ppf p =
  Format.fprintf ppf
    "%s [%s]: %d tenants, %d/%d requests, %.2fs wall (%.1f runs/s), \
     p50/p95/p99 = %.0f/%.0f/%.0f us, Jain %.4f, %d reconfigs, %d preemptions@."
    p.benchmark p.commit p.tenants p.completed p.requests p.wall_s
    p.runs_per_sec p.p50_us p.p95_us p.p99_us p.jain p.reconfigurations
    p.preemptions
