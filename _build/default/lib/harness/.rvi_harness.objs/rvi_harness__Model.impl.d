lib/harness/model.ml: Calibration Config Format Rvi_coproc Rvi_core Rvi_fpga Rvi_mem
