lib/coproc/adpcm_ref.ml: Array Bytes Char
