(** The multi-tenant coprocessor service.

    One physical platform with a station per application kind (own IMU,
    clock domain, VIM on a dedicated interrupt line — the
    {!Rvi_harness.Jobs} construction), driven through {!Rvi_core.Vim}'s
    sliced-execution API: per-tenant submission rings feed per-kind
    dispatch queues, a {!Sched_policy} picks the next candidate, and
    under the preemptive policy a running tenant can be parked
    mid-execution and resumed later without observable difference.

    Invariants the tests lean on:
    - at most one parked context per station, and a station's parked
      tenant resumes before fresh work of its kind;
    - only the dispatched station's clock runs (single-PLD discipline);
    - every completion is verified against the host reference; failed
      executions retry up to [Config.exec_retries] times and then take
      the verified software fallback ([Degraded]) — the service never
      delivers unverified output. *)

val normalize_bytes : Rvi_harness.Jobs.app_kind -> int -> int
(** Rounds a requested input size to the kind's alignment (IDEA: 8-byte
    blocks; FIR: even, at least two taps' worth; ADPCM: >= 1). *)

type params = {
  sp_policy : Sched_policy.t;
  sp_quantum : Rvi_sim.Simtime.t;  (** preemption quantum (positive) *)
  sp_sdram_bytes : int;
  sp_backlog_limit : int;
      (** admission control: submission rings are only drained while the
          in-service backlog is below this *)
  sp_aging : Rvi_sim.Simtime.t;  (** [Grouped]'s anti-starvation escape *)
  sp_starvation_budget : Rvi_sim.Simtime.t;
      (** a tenant with pending work and no progress for this long is
          reported starved *)
}

val default_params : Sched_policy.t -> params
(** 50 us quantum, 16 MB arena, backlog 4096, 50 ms aging, 2 s
    starvation budget. *)

type feed = {
  f_next_arrival : unit -> Rvi_sim.Simtime.t option;
  f_deliver : now:Rvi_sim.Simtime.t -> unit;
  f_notify : Tenant.completion -> now:Rvi_sim.Simtime.t -> unit;
}
(** The load generator half of the loop: [f_next_arrival] is the
    earliest undelivered open-loop arrival (for idle fast-forward),
    [f_deliver] moves every arrival due at [now] onto tenant rings,
    [f_notify] observes completions (closed-loop resubmission, CSV
    sinks). *)

val null_feed : feed

type t

val create : Rvi_harness.Config.t -> params -> tenants:Tenant.t array -> t
val kernel : t -> Rvi_os.Kernel.t
val tenants : t -> Tenant.t array

val vim_of_kind : t -> Rvi_harness.Jobs.app_kind -> Rvi_core.Vim.t
(** The station VIM, exposed for consistency inspection by tests and
    the chaos harness. *)

type outcome = {
  o_completed : int;
  o_makespan : Rvi_sim.Simtime.t;
  o_reconfigurations : int;
  o_configuration_time : Rvi_sim.Simtime.t;
  o_preemptions : int;
  o_resumes : int;
  o_starved : int list;  (** tenant ids, ascending *)
  o_inconsistencies : string list;
      (** [Vim.consistency] violations observed at completion
          boundaries *)
  o_exhausted : bool;  (** the dispatch-iteration backstop fired *)
}

val run : t -> feed -> expect:int -> outcome
(** Drives the service until every delivered request has completed and
    the feed has no further arrivals. [expect] sizes the liveness
    backstop (roughly the total request count). Per-tenant latency
    histograms and counters accumulate on the [tenants] array. *)
