type 'a t = { mutable cur : 'a; mutable next : 'a }

let create v = { cur = v; next = v }
let[@inline] get t = t.cur
let[@inline] set t v = t.next <- v
let peek_next t = t.next
let[@inline] commit t = t.cur <- t.next

let reset t v =
  t.cur <- v;
  t.next <- v
