lib/coproc/idea_ref.ml: Array Bytes Char
