lib/core/imu_pipelined.mli: Cp_port Imu Rvi_mem
