lib/harness/mrc.mli: Format Rvi_core
