type 'a cell = { time : Simtime.t; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a cell array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }
let length q = q.size
let is_empty q = q.size = 0

(* [a] precedes [b] in heap order: earlier time, then earlier insertion. *)
let precedes a b =
  let c = Simtime.compare a.time b.time in
  if c <> 0 then c < 0 else a.seq < b.seq

let grow q =
  let cap = Array.length q.heap in
  let ncap = if cap = 0 then 16 else cap * 2 in
  (* The dummy cell is never read: [size] guards all accesses. *)
  let dummy = q.heap.(0) in
  let nheap = Array.make ncap dummy in
  Array.blit q.heap 0 nheap 0 q.size;
  q.heap <- nheap

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if precedes q.heap.(i) q.heap.(parent) then begin
      let tmp = q.heap.(i) in
      q.heap.(i) <- q.heap.(parent);
      q.heap.(parent) <- tmp;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && precedes q.heap.(l) q.heap.(!smallest) then smallest := l;
  if r < q.size && precedes q.heap.(r) q.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = q.heap.(i) in
    q.heap.(i) <- q.heap.(!smallest);
    q.heap.(!smallest) <- tmp;
    sift_down q !smallest
  end

let push q ~time payload =
  let cell = { time; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  if q.size = 0 && Array.length q.heap = 0 then q.heap <- Array.make 16 cell;
  if q.size = Array.length q.heap then grow q;
  q.heap.(q.size) <- cell;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      sift_down q 0
    end;
    Some (top.time, top.payload)
  end

let peek_time q = if q.size = 0 then None else Some q.heap.(0).time

(* Allocation-free peek for per-edge batching checks. *)
let[@inline] peek_time_ps q =
  if q.size = 0 then max_int else Simtime.to_ps q.heap.(0).time

let clear q =
  q.size <- 0;
  q.heap <- [||]
