(** C stub generation for the application side.

    The paper's §2 triple is "an appropriately augmented OS, a compiler,
    and a synthesiser". {!Vhdl_gen} covers the synthesiser's input; this
    module covers the compiler's output: given the object arrangement a
    software and a hardware designer agreed on, it emits the C header and
    wrapper the application links against — the Figure 6 calling sequence
    with no platform detail in sight.

    The generated wrapper performs, in order: [FPGA_LOAD],
    one [FPGA_MAP_OBJECT] per declared object, [FPGA_EXECUTE] with the
    scalar parameters, and returns the syscall status. *)

type c_type = U8 | S16 | U16 | S32 | U32

val c_type_name : c_type -> string
(** The [stdint.h] spelling, e.g. ["uint32_t"]. *)

type obj_spec = {
  id : int;  (** coprocessor-visible identifier *)
  c_name : string;  (** parameter name in the generated API *)
  ty : c_type;
  dir : Mapped_object.direction;
  stream : bool;
}

type spec = {
  app : string;  (** C identifier prefix, e.g. ["idea"] *)
  objects : obj_spec list;
  params : string list;  (** scalar parameter names, in page order *)
}

val make : app:string -> objects:obj_spec list -> params:string list -> spec
(** Validates identifiers and uniqueness of object ids.
    Raises [Invalid_argument] otherwise. *)

val header : spec -> string
(** [<app>_vif.h]: object-id macros, the run prototype. *)

val source : spec -> string
(** [<app>_vif.c]: the wrapper implementation over the three services. *)

val emit_all : spec -> (string * string) list
(** [(filename, contents)] pairs. *)

(** Canned specifications for the shipped coprocessors. *)

val vecadd_spec : spec
val adpcm_spec : spec
val idea_spec : spec
val fir_spec : spec
