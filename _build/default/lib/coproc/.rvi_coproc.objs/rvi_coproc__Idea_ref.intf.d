lib/coproc/idea_ref.mli: Bytes
