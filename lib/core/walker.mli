(** Cycle-costed hardware page-table walker (SVA translation mode).

    On a double TLB miss (L1 then the shared L2) the IMU invokes the
    walker, which reads the process's software {!Rvi_os.Page_table}
    level by level over the bus and charges [cycles_per_level] per level
    actually touched: one level when the directory slot is empty, two
    when a leaf is read. A walk that finds no PTE raises the IMU page
    fault to the VIM; the VIM wires the page and merely resumes — the
    walker re-walks and refills the TLBs itself, as a real IOMMU does. *)

type config = { cycles_per_level : int }

val default_config : config
(** 12 cycles per level: one uncached AHB read-modify of a table entry. *)

type t

val create : config -> t

type outcome = {
  frame : int option;  (** backing frame, if the PTE is present *)
  cycles : int;  (** bus cycles the walk consumed *)
}

val walk : t -> Rvi_os.Page_table.t -> vpn:int -> outcome

val config : t -> config

val stats : t -> Rvi_sim.Stats.t
(** ["walks"], ["walk_faults"]; scalar summary ["walk_cycles"] — the walk
    latency distribution the ablation reports. *)

val reset : t -> unit
