(* A bounded single-producer single-consumer descriptor ring.

   The service's tenant queues are virtqueue-shaped: a fixed array of
   slots with free-running head (consumer) and tail (producer) indices
   reduced modulo the capacity on access. Fullness is the index
   difference, so no slot is sacrificed and the wrap arithmetic is the
   one property tests exercise hardest. *)

type 'a t = {
  slots : 'a option array;
  mutable head : int;  (* next pop; free-running *)
  mutable tail : int;  (* next push; free-running *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { slots = Array.make capacity None; head = 0; tail = 0 }

let capacity t = Array.length t.slots
let length t = t.tail - t.head
let is_empty t = t.head = t.tail
let is_full t = length t = capacity t

let push t x =
  if is_full t then false
  else begin
    t.slots.(t.tail mod capacity t) <- Some x;
    t.tail <- t.tail + 1;
    true
  end

let pop t =
  if is_empty t then None
  else begin
    let i = t.head mod capacity t in
    let x = t.slots.(i) in
    t.slots.(i) <- None;
    t.head <- t.head + 1;
    x
  end

let peek t = if is_empty t then None else t.slots.(t.head mod capacity t)

let to_list t =
  List.init (length t) (fun i ->
      match t.slots.((t.head + i) mod capacity t) with
      | Some x -> x
      | None -> assert false)
