lib/os/uspace.mli: Bytes Kernel
