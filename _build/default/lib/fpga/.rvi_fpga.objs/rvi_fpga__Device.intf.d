lib/fpga/device.mli: Format Rvi_mem
