type state = Ready | Running | Sleeping | Exited

let state_name = function
  | Ready -> "ready"
  | Running -> "running"
  | Sleeping -> "sleeping"
  | Exited -> "exited"

type t = {
  pid : int;
  name : string;
  mutable state : state;
  mutable wakeups : int;
  page_table : Page_table.t;
}

let make ~pid ~name =
  { pid; name; state = Ready; wakeups = 0; page_table = Page_table.create () }

let legal from into =
  match (from, into) with
  | Ready, Running | Running, Ready -> true
  | Running, Sleeping | Running, Exited -> true
  | Sleeping, Ready -> true
  | Exited, _ -> false
  | Ready, (Sleeping | Exited) -> false
  | Sleeping, (Running | Sleeping | Exited) -> false
  | Running, Running | Ready, Ready -> true

let set_state t into =
  if not (legal t.state into) then
    invalid_arg
      (Printf.sprintf "Proc.set_state: %s: illegal %s -> %s" t.name
         (state_name t.state) (state_name into));
  if t.state = Sleeping && into = Ready then t.wakeups <- t.wakeups + 1;
  t.state <- into

let pp ppf t = Format.fprintf ppf "[%d] %s (%s)" t.pid t.name (state_name t.state)
