(** Named event counters and running scalar summaries.

    Lightweight instrumentation shared by every simulated component:
    a table of integer counters plus streaming min/max/mean summaries. *)

type t

val create : unit -> t

val incr : ?by:int -> t -> string -> unit
(** Increments counter [name] (created at 0 on first use). *)

val get : t -> string -> int
(** Current value of a counter, 0 if never incremented. *)

val observe : t -> string -> float -> unit
(** Feeds a sample into the named scalar summary. *)

type summary = { count : int; min : float; max : float; mean : float }

val summary : t -> string -> summary option

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val reset : t -> unit

val pp : Format.formatter -> t -> unit
