lib/sim/prng.ml: Bytes Char Int64
