lib/core/vim.ml: Array Bytes Frame_table Hashtbl Imu Imu_regs Int List Logs Mapped_object Policy Prefetch Printf Rvi_mem Rvi_os Rvi_sim Tlb
