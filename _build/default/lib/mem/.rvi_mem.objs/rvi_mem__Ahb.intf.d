lib/mem/ahb.mli:
