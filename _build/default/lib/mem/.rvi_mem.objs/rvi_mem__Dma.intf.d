lib/mem/dma.mli: Rvi_sim
