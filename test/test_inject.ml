(* Unit tests for the fault-injection layer (rvi_inject) and for the
   recovery machinery it exercises: spec parsing, injector determinism,
   the second-execute-after-stall regression and the frame/TLB
   consistency property under random injection. *)

module Simtime = Rvi_sim.Simtime
module Stats = Rvi_sim.Stats
module Fault = Rvi_inject.Fault
module Spec = Rvi_inject.Spec
module Injector = Rvi_inject.Injector
module Config = Rvi_harness.Config
module Platform = Rvi_harness.Platform
module Calibration = Rvi_harness.Calibration
module Workload = Rvi_harness.Workload
module Api = Rvi_core.Api
module Vim = Rvi_core.Vim

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* {1 Fault taxonomy} *)

let test_fault_names () =
  checki "eleven kinds" 11 (List.length Fault.all);
  List.iter
    (fun k ->
      (match Fault.of_name (Fault.name k) with
      | Some k' -> checkb "name round-trips" true (k = k')
      | None -> Alcotest.fail "name does not round-trip");
      checkb "describe non-empty" true (String.length (Fault.describe k) > 0))
    Fault.all;
  checkb "unknown name" true (Fault.of_name "cosmic-ray" = None)

(* {1 Spec parsing} *)

let test_spec_parse () =
  (match Spec.parse "ahb" with
  | Ok [ { Spec.kind = Fault.Ahb_error; rate } ] ->
    Alcotest.(check (float 1e-9))
      "default rate" (Spec.default_rate Fault.Ahb_error) rate
  | Ok _ -> Alcotest.fail "wrong rules"
  | Error m -> Alcotest.fail m);
  (match Spec.parse "dma:0.5" with
  | Ok [ { Spec.kind = Fault.Dma_error; rate } ] ->
    Alcotest.(check (float 1e-9)) "explicit rate" 0.5 rate
  | Ok _ -> Alcotest.fail "wrong rules"
  | Error m -> Alcotest.fail m);
  (match Spec.parse "all" with
  | Ok rules -> checkb "all expands to every kind" true (rules = Spec.all ())
  | Error m -> Alcotest.fail m);
  (* later rules override earlier ones *)
  (match Spec.parse "all,hang:0" with
  | Ok rules ->
    Alcotest.(check (float 1e-9)) "hang off" 0.0 (Spec.rate rules Fault.Coproc_hang);
    checkb "others still on" true (Spec.rate rules Fault.Ahb_error > 0.0)
  | Error m -> Alcotest.fail m);
  checkb "unknown kind rejected" true (Result.is_error (Spec.parse "bogus"));
  checkb "bad rate rejected" true (Result.is_error (Spec.parse "ahb:x"));
  checkb "range-checked" true (Result.is_error (Spec.parse "ahb:1.5"))

let test_spec_roundtrip () =
  List.iter
    (fun s ->
      match Spec.parse s with
      | Ok rules -> (
        match Spec.parse (Spec.to_string rules) with
        | Ok rules' -> checkb ("round trip " ^ s) true (rules = rules')
        | Error m -> Alcotest.fail m)
      | Error m -> Alcotest.fail m)
    [ "ahb"; "dma:0.25"; "all"; "all:0.5,hang:0"; "tlb,irq-lost:0.1" ]

(* {1 Injector determinism} *)

let fire_sequence ~seed ~spec n =
  let inj = Injector.create ~seed ~spec in
  List.init n (fun i ->
      let k = List.nth Fault.all (i mod List.length Fault.all) in
      (Injector.fire inj k, Injector.draw inj 97))

let test_injector_deterministic () =
  let spec = Spec.all ~factor:100.0 () in
  let a = fire_sequence ~seed:7 ~spec 256 in
  let b = fire_sequence ~seed:7 ~spec 256 in
  checkb "same seed, same schedule" true (a = b);
  let c = fire_sequence ~seed:8 ~spec 256 in
  checkb "different seed, different schedule" true (a <> c)

let test_zero_rate_consumes_no_prng () =
  (* Disabling one kind must not shift any other kind's stream: rate-0
     fires skip the PRNG entirely. *)
  let spec_on = Spec.all ~factor:100.0 () in
  let spec_off =
    List.map
      (fun r ->
        if r.Spec.kind = Fault.Coproc_hang then { r with Spec.rate = 0.0 }
        else r)
      spec_on
  in
  let seq spec =
    let inj = Injector.create ~seed:3 ~spec in
    List.init 300 (fun i ->
        if i mod 3 = 0 then ignore (Injector.fire inj Fault.Coproc_hang);
        Injector.fire inj Fault.Ahb_error)
  in
  checkb "ahb stream unshifted" true (seq spec_on = seq spec_off)

let test_one_shot_events () =
  (* A deterministic event fires exactly at its 1-based opportunity
     ordinal — even for a kind with no rate rule — and replaces that
     opportunity's draw, so the background rate streams are bit-identical
     with or without events armed. *)
  let spec = [ { Spec.kind = Fault.Ahb_error; rate = 0.3 } ] in
  let stream events =
    let inj = Injector.create ~seed:5 ~spec in
    Injector.set_events inj events;
    List.init 40 (fun _ ->
        (Injector.fire inj Fault.Coproc_hang, Injector.fire inj Fault.Ahb_error))
  in
  let plain = stream [] in
  let armed = stream [ (Fault.Coproc_hang, 3) ] in
  checkb "no hang without a rule or event" true
    (List.for_all (fun (h, _) -> not h) plain);
  List.iteri
    (fun i (h, _) -> checkb "hang fires at ordinal 3 only" (i = 2) h)
    armed;
  checkb "event consumes no prng: rate stream unshifted" true
    (List.map snd plain = List.map snd armed);
  let inj = Injector.create ~seed:5 ~spec in
  Injector.set_events inj [ (Fault.Irq_lost, 1); (Fault.Irq_lost, 4) ];
  checki "pending events armed" 2 (Injector.pending_events inj);
  ignore (Injector.fire inj Fault.Irq_lost);
  checki "consumed on firing" 1 (Injector.pending_events inj)

let test_injector_arming_and_counters () =
  let spec = [ { Spec.kind = Fault.Ahb_error; rate = 1.0 } ] in
  let inj = Injector.create ~seed:1 ~spec in
  let observed = ref 0 in
  Injector.set_observer inj (Some (fun _ -> incr observed));
  checkb "rate 1 always fires" true (Injector.fire inj Fault.Ahb_error);
  Injector.set_enabled inj false;
  checkb "disarmed never fires" false (Injector.fire inj Fault.Ahb_error);
  Injector.set_enabled inj true;
  checkb "re-armed fires again" true (Injector.fire inj Fault.Ahb_error);
  checki "injected counted" 2 (Injector.injected inj Fault.Ahb_error);
  checki "total" 2 (Injector.injected_total inj);
  checki "observer per injection" 2 !observed;
  checki "unruled kind never fires" 0
    (if Injector.fire inj Fault.Dma_error then 1 else 0)

(* {1 The platform under injection}

   Helpers mirroring test_vim's vecadd driver, parameterised by config. *)

let to_bytes words =
  let b = Bytes.create (4 * Array.length words) in
  Array.iteri
    (fun i w ->
      for k = 0 to 3 do
        Bytes.set b ((4 * i) + k) (Char.chr ((w lsr (8 * k)) land 0xFF))
      done)
    words;
  b

let vecadd_setup p n =
  let a, b = Workload.vectors ~seed:5 ~n in
  let buf_a = Platform.alloc_bytes p (to_bytes a) in
  let buf_b = Platform.alloc_bytes p (to_bytes b) in
  let buf_c = Platform.alloc p (4 * n) in
  let ok = function Ok () -> () | Error _ -> Alcotest.fail "setup failed" in
  ok (Api.fpga_load p.Platform.api Calibration.vecadd_bitstream);
  ok
    (Api.fpga_map_object p.Platform.api ~id:0 ~buf:buf_a
       ~dir:Rvi_core.Mapped_object.In ~stream:true ());
  ok
    (Api.fpga_map_object p.Platform.api ~id:1 ~buf:buf_b
       ~dir:Rvi_core.Mapped_object.In ~stream:true ());
  ok
    (Api.fpga_map_object p.Platform.api ~id:2 ~buf:buf_c
       ~dir:Rvi_core.Mapped_object.Out ~stream:true ());
  let expected = to_bytes (Rvi_coproc.Vecadd.reference ~a ~b) in
  (buf_c, expected)

let injected_platform ~spec ~seed ~watchdog =
  let inj = Injector.create ~seed ~spec in
  let cfg =
    {
      (Config.default ()) with
      Config.injector = Some inj;
      watchdog;
    }
  in
  let p =
    Platform.create ~app_name:"injtest" cfg
      ~bitstream:Calibration.vecadd_bitstream
      ~make:Rvi_coproc.Vecadd.Virtual.create
  in
  (p, inj)

(* Satellite regression: a Hardware_stall must leave the VIM reusable —
   the abort path releases every frame, clears the TLB and resets the
   IMU, so a second FPGA_EXECUTE on the same platform succeeds. *)
let test_second_execute_after_stall () =
  let p, inj =
    injected_platform
      ~spec:[ { Spec.kind = Fault.Coproc_hang; rate = 1.0 } ]
      ~seed:1 ~watchdog:(Simtime.of_ms 1)
  in
  let n = 256 in
  let buf_c, expected = vecadd_setup p n in
  (match Api.fpga_execute p.Platform.api ~params:[ n ] with
  | Error Rvi_os.Syscall.EIO -> ()
  | Ok () -> Alcotest.fail "hung execution unexpectedly succeeded"
  | Error _ -> Alcotest.fail "wrong errno for a stall");
  checkb "watchdog fired" true
    (Stats.get (Vim.stats p.Platform.vim) "watchdog_fires" > 0);
  (* the abort left nothing behind *)
  checki "no frames held" 0
    (Rvi_core.Frame_table.held_count (Vim.frame_table p.Platform.vim));
  checki "TLB empty" 0
    (Rvi_core.Tlb.valid_count (Rvi_core.Imu.tlb p.Platform.imu));
  checkb "IMU unwedged" false (Rvi_core.Imu.hung p.Platform.imu);
  (match Vim.consistency p.Platform.vim with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("inconsistent after abort: " ^ m));
  (* fault gone: the same platform must work again *)
  Injector.set_enabled inj false;
  (match Api.fpga_execute p.Platform.api ~params:[ n ] with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "second execute failed after recovery");
  checkb "second run produces the right answer" true
    (Bytes.equal (Platform.read p buf_c) expected)

(* In-VIM recovery: exhausted copy retries surface as a transient bus
   error, and moderate rates recover without any caller involvement. *)
let test_copy_retry_exhaustion () =
  let p, _ =
    injected_platform
      ~spec:[ { Spec.kind = Fault.Ahb_error; rate = 1.0 } ]
      ~seed:2 ~watchdog:(Simtime.of_ms 1)
  in
  let _ = vecadd_setup p 256 in
  (match Api.fpga_execute p.Platform.api ~params:[ 256 ] with
  | Error Rvi_os.Syscall.EIO -> ()
  | _ -> Alcotest.fail "permanent bus errors should fail the execution");
  checkb "retries were attempted" true
    (Stats.get (Vim.stats p.Platform.vim) "copy_retries" > 0);
  checkb "retries exhausted" true
    (Stats.get (Vim.stats p.Platform.vim) "copy_retries_exhausted" > 0);
  match Vim.consistency p.Platform.vim with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("inconsistent after bus-error abort: " ^ m)

(* Satellite property: whatever a seeded injection run does, the frame
   table, the TLB and the dirty ledger stay mutually consistent, and no
   outcome is an exception. *)
let prop_consistency_under_injection =
  QCheck.Test.make ~name:"frame/TLB consistency after any seeded injection"
    ~count:25
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let p, _ =
        injected_platform
          ~spec:(Spec.all ~factor:50.0 ())
          ~seed ~watchdog:(Simtime.of_ms 1)
      in
      let _ = vecadd_setup p 512 in
      ignore (Api.fpga_execute p.Platform.api ~params:[ 512 ]);
      match Vim.consistency p.Platform.vim with
      | Ok () -> true
      | Error m -> QCheck.Test.fail_report m)

(* Satellite: every error renders distinctly and non-emptily — the
   degradation reports lean on these strings. *)
let test_error_strings_exhaustive () =
  let vim_errors =
    [
      Vim.Unmapped_object 3;
      Vim.Object_overflow { obj_id = 1; vpn = 9 };
      Vim.No_frames;
      Vim.Too_many_params { given = 600; capacity = 512 };
      Vim.Hardware_stall;
      Vim.Nothing_loaded;
      Vim.Bus_error;
      Vim.Dma_failed;
      Vim.Parity_error { frame = 4 };
      Vim.Sva_fault { vpn = 7 };
      Vim.Walk_failed { vpn = 7 };
    ]
  in
  let strings = List.map Vim.error_to_string vim_errors in
  List.iter
    (fun s -> checkb "vim error non-empty" true (String.length s > 0))
    strings;
  checki "vim errors distinct"
    (List.length strings)
    (List.length (List.sort_uniq compare strings));
  let nd_errors =
    Rvi_coproc.Normal_driver.
      [
        Exceeds_memory { required = 9; available = 1 };
        Access_error { region = 2; addr = 77 };
        Hardware_stall;
      ]
  in
  let nd_strings =
    List.map Rvi_coproc.Normal_driver.error_to_string nd_errors
  in
  List.iter
    (fun s -> checkb "driver error non-empty" true (String.length s > 0))
    nd_strings;
  checki "driver errors distinct"
    (List.length nd_strings)
    (List.length (List.sort_uniq compare nd_strings))

let test_classify () =
  List.iter
    (fun (e, sev) ->
      checkb (Vim.error_to_string e) true (Vim.classify e = sev))
    [
      (Vim.Hardware_stall, Vim.Transient);
      (Vim.Bus_error, Vim.Transient);
      (Vim.Dma_failed, Vim.Transient);
      (Vim.Parity_error { frame = 0 }, Vim.Transient);
      (Vim.Walk_failed { vpn = 0 }, Vim.Transient);
      (Vim.Unmapped_object 0, Vim.Fatal);
      (Vim.No_frames, Vim.Fatal);
      (Vim.Nothing_loaded, Vim.Fatal);
      (Vim.Object_overflow { obj_id = 0; vpn = 0 }, Vim.Fatal);
      (Vim.Too_many_params { given = 1; capacity = 0 }, Vim.Fatal);
      (Vim.Sva_fault { vpn = 3 }, Vim.Fatal);
    ]

(* {1 Campaign determinism (the faults front-end)} *)

let outcome_tags results =
  List.map
    (fun r ->
      ( r.Rvi_harness.Faults.seed,
        Rvi_harness.Faults.outcome_name r.Rvi_harness.Faults.outcome,
        r.Rvi_harness.Faults.injected ))
    results

let test_campaign_deterministic () =
  let run () = Rvi_harness.Faults.campaign ~runs:12 ~seed:99 () in
  let a = run () and b = run () in
  checkb "same seed replays identically" true
    (outcome_tags a = outcome_tags b);
  let s = Rvi_harness.Faults.summarize a in
  checki "every run classified" 12
    Rvi_harness.Faults.(s.clean + s.recovered + s.degraded + s.failed + s.crashed);
  checki "no crashes" 0 s.Rvi_harness.Faults.crashed;
  checkb "campaign passes" true (Rvi_harness.Faults.passed s)

let suite =
  [
    Alcotest.test_case "fault/names" `Quick test_fault_names;
    Alcotest.test_case "spec/parse" `Quick test_spec_parse;
    Alcotest.test_case "spec/roundtrip" `Quick test_spec_roundtrip;
    Alcotest.test_case "injector/deterministic" `Quick
      test_injector_deterministic;
    Alcotest.test_case "injector/zero-rate-no-prng" `Quick
      test_zero_rate_consumes_no_prng;
    Alcotest.test_case "injector/arming-counters" `Quick
      test_injector_arming_and_counters;
    Alcotest.test_case "injector/one-shot-events" `Quick test_one_shot_events;
    Alcotest.test_case "recovery/second-execute-after-stall" `Quick
      test_second_execute_after_stall;
    Alcotest.test_case "recovery/copy-retry-exhaustion" `Quick
      test_copy_retry_exhaustion;
    QCheck_alcotest.to_alcotest prop_consistency_under_injection;
    Alcotest.test_case "errors/exhaustive-strings" `Quick
      test_error_strings_exhaustive;
    Alcotest.test_case "errors/classify" `Quick test_classify;
    Alcotest.test_case "campaign/deterministic" `Slow
      test_campaign_deterministic;
  ]
