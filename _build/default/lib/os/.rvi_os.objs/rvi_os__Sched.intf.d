lib/os/sched.mli: Proc
