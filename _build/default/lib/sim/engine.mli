(** Discrete-event simulation engine.

    The engine owns the global simulated clock and an event queue. Hardware
    clock domains ({!Clock}) schedule their edges here; the simulated
    operating system consumes software time by running the engine forward
    with {!advance}. *)

type t

val create : unit -> t

val now : t -> Simtime.t
(** Current simulated time. *)

val schedule_at : t -> Simtime.t -> (unit -> unit) -> unit
(** [schedule_at t time f] runs [f] when simulated time reaches [time].
    Raises [Invalid_argument] if [time] is in the past. *)

val schedule_after : t -> Simtime.t -> (unit -> unit) -> unit
(** [schedule_after t delay f] is [schedule_at t (now t + delay) f]. *)

val step : t -> bool
(** Executes the earliest pending event. Returns [false] (and does nothing)
    if no event is pending. *)

val run_until : t -> Simtime.t -> unit
(** Executes every event scheduled strictly before or at the given time,
    then sets the clock to exactly that time. *)

val advance : t -> Simtime.t -> unit
(** [advance t dt] is [run_until t (now t + dt)]: consumes [dt] of simulated
    time, executing any hardware events that fall inside the span. This is
    how software execution cost is charged to the timeline. *)

val run_while : t -> (unit -> bool) -> unit
(** [run_while t cond] steps the engine as long as [cond ()] is [true] and
    events remain. Raises [Stalled] if the queue drains while [cond] still
    holds — that means the simulated hardware deadlocked. *)

exception Stalled
(** Raised by {!run_while} when no event can make further progress. *)

val events_processed : t -> int
(** Total number of events executed so far (for engine benchmarks). *)
