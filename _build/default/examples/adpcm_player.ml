(* adpcm_player: the paper's multimedia workload as an application.

   Decodes a 12 KB IMA-ADPCM clip (48 KB of PCM out — three times the
   dual-port memory) through the coprocessor, compares against the
   software decoder for both correctness and simulated time, and prints a
   tiny "VU meter" of the decoded audio to show the data is real.

   Run with:  dune exec examples/adpcm_player.exe *)

let () =
  let cfg = Rvi_harness.Config.default () in
  let clip_bytes = 12 * 1024 in
  let input = Rvi_harness.Workload.adpcm_stream ~seed:2024 ~bytes:clip_bytes in
  Printf.printf "clip: %d KB compressed -> %d KB PCM (dual-port RAM: %d KB)\n"
    (clip_bytes / 1024)
    (Rvi_coproc.Adpcm_ref.decoded_size clip_bytes / 1024)
    (cfg.Rvi_harness.Config.device.Rvi_fpga.Device.dpram_bytes / 1024);

  let sw = Rvi_harness.Runner.adpcm_sw cfg ~input in
  let hw = Rvi_harness.Runner.adpcm_vim cfg ~input in
  Rvi_harness.Report.print_table Format.std_formatter [ sw; hw ];
  (match Rvi_harness.Report.speedup ~baseline:sw hw with
  | Some s -> Printf.printf "speedup over software: %.2fx\n" s
  | None -> ());

  (* Show the decoded waveform is real audio: RMS level per block. *)
  let pcm = Rvi_coproc.Adpcm_ref.decode input in
  let samples = Bytes.length pcm / 2 in
  let blocks = 16 in
  let per_block = samples / blocks in
  print_endline "decoded signal level:";
  for blk = 0 to blocks - 1 do
    let acc = ref 0.0 in
    for i = blk * per_block to ((blk + 1) * per_block) - 1 do
      let v =
        Char.code (Bytes.get pcm (2 * i))
        lor (Char.code (Bytes.get pcm ((2 * i) + 1)) lsl 8)
      in
      let v = if v land 0x8000 <> 0 then v - 0x10000 else v in
      acc := !acc +. (float_of_int v *. float_of_int v)
    done;
    let rms = sqrt (!acc /. float_of_int per_block) in
    let bars = int_of_float (rms /. 32768.0 *. 60.0) in
    Printf.printf "  %2d |%s\n" blk (String.make bars '>')
  done;
  if not (Rvi_harness.Report.ok hw) then exit 1
