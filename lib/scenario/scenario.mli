(** Chaos scenarios as first-class values.

    A scenario bundles everything one adversarial run depends on: the
    application mix and input size, the platform geometry (device, IMU
    variant, TLB size and organization, replacement policy, prefetch,
    transfer mode, translation scheme), the fault plan (rate-based
    injection rules plus deterministic one-shot events) and the recovery
    budget (watchdog, execution retries, VIM retries). Scenarios
    serialise to a single [key=value;...] line that round-trips
    bit-exactly, which is what the corpus under [results/corpus/] and the
    pinned regressions under [test/corpus/] store. *)

type t = {
  seed : int;  (** injector / workload seed of the run *)
  apps : string list;  (** application mix, from {!Rvi_harness.Faults.app_names} *)
  input_kb : int;  (** per-application input size (KB, >= 1) *)
  device : string;  (** {!Rvi_fpga.Device.by_name} *)
  translation : Rvi_core.Translation_mode.t;
  imu : Rvi_harness.Config.imu_kind;
  tlb_entries : int option;  (** [None]: one entry per dual-port page *)
  tlb_org : Rvi_core.Tlb.organization;
  policy : string;  (** replacement policy name *)
  prefetch_depth : int;  (** [0] = prefetch off *)
  transfer : Rvi_core.Vim.transfer_mode;
  rates : Rvi_inject.Spec.t;  (** rate-based fault rules *)
  events : (Rvi_inject.Fault.kind * int) list;
      (** deterministic one-shot faults: fire at the n-th injection
          opportunity of the kind (1-based) *)
  watchdog_us : int;  (** [0] = watchdog disabled (capped at 2 s simulated) *)
  exec_retries : int;
  max_retries : int;  (** VIM in-recovery retry budget *)
  tenants : int;
      (** [> 1] routes the run through the multi-tenant service
          ({!Rvi_svc.Service}) instead of the single-tenant runner *)
  slo_p99_ms : int;
      (** declared p99 latency objective for service runs; [0] = none *)
}

val default : t
(** The paper's system under no injection: EPXA1, FIFO, per-page TLB,
    4 KB of input to ADPCM, 10 ms watchdog. *)

val known_bad : t
(** The seeded adversarial scenario the shrinker acceptance starts from:
    coprocessor hang + lost IRQ one-shots with the watchdog disabled —
    the interface can never be reclaimed, violating the progress
    invariant. *)

val to_string : t -> string
(** One line, fixed field order; round-trips through {!of_string}. *)

val of_string : string -> (t, string) result
(** Parse the {!to_string} form. Unknown fields, devices, policies or
    fault kinds are errors; omitted fields take their {!default} value. *)

val generate : seed:int -> index:int -> t
(** Scenario [index] of campaign [seed], via [Prng.derive] — a pure
    function of the two, independent of sharding or host. Generated
    scenarios stay inside the envelope the recovery machinery is
    specified to survive (sane watchdogs, nonzero retry budgets, bounded
    fault pressure): any invariant violation found on one is a real bug. *)

val measure : t -> int
(** Shrinking order: fault events dominate, then rate rules, workload
    breadth, input size and non-default geometry. The shrinker only
    accepts candidates of strictly smaller measure. *)

val pp : Format.formatter -> t -> unit
