lib/core/vim.mli: Frame_table Imu Mapped_object Policy Prefetch Rvi_mem Rvi_os Rvi_sim
