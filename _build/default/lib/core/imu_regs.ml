let ar_encode ~obj_id ~addr =
  if obj_id < 0 || obj_id > 0xFF then invalid_arg "Imu_regs.ar_encode: bad object id";
  if addr < 0 || addr > 0xFF_FFFF then invalid_arg "Imu_regs.ar_encode: bad address";
  (obj_id lsl 24) lor addr

let ar_obj ar = (ar lsr 24) land 0xFF
let ar_addr ar = ar land 0xFF_FFFF

let sr_fault = 1 lsl 0
let sr_fin = 1 lsl 1
let sr_busy = 1 lsl 2
let sr_params_done = 1 lsl 3

let sr_encode ~fault ~fin ~busy ~params_done =
  (if fault then sr_fault else 0)
  lor (if fin then sr_fin else 0)
  lor (if busy then sr_busy else 0)
  lor if params_done then sr_params_done else 0

let cr_start = 1 lsl 0
let cr_resume = 1 lsl 1
let cr_irq_enable = 1 lsl 2
let cr_reset = 1 lsl 3

let test word mask = word land mask = mask
