lib/core/stub_gen.mli: Mapped_object
