type config = {
  lookup_states : int;
  tlb_entries : int;
  tlb_organization : Tlb.organization;
}

let default_config =
  { lookup_states = 2; tlb_entries = 8; tlb_organization = Tlb.Fully_associative }

let pipelined_config =
  { lookup_states = 0; tlb_entries = 8; tlb_organization = Tlb.Fully_associative }

(* Access protocol: the coprocessor pulses CP_ACCESS for exactly one cycle
   with the request fields held; the IMU latches it on the next edge and
   answers with a one-cycle CP_TLBHIT pulse when the dual-port access
   completes — on the 4th rising edge after the request with the default
   2-cycle CAM search (Figure 7). A miss parks the FSM in [Faulted] with
   the coprocessor stalled until the OS resumes translation. *)
type state =
  | Idle
  | Lookup of int (* remaining search cycles, >= 1 *)
  | Access of int (* resolved physical page *)
  | Faulted

let show_state = function
  | Idle -> "idle"
  | Lookup n -> Printf.sprintf "lookup%d" n
  | Access _ -> "access"
  | Faulted -> "fault"

type access_event = {
  at_cycle : int;
  obj_id : int;
  vpn : int;
  offset : int;
  wr : bool;
  tlb_hit : bool;
}

type request = {
  obj_id : int;
  addr : int;
  wr : bool;
  data : int;
  width : Cp_port.width;
}

type t = {
  cfg : config;
  port : Cp_port.t;
  dpram : Rvi_mem.Dpram.t;
  geom : Rvi_mem.Page.geometry;
  raise_irq : unit -> unit;
  tlb : Tlb.t;
  fsm : state Rvi_hw.Fsm.t;
  mutable req : request option; (* latched request being translated *)
  mutable param_page : int option;
  mutable params_done : bool;
  mutable fault : (int * int) option;
  mutable fin_seen : bool;
  mutable prev_fin : bool; (* for rising-edge detection across executions *)
  mutable start_pending : bool;
  mutable resume_pending : bool;
  mutable just_resumed : bool;
  (* outputs computed this cycle, committed at the edge *)
  mutable out_start : bool;
  mutable out_tlbhit : bool;
  mutable out_din : int;
  mutable cycle : int;
  mutable trace : (access_event -> unit) option;
  mutable hung : bool;
  mutable injector : Rvi_inject.Injector.t option;
  stats : Rvi_sim.Stats.t;
  (* pre-resolved handles for the per-cycle / per-access hot paths *)
  c_busy : Rvi_sim.Stats.counter;
  c_hang : Rvi_sim.Stats.counter;
  c_stall : Rvi_sim.Stats.counter;
  c_accesses : Rvi_sim.Stats.counter;
  c_reads : Rvi_sim.Stats.counter;
  c_writes : Rvi_sim.Stats.counter;
  c_param_reads : Rvi_sim.Stats.counter;
}

let create ?(config = default_config) ~port ~dpram ~raise_irq () =
  if config.lookup_states < 0 then invalid_arg "Imu.create: negative lookup_states";
  let stats = Rvi_sim.Stats.create () in
  {
    cfg = config;
    port;
    dpram;
    geom = Rvi_mem.Dpram.geometry dpram;
    raise_irq;
    tlb =
      Tlb.create ~organization:config.tlb_organization
        ~entries:config.tlb_entries ();
    fsm = Rvi_hw.Fsm.create ~name:"imu" ~init:Idle ~show:show_state;
    req = None;
    param_page = None;
    params_done = false;
    fault = None;
    fin_seen = false;
    prev_fin = false;
    start_pending = false;
    resume_pending = false;
    just_resumed = false;
    out_start = false;
    out_tlbhit = false;
    out_din = 0;
    cycle = 0;
    trace = None;
    hung = false;
    injector = None;
    stats;
    c_busy = Rvi_sim.Stats.counter stats "busy_cycles";
    c_hang = Rvi_sim.Stats.counter stats "hang_cycles";
    c_stall = Rvi_sim.Stats.counter stats "stall_cycles";
    c_accesses = Rvi_sim.Stats.counter stats "accesses";
    c_reads = Rvi_sim.Stats.counter stats "reads";
    c_writes = Rvi_sim.Stats.counter stats "writes";
    c_param_reads = Rvi_sim.Stats.counter stats "param_reads";
  }

let config t = t.cfg
let tlb t = t.tlb
let port t = t.port

(* Translation attempt for the latched request: the physical page on a hit,
   [None] on a miss. Parameter-object accesses bypass the TLB; the first
   non-parameter access marks the parameters consumed. *)
let resolve t r =
  if r.obj_id = Cp_port.param_obj then begin
    match t.param_page with
    | Some ppn ->
      Rvi_sim.Stats.tick t.c_param_reads;
      Some ppn
    | None -> failwith "Imu: parameter access with no parameter page configured"
  end
  else begin
    if not t.params_done then t.params_done <- true;
    let vpn = Rvi_mem.Page.vpn t.geom r.addr in
    Tlb.translate t.tlb ~obj_id:r.obj_id ~vpn ~stamp:t.cycle ~wr:r.wr
  end

let enter_fault t r =
  let vpn = Rvi_mem.Page.vpn t.geom r.addr in
  let key = (r.obj_id, vpn) in
  if t.just_resumed && t.fault = Some key then
    failwith
      (Printf.sprintf
         "Imu: double fault on object %d page %d — OS resumed without \
          installing a translation"
         r.obj_id vpn);
  t.fault <- Some key;
  t.just_resumed <- false;
  Rvi_sim.Stats.incr t.stats "faults";
  Rvi_hw.Fsm.goto t.fsm Faulted;
  t.raise_irq ()

let perform_access t r ppn =
  let offset = Rvi_mem.Page.offset t.geom r.addr in
  let bytes = Cp_port.width_bytes r.width in
  if offset + bytes > t.geom.Rvi_mem.Page.page_size then
    failwith "Imu: access crosses a page boundary (coprocessor must align)";
  let paddr = Rvi_mem.Page.base t.geom ppn + offset in
  let width = Cp_port.width_bits r.width in
  if r.wr then begin
    let data =
      (* A wrong-result fault: the datapath computes garbage, so the store
         carries a silently corrupted value. Nothing traps — only output
         verification can catch it. *)
      match t.injector with
      | Some inj when Rvi_inject.Injector.fire inj Rvi_inject.Fault.Coproc_wrong ->
        Rvi_sim.Stats.incr t.stats "wrong_results";
        r.data lxor (1 + Rvi_inject.Injector.draw inj ((1 lsl width) - 1))
      | _ -> r.data
    in
    Rvi_mem.Dpram.write t.dpram ~width paddr data;
    Rvi_sim.Stats.tick t.c_writes
  end
  else begin
    t.out_din <- Rvi_mem.Dpram.read t.dpram ~width paddr;
    Rvi_sim.Stats.tick t.c_reads
  end;
  t.out_tlbhit <- true;
  t.just_resumed <- false;
  t.fault <- None

(* Attempt translation of request [r]; with a zero-cycle CAM search the
   access completes in the same state. *)
let translate_or_fault t r =
  if t.cfg.lookup_states = 0 then begin
    match resolve t r with
    | Some ppn ->
      perform_access t r ppn;
      Rvi_hw.Fsm.goto t.fsm Idle
    | None -> enter_fault t r
  end
  else Rvi_hw.Fsm.goto t.fsm (Lookup t.cfg.lookup_states)

let begin_translation t =
  let p = t.port in
  let r =
    {
      obj_id = p.Cp_port.cp_obj;
      addr = p.Cp_port.cp_addr;
      wr = p.Cp_port.cp_wr;
      data = p.Cp_port.cp_dout;
      width = p.Cp_port.cp_width;
    }
  in
  t.req <- Some r;
  Rvi_sim.Stats.tick t.c_accesses;
  (match t.trace with
  | Some probe when r.obj_id <> Cp_port.param_obj ->
    let vpn = Rvi_mem.Page.vpn t.geom r.addr in
    let tlb_hit = Tlb.lookup t.tlb ~obj_id:r.obj_id ~vpn <> Tlb.Miss in
    probe
      {
        at_cycle = t.cycle;
        obj_id = r.obj_id;
        vpn;
        offset = Rvi_mem.Page.offset t.geom r.addr;
        wr = r.wr;
        tlb_hit;
      }
  | Some _ -> ()
  | None -> ());
  match t.injector with
  | Some inj when Rvi_inject.Injector.fire inj Rvi_inject.Fault.Coproc_hang ->
    (* The accelerator wedges: the latched access never completes, CP_TLBHIT
       never pulses, and SR shows neither fault nor fin. Only the VIM's
       watchdog (followed by a CR reset) gets out of this. *)
    t.hung <- true;
    Rvi_sim.Stats.incr t.stats "hangs";
    Rvi_hw.Fsm.stay t.fsm
  | _ -> translate_or_fault t r

let compute t =
  t.out_start <- false;
  t.out_tlbhit <- false;
  if t.hung then begin
    Rvi_sim.Stats.tick t.c_hang;
    Rvi_hw.Fsm.stay t.fsm
  end
  else begin
  (match Rvi_hw.Fsm.state t.fsm with
  | Idle -> ()
  | Lookup _ | Access _ | Faulted -> Rvi_sim.Stats.tick t.c_busy);
  (* CP_FIN is level-held by the coprocessor; latch its rising edge so a
     completion left over from a previous execution is not re-reported. *)
  let fin_now = t.port.Cp_port.cp_fin in
  if fin_now && (not t.prev_fin) && not t.fin_seen then begin
    t.fin_seen <- true;
    t.raise_irq ()
  end;
  t.prev_fin <- fin_now;
  match Rvi_hw.Fsm.state t.fsm with
  | Idle ->
    if t.start_pending then begin
      t.start_pending <- false;
      t.out_start <- true;
      Rvi_hw.Fsm.stay t.fsm
    end
    else if t.port.Cp_port.cp_access && not t.fin_seen then begin_translation t
    else Rvi_hw.Fsm.stay t.fsm
  | Lookup n when n > 1 -> Rvi_hw.Fsm.goto t.fsm (Lookup (n - 1))
  | Lookup _ -> begin
    match t.req with
    | None -> failwith "Imu: lookup state with no latched request"
    | Some r -> (
      match resolve t r with
      | Some ppn -> Rvi_hw.Fsm.goto t.fsm (Access ppn)
      | None -> enter_fault t r)
  end
  | Access ppn -> begin
    match t.req with
    | None -> failwith "Imu: access state with no latched request"
    | Some r ->
      perform_access t r ppn;
      Rvi_hw.Fsm.goto t.fsm Idle
  end
  | Faulted ->
    Rvi_sim.Stats.tick t.c_stall;
    if t.resume_pending then begin
      t.resume_pending <- false;
      t.just_resumed <- true;
      match t.req with
      | None -> failwith "Imu: resume with no latched request"
      | Some r -> translate_or_fault t r
    end
    else Rvi_hw.Fsm.stay t.fsm
  end

let commit t =
  Rvi_hw.Fsm.commit t.fsm;
  t.port.Cp_port.cp_start <- t.out_start;
  t.port.Cp_port.cp_tlbhit <- t.out_tlbhit;
  if t.out_tlbhit then t.port.Cp_port.cp_din <- t.out_din;
  t.cycle <- t.cycle + 1

(* Idle fast-forward contract ({!Rvi_sim.Clock.component}): a tick is a
   no-op iff it would leave the FSM, the CP port and every counter exactly
   as executing it would, given no other component runs meanwhile. The
   output pulses ([cp_start]/[cp_tlbhit]) make the tick after an active
   cycle non-idle (it must drop the pulse), and a CP_FIN level change means
   rising-edge detection work, so both force an immediate tick. A [Lookup]
   countdown is pure bookkeeping: its remaining [n - 1] decrements can be
   applied wholesale by [skip]. *)
let idle_hint t =
  let p = t.port in
  if p.Cp_port.cp_start || p.Cp_port.cp_tlbhit then 0
  else if t.hung then max_int
  else if p.Cp_port.cp_fin <> t.prev_fin then 0
  else
    match Rvi_hw.Fsm.state t.fsm with
    | Idle ->
      if t.start_pending || (p.Cp_port.cp_access && not t.fin_seen) then 0
      else max_int
    | Lookup n -> n - 1
    | Access _ -> 0
    | Faulted -> if t.resume_pending then 0 else max_int

let skip t k =
  t.cycle <- t.cycle + k;
  if t.hung then Rvi_sim.Stats.tick_by t.c_hang k
  else
    match Rvi_hw.Fsm.state t.fsm with
    | Idle -> ()
    | Lookup n ->
      Rvi_sim.Stats.tick_by t.c_busy k;
      Rvi_hw.Fsm.fast_forward t.fsm ~transitions:k (Lookup (n - k))
    | Faulted ->
      Rvi_sim.Stats.tick_by t.c_busy k;
      Rvi_sim.Stats.tick_by t.c_stall k
    | Access _ -> assert false (* idle_hint returns 0 in [Access] *)

let component t =
  Rvi_sim.Clock.component ~name:"imu"
    ~idle_hint:(fun () -> idle_hint t)
    ~skip:(fun k -> skip t k)
    ~compute:(fun () -> compute t)
    ~commit:(fun () -> commit t)
    ()

let read_ar t =
  match t.req with
  | Some r -> Imu_regs.ar_encode ~obj_id:r.obj_id ~addr:r.addr
  | None -> 0

let read_sr t =
  Imu_regs.sr_encode
    ~fault:(Rvi_hw.Fsm.state t.fsm = Faulted)
    ~fin:t.fin_seen
    ~busy:(Rvi_hw.Fsm.state t.fsm <> Idle)
    ~params_done:t.params_done

let write_cr t word =
  if Imu_regs.test word Imu_regs.cr_reset then begin
    Rvi_hw.Fsm.reset t.fsm Idle;
    t.hung <- false;
    t.req <- None;
    t.fault <- None;
    t.fin_seen <- false;
    t.prev_fin <- t.port.Cp_port.cp_fin;
    t.params_done <- false;
    t.start_pending <- false;
    t.resume_pending <- false;
    t.just_resumed <- false;
    t.out_start <- false;
    t.out_tlbhit <- false;
    t.port.Cp_port.cp_start <- false;
    t.port.Cp_port.cp_tlbhit <- false
  end;
  if Imu_regs.test word Imu_regs.cr_start then t.start_pending <- true;
  if Imu_regs.test word Imu_regs.cr_resume then t.resume_pending <- true

let set_param_page t p = t.param_page <- p
let set_trace t probe = t.trace <- probe
let set_injector t inj = t.injector <- inj
let hung t = t.hung
let fault t = if Rvi_hw.Fsm.state t.fsm = Faulted then t.fault else None
let params_done t = t.params_done
let finished t = t.fin_seen
let cycle t = t.cycle
let stats t = t.stats
