lib/coproc/arbiter.ml: Array Rvi_core Rvi_sim
