let create ?(tlb_entries = Imu.pipelined_config.Imu.tlb_entries)
    ?(translation = Imu.pipelined_config.Imu.translation) ~port ~dpram
    ~raise_irq () =
  let config = { Imu.pipelined_config with Imu.tlb_entries; translation } in
  Imu.create ~config ~port ~dpram ~raise_irq ()
