(** Trace exporters: JSON lines (round-trip) and Chrome [trace_event].

    The Chrome document loads directly in about://tracing or Perfetto:
    spans appear on a "VIM service" track (execute > interrupt > fault
    service > SWimu decode / SWdp copy / TLB update), instants on an
    "interface events" track. *)

exception Parse_error of string

val to_jsonl : Trace.event list -> string
(** One flat JSON object per line, oldest first. *)

val of_jsonl : string -> Trace.event list
(** Inverse of {!to_jsonl}. Blank lines are skipped; malformed lines
    raise {!Parse_error}. *)

val event_to_json : Trace.event -> string
val event_of_json : string -> Trace.event

val to_chrome : Trace.event list -> string
(** A [{"traceEvents":[...]}] JSON document, events sorted by start time
    so nested spans render correctly. *)

val write_file : string -> string -> unit
(** [write_file path contents] — small convenience for the CLI and
    examples. *)
