(* Equivalence checking between the behavioural IMU and its RTL
   refinement: both machines run the same random access scripts in
   lockstep on one clock, with the test playing the operating system for
   both sides on faults. Port behaviour must match cycle for cycle and
   the memory and dirty-bit effects must be identical at the end. *)

module Simtime = Rvi_sim.Simtime
module Engine = Rvi_sim.Engine
module Clock = Rvi_sim.Clock
module Cp_port = Rvi_core.Cp_port
module Imu = Rvi_core.Imu
module Imu_rtl = Rvi_core.Imu_rtl
module Tlb = Rvi_core.Tlb
module Workload = Rvi_harness.Workload

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

type side = {
  dpram : Rvi_mem.Dpram.t;
  port : Cp_port.t;
  vport : Rvi_coproc.Vport.t;
  irq : bool ref;
  finished : unit -> bool;
  fault : unit -> (int * int) option;
  install : slot:int -> obj_id:int -> vpn:int -> ppn:int -> unit;
  resume : unit -> unit;
  start : unit -> unit;
  dirty : slot:int -> bool;
  read_sr : unit -> int;
  read_ar : unit -> int;
}

let geom = Rvi_fpga.Device.geometry Rvi_fpga.Device.epxa1

module SC = Test_vim.Script_coproc (Rvi_coproc.Vport)

let preload dpram seed =
  (* Same pseudo-random initial contents on both sides. *)
  for page = 0 to Rvi_mem.Dpram.n_pages dpram - 1 do
    let data = Workload.random_bytes ~seed:(seed + page) ~n:2048 in
    Rvi_mem.Dpram.load_page dpram ~page data ~src:0 ~len:2048
  done

let make_behavioural clock script seed =
  let dpram = Rvi_mem.Dpram.create geom in
  preload dpram seed;
  let port = Cp_port.create () in
  let irq = ref false in
  let imu = Imu.create ~port ~dpram ~raise_irq:(fun () -> irq := true) () in
  let vport = Rvi_coproc.Vport.create port in
  let m, coproc = SC.create vport script in
  ignore m;
  Clock.add clock (Imu.component imu);
  Clock.add clock (Rvi_coproc.Vport.sync_component vport);
  Clock.add clock coproc.Rvi_coproc.Coproc.component;
  Imu.set_param_page imu (Some 0);
  {
    dpram;
    port;
    vport;
    irq;
    finished = (fun () -> Imu.finished imu);
    fault = (fun () -> Imu.fault imu);
    install =
      (fun ~slot ~obj_id ~vpn ~ppn ->
        Tlb.insert (Imu.tlb imu) ~slot ~obj_id ~vpn ~ppn ~stamp:0);
    resume = (fun () -> Imu.write_cr imu Rvi_core.Imu_regs.cr_resume);
    start = (fun () -> Imu.write_cr imu Rvi_core.Imu_regs.cr_start);
    dirty =
      (fun ~slot ->
        let e = Tlb.get (Imu.tlb imu) ~slot in
        e.Tlb.valid && e.Tlb.dirty);
    read_sr = (fun () -> Imu.read_sr imu);
    read_ar = (fun () -> Imu.read_ar imu);
  }

let make_rtl clock script seed =
  let dpram = Rvi_mem.Dpram.create geom in
  preload dpram seed;
  let port = Cp_port.create () in
  let irq = ref false in
  let imu = Imu_rtl.create ~port ~dpram ~raise_irq:(fun () -> irq := true) () in
  let vport = Rvi_coproc.Vport.create port in
  let m, coproc = SC.create vport script in
  ignore m;
  Clock.add clock (Imu_rtl.component imu);
  Clock.add clock (Rvi_coproc.Vport.sync_component vport);
  Clock.add clock coproc.Rvi_coproc.Coproc.component;
  Imu_rtl.set_param_page imu (Some 0);
  {
    dpram;
    port;
    vport;
    irq;
    finished = (fun () -> Imu_rtl.finished imu);
    fault = (fun () -> Imu_rtl.fault imu);
    install =
      (fun ~slot ~obj_id ~vpn ~ppn -> Imu_rtl.tlb_write imu ~slot ~obj_id ~vpn ~ppn);
    resume = (fun () -> Imu_rtl.write_cr imu Rvi_core.Imu_regs.cr_resume);
    start = (fun () -> Imu_rtl.write_cr imu Rvi_core.Imu_regs.cr_start);
    dirty = (fun ~slot -> Imu_rtl.tlb_dirty imu ~slot);
    read_sr = (fun () -> Imu_rtl.read_sr imu);
    read_ar = (fun () -> Imu_rtl.read_ar imu);
  }

(* Accesses over two objects, two pages each; page-1 touches fault in. *)
let equivalence_script prng ~n =
  List.init n (fun _ ->
      let region = Rvi_sim.Prng.int prng 3 in
      let region = if region = 2 then Cp_port.param_obj else region in
      let width, bytes =
        match Rvi_sim.Prng.int prng 3 with
        | 0 -> (Cp_port.W8, 1)
        | 1 -> (Cp_port.W16, 2)
        | _ -> (Cp_port.W32, 4)
      in
      let addr =
        if region = Cp_port.param_obj then 4 * Rvi_sim.Prng.int prng 8
        else
          let a = Rvi_sim.Prng.int prng (4096 - bytes + 1) in
          a - (a mod bytes)
      in
      let wr = region <> Cp_port.param_obj && Rvi_sim.Prng.bool prng in
      let data = Rvi_sim.Prng.int prng 0x1000000 in
      ( region,
        addr,
        (if region = Cp_port.param_obj then Cp_port.W32 else width),
        wr,
        data ))

let run_equivalence ~seed ~n =
  let engine = Engine.create () in
  let clock = Clock.create engine ~name:"c" ~freq_hz:1_000_000 in
  let prng = Rvi_sim.Prng.create ~seed in
  let script = equivalence_script prng ~n in
  let a = make_behavioural clock script seed in
  let b = make_rtl clock script seed in
  (* Pre-install page 0 of both objects in slots 0/1 of both machines. *)
  List.iter
    (fun side ->
      side.install ~slot:0 ~obj_id:0 ~vpn:0 ~ppn:1;
      side.install ~slot:1 ~obj_id:1 ~vpn:0 ~ppn:2;
      side.start ())
    [ a; b ];
  let mismatches = ref [] in
  Clock.on_edge clock (fun cycle ->
      let pa = a.port and pb = b.port in
      if
        pa.Cp_port.cp_tlbhit <> pb.Cp_port.cp_tlbhit
        || pa.Cp_port.cp_start <> pb.Cp_port.cp_start
        || (pa.Cp_port.cp_tlbhit && pa.Cp_port.cp_din <> pb.Cp_port.cp_din)
        || pa.Cp_port.cp_access <> pb.Cp_port.cp_access
        || pa.Cp_port.cp_fin <> pb.Cp_port.cp_fin
      then mismatches := cycle :: !mismatches);
  Clock.start clock;
  let next_slot = ref 2 in
  let guard = ref 0 in
  while (not (a.finished () && b.finished ())) && !guard < 200_000 do
    incr guard;
    ignore (Engine.step engine);
    if !(a.irq) || !(b.irq) then begin
      checkb "both sides interrupt together" true (!(a.irq) && !(b.irq));
      a.irq := false;
      b.irq := false;
      checki "identical SR" (a.read_sr ()) (b.read_sr ());
      match (a.fault (), b.fault ()) with
      | Some (oa, va), Some (ob_, vb) ->
        checkb "identical fault" true (oa = ob_ && va = vb);
        checki "identical AR" (a.read_ar ()) (b.read_ar ());
        let slot = !next_slot mod 8 and ppn = 3 + (!next_slot mod 5) in
        incr next_slot;
        List.iter
          (fun side ->
            side.install ~slot ~obj_id:oa ~vpn:va ~ppn;
            side.resume ())
          [ a; b ]
      | None, None -> () (* completion interrupt *)
      | Some _, None | None, Some _ -> Alcotest.fail "fault on one side only"
    end
  done;
  Clock.stop clock;
  checkb "both machines finished" true (a.finished () && b.finished ());
  Alcotest.(check (list int)) "no port mismatches" [] !mismatches;
  (* Memory effects and hardware dirty bits agree. *)
  for page = 0 to Rvi_mem.Dpram.n_pages a.dpram - 1 do
    let da = Bytes.create 2048 and db = Bytes.create 2048 in
    Rvi_mem.Dpram.store_page a.dpram ~page da ~dst:0 ~len:2048;
    Rvi_mem.Dpram.store_page b.dpram ~page db ~dst:0 ~len:2048;
    checkb (Printf.sprintf "page %d identical" page) true (Bytes.equal da db)
  done;
  for slot = 0 to 7 do
    checkb
      (Printf.sprintf "slot %d dirty bit identical" slot)
      true
      (a.dirty ~slot = b.dirty ~slot)
  done

let test_equivalence_small () = run_equivalence ~seed:1 ~n:40
let test_equivalence_faulty () = run_equivalence ~seed:2 ~n:120

let prop_equivalence =
  QCheck.Test.make ~name:"behavioural and RTL IMUs are cycle-equivalent"
    ~count:10
    QCheck.(pair (int_bound 100_000) (int_range 10 150))
    (fun (seed, n) ->
      run_equivalence ~seed ~n;
      true)

let suite =
  [
    Alcotest.test_case "rtl/equivalence-small" `Quick test_equivalence_small;
    Alcotest.test_case "rtl/equivalence-faulty" `Quick test_equivalence_faulty;
    QCheck_alcotest.to_alcotest prop_equivalence;
  ]
