examples/idea_crypto.ml: Array Bytes Printf Rvi_coproc Rvi_harness Rvi_sim String
