lib/harness/jobs.ml: Array Bytes Calibration Char Config List Rvi_coproc Rvi_core Rvi_fpga Rvi_mem Rvi_os Rvi_sim Workload
