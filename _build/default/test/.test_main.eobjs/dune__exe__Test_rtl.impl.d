test/test_rtl.ml: Alcotest Bytes List Printf QCheck QCheck_alcotest Rvi_coproc Rvi_core Rvi_fpga Rvi_harness Rvi_mem Rvi_sim Test_vim
