lib/hw/bits.mli: Format
