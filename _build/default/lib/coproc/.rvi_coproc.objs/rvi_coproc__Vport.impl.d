lib/coproc/vport.ml: Rvi_core Rvi_sim
