test/test_sim.ml: Alcotest Bytes Format List QCheck QCheck_alcotest Rvi_hw Rvi_sim
