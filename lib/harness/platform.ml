module Clock = Rvi_sim.Clock
module Kernel = Rvi_os.Kernel
module Device = Rvi_fpga.Device

type t = {
  engine : Rvi_sim.Engine.t;
  kernel : Rvi_os.Kernel.t;
  dpram : Rvi_mem.Dpram.t;
  pld : Rvi_fpga.Pld.t;
  port : Rvi_core.Cp_port.t;
  imu : Rvi_core.Imu.t;
  clock : Rvi_sim.Clock.t;
  vim : Rvi_core.Vim.t;
  api : Rvi_core.Api.t;
  vport : Rvi_coproc.Vport.t;
  coproc : Rvi_coproc.Coproc.t;
  proc : Rvi_os.Proc.t;
}

let create ?(app_name = "app") ?(sdram_bytes = 4 * 1024 * 1024) (cfg : Config.t)
    ~bitstream ~make =
  let engine = Rvi_sim.Engine.create () in
  let cost =
    Rvi_os.Cost_model.default ~cpu_freq_hz:cfg.Config.device.Device.cpu_freq_hz
  in
  let kernel = Kernel.create ~engine ~cost ~sdram_bytes () in
  (match cfg.Config.trace with
  | Some _ as tr -> Kernel.set_trace kernel tr
  | None -> ());
  let dpram = Rvi_mem.Dpram.create (Device.geometry cfg.Config.device) in
  let pld = Rvi_fpga.Pld.create cfg.Config.device in
  let port = Rvi_core.Cp_port.create () in
  let imu =
    Rvi_core.Imu.create ~config:(Config.imu_config cfg) ~port ~dpram
      ~raise_irq:(fun () -> Rvi_os.Irq.raise_line (Kernel.irq kernel) ~line:0)
      ()
  in
  let clock =
    Clock.create engine ~name:"pld"
      ~freq_hz:bitstream.Rvi_fpga.Bitstream.imu_freq_hz
  in
  let vim =
    Rvi_core.Vim.create ~kernel ~dpram ~imu ~ahb:cfg.Config.device.Device.ahb
      ~clocks:[ clock ] (Config.vim_config cfg)
  in
  (match cfg.Config.injector with
  | Some inj ->
    (* One injector drives every hardware boundary of the platform, so a
       single seed reproduces the whole fault schedule. *)
    Rvi_mem.Dpram.set_injector dpram (Some inj);
    Rvi_os.Irq.set_injector (Kernel.irq kernel) (Some inj);
    Rvi_core.Imu.set_injector imu (Some inj);
    (match cfg.Config.trace with
    | Some tr ->
      Rvi_inject.Injector.set_observer inj
        (Some
           (fun k ->
             Rvi_obs.Trace.emit tr ~at:(Kernel.now kernel)
               (Rvi_obs.Trace.Inject { fault = Rvi_inject.Fault.name k })))
    | None -> ())
  | None -> ());
  let api = Rvi_core.Api.install ~kernel ~vim ~pld in
  let vport, coproc = make port in
  Rvi_core.Vim.set_abort_hook vim (fun () ->
      Rvi_core.Cp_port.reset port;
      Rvi_coproc.Vport.reset vport;
      coproc.Rvi_coproc.Coproc.reset ());
  Clock.add clock (Rvi_core.Imu.component imu);
  let divide = bitstream.Rvi_fpga.Bitstream.coproc_divide in
  if divide = 1 then
    Clock.add clock
      (Rvi_coproc.Vport.fused_component vport coproc.Rvi_coproc.Coproc.component)
  else begin
    Clock.add clock (Rvi_coproc.Vport.sync_component vport);
    Clock.add clock ~divide coproc.Rvi_coproc.Coproc.component
  end;
  let sched = Kernel.sched kernel in
  let proc = Rvi_os.Sched.spawn sched ~name:app_name in
  ignore (Rvi_os.Sched.schedule sched);
  { engine; kernel; dpram; pld; port; imu; clock; vim; api; vport; coproc; proc }

let alloc t n = Rvi_os.Uspace.alloc t.kernel n
let alloc_bytes t b = Rvi_os.Uspace.of_bytes t.kernel b
let read t buf = Rvi_os.Uspace.read t.kernel buf

let trace t =
  let wave = Rvi_hw.Wave.create () in
  Rvi_hw.Wave.add_signal wave ~name:"clk" ~width:1 (fun () -> 1);
  Rvi_core.Cp_port.probe t.port wave;
  Rvi_hw.Wave.attach wave t.clock;
  wave
