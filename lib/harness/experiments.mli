(** Reproduction of every figure in the paper's evaluation, plus the
    ablations DESIGN.md commits to.

    Each experiment returns its data and prints a human-readable rendering
    to the given formatter; [bench/main.exe] runs them all and
    [bin/rvisim.exe] exposes them individually. *)

(** {1 Figure 7 — coprocessor read access timing} *)

type fig7 = {
  waveform : string;  (** ASCII timing diagram of a translated read *)
  vcd : string;  (** same capture as a VCD dump *)
  latency_cycles : int;  (** edges from CP_ACCESS to data valid *)
}

val fig7 : ?pipelined:bool -> Format.formatter -> unit -> fig7

(** {1 Figures 8 and 9 — application measurements} *)

val fig8 :
  ?sizes_kb:int list -> ?jobs:int -> Format.formatter -> Config.t -> Report.row list
(** adpcmdecode: software and VIM-based versions per input size
    (default 2/4/8 KB). *)

val fig9 :
  ?sizes_kb:int list -> ?jobs:int -> Format.formatter -> Config.t -> Report.row list
(** IDEA: software, normal-coprocessor and VIM-based versions per input
    size (default 4/8/16/32 KB). *)

(** {1 §4.1 overhead claims} *)

type overheads = {
  adpcm_imu_share_max : float;
      (** largest SW(IMU) share of total across the adpcm runs (paper: up
          to 2.5 %) *)
  idea_translation_share : float;
      (** (VIM hardware - normal hardware) / VIM hardware at equal size
          (paper: about 20 %) *)
  dp_share_of_overhead : float;
      (** SW(DP) share of all software overhead in the VIM runs (paper:
          "the largest fraction") *)
}

val overheads : Format.formatter -> Config.t -> overheads

(** {1 Ablations}

    Every sweep below takes [?jobs] (default 1): variants shard over
    that many domains via {!Rvi_par.Par.map}, one variant per chunk.
    Each variant builds a private simulation stack, so row values are
    identical whatever [jobs] is and rendering happens only after the
    barrier. *)

val ablation_policy :
  ?jobs:int -> Format.formatter -> Config.t -> (string * Report.row) list
(** FIFO / LRU / random / second-chance on the faulting workloads. *)

val ablation_prefetch :
  ?jobs:int -> Format.formatter -> Config.t -> (string * Report.row) list

val ablation_pipelined_imu :
  ?jobs:int -> Format.formatter -> Config.t -> (string * Report.row) list
(** 4-cycle vs pipelined IMU on IDEA (the paper's announced follow-up). *)

val ablation_transfer :
  ?jobs:int -> Format.formatter -> Config.t -> (string * Report.row) list
(** Double (measured) vs single (announced fix) transfers. *)

val ablation_tlb_size :
  ?jobs:int -> Format.formatter -> Config.t -> (int * Report.row) list

val portability :
  ?jobs:int -> Format.formatter -> Config.t -> (string * Report.row) list
(** The same binaries across EPXA1/EPXA4/EPXA10 — only the module
    (configuration) changes, as §4 promises. *)

val ablation_chunked_normal :
  Format.formatter -> Config.t -> (string * Report.row) list
(** The hand-chunked normal driver (Figure 3's while loop) against VIM on
    a working set beyond the dual-port memory. *)

val ablation_tlb_org :
  ?jobs:int -> Format.formatter -> Config.t -> (string * Report.row) list
(** CAM vs 2-way vs direct-mapped TLB: conflict refill faults against the
    area a real CAM costs. *)

val ablation_dma :
  ?jobs:int -> Format.formatter -> Config.t -> (string * Report.row) list
(** CPU copies (the paper) vs the stripe's DMA engine for page movement. *)

val ablation_overlap :
  ?jobs:int -> Format.formatter -> Config.t -> (string * Report.row) list
(** Prefetch off / synchronous / overlapped with coprocessor execution —
    the §4.1 future work quantified. *)

(** One measured (workload, translation mode) cell of the translation
    ablation, with the hardware counters the report row does not carry:
    per-level TLB hit/miss counts and the page-table walker's latency
    percentiles (cycles, from the walker's histogram; zeros in paper
    mode, which has no walker). *)
type translation_point = {
  label : string;  (** ["workload/mode"] *)
  mode : Rvi_core.Translation_mode.t;
  row : Report.row;
  l1_hits : int;
  l1_misses : int;
  l2_hits : int;
  l2_misses : int;
  walks : int;
  walk_faults : int;
  walk_p50 : float;
  walk_p95 : float;
}

val ablation_translation :
  ?jobs:int ->
  ?smoke:bool ->
  Format.formatter ->
  Config.t ->
  translation_point list
(** The paper's per-object translation against the IOMMU/SVA mode (L1+L2
    TLB hierarchy, cycle-costed walker) on all four workloads — fault
    rates, TLB hit ratios per level, walk latency and end-to-end time per
    mode. [smoke] restricts to adpcm only (one run per mode), the cheap
    configuration the [make check] smoke target uses. *)

(** {1 Extensions beyond the paper} *)

val ext_fir :
  ?sizes_kb:int list -> ?jobs:int -> Format.formatter -> Config.t -> Report.row list
(** The FIR filter as a third application, in all three versions. *)

type miss_curve = {
  refs : int;  (** length of the page reference string *)
  frames_available : int;
  lru : int array;  (** misses for 1..16 frames under LRU *)
  fifo_at_available : int;
  measured_faults : int;  (** what the real run with the paper's VIM took *)
}

val miss_curve : Format.formatter -> Config.t -> miss_curve
(** Records the adpcm-8KB access trace through the IMU probe and computes
    the workload's miss-ratio curve (Mattson stack analysis), relating the
    measured fault count to the curve. *)

val ext_cbc : Format.formatter -> Config.t -> Report.row list
(** IDEA under ECB/CBC in both directions: CBC encryption's data
    recurrence serialises the 3-stage pipeline while CBC decryption keeps
    it full — the classic mode/pipelining interaction, measured on this
    core. *)

val sweep_page_size :
  Format.formatter -> Config.t -> (int * Report.row) list
(** Page-granularity sweep at fixed memory: copy volume vs fault-service
    overhead. *)

val sweep_memory_size :
  Format.formatter -> Config.t -> (int * Report.row) list
(** Dual-port memory size sweep at fixed page size: the knee where the
    working set starts to fit. *)

val ext_dual : Format.formatter -> Config.t -> float * float * bool
(** Two coprocessors (adpcmdecode + FIR) behind one IMU through the
    arbiter, sharing the paged memory and one unchanged VIM:
    [(serial_ms, concurrent_ms, both_verified)]. *)

val ext_oracle :
  Format.formatter -> Config.t -> (string * (int * bool)) list * int
(** Profile-guided Belady replacement on adpcm-8KB under pure demand
    paging: per-policy (faults, verified) plus the analytic OPT bound. *)

val sensitivity :
  ?jobs:int ->
  Format.formatter ->
  Config.t ->
  (int * (Report.row * Report.row) * (Report.row * Report.row * Report.row))
  list
(** Robustness of the conclusions to the least-certain calibration
    constant (AHB cycles per uncached word), swept across a 4x range. *)

val multiprogramming :
  ?jobs_per_app:int ->
  Format.formatter ->
  Config.t ->
  (string * Jobs.result) list
(** Lattice scheduling: a mixed batch of adpcm/IDEA/FIR jobs dispatched
    first-come-first-served vs grouped by bit-stream, quantifying
    reconfiguration thrash under the exclusive lock of [FPGA_LOAD]. *)

val all : ?jobs:int -> Format.formatter -> Config.t -> unit
(** Runs everything above in order, forwarding [jobs] to every sweep
    that shards over domains. *)
