lib/hw/wave.ml: Array Buffer Char List Printf Rvi_sim Stdlib String
