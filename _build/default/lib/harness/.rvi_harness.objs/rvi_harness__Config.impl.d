lib/harness/config.ml: Option Printf Rvi_core Rvi_fpga Rvi_sim
