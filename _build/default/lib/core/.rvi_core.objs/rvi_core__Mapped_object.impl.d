lib/core/mapped_object.ml: Cp_port Format Rvi_mem Rvi_os Stdlib
