lib/core/imu.ml: Cp_port Imu_regs Printf Rvi_hw Rvi_mem Rvi_sim Tlb
