type t = {
  ram : Ram.t;
  geom : Page.geometry;
  stats : Rvi_sim.Stats.t;
  corrupted : (int, unit) Hashtbl.t;
      (* byte addresses whose stored parity no longer matches the data,
         i.e. locations where an injected bit flip is still latent *)
  mutable injector : Rvi_inject.Injector.t option;
}

let create geom =
  {
    ram = Ram.create ~size:(Page.total_bytes geom);
    geom;
    stats = Rvi_sim.Stats.create ();
    corrupted = Hashtbl.create 16;
    injector = None;
  }

let set_injector t inj = t.injector <- inj

let geometry t = t.geom
let size t = Ram.size t.ram
let n_pages t = t.geom.Page.n_pages
let page_size t = t.geom.Page.page_size

let clear_corruption t ~pos ~len =
  if Hashtbl.length t.corrupted > 0 then
    for addr = pos to pos + len - 1 do
      Hashtbl.remove t.corrupted addr
    done

let read t ~width addr =
  Rvi_sim.Stats.incr t.stats "pld_reads";
  Ram.read t.ram ~width addr

let write t ~width addr v =
  Rvi_sim.Stats.incr t.stats "pld_writes";
  Ram.write t.ram ~width addr v;
  (* A store refreshes the parity of the bytes it covers... *)
  clear_corruption t ~pos:addr ~len:(width / 8);
  (* ...unless the cell flips a bit underneath it. The flip lands in the
     array (later reads see it) and leaves the parity stale, which is how
     the kernel's flush-time parity check catches it. *)
  match t.injector with
  | Some inj when Rvi_inject.Injector.fire inj Rvi_inject.Fault.Dpram_flip ->
    let bit = Rvi_inject.Injector.draw inj width in
    let byte_addr = addr + (bit / 8) in
    Ram.write8 t.ram byte_addr (Ram.read8 t.ram byte_addr lxor (1 lsl (bit mod 8)));
    Hashtbl.replace t.corrupted byte_addr ();
    Rvi_sim.Stats.incr t.stats "bit_flips"
  | _ -> ()

let check_page t page op =
  if page < 0 || page >= n_pages t then
    invalid_arg (Printf.sprintf "Dpram.%s: page %d out of [0, %d)" op page (n_pages t))

let parity_error t ~page =
  check_page t page "parity_error";
  Hashtbl.length t.corrupted > 0
  && (let base = Page.base t.geom page in
      let found = ref false in
      Hashtbl.iter
        (fun addr () ->
          if addr >= base && addr < base + page_size t then found := true)
        t.corrupted;
      !found)

let load_page t ~page buf ~src ~len =
  check_page t page "load_page";
  if len < 0 || len > page_size t then invalid_arg "Dpram.load_page: bad length";
  let base = Page.base t.geom page in
  Ram.blit_from_bytes buf ~src t.ram ~dst:base ~len;
  if len < page_size t then Ram.fill t.ram ~pos:(base + len) ~len:(page_size t - len) '\000';
  clear_corruption t ~pos:base ~len:(page_size t);
  Rvi_sim.Stats.incr t.stats "pages_loaded"

let store_page t ~page buf ~dst ~len =
  check_page t page "store_page";
  if len < 0 || len > page_size t then invalid_arg "Dpram.store_page: bad length";
  let base = Page.base t.geom page in
  Ram.blit_to_bytes t.ram ~src:base buf ~dst ~len;
  Rvi_sim.Stats.incr t.stats "pages_stored"

let clear_page t ~page =
  check_page t page "clear_page";
  Ram.fill t.ram ~pos:(Page.base t.geom page) ~len:(page_size t) '\000';
  clear_corruption t ~pos:(Page.base t.geom page) ~len:(page_size t)

let cpu_read32 t addr =
  Rvi_sim.Stats.incr t.stats "cpu_words";
  Ram.read32 t.ram addr

let cpu_write32 t addr v =
  Rvi_sim.Stats.incr t.stats "cpu_words";
  Ram.write32 t.ram addr v;
  clear_corruption t ~pos:addr ~len:4

let stats t = t.stats
