type direction = In | Out | Inout

let direction_name = function In -> "in" | Out -> "out" | Inout -> "inout"

type t = {
  id : int;
  buf : Rvi_os.Uspace.buf;
  dir : direction;
  stream : bool;
}

let make ~id ~buf ~dir ?(stream = false) () =
  if id < 0 || id > Cp_port.max_data_obj then
    invalid_arg "Mapped_object.make: identifier out of [0, 254]";
  if buf.Rvi_os.Uspace.size = 0 then
    invalid_arg "Mapped_object.make: empty buffer";
  { id; buf; dir; stream }

let size t = t.buf.Rvi_os.Uspace.size

let page_span t geom = Rvi_mem.Page.page_count geom ~len:(size t)

let bytes_on_page t geom ~vpn =
  let page_size = geom.Rvi_mem.Page.page_size in
  let start = vpn * page_size in
  if start >= size t then 0 else Stdlib.min page_size (size t - start)

let user_offset _t geom ~vpn = vpn * geom.Rvi_mem.Page.page_size

let pp ppf t =
  Format.fprintf ppf "object %d: %d B, %s%s" t.id (size t)
    (direction_name t.dir)
    (if t.stream then ", stream" else "")
