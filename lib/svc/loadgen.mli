(** Seed-deterministic open/closed-loop load generation.

    The tenant plan (weights, application mixes), every request's
    workload and the open-loop arrival process are pure functions of the
    seed — jittered interarrival gaps are drawn as integer picoseconds,
    never through [exp]/[log], so outputs are bit-stable across
    platforms. *)

type mode =
  | Closed  (** one outstanding request per tenant; resubmit on completion *)
  | Open of int  (** aggregate arrival rate, requests per second *)

type t

val create :
  seed:int ->
  tenants:int ->
  requests:int ->
  rate_hz:int ->
  bytes:int ->
  ?sq_capacity:int ->
  ?cq_capacity:int ->
  unit ->
  t
(** [rate_hz = 0] selects the closed loop; positive rates the open loop
    at that aggregate request rate. [requests] is the total across all
    tenants; [bytes] the nominal input size (each request draws in
    [bytes/2, 3*bytes/2) and is kind-aligned). Ring capacities default
    to 64. *)

val tenants : t -> Tenant.t array
val total : t -> int
val issued : t -> int

val feed : t -> Service.feed
(** The service-facing half: arrival peek, due-arrival delivery
    (admission refusals count as tenant drops) and closed-loop
    resubmission on completion. *)
