(* portability: the paper's §4 claim in action.

   "Using the module on the system with different size of the dual-port
   memory (e.g., the Altera devices EPXA4 and EPXA10) would require only
   recompiling the module. The user application would immediately benefit
   without need to recompile."

   This program runs the *identical* application and coprocessor across
   the three devices. Only the configuration record changes — the stand-in
   for recompiling the kernel module. Watch the page faults disappear as
   the dual-port memory grows, with zero changes to application code.

   Run with:  dune exec examples/portability.exe *)

let () =
  let input = Rvi_harness.Workload.adpcm_stream ~seed:5 ~bytes:(8 * 1024) in
  Printf.printf
    "adpcmdecode, 8 KB in / 32 KB out, same binaries on every device:\n\n";
  Printf.printf "%-8s %10s %10s %8s %8s %10s\n" "device" "DP RAM" "total(ms)"
    "faults" "evict" "verified";
  List.iter
    (fun device ->
      let cfg = { (Rvi_harness.Config.default ()) with Rvi_harness.Config.device } in
      let row = Rvi_harness.Runner.adpcm_vim cfg ~input in
      Printf.printf "%-8s %8dKB %10.3f %8d %8d %10b\n"
        device.Rvi_fpga.Device.name
        (device.Rvi_fpga.Device.dpram_bytes / 1024)
        (Rvi_sim.Simtime.to_ms row.Rvi_harness.Report.total)
        row.Rvi_harness.Report.faults row.Rvi_harness.Report.evictions
        row.Rvi_harness.Report.verified;
      if not (Rvi_harness.Report.ok row) then exit 1)
    Rvi_fpga.Device.all;
  print_endline
    "\nNo application or coprocessor change was needed — only the module \
     configuration.";
  (* And the other side of the coin: a bit-stream too big for a device is
     rejected at FPGA_LOAD time rather than failing silently. *)
  let big =
    Rvi_fpga.Bitstream.make ~name:"monster" ~logic_elements:20_000
      ~imu_freq_hz:40_000_000 ~param_words:0 ()
  in
  let pld = Rvi_fpga.Pld.create Rvi_fpga.Device.epxa1 in
  (match Rvi_fpga.Pld.configure pld ~pid:1 big with
  | Error e ->
    Printf.printf "FPGA_LOAD of a 20k-LE design on the EPXA1: %s\n"
      (Rvi_fpga.Pld.error_to_string e)
  | Ok () -> print_endline "unexpectedly configured!")
