(** Deterministic workload generators.

    The paper feeds the coprocessors multimedia and cryptographic data; we
    synthesise equivalents from seeded generators so every run is
    reproducible: a wandering-pitch tone with noise for the ADPCM decoder
    (compressed with the reference encoder, so the streams are legal) and
    uniform random bytes for the cipher. *)

val adpcm_stream : seed:int -> bytes:int -> Bytes.t
(** A valid IMA ADPCM stream of exactly [bytes] compressed bytes. *)

val random_bytes : seed:int -> n:int -> Bytes.t

val idea_key : seed:int -> int array
(** Eight 16-bit key words. *)

val idea_plaintext : seed:int -> bytes:int -> Bytes.t
(** Random blocks; [bytes] must be a multiple of 8. *)

val vectors : seed:int -> n:int -> int array * int array
(** Two 32-bit operand vectors for the vector-add example. *)

val fir_signal : seed:int -> bytes:int -> Bytes.t
(** A noisy multi-tone 16-bit signal for the FIR workload ([bytes] must be
    even). *)

val fir_coeffs : taps:int -> int array
(** The standard low-pass coefficient set used by the FIR experiments. *)
