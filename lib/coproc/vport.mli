(** {!Mem_port.S} over the virtual interface (Figure 4 signals).

    Pulses [CP_ACCESS] for one cycle per request and waits for the IMU's
    [CP_TLBHIT]; stalls transparently across page faults — the coprocessor
    logic never knows a fault happened, which is exactly the paper's
    abstraction. Asserting {!finish} holds [CP_FIN] until the next
    [CP_START].

    The IMU answers with single-cycle pulses in its own clock domain. A
    coprocessor on a divided clock (the paper's 6 MHz IDEA core against
    the 24 MHz memory subsystem) would miss them, so the port contains a
    synchroniser register stage: {!sync_component} must be registered on
    the {e IMU clock}, after the IMU and before the coprocessor — this is
    the "stall mechanism" synchronisation of §4.1. *)

include Mem_port.S

val create : Rvi_core.Cp_port.t -> t

val sync_component : t -> Rvi_sim.Clock.component
(** Latches the IMU's response pulses into sticky flags the coprocessor
    consumes at its own rate. Register on the IMU clock between the IMU
    and the coprocessor. *)

val fused_component :
  t -> imu:Rvi_core.Imu.t -> Rvi_sim.Clock.component -> Rvi_sim.Clock.component
(** [fused_component t ~imu coproc] merges the IMU, the synchroniser
    stage and a same-rate (divide 1) coprocessor component into a single
    clock slot with identical observable behaviour — compute runs IMU
    then sync then coproc, commit likewise, preserving the exact call
    order of the three separate registrations. Use instead of
    [Imu.component] + [sync_component] + [coproc] when the coprocessor is
    not on a divided clock: one slot per edge instead of three, calling
    the IMU's direct edge interface with no per-layer closure. *)

val accesses : t -> int
(** Requests issued since creation. *)
