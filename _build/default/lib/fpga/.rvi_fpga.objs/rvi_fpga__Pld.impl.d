lib/fpga/pld.ml: Bitstream Device Format
