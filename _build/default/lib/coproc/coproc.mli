(** Common shape of an instantiated coprocessor.

    A coprocessor is a clocked component plus the little state the system
    integrator needs: whether it has completed, a reset for re-execution,
    and its activity counters. Instances are produced by the [Make]
    functors in {!Vecadd}, {!Adpcm_coproc} and {!Idea_coproc}. *)

type t = {
  name : string;
  component : Rvi_sim.Clock.component;
  finished : unit -> bool;
  reset : unit -> unit;
  stats : Rvi_sim.Stats.t;
}
