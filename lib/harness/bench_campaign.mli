(** Wall-clock benchmark of the campaign runner, kept as a trajectory.

    Times the same seeded fault campaign serially and with [jobs]
    domains, checks the two classify every run identically (the
    {!Rvi_par.Par} determinism contract, asserted on real wall time, not
    just in unit tests), and appends the numbers as one {e trajectory
    point} to the [BENCH_campaign.json] document — a JSON array, newest
    point last, so the repo history carries real before/after
    performance data instead of a single overwritten measurement.

    Each point records the short commit hash and the host's core count
    alongside the rates, so a regression check can tell "the simulator
    got slower" from "this is a different machine". *)

type point = {
  benchmark : string;
      (** series label: ["faults-campaign"] for the paper-mode campaign,
          ["faults-campaign-sva"] for the IOMMU/SVA one — regression
          gates compare within one series only *)
  commit : string;  (** [git rev-parse --short HEAD], ["unknown"] outside git *)
  host_cores : int;  (** [Domain.recommended_domain_count] on the host *)
  runs : int;
  seed : int;
  jobs : int;
  serial_s : float;  (** wall-clock of the [jobs = 1] campaign *)
  parallel_s : float;  (** wall-clock of the [jobs = n] campaign *)
  serial_runs_per_sec : float;
  parallel_runs_per_sec : float;
  speedup : float;  (** [serial_s /. parallel_s] *)
  deterministic : bool;
      (** per-run classification vectors and merged summaries equal *)
  survival : float;  (** campaign survival %, a sanity anchor *)
  phase_setup_s : float;
      (** host seconds of the serial pass spent acquiring platforms,
          allocating buffers, loading and mapping ({!Runner.Phases}) *)
  phase_execute_s : float;  (** … spent in the FPGA_EXECUTE attempt loop *)
  phase_report_s : float;  (** … spent on stats reads and row assembly *)
}

val run :
  ?runs:int ->
  ?seed:int ->
  ?translation:Rvi_core.Translation_mode.t ->
  jobs:int ->
  unit ->
  point
(** Defaults: 200 runs, seed 2004, paper-mode translation. [translation]
    selects which campaign is timed and thereby the point's [benchmark]
    series label. *)

val point_json : point -> string
(** One trajectory entry (a JSON object, indented for the array). *)

val default_path : string
(** ["BENCH_campaign.json"]. *)

val append : ?path:string -> point -> string
(** Appends the point to the JSON array at [path] (default
    {!default_path}), creating the file if needed; returns the path. *)

val last_serial_rps :
  ?path:string -> ?benchmark:string -> unit -> float option
(** [serial_runs_per_sec] of the newest point of the [benchmark] series
    (default ["faults-campaign"]) already in the trajectory file — the
    committed baseline a regression gate compares against. [None] when
    the file is absent or holds no point of that series. *)

val print : Format.formatter -> point -> unit
