lib/fpga/bitstream.ml: Format
