lib/coproc/mem_port.ml: Rvi_core
