lib/harness/experiments.ml: Array Bytes Calibration Char Config Float Format Jobs List Mrc Option Platform Printf Report Runner Rvi_coproc Rvi_core Rvi_fpga Rvi_hw Rvi_mem Rvi_os Rvi_sim Workload
