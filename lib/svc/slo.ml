module Simtime = Rvi_sim.Simtime
module Histogram = Rvi_sim.Histogram

type tenant_summary = {
  ts_id : int;
  ts_weight : int;
  ts_completed : int;
  ts_dropped : int;
  ts_starved : bool;
  ts_mean_us : float;
  ts_p50_us : float;
  ts_p99_us : float;
}

type report = {
  r_tenants : int;
  r_submitted : int;
  r_completed : int;
  r_dropped : int;
  r_degraded : int;
  r_recovered : int;
  r_makespan_ms : float;
  r_p50_us : float;
  r_p95_us : float;
  r_p99_us : float;
  r_jain : float;
  r_reconfigurations : int;
  r_preemptions : int;
  r_resumes : int;
  r_starved : int list;
  r_inconsistencies : int;
  r_sane : bool;
  r_per_tenant : tenant_summary list;
}

(* Jain's fairness index over per-tenant service quality, taken as the
   reciprocal of mean latency (a tenant served twice as slowly
   contributes half the share). 1.0 is perfectly fair; 1/n is one tenant
   getting everything. Tenants that completed nothing are excluded —
   starvation is reported separately. *)
let jain xs =
  match List.filter (fun x -> x > 0.0) xs with
  | [] -> 1.0
  | xs ->
    let n = float_of_int (List.length xs) in
    let s = List.fold_left ( +. ) 0.0 xs in
    let s2 = List.fold_left (fun a x -> a +. (x *. x)) 0.0 xs in
    if s2 <= 0.0 then 1.0 else s *. s /. (n *. s2)

let tenant_summary (tn : Tenant.t) =
  {
    ts_id = tn.Tenant.id;
    ts_weight = tn.Tenant.weight;
    ts_completed = tn.Tenant.completed;
    ts_dropped = tn.Tenant.dropped;
    ts_starved = tn.Tenant.starved;
    ts_mean_us = Tenant.mean_latency_us tn;
    ts_p50_us = Histogram.percentile tn.Tenant.lat 50.0;
    ts_p99_us = Histogram.percentile tn.Tenant.lat 99.0;
  }

let build ~tenants ~(outcome : Service.outcome) =
  let agg = Histogram.create () in
  Array.iter (fun (tn : Tenant.t) -> Histogram.merge_into ~into:agg tn.Tenant.lat)
    tenants;
  let p q = Histogram.percentile agg q in
  let sum f = Array.fold_left (fun a tn -> a + f tn) 0 tenants in
  let per_tenant = Array.to_list (Array.map tenant_summary tenants) in
  let sane_tenant ts =
    ts.ts_completed = 0 || ts.ts_p99_us +. 1e-9 >= ts.ts_p50_us
  in
  {
    r_tenants = Array.length tenants;
    r_submitted = sum (fun tn -> tn.Tenant.submitted);
    r_completed = sum (fun tn -> tn.Tenant.completed);
    r_dropped = sum (fun tn -> tn.Tenant.dropped);
    r_degraded = sum (fun tn -> tn.Tenant.degraded);
    r_recovered = sum (fun tn -> tn.Tenant.recovered);
    r_makespan_ms = Simtime.to_ms outcome.Service.o_makespan;
    r_p50_us = p 50.0;
    r_p95_us = p 95.0;
    r_p99_us = p 99.0;
    r_jain =
      jain
        (Array.to_list tenants
        |> List.filter_map (fun (tn : Tenant.t) ->
               if tn.Tenant.completed = 0 then None
               else
                 let m = Tenant.mean_latency_us tn in
                 if m > 0.0 then Some (1.0 /. m) else None));
    r_reconfigurations = outcome.Service.o_reconfigurations;
    r_preemptions = outcome.Service.o_preemptions;
    r_resumes = outcome.Service.o_resumes;
    r_starved = outcome.Service.o_starved;
    r_inconsistencies = List.length outcome.Service.o_inconsistencies;
    r_sane =
      (Histogram.count agg = 0 || p 99.0 +. 1e-9 >= p 50.0)
      && List.for_all sane_tenant per_tenant;
    r_per_tenant = per_tenant;
  }

let print ppf ~label r =
  Format.fprintf ppf
    "%s: %d tenants, %d/%d completed (%d dropped, %d degraded, %d recovered)@."
    label r.r_tenants r.r_completed r.r_submitted r.r_dropped r.r_degraded
    r.r_recovered;
  Format.fprintf ppf
    "  makespan %.3f ms, latency p50/p95/p99 = %.0f/%.0f/%.0f us, Jain %.4f@."
    r.r_makespan_ms r.r_p50_us r.r_p95_us r.r_p99_us r.r_jain;
  Format.fprintf ppf "  reconfigurations %d, preemptions %d (resumed %d)%s%s@."
    r.r_reconfigurations r.r_preemptions r.r_resumes
    (match r.r_starved with
    | [] -> ""
    | l -> Printf.sprintf ", STARVED tenants %s"
             (String.concat "," (List.map string_of_int l)))
    (if r.r_inconsistencies > 0 then
       Printf.sprintf ", %d INCONSISTENCIES" r.r_inconsistencies
     else "")
