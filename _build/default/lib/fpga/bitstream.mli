(** Coprocessor configuration bit-streams.

    [FPGA_LOAD] takes "a pointer to the configuration bit-stream". In the
    model a bit-stream is a descriptor of the synthesised design: which
    coprocessor it implements, how much logic it needs, and the clocking of
    its two halves (the platform-specific IMU / memory side and the portable
    coprocessor side, which may run on a divided clock — the paper's IDEA
    core runs at 6 MHz against a 24 MHz memory subsystem). *)

type t = private {
  name : string;  (** design identifier, e.g. ["idea_vim"] *)
  logic_elements : int;  (** LEs consumed when configured *)
  imu_freq_hz : int;  (** IMU and memory-subsystem clock *)
  coproc_divide : int;  (** coprocessor clock = [imu_freq_hz / coproc_divide] *)
  param_words : int;  (** scalar parameters read from the parameter page *)
}

val make :
  name:string ->
  logic_elements:int ->
  imu_freq_hz:int ->
  ?coproc_divide:int ->
  param_words:int ->
  unit ->
  t
(** [coproc_divide] defaults to 1 (coprocessor clocked with the IMU).
    Raises [Invalid_argument] on non-positive parameters. *)

val coproc_freq_hz : t -> int

val pp : Format.formatter -> t -> unit
