lib/os/irq.ml: Array Printf
