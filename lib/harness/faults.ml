module Simtime = Rvi_sim.Simtime
module Prng = Rvi_sim.Prng
module Par = Rvi_par.Par
module Trace = Rvi_obs.Trace
module Spec = Rvi_inject.Spec
module Injector = Rvi_inject.Injector

type outcome =
  | Clean
  | Recovered of { retries : int }
  | Degraded of { reason : string; verified : bool }
  | Failed of string
  | Crashed of string

let outcome_name = function
  | Clean -> "ok"
  | Recovered _ -> "recovered"
  | Degraded _ -> "degraded"
  | Failed _ -> "failed"
  | Crashed _ -> "crashed"

type run_result = {
  index : int;
  seed : int;
  app : string;
  outcome : outcome;
  injected : int;
  total_ms : float;
}

type summary = {
  runs : int;
  clean : int;
  recovered : int;
  degraded : int;
  failed : int;
  crashed : int;
  injected : int;
  bad_degraded : int;
}

(* {1 Workloads}

   One small input per application, each chosen so the working set does not
   fit the eight-page dual-port memory: the runs page, which exercises the
   copy, TLB-refill and writeback paths the injector targets. *)

type workload =
  | W_adpcm of Bytes.t
  | W_idea of { key : int array; input : Bytes.t }
  | W_fir of { coeffs : int array; shift : int; input : Bytes.t }
  | W_vecadd of { a : int array; b : int array }

let workloads ~seed =
  [|
    ("adpcm", W_adpcm (Workload.adpcm_stream ~seed ~bytes:4096));
    ( "idea",
      W_idea
        {
          key = Workload.idea_key ~seed;
          input = Workload.idea_plaintext ~seed ~bytes:8192;
        } );
    ( "fir",
      W_fir
        {
          coeffs = Workload.fir_coeffs ~taps:16;
          shift = 12;
          input = Workload.fir_signal ~seed ~bytes:8192;
        } );
    ( "vecadd",
      let a, b = Workload.vectors ~seed ~n:1536 in
      W_vecadd { a; b } );
  |]

(* A hang only terminates through the watchdog, so campaigns want one
   short enough to keep hung runs cheap while staying far above any gap a
   healthy run produces (eager mapping leaves the ADPCM decoder computing
   for several milliseconds between its few page faults). *)
let default_watchdog = Simtime.of_ms 10

(* One platform pool per domain: campaign shards run on pooled worker
   domains, and domain-local storage gives each worker its own pool
   without any sharing or locking. The pooled-reset contract (reset
   platform == fresh platform, byte for byte) keeps results independent
   of which pool — or none — served a run. *)
let platform_pools : Platform.Pool.t Domain.DLS.key =
  Domain.DLS.new_key Platform.Pool.create

(* Build one named application workload with roughly [bytes] of input
   (rounded to the application's natural granule, with a floor that keeps
   the working set larger than a couple of dual-port pages). The chaos
   harness uses this to vary input size as a scenario dimension. *)
let workload_of ~seed ~bytes name =
  match name with
  | "adpcm" -> (name, W_adpcm (Workload.adpcm_stream ~seed ~bytes:(max 512 bytes)))
  | "idea" ->
    let bytes = max 512 (bytes land lnot 7) in
    ( name,
      W_idea
        { key = Workload.idea_key ~seed; input = Workload.idea_plaintext ~seed ~bytes } )
  | "fir" ->
    let bytes = max 512 (bytes land lnot 1) in
    ( name,
      W_fir
        {
          coeffs = Workload.fir_coeffs ~taps:16;
          shift = 12;
          input = Workload.fir_signal ~seed ~bytes;
        } )
  | "vecadd" ->
    let n = max 64 (bytes / 8) in
    let a, b = Workload.vectors ~seed ~n in
    (name, W_vecadd { a; b })
  | _ -> invalid_arg (Printf.sprintf "Faults.workload_of: unknown app %S" name)

let app_names = [ "adpcm"; "idea"; "fir"; "vecadd" ]

let run_one ?trace ?pool ?base ?(events = []) ?inspect ?translation ~spec
    ~recovery ~watchdog ~exec_retries ~seed (name, w) =
  let inj = Injector.create ~seed ~spec in
  if events <> [] then Injector.set_events inj events;
  let base = match base with Some b -> b | None -> Config.default () in
  let translation =
    match translation with Some t -> t | None -> base.Config.translation
  in
  let cfg =
    {
      base with
      Config.injector = Some inj;
      recovery;
      watchdog;
      exec_retries;
      trace;
      translation;
    }
  in
  let row =
    try
      Ok
        (match w with
        | W_adpcm input -> Runner.adpcm_vim ?pool ?inspect cfg ~input
        | W_idea { key; input } -> Runner.idea_vim ?pool ?inspect cfg ~key ~input
        | W_fir { coeffs; shift; input } ->
          Runner.fir_vim ?pool ?inspect cfg ~coeffs ~shift ~input
        | W_vecadd { a; b } -> Runner.vecadd_vim ?pool ?inspect cfg ~a ~b)
    with e -> Error (Printexc.to_string e)
  in
  let outcome, total_ms =
    match row with
    | Error msg -> (Crashed msg, 0.0)
    | Ok row -> (
      let ms = Simtime.to_ms row.Report.total in
      match row.Report.outcome with
      | Report.Measured when row.Report.verified ->
        if Injector.injected_total inj = 0 then (Clean, ms)
        else (Recovered { retries = row.Report.retries }, ms)
      | Report.Measured -> (Failed "output not verified", ms)
      | Report.Degraded reason ->
        (Degraded { reason; verified = row.Report.verified }, ms)
      | Report.Exceeds_memory -> (Failed "exceeds memory", ms)
      | Report.Failed m -> (Failed m, ms))
  in
  {
    index = 0;
    seed;
    app = name;
    outcome;
    injected = Injector.injected_total inj;
    total_ms;
  }

(* Capacity of the per-run trace sinks a parallel campaign allocates: a
   single run emits at most a few hundred events, so 4096 slots never
   drop in practice while 1000-run campaigns stay tens of megabytes. *)
let shard_trace_capacity = 4096

let campaign ?trace ?(spec = Spec.all ())
    ?(recovery = Rvi_core.Vim.default_recovery)
    ?(watchdog = default_watchdog) ?(exec_retries = 2) ?progress ?(jobs = 1)
    ?chunk ?(reuse_platforms = true) ?translation ~runs ~seed () =
  let master = Prng.create ~seed in
  let apps = workloads ~seed in
  (* Per-run seeds come off a master stream drawn serially *before* any
     sharding, so run [i]'s seed is a function of (campaign seed, i)
     alone — never of shard order or domain count — and one campaign
     seed reproduces every run. *)
  let run_seeds = Array.init runs (fun _ -> Prng.next master land 0x3FFF_FFFF) in
  let exec i ?trace () =
    (* Resolved per call so each worker domain sees its own pool. *)
    let pool =
      if reuse_platforms then Some (Domain.DLS.get platform_pools) else None
    in
    let r =
      run_one ?trace ?pool ?translation ~spec ~recovery ~watchdog ~exec_retries
        ~seed:run_seeds.(i)
        apps.(i mod Array.length apps)
    in
    { r with index = i }
  in
  if jobs <= 1 then
    (* Serial path: runs share the caller's sink and [progress] fires as
       each run completes — bit-identical to the pre-parallel code. *)
    List.init runs (fun i ->
        let r = exec i ?trace () in
        (match progress with Some f -> f r | None -> ());
        r)
  else begin
    let chunk =
      match chunk with Some c -> c | None -> Par.default_chunk ~domains:jobs runs
    in
    (* Each run records into its own sink stamped with its (deterministic)
       chunk ordinal; sinks merge into the caller's trace in run order
       after the barrier, so the merged event stream does not depend on
       which domain ran which chunk. [progress] also fires post-barrier,
       in run order. *)
    let results =
      Par.Pool.map (Par.Pool.shared ~domains:jobs) ~chunk
        (fun i ->
          let local =
            Option.map
              (fun _ ->
                Trace.create ~capacity:shard_trace_capacity
                  ~shard:(Par.shard_of_index ~chunk i) ())
              trace
          in
          (exec i ?trace:local (), local))
        (List.init runs Fun.id)
    in
    List.map
      (fun (r, local) ->
        (match (trace, local) with
        | Some into, Some src -> Trace.merge_into ~into src
        | _ -> ());
        (match progress with Some f -> f r | None -> ());
        r)
      results
  end

let summarize results =
  List.fold_left
    (fun s (r : run_result) ->
      let s = { s with runs = s.runs + 1; injected = s.injected + r.injected } in
      match r.outcome with
      | Clean -> { s with clean = s.clean + 1 }
      | Recovered _ -> { s with recovered = s.recovered + 1 }
      | Degraded { verified; _ } ->
        {
          s with
          degraded = s.degraded + 1;
          bad_degraded = (s.bad_degraded + if verified then 0 else 1);
        }
      | Failed _ -> { s with failed = s.failed + 1 }
      | Crashed _ -> { s with crashed = s.crashed + 1 })
    {
      runs = 0;
      clean = 0;
      recovered = 0;
      degraded = 0;
      failed = 0;
      crashed = 0;
      injected = 0;
      bad_degraded = 0;
    }
    results

let passed s = s.crashed = 0 && s.bad_degraded = 0

let pct s n = if s.runs = 0 then 0.0 else 100.0 *. float_of_int n /. float_of_int s.runs

let survival s = pct s (s.clean + s.recovered + (s.degraded - s.bad_degraded))

let print_summary ppf s =
  Format.fprintf ppf
    "%d runs, %d faults injected: %d clean, %d recovered, %d degraded (%d \
     bad), %d failed, %d crashed@."
    s.runs s.injected s.clean s.recovered s.degraded s.bad_degraded s.failed
    s.crashed;
  Format.fprintf ppf
    "  survival %.1f%%  (recovery %.1f%%, degradation %.1f%%)@." (survival s)
    (pct s s.recovered) (pct s s.degraded)

let outcome_detail = function
  | Clean -> ""
  | Recovered { retries } -> string_of_int retries
  | Degraded { reason; _ } -> reason
  | Failed m | Crashed m -> m

let csv results =
  let b = Buffer.create 1024 in
  Buffer.add_string b "run,seed,app,outcome,detail,injected,verified,total_ms\n";
  List.iter
    (fun r ->
      let verified =
        match r.outcome with
        | Clean | Recovered _ -> true
        | Degraded { verified; _ } -> verified
        | Failed _ | Crashed _ -> false
      in
      Buffer.add_string b
        (Printf.sprintf "%d,%d,%s,%s,%S,%d,%b,%.6f\n" r.index r.seed r.app
           (outcome_name r.outcome)
           (outcome_detail r.outcome)
           r.injected verified r.total_ms))
    results;
  Buffer.contents b

(* {1 Sweep} *)

type cell = { factor : float; max_retries : int; cell_summary : summary }

let sweep ?trace ?(factors = [ 0.5; 1.0; 2.0; 4.0 ])
    ?(retry_policies = [ 0; 1; 3 ]) ?(watchdog = default_watchdog) ?(jobs = 1)
    ~runs ~seed () =
  let cells =
    List.concat_map
      (fun factor -> List.map (fun retries -> (factor, retries)) retry_policies)
      factors
  in
  (* Cells are independent campaigns (each reseeds from [seed]), so the
     matrix shards cell-per-item: campaigns inside a cell stay serial,
     which keeps every cell bit-identical to a lone [campaign] call. *)
  Par.Pool.mapi (Par.Pool.shared ~domains:jobs) ~chunk:1
    (fun cell_index (factor, max_retries) ->
      let spec = Spec.all ~factor () in
      let recovery =
        { Rvi_core.Vim.default_recovery with Rvi_core.Vim.max_retries }
      in
      let local =
        if jobs <= 1 then trace
        else
          (* A cell holds a whole campaign, so give it a full-size ring
             rather than the per-run capacity. *)
          Option.map (fun _ -> Trace.create ~shard:cell_index ()) trace
      in
      let results =
        campaign ?trace:local ~spec ~recovery ~watchdog
          ~exec_retries:max_retries ~runs ~seed ()
      in
      let cell = { factor; max_retries; cell_summary = summarize results } in
      (cell, local))
    cells
  |> List.map (fun (cell, local) ->
         (if jobs > 1 then
            match (trace, local) with
            | Some into, Some src -> Trace.merge_into ~into src
            | _ -> ());
         cell)

let print_sweep ppf cells =
  Format.fprintf ppf "%-8s %-8s %-10s %-10s %-10s %-8s@." "rate" "retries"
    "survival%" "recover%" "degrade%" "crashed";
  List.iter
    (fun c ->
      let s = c.cell_summary in
      Format.fprintf ppf "%-8.2f %-8d %-10.1f %-10.1f %-10.1f %-8d@." c.factor
        c.max_retries (survival s) (pct s s.recovered) (pct s s.degraded)
        s.crashed)
    cells
