lib/harness/runner.mli: Bytes Config Report Rvi_coproc Rvi_core Rvi_fpga
