type t = {
  word_bytes : int;
  setup_cycles : int;
  bus_hz : int;
  bus_cycles_per_word : int;
}

let make ~word_bytes ~setup_cycles ~bus_hz ~bus_cycles_per_word =
  if word_bytes <= 0 || setup_cycles < 0 || bus_hz <= 0 || bus_cycles_per_word <= 0
  then invalid_arg "Dma.make: non-positive parameter";
  { word_bytes; setup_cycles; bus_hz; bus_cycles_per_word }

let default =
  { word_bytes = 4; setup_cycles = 300; bus_hz = 66_000_000; bus_cycles_per_word = 1 }

let setup_cycles t = t.setup_cycles

let transfer_time t ~bytes =
  if bytes < 0 then invalid_arg "Dma.transfer_time: negative size";
  if bytes = 0 then Rvi_sim.Simtime.zero
  else
    let words = (bytes + t.word_bytes - 1) / t.word_bytes in
    Rvi_sim.Simtime.of_cycles ~hz:t.bus_hz (words * t.bus_cycles_per_word)

let transfer ?notify t ~bytes =
  let time = transfer_time t ~bytes in
  (match notify with
  | Some f when bytes > 0 -> f ~bytes time
  | Some _ | None -> ());
  time
