lib/coproc/adpcm_ref.mli: Bytes
