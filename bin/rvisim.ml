(* rvisim — command-line front-end to the reproduction.

   Examples:
     rvisim fig8
     rvisim fig9 --device epxa4 --policy lru --sizes 4,8,16,32,64
     rvisim run --app idea --impl vim --size 16384 --csv
     rvisim all *)

open Cmdliner

let device_arg =
  let parse s =
    match Rvi_fpga.Device.by_name s with
    | Some d -> Ok d
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown device %S (known: %s)" s
              (String.concat ", "
                 (List.map
                    (fun d -> d.Rvi_fpga.Device.name)
                    Rvi_fpga.Device.all))))
  in
  let print ppf d = Format.fprintf ppf "%s" d.Rvi_fpga.Device.name in
  Arg.conv (parse, print)

let device =
  Arg.(
    value
    & opt device_arg Rvi_fpga.Device.epxa1
    & info [ "device" ] ~docv:"NAME" ~doc:"Target device (EPXA1/EPXA4/EPXA10).")

let policy =
  Arg.(
    value & opt string "fifo"
    & info [ "policy" ] ~docv:"NAME"
        ~doc:"Replacement policy: fifo, lru, random, second-chance.")

let transfer =
  Arg.(
    value
    & opt (enum [ ("double", Rvi_core.Vim.Double); ("single", Rvi_core.Vim.Single) ])
        Rvi_core.Vim.Double
    & info [ "transfer" ] ~docv:"MODE"
        ~doc:"Page transfer mode: double (paper's naive VIM) or single.")

let prefetch =
  Arg.(
    value & opt int 0
    & info [ "prefetch" ] ~docv:"DEPTH"
        ~doc:"Sequential prefetch depth (0 disables).")

let pipelined =
  Arg.(
    value & flag
    & info [ "pipelined-imu" ] ~doc:"Use the pipelined IMU variant.")

let tlb_entries =
  Arg.(
    value & opt (some int) None
    & info [ "tlb" ] ~docv:"N" ~doc:"TLB entries (default: one per page).")

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Workload seed.")

let translation_arg =
  let parse s =
    match Rvi_core.Translation_mode.of_name s with
    | Some m -> Ok m
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown translation mode %S (known: %s)" s
              (String.concat ", "
                 (List.map Rvi_core.Translation_mode.name
                    Rvi_core.Translation_mode.all))))
  in
  let print ppf m = Format.fprintf ppf "%s" (Rvi_core.Translation_mode.name m) in
  Arg.conv (parse, print)

let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit rows as CSV.")

let spec_arg =
  let parse s =
    match Rvi_inject.Spec.parse s with
    | Ok spec -> Ok spec
    | Error msg -> Error (`Msg msg)
  in
  let print ppf s = Format.fprintf ppf "%s" (Rvi_inject.Spec.to_string s) in
  Arg.conv (parse, print)

let inject =
  Arg.(
    value
    & opt (some spec_arg) None
    & info [ "inject" ] ~docv:"SPEC"
        ~doc:
          ("Enable fault injection. " ^ Rvi_inject.Spec.grammar
         ^ " Kinds: "
          ^ String.concat ", "
              (List.map Rvi_inject.Fault.name Rvi_inject.Fault.all)
          ^ "."))

let watchdog_ms =
  Arg.(
    value
    & opt (some float) None
    & info [ "watchdog" ] ~docv:"MS"
        ~doc:
          "VIM watchdog in simulated milliseconds (default: 2 under \
           injection, 30000 otherwise).")

let json_flag =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit rows as JSON.")

let jobs =
  Arg.(
    value
    & opt int (Rvi_par.Par.recommended_domains ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Shard independent runs over $(docv) domains (default: the \
           recommended domain count of this machine). Results are \
           deterministic: identical whatever $(docv) is.")

let sizes_kb =
  Arg.(
    value
    & opt (some (list int)) None
    & info [ "sizes" ] ~docv:"KB,KB,..." ~doc:"Input sizes in KB.")

let config device policy transfer prefetch pipelined tlb_entries seed =
  let base = Rvi_harness.Config.default () in
  let cfg =
    {
      base with
      Rvi_harness.Config.device;
      transfer;
      prefetch =
        (if prefetch > 0 then Rvi_core.Prefetch.sequential ~depth:prefetch
         else Rvi_core.Prefetch.off);
      imu_kind =
        (if pipelined then Rvi_harness.Config.Pipelined
         else Rvi_harness.Config.Four_cycle);
      tlb_entries;
      seed;
    }
  in
  Rvi_harness.Config.with_policy cfg policy

let debug =
  Arg.(
    value & flag
    & info [ "debug" ] ~doc:"Print VIM debug logging (page faults, flushes).")

let setup_logs enabled =
  if enabled then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Debug)
  end

let config device policy transfer prefetch pipelined tlb_entries seed debug =
  setup_logs debug;
  config device policy transfer prefetch pipelined tlb_entries seed

let config_term =
  Term.(
    const config $ device $ policy $ transfer $ prefetch $ pipelined
    $ tlb_entries $ seed $ debug)

let ppf = Format.std_formatter

let emit ?(json = false) ~csv rows =
  if csv then print_string (Rvi_harness.Report.csv rows);
  if json then print_string (Rvi_harness.Report.json rows)

let fig7_cmd =
  let vcd_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "vcd" ] ~docv:"FILE" ~doc:"Also dump the capture as a VCD file.")
  in
  let run pipelined vcd_out =
    let f = Rvi_harness.Experiments.fig7 ~pipelined ppf () in
    match vcd_out with
    | Some path ->
      let oc = open_out path in
      output_string oc f.Rvi_harness.Experiments.vcd;
      close_out oc;
      Printf.printf "wrote %s\n" path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "fig7" ~doc:"Figure 7: coprocessor read-access timing diagram.")
    Term.(const run $ pipelined $ vcd_out)

let fig8_cmd =
  let run cfg csv json sizes =
    let rows = Rvi_harness.Experiments.fig8 ?sizes_kb:sizes ppf cfg in
    emit ~json ~csv rows
  in
  Cmd.v
    (Cmd.info "fig8" ~doc:"Figure 8: adpcmdecode, software vs VIM-based.")
    Term.(const run $ config_term $ csv $ json_flag $ sizes_kb)

let fig9_cmd =
  let run cfg csv json sizes =
    let rows = Rvi_harness.Experiments.fig9 ?sizes_kb:sizes ppf cfg in
    emit ~json ~csv rows
  in
  Cmd.v
    (Cmd.info "fig9"
       ~doc:"Figure 9: IDEA, software vs normal coprocessor vs VIM-based.")
    Term.(const run $ config_term $ csv $ json_flag $ sizes_kb)

let overheads_cmd =
  let run cfg = ignore (Rvi_harness.Experiments.overheads ppf cfg) in
  Cmd.v
    (Cmd.info "overheads" ~doc:"The textual overhead claims of section 4.1.")
    Term.(const run $ config_term)

let ablations_cmd =
  let run cfg jobs =
    ignore (Rvi_harness.Experiments.ablation_policy ~jobs ppf cfg);
    ignore (Rvi_harness.Experiments.ablation_prefetch ~jobs ppf cfg);
    ignore (Rvi_harness.Experiments.ablation_pipelined_imu ~jobs ppf cfg);
    ignore (Rvi_harness.Experiments.ablation_transfer ~jobs ppf cfg);
    ignore (Rvi_harness.Experiments.ablation_tlb_size ~jobs ppf cfg);
    ignore (Rvi_harness.Experiments.ablation_chunked_normal ppf cfg);
    ignore (Rvi_harness.Experiments.ablation_dma ~jobs ppf cfg);
    ignore (Rvi_harness.Experiments.ablation_overlap ~jobs ppf cfg);
    ignore (Rvi_harness.Experiments.ablation_tlb_org ~jobs ppf cfg)
  in
  Cmd.v
    (Cmd.info "ablations" ~doc:"All design-choice ablations from DESIGN.md.")
    Term.(const run $ config_term $ jobs)

let ablate_cmd =
  let translation_flag =
    Arg.(
      value & flag
      & info [ "translation" ]
          ~doc:
            "Compare the paper's per-object translation against the \
             IOMMU/SVA mode (two-level TLB + page-table walker) on all four \
             workloads.")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Cheap CI variant: one workload per translation mode, asserting \
             both verify and that only the SVA run exercises the walker. \
             Exits non-zero on any violation.")
  in
  let run cfg jobs translation smoke =
    if not translation then begin
      Format.eprintf
        "rvisim ablate: select an ablation axis (try --translation)@.";
      exit 2
    end;
    let points =
      Rvi_harness.Experiments.ablation_translation ~jobs ~smoke ppf cfg
    in
    if smoke then begin
      let bad = ref [] in
      List.iter
        (fun (pt : Rvi_harness.Experiments.translation_point) ->
          let r = pt.Rvi_harness.Experiments.row in
          if not (Rvi_harness.Report.ok r) then
            bad := Printf.sprintf "%s: run failed or unverified"
                     pt.Rvi_harness.Experiments.label
                   :: !bad;
          let walks = pt.Rvi_harness.Experiments.walks in
          match pt.Rvi_harness.Experiments.mode with
          | Rvi_core.Translation_mode.Paper_objects ->
            if walks <> 0 then
              bad := Printf.sprintf "%s: paper mode touched the walker"
                       pt.Rvi_harness.Experiments.label
                     :: !bad
          | Rvi_core.Translation_mode.Iommu_sva ->
            if walks = 0 then
              bad := Printf.sprintf "%s: SVA run never walked"
                       pt.Rvi_harness.Experiments.label
                     :: !bad)
        points;
      match !bad with
      | [] -> Format.fprintf ppf "sva-smoke ok (%d runs)@." (List.length points)
      | msgs ->
        List.iter (Format.eprintf "sva-smoke: %s@.") (List.rev msgs);
        exit 1
    end
  in
  Cmd.v
    (Cmd.info "ablate"
       ~doc:
         "Targeted ablation comparisons. Currently: --translation, the \
          paper-objects vs IOMMU/SVA translation study.")
    Term.(const run $ config_term $ jobs $ translation_flag $ smoke)

let portability_cmd =
  let run cfg = ignore (Rvi_harness.Experiments.portability ppf cfg) in
  Cmd.v
    (Cmd.info "portability"
       ~doc:"The same binaries across the EPXA device family.")
    Term.(const run $ config_term)

let run_cmd =
  let app_arg =
    Arg.(
      required
      & opt
          (some
             (enum
                [
                  ("adpcm", `Adpcm);
                  ("idea", `Idea);
                  ("vecadd", `Vecadd);
                  ("fir", `Fir);
                ]))
          None
      & info [ "app" ] ~docv:"NAME"
          ~doc:"Application: adpcm, idea, vecadd or fir.")
  in
  let version =
    Arg.(
      value
      & opt (enum [ ("sw", `Sw); ("vim", `Vim); ("normal", `Normal) ]) `Vim
      & info [ "impl" ] ~docv:"V" ~doc:"Implementation: sw, vim or normal.")
  in
  let size =
    Arg.(
      value & opt int 4096
      & info [ "size" ] ~docv:"BYTES" ~doc:"Input size in bytes.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write a structured event trace of the run to $(docv).")
  in
  let trace_format =
    Arg.(
      value
      & opt (enum [ ("jsonl", `Jsonl); ("chrome", `Chrome) ]) `Chrome
      & info [ "trace-format" ] ~docv:"FMT"
          ~doc:
            "Trace format: chrome (a trace_event JSON document loadable in \
             Perfetto or about://tracing) or jsonl (one flat JSON object per \
             event, round-trippable).")
  in
  let translation =
    Arg.(
      value
      & opt translation_arg Rvi_core.Translation_mode.Paper_objects
      & info [ "translation" ] ~docv:"MODE"
          ~doc:
            "Address translation: paper-objects (the paper's per-object page \
             lists, default) or iommu-sva (shared virtual addressing through \
             an L1+L2 TLB and a page-table walker).")
  in
  let run cfg csv app version size trace_out trace_format inject watchdog_ms
      translation =
    let cfg = { cfg with Rvi_harness.Config.translation } in
    let cfg =
      if trace_out = None then cfg
      else
        {
          cfg with
          Rvi_harness.Config.trace = Some (Rvi_obs.Trace.create ());
        }
    in
    let cfg =
      match inject with
      | None -> cfg
      | Some spec ->
        {
          cfg with
          Rvi_harness.Config.injector =
            Some
              (Rvi_inject.Injector.create ~seed:cfg.Rvi_harness.Config.seed
                 ~spec);
          watchdog = Rvi_harness.Faults.default_watchdog;
        }
    in
    let cfg =
      match watchdog_ms with
      | None -> cfg
      | Some ms ->
        {
          cfg with
          Rvi_harness.Config.watchdog =
            Rvi_sim.Simtime.of_us (int_of_float (ms *. 1000.));
        }
    in
    let row =
      match app with
      | `Adpcm -> (
        let input =
          Rvi_harness.Workload.adpcm_stream ~seed:cfg.Rvi_harness.Config.seed
            ~bytes:size
        in
        match version with
        | `Sw -> Rvi_harness.Runner.adpcm_sw cfg ~input
        | `Vim -> Rvi_harness.Runner.adpcm_vim cfg ~input
        | `Normal -> Rvi_harness.Runner.adpcm_normal cfg ~input)
      | `Idea -> (
        let size = size - (size mod 8) in
        let key = Rvi_harness.Workload.idea_key ~seed:cfg.Rvi_harness.Config.seed in
        let input =
          Rvi_harness.Workload.idea_plaintext ~seed:cfg.Rvi_harness.Config.seed
            ~bytes:size
        in
        match version with
        | `Sw -> Rvi_harness.Runner.idea_sw cfg ~key ~input
        | `Vim -> Rvi_harness.Runner.idea_vim cfg ~key ~input
        | `Normal -> Rvi_harness.Runner.idea_normal cfg ~key ~input)
      | `Fir -> (
        let size = size - (size mod 2) in
        let coeffs = Rvi_harness.Workload.fir_coeffs ~taps:16 in
        let input =
          Rvi_harness.Workload.fir_signal ~seed:cfg.Rvi_harness.Config.seed
            ~bytes:size
        in
        match version with
        | `Sw -> Rvi_harness.Runner.fir_sw cfg ~coeffs ~shift:12 ~input
        | `Vim -> Rvi_harness.Runner.fir_vim cfg ~coeffs ~shift:12 ~input
        | `Normal -> Rvi_harness.Runner.fir_normal cfg ~coeffs ~shift:12 ~input)
      | `Vecadd -> (
        let n = size / 8 in
        let a, b =
          Rvi_harness.Workload.vectors ~seed:cfg.Rvi_harness.Config.seed ~n
        in
        match version with
        | `Sw -> Rvi_harness.Runner.vecadd_sw cfg ~a ~b
        | `Vim | `Normal -> Rvi_harness.Runner.vecadd_vim cfg ~a ~b)
    in
    Rvi_harness.Report.print_table ppf [ row ];
    emit ~csv [ row ];
    (match cfg.Rvi_harness.Config.injector with
    | Some inj ->
      Format.fprintf ppf "injected %d faults (seed %d)@."
        (Rvi_inject.Injector.injected_total inj)
        (Rvi_inject.Injector.seed inj)
    | None -> ());
    (match (trace_out, cfg.Rvi_harness.Config.trace) with
    | Some path, Some tr ->
      let events = Rvi_obs.Trace.events tr in
      let contents =
        match trace_format with
        | `Jsonl -> Rvi_obs.Export.to_jsonl events
        | `Chrome -> Rvi_obs.Export.to_chrome events
      in
      (try
         Rvi_obs.Export.write_file path contents;
         Printf.printf "wrote %s (%d events%s)\n" path (List.length events)
           (let d = Rvi_obs.Trace.dropped tr in
            if d > 0 then Printf.sprintf ", %d dropped" d else "")
       with Sys_error msg ->
         Printf.eprintf "rvisim: cannot write trace: %s\n" msg;
         exit 1)
    | _ -> ());
    let acceptable =
      Rvi_harness.Report.ok row
      ||
      match row.Rvi_harness.Report.outcome with
      | Rvi_harness.Report.Degraded _ -> row.Rvi_harness.Report.verified
      | _ -> false
    in
    if not acceptable then exit 1
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one application/version/size point.")
    Term.(
      const run $ config_term $ csv $ app_arg $ version $ size $ trace_out
      $ trace_format $ inject $ watchdog_ms $ translation)

let ext_fir_cmd =
  let run cfg csv sizes =
    let rows = Rvi_harness.Experiments.ext_fir ?sizes_kb:sizes ppf cfg in
    emit ~csv rows
  in
  Cmd.v
    (Cmd.info "ext-fir" ~doc:"Extension: the FIR filter application.")
    Term.(const run $ config_term $ csv $ sizes_kb)

let miss_curve_cmd =
  let run cfg = ignore (Rvi_harness.Experiments.miss_curve ppf cfg) in
  Cmd.v
    (Cmd.info "miss-curve"
       ~doc:"Extension: miss-ratio curve from the IMU access trace.")
    Term.(const run $ config_term)

let ext_cbc_cmd =
  let run cfg csv =
    let rows = Rvi_harness.Experiments.ext_cbc ppf cfg in
    emit ~csv rows
  in
  Cmd.v
    (Cmd.info "ext-cbc"
       ~doc:"Extension: ECB/CBC modes on the pipelined IDEA core.")
    Term.(const run $ config_term $ csv)

let multiprog_cmd =
  let jobs_per_app =
    Arg.(
      value & opt int 4
      & info [ "jobs-per-app" ] ~docv:"N" ~doc:"Jobs per application kind.")
  in
  let run cfg jobs_per_app =
    ignore (Rvi_harness.Experiments.multiprogramming ~jobs_per_app ppf cfg)
  in
  Cmd.v
    (Cmd.info "multiprog"
       ~doc:"Extension: lattice scheduling of a mixed job batch.")
    Term.(const run $ config_term $ jobs_per_app)

let ext_oracle_cmd =
  let run cfg = ignore (Rvi_harness.Experiments.ext_oracle ppf cfg) in
  Cmd.v
    (Cmd.info "ext-oracle"
       ~doc:
         "Extension: profile-guided Belady replacement (the 'efficient \
          allocation algorithms' of the paper's conclusion).")
    Term.(const run $ config_term)

let ext_dual_cmd =
  let run cfg = ignore (Rvi_harness.Experiments.ext_dual ppf cfg) in
  Cmd.v
    (Cmd.info "ext-dual"
       ~doc:"Extension: two coprocessors behind one IMU via the arbiter.")
    Term.(const run $ config_term)

let sensitivity_cmd =
  let run cfg = ignore (Rvi_harness.Experiments.sensitivity ppf cfg) in
  Cmd.v
    (Cmd.info "sensitivity"
       ~doc:"Robustness of the conclusions to the AHB copy-cost calibration.")
    Term.(const run $ config_term)

let sweeps_cmd =
  let run cfg =
    ignore (Rvi_harness.Experiments.sweep_page_size ppf cfg);
    ignore (Rvi_harness.Experiments.sweep_memory_size ppf cfg)
  in
  Cmd.v
    (Cmd.info "sweeps"
       ~doc:"Page-size and memory-size sweeps of the interface geometry.")
    Term.(const run $ config_term)

let emit_stubs_cmd =
  let outdir =
    Arg.(
      value & opt string "stubs"
      & info [ "out" ] ~docv:"DIR" ~doc:"Output directory (created).")
  in
  let run outdir =
    if not (Sys.file_exists outdir) then Sys.mkdir outdir 0o755;
    List.iter
      (fun spec ->
        List.iter
          (fun (file, contents) ->
            let path = Filename.concat outdir file in
            let oc = open_out path in
            output_string oc contents;
            close_out oc;
            Printf.printf "wrote %s\n" path)
          (Rvi_core.Stub_gen.emit_all spec))
      Rvi_core.Stub_gen.[ vecadd_spec; adpcm_spec; idea_spec; fir_spec ]
  in
  Cmd.v
    (Cmd.info "emit-stubs"
       ~doc:"Generate the C application stubs for the shipped coprocessors.")
    Term.(const run $ outdir)

let emit_vhdl_cmd =
  let entity_name =
    Arg.(
      value & opt string "my_coproc"
      & info [ "name" ] ~docv:"IDENT" ~doc:"Coprocessor entity name.")
  in
  let outdir =
    Arg.(
      value & opt string "vhdl"
      & info [ "out" ] ~docv:"DIR" ~doc:"Output directory (created).")
  in
  let run device pipelined name outdir =
    let imu_config =
      if pipelined then Rvi_core.Imu.pipelined_config
      else Rvi_core.Imu.default_config
    in
    let design = Rvi_core.Vhdl_gen.make ~name ~device ~imu_config () in
    if not (Sys.file_exists outdir) then Sys.mkdir outdir 0o755;
    List.iter
      (fun (file, contents) ->
        let path = Filename.concat outdir file in
        let oc = open_out path in
        output_string oc contents;
        close_out oc;
        Printf.printf "wrote %s\n" path)
      (Rvi_core.Vhdl_gen.emit_all design)
  in
  Cmd.v
    (Cmd.info "emit-vhdl"
       ~doc:
         "Generate the VHDL interface skeletons (package, portable \
          coprocessor entity, platform IMU entity, stripe wrapper).")
    Term.(const run $ device $ pipelined $ entity_name $ outdir)

let faults_cmd =
  let runs =
    Arg.(
      value & opt int 1000
      & info [ "runs" ] ~docv:"N"
          ~doc:"Campaign size (per sweep cell with $(b,--sweep)).")
  in
  let sweep_flag =
    Arg.(
      value & flag
      & info [ "sweep" ]
          ~doc:
            "Sweep injection-rate factor (0.5, 1, 2, 4) against recovery \
             policy (0, 1, 3 retries) instead of one campaign.")
  in
  let csv_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Write per-run results as CSV.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write the accumulated event trace of every run as JSONL \
             (inject/retry/recover/degrade events included).")
  in
  let exec_retries =
    Arg.(
      value & opt int 2
      & info [ "retries" ] ~docv:"N"
          ~doc:"Whole-execution retries before degrading to software.")
  in
  let run seed runs sweep_flag inject exec_retries csv_out trace_out jobs =
    let trace = Option.map (fun _ -> Rvi_obs.Trace.create ()) trace_out in
    let write_trace () =
      match (trace_out, trace) with
      | Some path, Some tr ->
        let events = Rvi_obs.Trace.events tr in
        Rvi_obs.Export.write_file path (Rvi_obs.Export.to_jsonl events);
        Printf.printf "wrote %s (%d events)\n" path (List.length events)
      | _ -> ()
    in
    let ok =
      if sweep_flag then begin
        let cells = Rvi_harness.Faults.sweep ?trace ~jobs ~runs ~seed () in
        Rvi_harness.Faults.print_sweep ppf cells;
        List.for_all
          (fun c ->
            Rvi_harness.Faults.passed c.Rvi_harness.Faults.cell_summary)
          cells
      end
      else begin
        let spec =
          match inject with
          | Some spec -> spec
          | None -> Rvi_inject.Spec.all ()
        in
        let progress r =
          if (r.Rvi_harness.Faults.index + 1) mod 100 = 0 then
            Printf.eprintf "%d/%d\n%!" (r.Rvi_harness.Faults.index + 1) runs
        in
        let results =
          Rvi_harness.Faults.campaign ?trace ~spec ~exec_retries ~progress
            ~jobs ~runs ~seed ()
        in
        let s = Rvi_harness.Faults.summarize results in
        Rvi_harness.Faults.print_summary ppf s;
        (match csv_out with
        | Some path ->
          let oc = open_out path in
          output_string oc (Rvi_harness.Faults.csv results);
          close_out oc;
          Printf.printf "wrote %s\n" path
        | None -> ());
        Rvi_harness.Faults.passed s
      end
    in
    write_trace ();
    if not ok then exit 1
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Fault-injection campaign: seeded runs under injected hardware \
          faults, classified as ok/recovered/degraded/failed/crashed. Exits \
          non-zero on any crash or unverified degraded output.")
    Term.(
      const run $ seed $ runs $ sweep_flag $ inject $ exec_retries $ csv_out
      $ trace_out $ jobs)

let chaos_cmd =
  let count =
    Arg.(
      value & opt int 200
      & info [ "count" ] ~docv:"N"
          ~doc:"Scenarios to generate and run (per batch with $(b,--soak)).")
  in
  let soak =
    Arg.(
      value
      & opt (some float) None
      & info [ "soak" ] ~docv:"SECS"
          ~doc:
            "Keep running $(b,--count)-sized batches (reseeded per batch) \
             until SECS of host time have elapsed.")
  in
  let shrink_flag =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:
            "Delta-debug every violating scenario to a minimal repro with \
             the same classification before writing the corpus.")
  in
  let promote =
    Arg.(
      value & flag
      & info [ "promote" ]
          ~doc:
            "Also write the (shrunk) repros into test/corpus/, where the \
             test suite replays them as pinned regressions.")
  in
  let replay =
    Arg.(
      value
      & opt_all string []
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay a serialised corpus scenario and check its \
             classification against the file's expect header (repeatable; \
             disables generation).")
  in
  let corpus_dir =
    Arg.(
      value
      & opt string "results/corpus"
      & info [ "corpus" ] ~docv:"DIR" ~doc:"Corpus output directory.")
  in
  let run seed count jobs soak shrink_flag promote replay corpus_dir =
    let module Chaos = Rvi_scenario.Chaos in
    let module Scenario = Rvi_scenario.Scenario in
    if replay <> [] then begin
      let ok =
        List.for_all
          (fun path ->
            match Chaos.replay path with
            | Ok r ->
              Printf.printf "%s: %s (as expected)\n" path
                (Chaos.classification r);
              true
            | Error e ->
              Printf.printf "%s\n" e;
              false)
          replay
      in
      if not ok then exit 1
    end
    else begin
      let progress r =
        if (r.Chaos.index + 1) mod 100 = 0 then
          Printf.eprintf "%d/%d\n%!" (r.Chaos.index + 1) count
      in
      (* One batch per seed; --soak reseeds batches until the budget is
         spent. Every batch is reproducible from its printed seed. *)
      let batches =
        match soak with
        | None -> [ seed ]
        | Some secs ->
          let t0 = Unix.gettimeofday () in
          let rec go acc b =
            if Unix.gettimeofday () -. t0 >= secs then List.rev acc
            else begin
              let bseed = seed + b in
              Printf.eprintf "soak batch %d (seed %d)\n%!" b bseed;
              ignore (Chaos.campaign ~jobs ~progress ~seed:bseed ~count ());
              go (bseed :: acc) (b + 1)
            end
          in
          (* The last batch is re-run below for reporting; cheap relative
             to the soak budget and keeps one code path. *)
          let seeds = go [] 0 in
          if seeds = [] then [ seed ] else seeds
      in
      let violations = ref [] in
      List.iter
        (fun bseed ->
          let reports = Chaos.campaign ~jobs ~progress ~seed:bseed ~count () in
          Chaos.print_summary ppf (Chaos.summarize reports);
          List.iter
            (fun r ->
              if Chaos.classification r <> "pass" then
                violations := (bseed, r) :: !violations)
            reports)
        (match soak with None -> batches | Some _ -> [ List.hd (List.rev batches) ]);
      let violations = List.rev !violations in
      List.iter
        (fun (bseed, r) ->
          let cls = Chaos.classification r in
          Printf.printf "violation (seed %d, scenario %d): %s\n  %s\n" bseed
            r.Chaos.index cls
            (Scenario.to_string r.Chaos.scenario);
          let final =
            if shrink_flag then begin
              let min_sc = Chaos.shrink ~cls r.Chaos.scenario in
              let shrunk = Chaos.run ~index:r.Chaos.index min_sc in
              Printf.printf "  shrunk: %s\n" (Scenario.to_string min_sc);
              shrunk
            end
            else r
          in
          let paths =
            Chaos.save_corpus ~dir:corpus_dir ~campaign_seed:bseed [ final ]
          in
          List.iter (Printf.printf "  wrote %s\n") paths;
          if promote then
            List.iter
              (Printf.printf "  promoted %s\n")
              (Chaos.save_corpus ~dir:"test/corpus" ~campaign_seed:bseed
                 [ final ]))
        violations;
      if violations <> [] then exit 1
    end
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Generative chaos campaign: PRNG-derived scenarios (app mix x \
          geometry x translation x policy x fault plan x recovery budget) \
          run against the declared invariants — no crash, consistency, \
          bit-exact output, convergent recovery, progress, stat sanity. \
          Violations are delta-debugged to minimal repros and serialised \
          to the corpus. Exits non-zero on any violation.")
    Term.(
      const run $ seed $ count $ jobs $ soak $ shrink_flag $ promote $ replay
      $ corpus_dir)

let bench_cmd =
  let runs =
    Arg.(
      value & opt int 200
      & info [ "runs" ] ~docv:"N" ~doc:"Campaign size to benchmark.")
  in
  let out =
    Arg.(
      value
      & opt string Rvi_harness.Bench_campaign.default_path
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Trajectory file to append the JSON point to.")
  in
  let gate =
    Arg.(
      value
      & opt (some float) None
      & info [ "gate" ] ~docv:"FRAC"
          ~doc:
            "Fail (exit 1) if serial runs/sec lands below (1 - FRAC) times \
             the newest point already in the trajectory file — the \
             committed baseline. E.g. --gate 0.2 tolerates a 20% \
             regression.")
  in
  let sva =
    Arg.(
      value & flag
      & info [ "sva" ]
          ~doc:
            "Also benchmark the campaign under IOMMU/SVA translation and \
             append it as a second trajectory point (series \
             \"faults-campaign-sva\", gated against its own series' \
             baseline). The SVA row is appended first so the file's newest \
             row stays the paper-mode series.")
  in
  let run seed runs jobs out gate sva =
    let bench_one translation =
      let r = Rvi_harness.Bench_campaign.run ~runs ~seed ~translation ~jobs () in
      Rvi_harness.Bench_campaign.print ppf r;
      (* Baseline read before this point is appended, filtered to the
         point's own series — SVA throughput never gates paper mode. *)
      let baseline =
        Rvi_harness.Bench_campaign.last_serial_rps ~path:out
          ~benchmark:r.Rvi_harness.Bench_campaign.benchmark ()
      in
      let path = Rvi_harness.Bench_campaign.append ~path:out r in
      Printf.printf "appended trajectory point to %s\n" path;
      if not r.Rvi_harness.Bench_campaign.deterministic then exit 1;
      match (gate, baseline) with
      | Some tol, Some base ->
        let floor = (1.0 -. tol) *. base in
        let rps = r.Rvi_harness.Bench_campaign.serial_runs_per_sec in
        if rps < floor then begin
          Printf.eprintf
            "perf regression: serial %.1f runs/s < %.1f (baseline %.1f - %g%% \
             tolerance)\n"
            rps floor base (tol *. 100.);
          exit 1
        end
        else
          Printf.printf "perf gate ok: serial %.1f runs/s >= %.1f (baseline \
                         %.1f)\n"
            rps floor base
      | Some _, None ->
        Printf.printf "perf gate skipped: no committed baseline for %s in %s\n"
          r.Rvi_harness.Bench_campaign.benchmark out
      | None, _ -> ()
    in
    if sva then bench_one Rvi_core.Translation_mode.Iommu_sva;
    bench_one Rvi_core.Translation_mode.Paper_objects
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Benchmark the parallel campaign runner: wall-clock, runs/sec and \
          speedup of --jobs N against --jobs 1 on the same seeded campaign, \
          appended as one trajectory point to BENCH_campaign.json. Exits \
          non-zero if the parallel run classifies any run differently (a \
          determinism bug) or if --gate detects a throughput regression.")
    Term.(const run $ seed $ runs $ jobs $ out $ gate $ sva)

let serve_cmd =
  let tenants =
    Arg.(
      value & opt int 8
      & info [ "tenants" ] ~docv:"N" ~doc:"Number of tenants.")
  in
  let requests =
    Arg.(
      value & opt int 200
      & info [ "requests" ] ~docv:"M"
          ~doc:"Total requests across all tenants (per campaign cell).")
  in
  let rate =
    Arg.(
      value & opt int 0
      & info [ "rate" ] ~docv:"HZ"
          ~doc:
            "Open-loop aggregate arrival rate in requests/second; 0 (the \
             default) selects the closed loop (one outstanding request per \
             tenant).")
  in
  let policy =
    Arg.(
      value
      & opt
          (enum
             [
               ("fcfs", [ Rvi_svc.Sched_policy.Fcfs ]);
               ("grouped", [ Rvi_svc.Sched_policy.Grouped ]);
               ("wfq", [ Rvi_svc.Sched_policy.Wfq ]);
               ("all", Rvi_svc.Sched_policy.all);
             ])
          Rvi_svc.Sched_policy.all
      & info [ "policy" ] ~docv:"NAME"
          ~doc:"Dispatch policy: fcfs, grouped, wfq or all (the default).")
  in
  let translation =
    Arg.(
      value
      & opt
          (enum
             [
               ("paper", [ Rvi_core.Translation_mode.Paper_objects ]);
               ("sva", [ Rvi_core.Translation_mode.Iommu_sva ]);
               ("both", Rvi_core.Translation_mode.all);
             ])
          [ Rvi_core.Translation_mode.Paper_objects ]
      & info [ "translation" ] ~docv:"MODE"
          ~doc:"Translation mode(s): paper (default), sva or both.")
  in
  let quantum =
    Arg.(
      value & opt int 50
      & info [ "quantum" ] ~docv:"US"
          ~doc:"Preemption quantum in simulated microseconds.")
  in
  let bytes =
    Arg.(
      value & opt int 256
      & info [ "bytes" ] ~docv:"B"
          ~doc:
            "Nominal request input size; each request draws uniformly in \
             [B/2, 3B/2) and rounds to its application's alignment.")
  in
  let csv_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Write per-request rows to $(docv).")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Append one trajectory point per campaign cell to $(docv) \
             (BENCH_serve.json format).")
  in
  let gate =
    Arg.(
      value
      & opt (some float) None
      & info [ "gate" ] ~docv:"FRAC"
          ~doc:
            "With --json: fail (exit 1) if a cell's host runs/sec falls \
             below (1 - FRAC) times its series' newest committed point, or \
             its simulated p99 grows past (1 + FRAC) times it.")
  in
  let verify_det =
    Arg.(
      value & flag
      & info [ "verify-determinism" ]
          ~doc:
            "Re-run the campaign serially and require a digest-identical \
             per-request classification (only meaningful with --jobs > 1).")
  in
  let run seed jobs tenants requests rate policies translations quantum bytes
      csv_out json_out gate verify_det =
    let cells =
      Rvi_svc.Serve.cells ~policies ~translations ~seed ~tenants ~requests
        ~rate_hz:rate ~quantum_us:quantum ~bytes
    in
    let results = Rvi_svc.Serve.campaign ~jobs cells in
    let deterministic =
      if verify_det && jobs > 1 then
        Rvi_svc.Serve.digest (Rvi_svc.Serve.campaign ~jobs:1 cells)
        = Rvi_svc.Serve.digest results
      else true
    in
    List.iter
      (fun (r : Rvi_svc.Serve.cell_result) ->
        Rvi_svc.Slo.print ppf
          ~label:(Rvi_svc.Serve.cell_label r.Rvi_svc.Serve.cr_cell)
          r.Rvi_svc.Serve.cr_report)
      results;
    (match csv_out with
    | Some path ->
      let oc = open_out path in
      output_string oc Rvi_svc.Serve.csv_header;
      List.iter
        (fun (r : Rvi_svc.Serve.cell_result) ->
          output_string oc r.Rvi_svc.Serve.cr_csv)
        results;
      close_out oc;
      Printf.printf "wrote per-request rows to %s\n" path
    | None -> ());
    let violations = List.concat_map Rvi_svc.Serve.violations results in
    List.iter (fun v -> Printf.eprintf "violation: %s\n" v) violations;
    let gate_failures =
      match json_out with
      | None -> []
      | Some path ->
        List.concat_map
          (fun (r : Rvi_svc.Serve.cell_result) ->
            let p = Rvi_svc.Bench_serve.of_result ~jobs ~deterministic r in
            (* baseline read before this point lands in the file *)
            let baseline =
              Rvi_svc.Bench_serve.last_baseline ~path
                ~benchmark:p.Rvi_svc.Bench_serve.benchmark ()
            in
            ignore (Rvi_svc.Bench_serve.append ~path p);
            Rvi_svc.Bench_serve.print ppf p;
            match gate with
            | Some tolerance ->
              Rvi_svc.Bench_serve.gate ~tolerance ~baseline p
            | None -> [])
          results
    in
    (match json_out with
    | Some path -> Printf.printf "appended trajectory points to %s\n" path
    | None -> ());
    List.iter (fun f -> Printf.eprintf "perf regression: %s\n" f) gate_failures;
    if not deterministic then begin
      Printf.eprintf
        "determinism: per-request classification DIVERGED across --jobs\n";
      exit 1
    end;
    if violations <> [] || gate_failures <> [] then exit 1;
    Printf.printf
      "serve campaign ok: %d cells, deterministic, zero invariant violations\n"
      (List.length results)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Multi-tenant service campaign: per-tenant submission/completion \
          rings feeding one physical platform through the sliced-execution \
          VIM API, under a pluggable dispatch policy (fcfs, grouped, wfq \
          with preemption). Reports per-tenant and aggregate p50/p95/p99 \
          latency, Jain's fairness index, makespan and reconfiguration \
          counts; exits non-zero on any invariant violation (starved \
          tenant, interface inconsistency, insane statistics), \
          non-determinism across --jobs, or a --gate perf regression.")
    Term.(
      const run $ seed $ jobs $ tenants $ requests $ rate $ policy
      $ translation $ quantum $ bytes $ csv_out $ json_out $ gate $ verify_det)

let all_cmd =
  let run cfg jobs = Rvi_harness.Experiments.all ~jobs ppf cfg in
  Cmd.v
    (Cmd.info "all" ~doc:"Every figure, claim and ablation in sequence.")
    Term.(const run $ config_term $ jobs)

let () =
  let doc =
    "reproduction of 'Operating System Support for Interface Virtualisation \
     of Reconfigurable Coprocessors' (DATE 2004)"
  in
  let info = Cmd.info "rvisim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            fig7_cmd;
            fig8_cmd;
            fig9_cmd;
            overheads_cmd;
            ablations_cmd;
            ablate_cmd;
            portability_cmd;
            ext_fir_cmd;
            ext_cbc_cmd;
            miss_curve_cmd;
            multiprog_cmd;
            sweeps_cmd;
            sensitivity_cmd;
            ext_dual_cmd;
            ext_oracle_cmd;
            emit_vhdl_cmd;
            emit_stubs_cmd;
            run_cmd;
            faults_cmd;
            chaos_cmd;
            bench_cmd;
            serve_cmd;
            all_cmd;
          ]))
