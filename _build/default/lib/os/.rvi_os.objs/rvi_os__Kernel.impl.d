lib/os/kernel.ml: Accounting Cost_model Irq Rvi_mem Rvi_sim Sched Syscall
