lib/coproc/normal_driver.ml: Bytes Coproc Dport List Printf Rvi_core Rvi_mem Rvi_os Rvi_sim Stdlib
