(** The motivating-example coprocessor: C[i] = A[i] + B[i] (paper,
    Figures 3, 5 and 6).

    Objects: 0 = A, 1 = B, 2 = C, all vectors of 32-bit words. One scalar
    parameter: the element count. As in Figure 5, the machine emits pure
    virtual addresses — an object identifier and an index — and never
    performs any physical address calculation. *)

val obj_a : int
val obj_b : int
val obj_c : int

val reference : a:int array -> b:int array -> int array
(** The pure-software version ([add_vectors] in Figure 3). Wrapping 32-bit
    addition. Raises [Invalid_argument] on length mismatch. *)

val sw_cycles_per_element : int
(** Calibrated ARM cycles per element of the software version. *)

module Make (P : Mem_port.S) : sig
  val create : P.t -> Coproc.t
end

module Virtual : sig
  val create : Rvi_core.Cp_port.t -> Vport.t * Coproc.t
  (** Convenience instantiation behind the virtual interface. *)
end
