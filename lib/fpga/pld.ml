type error =
  | Too_large of { required : int; available : int }
  | Locked_by of int
  | Not_owner of int
  | Empty

type t = {
  dev : Device.t;
  mutable loaded : Bitstream.t option;
  mutable owner : int option;
  mutable reconfigurations : int;
}

let pp_error ppf = function
  | Too_large { required; available } ->
    Format.fprintf ppf "bit-stream needs %d LEs, device has %d" required available
  | Locked_by pid -> Format.fprintf ppf "PLD locked by process %d" pid
  | Not_owner pid -> Format.fprintf ppf "process %d does not own the PLD" pid
  | Empty -> Format.fprintf ppf "no bit-stream configured"

let error_to_string e = Format.asprintf "%a" pp_error e

let create dev = { dev; loaded = None; owner = None; reconfigurations = 0 }
let device t = t.dev

let configure t ~pid bs =
  match t.owner with
  | Some other when other <> pid -> Error (Locked_by other)
  | Some _ | None ->
    if bs.Bitstream.logic_elements > t.dev.Device.logic_elements then
      Error
        (Too_large
           {
             required = bs.Bitstream.logic_elements;
             available = t.dev.Device.logic_elements;
           })
    else begin
      t.loaded <- Some bs;
      t.owner <- Some pid;
      t.reconfigurations <- t.reconfigurations + 1;
      Ok ()
    end

let release t ~pid =
  match t.owner with
  | None -> Error Empty
  | Some other when other <> pid -> Error (Not_owner pid)
  | Some _ ->
    t.owner <- None;
    t.loaded <- None;
    Ok ()

let loaded t = t.loaded
let owner t = t.owner
let reconfigurations t = t.reconfigurations

(* Platform pooling: back to the unconfigured, unlocked power-on state. *)
let reset t =
  t.loaded <- None;
  t.owner <- None;
  t.reconfigurations <- 0
