(** One assembled reconfigurable platform.

    Builds the whole machine from a {!Config.t} and a bit-stream: engine,
    kernel, dual-port RAM, PLD, IMU (on its clock), VIM, the syscall API
    and a coprocessor instantiated behind the virtual interface. This is
    what the examples and the runner share; tests use it to poke the
    internals. *)

type t = {
  engine : Rvi_sim.Engine.t;
  kernel : Rvi_os.Kernel.t;
  dpram : Rvi_mem.Dpram.t;
  pld : Rvi_fpga.Pld.t;
  port : Rvi_core.Cp_port.t;
  imu : Rvi_core.Imu.t;
  clock : Rvi_sim.Clock.t;
  vim : Rvi_core.Vim.t;
  api : Rvi_core.Api.t;
  vport : Rvi_coproc.Vport.t;
  coproc : Rvi_coproc.Coproc.t;
  proc : Rvi_os.Proc.t;  (** the application process, already scheduled *)
}

val create :
  ?app_name:string ->
  ?sdram_bytes:int ->
  Config.t ->
  bitstream:Rvi_fpga.Bitstream.t ->
  make:(Rvi_core.Cp_port.t -> Rvi_coproc.Vport.t * Rvi_coproc.Coproc.t) ->
  t
(** Components are registered on the clock in hardware order: IMU, port
    synchroniser, coprocessor (on the bit-stream's divided clock). *)

val alloc : t -> int -> Rvi_os.Uspace.buf
val alloc_bytes : t -> Bytes.t -> Rvi_os.Uspace.buf
val read : t -> Rvi_os.Uspace.buf -> Bytes.t

val trace : t -> Rvi_hw.Wave.t
(** Attaches (once) a waveform tracer probing the whole CP port on the
    platform clock and returns it. *)
