lib/os/accounting.ml: Array Format List Rvi_sim
