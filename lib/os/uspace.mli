(** User-space buffers.

    Applications allocate their vectors here — addresses in the simulated
    SDRAM — and pass them to [FPGA_MAP_OBJECT] exactly like a C program
    passes heap pointers. The software baselines operate on the same
    buffers, so VIM-based and pure-software runs are compared on identical
    data. *)

type buf = private { addr : int; size : int }

val alloc : Kernel.t -> int -> buf
(** Word-aligned allocation of the given size in bytes. *)

val of_bytes : Kernel.t -> Bytes.t -> buf
(** Allocates and initialises a buffer with a copy of the data. *)

val write : Kernel.t -> buf -> Bytes.t -> unit
(** Overwrites the buffer. Raises [Invalid_argument] on size mismatch. *)

val read : Kernel.t -> buf -> Bytes.t
(** Snapshot of the buffer contents. Allocates; hot paths comparing many
    outputs should prefer {!read_into} with a reused scratch buffer. *)

val read_into : Kernel.t -> buf -> Bytes.t -> dst:int -> unit
(** Copies the buffer contents into [b] at [dst] without allocating. *)

val sub : buf -> pos:int -> len:int -> buf
(** A view of a slice of the buffer (no copy; same address space). *)

val va_pages : Kernel.t -> page_size:int -> int
(** Number of whole virtual pages the process address space (the SDRAM)
    spans at the given page size — the bound the VIM checks SVA walker
    faults against. *)

val view : Kernel.t -> addr:int -> size:int -> buf
(** Reconstructs a buffer descriptor from a raw address/size pair, as the
    kernel does when a syscall passes a user pointer. Raises
    [Invalid_argument] if the range is outside the SDRAM. *)
