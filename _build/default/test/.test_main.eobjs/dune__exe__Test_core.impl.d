test/test_core.ml: Alcotest Array Bytes Char List Printf QCheck QCheck_alcotest Rvi_coproc Rvi_core Rvi_fpga Rvi_harness Rvi_hw Rvi_mem Rvi_os Rvi_sim String
