let step_table =
  [|
    7; 8; 9; 10; 11; 12; 13; 14; 16; 17; 19; 21; 23; 25; 28; 31; 34; 37; 41;
    45; 50; 55; 60; 66; 73; 80; 88; 97; 107; 118; 130; 143; 157; 173; 190;
    209; 230; 253; 279; 307; 337; 371; 408; 449; 494; 544; 598; 658; 724;
    796; 876; 963; 1060; 1166; 1282; 1411; 1552; 1707; 1878; 2066; 2272;
    2499; 2749; 3024; 3327; 3660; 4026; 4428; 4871; 5358; 5894; 6484; 7132;
    7845; 8630; 9493; 10442; 11487; 12635; 13899; 15289; 16818; 18500;
    20350; 22385; 24623; 27086; 29794; 32767;
  |]

let index_table =
  [| -1; -1; -1; -1; 2; 4; 6; 8; -1; -1; -1; -1; 2; 4; 6; 8 |]

type state = { mutable predictor : int; mutable index : int }

let initial_state () = { predictor = 0; index = 0 }

let clamp lo hi v = if v < lo then lo else if v > hi then hi else v

let decode_nibble st code =
  let code = code land 0xF in
  let step = step_table.(st.index) in
  let diff = ref (step lsr 3) in
  if code land 4 <> 0 then diff := !diff + step;
  if code land 2 <> 0 then diff := !diff + (step lsr 1);
  if code land 1 <> 0 then diff := !diff + (step lsr 2);
  let predictor =
    if code land 8 <> 0 then st.predictor - !diff else st.predictor + !diff
  in
  st.predictor <- clamp (-32768) 32767 predictor;
  st.index <- clamp 0 88 (st.index + index_table.(code));
  st.predictor

let encode_sample st sample =
  let sample = clamp (-32768) 32767 sample in
  let step = step_table.(st.index) in
  let delta = sample - st.predictor in
  let sign = if delta < 0 then 8 else 0 in
  let delta = abs delta in
  let code = ref sign in
  let delta = ref delta and step = ref step in
  if !delta >= !step then begin
    code := !code lor 4;
    delta := !delta - !step
  end;
  step := !step lsr 1;
  if !delta >= !step then begin
    code := !code lor 2;
    delta := !delta - !step
  end;
  step := !step lsr 1;
  if !delta >= !step then code := !code lor 1;
  (* Update the state through the decoder so both ends stay in lockstep. *)
  ignore (decode_nibble st !code);
  !code

let decoded_size n = 4 * n

(* A signed sample stored little-endian, two's complement. *)
let put_sample buf pos sample =
  let v = sample land 0xFFFF in
  Bytes.set buf pos (Char.chr (v land 0xFF));
  Bytes.set buf (pos + 1) (Char.chr ((v lsr 8) land 0xFF))

let get_sample buf pos =
  let v = Char.code (Bytes.get buf pos) lor (Char.code (Bytes.get buf (pos + 1)) lsl 8) in
  if v land 0x8000 <> 0 then v - 0x10000 else v

let decode input =
  let n = Bytes.length input in
  let out = Bytes.create (decoded_size n) in
  let st = initial_state () in
  for i = 0 to n - 1 do
    let byte = Char.code (Bytes.get input i) in
    put_sample out (4 * i) (decode_nibble st (byte land 0xF));
    put_sample out ((4 * i) + 2) (decode_nibble st (byte lsr 4))
  done;
  out

let encode samples =
  let n = Bytes.length samples in
  if n mod 4 <> 0 then invalid_arg "Adpcm_ref.encode: length must be 4k";
  let out = Bytes.create (n / 4) in
  let st = initial_state () in
  for i = 0 to (n / 4) - 1 do
    let lo = encode_sample st (get_sample samples (4 * i)) in
    let hi = encode_sample st (get_sample samples ((4 * i) + 2)) in
    Bytes.set out i (Char.chr (lo lor (hi lsl 4)))
  done;
  out
