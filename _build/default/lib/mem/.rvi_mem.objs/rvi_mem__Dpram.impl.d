lib/mem/dpram.ml: Page Printf Ram Rvi_sim
