(** Software execution-cost model.

    The simulated ARM does not interpret instructions; instead every kernel
    and application activity is charged a calibrated number of CPU cycles,
    which the kernel converts to simulated time. Constants are derived from
    the EPXA1's 133 MHz ARM922T running Linux 2.4 (see
    {!Rvi_harness.Calibration} for the derivations and sensitivity notes). *)

type t = {
  cpu_freq_hz : int;
  syscall_entry : int;  (** trap, argument copy, dispatch *)
  syscall_exit : int;
  irq_entry : int;  (** interrupt latency + prologue *)
  irq_exit : int;
  fault_decode : int;
      (** read AR/SR over the bus, identify object and virtual page *)
  tlb_update : int;  (** write one IMU TLB entry over the bus *)
  page_bookkeeping : int;  (** frame-table and replacement-policy update *)
  param_word : int;  (** store one scalar parameter to the parameter page *)
  configure_pld : int;  (** drive one bit-stream into the lattice *)
  process_wakeup : int;  (** mark the sleeping caller runnable and switch *)
}

val default : cpu_freq_hz:int -> t

val time_of_cycles : t -> int -> Rvi_sim.Simtime.t
(** Simulated duration of [n] CPU cycles. *)

val cycles_of_time : t -> Rvi_sim.Simtime.t -> int
