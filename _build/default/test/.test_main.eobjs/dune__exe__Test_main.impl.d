test/test_main.ml: Alcotest Test_coproc Test_core Test_fpga Test_harness Test_hw Test_mem Test_os Test_rtl Test_sim Test_vim
