examples/multiprogramming.mli:
