(** Two-phase registers.

    A register holds a committed value, visible to everyone, and a pending
    next value written during a clock domain's compute phase. {!commit}
    latches the pending value at the clock edge. Components built from
    these registers obey register-transfer semantics under {!Rvi_sim.Clock}:
    every compute phase sees the values committed on the previous edge. *)

type 'a t

val create : 'a -> 'a t
(** A register whose committed and pending values both start at the given
    reset value. *)

val get : 'a t -> 'a
(** The committed value. *)

val set : 'a t -> 'a -> unit
(** Schedules a new value for the next commit. Last write wins. *)

val peek_next : 'a t -> 'a
(** The pending value ({!get} if nothing was written since last commit). *)

val commit : 'a t -> unit
(** Latches the pending value. *)

val reset : 'a t -> 'a -> unit
(** Forces both committed and pending values (asynchronous reset). *)
