(* Tests for the multi-tenant service layer (rvi_svc): the descriptor
   ring against a functional-queue model, completion-id permutation and
   per-tenant FIFO through a whole serve cell, preemption soundness at
   every cycle offset of a short run in both translation modes,
   scheduler determinism across --jobs, the cross-tenant hang/reclaim
   isolation regression, starvation detection, and the chaos
   integration of the tenants/SLO scenario axes. *)

module Simtime = Rvi_sim.Simtime
module Kernel = Rvi_os.Kernel
module Config = Rvi_harness.Config
module Platform = Rvi_harness.Platform
module Calibration = Rvi_harness.Calibration
module Workload = Rvi_harness.Workload
module Jobs = Rvi_harness.Jobs
module Api = Rvi_core.Api
module Vim = Rvi_core.Vim
module Translation_mode = Rvi_core.Translation_mode
module Fault = Rvi_inject.Fault
module Injector = Rvi_inject.Injector
module Ring = Rvi_svc.Ring
module Tenant = Rvi_svc.Tenant
module Sched_policy = Rvi_svc.Sched_policy
module Service = Rvi_svc.Service
module Loadgen = Rvi_svc.Loadgen
module Slo = Rvi_svc.Slo
module Serve = Rvi_svc.Serve
module Scenario = Rvi_scenario.Scenario
module Chaos = Rvi_scenario.Chaos

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* {1 The descriptor ring} *)

let test_ring_basics () =
  let r = Ring.create ~capacity:3 in
  checkb "fresh ring is empty" true (Ring.is_empty r);
  checkb "push 1" true (Ring.push r 1);
  checkb "push 2" true (Ring.push r 2);
  checkb "push 3" true (Ring.push r 3);
  checkb "full ring refuses" false (Ring.push r 4);
  checki "length" 3 (Ring.length r);
  Alcotest.(check (option int)) "peek is oldest" (Some 1) (Ring.peek r);
  Alcotest.(check (option int)) "pop is oldest" (Some 1) (Ring.pop r);
  checkb "push after wrap" true (Ring.push r 4);
  Alcotest.(check (list int)) "FIFO across the wrap" [ 2; 3; 4 ]
    (Ring.to_list r);
  checkb "non-positive capacity rejected" true
    (try
       ignore (Ring.create ~capacity:0);
       false
     with Invalid_argument _ -> true)

(* Model-based: any interleaving of pushes and pops over any capacity
   behaves exactly like an unbounded functional queue truncated at the
   capacity — same acceptance, same pop order, nothing lost, nothing
   duplicated. *)
let prop_ring_model =
  QCheck.Test.make ~name:"ring matches the functional-queue model"
    ~count:500
    QCheck.(pair (int_range 1 5) (small_list (option small_nat)))
    (fun (cap, ops) ->
      let r = Ring.create ~capacity:cap in
      let model = Queue.create () in
      List.for_all
        (fun op ->
          match op with
          | Some v ->
            let accepted = Ring.push r v in
            let fits = Queue.length model < cap in
            if fits then Queue.add v model;
            accepted = fits
          | None -> Ring.pop r = Queue.take_opt model)
        ops
      && Ring.to_list r = List.of_seq (Queue.to_seq model))

(* {1 Service-level identities through a whole serve cell} *)

let small_cell ?(policy = Sched_policy.Wfq)
    ?(translation = Translation_mode.Paper_objects) ?(seed = 7)
    ?(tenants = 3) ?(requests = 24) ?(rate_hz = 0) () =
  {
    Serve.cl_policy = policy;
    cl_translation = translation;
    cl_seed = seed;
    cl_tenants = tenants;
    cl_requests = requests;
    cl_rate_hz = rate_hz;
    cl_quantum_us = 50;
    cl_bytes = 128;
  }

let csv_rows csv =
  String.split_on_char '\n' csv
  |> List.filter (fun l -> l <> "")
  |> List.map (fun l -> String.split_on_char ',' l)

(* Closed loop: every request completes exactly once (the completion
   rids are a permutation of the submission rids), in submission order
   within each tenant. *)
let test_completions_are_a_permutation () =
  let r = Serve.run_cell (small_cell ()) in
  Alcotest.(check (list string)) "no invariant violations" []
    (Serve.violations r);
  let rows = csv_rows r.Serve.cr_csv in
  checki "one row per request" 24 (List.length rows);
  let rids = List.map (fun row -> int_of_string (List.nth row 2)) rows in
  Alcotest.(check (list int)) "rids are a permutation of submissions"
    (List.init 24 Fun.id)
    (List.sort compare rids);
  (* per-tenant FIFO: within a tenant, completion order = rid order *)
  let per_tenant = Hashtbl.create 4 in
  List.iter
    (fun row ->
      let tenant = int_of_string (List.nth row 3) in
      let rid = int_of_string (List.nth row 2) in
      let prev = Option.value ~default:(-1) (Hashtbl.find_opt per_tenant tenant) in
      checkb "per-tenant completions in submission order" true (rid > prev);
      Hashtbl.replace per_tenant tenant rid)
    rows

let test_campaign_jobs_invariant () =
  let cells =
    Serve.cells ~policies:Sched_policy.all
      ~translations:[ Translation_mode.Paper_objects ] ~seed:11 ~tenants:4
      ~requests:24 ~rate_hz:0 ~quantum_us:50 ~bytes:64
  in
  let serial = Serve.campaign cells in
  let parallel = Serve.campaign ~jobs:2 cells in
  checks "per-request digest independent of --jobs" (Serve.digest serial)
    (Serve.digest parallel);
  List.iter
    (fun r ->
      Alcotest.(check (list string))
        ("clean run: " ^ Serve.cell_label r.Serve.cr_cell)
        [] (Serve.violations r))
    serial

(* {1 Preemption soundness}

   A short ADPCM execution, preempted at every cycle offset, the parked
   interface scrambled (the whole shared dual-port RAM clobbered — the
   observable effect of another station's tenant using the interface
   while this one is parked), then resumed and run to completion: the
   output must be byte-identical to the reference and the VIM
   consistency checker clean, in both translation modes. The scramble
   is the cross-station hazard the service actually exposes a parked
   context to: stations share the dual-port RAM but own their IMU,
   frame table and coprocessor, and a station's parked tenant shadows
   fresh work of its kind, so no second execution ever runs on the
   parked station itself. *)

let adpcm_input = Workload.adpcm_stream ~seed:9 ~bytes:8

let adpcm_setup p =
  let ok = function
    | Ok () -> ()
    | Error _ -> Alcotest.fail "adpcm setup failed"
  in
  let in_buf = Platform.alloc_bytes p adpcm_input in
  let out_buf =
    Platform.alloc p
      (Rvi_coproc.Adpcm_ref.decoded_size (Bytes.length adpcm_input))
  in
  ok (Api.fpga_load p.Platform.api Calibration.adpcm_bitstream);
  ok
    (Api.fpga_map_object p.Platform.api ~id:Rvi_coproc.Adpcm_coproc.obj_in
       ~buf:in_buf ~dir:Rvi_core.Mapped_object.In ~stream:true ());
  ok
    (Api.fpga_map_object p.Platform.api ~id:Rvi_coproc.Adpcm_coproc.obj_out
       ~buf:out_buf ~dir:Rvi_core.Mapped_object.Out ~stream:true ());
  match
    Vim.exec_start ~page_table:p.Platform.proc.Rvi_os.Proc.page_table
      p.Platform.vim
      ~params:[ Bytes.length adpcm_input ]
  with
  | Ok session -> (session, out_buf)
  | Error _ -> Alcotest.fail "exec_start failed"

let rec pump_to_done p session =
  let until =
    Simtime.add (Kernel.now p.Platform.kernel) (Simtime.of_ms 10)
  in
  match Vim.exec_pump p.Platform.vim session ~until with
  | `Done r -> r
  | `Running -> pump_to_done p session

let scramble_dpram p =
  let dpram = p.Platform.dpram in
  let page_size = Rvi_mem.Dpram.page_size dpram in
  let junk = Bytes.make page_size '\xa5' in
  for page = 0 to Rvi_mem.Dpram.n_pages dpram - 1 do
    Rvi_mem.Dpram.load_page dpram ~page junk ~src:0 ~len:page_size
  done

let preemption_soundness translation () =
  let cfg = { (Config.default ()) with Config.translation } in
  let expected = Rvi_coproc.Adpcm_ref.decode adpcm_input in
  let p =
    Platform.create ~app_name:"svc-preempt" cfg
      ~bitstream:Calibration.adpcm_bitstream
      ~make:Rvi_coproc.Adpcm_coproc.Virtual.create
  in
  (* Unpreempted reference run, and the cycle count to sweep. *)
  let session, out_buf = adpcm_setup p in
  let t_begin = Kernel.now p.Platform.kernel in
  (match pump_to_done p session with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "unpreempted run failed");
  checkb "unpreempted output matches the reference" true
    (Bytes.equal (Platform.read p out_buf) expected);
  let cycle_ps =
    1_000_000_000_000
    / Calibration.adpcm_bitstream.Rvi_fpga.Bitstream.imu_freq_hz
  in
  let total_cycles =
    (Simtime.to_ps (Simtime.sub (Kernel.now p.Platform.kernel) t_begin)
    + cycle_ps - 1)
    / cycle_ps
  in
  checkb "run is long enough to sweep" true (total_cycles > 4);
  let preempted = ref 0 in
  for k = 1 to total_cycles do
    Platform.reset p cfg;
    let session, out_buf = adpcm_setup p in
    let t0 = Kernel.now p.Platform.kernel in
    let label = Printf.sprintf "offset %d/%d" k total_cycles in
    let result =
      match
        Vim.exec_pump p.Platform.vim session
          ~until:(Simtime.add t0 (Simtime.of_ps (k * cycle_ps)))
      with
      | `Done r -> r
      | `Running ->
        incr preempted;
        let ctx = Vim.exec_preempt p.Platform.vim session in
        scramble_dpram p;
        let session = Vim.exec_resume p.Platform.vim ctx in
        pump_to_done p session
    in
    (match result with
    | Ok () -> ()
    | Error _ -> Alcotest.fail (label ^ ": resumed run failed"));
    checkb (label ^ ": output matches the reference") true
      (Bytes.equal (Platform.read p out_buf) expected);
    match Vim.consistency p.Platform.vim with
    | Ok () -> ()
    | Error m -> Alcotest.fail (label ^ ": inconsistent after resume: " ^ m)
  done;
  checkb "sweep actually preempted mid-run" true (!preempted > 4)

(* {1 Cross-tenant isolation}

   Regression for the latent single-tenant assumptions in the VIM abort
   and watchdog paths: one tenant's injected coprocessor hang — watchdog
   fire, abort hook, interface reclaim — must not corrupt or wake
   another tenant's in-flight request. Tenant 1 runs concurrently
   (preempted in and out under WFQ while tenant 0 sits hung) and must
   complete Clean with verified output; and the hung tenant's watchdog
   budget must survive parking, so the hang is reclaimed rather than
   livelocking (historically resume re-armed the watchdog from scratch,
   so a hung tenant preempted every quantum never aborted). *)

let test_cross_tenant_hang_isolation () =
  let inj = Injector.create ~seed:3 ~spec:[] in
  Injector.set_events inj [ (Fault.Coproc_hang, 1) ];
  let cfg =
    {
      (Config.default ()) with
      Config.injector = Some inj;
      watchdog = Simtime.of_ms 1;
      exec_retries = 0;
      seed = 3;
    }
  in
  let tenant id =
    Tenant.create ~id ~weight:1 ~sq_capacity:8 ~cq_capacity:8
  in
  let tenants = [| tenant 0; tenant 1 |] in
  let submit id kind seed =
    let bytes = Service.normalize_bytes kind 256 in
    checkb "submitted" true
      (Tenant.submit tenants.(id)
         {
           Tenant.rid = id;
           tenant = id;
           kind;
           seed;
           bytes;
           submitted_at = Simtime.zero;
         })
  in
  (* Tenant 0 dispatches first (drain order) and catches the hang. *)
  submit 0 Jobs.Adpcm 13;
  submit 1 Jobs.Idea 14;
  let svc =
    Service.create cfg (Service.default_params Sched_policy.Wfq) ~tenants
  in
  let outcome = Service.run svc Service.null_feed ~expect:2 in
  checki "both requests completed" 2 outcome.Service.o_completed;
  checkb "hang was reclaimed, not livelocked" true
    (not outcome.Service.o_exhausted);
  Alcotest.(check (list int)) "nobody starved" [] outcome.Service.o_starved;
  Alcotest.(check (list string)) "interfaces consistent" []
    outcome.Service.o_inconsistencies;
  let completion tn =
    match Ring.to_list tenants.(tn).Tenant.cq with
    | [ c ] -> c
    | l -> Alcotest.fail (Printf.sprintf "tenant %d: %d completions" tn (List.length l))
  in
  let c0 = completion 0 and c1 = completion 1 in
  checks "hung tenant degrades to the verified fallback" "degraded"
    (Tenant.status_name c0.Tenant.c_status);
  checks "the other tenant's request is untouched" "clean"
    (Tenant.status_name c1.Tenant.c_status);
  checkb "victim ran concurrently with the hang" true
    (outcome.Service.o_preemptions >= 1);
  checki "the bystander never needed a retry" 0 c1.Tenant.c_retries

(* The distilled livelock regression at the VIM level: an execution
   that hangs on its first opportunity is preempted and resumed every
   quantum. The watchdog budget must be carried across each park —
   resume used to re-arm it from scratch, so the stall was never
   reclaimed as long as a preemptive scheduler kept slicing. *)
let test_watchdog_budget_survives_preemption () =
  let inj = Injector.create ~seed:7 ~spec:[] in
  Injector.set_events inj [ (Fault.Coproc_hang, 1) ];
  let watchdog = Simtime.of_ms 1 in
  let cfg =
    { (Config.default ()) with Config.injector = Some inj; watchdog; seed = 7 }
  in
  let p =
    Platform.create ~app_name:"svc-livelock" cfg
      ~bitstream:Calibration.adpcm_bitstream
      ~make:Rvi_coproc.Adpcm_coproc.Virtual.create
  in
  let session, _ = adpcm_setup p in
  let quantum = Simtime.of_us 50 in
  let t0 = Kernel.now p.Platform.kernel in
  (* Each slice consumes 50 us of watchdog budget but also pays the
     park/resume copy charges, so the reclaim lands well past the bare
     1 ms budget — yet with the budget carried across parks it is still
     bounded. Re-arming on resume (the old bug) never terminates. *)
  let give_up = Simtime.add t0 (Simtime.of_ms 500) in
  let session = ref session in
  let preempts = ref 0 in
  let result = ref None in
  while !result = None do
    let now = Kernel.now p.Platform.kernel in
    checkb "watchdog reclaims the hang despite slicing" true
      (Simtime.compare now give_up < 0);
    match Vim.exec_pump p.Platform.vim !session ~until:(Simtime.add now quantum) with
    | `Done r -> result := Some r
    | `Running ->
      incr preempts;
      let ctx = Vim.exec_preempt p.Platform.vim !session in
      session := Vim.exec_resume p.Platform.vim ctx
  done;
  (match !result with
  | Some (Error Vim.Hardware_stall) -> ()
  | Some (Ok ()) -> Alcotest.fail "hung execution reported success"
  | Some (Error _) -> Alcotest.fail "unexpected error kind"
  | None -> assert false);
  checkb "the stall really was sliced while hung" true (!preempts >= 5)

(* {1 Starvation detection} *)

let test_starvation_detection () =
  let cfg = { (Config.default ()) with Config.seed = 5 } in
  let lg =
    Loadgen.create ~seed:5 ~tenants:4 ~requests:80 ~rate_hz:0 ~bytes:64 ()
  in
  let params =
    {
      (Service.default_params Sched_policy.Fcfs) with
      Service.sp_starvation_budget = Simtime.of_ps 1;
    }
  in
  let svc = Service.create cfg params ~tenants:(Loadgen.tenants lg) in
  let outcome = Service.run svc (Loadgen.feed lg) ~expect:80 in
  checkb "a zero budget flags waiting tenants as starved" true
    (outcome.Service.o_starved <> []);
  let report = Slo.build ~tenants:(Loadgen.tenants lg) ~outcome in
  Alcotest.(check (list int)) "the SLO report carries the same list"
    outcome.Service.o_starved report.Slo.r_starved

(* {1 Chaos integration: scenario axes and the new invariants} *)

let test_scenario_tenant_axes_roundtrip () =
  let sc = { Scenario.default with Scenario.tenants = 5; slo_p99_ms = 250 } in
  (match Scenario.of_string (Scenario.to_string sc) with
  | Ok sc' -> checkb "tenant axes round-trip bit-exactly" true (sc' = sc)
  | Error m -> Alcotest.fail m);
  (* Pre-axis corpus lines parse with the single-tenant defaults. *)
  (match Scenario.of_string "seed=1" with
  | Ok sc' ->
    checki "omitted tenants defaults to 1" 1 sc'.Scenario.tenants;
    checki "omitted slo defaults to none" 0 sc'.Scenario.slo_p99_ms
  | Error m -> Alcotest.fail m);
  checkb "tenants=0 rejected" true
    (Result.is_error (Scenario.of_string "tenants=0"));
  checkb "negative slo rejected" true
    (Result.is_error (Scenario.of_string "slo_ms=-1"))

let test_violation_classes () =
  checks "starved class" "starved" (Chaos.violation_class (Chaos.Starved 3));
  checks "starved detail" "tenant 3 starved"
    (Chaos.violation_detail (Chaos.Starved 3));
  checks "slo-insane class" "slo-insane"
    (Chaos.violation_class (Chaos.Slo_insane "x"))

let test_chaos_service_route () =
  (* A clean multi-tenant scenario passes through the service route. *)
  let sc = { Scenario.default with Scenario.tenants = 3 } in
  let r = Chaos.run sc in
  checks "clean multi-tenant run passes" "pass" (Chaos.classification r);
  checkb "service route has no single-tenant runs" true (r.Chaos.runs = []);
  (* An absurd declared objective is reported as slo-insane. *)
  let sc = { Scenario.default with Scenario.tenants = 2; slo_p99_ms = 1 } in
  checks "declared SLO breach classifies slo-insane" "slo-insane"
    (Chaos.classification (Chaos.run sc))

let suite =
  [
    Alcotest.test_case "ring/basics" `Quick test_ring_basics;
    QCheck_alcotest.to_alcotest prop_ring_model;
    Alcotest.test_case "service/completion-permutation" `Quick
      test_completions_are_a_permutation;
    Alcotest.test_case "serve/jobs-digest-invariant" `Slow
      test_campaign_jobs_invariant;
    Alcotest.test_case "preempt/soundness-paper" `Slow
      (preemption_soundness Translation_mode.Paper_objects);
    Alcotest.test_case "preempt/soundness-sva" `Slow
      (preemption_soundness Translation_mode.Iommu_sva);
    Alcotest.test_case "service/cross-tenant-hang-isolation" `Quick
      test_cross_tenant_hang_isolation;
    Alcotest.test_case "vim/watchdog-budget-survives-preemption" `Quick
      test_watchdog_budget_survives_preemption;
    Alcotest.test_case "service/starvation-detection" `Slow
      test_starvation_detection;
    Alcotest.test_case "scenario/tenant-axes-roundtrip" `Quick
      test_scenario_tenant_axes_roundtrip;
    Alcotest.test_case "chaos/violation-classes" `Quick test_violation_classes;
    Alcotest.test_case "chaos/service-route" `Slow test_chaos_service_route;
  ]
