(** The pipelined IMU variant (paper §4.1).

    The paper measures a translation overhead of about 20 % of hardware
    time for IDEA and announces "a pipelined implementation of the IMU
    which is expected to mask almost completely the translation overhead".
    This variant overlaps the CAM search with the access: a translated
    access completes in 2 cycles instead of 4 (one residual cycle over a
    raw dual-port access — the "almost").

    It is the same machine as {!Imu} configured with
    {!Imu.pipelined_config}; the ablation benchmark [abl-pipe] compares
    the two. *)

val create :
  ?tlb_entries:int ->
  ?translation:Translation_mode.t ->
  port:Cp_port.t ->
  dpram:Rvi_mem.Dpram.t ->
  raise_irq:(unit -> unit) ->
  unit ->
  Imu.t
