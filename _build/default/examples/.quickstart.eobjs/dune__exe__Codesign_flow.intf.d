examples/codesign_flow.mli:
