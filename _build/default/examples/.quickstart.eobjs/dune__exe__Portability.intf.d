examples/portability.mli:
