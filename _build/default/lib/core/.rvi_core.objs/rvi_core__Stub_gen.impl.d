lib/core/stub_gen.ml: Buffer Cp_port List Mapped_object Printf String
