lib/os/syscall.mli:
