module Prng = Rvi_sim.Prng

let adpcm_stream ~seed ~bytes =
  let prng = Prng.create ~seed in
  (* Two samples per compressed byte; 16-bit little-endian PCM. *)
  let n_samples = 2 * bytes in
  let pcm = Bytes.create (2 * n_samples) in
  let phase = ref 0.0 and freq = ref 0.02 in
  for i = 0 to n_samples - 1 do
    (* A tone whose pitch wanders plus a little noise: keeps the ADPCM
       predictor exercised across its whole step table. *)
    freq := Float.max 0.002 (Float.min 0.2 (!freq +. (float_of_int (Prng.int prng 21 - 10) /. 5e3)));
    phase := !phase +. !freq;
    let tone = 9000.0 *. sin !phase in
    let noise = float_of_int (Prng.int prng 2001 - 1000) in
    let sample = int_of_float (tone +. noise) in
    let v = sample land 0xFFFF in
    Bytes.set pcm (2 * i) (Char.chr (v land 0xFF));
    Bytes.set pcm ((2 * i) + 1) (Char.chr ((v lsr 8) land 0xFF))
  done;
  Rvi_coproc.Adpcm_ref.encode pcm

let random_bytes ~seed ~n =
  let prng = Prng.create ~seed in
  let b = Bytes.create n in
  Prng.fill_bytes prng b;
  b

let idea_key ~seed =
  let prng = Prng.create ~seed:(seed lxor 0x1DEA) in
  Array.init 8 (fun _ -> Prng.int prng 0x10000)

let idea_plaintext ~seed ~bytes =
  if bytes mod 8 <> 0 then
    invalid_arg "Workload.idea_plaintext: need a multiple of 8 bytes";
  random_bytes ~seed ~n:bytes

let vectors ~seed ~n =
  let prng = Prng.create ~seed in
  let gen () = Array.init n (fun _ -> Prng.int prng 0x1_0000_0000) in
  let a = gen () in
  let b = gen () in
  (a, b)

let fir_signal ~seed ~bytes =
  if bytes mod 2 <> 0 then invalid_arg "Workload.fir_signal: odd byte count";
  let prng = Prng.create ~seed:(seed lxor 0xF17) in
  let n = bytes / 2 in
  let b = Bytes.create bytes in
  for i = 0 to n - 1 do
    let t = float_of_int i in
    let tone =
      (7000.0 *. sin (0.05 *. t)) +. (4000.0 *. sin (0.31 *. t))
      +. (2000.0 *. sin (0.47 *. t))
    in
    let noise = float_of_int (Prng.int prng 4001 - 2000) in
    let v = int_of_float (tone +. noise) land 0xFFFF in
    Bytes.set b (2 * i) (Char.chr (v land 0xFF));
    Bytes.set b ((2 * i) + 1) (Char.chr ((v lsr 8) land 0xFF))
  done;
  b

let fir_coeffs ~taps = Rvi_coproc.Fir_ref.lowpass ~taps ~cutoff:0.12
