type t = {
  counters : (string, int ref) Hashtbl.t;
  summaries : (string, Histogram.t) Hashtbl.t;
}

type summary = {
  count : int;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let create () = { counters = Hashtbl.create 16; summaries = Hashtbl.create 16 }

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add t.counters name (ref by)

(* A counter handle is the same [int ref] the table holds, so [get],
   [counters] and [merge_into] keep seeing handle updates. [reset] clears
   the table but handles created before it keep their (now detached) ref —
   hot paths must re-resolve after a reset, which no current caller does
   mid-run. *)
type counter = int ref

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.counters name r;
    r

let[@inline] tick r = Stdlib.incr r
let[@inline] tick_by r by = r := !r + by
let value r = !r

let get t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let observe t name x =
  match Hashtbl.find_opt t.summaries name with
  | Some h -> Histogram.add h x
  | None ->
    let h = Histogram.create () in
    Histogram.add h x;
    Hashtbl.add t.summaries name h

let histogram t name = Hashtbl.find_opt t.summaries name

let summary t name =
  match Hashtbl.find_opt t.summaries name with
  | None -> None
  | Some h ->
    Some
      {
        count = Histogram.count h;
        min = Histogram.min h;
        max = Histogram.max h;
        mean = Histogram.mean h;
        p50 = Histogram.percentile h 50.0;
        p95 = Histogram.percentile h 95.0;
        p99 = Histogram.percentile h 99.0;
      }

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let merge_into ~into src =
  Hashtbl.iter (fun name r -> incr ~by:!r into name) src.counters;
  Hashtbl.iter
    (fun name h ->
      match Hashtbl.find_opt into.summaries name with
      | Some dst -> Histogram.merge_into ~into:dst h
      | None ->
        let dst = Histogram.create () in
        Histogram.merge_into ~into:dst h;
        Hashtbl.add into.summaries name dst)
    src.summaries

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.summaries

(* Handle-preserving reset for pooled components: counters are zeroed in
   place, so pre-resolved [counter] handles held by hot paths (IMU, DP-RAM,
   TLB) stay attached to the live cells. [get]/[summary] answers afterwards
   are identical to a fresh table; only the [counters] listing differs
   (zero-valued names remain listed). *)
let soft_reset t =
  Hashtbl.iter (fun _ r -> r := 0) t.counters;
  Hashtbl.reset t.summaries

let pp ppf t =
  let items = counters t in
  Format.fprintf ppf "@[<v>";
  List.iter (fun (k, v) -> Format.fprintf ppf "%s = %d@," k v) items;
  Format.fprintf ppf "@]"
