module Simtime = Rvi_sim.Simtime

type outcome =
  | Measured
  | Exceeds_memory
  | Degraded of string
  | Failed of string

type row = {
  app : string;
  version : string;
  input_bytes : int;
  outcome : outcome;
  total : Simtime.t;
  hw : Simtime.t;
  sw_dp : Simtime.t;
  sw_imu : Simtime.t;
  sw_app : Simtime.t;
  sw_os : Simtime.t;
  faults : int;
  evictions : int;
  writebacks : int;
  tlb_refill_faults : int;
  prefetched : int;
  accesses : int;
  fault_p95_us : float;
  fault_p99_us : float;
  retries : int;
  verified : bool;
}

let ok r = r.outcome = Measured && r.verified

let speedup ~baseline r =
  match (baseline.outcome, r.outcome) with
  | Measured, Measured ->
    let b = Simtime.to_ms baseline.total and x = Simtime.to_ms r.total in
    if x > 0.0 then Some (b /. x) else None
  | _ -> None

let size_label bytes =
  (* Non-KiB-aligned sizes used to fall through to bytes ("1536B"); render
     them as fractional KB instead, trimming a trailing ".0". *)
  if bytes >= 1024 then
    if bytes mod 1024 = 0 then Printf.sprintf "%dKB" (bytes / 1024)
    else
      let kb = float_of_int bytes /. 1024.0 in
      let s = Printf.sprintf "%.2f" kb in
      let s =
        let n = String.length s in
        if String.ends_with ~suffix:"0" s then String.sub s 0 (n - 1) else s
      in
      s ^ "KB"
  else Printf.sprintf "%dB" bytes

let ms t = Simtime.to_ms t

let print_table ?title ppf rows =
  (match title with Some s -> Format.fprintf ppf "%s@." s | None -> ());
  Format.fprintf ppf
    "%-14s %-8s %-7s %10s %9s %9s %9s %7s %8s %8s %6s %6s %5s  %s@." "app"
    "version" "input" "total(ms)" "HW(ms)" "SWdp(ms)" "SWimu(ms)" "faults"
    "p95(us)" "p99(us)" "evict" "wback" "acc/k" "ok";
  List.iter
    (fun r ->
      match r.outcome with
      | Measured ->
        Format.fprintf ppf
          "%-14s %-8s %-7s %10.3f %9.3f %9.3f %9.3f %7d %8.2f %8.2f %6d %6d %5d  %s@."
          r.app r.version (size_label r.input_bytes) (ms r.total) (ms r.hw)
          (ms r.sw_dp) (ms r.sw_imu) r.faults r.fault_p95_us r.fault_p99_us
          r.evictions r.writebacks
          (r.accesses / 1000)
          (if r.verified then "yes" else "NO")
      | Exceeds_memory ->
        Format.fprintf ppf "%-14s %-8s %-7s %10s  exceeds available memory@."
          r.app r.version (size_label r.input_bytes) "-"
      | Degraded reason ->
        Format.fprintf ppf
          "%-14s %-8s %-7s %10s  degraded to software (%s): %s@." r.app
          r.version (size_label r.input_bytes) "-" reason
          (if r.verified then "output ok" else "OUTPUT BAD")
      | Failed msg ->
        Format.fprintf ppf "%-14s %-8s %-7s %10s  FAILED: %s@." r.app r.version
          (size_label r.input_bytes) "-" msg)
    rows

(* Stacked bar: '#' hardware, '=' SW(DP), '%' SW(IMU), '.' app software,
   '-' residual OS. *)
let bar_chart ?(width = 52) ~title ~baseline_version ppf rows =
  Format.fprintf ppf "%s@." title;
  Format.fprintf ppf "  [#] HW   [=] SW(DP)   [%%] SW(IMU)   [.] SW(app)   [-] SW(OS)@.";
  let max_ms =
    List.fold_left
      (fun acc r ->
        match r.outcome with Measured -> Float.max acc (ms r.total) | _ -> acc)
      0.0 rows
  in
  let scale v = if max_ms <= 0.0 then 0 else int_of_float (v /. max_ms *. float_of_int width) in
  let baseline_for r =
    List.find_opt
      (fun b ->
        b.version = baseline_version
        && b.input_bytes = r.input_bytes
        && b.app = r.app)
      rows
  in
  List.iter
    (fun r ->
      let label = Printf.sprintf "%-5s %-7s" (size_label r.input_bytes) r.version in
      match r.outcome with
      | Measured ->
        let segments =
          [
            ('.', ms r.sw_app);
            ('#', ms r.hw);
            ('=', ms r.sw_dp);
            ('%', ms r.sw_imu);
            ('-', ms r.sw_os);
          ]
        in
        let bar = Buffer.create width in
        List.iter
          (fun (c, v) -> Buffer.add_string bar (String.make (scale v) c))
          segments;
        let annot =
          if r.version = baseline_version then ""
          else
            match baseline_for r with
            | Some b -> (
              match speedup ~baseline:b r with
              | Some s -> Printf.sprintf "  %.1fx" s
              | None -> "")
            | None -> ""
        in
        Format.fprintf ppf "  %s |%s| %.2fms%s@." label (Buffer.contents bar)
          (ms r.total) annot
      | Exceeds_memory ->
        Format.fprintf ppf "  %s |%s@." label "exceeds available memory"
      | Degraded reason ->
        Format.fprintf ppf "  %s |degraded to software: %s@." label reason
      | Failed msg -> Format.fprintf ppf "  %s |FAILED: %s@." label msg)
    rows

let csv rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "app,version,input_bytes,outcome,total_ms,hw_ms,sw_dp_ms,sw_imu_ms,sw_app_ms,sw_os_ms,faults,fault_p95_us,fault_p99_us,evictions,writebacks,tlb_refill_faults,prefetched,accesses,retries,verified\n";
  List.iter
    (fun r ->
      let outcome =
        match r.outcome with
        | Measured -> "measured"
        | Exceeds_memory -> "exceeds_memory"
        | Degraded reason -> Printf.sprintf "degraded(%s)" reason
        | Failed m -> Printf.sprintf "failed(%s)" m
      in
      Buffer.add_string buf
        (Printf.sprintf
           "%s,%s,%d,%s,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%d,%.3f,%.3f,%d,%d,%d,%d,%d,%d,%b\n"
           r.app r.version r.input_bytes outcome (ms r.total) (ms r.hw)
           (ms r.sw_dp) (ms r.sw_imu) (ms r.sw_app) (ms r.sw_os) r.faults
           r.fault_p95_us r.fault_p99_us r.evictions r.writebacks
           r.tlb_refill_faults r.prefetched r.accesses r.retries r.verified))
    rows;
  Buffer.contents buf

(* Hand-rolled JSON (no external dependency): only the shapes we emit. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json rows =
  let row_json r =
    let outcome =
      match r.outcome with
      | Measured -> "measured"
      | Exceeds_memory -> "exceeds_memory"
      | Degraded reason -> "degraded: " ^ reason
      | Failed m -> "failed: " ^ m
    in
    Printf.sprintf
      {|{"app":"%s","version":"%s","input_bytes":%d,"outcome":"%s","total_ms":%.6f,"hw_ms":%.6f,"sw_dp_ms":%.6f,"sw_imu_ms":%.6f,"sw_app_ms":%.6f,"sw_os_ms":%.6f,"faults":%d,"fault_p95_us":%.3f,"fault_p99_us":%.3f,"evictions":%d,"writebacks":%d,"tlb_refill_faults":%d,"prefetched":%d,"accesses":%d,"retries":%d,"verified":%b}|}
      (json_escape r.app) (json_escape r.version) r.input_bytes
      (json_escape outcome) (ms r.total) (ms r.hw) (ms r.sw_dp) (ms r.sw_imu)
      (ms r.sw_app) (ms r.sw_os) r.faults r.fault_p95_us r.fault_p99_us
      r.evictions r.writebacks r.tlb_refill_faults r.prefetched r.accesses
      r.retries r.verified
  in
  "[\n  " ^ String.concat ",\n  " (List.map row_json rows) ^ "\n]\n"
