(** System assembly and measurement runs.

    One function per (application, version) pair; each run builds a fresh
    simulated platform from a {!Config.t}, executes the workload through
    the full stack (syscalls, VIM, IMU, coprocessor) or the corresponding
    baseline, verifies the output against the software reference
    bit-for-bit, and returns a {!Report.row}. *)

(** {1 Generic builders (used by the experiments and the tests)} *)

type vobject = {
  id : int;
  dir : Rvi_core.Mapped_object.direction;
  stream : bool;
  init : Bytes.t option;  (** initial contents for In/Inout objects *)
  size : int;
}

val run_virtual :
  ?pool:Platform.Pool.t ->
  ?inspect:(Platform.t -> unit) ->
  ?fallback:(unit -> (int * Bytes.t) list) ->
  Config.t ->
  app:string ->
  bitstream:Rvi_fpga.Bitstream.t ->
  make:(Rvi_core.Cp_port.t -> Rvi_coproc.Vport.t * Rvi_coproc.Coproc.t) ->
  objects:vobject list ->
  params:int list ->
  input_bytes:int ->
  verify:((int -> Bytes.t) -> bool) ->
  Report.row
(** Full VIM-based run. [verify] receives an accessor from object id to
    final user-space contents.

    When the configuration carries an injector, a transient hardware error
    (or a clean exit with a bad output) is retried up to
    [Config.exec_retries] whole executions; exhaustion invokes [fallback]
    — the software reference, returning the bytes to write per output
    object — and the row degrades to a verified [Report.Degraded]. Without
    a [fallback] the exhausted run fails.

    With [pool] the platform is borrowed from (and returned to) a
    {!Platform.Pool} under the application name instead of being built
    per call — byte-identical results, a fraction of the host cost.

    [inspect] runs against the live platform after the run completes (and
    before it is returned to the pool): the chaos harness uses it to run
    the VIM consistency checker and read recovery statistics. *)

(** Host wall-clock spent in the virtual runs, split into setup (platform
    acquisition, buffers, load, map), execute (the FPGA_EXECUTE attempt
    loop) and report (stats reads, fallback, row assembly). Accumulates
    across calls until {!Phases.reset}; the campaign benchmark reads it to
    attribute serial time. *)
module Phases : sig
  val reset : unit -> unit

  val totals : unit -> float * float * float
  (** [(setup, execute, report)] in seconds. *)
end

val run_normal :
  Config.t ->
  app:string ->
  clock_hz:int ->
  coproc_divide:int ->
  make:(Rvi_coproc.Dport.t -> Rvi_coproc.Coproc.t) ->
  objects:vobject list ->
  params:int list ->
  input_bytes:int ->
  verify:((int -> Bytes.t) -> bool) ->
  Report.row
(** Normal-coprocessor run (manual placement, no OS support). Produces an
    [Exceeds_memory] outcome when the working set does not fit. *)

val run_sw :
  Config.t ->
  app:string ->
  input_bytes:int ->
  cycles:int ->
  work:(unit -> bool) ->
  Report.row
(** Pure-software run: executes [work] (the reference computation,
    returning the verification result) and charges [cycles] of CPU time. *)

(** {1 The paper's applications} *)

val adpcm_sw : Config.t -> input:Bytes.t -> Report.row
val adpcm_vim :
  ?pool:Platform.Pool.t ->
  ?inspect:(Platform.t -> unit) ->
  Config.t ->
  input:Bytes.t ->
  Report.row
val adpcm_normal : Config.t -> input:Bytes.t -> Report.row

val idea_sw : Config.t -> key:int array -> input:Bytes.t -> Report.row
val idea_vim :
  ?pool:Platform.Pool.t ->
  ?inspect:(Platform.t -> unit) ->
  ?decrypt:bool ->
  Config.t ->
  key:int array ->
  input:Bytes.t ->
  Report.row
val idea_normal :
  ?decrypt:bool -> Config.t -> key:int array -> input:Bytes.t -> Report.row

val vecadd_sw : Config.t -> a:int array -> b:int array -> Report.row
val vecadd_vim :
  ?pool:Platform.Pool.t ->
  ?inspect:(Platform.t -> unit) ->
  Config.t ->
  a:int array ->
  b:int array ->
  Report.row

val fir_sw :
  Config.t -> coeffs:int array -> shift:int -> input:Bytes.t -> Report.row

val fir_vim :
  ?pool:Platform.Pool.t ->
  ?inspect:(Platform.t -> unit) ->
  Config.t ->
  coeffs:int array ->
  shift:int ->
  input:Bytes.t ->
  Report.row

val fir_normal :
  Config.t -> coeffs:int array -> shift:int -> input:Bytes.t -> Report.row

val idea_cbc_vim :
  ?pool:Platform.Pool.t ->
  ?inspect:(Platform.t -> unit) ->
  Config.t ->
  mode:Rvi_coproc.Idea_coproc.mode ->
  key:int array ->
  iv:int array ->
  input:Bytes.t ->
  Report.row
(** IDEA under an explicit block-cipher mode (the CBC extension); the row's
    version is tagged with the mode name. *)
