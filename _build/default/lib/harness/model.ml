module Device = Rvi_fpga.Device

type prediction = {
  hw_ms : float;
  dp_compulsory_ms : float;
  compulsory_pages : int;
}

(* Issue-to-consume cycles for a blocking virtual access, coprocessor and
   IMU on one clock. The request pulse leaves on the issue edge; the IMU
   latches it one edge later, searches for [lookup_states] edges, performs
   the access on the next edge, and the synchroniser hands the response to
   the coprocessor on the edge after that. With a zero-cycle search the
   latch edge performs the access itself. *)
let access_round_trip cfg =
  let l = (Config.imu_config cfg).Rvi_core.Imu.lookup_states in
  if l = 0 then 2 else l + 3

(* The same access seen from a coprocessor on a divided clock: the IMU
   pipeline (pulse, latch, search, access, synchroniser) runs at the fast
   clock, and the coprocessor consumes on its next own edge. *)
let access_round_trip_divided cfg ~divide =
  let imu_cycles = access_round_trip cfg in
  (imu_cycles + divide - 1) / divide

let ms_of_cycles ~hz cycles = float_of_int cycles /. float_of_int hz *. 1e3

(* Compulsory page movement: every input page in once, every output page
   back once, each a distinct kernel transfer. *)
let dp_compulsory cfg ~in_bytes ~out_bytes =
  let device = cfg.Config.device in
  let geom = Device.geometry device in
  let page = geom.Rvi_mem.Page.page_size in
  let factor =
    match (cfg.Config.copy_engine, cfg.Config.transfer) with
    | Rvi_core.Vim.Dma_engine _, _ -> 1
    | Rvi_core.Vim.Cpu, Rvi_core.Vim.Single -> 1
    | Rvi_core.Vim.Cpu, Rvi_core.Vim.Double -> 2
  in
  let pages len = (len + page - 1) / page in
  let per_direction len =
    let full = len / page and tail = len mod page in
    let cycles =
      (full * Rvi_mem.Ahb.copy_cycles device.Device.ahb ~bytes:page)
      + if tail > 0 then Rvi_mem.Ahb.copy_cycles device.Device.ahb ~bytes:tail else 0
    in
    factor * cycles
  in
  let cycles = per_direction in_bytes + per_direction out_bytes in
  ( ms_of_cycles ~hz:device.Device.cpu_freq_hz cycles,
    pages in_bytes + pages out_bytes )

let adpcm_vim cfg ~input_bytes =
  let acc = access_round_trip cfg in
  (* Per compressed byte: one byte fetch plus two decoded samples, each a
     serial decode of [decode_cycles] (the write issue is the last decode
     cycle) and a blocking 16-bit store. *)
  let per_byte = (3 * acc) + (2 * Rvi_coproc.Adpcm_coproc.decode_cycles) in
  let hw_cycles = input_bytes * per_byte in
  let dp_compulsory_ms, compulsory_pages =
    dp_compulsory cfg ~in_bytes:input_bytes
      ~out_bytes:(Rvi_coproc.Adpcm_ref.decoded_size input_bytes)
  in
  {
    hw_ms = ms_of_cycles ~hz:Calibration.adpcm_clock_hz hw_cycles;
    dp_compulsory_ms;
    compulsory_pages;
  }

let idea_vim cfg ~input_bytes =
  let divide = Calibration.idea_divide in
  let acc = access_round_trip_divided cfg ~divide in
  (* Steady-state initiation interval: one stage latency, plus the two
     fetch accesses serialised on the single port (the retire accesses of
     the previous block overlap the stages), plus one insert cycle. *)
  let ii = Rvi_coproc.Idea_coproc.stage_cycles + (2 * acc) + 1 in
  let n_blocks = input_bytes / 8 in
  let hw_cycles = n_blocks * ii in
  let dp_compulsory_ms, compulsory_pages =
    dp_compulsory cfg ~in_bytes:input_bytes ~out_bytes:input_bytes
  in
  {
    hw_ms =
      ms_of_cycles ~hz:(Calibration.idea_imu_clock_hz / divide) hw_cycles;
    dp_compulsory_ms;
    compulsory_pages;
  }

let fir_vim cfg ~taps ~input_bytes =
  let acc = access_round_trip cfg in
  (* Per output: one sample fetch, [taps] MAC cycles (the write issues on
     the last one), one blocking 16-bit store, one slide cycle. *)
  let per_output = (2 * acc) + (taps * Rvi_coproc.Fir_coproc.mac_cycles_per_tap) + 2 in
  let n_out = (input_bytes / 2) - taps + 1 in
  let hw_cycles = n_out * per_output in
  let dp_compulsory_ms, compulsory_pages =
    dp_compulsory cfg ~in_bytes:(input_bytes + (2 * taps))
      ~out_bytes:(Rvi_coproc.Fir_ref.output_bytes ~taps input_bytes)
  in
  {
    hw_ms = ms_of_cycles ~hz:Calibration.adpcm_clock_hz hw_cycles;
    dp_compulsory_ms;
    compulsory_pages;
  }

let pp ppf p =
  Format.fprintf ppf
    "predicted HW %.3f ms, compulsory DP %.3f ms over %d pages" p.hw_ms
    p.dp_compulsory_ms p.compulsory_pages
