(* The serve campaign: one cell per (policy, translation mode), each an
   independent seeded simulation, fanned out over the persistent domain
   pool. Cells share nothing mutable, so the result list — and the
   per-request classification digest — is a pure function of the cell
   list, never of [--jobs]. *)

module Simtime = Rvi_sim.Simtime
module Config = Rvi_harness.Config
module Jobs = Rvi_harness.Jobs
module Translation_mode = Rvi_core.Translation_mode
module Par = Rvi_par.Par

type cell = {
  cl_policy : Sched_policy.t;
  cl_translation : Translation_mode.t;
  cl_seed : int;
  cl_tenants : int;
  cl_requests : int;
  cl_rate_hz : int;  (* 0 = closed loop *)
  cl_quantum_us : int;
  cl_bytes : int;
}

type cell_result = {
  cr_cell : cell;
  cr_report : Slo.report;
  cr_outcome : Service.outcome;
  cr_csv : string;
  cr_digest : string;
  cr_wall_s : float;
}

let cell_label c =
  Printf.sprintf "%s/%s"
    (Sched_policy.name c.cl_policy)
    (Translation_mode.name c.cl_translation)

let csv_header = "policy,mode,rid,tenant,kind,status,preemptions,retries,latency_us\n"

let run_cell (c : cell) =
  let t0 = Unix.gettimeofday () in
  let cfg =
    { (Config.default ()) with
      Config.translation = c.cl_translation;
      seed = c.cl_seed }
  in
  let lg =
    Loadgen.create ~seed:c.cl_seed ~tenants:c.cl_tenants
      ~requests:c.cl_requests ~rate_hz:c.cl_rate_hz ~bytes:c.cl_bytes ()
  in
  let tenants = Loadgen.tenants lg in
  let params =
    { (Service.default_params c.cl_policy) with
      Service.sp_quantum = Simtime.of_us c.cl_quantum_us;
      (* closed-loop rotation over many tenants is slow but fair; scale
         the starvation budget with the fleet so it only fires on a
         tenant that is actually stuck while others advance *)
      sp_starvation_budget = Simtime.of_ms (2_000 + (10 * c.cl_tenants)) }
  in
  let svc = Service.create cfg params ~tenants in
  let buf = Buffer.create 4096 in
  let policy_name = Sched_policy.name c.cl_policy in
  let mode_name = Translation_mode.name c.cl_translation in
  let base = Loadgen.feed lg in
  let feed =
    { base with
      Service.f_notify =
        (fun (comp : Tenant.completion) ~now ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%s,%d,%d,%s,%s,%d,%d,%d\n" policy_name
               mode_name comp.Tenant.c_rid comp.Tenant.c_tenant
               (Jobs.app_name comp.Tenant.c_kind)
               (Tenant.status_name comp.Tenant.c_status)
               comp.Tenant.c_preemptions comp.Tenant.c_retries
               (Tenant.latency_us comp));
          base.Service.f_notify comp ~now) }
  in
  let outcome = Service.run svc feed ~expect:c.cl_requests in
  let csv = Buffer.contents buf in
  {
    cr_cell = c;
    cr_report = Slo.build ~tenants ~outcome;
    cr_outcome = outcome;
    cr_csv = csv;
    cr_digest = Digest.to_hex (Digest.string csv);
    cr_wall_s = Unix.gettimeofday () -. t0;
  }

let cells ~policies ~translations ~seed ~tenants ~requests ~rate_hz ~quantum_us
    ~bytes =
  List.concat_map
    (fun p ->
      List.map
        (fun tr ->
          {
            cl_policy = p;
            cl_translation = tr;
            cl_seed = seed;
            cl_tenants = tenants;
            cl_requests = requests;
            cl_rate_hz = rate_hz;
            cl_quantum_us = quantum_us;
            cl_bytes = bytes;
          })
        translations)
    policies

let campaign ?(jobs = 1) cs =
  if jobs <= 1 then List.map run_cell cs
  else Par.Pool.map (Par.Pool.shared ~domains:jobs) ~chunk:1 run_cell cs

let digest results = String.concat "+" (List.map (fun r -> r.cr_digest) results)

let violations r =
  let report = r.cr_report in
  List.concat
    [
      List.map
        (fun id -> Printf.sprintf "%s: tenant %d starved" (cell_label r.cr_cell) id)
        report.Slo.r_starved;
      List.map
        (fun m -> Printf.sprintf "%s: %s" (cell_label r.cr_cell) m)
        r.cr_outcome.Service.o_inconsistencies;
      (if report.Slo.r_sane then []
       else [ Printf.sprintf "%s: insane SLO report (p99 < p50)" (cell_label r.cr_cell) ]);
      (if r.cr_outcome.Service.o_exhausted then
         [ Printf.sprintf "%s: dispatch budget exhausted" (cell_label r.cr_cell) ]
       else []);
    ]
