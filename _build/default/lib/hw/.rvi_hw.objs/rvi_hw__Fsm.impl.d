lib/hw/fsm.ml: Reg
