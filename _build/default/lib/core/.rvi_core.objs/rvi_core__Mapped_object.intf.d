lib/core/mapped_object.mli: Format Rvi_mem Rvi_os
