type buf = { addr : int; size : int }

let alloc k size =
  let addr = Rvi_mem.Sdram.alloc (Kernel.sdram k) ~align:4 size in
  { addr; size }

let of_bytes k b =
  let buf = alloc k (Bytes.length b) in
  Rvi_mem.Sdram.write_bytes (Kernel.sdram k) buf.addr b;
  buf

let write k buf b =
  if Bytes.length b <> buf.size then invalid_arg "Uspace.write: size mismatch";
  Rvi_mem.Sdram.write_bytes (Kernel.sdram k) buf.addr b

let read k buf = Rvi_mem.Sdram.read_bytes (Kernel.sdram k) buf.addr ~len:buf.size

let read_into k buf b ~dst =
  Rvi_mem.Sdram.read_into (Kernel.sdram k) buf.addr b ~dst ~len:buf.size

let sub buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > buf.size then
    invalid_arg "Uspace.sub: slice out of bounds";
  { addr = buf.addr + pos; size = len }

let va_pages k ~page_size =
  if page_size <= 0 then invalid_arg "Uspace.va_pages: page size must be positive";
  Rvi_mem.Sdram.size (Kernel.sdram k) / page_size

let view k ~addr ~size =
  if addr < 0 || size < 0 || addr + size > Rvi_mem.Sdram.size (Kernel.sdram k)
  then invalid_arg "Uspace.view: range outside SDRAM";
  { addr; size }
