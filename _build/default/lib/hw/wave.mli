(** Waveform capture and rendering.

    Records the value of named signals on every clock edge and renders them
    as an ASCII timing diagram (used to regenerate the paper's Figure 7) or
    as a VCD dump loadable in GTKWave. *)

type t

val create : unit -> t

val add_signal : t -> name:string -> width:int -> (unit -> int) -> unit
(** Registers a probe. The sampling function is called once per {!sample};
    its result is truncated to [width] bits. Must be called before the
    first sample. *)

val sample : t -> unit
(** Records one column (one clock cycle) for every signal. *)

val attach : t -> Rvi_sim.Clock.t -> unit
(** Samples automatically after each edge of the clock. *)

val length : t -> int
(** Number of columns recorded. *)

val values : t -> string -> int array
(** The recorded samples of one signal. Raises [Not_found] for an unknown
    name. *)

val render_ascii : ?from_cycle:int -> ?cycles:int -> t -> string
(** A timing diagram: one line per signal, 1-bit signals drawn with
    [_/¯\\], wider signals with their hexadecimal values at each change. *)

val to_vcd : ?timescale_ps:int -> t -> string
(** A Value Change Dump of the whole capture. [timescale_ps] is the time
    per column (default 1000, i.e. 1 ns). *)
