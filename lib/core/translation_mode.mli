(** How coprocessor virtual addresses reach dual-port-RAM frames.

    The knob threaded through {!Api}, {!Vim}, {!Imu} and the harness
    configuration. *)

type t =
  | Paper_objects
      (** The paper's interface: [FPGA_MAP_OBJECT] declares (object,
          buffer) pairs, the IMU TLB is keyed by (object id, object-local
          page) and the VIM refills it on faults. The byte-identical
          baseline. *)
  | Iommu_sva
      (** Shared virtual addressing: the coprocessor's [CP_OBJ]/[CP_ADDR]
          pair is rebased to a {e process} virtual address through a
          per-object window register, translated by a two-level TLB
          hierarchy (per-coprocessor L1 CAM backed by a shared L2) and,
          on a double miss, a cycle-costed hardware walker over the
          process's software page table. [FPGA_MAP_OBJECT] degenerates to
          programming the window register — no kernel object
          bookkeeping. *)

val name : t -> string
(** ["paper-objects"] / ["iommu-sva"]. *)

val of_name : string -> t option
(** Accepts the canonical names plus the ["paper"] / ["sva"] / ["iommu"]
    shorthands. *)

val all : t list
