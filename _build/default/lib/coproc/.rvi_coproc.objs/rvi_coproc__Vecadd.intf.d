lib/coproc/vecadd.mli: Coproc Mem_port Rvi_core Vport
