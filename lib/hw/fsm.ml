type 'a t = {
  fsm_name : string;
  reg : 'a Reg.t;
  show_fn : 'a -> string;
  mutable transitions : int;
}

let create ~name ~init ~show =
  { fsm_name = name; reg = Reg.create init; show_fn = show; transitions = 0 }

let[@inline] state t = Reg.get t.reg
let[@inline] goto t s = Reg.set t.reg s
let[@inline] stay t = Reg.set t.reg (Reg.get t.reg)

let commit t =
  let before = Reg.get t.reg in
  Reg.commit t.reg;
  let after = Reg.get t.reg in
  (* physical check first: [stay] commits (the per-cycle common case) keep
     the same boxed state, so they never pay a structural compare *)
  if after != before && after <> before then
    t.transitions <- t.transitions + 1

(* Idle fast-forward support: land the machine directly in the state it
   would have reached after [transitions] skipped commits, counting those
   commits' activity. Both register views are set — the skipped window ends
   outside any compute/commit pair. *)
let fast_forward t ~transitions s =
  if transitions < 0 then invalid_arg "Fsm.fast_forward: negative transitions";
  Reg.reset t.reg s;
  t.transitions <- t.transitions + transitions

let reset t s = Reg.reset t.reg s
let name t = t.fsm_name
let show t = t.show_fn (Reg.get t.reg)
let transitions t = t.transitions
