(** The Interface Management Unit (paper §3.2, Figures 4 and 7).

    A clocked state machine between the coprocessor's virtual-address port
    and the dual-port RAM. Every coprocessor access runs through it:

    + the request is latched from the port ([CP_ACCESS]);
    + the TLB CAM is searched — due to the technology limitations the
      paper describes, the search takes multiple cycles
      ([config.lookup_states], 2 in the shipped design);
    + on a hit the physical dual-port-RAM access is performed and
      [CP_TLBHIT] is pulsed — data is ready on the {e fourth} rising edge
      after the request, reproducing Figure 7;
    + on a miss the coprocessor is stalled, [AR]/[SR] are set and the OS is
      interrupted; after the VIM refills the TLB and writes the resume bit,
      translation restarts.

    Accesses to the reserved parameter object are translated directly to
    the parameter-passing page without touching the TLB; the first
    non-parameter access marks the parameters consumed so the OS can
    recycle that page. *)

type config = {
  lookup_states : int;  (** CAM search cycles before the access cycle *)
  tlb_entries : int;
  tlb_organization : Tlb.organization;
      (** the paper's TLB is a full CAM; cheaper organisations trade
          conflict refill faults for area (ablation [abl-tlb-org]) *)
  translation : Translation_mode.t;
      (** object-keyed translation (the paper) or shared virtual
          addressing through the two-level hierarchy *)
  l2_entries : int;  (** shared L2 TLB size (SVA mode only) *)
  l2_hit_cycles : int;
      (** extra search cycles when an L1 miss hits the shared L2 *)
  walker : Walker.config;  (** page-table walker cost model (SVA mode) *)
}

val default_config : config
(** [lookup_states = 2] (the 4-cycle access of Figure 7), [tlb_entries = 8],
    [Paper_objects] translation; SVA parameters [l2_entries = 64],
    [l2_hit_cycles = 2], 12 walker cycles per level. *)

val pipelined_config : config
(** The paper's announced pipelined IMU: translation overlapped with the
    access, [lookup_states = 0] (2-cycle access). *)

val sva_asid : int
(** The tag every SVA-mode TLB entry carries (one address space per
    execution); exposed for tests poking the TLBs directly. *)

type t

val create :
  ?config:config ->
  ?l2:Tlb.t ->
  port:Cp_port.t ->
  dpram:Rvi_mem.Dpram.t ->
  raise_irq:(unit -> unit) ->
  unit ->
  t
(** [l2] shares a second-level TLB between coprocessors (multi-design
    SVA setups); by default an SVA-mode IMU builds a private one of
    [config.l2_entries] entries. Ignored in [Paper_objects] mode. *)

val component : t -> Rvi_sim.Clock.component
(** Register this on the IMU/memory-subsystem clock. *)

(** {2 Direct edge interface}

    The four functions {!component} wraps, exposed so a fused slot (the
    platform's divide-1 configuration collapses IMU, bus wrapper and
    coprocessor into one component) can call them without going through
    a per-layer closure on every edge. Same contract as the
    corresponding {!Rvi_sim.Clock.component} fields. *)

val compute : t -> unit
val commit : t -> unit
val idle_hint : t -> int
val skip : t -> int -> unit

val config : t -> config
val tlb : t -> Tlb.t
val port : t -> Cp_port.t

(** {1 SVA translation (IOMMU mode)} *)

val l2 : t -> Tlb.t option
(** The shared second-level TLB, present iff the IMU was created in
    [Iommu_sva] mode. *)

val walker : t -> Walker.t option
(** The hardware page-table walker ([Iommu_sva] mode only); its stats
    carry the walk-count and walk-latency distribution. *)

val set_sva_window : t -> obj:int -> base:int -> unit
(** Programs the window register rebasing object [obj]'s accesses to the
    process virtual address [base] — the whole [FPGA_MAP_OBJECT] shim in
    SVA mode. *)

val sva_window : t -> obj:int -> int option

val set_page_table : t -> Rvi_os.Page_table.t option -> unit
(** Binds the executing process's page table to the walker (the IOMMU's
    context-table entry). The VIM sets it at [FPGA_EXECUTE]. *)

val page_table : t -> Rvi_os.Page_table.t option

val sva_invalidate : t -> vpn:int -> unit
(** Drops a page's translation from both TLB levels, folding any dirty
    bit into the PTE so write-back state survives; the VIM calls this
    when evicting the page's frame. *)

(** {1 Register interface (driven by the VIM over the bus)} *)

val read_ar : t -> int
val read_sr : t -> int

val write_cr : t -> int -> unit
(** Start / resume / reset strobes; see {!Imu_regs}. Reset clears the FSM,
    the fault and fin flags and the parameter state, but not the TLB (the
    OS owns TLB contents). *)

val set_param_page : t -> int option -> unit
(** Physical page backing the parameter object, or [None] when parameter
    accesses must fail. *)

val fault : t -> (int * int) option
(** [(obj_id, vpn)] of the pending fault, if stalled. *)

val params_done : t -> bool
val finished : t -> bool
(** The coprocessor has asserted [CP_FIN]. *)

val cycle : t -> int
(** IMU clock cycles elapsed (the hardware stamp used by the TLB). *)

val reset : t -> unit
(** Full power-on reset for platform pooling: everything a
    [CR reset] scrubs, plus the cycle counter, TLB image, parameter page
    and stats (zeroed in place, handles kept) and the injector binding.
    Call after the CP port has been reset so the FIN edge latch starts
    from the quiescent level. *)

(** {1 Context save/restore (tenant preemption)} *)

type context
(** Everything the hardware holds in flip-flops for the executing
    tenant: FSM state, the latched request, per-run flags, both TLB
    images, the SVA window registers and page-table binding, and the
    CP-port signal levels. Platform bindings (injector, trace probe,
    stats) are excluded. *)

val save_context : t -> context
(** Snapshot with the station clock stopped (both FSM register views in
    agreement); the IMU is unchanged. *)

val restore_context : t -> context -> unit
(** Reinstates the snapshot exactly — including the shared CP-port
    levels — so a preempted tenant resumes as if never interrupted. *)

(** {1 Access tracing} *)

type access_event = {
  at_cycle : int;
  obj_id : int;
  vpn : int;
  offset : int;
  wr : bool;
  tlb_hit : bool;  (** state of the TLB when the access was latched *)
}

val set_trace : t -> (access_event -> unit) option -> unit
(** Installs (or removes) a probe called once per latched data access —
    parameter-page reads excluded. Used by the miss-ratio-curve analysis
    ({!Rvi_harness.Mrc}) and by debugging tools; no simulation behaviour
    depends on it. *)

val stats : t -> Rvi_sim.Stats.t
(** ["accesses"], ["reads"], ["writes"], ["param_reads"], ["faults"],
    ["stall_cycles"], ["busy_cycles"], ["hangs"], ["hang_cycles"],
    ["wrong_results"]; under SVA injection additionally ["ptw_errors"],
    ["l2_corruptions"] and ["walker_hangs"]. *)

(** {1 Fault injection} *)

val set_injector : t -> Rvi_inject.Injector.t option -> unit
(** With an injector attached, each latched access is a
    {!Rvi_inject.Fault.Coproc_hang} opportunity (the IMU wedges: no
    completion, no fault, no fin — only {!write_cr} reset clears it) and
    each coprocessor store is a {!Rvi_inject.Fault.Coproc_wrong}
    opportunity (the stored value is silently corrupted). *)

val hung : t -> bool
(** Whether an injected hang is currently wedging the IMU. *)
