lib/core/api.mli: Mapped_object Rvi_fpga Rvi_os Vim
