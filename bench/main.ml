(* Benchmark harness.

   Two parts:
   1. The paper reproduction: regenerates every figure of the evaluation
      (Figure 7 timing diagram, Figure 8 adpcmdecode, Figure 9 IDEA), the
      §4.1 overhead claims and the DESIGN.md ablations, printing the same
      rows/series the paper reports.
   2. Bechamel micro-benchmarks of the simulator itself (one Test.make per
      figure-generating workload plus the hot primitives), so simulator
      performance regressions are visible.

   Usage:  dune exec bench/main.exe              (everything)
           dune exec bench/main.exe -- fig8      (one experiment)
           dune exec bench/main.exe -- micro     (micro-benchmarks only)
           dune exec bench/main.exe -- campaign  (parallel campaign bench,
                                                  writes BENCH_campaign.json) *)

open Bechamel
open Toolkit

let cfg () = Rvi_harness.Config.default ()
let ppf = Format.std_formatter

(* Macro-benchmark of the sharded campaign runner: wall-clock and
   speedup of --jobs N over --jobs 1 on one seeded fault campaign,
   appended as a trajectory point to BENCH_campaign.json so the perf
   history has real before/after data. *)
let run_campaign () =
  let jobs = Rvi_par.Par.recommended_domains () in
  let r = Rvi_harness.Bench_campaign.run ~jobs () in
  print_endline "\n== Parallel campaign runner (wall-clock) ==";
  Rvi_harness.Bench_campaign.print ppf r;
  let path = Rvi_harness.Bench_campaign.append r in
  Printf.printf "appended trajectory point to %s\n" path

let experiments =
  [
    ("fig7", fun () -> ignore (Rvi_harness.Experiments.fig7 ppf ()));
    ( "fig7-pipelined",
      fun () -> ignore (Rvi_harness.Experiments.fig7 ~pipelined:true ppf ()) );
    ("fig8", fun () -> ignore (Rvi_harness.Experiments.fig8 ppf (cfg ())));
    ("fig9", fun () -> ignore (Rvi_harness.Experiments.fig9 ppf (cfg ())));
    ( "overheads",
      fun () -> ignore (Rvi_harness.Experiments.overheads ppf (cfg ())) );
    ( "ablations",
      fun () ->
        ignore (Rvi_harness.Experiments.ablation_policy ppf (cfg ()));
        ignore (Rvi_harness.Experiments.ablation_prefetch ppf (cfg ()));
        ignore (Rvi_harness.Experiments.ablation_pipelined_imu ppf (cfg ()));
        ignore (Rvi_harness.Experiments.ablation_transfer ppf (cfg ()));
        ignore (Rvi_harness.Experiments.ablation_tlb_size ppf (cfg ()));
        ignore (Rvi_harness.Experiments.ablation_chunked_normal ppf (cfg ()));
        ignore (Rvi_harness.Experiments.ablation_dma ppf (cfg ()));
        ignore (Rvi_harness.Experiments.ablation_overlap ppf (cfg ()));
        ignore (Rvi_harness.Experiments.ablation_tlb_org ppf (cfg ())) );
    ( "portability",
      fun () -> ignore (Rvi_harness.Experiments.portability ppf (cfg ())) );
    ("ext-fir", fun () -> ignore (Rvi_harness.Experiments.ext_fir ppf (cfg ())));
    ("ext-cbc", fun () -> ignore (Rvi_harness.Experiments.ext_cbc ppf (cfg ())));
    ( "miss-curve",
      fun () -> ignore (Rvi_harness.Experiments.miss_curve ppf (cfg ())) );
    ( "multiprog",
      fun () -> ignore (Rvi_harness.Experiments.multiprogramming ppf (cfg ())) );
    ( "sweeps",
      fun () ->
        ignore (Rvi_harness.Experiments.sweep_page_size ppf (cfg ()));
        ignore (Rvi_harness.Experiments.sweep_memory_size ppf (cfg ())) );
    ( "ext-oracle",
      fun () -> ignore (Rvi_harness.Experiments.ext_oracle ppf (cfg ())) );
    ( "ext-dual",
      fun () -> ignore (Rvi_harness.Experiments.ext_dual ppf (cfg ())) );
    ( "sensitivity",
      fun () -> ignore (Rvi_harness.Experiments.sensitivity ppf (cfg ())) );
    ("campaign", run_campaign);
  ]

(* {1 Micro-benchmarks} *)

let bench_event_queue =
  Test.make ~name:"event_queue/push+pop-256"
    (Staged.stage (fun () ->
         let q = Rvi_sim.Event_queue.create () in
         for i = 0 to 255 do
           Rvi_sim.Event_queue.push q
             ~time:(Rvi_sim.Simtime.of_ps ((i * 7919) mod 1000))
             i
         done;
         while not (Rvi_sim.Event_queue.is_empty q) do
           ignore (Rvi_sim.Event_queue.pop q)
         done))

let bench_tlb =
  let tlb = Rvi_core.Tlb.create ~entries:8 () in
  for s = 0 to 7 do
    Rvi_core.Tlb.insert tlb ~slot:s ~obj_id:(s mod 3) ~vpn:s ~ppn:s ~stamp:0
  done;
  Test.make ~name:"tlb/translate-hit"
    (Staged.stage (fun () ->
         ignore (Rvi_core.Tlb.translate tlb ~obj_id:1 ~vpn:4 ~stamp:0 ~wr:false)))

let bench_adpcm_ref =
  let input = Rvi_harness.Workload.adpcm_stream ~seed:1 ~bytes:1024 in
  Test.make ~name:"adpcm_ref/decode-1KB"
    (Staged.stage (fun () -> ignore (Rvi_coproc.Adpcm_ref.decode input)))

let bench_idea_ref =
  let key = Rvi_harness.Workload.idea_key ~seed:1 in
  let input = Rvi_harness.Workload.idea_plaintext ~seed:1 ~bytes:1024 in
  Test.make ~name:"idea_ref/ecb-1KB"
    (Staged.stage (fun () ->
         ignore (Rvi_coproc.Idea_ref.ecb ~key ~decrypt:false input)))

let bench_fir_ref =
  let coeffs = Rvi_coproc.Fir_ref.lowpass ~taps:16 ~cutoff:0.12 in
  let input = Rvi_harness.Workload.fir_signal ~seed:1 ~bytes:2048 in
  Test.make ~name:"fir_ref/filter-1K-samples"
    (Staged.stage (fun () ->
         ignore (Rvi_coproc.Fir_ref.filter_bytes ~coeffs ~shift:12 input)))

let bench_mrc =
  let prng = Rvi_sim.Prng.create ~seed:3 in
  let refs = Array.init 4096 (fun _ -> (0, Rvi_sim.Prng.int prng 24)) in
  Test.make ~name:"mrc/lru-stack-4096-refs"
    (Staged.stage (fun () ->
         ignore (Rvi_harness.Mrc.lru_misses refs ~max_frames:16)))

let bench_clock =
  Test.make ~name:"engine/clock-4096-edges"
    (Staged.stage (fun () ->
         let engine = Rvi_sim.Engine.create () in
         let clock = Rvi_sim.Clock.create engine ~name:"c" ~freq_hz:1_000_000 in
         Rvi_sim.Clock.add clock
           (Rvi_sim.Clock.component ~name:"nop" ~compute:ignore ~commit:ignore ());
         Rvi_sim.Clock.start clock;
         Rvi_sim.Engine.run_until engine (Rvi_sim.Simtime.of_us 4096)))

let bench_vecadd_vim =
  let a, b = Rvi_harness.Workload.vectors ~seed:1 ~n:64 in
  Test.make ~name:"full-stack/vecadd-vim-64"
    (Staged.stage (fun () ->
         ignore (Rvi_harness.Runner.vecadd_vim (cfg ()) ~a ~b)))

(* Same workload on a platform pool: the delta against the fresh variant
   is the construction cost the pool amortises away. *)
let bench_vecadd_vim_pooled =
  let a, b = Rvi_harness.Workload.vectors ~seed:1 ~n:64 in
  let pool = Rvi_harness.Platform.Pool.create () in
  let c = cfg () in
  Test.make ~name:"full-stack/vecadd-vim-64-pooled"
    (Staged.stage (fun () ->
         ignore (Rvi_harness.Runner.vecadd_vim ~pool c ~a ~b)))

let bench_adpcm_vim =
  let input = Rvi_harness.Workload.adpcm_stream ~seed:1 ~bytes:2048 in
  Test.make ~name:"full-stack/adpcm-vim-2KB (fig8 point)"
    (Staged.stage (fun () ->
         ignore (Rvi_harness.Runner.adpcm_vim (cfg ()) ~input)))

let bench_idea_vim =
  let key = Rvi_harness.Workload.idea_key ~seed:1 in
  let input = Rvi_harness.Workload.idea_plaintext ~seed:1 ~bytes:4096 in
  Test.make ~name:"full-stack/idea-vim-4KB (fig9 point)"
    (Staged.stage (fun () ->
         ignore (Rvi_harness.Runner.idea_vim (cfg ()) ~key ~input)))

let micro_tests =
  Test.make_grouped ~name:"rvi"
    [
      bench_event_queue;
      bench_tlb;
      bench_adpcm_ref;
      bench_idea_ref;
      bench_fir_ref;
      bench_mrc;
      bench_clock;
      bench_vecadd_vim;
      bench_vecadd_vim_pooled;
      bench_adpcm_vim;
      bench_idea_vim;
    ]

let run_micro () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ minor_allocated; monotonic_clock ] in
  let benchmark_cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 500) ()
  in
  let raw = Benchmark.all benchmark_cfg instances micro_tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let results = Analyze.merge ols instances results in
  List.iter
    (fun v -> Bechamel_notty.Unit.add v (Measure.unit v))
    Instance.[ minor_allocated; monotonic_clock ];
  let window =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  print_endline "\n== Simulator micro-benchmarks (Bechamel) ==";
  Bechamel_notty.Multiple.image_of_ols_results ~rect:window
    ~predictor:Measure.run results
  |> Notty_unix.eol |> Notty_unix.output_image

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] ->
    List.iter (fun (_, f) -> f ()) experiments;
    run_micro ()
  | [ "micro" ] -> run_micro ()
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name experiments with
        | Some f -> f ()
        | None when name = "micro" -> run_micro ()
        | None ->
          Printf.eprintf "unknown experiment %S; available: %s micro\n" name
            (String.concat " " (List.map fst experiments));
          exit 1)
      names
