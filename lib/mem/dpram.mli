(** Dual-port RAM.

    The on-chip memory reachable both by the PLD (directly) and by the
    processor (over the AHB). It is excluded from the processor's virtual
    memory map and managed by the OS as a small pool of pages — eight 2 KB
    pages on the EPXA1. One port is used by the coprocessor through the
    IMU; the other by the kernel when loading and flushing pages.

    The two ports never race in the modelled system (the paper notes the
    processor and coprocessor never access it at the same time), so a single
    storage array with two access interfaces is a faithful model. *)

type t

val create : Page.geometry -> t
val geometry : t -> Page.geometry
val size : t -> int
val n_pages : t -> int
val page_size : t -> int

(** {1 PLD-side port (used by the IMU)} *)

val read : t -> width:int -> int -> int
val write : t -> width:int -> int -> int -> unit

(** {1 Processor-side port (used by the kernel over the bus)} *)

val load_page : t -> page:int -> Bytes.t -> src:int -> len:int -> unit
(** Copies [len] bytes ([<= page_size]) from a user buffer into the page;
    the remainder of the page is zero-filled. *)

val store_page : t -> page:int -> Bytes.t -> dst:int -> len:int -> unit
(** Copies the first [len] bytes of the page out to a user buffer. *)

val load_page_from_ram : t -> page:int -> Ram.t -> src_pos:int -> len:int -> unit
(** As {!load_page}, but sourcing the bytes directly from another memory
    array (the SDRAM) — the page-granular blit the VIM copy engine uses,
    avoiding an intermediate buffer. Tail zero-fill, parity refresh and
    stats match {!load_page} exactly. *)

val store_page_to_ram : t -> page:int -> Ram.t -> dst_pos:int -> len:int -> unit
(** As {!store_page}, writing directly into another memory array. *)

val clear_page : t -> page:int -> unit

val cpu_read32 : t -> int -> int
val cpu_write32 : t -> int -> int -> unit
(** Word access from the processor side (register-style accesses used when
    the kernel seeds the parameter page). *)

val stats : t -> Rvi_sim.Stats.t
(** Port traffic counters: ["pld_reads"], ["pld_writes"], ["cpu_words"],
    ["pages_loaded"], ["pages_stored"], ["bit_flips"], plus the parity
    checker's cost model: ["parity_page_checks"] (calls to
    {!parity_error}) and ["parity_scan_steps"] (indexed probes performed
    across all checks — exactly one per check now that corruption is
    indexed by page, independent of other pages' corruption). *)

(** {1 Fault injection} *)

val set_injector : t -> Rvi_inject.Injector.t option -> unit
(** With an injector attached, each PLD-side {!write} is a
    {!Rvi_inject.Fault.Dpram_flip} opportunity: a random bit of the
    just-written cell flips and the cell's parity goes stale. Loading,
    clearing or overwriting a corrupted location refreshes its parity. *)

val reset : t -> unit
(** Restores the power-on image: all-zero array, no latent corruption,
    counters zeroed in place (pre-resolved handles stay attached), injector
    detached. Used by the platform pool. *)

val parity_error : t -> page:int -> bool
(** Whether any location in the page still holds an undetected bit flip —
    the kernel's parity sweep when it flushes a page. O(1): corruption is
    indexed per page, so a check on page [p] never pays for flips latent
    on other pages (see the ["parity_scan_steps"] counter). *)
