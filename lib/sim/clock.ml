type component = {
  name : string;
  compute : unit -> unit;
  commit : unit -> unit;
  idle_hint : (unit -> int) option;
  skip : (int -> unit) option;
  commit_hazard : bool;
      (* the commit phase consumes state a *later* slot's compute may have
         written this same edge (e.g. a bus wrapper whose commit moves a
         request its owner posted during compute); an elided tick must
         re-check the hint at its commit turn instead of skipping outright *)
}

let component ?idle_hint ?skip ?(commit_hazard = false) ~name ~compute ~commit
    () =
  (match (idle_hint, skip) with
  | Some _, None | None, Some _ ->
    invalid_arg "Clock.component: idle_hint and skip must be given together"
  | Some _, Some _ | None, None -> ());
  { name; compute; commit; idle_hint; skip; commit_hazard }

(* Two same-rate components registered back to back can share one slot:
   the composite runs [a]'s phase before [b]'s in both halves of the edge,
   which is exactly the global order separate registration would produce.
   Idle windows compose as the min of the hints; a skip is forwarded to
   both. When the composite executes an edge on which one side would have
   been elided, that side's [compute]/[commit] run instead of its [skip 1]
   — the idle-hint contract (a positive hint promises the tick changes
   nothing, counters included) makes the two indistinguishable. Composing
   is a pure host-side optimisation: fewer slots means fewer closure
   dispatches per edge. *)
let compose a b =
  let name = a.name ^ "+" ^ b.name in
  let compute () =
    a.compute ();
    b.compute ()
  in
  let commit () =
    a.commit ();
    b.commit ()
  in
  let commit_hazard = a.commit_hazard || b.commit_hazard in
  match (a.idle_hint, a.skip, b.idle_hint, b.skip) with
  | Some ha, Some sa, Some hb, Some sb ->
    component ~name ~commit_hazard
      ~idle_hint:(fun () ->
        let x = ha () in
        if x <= 0 then 0
        else
          let y = hb () in
          if x < y then x else y)
      ~skip:(fun k ->
        sa k;
        sb k)
      ~compute ~commit ()
  | _ -> component ~name ~commit_hazard ~compute ~commit ()

type slot = { comp : component; divide : int; phase : int }

type t = {
  engine : Engine.t;
  clk_name : string;
  freq_hz : int;
  period : Simtime.t;
  batched : bool;
  (* flat arrays in registration order: O(1) add, allocation-free edges *)
  mutable slots : slot array; (* first [n_slots] entries are live *)
  mutable n_slots : int;
  mutable marks : int array; (* per-edge scratch: 0 off / 1 ran / 2 elided *)
  mutable observers : (int -> unit) array; (* first [n_observers] live *)
  mutable n_observers : int;
  mutable skippable : bool; (* every slot can report and absorb idle spans *)
  mutable uniform : bool; (* every slot has divide = 1 *)
  mutable cycles : int;
  mutable running : bool;
  mutable generation : int; (* invalidates edges scheduled before a stop *)
}

let create ?(batched = true) engine ~name ~freq_hz =
  {
    engine;
    clk_name = name;
    freq_hz;
    period = Simtime.period_of_hz freq_hz;
    batched;
    slots = [||];
    n_slots = 0;
    marks = [||];
    observers = [||];
    n_observers = 0;
    skippable = true;
    uniform = true;
    cycles = 0;
    running = false;
    generation = 0;
  }

let add ?(divide = 1) ?(phase = 0) t comp =
  if divide < 1 then invalid_arg "Clock.add: divide < 1";
  if phase < 0 || phase >= divide then invalid_arg "Clock.add: bad phase";
  let s = { comp; divide; phase } in
  if t.n_slots = Array.length t.slots then begin
    let grown = Array.make (max 4 (2 * t.n_slots)) s in
    Array.blit t.slots 0 grown 0 t.n_slots;
    t.slots <- grown
  end;
  t.slots.(t.n_slots) <- s;
  if t.n_slots >= Array.length t.marks then
    t.marks <- Array.make (Array.length t.slots) 0;
  t.n_slots <- t.n_slots + 1;
  if divide > 1 then t.uniform <- false;
  if Option.is_none comp.idle_hint || Option.is_none comp.skip then
    t.skippable <- false

let on_edge t f =
  if t.n_observers = Array.length t.observers then begin
    let grown = Array.make (max 4 (2 * t.n_observers)) f in
    Array.blit t.observers 0 grown 0 t.n_observers;
    t.observers <- grown
  end;
  t.observers.(t.n_observers) <- f;
  t.n_observers <- t.n_observers + 1

(* One rising edge, identical to the seed implementation's ordering: the
   enabled set is evaluated against the pre-edge cycle index, every enabled
   compute runs before any commit, and observers see the just-completed
   index after all commits. *)
let run_edge t =
  let cycle = t.cycles in
  let n = t.n_slots in
  let elide = t.batched in
  let executed = ref false in
  (* Per-slot no-op elision. A slot whose [idle_hint] is positive when its
     compute turn comes skips the closure calls for this tick: hints are
     evaluated in slot order inside the compute phase, so a slot sees
     everything earlier computes latched for it this edge — exactly the
     state its compute would read. A positive hint is a promise the tick
     is a no-op, so [skip 1] performs the tick's accounting at the commit
     turn. [commit_hazard] slots re-check the hint there instead, because
     a later slot's compute this edge may have queued work their commit
     must move. *)
  for i = 0 to n - 1 do
    let s = Array.unsafe_get t.slots i in
    if s.divide = 1 || cycle mod s.divide = s.phase then begin
      let run =
        (not elide)
        || (match s.comp.idle_hint with Some f -> f () <= 0 | None -> true)
      in
      if run then begin
        Array.unsafe_set t.marks i 1;
        executed := true;
        s.comp.compute ()
      end
      else Array.unsafe_set t.marks i 2
    end
    else Array.unsafe_set t.marks i 0
  done;
  for i = 0 to n - 1 do
    match Array.unsafe_get t.marks i with
    | 0 -> ()
    | 1 -> (Array.unsafe_get t.slots i).comp.commit ()
    | _ -> (
      let c = (Array.unsafe_get t.slots i).comp in
      let rerun =
        c.commit_hazard
        && match c.idle_hint with Some f -> f () <= 0 | None -> true
      in
      if rerun then c.commit ()
      else match c.skip with Some g -> g 1 | None -> assert false)
  done;
  t.cycles <- cycle + 1;
  for i = 0 to t.n_observers - 1 do
    (Array.unsafe_get t.observers i) cycle
  done;
  not !executed

(* Idle fast-forward. After an edge, ask every slot how many of its own
   upcoming ticks are provably no-ops (given inputs frozen — nothing else
   executes inside the batch window). The clock jumps straight to the
   earliest cycle where some slot does real work, bounded by the engine
   horizon and the next queued event, and tells each slot exactly how many
   ticks it absorbed so cycle/stat accounting stays bit-exact.

   Returns the number of periods from the current engine time to the next
   edge that must actually execute (>= 1), updating [t.cycles] past the
   skipped span. *)
let plan_skip t ~now_ps ~h_ps ~peek_ps =
  (* [peek_ps] is [max_int] when the queue is empty. *)
  let c = t.cycles in
  let period_ps = Simtime.to_ps t.period in
  let target = ref max_int in
  if t.uniform then begin
    (* all slots tick every edge: wake = current cycle + hint *)
    let i = ref 0 in
    while !target > c && !i < t.n_slots do
      let s = Array.unsafe_get t.slots !i in
      let h = match s.comp.idle_hint with Some f -> f () | None -> 0 in
      let wake =
        if h <= 0 then c else if h >= max_int - c then max_int else c + h
      in
      if wake < !target then target := wake;
      incr i
    done
  end
  else begin
    let i = ref 0 in
    while !target > c && !i < t.n_slots do
      let s = Array.unsafe_get t.slots !i in
      (* first enabled cycle >= c for this slot *)
      let next_en =
        let d = c - s.phase in
        if d <= 0 then s.phase
        else
          let r = d mod s.divide in
          if r = 0 then c else c + s.divide - r
      in
      let h = match s.comp.idle_hint with Some f -> f () | None -> 0 in
      let wake =
        if h <= 0 then next_en
        else if h >= (max_int - next_en) / s.divide then max_int
        else next_en + (h * s.divide)
      in
      if wake < !target then target := wake;
      incr i
    done
  end;
  if !target <= c then 1
  else begin
  (* cap by the horizon (edge time <= horizon) and by the next queued
     event (edge time strictly before it, so queued work is not starved) *)
  let tgt = min !target (c - 1 + ((h_ps - now_ps) / period_ps)) in
  let tgt =
    if peek_ps = max_int then tgt
    else min tgt (c - 1 + ((peek_ps - now_ps - 1) / period_ps))
  in
  if tgt <= c then 1
  else begin
    (* cycles [c, tgt) are all no-ops; account them exactly per slot *)
    if t.uniform then
      for j = 0 to t.n_slots - 1 do
        let s = Array.unsafe_get t.slots j in
        match s.comp.skip with
        | Some f -> f (tgt - c)
        | None -> assert false
      done
    else
      for j = 0 to t.n_slots - 1 do
        let s = Array.unsafe_get t.slots j in
        let cnt_upto n =
          if n < s.phase then 0 else ((n - s.phase) / s.divide) + 1
        in
        let k = cnt_upto (tgt - 1) - cnt_upto (c - 1) in
        if k > 0 then
          match s.comp.skip with Some f -> f k | None -> assert false
      done;
    t.cycles <- tgt;
    tgt - c + 1
  end
  end

(* Edge batching. Inside an engine run span (horizon published), edges are
   executed inline — time advanced with [Engine.jump_to] — as long as the
   next edge falls inside the span, strictly before any queued event, and
   no interrupt source requested a break. Each condition failing falls back
   to scheduling one event at the next edge time, which is exactly the seed
   per-edge behaviour, so run loops observe the same event times and the
   same engine [now] at every boundary. *)
let rec batch t gen self =
  let (_ : bool) = run_edge t in
  if t.running && gen = t.generation then begin
    let e = t.engine in
    let broke = Engine.take_break e in
    match (if t.batched then Engine.horizon e else None) with
    | None -> Engine.schedule_after e t.period self
    | Some h ->
      let now_ps = Simtime.to_ps (Engine.now e) in
      let h_ps = Simtime.to_ps h in
      (* read after [run_edge]: an executed compute may have scheduled *)
      let peek_ps = Engine.peek_ps e in
      let steps =
        (* Plan even when the edge just run executed slots: hints are
           evaluated after every commit, so a post-active window (a
           component parking itself in a multi-cycle wait) is skipped
           without first paying a fully-elided edge. During dense
           stretches some slot's hint is 0 and [plan_skip] bails out on
           it immediately, so the extra cost is one hint evaluation per
           idle slot per active edge. *)
        if
          broke || (not t.skippable) || t.n_observers > 0 || t.n_slots = 0
          || h_ps <= now_ps
        then 1
        else plan_skip t ~now_ps ~h_ps ~peek_ps
      in
      let te_ps = now_ps + (steps * Simtime.to_ps t.period) in
      if (not broke) && te_ps <= h_ps && te_ps < peek_ps then begin
        Engine.jump_to e (Simtime.of_ps te_ps);
        batch t gen self
      end
      else Engine.schedule_at e (Simtime.of_ps te_ps) self
  end

(* Specialised inline loop for the dominant configuration — one uniform,
   skippable slot (see [compose]) and no observers. Behaviourally
   identical to [batch]: same edge order, same skip accounting, same
   horizon/queue scheduling boundaries. The differences are host-side
   only: the slot's hint is evaluated once per edge (not once in
   [run_edge] and again in [plan_skip]), there is no marks array, and an
   idle window is absorbed by [skip] directly instead of first paying a
   fully-elided edge. Executing the edge unconditionally on entry is
   sound even where [run_edge] would have elided it: a positive hint
   promises the tick is a no-op, so running it changes nothing. *)
and single_batch t gen self =
  let e = t.engine in
  match (if t.batched then Engine.horizon e else None) with
  | None ->
    let s = (Array.unsafe_get t.slots 0).comp in
    s.compute ();
    s.commit ();
    t.cycles <- t.cycles + 1;
    if t.running && gen = t.generation then
      Engine.schedule_after e t.period self
  | Some h ->
    (* The horizon is fixed for the whole inline chain (only a run loop
       moves it, and no engine event dispatches between inline edges), so
       everything per-chain — horizon, period, the slot's closures, the
       engine clock reading — is hoisted out of the per-edge loop; the
       current time is carried forward from each jump instead of re-read.
       Only the break flag and the queue head can change under an edge
       (computes may raise interrupts or schedule events) and those are
       the two re-checked each iteration. *)
    let h_ps = Simtime.to_ps h in
    let period_ps = Simtime.to_ps t.period in
    let s = (Array.unsafe_get t.slots 0).comp in
    let hint_fn = match s.idle_hint with Some f -> f | None -> assert false in
    let skip_fn = match s.skip with Some f -> f | None -> assert false in
    let now_ps = ref (Simtime.to_ps (Engine.now e)) in
    let continue = ref true in
    while !continue do
      s.compute ();
      s.commit ();
      t.cycles <- t.cycles + 1;
      if t.running && gen = t.generation then begin
        let broke = Engine.take_break e in
        let peek_ps = Engine.peek_ps e in
        let steps =
          if broke || h_ps <= !now_ps then 1
          else begin
            let hint = hint_fn () in
            if hint <= 0 then 1
            else begin
              let c = t.cycles in
              let wake = if hint >= max_int - c then max_int else c + hint in
              let tgt = min wake (c - 1 + ((h_ps - !now_ps) / period_ps)) in
              let tgt =
                if peek_ps = max_int then tgt
                else min tgt (c - 1 + ((peek_ps - !now_ps - 1) / period_ps))
              in
              if tgt <= c then 1
              else begin
                skip_fn (tgt - c);
                t.cycles <- tgt;
                tgt - c + 1
              end
            end
          end
        in
        let te_ps = !now_ps + (steps * period_ps) in
        if (not broke) && te_ps <= h_ps && te_ps < peek_ps then begin
          (* [te_ps] was just bounded by the queue head and exceeds the
             carried now, so the checked jump would re-prove both. *)
          Engine.jump_unchecked e (Simtime.of_ps te_ps);
          now_ps := te_ps;
          if
            not
              (t.n_slots = 1 && t.uniform && t.skippable
             && t.n_observers = 0)
          then begin
            continue := false;
            batch t gen self
          end
        end
        else begin
          continue := false;
          Engine.schedule_at e (Simtime.of_ps te_ps) self
        end
      end
      else continue := false
    done

(* Stop/start semantics (asserted by a regression test): [stop] discards
   edge phase, and after [start] the next edge fires exactly one period
   after the [start] call — a restarted domain behaves like a freshly
   released reset, it does not resume the old edge grid. VIM
   reconfiguration relies on this: the coprocessor clock is stopped while
   the PLD is reprogrammed and the new configuration starts a fresh
   timing grid. *)
let start t =
  if not t.running then begin
    t.running <- true;
    t.generation <- t.generation + 1;
    let gen = t.generation in
    let rec self () =
      if t.running && gen = t.generation then
        if
          t.batched && t.n_slots = 1 && t.uniform && t.skippable
          && t.n_observers = 0
        then single_batch t gen self
        else batch t gen self
    in
    Engine.schedule_after t.engine t.period self
  end

let stop t =
  if t.running then begin
    t.running <- false;
    t.generation <- t.generation + 1
  end

(* Platform pooling: stop the domain and rewind the cycle counter so the
   next [start] behaves exactly like the first edge of a fresh clock —
   same cycle indices, same divided-slot phases. Registered components and
   observers are kept (the pooled platform re-wires state, not
   structure). *)
let reset t =
  t.running <- false;
  t.generation <- t.generation + 1;
  t.cycles <- 0

let running t = t.running
let cycles t = t.cycles
let freq_hz t = t.freq_hz
let period t = t.period
let name t = t.clk_name
