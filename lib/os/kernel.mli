(** The simulated operating-system kernel.

    Glues together the engine (time), the cost model (how long software
    takes), the ledger (where that time is attributed), the interrupt
    controller, the scheduler and the system-call table. Kernel modules —
    the VIM — register interrupt handlers and syscalls against it.

    Charging a cost runs the engine forward, so hardware clock domains keep
    ticking underneath kernel activity: while the OS services a page fault,
    the stalled IMU keeps sampling its inputs, exactly like on the board. *)

type t

val create :
  engine:Rvi_sim.Engine.t ->
  cost:Cost_model.t ->
  ?sdram_bytes:int ->
  unit ->
  t
(** [sdram_bytes] defaults to 64 MB, the paper's board memory. *)

val engine : t -> Rvi_sim.Engine.t
val cost : t -> Cost_model.t
val accounting : t -> Accounting.t
val irq : t -> Irq.t
val sched : t -> Sched.t
val sdram : t -> Rvi_mem.Sdram.t
val syscalls : t -> Syscall.t
val stats : t -> Rvi_sim.Stats.t

val now : t -> Rvi_sim.Simtime.t

val set_trace : t -> Rvi_obs.Trace.t option -> unit
(** Attaches (or detaches) a structured event trace. Kernel paths —
    interrupt arrival and service — then emit events into it, and kernel
    modules (the VIM) find it through {!trace} to add their own. *)

val trace : t -> Rvi_obs.Trace.t option

val reset : t -> unit
(** Platform pooling: scrubs accounting, IRQ pending state, scheduler
    bookkeeping, the SDRAM arena (zeroed) and the kernel counters, and
    detaches any trace. Syscall and IRQ handler registrations persist. *)

val charge : t -> Accounting.category -> cycles:int -> unit
(** Attributes [cycles] of CPU work to the category and consumes the
    corresponding simulated time (hardware events inside the span run). *)

val charge_time : t -> Accounting.category -> Rvi_sim.Simtime.t -> unit

val syscall : t -> number:int -> int array -> Syscall.result
(** Full syscall path: charges entry cost, dispatches, charges exit cost.
    Entry/exit overhead is attributed to [Sw_os]. *)

val service_interrupts : t -> int
(** Dispatches every pending interrupt, charging entry/exit costs to
    [Sw_imu] (the only interrupt source in this system is the IMU). Returns
    the number serviced. *)
