(** Pluggable dispatch policies for the multi-tenant service.

    Generalises the bitstream-grouping experiment of {!Rvi_harness.Jobs}:
    [Fcfs] and [Grouped] are the batch disciplines turned into online
    rules; [Wfq] adds weighted fair queueing over tenant virtual time
    with reconfiguration-cost awareness, and is the only preemptive
    policy. *)

type t = Fcfs | Grouped | Wfq

val all : t list
val name : t -> string
val of_name : string -> t option

val preemptive : t -> bool
(** Whether the policy may park a running tenant mid-execution. *)

type candidate = {
  c_station : int;  (** station (application kind) index *)
  c_kind : Rvi_harness.Jobs.app_kind;
  c_tenant : int;
  c_vtime : float;  (** owning tenant's virtual time, microseconds *)
  c_seq : int;  (** global enqueue ordinal (unique) *)
  c_age_us : float;  (** time since submission, microseconds *)
  c_parked : bool;  (** a preempted context rather than fresh work *)
}

val select :
  t ->
  loaded:Rvi_harness.Jobs.app_kind option ->
  reconfig_bias_us:float ->
  age_limit_us:float ->
  candidate list ->
  candidate option
(** Picks the next candidate to run. [loaded] is the kind whose
    bit-stream the lattice currently holds; [reconfig_bias_us] is the
    cost of one reconfiguration expressed in virtual-time microseconds —
    [Wfq] tolerates that much unfairness to avoid one; [age_limit_us]
    is [Grouped]'s aging escape — the oldest candidate runs regardless
    of residency once it has waited that long. Deterministic: ties
    break on the unique [c_seq]. *)
