(** Result rows and table/figure rendering.

    Each run produces one row with the paper's time decomposition (HW,
    SW(DP), SW(IMU), plus application software and residual OS time) and
    the interface-level event counts. Renderers produce the aligned tables
    and the stacked ASCII bar charts used to regenerate Figures 8 and 9. *)

type outcome =
  | Measured
  | Exceeds_memory  (** the normal coprocessor cannot run this size *)
  | Degraded of string
      (** hardware retries exhausted; the software fallback produced the
          result (the reason describes what gave up) *)
  | Failed of string

type row = {
  app : string;
  version : string;  (** ["SW"], ["VIM"], ["NORMAL"] *)
  input_bytes : int;
  outcome : outcome;
  total : Rvi_sim.Simtime.t;
  hw : Rvi_sim.Simtime.t;
  sw_dp : Rvi_sim.Simtime.t;
  sw_imu : Rvi_sim.Simtime.t;
  sw_app : Rvi_sim.Simtime.t;
  sw_os : Rvi_sim.Simtime.t;
  faults : int;
  evictions : int;
  writebacks : int;
  tlb_refill_faults : int;
  prefetched : int;
  accesses : int;
  fault_p95_us : float;  (** 95th-percentile fault-service time, µs *)
  fault_p99_us : float;  (** 99th-percentile fault-service time, µs *)
  retries : int;  (** whole-execution retries the recovery layer spent *)
  verified : bool;  (** output bit-exact against the software reference *)
}

val ok : row -> bool
(** Measured and verified. *)

val speedup : baseline:row -> row -> float option
(** [total baseline / total row]; [None] unless both rows measured. *)

val size_label : int -> string
(** ["2KB"], ["512B"], and fractional KB for non-aligned sizes:
    [size_label 1536 = "1.5KB"]. *)

val print_table : ?title:string -> Format.formatter -> row list -> unit
(** Aligned table: size, outcome, total and component times, counts,
    verification mark. *)

val bar_chart :
  ?width:int ->
  title:string ->
  baseline_version:string ->
  Format.formatter ->
  row list ->
  unit
(** Stacked horizontal bars per (size, version): hardware and software
    components drawn with distinct fills, speedups against the named
    baseline version at equal size annotated on the right — the shape of
    the paper's Figures 8 and 9. *)

val csv : row list -> string
(** Machine-readable dump (header + one line per row, times in ms). *)

val json : row list -> string
(** The same rows as a JSON array (no external dependency; times in ms). *)
