type t = Paper_objects | Iommu_sva

let name = function
  | Paper_objects -> "paper-objects"
  | Iommu_sva -> "iommu-sva"

let of_name = function
  | "paper-objects" | "paper" | "objects" -> Some Paper_objects
  | "iommu-sva" | "sva" | "iommu" -> Some Iommu_sva
  | _ -> None

let all = [ Paper_objects; Iommu_sva ]
