(* Golden fixture for the multi-tenant serve campaign: a 50-request
   mixed-tenant trace (4 tenants, seed 42) through every scheduling
   policy in both translation modes. The per-request completion CSV and
   the per-cell counters are pure functions of the cells, so any change
   to scheduling order, preemption accounting or latency bookkeeping
   shows up here as a diff. *)

module Serve = Rvi_svc.Serve
module Sched_policy = Rvi_svc.Sched_policy
module Service = Rvi_svc.Service

let () =
  let cells =
    Serve.cells ~policies:Sched_policy.all
      ~translations:Rvi_core.Translation_mode.all ~seed:42 ~tenants:4
      ~requests:50 ~rate_hz:0 ~quantum_us:50 ~bytes:128
  in
  let results = Serve.campaign cells in
  print_string Serve.csv_header;
  List.iter (fun r -> print_string r.Serve.cr_csv) results;
  List.iter
    (fun r ->
      let o = r.Serve.cr_outcome in
      Printf.printf
        "# %s completed=%d reconfigurations=%d preemptions=%d resumes=%d \
         digest=%s\n"
        (Serve.cell_label r.Serve.cr_cell)
        o.Service.o_completed o.Service.o_reconfigurations
        o.Service.o_preemptions o.Service.o_resumes r.Serve.cr_digest)
    results
