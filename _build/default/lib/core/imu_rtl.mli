(** Register-transfer-level IMU.

    The paper argues that "IMUs could and should, in principle, become
    standard components implemented on the ASIC platform in the same way
    MMUs are today". This module is that component one refinement step
    closer to silicon: the same machine as {!Imu}, but described
    structurally — explicit state encoding, per-entry tag/data/flag
    registers for the CAM, combinational match logic over {!Rvi_hw.Bits}
    vectors, every architectural register an {!Rvi_hw.Reg} committed at
    the clock edge.

    It implements the shipped 4-cycle design (2-cycle CAM search). The
    test suite drives it in lockstep with the behavioural {!Imu} on random
    access scripts, including faults and OS refills, and requires
    cycle-identical port behaviour — a small equivalence-checking flow, as
    one would run between an architectural model and an RTL
    implementation. *)

type t

val create :
  ?entries:int ->
  port:Cp_port.t ->
  dpram:Rvi_mem.Dpram.t ->
  raise_irq:(unit -> unit) ->
  unit ->
  t
(** [entries] defaults to 8 CAM entries. *)

val component : t -> Rvi_sim.Clock.component

(** {1 Register interface (bit-level, as the bus sees it)} *)

val read_ar : t -> int
val read_sr : t -> int
val write_cr : t -> int -> unit
val set_param_page : t -> int option -> unit

val tlb_write : t -> slot:int -> obj_id:int -> vpn:int -> ppn:int -> unit
(** CPU refill of one CAM entry (tag, data, valid set, flags cleared). *)

val tlb_invalidate : t -> slot:int -> unit
val tlb_invalidate_all : t -> unit

val tlb_dirty : t -> slot:int -> bool
val tlb_valid : t -> slot:int -> bool

val fault : t -> (int * int) option
(** [(object, virtual page)] while stalled on a miss. *)

val finished : t -> bool
