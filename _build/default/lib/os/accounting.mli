(** Execution-time ledger.

    The paper splits VIM-based execution time into three components:
    hardware time (coprocessor + IMU), software time for dual-port-RAM
    management, and software time for IMU management. The ledger tracks
    those, plus the application's own compute time (for the pure-software
    version) and residual OS overhead (syscall entry/exit, wakeup). *)

type category =
  | Hw  (** time spent in the coprocessor and the IMU *)
  | Sw_dp  (** OS time moving data between user space and dual-port RAM *)
  | Sw_imu  (** OS time decoding faults and updating the translation table *)
  | Sw_app  (** application software compute (pure-software version) *)
  | Sw_os  (** residual OS overhead: syscalls, configuration, wakeup *)

val categories : category list
val category_name : category -> string

type t

val create : unit -> t
val add : t -> category -> Rvi_sim.Simtime.t -> unit
val get : t -> category -> Rvi_sim.Simtime.t
val total : t -> Rvi_sim.Simtime.t
val reset : t -> unit

val fraction : t -> category -> float
(** Share of the total in [0, 1]; 0 when the total is zero. *)

val pp : Format.formatter -> t -> unit
