lib/hw/reg.mli:
