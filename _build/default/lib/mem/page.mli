(** Page arithmetic.

    The dual-port memory of the platform is logically organised in
    fixed-size pages (2 KB on the EPXA1, eight of them). Virtual addresses
    produced by a coprocessor and user buffers are both carved into pages of
    the same geometry. *)

type geometry = private { page_size : int; n_pages : int }

val geometry : page_size:int -> n_pages:int -> geometry
(** Raises [Invalid_argument] unless [page_size] is a power of two >= 16 and
    [n_pages >= 1]. *)

val total_bytes : geometry -> int

val vpn : geometry -> int -> int
(** Page number containing a byte address. *)

val offset : geometry -> int -> int
(** Offset of an address within its page. *)

val base : geometry -> int -> int
(** First byte address of a page. *)

val page_count : geometry -> len:int -> int
(** Number of pages needed to hold [len] bytes starting at a page boundary
    (i.e. [ceil (len / page_size)]). *)

val pp : Format.formatter -> geometry -> unit
