(* Quickstart: the paper's motivating example (Figures 3, 5 and 6).

   The application adds two vectors on a coprocessor through the virtual
   interface. Note what the code does NOT contain: no physical address, no
   dual-port-memory size, no chunking loop — the three FPGA_* services are
   the entire interface, exactly as in Figure 6:

     FPGA_LOAD(ADD_bitstream);
     FPGA_MAP_OBJECT(0, A, SIZE, IN);
     FPGA_MAP_OBJECT(1, B, SIZE, IN);
     FPGA_MAP_OBJECT(2, C, SIZE, OUT);
     FPGA_EXECUTE(SIZE);

   Run with:  dune exec examples/quickstart.exe *)

module Platform = Rvi_harness.Platform
module Api = Rvi_core.Api

let bytes_of_words words =
  let b = Bytes.create (4 * Array.length words) in
  Array.iteri
    (fun i w ->
      for k = 0 to 3 do
        Bytes.set b ((4 * i) + k) (Char.chr ((w lsr (8 * k)) land 0xFF))
      done)
    words;
  b

let word_at b i =
  let byte k = Char.code (Bytes.get b ((4 * i) + k)) in
  byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24)

let or_die = function
  | Ok () -> ()
  | Error e -> failwith ("syscall failed: " ^ Rvi_os.Syscall.errno_name e)

let () =
  let size = 4096 in
  Printf.printf "vector add of %d elements (3 x %d KB of data, %d KB dual-port RAM)\n"
    size (4 * size / 1024)
    (Rvi_fpga.Device.epxa1.Rvi_fpga.Device.dpram_bytes / 1024);

  (* Build the platform: EPXA1, Linux-like kernel, VIM, IMU, coprocessor. *)
  let cfg = Rvi_harness.Config.default () in
  let p =
    Platform.create ~app_name:"quickstart" cfg
      ~bitstream:Rvi_harness.Calibration.vecadd_bitstream
      ~make:Rvi_coproc.Vecadd.Virtual.create
  in

  (* User-space data, like any heap allocation. *)
  let a, b = Rvi_harness.Workload.vectors ~seed:7 ~n:size in
  let buf_a = Platform.alloc_bytes p (bytes_of_words a) in
  let buf_b = Platform.alloc_bytes p (bytes_of_words b) in
  let buf_c = Platform.alloc p (4 * size) in

  (* The five lines of Figure 6. *)
  or_die (Api.fpga_load p.Platform.api Rvi_harness.Calibration.vecadd_bitstream);
  or_die
    (Api.fpga_map_object p.Platform.api ~id:0 ~buf:buf_a
       ~dir:Rvi_core.Mapped_object.In ~stream:true ());
  or_die
    (Api.fpga_map_object p.Platform.api ~id:1 ~buf:buf_b
       ~dir:Rvi_core.Mapped_object.In ~stream:true ());
  or_die
    (Api.fpga_map_object p.Platform.api ~id:2 ~buf:buf_c
       ~dir:Rvi_core.Mapped_object.Out ~stream:true ());
  or_die (Api.fpga_execute p.Platform.api ~params:[ size ]);

  (* Check the result against the pure-software version of Figure 3. *)
  let c = Platform.read p buf_c in
  let expected = Rvi_coproc.Vecadd.reference ~a ~b in
  let correct = ref true in
  Array.iteri (fun i e -> if word_at c i <> e then correct := false) expected;
  Printf.printf "result: %s\n" (if !correct then "bit-exact" else "WRONG");

  (* The working set was 48 KB against 16 KB of dual-port memory; the OS
     paged it transparently: *)
  let stats = Rvi_core.Vim.stats p.Platform.vim in
  Printf.printf
    "page faults: %d, evictions: %d, write-backs: %d (all invisible to the \
     code above)\n"
    (Rvi_sim.Stats.get stats "faults")
    (Rvi_sim.Stats.get stats "evictions")
    (Rvi_sim.Stats.get stats "writebacks");
  Printf.printf "simulated time: %.3f ms\n"
    (Rvi_sim.Simtime.to_ms
       (Rvi_os.Accounting.total (Rvi_os.Kernel.accounting p.Platform.kernel)));
  if not !correct then exit 1
