(* Unit tests for the device/bit-stream/PLD models (rvi_fpga). *)

module Device = Rvi_fpga.Device
module Bitstream = Rvi_fpga.Bitstream
module Pld = Rvi_fpga.Pld

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_device_catalogue () =
  checki "epxa1 pages"
    8
    (Device.epxa1.Device.dpram_bytes / Device.epxa1.Device.page_size);
  checkb "epxa4 bigger" true
    (Device.epxa4.Device.dpram_bytes > Device.epxa1.Device.dpram_bytes);
  checkb "epxa10 biggest" true
    (Device.epxa10.Device.logic_elements > Device.epxa4.Device.logic_elements);
  checkb "lookup case-insensitive" true (Device.by_name "epxa4" = Some Device.epxa4);
  checkb "unknown" true (Device.by_name "virtex" = None);
  checki "catalogue size" 4 (List.length Device.all);
  checkb "cross-vendor entry" true (Device.by_name "xc2vp7" = Some Device.xc2vp7);
  checki "xilinx pages" 8
    (Device.xc2vp7.Device.dpram_bytes / Device.xc2vp7.Device.page_size);
  let g = Device.geometry Device.epxa1 in
  checki "geometry total" (16 * 1024) (Rvi_mem.Page.total_bytes g)

let test_bitstream () =
  let bs =
    Bitstream.make ~name:"x" ~logic_elements:100 ~imu_freq_hz:24_000_000
      ~coproc_divide:4 ~param_words:2 ()
  in
  checki "coproc freq" 6_000_000 (Bitstream.coproc_freq_hz bs);
  Alcotest.check_raises "bad LEs"
    (Invalid_argument "Bitstream.make: logic_elements <= 0") (fun () ->
      ignore (Bitstream.make ~name:"x" ~logic_elements:0 ~imu_freq_hz:1 ~param_words:0 ()));
  Alcotest.check_raises "bad divide"
    (Invalid_argument "Bitstream.make: coproc_divide < 1") (fun () ->
      ignore
        (Bitstream.make ~name:"x" ~logic_elements:1 ~imu_freq_hz:1
           ~coproc_divide:0 ~param_words:0 ()))

let small_bs =
  Bitstream.make ~name:"small" ~logic_elements:100 ~imu_freq_hz:40_000_000
    ~param_words:1 ()

let test_pld_configure_release () =
  let pld = Pld.create Device.epxa1 in
  checkb "empty" true (Pld.loaded pld = None);
  (match Pld.configure pld ~pid:1 small_bs with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "configure failed");
  checkb "loaded" true (Pld.loaded pld = Some small_bs);
  checkb "owner" true (Pld.owner pld = Some 1);
  checki "reconfigurations" 1 (Pld.reconfigurations pld);
  (match Pld.release pld ~pid:1 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "release failed");
  checkb "released" true (Pld.loaded pld = None && Pld.owner pld = None)

let test_pld_exclusive () =
  let pld = Pld.create Device.epxa1 in
  (match Pld.configure pld ~pid:1 small_bs with Ok () -> () | Error _ -> assert false);
  (* Another process may not steal the lattice. *)
  (match Pld.configure pld ~pid:2 small_bs with
  | Error (Pld.Locked_by 1) -> ()
  | Ok () | Error _ -> Alcotest.fail "lock not enforced");
  (* But the owner may reconfigure. *)
  (match Pld.configure pld ~pid:1 small_bs with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "owner reconfigure refused");
  (* Only the owner may release. *)
  (match Pld.release pld ~pid:2 with
  | Error (Pld.Not_owner 2) -> ()
  | Ok () | Error _ -> Alcotest.fail "foreign release accepted")

let test_pld_too_large () =
  let pld = Pld.create Device.epxa1 in
  let big =
    Bitstream.make ~name:"big" ~logic_elements:1_000_000 ~imu_freq_hz:1_000_000
      ~param_words:0 ()
  in
  match Pld.configure pld ~pid:1 big with
  | Error (Pld.Too_large { required = 1_000_000; available = 4_160 }) -> ()
  | Ok () | Error _ -> Alcotest.fail "oversized bit-stream accepted"

let test_pld_release_empty () =
  let pld = Pld.create Device.epxa1 in
  match Pld.release pld ~pid:1 with
  | Error Pld.Empty -> ()
  | Ok () | Error _ -> Alcotest.fail "empty release accepted"

let test_error_strings () =
  checkb "message mentions LEs" true
    (String.length (Pld.error_to_string (Pld.Too_large { required = 9; available = 1 })) > 0)

let suite =
  [
    Alcotest.test_case "device/catalogue" `Quick test_device_catalogue;
    Alcotest.test_case "bitstream/validation" `Quick test_bitstream;
    Alcotest.test_case "pld/configure-release" `Quick test_pld_configure_release;
    Alcotest.test_case "pld/exclusive-lock" `Quick test_pld_exclusive;
    Alcotest.test_case "pld/too-large" `Quick test_pld_too_large;
    Alcotest.test_case "pld/release-empty" `Quick test_pld_release_empty;
    Alcotest.test_case "pld/error-strings" `Quick test_error_strings;
  ]
