lib/core/cp_port.ml: Rvi_hw
