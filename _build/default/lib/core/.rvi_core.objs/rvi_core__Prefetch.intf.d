lib/core/prefetch.mli:
