(** Deterministic chunk-sharded parallel map over OCaml 5 domains.

    Multi-run workloads (fault campaigns, ablation sweeps, benchmarks)
    are embarrassingly parallel: every run is an independent seeded
    simulation. This module shards an indexed work list over a fixed
    set of domains in contiguous chunks — no work stealing, no
    re-ordering — so the result list is a pure function of the input
    list and [f], never of the number of domains or of scheduling:

    - [map ~domains:1] takes a dedicated serial path that is
      bit-identical to [List.map f];
    - for [domains > 1] every item's result is written to its own index
      slot, so reassembly order is index order regardless of which
      domain ran which chunk;
    - chunks are claimed from a shared counter, so which {e domain}
      runs a chunk varies run to run, but chunk {e contents} (the index
      ranges) depend only on [chunk] and the list length. Anything
      derived from {!shard_of_index} is therefore deterministic.

    Determinism contract for callers: [f] must not depend on shared
    mutable state across items (give every item its own PRNG derived
    from the item index, its own trace sink, its own simulation). The
    campaign and sweep drivers in [Rvi_harness] follow this discipline. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()] — the default for [--jobs]. *)

val default_chunk : domains:int -> int -> int
(** [default_chunk ~domains n] is the chunk size [map] uses when none is
    given: about four chunks per domain, at least 1, so self-scheduling
    smooths uneven item costs without degenerating to one item per
    claim. A pure function of [domains] and [n]. *)

val shard_of_index : chunk:int -> int -> int
(** [shard_of_index ~chunk i = i / chunk]: the chunk ordinal item [i]
    belongs to. Deterministic — campaigns stamp it into trace events as
    the shard id. *)

val map : ?domains:int -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains ~chunk f items] applies [f] to every item and returns
    the results in input order. [domains] defaults to 1 (serial,
    bit-identical to [List.map]); values above the list length are
    clamped. [chunk] defaults to {!default_chunk}. If one or more
    applications of [f] raise, the exception of the {e lowest-indexed}
    failing item is re-raised after all domains have joined (serial and
    parallel runs fail identically). *)

val mapi : ?domains:int -> ?chunk:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** Like {!map} with the item index, e.g. to derive per-item seeds. *)

val map_merge :
  ?domains:int ->
  ?chunk:int ->
  f:('a -> 'b) ->
  merge:('b -> 'b -> 'b) ->
  'b ->
  'a list ->
  'b
(** [map_merge ~f ~merge init items] folds [merge] left-to-right over
    the results of [map f items] starting from [init]. [merge] runs
    after the barrier, on one domain, in index order — so per-item
    sinks (stats, traces) combine into the same aggregate whatever
    [domains] was, provided [merge] is associative over adjacent
    results. *)

(** Persistent worker domains.

    {!map} spawns and joins [domains - 1] fresh domains per call —
    milliseconds of host time that multi-call workloads (campaign +
    sweep + ablations in one process) pay over and over. A pool spawns
    the workers once and reuses them for every [map]; scheduling is the
    same contiguous-chunk self-claiming as the module-level functions,
    so for any pool width and chunk the result list is bit-identical to
    the serial [List.map] (same lowest-index exception semantics too).

    Pools are driven from the domain that created them, one map at a
    time; the driving domain participates in every job as the last
    worker. *)
module Pool : sig
  type t

  val create : ?domains:int -> unit -> t
  (** Spawns [domains - 1] worker domains (default
      {!recommended_domains}; clamped to at least 1 — a width-1 pool
      spawns nothing and maps serially). *)

  val domains : t -> int

  val map : t -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
  (** Exactly {!Par.map}[ ~domains:(domains t)] but on the pooled
      workers. [chunk] defaults to {!default_chunk}. *)

  val mapi : t -> ?chunk:int -> (int -> 'a -> 'b) -> 'a list -> 'b list

  val shutdown : t -> unit
  (** Joins the workers. Idempotent; further [map]s raise. *)

  val shared : domains:int -> t
  (** The process-wide pool, (re)created only when [domains] differs
      from the current width — back-to-back campaigns reuse the same
      domains. Never shut this one down mid-process; it is recycled
      automatically on width change. *)
end
