let recommended_domains () = Domain.recommended_domain_count ()

let default_chunk ~domains n =
  if domains <= 1 then Stdlib.max 1 n
  else Stdlib.max 1 ((n + (4 * domains) - 1) / (4 * domains))

let shard_of_index ~chunk i =
  if chunk <= 0 then invalid_arg "Par.shard_of_index: non-positive chunk";
  i / chunk

(* One slot per item. [Error] keeps the first exception of that index so
   the lowest-indexed failure wins, exactly as it would serially. *)
type 'b slot = Empty | Done of 'b | Raised of exn

let mapi ?(domains = 1) ?chunk f items =
  let n = List.length items in
  let domains = Stdlib.min (Stdlib.max 1 domains) (Stdlib.max 1 n) in
  let chunk =
    match chunk with
    | None -> default_chunk ~domains n
    | Some c ->
      if c <= 0 then invalid_arg "Par.map: non-positive chunk";
      c
  in
  if domains = 1 then List.mapi f items
  else begin
    let arr = Array.of_list items in
    let slots = Array.make n Empty in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let start = Atomic.fetch_and_add next chunk in
        if start >= n then continue := false
        else
          for i = start to Stdlib.min n (start + chunk) - 1 do
            slots.(i) <-
              (match f i arr.(i) with
              | v -> Done v
              | exception e -> Raised e)
          done
      done
    in
    let spawned = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    (* Scan low index first so the re-raised exception is the one the
       serial path would have raised. *)
    Array.iter (function Raised e -> raise e | _ -> ()) slots;
    Array.to_list
      (Array.map
         (function
           | Done v -> v
           | Raised _ | Empty -> assert false (* every index claimed once *))
         slots)
  end

let map ?domains ?chunk f items = mapi ?domains ?chunk (fun _ x -> f x) items

let map_merge ?domains ?chunk ~f ~merge init items =
  List.fold_left merge init (map ?domains ?chunk f items)
