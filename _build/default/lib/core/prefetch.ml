type t = Off | Sequential of { depth : int }

let off = Off

let sequential ~depth =
  if depth < 1 then invalid_arg "Prefetch.sequential: depth < 1";
  Sequential { depth }

let name = function
  | Off -> "off"
  | Sequential { depth } -> Printf.sprintf "sequential-%d" depth

let predict t ~stream ~vpn ~last_vpn =
  match t with
  | Off -> []
  | Sequential { depth } ->
    if not stream then []
    else
      let rec go d acc =
        if d > depth || vpn + d > last_vpn then List.rev acc
        else go (d + 1) ((vpn + d) :: acc)
      in
      go 1 []
