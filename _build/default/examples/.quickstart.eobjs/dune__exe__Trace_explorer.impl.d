examples/trace_explorer.ml: Array Bytes Printf Rvi_coproc Rvi_core Rvi_harness Rvi_hw Rvi_mem Rvi_sim
