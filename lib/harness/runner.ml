module Simtime = Rvi_sim.Simtime
module Engine = Rvi_sim.Engine
module Clock = Rvi_sim.Clock
module Stats = Rvi_sim.Stats
module Kernel = Rvi_os.Kernel
module Accounting = Rvi_os.Accounting
module Uspace = Rvi_os.Uspace
module Device = Rvi_fpga.Device

type vobject = {
  id : int;
  dir : Rvi_core.Mapped_object.direction;
  stream : bool;
  init : Bytes.t option;
  size : int;
}

let make_kernel (cfg : Config.t) =
  let engine = Engine.create () in
  let cost =
    Rvi_os.Cost_model.default ~cpu_freq_hz:cfg.Config.device.Device.cpu_freq_hz
  in
  (* The board carries 64 MB; the runner workloads top out well under
     1 MB of user buffers, and a small arena keeps host-side allocation
     (one zeroed region per simulated run) off the measurement path. *)
  let kernel = Kernel.create ~engine ~cost ~sdram_bytes:(1024 * 1024) () in
  (engine, kernel)

let spawn_app kernel name =
  let sched = Kernel.sched kernel in
  let proc = Rvi_os.Sched.spawn sched ~name in
  ignore (Rvi_os.Sched.schedule sched);
  proc

let row_base ~app ~version ~input_bytes =
  {
    Report.app;
    version;
    input_bytes;
    outcome = Report.Measured;
    total = Simtime.zero;
    hw = Simtime.zero;
    sw_dp = Simtime.zero;
    sw_imu = Simtime.zero;
    sw_app = Simtime.zero;
    sw_os = Simtime.zero;
    faults = 0;
    evictions = 0;
    writebacks = 0;
    tlb_refill_faults = 0;
    prefetched = 0;
    accesses = 0;
    fault_p95_us = 0.0;
    fault_p99_us = 0.0;
    retries = 0;
    verified = false;
  }

(* [total] is wall time on the simulated clock, not the ledger sum: when
   transfers overlap coprocessor execution (overlapped prefetch, DMA), the
   category sum exceeds the elapsed time. *)
let fill_times row kernel ~wall =
  let acct = Kernel.accounting kernel in
  {
    row with
    Report.total = wall;
    hw = Accounting.get acct Accounting.Hw;
    sw_dp = Accounting.get acct Accounting.Sw_dp;
    sw_imu = Accounting.get acct Accounting.Sw_imu;
    sw_app = Accounting.get acct Accounting.Sw_app;
    sw_os = Accounting.get acct Accounting.Sw_os;
  }

(* Host-side wall-clock breakdown of the virtual runs, accumulated across
   calls so the campaign benchmark can report where its time goes.
   [setup] covers platform acquisition (pool hit or full construction),
   buffer allocation, FPGA_LOAD and object mapping; [execute] the
   FPGA_EXECUTE attempt loop including per-attempt verification; [report]
   final statistics reads, fallback handling and row assembly. Plain
   float refs: meaningful for the serial path the benchmark measures;
   parallel shards race benignly (lost updates, never corruption). *)
module Phases = struct
  let setup = ref 0.0
  let execute = ref 0.0
  let report = ref 0.0

  let reset () =
    setup := 0.0;
    execute := 0.0;
    report := 0.0

  let totals () = (!setup, !execute, !report)
end

(* [fallback] is the graceful-degradation path: when the recovery layer
   gives up on the hardware (transient errors or bad outputs through every
   execution retry), it produces the reference result per output object;
   the run then counts as [Degraded] with the fallback's output verified
   like any other. Execution retries are only attempted when the
   configuration carries an injector — without one, behaviour is exactly
   the pre-recovery single-shot execute.

   [pool] switches platform acquisition to {!Platform.Pool}: the run
   borrows (and resets) a platform stored under [app] instead of building
   one, and returns it on completion. A run that raises leaves the
   platform out of the pool. *)
let run_virtual_on p ~ph0 ?fallback (cfg : Config.t) ~app ~bitstream ~objects
    ~params ~input_bytes ~verify =
  let kernel = p.Platform.kernel in
  let api = p.Platform.api in
  let vim = p.Platform.vim in
  let imu = p.Platform.imu in
  (* Allocate the user buffers and map the objects, as Figure 6 does. *)
  let bufs =
    List.map
      (fun o ->
        let buf = Uspace.alloc kernel o.size in
        (match o.init with
        | Some data ->
          if Bytes.length data <> o.size then
            invalid_arg "Runner.run_virtual: init size mismatch";
          Uspace.write kernel buf data
        | None -> ());
        (o, buf))
      objects
  in
  let row = row_base ~app ~version:"VIM" ~input_bytes in
  let fail msg = { row with Report.outcome = Report.Failed msg } in
  let ( let* ) r f =
    match r with
    | Ok () -> f ()
    | Error e ->
      let detail =
        match Rvi_core.Api.last_error api with
        | Some d -> Printf.sprintf "%s (%s)" (Rvi_os.Syscall.errno_name e) d
        | None -> Rvi_os.Syscall.errno_name e
      in
      fail detail
  in
  let* () = Rvi_core.Api.fpga_load api bitstream in
  let rec map_all = function
    | [] -> Ok ()
    | (o, buf) :: rest -> (
      match
        Rvi_core.Api.fpga_map_object api ~id:o.id ~buf ~dir:o.dir
          ~stream:o.stream ()
      with
      | Ok () -> map_all rest
      | Error e -> Error e)
  in
  let* () = map_all bufs in
  (* The paper's figures measure the accelerated kernel, not the one-time
     configuration: drop the FPGA_LOAD / FPGA_MAP_OBJECT costs from the
     ledger before executing. *)
  Accounting.reset (Kernel.accounting kernel);
  let ph1 = Unix.gettimeofday () in
  Phases.setup := !Phases.setup +. (ph1 -. ph0);
  let t0 = Kernel.now kernel in
  let read_obj id =
    let _, buf = List.find (fun (o, _) -> o.id = id) bufs in
    Uspace.read kernel buf
  in
  let emit kind =
    match cfg.Config.trace with
    | Some tr -> Rvi_obs.Trace.emit tr ~at:(Kernel.now kernel) kind
    | None -> ()
  in
  let exec_retries =
    if cfg.Config.injector = None then 0 else cfg.Config.exec_retries
  in
  (* Transient hardware errors may succeed on a clean re-execution, so
     retry up to the budget; exhaustion degrades to the fallback. A bad
     output with a clean exit (a silent wrong-result fault) is retried the
     same way. The ladder keys on the VIM's severity classification
     ({!Rvi_core.Api.last_transient}) rather than on a specific errno, so
     translation modes with their own transient surface (SVA walk
     failures) degrade instead of failing outright. Non-transient errors
     are caller bugs and fail immediately. *)
  let rec attempt n =
    match Rvi_core.Api.fpga_execute api ~params with
    | Ok () ->
      if verify read_obj then `Done n
      else if n < exec_retries then begin
        emit (Rvi_obs.Trace.Retry { what = "execute"; attempt = n + 1 });
        attempt (n + 1)
      end
      else `Degrade ("wrong result", n)
    | Error e -> (
      let transient = Rvi_core.Api.last_transient api in
      if transient && n < exec_retries then begin
        emit (Rvi_obs.Trace.Retry { what = "execute"; attempt = n + 1 });
        attempt (n + 1)
      end
      else
        let detail =
          match Rvi_core.Api.last_error api with
          | Some d -> Printf.sprintf "%s (%s)" (Rvi_os.Syscall.errno_name e) d
          | None -> Rvi_os.Syscall.errno_name e
        in
        if transient then `Degrade (detail, n) else `Fail detail)
  in
  let outcome = attempt 0 in
  let ph2 = Unix.gettimeofday () in
  Phases.execute := !Phases.execute +. (ph2 -. ph1);
  let wall = Simtime.sub (Kernel.now kernel) t0 in
  let vstats = Rvi_core.Vim.stats vim in
  let istats = Rvi_core.Imu.stats imu in
  let fault_p95_us, fault_p99_us =
    match Stats.summary vstats "fault_service_us" with
    | Some s -> (s.Stats.p95, s.Stats.p99)
    | None -> (0.0, 0.0)
  in
  let fill ~outcome ~retries ~verified =
    {
      (fill_times row kernel ~wall) with
      Report.outcome;
      retries;
      verified;
      faults = Stats.get vstats "faults";
      evictions = Stats.get vstats "evictions";
      writebacks = Stats.get vstats "writebacks";
      tlb_refill_faults = Stats.get vstats "tlb_refill_faults";
      prefetched = Stats.get vstats "prefetched";
      accesses = Stats.get istats "accesses";
      fault_p95_us;
      fault_p99_us;
    }
  in
  let final =
    match outcome with
    | `Fail detail -> { (fail detail) with Report.retries = 0 }
    | `Done retries ->
      if retries > 0 then
        emit (Rvi_obs.Trace.Recover { what = "execute"; retries });
      fill ~outcome:Report.Measured ~retries ~verified:true
    | `Degrade (reason, retries) -> (
      emit (Rvi_obs.Trace.Degrade { reason });
      match fallback with
      | None -> { (fail reason) with Report.retries }
      | Some fb ->
        (* Software reference takes over: write its output into the user
           buffers and verify it like a hardware result. *)
        List.iter
          (fun (id, data) ->
            let _, buf = List.find (fun (o, _) -> o.id = id) bufs in
            Uspace.write kernel buf data)
          (fb ());
        fill ~outcome:(Report.Degraded reason) ~retries
          ~verified:(verify read_obj))
  in
  Phases.report := !Phases.report +. (Unix.gettimeofday () -. ph2);
  final

let run_virtual ?pool ?inspect ?fallback (cfg : Config.t) ~app ~bitstream
    ~make ~objects ~params ~input_bytes ~verify =
  let ph0 = Unix.gettimeofday () in
  let p =
    match pool with
    | None -> Platform.create ~app_name:app cfg ~bitstream ~make
    | Some pool ->
      Platform.Pool.acquire pool ~key:app cfg ~create:(fun () ->
          Platform.create ~app_name:app cfg ~bitstream ~make)
  in
  let row =
    run_virtual_on p ~ph0 ?fallback cfg ~app ~bitstream ~objects ~params
      ~input_bytes ~verify
  in
  (* Post-mortem hook: the chaos harness runs the consistency checker on
     the still-live platform before it goes back to the pool. *)
  (match inspect with Some f -> f p | None -> ());
  (match pool with
  | Some pool -> Platform.Pool.stash pool ~key:app p
  | None -> ());
  row

let run_normal (cfg : Config.t) ~app ~clock_hz ~coproc_divide ~make ~objects
    ~params ~input_bytes ~verify =
  let _engine, kernel = make_kernel cfg in
  let dpram = Rvi_mem.Dpram.create (Device.geometry cfg.Config.device) in
  let dport = Rvi_coproc.Dport.create ~dpram in
  let coproc = make dport in
  let clock = Clock.create (Kernel.engine kernel) ~name:"pld" ~freq_hz:clock_hz in
  Clock.add clock ~divide:coproc_divide coproc.Rvi_coproc.Coproc.component;
  ignore (spawn_app kernel app);
  let bufs =
    List.map
      (fun o ->
        let buf = Uspace.alloc kernel o.size in
        (match o.init with
        | Some data -> Uspace.write kernel buf data
        | None -> ());
        ( { Rvi_coproc.Normal_driver.region = o.id; buf; dir = o.dir },
          o ))
      objects
  in
  let row = row_base ~app ~version:"NORMAL" ~input_bytes in
  let t0 = Kernel.now kernel in
  match
    Rvi_coproc.Normal_driver.run ~kernel ~dpram
      ~ahb:cfg.Config.device.Device.ahb ~clocks:[ clock ] ~dport ~coproc
      ~regions:(List.map fst bufs) ~params ()
  with
  | Ok () ->
    let read_obj id =
      let spec, _ =
        List.find (fun (s, _) -> s.Rvi_coproc.Normal_driver.region = id) bufs
      in
      Uspace.read kernel spec.Rvi_coproc.Normal_driver.buf
    in
    let verified = verify read_obj in
    let wall = Simtime.sub (Kernel.now kernel) t0 in
    {
      (fill_times row kernel ~wall) with
      Report.verified;
      accesses = Rvi_coproc.Dport.accesses dport;
    }
  | Error (Rvi_coproc.Normal_driver.Exceeds_memory _) ->
    { row with Report.outcome = Report.Exceeds_memory }
  | Error e ->
    { row with Report.outcome = Report.Failed (Rvi_coproc.Normal_driver.error_to_string e) }

let run_sw (cfg : Config.t) ~app ~input_bytes ~cycles ~work =
  let _engine, kernel = make_kernel cfg in
  ignore (spawn_app kernel app);
  let t0 = Kernel.now kernel in
  let verified = work () in
  Kernel.charge kernel Accounting.Sw_app ~cycles;
  let wall = Simtime.sub (Kernel.now kernel) t0 in
  let row = row_base ~app ~version:"SW" ~input_bytes in
  { (fill_times row kernel ~wall) with Report.verified }

(* {1 adpcmdecode} *)

let adpcm_sw cfg ~input =
  let samples = 2 * Bytes.length input in
  run_sw cfg ~app:"adpcmdecode" ~input_bytes:(Bytes.length input)
    ~cycles:(samples * Rvi_coproc.Adpcm_coproc.sw_cycles_per_sample)
    ~work:(fun () ->
      Bytes.length (Rvi_coproc.Adpcm_ref.decode input)
      = Rvi_coproc.Adpcm_ref.decoded_size (Bytes.length input))

let adpcm_objects input =
  let n = Bytes.length input in
  [
    {
      id = Rvi_coproc.Adpcm_coproc.obj_in;
      dir = Rvi_core.Mapped_object.In;
      stream = true;
      init = Some input;
      size = n;
    };
    {
      id = Rvi_coproc.Adpcm_coproc.obj_out;
      dir = Rvi_core.Mapped_object.Out;
      stream = true;
      init = None;
      size = Rvi_coproc.Adpcm_ref.decoded_size n;
    };
  ]

let adpcm_verify input read_obj =
  Bytes.equal (read_obj Rvi_coproc.Adpcm_coproc.obj_out)
    (Rvi_coproc.Adpcm_ref.decode input)

let adpcm_vim ?pool ?inspect cfg ~input =
  run_virtual ?pool ?inspect
    ~fallback:(fun () ->
      [ (Rvi_coproc.Adpcm_coproc.obj_out, Rvi_coproc.Adpcm_ref.decode input) ])
    cfg ~app:"adpcmdecode" ~bitstream:Calibration.adpcm_bitstream
    ~make:Rvi_coproc.Adpcm_coproc.Virtual.create ~objects:(adpcm_objects input)
    ~params:[ Bytes.length input ]
    ~input_bytes:(Bytes.length input) ~verify:(adpcm_verify input)

let adpcm_normal cfg ~input =
  let module M = Rvi_coproc.Adpcm_coproc.Make (Rvi_coproc.Dport) in
  run_normal cfg ~app:"adpcmdecode" ~clock_hz:Calibration.adpcm_clock_hz
    ~coproc_divide:1 ~make:M.create ~objects:(adpcm_objects input)
    ~params:[ Bytes.length input ]
    ~input_bytes:(Bytes.length input) ~verify:(adpcm_verify input)

(* {1 IDEA} *)

let idea_sw cfg ~key ~input =
  let blocks = Bytes.length input / 8 in
  run_sw cfg ~app:"idea" ~input_bytes:(Bytes.length input)
    ~cycles:(blocks * Rvi_coproc.Idea_coproc.sw_cycles_per_block)
    ~work:(fun () ->
      Bytes.length (Rvi_coproc.Idea_ref.ecb ~key ~decrypt:false input)
      = Bytes.length input)

let idea_objects input =
  let n = Bytes.length input in
  [
    {
      id = Rvi_coproc.Idea_coproc.obj_in;
      dir = Rvi_core.Mapped_object.In;
      stream = true;
      init = Some input;
      size = n;
    };
    {
      id = Rvi_coproc.Idea_coproc.obj_out;
      dir = Rvi_core.Mapped_object.Out;
      stream = true;
      init = None;
      size = n;
    };
  ]

let idea_verify ~key ~decrypt input read_obj =
  Bytes.equal (read_obj Rvi_coproc.Idea_coproc.obj_out)
    (Rvi_coproc.Idea_ref.ecb ~key ~decrypt input)

let idea_params ~decrypt ~key input =
  Rvi_coproc.Idea_coproc.params ~n_blocks:(Bytes.length input / 8) ~decrypt ~key

let idea_vim ?pool ?inspect ?(decrypt = false) cfg ~key ~input =
  run_virtual ?pool ?inspect
    ~fallback:(fun () ->
      [
        ( Rvi_coproc.Idea_coproc.obj_out,
          Rvi_coproc.Idea_ref.ecb ~key ~decrypt input );
      ])
    cfg ~app:"idea" ~bitstream:Calibration.idea_bitstream
    ~make:Rvi_coproc.Idea_coproc.Virtual.create ~objects:(idea_objects input)
    ~params:(idea_params ~decrypt ~key input)
    ~input_bytes:(Bytes.length input)
    ~verify:(idea_verify ~key ~decrypt input)

let idea_normal ?(decrypt = false) cfg ~key ~input =
  let module M = Rvi_coproc.Idea_coproc.Make (Rvi_coproc.Dport) in
  run_normal cfg ~app:"idea" ~clock_hz:Calibration.idea_imu_clock_hz
    ~coproc_divide:Calibration.idea_divide ~make:M.create
    ~objects:(idea_objects input)
    ~params:(idea_params ~decrypt ~key input)
    ~input_bytes:(Bytes.length input)
    ~verify:(idea_verify ~key ~decrypt input)

(* {1 vector add} *)

let bytes_of_words words =
  let b = Bytes.create (4 * Array.length words) in
  Array.iteri
    (fun i w ->
      for k = 0 to 3 do
        Bytes.set b ((4 * i) + k) (Char.chr ((w lsr (8 * k)) land 0xFF))
      done)
    words;
  b

let words_of_bytes b =
  Array.init
    (Bytes.length b / 4)
    (fun i ->
      let byte k = Char.code (Bytes.get b ((4 * i) + k)) in
      byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24))

let vecadd_sw cfg ~a ~b =
  run_sw cfg ~app:"vecadd" ~input_bytes:(8 * Array.length a)
    ~cycles:(Array.length a * Rvi_coproc.Vecadd.sw_cycles_per_element)
    ~work:(fun () ->
      Array.length (Rvi_coproc.Vecadd.reference ~a ~b) = Array.length a)

let vecadd_vim ?pool ?inspect cfg ~a ~b =
  let n = Array.length a in
  let objects =
    [
      {
        id = Rvi_coproc.Vecadd.obj_a;
        dir = Rvi_core.Mapped_object.In;
        stream = true;
        init = Some (bytes_of_words a);
        size = 4 * n;
      };
      {
        id = Rvi_coproc.Vecadd.obj_b;
        dir = Rvi_core.Mapped_object.In;
        stream = true;
        init = Some (bytes_of_words b);
        size = 4 * n;
      };
      {
        id = Rvi_coproc.Vecadd.obj_c;
        dir = Rvi_core.Mapped_object.Out;
        stream = true;
        init = None;
        size = 4 * n;
      };
    ]
  in
  run_virtual ?pool ?inspect
    ~fallback:(fun () ->
      [
        ( Rvi_coproc.Vecadd.obj_c,
          bytes_of_words (Rvi_coproc.Vecadd.reference ~a ~b) );
      ])
    cfg ~app:"vecadd" ~bitstream:Calibration.vecadd_bitstream
    ~make:Rvi_coproc.Vecadd.Virtual.create ~objects ~params:[ n ]
    ~input_bytes:(8 * n)
    ~verify:(fun read_obj ->
      words_of_bytes (read_obj Rvi_coproc.Vecadd.obj_c)
      = Rvi_coproc.Vecadd.reference ~a ~b)

(* {1 FIR} *)

let fir_sw cfg ~coeffs ~shift ~input =
  let taps = Array.length coeffs in
  let n_out = (Bytes.length input / 2) - taps + 1 in
  let cycles =
    n_out
    * ((taps * Rvi_coproc.Fir_ref.sw_cycles_per_tap)
      + Rvi_coproc.Fir_ref.sw_cycles_per_output)
  in
  run_sw cfg ~app:"fir" ~input_bytes:(Bytes.length input) ~cycles
    ~work:(fun () ->
      Bytes.length (Rvi_coproc.Fir_ref.filter_bytes ~coeffs ~shift input)
      = Rvi_coproc.Fir_ref.output_bytes ~taps (Bytes.length input))

let fir_objects ~coeffs input =
  let taps = Array.length coeffs in
  let coeff_bytes =
    let b = Bytes.create (2 * taps) in
    Array.iteri
      (fun i c ->
        let u = c land 0xFFFF in
        Bytes.set b (2 * i) (Char.chr (u land 0xFF));
        Bytes.set b ((2 * i) + 1) (Char.chr ((u lsr 8) land 0xFF)))
      coeffs;
    b
  in
  [
    {
      id = Rvi_coproc.Fir_coproc.obj_in;
      dir = Rvi_core.Mapped_object.In;
      stream = true;
      init = Some input;
      size = Bytes.length input;
    };
    {
      id = Rvi_coproc.Fir_coproc.obj_coeff;
      dir = Rvi_core.Mapped_object.In;
      stream = false;
      init = Some coeff_bytes;
      size = 2 * taps;
    };
    {
      id = Rvi_coproc.Fir_coproc.obj_out;
      dir = Rvi_core.Mapped_object.Out;
      stream = true;
      init = None;
      size = Rvi_coproc.Fir_ref.output_bytes ~taps (Bytes.length input);
    };
  ]

let fir_params ~coeffs ~shift input =
  let taps = Array.length coeffs in
  Rvi_coproc.Fir_coproc.params
    ~n_out:((Bytes.length input / 2) - taps + 1)
    ~taps ~shift

let fir_verify ~coeffs ~shift input read_obj =
  Bytes.equal
    (read_obj Rvi_coproc.Fir_coproc.obj_out)
    (Rvi_coproc.Fir_ref.filter_bytes ~coeffs ~shift input)

let fir_vim ?pool ?inspect cfg ~coeffs ~shift ~input =
  run_virtual ?pool ?inspect
    ~fallback:(fun () ->
      [
        ( Rvi_coproc.Fir_coproc.obj_out,
          Rvi_coproc.Fir_ref.filter_bytes ~coeffs ~shift input );
      ])
    cfg ~app:"fir" ~bitstream:Calibration.fir_bitstream
    ~make:Rvi_coproc.Fir_coproc.Virtual.create
    ~objects:(fir_objects ~coeffs input)
    ~params:(fir_params ~coeffs ~shift input)
    ~input_bytes:(Bytes.length input)
    ~verify:(fir_verify ~coeffs ~shift input)

let fir_normal cfg ~coeffs ~shift ~input =
  let module M = Rvi_coproc.Fir_coproc.Make (Rvi_coproc.Dport) in
  run_normal cfg ~app:"fir" ~clock_hz:Calibration.adpcm_clock_hz
    ~coproc_divide:1 ~make:M.create
    ~objects:(fir_objects ~coeffs input)
    ~params:(fir_params ~coeffs ~shift input)
    ~input_bytes:(Bytes.length input)
    ~verify:(fir_verify ~coeffs ~shift input)

(* {1 IDEA in CBC mode (extension)} *)

let idea_cbc_objects = idea_objects

let idea_cbc_vim ?pool ?inspect cfg ~mode ~key ~iv ~input =
  let decrypt =
    match mode with
    | Rvi_coproc.Idea_coproc.Ecb_decrypt | Rvi_coproc.Idea_coproc.Cbc_decrypt ->
      true
    | Rvi_coproc.Idea_coproc.Ecb_encrypt | Rvi_coproc.Idea_coproc.Cbc_encrypt ->
      false
  in
  let expected =
    match mode with
    | Rvi_coproc.Idea_coproc.Ecb_encrypt | Rvi_coproc.Idea_coproc.Ecb_decrypt ->
      Rvi_coproc.Idea_ref.ecb ~key ~decrypt input
    | Rvi_coproc.Idea_coproc.Cbc_encrypt | Rvi_coproc.Idea_coproc.Cbc_decrypt ->
      Rvi_coproc.Idea_ref.cbc ~key ~decrypt ~iv input
  in
  let row =
    run_virtual ?pool ?inspect
      ~fallback:(fun () -> [ (Rvi_coproc.Idea_coproc.obj_out, expected) ])
      cfg ~app:"idea" ~bitstream:Calibration.idea_bitstream
      ~make:Rvi_coproc.Idea_coproc.Virtual.create
      ~objects:(idea_cbc_objects input)
      ~params:
        (Rvi_coproc.Idea_coproc.params_mode
           ~n_blocks:(Bytes.length input / 8)
           ~mode ~key ~iv ())
      ~input_bytes:(Bytes.length input)
      ~verify:(fun read_obj ->
        Bytes.equal (read_obj Rvi_coproc.Idea_coproc.obj_out) expected)
  in
  { row with Report.version = "VIM/" ^ Rvi_coproc.Idea_coproc.mode_name mode }
