type rule = { kind : Fault.kind; rate : float }

type t = rule list

let rate t kind =
  match List.find_opt (fun r -> r.kind = kind) t with
  | Some r -> r.rate
  | None -> 0.0

(* Reference rates for ["all"] and for the default campaign: per-access
   faults (bit flips, wrong results, hangs) fire orders of magnitude less
   often than per-service faults (copies, interrupts), or nearly every run
   would need the watchdog. *)
(* Per-access kinds (flips, hangs, wrong results: one opportunity per PLD
   write or translation, tens of thousands per run) are calibrated orders
   of magnitude below per-service kinds (one opportunity per page copy or
   interrupt) so that a default campaign run sees O(1) faults in total —
   enough to exercise recovery without exhausting every retry budget. *)
let default_rate = function
  | Fault.Dpram_flip -> 1e-5
  | Fault.Ahb_error -> 0.02
  | Fault.Dma_error -> 0.02
  | Fault.Tlb_corrupt -> 0.01
  | Fault.Coproc_hang -> 3e-6
  | Fault.Coproc_wrong -> 1e-5
  | Fault.Irq_lost -> 0.05
  | Fault.Irq_spurious -> 0.02
  (* SVA-only kinds: one opportunity per page-table walk (ptw, hang) or
     per L2 refill (l2-corrupt). Walks number in the tens to hundreds per
     run, so the per-walk rates sit between the per-access and per-service
     bands; hangs are expensive (a whole watchdog period each) and stay
     rarer. *)
  | Fault.Ptw_error -> 0.01
  | Fault.L2_corrupt -> 0.01
  | Fault.Walker_hang -> 1e-4

let scale factor t =
  if factor < 0.0 then invalid_arg "Spec.scale: negative factor";
  List.map (fun r -> { r with rate = Float.min 1.0 (r.rate *. factor) }) t

let all ?(factor = 1.0) () =
  scale factor
    (List.map (fun kind -> { kind; rate = default_rate kind }) Fault.all)

let parse s =
  let ( let* ) = Result.bind in
  let parse_rule acc item =
    let* acc = acc in
    match String.split_on_char ':' (String.trim item) with
    | [ name ] | [ name; "" ] -> (
      (* bare name: the kind at its default rate *)
      match (name, Fault.of_name name) with
      | "all", _ -> Ok (acc @ all ())
      | _, Some kind -> Ok (acc @ [ { kind; rate = default_rate kind } ])
      | _, None -> Error (Printf.sprintf "unknown fault kind %S" name))
    | [ name; rate ] -> (
      let* rate =
        match float_of_string_opt rate with
        | Some r when r >= 0.0 && r <= 1.0 -> Ok r
        | Some _ -> Error (Printf.sprintf "rate out of [0,1] in %S" item)
        | None -> Error (Printf.sprintf "bad rate in %S" item)
      in
      match (name, Fault.of_name name) with
      | "all", _ ->
        Ok (acc @ List.map (fun kind -> { kind; rate }) Fault.all)
      | _, Some kind -> Ok (acc @ [ { kind; rate } ])
      | _, None -> Error (Printf.sprintf "unknown fault kind %S" name))
    | _ -> Error (Printf.sprintf "malformed rule %S (want kind[:rate])" item)
  in
  if String.trim s = "" then Error "empty specification"
  else
    let* rules =
      List.fold_left parse_rule (Ok []) (String.split_on_char ',' s)
    in
    (* Later rules override earlier ones (so "all:0.01,hang:0" works). *)
    let deduped =
      List.fold_left
        (fun acc r -> { r with rate = r.rate } :: List.filter (fun o -> o.kind <> r.kind) acc)
        [] rules
    in
    Ok
      (List.filter_map
         (fun kind -> List.find_opt (fun r -> r.kind = kind) deduped)
         Fault.all)

let to_string t =
  String.concat ","
    (List.map (fun r -> Printf.sprintf "%s:%g" (Fault.name r.kind) r.rate) t)

let grammar =
  "SPEC ::= RULE (',' RULE)* ; RULE ::= KIND [':' RATE] ; KIND ::= 'all' | \
   'dpram' | 'ahb' | 'dma' | 'tlb' | 'hang' | 'wrong' | 'irq-lost' | \
   'irq-spurious' | 'ptw' | 'l2-corrupt' | 'walker-hang' ; RATE ::= float in [0,1] (per injection opportunity; \
   omitted = the kind's default). Later rules override earlier ones, so \
   'all:0.01,hang:0' injects everything but hangs."
