(** Interrupt controller.

    Hardware (the IMU) raises a line; the simulated CPU notices pending
    lines between events and dispatches the registered handler. Lower line
    numbers have higher priority, matching the Excalibur's vectored
    controller. Handlers run in interrupt context — they must not sleep. *)

type t

val create : ?lines:int -> unit -> t
(** [lines] defaults to 8. *)

val register : t -> line:int -> name:string -> (unit -> unit) -> unit
(** Installs a handler. Raises [Invalid_argument] if the line is out of
    range or already claimed. *)

val raise_line : t -> line:int -> unit
(** Marks the line pending. A second edge while already pending coalesces
    (level-triggered) and is counted as ["coalesced_raises"]. With an
    injector attached, each raise is a {!Rvi_inject.Fault.Irq_lost}
    opportunity: the edge is dropped and counted as ["dropped_raises"],
    leaving recovery to device-register polling. *)

val set_wake : t -> (unit -> unit) option -> unit
(** Installs (or clears) a hook called whenever a line turns pending (after
    loss/coalescing filtering). The kernel points it at
    {!Rvi_sim.Engine.request_break} so a clock domain batching edges inline
    stops at the raising edge and the execution loop services the
    interrupt — the batched analogue of the CPU sampling its IRQ input
    every cycle. *)

val set_observer : t -> (line:int -> name:string -> unit) option -> unit
(** Installs (or clears) a hook called once per raising edge — each time a
    line turns pending — with the line number and its handler's name. The
    observability layer uses it to timestamp interrupt arrivals. *)

val any_pending : t -> bool

val dispatch_one : t -> bool
(** Services the highest-priority pending line: clears it and runs its
    handler. Returns [false] if nothing was pending. A pending line without
    a handler is cleared and counted as ["spurious_irqs"] rather than
    faulting the kernel. *)

val dispatch_all : t -> int
(** Services until nothing is pending; returns the number serviced. *)

val raised_total : t -> int
(** Total interrupts raised since creation. *)

val reset : t -> unit
(** Clears every pending line, the counters, the observer and the injector
    binding, keeping registered handlers and the wake hook — the platform
    pool's re-arm. *)

val stats : t -> Rvi_sim.Stats.t
(** Robustness counters: ["spurious_irqs"], ["coalesced_raises"],
    ["dropped_raises"]. *)

val set_injector : t -> Rvi_inject.Injector.t option -> unit
