(** Simulated time.

    Time is counted in integer picoseconds, which lets a 63-bit [int] span
    about 53 days of simulated time — ample for runs that the paper reports
    in milliseconds — while still resolving a single edge of any clock up to
    the terahertz range. *)

type t = private int
(** A point in (or span of) simulated time, in picoseconds. *)

val zero : t

val of_ps : int -> t
(** [of_ps n] is [n] picoseconds. Raises [Invalid_argument] if [n < 0]. *)

val of_ns : int -> t
val of_us : int -> t
val of_ms : int -> t

val to_ps : t -> int

val to_ns : t -> float
val to_us : t -> float
val to_ms : t -> float
val to_s : t -> float

val add : t -> t -> t
val sub : t -> t -> t
(** [sub a b] raises [Invalid_argument] if the result would be negative. *)

val mul : t -> int -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val period_of_hz : int -> t
(** [period_of_hz f] is the period of a clock of frequency [f] Hz, rounded
    down to the picosecond. Raises [Invalid_argument] if [f <= 0] or if [f]
    exceeds 10^12 (sub-picosecond periods are not representable). *)

val of_cycles : hz:int -> int -> t
(** [of_cycles ~hz n] is the duration of [n] cycles of a clock of frequency
    [hz]. Computed as [n * period_of_hz hz]. *)

val cycles_of : hz:int -> t -> int
(** [cycles_of ~hz t] is the number of whole cycles of a [hz] clock that fit
    in [t]. *)

val pp : Format.formatter -> t -> unit
(** Pretty-prints with an automatically chosen unit, e.g. ["1.500ms"]. *)
