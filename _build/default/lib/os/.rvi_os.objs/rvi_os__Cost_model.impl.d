lib/os/cost_model.ml: Rvi_sim
