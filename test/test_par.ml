(* Tests for the sharded parallel executor (rvi_par) and the determinism
   contract of the parallel fault-campaign runner built on top of it.

   The load-bearing property here is the one the CLI's [--jobs] flag
   advertises: for any workload, seed, and domain count, a sharded
   campaign produces exactly the results of the serial one -- same
   per-run classification vector, same merged statistics, same trace
   payload. Domains only change wall-clock, never output. *)

module Par = Rvi_par.Par
module Faults = Rvi_harness.Faults
module Trace = Rvi_obs.Trace

let check = Alcotest.check
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* {1 Par core} *)

let domains_gen = QCheck.Gen.oneofl [ 1; 2; 4; 8 ]
let domains_arb = QCheck.make ~print:string_of_int domains_gen

let prop_map_equals_list_map =
  QCheck.Test.make ~name:"Par.map agrees with List.map for any domains/chunk"
    ~count:150
    QCheck.(triple (list small_int) domains_arb (int_range 1 5))
    (fun (xs, domains, chunk) ->
      let f x = (x * x) - (3 * x) + 7 in
      Par.map ~domains ~chunk f xs = List.map f xs)

let prop_mapi_equals_list_mapi =
  QCheck.Test.make ~name:"Par.mapi agrees with List.mapi" ~count:150
    QCheck.(pair (list small_int) domains_arb)
    (fun (xs, domains) ->
      let f i x = (i * 31) + x in
      Par.mapi ~domains f xs = List.mapi f xs)

let prop_map_default_chunk =
  QCheck.Test.make ~name:"Par.map default chunk preserves order" ~count:100
    QCheck.(pair (list_of_size (Gen.int_range 0 200) small_int) domains_arb)
    (fun (xs, domains) -> Par.map ~domains (fun x -> x + 1) xs
                          = List.map (fun x -> x + 1) xs)

let test_shard_of_index () =
  checki "chunk 4, index 0" 0 (Par.shard_of_index ~chunk:4 0);
  checki "chunk 4, index 3" 0 (Par.shard_of_index ~chunk:4 3);
  checki "chunk 4, index 4" 1 (Par.shard_of_index ~chunk:4 4);
  checki "chunk 1, index 9" 9 (Par.shard_of_index ~chunk:1 9);
  Alcotest.check_raises "chunk 0 rejected"
    (Invalid_argument "Par.shard_of_index: non-positive chunk") (fun () ->
      ignore (Par.shard_of_index ~chunk:0 1))

exception Boom of int

let test_exception_lowest_index () =
  (* Both the serial and the parallel path must surface the exception of
     the lowest failing index, so a crash report does not depend on the
     domain count. *)
  let f i = if i mod 3 = 2 then raise (Boom i) else i in
  List.iter
    (fun domains ->
      match Par.map ~domains ~chunk:2 f (List.init 20 Fun.id) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i ->
        checki (Printf.sprintf "lowest failing index at domains=%d" domains) 2 i)
    [ 1; 2; 4 ]

let test_map_merge () =
  let xs = List.init 100 Fun.id in
  let sum =
    Par.map_merge ~domains:4 ~chunk:7 ~f:(fun x -> x * 2) ~merge:( + ) 0 xs
  in
  checki "map_merge sums doubled items" 9900 sum

let test_recommended_domains () =
  checkb "recommended_domains >= 1" true (Par.recommended_domains () >= 1)

(* {1 Campaign determinism} *)

let classification results =
  List.map (fun r -> (r.Faults.index, r.Faults.seed, r.Faults.outcome)) results

(* Campaign runs cost tens of milliseconds each, so the property uses
   few runs and few qcheck cases; breadth comes from the seed, runs and
   chunk dimensions all varying. *)
let prop_campaign_jobs_invariant =
  QCheck.Test.make
    ~name:"Faults.campaign classification and summary independent of domains"
    ~count:6
    QCheck.(triple (int_range 1 5) (int_bound 10_000) (int_range 1 3))
    (fun (runs, seed, chunk) ->
      let serial = Faults.campaign ~runs ~seed () in
      List.for_all
        (fun jobs ->
          let par = Faults.campaign ~jobs ~chunk ~runs ~seed () in
          classification par = classification serial
          && Faults.summarize par = Faults.summarize serial)
        [ 2; 4; 8 ])

let test_campaign_csv_identical () =
  let runs = 8 and seed = 2004 in
  let serial = Faults.campaign ~runs ~seed () in
  List.iter
    (fun jobs ->
      let par = Faults.campaign ~jobs ~runs ~seed () in
      check Alcotest.string
        (Printf.sprintf "csv at jobs=%d equals serial" jobs)
        (Faults.csv serial) (Faults.csv par))
    [ 2; 4; 8 ]

let test_campaign_trace_merge () =
  (* The merged parallel trace must carry the same event payloads in the
     same order as the serial trace; only the shard stamps may differ
     (serial records everything as shard 0). *)
  let runs = 6 and seed = 11 in
  let payload t =
    List.map (fun e -> (e.Trace.at, e.Trace.dur, e.Trace.kind)) (Trace.events t)
  in
  let serial_t = Trace.create () in
  ignore (Faults.campaign ~trace:serial_t ~runs ~seed ());
  let par_t = Trace.create () in
  ignore (Faults.campaign ~trace:par_t ~jobs:3 ~chunk:1 ~runs ~seed ());
  checkb "trace payloads identical" true (payload serial_t = payload par_t);
  let shards =
    List.sort_uniq compare
      (List.map (fun e -> e.Trace.shard) (Trace.events par_t))
  in
  checkb "parallel trace spans several shards" true (List.length shards > 1);
  let seqs = List.map (fun e -> e.Trace.seq) (Trace.events par_t) in
  checkb "merged seq restamped contiguously" true
    (seqs = List.init (List.length seqs) Fun.id)

let test_campaign_progress_order () =
  let order = ref [] in
  let progress r = order := r.Faults.index :: !order in
  ignore (Faults.campaign ~progress ~jobs:4 ~runs:7 ~seed:3 ());
  check
    Alcotest.(list int)
    "progress fires in run order" [ 0; 1; 2; 3; 4; 5; 6 ] (List.rev !order)

(* {1 Pool edge cases}

   The persistent-pool path has its own scheduling loop, so the
   boundary conditions (nothing to do, one chunk covering everything,
   an exception in the very last chunk) and cross-job reuse each get a
   dedicated check rather than relying on the random properties to
   stumble over them. *)

let test_pool_edge_cases () =
  let pool = Par.Pool.create ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> Par.Pool.shutdown pool)
    (fun () ->
      checkb "empty list" true (Par.Pool.map pool (fun x -> x * 2) [] = []);
      (* chunk larger than the list: a single chunk runs everything *)
      checkb "chunk > n" true
        (Par.Pool.map pool ~chunk:100 (fun x -> x + 1) [ 1; 2; 3 ]
        = [ 2; 3; 4 ]);
      (* an exception in the last chunk must surface after the join and
         leave the pool usable for the next job *)
      (match
         Par.Pool.map pool ~chunk:2
           (fun x -> if x = 9 then raise (Boom x) else x)
           [ 1; 2; 3; 4; 9 ]
       with
      | (_ : int list) -> Alcotest.fail "expected Boom"
      | exception Boom 9 -> ());
      checkb "pool alive after exception" true
        (Par.Pool.map pool (fun x -> x - 1) [ 5; 6 ] = [ 4; 5 ]))

let test_pool_reused_across_campaigns () =
  (* Two campaigns back to back through the same shared pool must both
     match their serial classification — the pool must not leak state
     (chunk counters, pending exceptions) from one job into the next. *)
  let classify runs seed jobs =
    List.map
      (fun r -> Faults.outcome_name r.Faults.outcome)
      (Faults.campaign ~runs ~seed ~jobs ())
  in
  let serial_a = classify 8 7 1 and serial_b = classify 8 1234 1 in
  (* jobs:2 routes through Par.Pool.shared, reused by the second call *)
  checkb "first campaign" true (classify 8 7 2 = serial_a);
  checkb "second campaign same pool" true (classify 8 1234 2 = serial_b)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_map_equals_list_map;
    QCheck_alcotest.to_alcotest prop_mapi_equals_list_mapi;
    QCheck_alcotest.to_alcotest prop_map_default_chunk;
    Alcotest.test_case "par/shard-of-index" `Quick test_shard_of_index;
    Alcotest.test_case "par/exception-lowest-index" `Quick
      test_exception_lowest_index;
    Alcotest.test_case "par/map-merge" `Quick test_map_merge;
    Alcotest.test_case "par/recommended-domains" `Quick
      test_recommended_domains;
    QCheck_alcotest.to_alcotest prop_campaign_jobs_invariant;
    Alcotest.test_case "par/campaign-csv-identical" `Quick
      test_campaign_csv_identical;
    Alcotest.test_case "par/campaign-trace-merge" `Quick
      test_campaign_trace_merge;
    Alcotest.test_case "par/campaign-progress-order" `Quick
      test_campaign_progress_order;
    Alcotest.test_case "par/pool-edge-cases" `Quick test_pool_edge_cases;
    Alcotest.test_case "par/pool-reused-across-campaigns" `Quick
      test_pool_reused_across_campaigns;
  ]
