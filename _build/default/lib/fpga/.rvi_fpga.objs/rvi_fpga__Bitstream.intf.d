lib/fpga/bitstream.mli: Format
