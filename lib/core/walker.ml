module Stats = Rvi_sim.Stats

type config = { cycles_per_level : int }

let default_config = { cycles_per_level = 12 }

type t = {
  cfg : config;
  stats : Stats.t;
  c_walks : Stats.counter;
  c_walk_faults : Stats.counter;
}

let create cfg =
  let stats = Stats.create () in
  {
    cfg;
    stats;
    c_walks = Stats.counter stats "walks";
    c_walk_faults = Stats.counter stats "walk_faults";
  }

type outcome = { frame : int option; cycles : int }

let walk t pt ~vpn =
  let pte, levels = Rvi_os.Page_table.walk pt ~vpn in
  let cycles = levels * t.cfg.cycles_per_level in
  Stats.tick t.c_walks;
  Stats.observe t.stats "walk_cycles" (float_of_int cycles);
  match pte with
  | Some pte -> { frame = Some pte.Rvi_os.Page_table.frame; cycles }
  | None ->
    Stats.tick t.c_walk_faults;
    { frame = None; cycles }

let config t = t.cfg
let stats t = t.stats
let reset t = Stats.soft_reset t.stats
