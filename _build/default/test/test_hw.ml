(* Unit and property tests for the hardware-modelling helpers (rvi_hw). *)

module Bits = Rvi_hw.Bits
module Reg = Rvi_hw.Reg
module Fsm = Rvi_hw.Fsm
module Wave = Rvi_hw.Wave

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* {1 Bits} *)

let test_bits_make () =
  checki "truncation" 0x3 (Bits.to_int (Bits.make ~width:2 0xF));
  checki "width" 12 (Bits.width (Bits.make ~width:12 0));
  checki "max" 255 (Bits.max_int ~width:8);
  checki "ones" 0x1F (Bits.to_int (Bits.ones ~width:5));
  Alcotest.check_raises "width 0" (Invalid_argument "Bits: width out of [1, 62]")
    (fun () -> ignore (Bits.make ~width:0 1));
  Alcotest.check_raises "width 63" (Invalid_argument "Bits: width out of [1, 62]")
    (fun () -> ignore (Bits.make ~width:63 1));
  Alcotest.check_raises "negative" (Invalid_argument "Bits.make: negative value")
    (fun () -> ignore (Bits.make ~width:4 (-1)))

let test_bits_arith () =
  let b8 = Bits.make ~width:8 in
  checki "add wrap" 4 (Bits.to_int (Bits.add (b8 250) (b8 10)));
  checki "sub wrap" 246 (Bits.to_int (Bits.sub (b8 0) (b8 10)));
  checki "succ wrap" 0 (Bits.to_int (Bits.succ (b8 255)));
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Bits.add: width mismatch (8 vs 4)") (fun () ->
      ignore (Bits.add (b8 1) (Bits.make ~width:4 1)))

let test_bits_logic () =
  let b = Bits.make ~width:8 in
  checki "and" 0x0C (Bits.to_int (Bits.logand (b 0x3C) (b 0x0F)));
  checki "or" 0x3F (Bits.to_int (Bits.logor (b 0x3C) (b 0x0F)));
  checki "xor" 0x33 (Bits.to_int (Bits.logxor (b 0x3C) (b 0x0F)));
  checki "not" 0xC3 (Bits.to_int (Bits.lognot (b 0x3C)))

let test_bits_shift () =
  let b = Bits.make ~width:8 0x81 in
  checki "shl" 0x04 (Bits.to_int (Bits.shift_left b 2));
  checki "shr" 0x20 (Bits.to_int (Bits.shift_right b 2));
  checki "shl overflow" 0 (Bits.to_int (Bits.shift_left b 8));
  checki "shr overflow" 0 (Bits.to_int (Bits.shift_right b 9))

let test_bits_slice () =
  let v = Bits.make ~width:12 0xABC in
  checki "slice mid" 0xB (Bits.to_int (Bits.slice ~hi:7 ~lo:4 v));
  checki "slice width" 4 (Bits.width (Bits.slice ~hi:7 ~lo:4 v));
  checki "concat" 0xABC
    (Bits.to_int (Bits.concat (Bits.make ~width:4 0xA) (Bits.make ~width:8 0xBC)));
  checkb "bit 2" true (Bits.bit v 2);
  checkb "bit 0" false (Bits.bit v 0);
  checki "set_bit" 0xABD (Bits.to_int (Bits.set_bit v 0 true));
  checki "clear_bit" 0xAB8 (Bits.to_int (Bits.set_bit v 2 false))

let test_bits_pp () =
  let s pp v = Format.asprintf "%a" pp v in
  Alcotest.(check string) "hex" "12'h0a3" (s Bits.pp (Bits.make ~width:12 0xA3));
  Alcotest.(check string) "bin" "4'b1010" (s Bits.pp_bin (Bits.make ~width:4 0xA))

(* Substring search without depending on Str. *)
let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let gen_bits width =
  QCheck.map
    (fun v -> Bits.make ~width (abs v land Bits.max_int ~width))
    QCheck.int

let prop_add_comm =
  QCheck.Test.make ~name:"bits add commutative (width 16)" ~count:300
    (QCheck.pair (gen_bits 16) (gen_bits 16))
    (fun (a, b) -> Bits.equal (Bits.add a b) (Bits.add b a))

let prop_add_sub =
  QCheck.Test.make ~name:"bits (a+b)-b = a" ~count:300
    (QCheck.pair (gen_bits 16) (gen_bits 16))
    (fun (a, b) -> Bits.equal (Bits.sub (Bits.add a b) b) a)

let prop_not_involutive =
  QCheck.Test.make ~name:"bits lognot involutive" ~count:300 (gen_bits 20)
    (fun a -> Bits.equal (Bits.lognot (Bits.lognot a)) a)

let prop_xor_self =
  QCheck.Test.make ~name:"bits a xor a = 0" ~count:300 (gen_bits 24) (fun a ->
      Bits.to_int (Bits.logxor a a) = 0)

let prop_slice_concat =
  QCheck.Test.make ~name:"bits concat . slice = id" ~count:300 (gen_bits 24)
    (fun v ->
      let hi = Bits.slice ~hi:23 ~lo:12 v in
      let lo = Bits.slice ~hi:11 ~lo:0 v in
      Bits.equal (Bits.concat hi lo) v)

(* {1 Reg} *)

let test_reg () =
  let r = Reg.create 1 in
  checki "initial" 1 (Reg.get r);
  Reg.set r 7;
  checki "not visible before commit" 1 (Reg.get r);
  checki "peek" 7 (Reg.peek_next r);
  Reg.commit r;
  checki "after commit" 7 (Reg.get r);
  Reg.set r 8;
  Reg.set r 9;
  Reg.commit r;
  checki "last write wins" 9 (Reg.get r);
  Reg.reset r 0;
  checki "reset cur" 0 (Reg.get r);
  checki "reset next" 0 (Reg.peek_next r)

(* {1 Fsm} *)

type st = A | B | C

let show_st = function A -> "A" | B -> "B" | C -> "C"

let test_fsm () =
  let m = Fsm.create ~name:"m" ~init:A ~show:show_st in
  checkb "init" true (Fsm.state m = A);
  Fsm.goto m B;
  checkb "pre-commit" true (Fsm.state m = A);
  Fsm.commit m;
  checkb "post-commit" true (Fsm.state m = B);
  checki "transitions" 1 (Fsm.transitions m);
  Fsm.stay m;
  Fsm.commit m;
  checki "stay is not a transition" 1 (Fsm.transitions m);
  Alcotest.(check string) "show" "B" (Fsm.show m);
  Alcotest.(check string) "name" "m" (Fsm.name m);
  Fsm.goto m C;
  Fsm.commit m;
  checki "second transition" 2 (Fsm.transitions m);
  Fsm.reset m A;
  checkb "reset" true (Fsm.state m = A)

(* {1 Wave} *)

let test_wave_capture () =
  let w = Wave.create () in
  let v = ref 0 in
  Wave.add_signal w ~name:"sig" ~width:4 (fun () -> !v);
  for i = 0 to 5 do
    v := i;
    Wave.sample w
  done;
  checki "length" 6 (Wave.length w);
  Alcotest.(check (array int)) "values" [| 0; 1; 2; 3; 4; 5 |] (Wave.values w "sig");
  Alcotest.check_raises "unknown signal" Not_found (fun () ->
      ignore (Wave.values w "nope"))

let test_wave_width_mask () =
  let w = Wave.create () in
  Wave.add_signal w ~name:"s" ~width:3 (fun () -> 0xFF);
  Wave.sample w;
  Alcotest.(check (array int)) "masked to width" [| 7 |] (Wave.values w "s")

let test_wave_ascii () =
  let w = Wave.create () in
  let bitv = ref 0 and busv = ref 0 in
  Wave.add_signal w ~name:"bit" ~width:1 (fun () -> !bitv);
  Wave.add_signal w ~name:"bus" ~width:8 (fun () -> !busv);
  List.iter
    (fun (b, v) ->
      bitv := b;
      busv := v;
      Wave.sample w)
    [ (0, 0); (1, 5); (1, 5); (0, 9) ];
  let art = Wave.render_ascii w in
  checkb "has rising edge" true (String.contains art '/');
  checkb "has falling edge" true (String.contains art '\\');
  checkb "shows bus value 5" true (contains_sub art "|5")

let test_wave_vcd () =
  let w = Wave.create () in
  let v = ref 0 in
  Wave.add_signal w ~name:"x" ~width:2 (fun () -> !v);
  Wave.sample w;
  v := 3;
  Wave.sample w;
  let vcd = Wave.to_vcd ~timescale_ps:500 w in
  checkb "timescale" true (contains_sub vcd "$timescale 500 ps $end");
  checkb "var decl" true (contains_sub vcd "$var wire 2");
  checkb "timestamp" true (contains_sub vcd "#500");
  checkb "value change" true (contains_sub vcd "b11 ")

let suite =
  [
    Alcotest.test_case "bits/make" `Quick test_bits_make;
    Alcotest.test_case "bits/arith" `Quick test_bits_arith;
    Alcotest.test_case "bits/logic" `Quick test_bits_logic;
    Alcotest.test_case "bits/shift" `Quick test_bits_shift;
    Alcotest.test_case "bits/slice-concat" `Quick test_bits_slice;
    Alcotest.test_case "bits/pp" `Quick test_bits_pp;
    QCheck_alcotest.to_alcotest prop_add_comm;
    QCheck_alcotest.to_alcotest prop_add_sub;
    QCheck_alcotest.to_alcotest prop_not_involutive;
    QCheck_alcotest.to_alcotest prop_xor_self;
    QCheck_alcotest.to_alcotest prop_slice_concat;
    Alcotest.test_case "reg/two-phase" `Quick test_reg;
    Alcotest.test_case "fsm/transitions" `Quick test_fsm;
    Alcotest.test_case "wave/capture" `Quick test_wave_capture;
    Alcotest.test_case "wave/width-mask" `Quick test_wave_width_mask;
    Alcotest.test_case "wave/ascii" `Quick test_wave_ascii;
    Alcotest.test_case "wave/vcd" `Quick test_wave_vcd;
  ]
