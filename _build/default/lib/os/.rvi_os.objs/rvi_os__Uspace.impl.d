lib/os/uspace.ml: Bytes Kernel Rvi_mem
