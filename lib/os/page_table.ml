(* A real two-level radix structure rather than a flat map: the directory
   indexes leaves by the high VPN bits, leaves hold one PTE slot per low
   VPN value. The hardware walker's cost model depends on how many levels
   a lookup actually touches, so [walk] reports it. *)

let leaf_bits = 9
let leaf_size = 1 lsl leaf_bits

type pte = { frame : int; mutable dirty : bool }

type t = {
  directory : (int, pte option array) Hashtbl.t;
  mutable mapped : int;
}

let create () = { directory = Hashtbl.create 16; mapped = 0 }
let levels = 2
let split vpn = (vpn lsr leaf_bits, vpn land (leaf_size - 1))

let find t ~vpn =
  if vpn < 0 then None
  else
    let dir, idx = split vpn in
    match Hashtbl.find_opt t.directory dir with
    | None -> None
    | Some leaf -> leaf.(idx)

let walk t ~vpn =
  if vpn < 0 then (None, 1)
  else
    let dir, idx = split vpn in
    match Hashtbl.find_opt t.directory dir with
    | None -> (None, 1) (* directory miss: only the first level was read *)
    | Some leaf -> (leaf.(idx), levels)

let map t ~vpn ~frame =
  if vpn < 0 then invalid_arg "Page_table.map: negative vpn";
  let dir, idx = split vpn in
  let leaf =
    match Hashtbl.find_opt t.directory dir with
    | Some leaf -> leaf
    | None ->
      let leaf = Array.make leaf_size None in
      Hashtbl.replace t.directory dir leaf;
      leaf
  in
  (match leaf.(idx) with
  | Some _ -> invalid_arg (Printf.sprintf "Page_table.map: vpn %d already mapped" vpn)
  | None -> ());
  leaf.(idx) <- Some { frame; dirty = false };
  t.mapped <- t.mapped + 1

let unmap t ~vpn =
  if vpn >= 0 then
    let dir, idx = split vpn in
    match Hashtbl.find_opt t.directory dir with
    | None -> ()
    | Some leaf ->
      if leaf.(idx) <> None then begin
        leaf.(idx) <- None;
        t.mapped <- t.mapped - 1
      end

let mapped_count t = t.mapped

let clear t =
  Hashtbl.reset t.directory;
  t.mapped <- 0
