(* Open/closed-loop load generation.

   Everything is a pure function of the seed: the tenant plan (weights,
   application mixes) comes from one derived PRNG, each request's
   workload from a PRNG derived by request id, and the open-loop arrival
   process from a third. Interarrival jitter is integer picoseconds
   drawn uniformly in [base/2, 3*base/2) — no transcendental functions,
   so golden outputs are bit-stable across libm implementations. *)

module Simtime = Rvi_sim.Simtime
module Prng = Rvi_sim.Prng
module Jobs = Rvi_harness.Jobs

type mode =
  | Closed  (** one outstanding request per tenant; resubmit on completion *)
  | Open of int  (** aggregate arrival rate, requests per second *)

type t = {
  seed : int;
  mode : mode;
  total : int;
  base_bytes : int;
  tenants : Tenant.t array;
  mix : Jobs.app_kind array array;  (* per-tenant application cycle *)
  issue_idx : int array;  (* per-tenant issue counter (kind cycling) *)
  mutable issued : int;  (* request ids handed out *)
  mutable primed : bool;
  (* open loop: the single pending arrival *)
  arrival_g : Prng.t;
  mutable next_at : Simtime.t;
  mutable next_tenant : int;
}

let kinds = [| Jobs.Adpcm; Jobs.Idea; Jobs.Fir |]

let plan_tenant g ~id ~sq_capacity ~cq_capacity =
  let weight = 1 + Prng.int g 4 in
  let n_kinds = 1 + Prng.int g 3 in
  let mix = Array.init n_kinds (fun _ -> kinds.(Prng.int g 3)) in
  (Tenant.create ~id ~weight ~sq_capacity ~cq_capacity, mix)

let create ~seed ~tenants:n ~requests ~rate_hz ~bytes ?(sq_capacity = 64)
    ?(cq_capacity = 64) () =
  if n <= 0 then invalid_arg "Loadgen.create: need at least one tenant";
  if requests < 0 then invalid_arg "Loadgen.create: negative request count";
  let gplan = Prng.derive ~seed:(seed lxor 0x5eed1e) ~index:0 in
  let planned = Array.init n (fun id -> plan_tenant gplan ~id ~sq_capacity ~cq_capacity) in
  let arrival_g = Prng.derive ~seed:(seed lxor 0x0a41c) ~index:1 in
  let t =
    {
      seed;
      mode = (if rate_hz > 0 then Open rate_hz else Closed);
      total = requests;
      base_bytes = max 1 bytes;
      tenants = Array.map fst planned;
      mix = Array.map snd planned;
      issue_idx = Array.make n 0;
      issued = 0;
      primed = false;
      arrival_g;
      next_at = Simtime.zero;
      next_tenant = 0;
    }
  in
  (match t.mode with
  | Closed -> ()
  | Open rate ->
    let base_ps = 1_000_000_000_000 / max 1 rate in
    let gap = (base_ps / 2) + Prng.int t.arrival_g (max 1 base_ps) in
    t.next_at <- Simtime.of_ps gap;
    t.next_tenant <- Prng.int t.arrival_g n);
  t

let tenants t = t.tenants
let total t = t.total
let issued t = t.issued

let make_request t ~tenant ~now =
  let rid = t.issued in
  t.issued <- rid + 1;
  let g = Prng.derive ~seed:t.seed ~index:(rid + 1) in
  let m = t.mix.(tenant) in
  let kind = m.(t.issue_idx.(tenant) mod Array.length m) in
  t.issue_idx.(tenant) <- t.issue_idx.(tenant) + 1;
  let wseed = Prng.next g land 0x3FFF_FFFF in
  let b = (t.base_bytes / 2) + Prng.int g (max 1 t.base_bytes) in
  {
    Tenant.rid;
    tenant;
    kind;
    seed = wseed;
    bytes = Service.normalize_bytes kind b;
    submitted_at = now;
  }

let submit t ~tenant ~now =
  let req = make_request t ~tenant ~now in
  ignore (Tenant.submit t.tenants.(tenant) req)

(* Open loop: draw the next arrival; the generator stops after [total]. *)
let advance_arrival t =
  match t.mode with
  | Closed -> ()
  | Open rate ->
    let base_ps = 1_000_000_000_000 / max 1 rate in
    let gap = (base_ps / 2) + Prng.int t.arrival_g (max 1 base_ps) in
    t.next_at <- Simtime.add t.next_at (Simtime.of_ps gap);
    t.next_tenant <- Prng.int t.arrival_g (Array.length t.tenants)

let next_arrival t =
  match t.mode with
  | Closed -> None
  | Open _ -> if t.issued < t.total then Some t.next_at else None

let deliver t ~now =
  match t.mode with
  | Closed ->
    if not t.primed then begin
      t.primed <- true;
      (* one outstanding request per tenant to start the loop *)
      let n = Array.length t.tenants in
      let first = min n t.total in
      for tenant = 0 to first - 1 do
        submit t ~tenant ~now
      done
    end
  | Open _ ->
    let rec go () =
      if t.issued < t.total && Simtime.compare t.next_at now <= 0 then begin
        submit t ~tenant:t.next_tenant ~now:t.next_at;
        advance_arrival t;
        go ()
      end
    in
    go ()

let notify t (c : Tenant.completion) ~now =
  match t.mode with
  | Open _ -> ()
  | Closed ->
    if t.issued < t.total then submit t ~tenant:c.Tenant.c_tenant ~now

let feed t =
  {
    Service.f_next_arrival = (fun () -> next_arrival t);
    f_deliver = (fun ~now -> deliver t ~now);
    f_notify = (fun c ~now -> notify t c ~now);
  }
