lib/mem/sdram.mli: Bytes
