(* Tests for the coprocessor models and reference implementations
   (rvi_coproc): codec correctness, cipher test vectors, port protocol, and
   whole coprocessors run against the direct physical port. *)

module Simtime = Rvi_sim.Simtime
module Engine = Rvi_sim.Engine
module Clock = Rvi_sim.Clock
module Cp_port = Rvi_core.Cp_port
module Adpcm = Rvi_coproc.Adpcm_ref
module Idea = Rvi_coproc.Idea_ref
module Dport = Rvi_coproc.Dport

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let check_bytes msg a b = Alcotest.(check string) msg (Bytes.to_string a) (Bytes.to_string b)

(* {1 ADPCM reference} *)

let test_adpcm_tables () =
  checki "step table size" 89 (Array.length Adpcm.step_table);
  checki "first step" 7 Adpcm.step_table.(0);
  checki "last step" 32767 Adpcm.step_table.(88);
  checki "index table size" 16 (Array.length Adpcm.index_table);
  checkb "steps increase" true
    (Array.for_all (fun x -> x > 0) Adpcm.step_table
    &&
    let ok = ref true in
    for i = 1 to 88 do
      if Adpcm.step_table.(i) <= Adpcm.step_table.(i - 1) then ok := false
    done;
    !ok)

let test_adpcm_decode_basic () =
  let st = Adpcm.initial_state () in
  (* Code 0 with predictor 0 and step 7: diff = 7>>3 = 0, predictor stays. *)
  checki "code 0" 0 (Adpcm.decode_nibble st 0);
  let st2 = Adpcm.initial_state () in
  (* Code 7 from reset: 0 + 7>>3 + 7 + 3 + 1 = 11. *)
  checki "code 7" 11 (Adpcm.decode_nibble st2 7);
  checki "index adapted" 8 st2.Adpcm.index;
  let st3 = Adpcm.initial_state () in
  (* Sign bit subtracts. *)
  checki "code 15" (-11) (Adpcm.decode_nibble st3 15)

let test_adpcm_sizes () =
  checki "4x expansion" 400 (Adpcm.decoded_size 100);
  let input = Bytes.make 32 '\x42' in
  checki "decode length" 128 (Bytes.length (Adpcm.decode input));
  Alcotest.check_raises "encode length"
    (Invalid_argument "Adpcm_ref.encode: length must be 4k") (fun () ->
      ignore (Adpcm.encode (Bytes.make 7 ' ')))

let prop_adpcm_clamped =
  QCheck.Test.make ~name:"adpcm decoded samples stay within 16-bit range"
    ~count:100
    QCheck.(list_of_size (Gen.return 64) (int_bound 255))
    (fun codes ->
      let st = Adpcm.initial_state () in
      List.for_all
        (fun byte ->
          let s1 = Adpcm.decode_nibble st (byte land 0xF) in
          let s2 = Adpcm.decode_nibble st (byte lsr 4) in
          s1 >= -32768 && s1 <= 32767 && s2 >= -32768 && s2 <= 32767)
        codes)

let prop_adpcm_deterministic =
  QCheck.Test.make ~name:"adpcm decode is a pure function" ~count:50
    QCheck.(list_of_size (Gen.return 100) (int_bound 255))
    (fun bytes ->
      let input = Bytes.of_string (String.init 100 (fun i -> Char.chr (List.nth bytes i))) in
      Bytes.equal (Adpcm.decode input) (Adpcm.decode input))

let test_adpcm_encode_tracks () =
  (* The encoder must track a slow ramp closely enough to be audio-like:
     decode (encode pcm) within a few steps of the original at low level. *)
  let n = 256 in
  let pcm = Bytes.create (4 * n) in
  for i = 0 to (2 * n) - 1 do
    let v = (i * 13) mod 2048 in
    Bytes.set pcm (2 * i) (Char.chr (v land 0xFF));
    Bytes.set pcm ((2 * i) + 1) (Char.chr ((v lsr 8) land 0xFF))
  done;
  let decoded = Adpcm.decode (Adpcm.encode pcm) in
  checki "same length" (Bytes.length pcm) (Bytes.length decoded)

(* {1 IDEA reference} *)

let test_idea_mul () =
  checki "ordinary" 6 (Idea.mul 2 3);
  checki "zero means 2^16" 65535 (Idea.mul 0 2);
  (* 65536 * 2 mod 65537 = 65535 *)
  checki "identity" 5 (Idea.mul 5 1);
  checki "mod reduction" ((40000 * 40000) mod 65537) (Idea.mul 40000 40000)

let prop_idea_mul_inverse =
  QCheck.Test.make ~name:"idea mul_inv is a multiplicative inverse" ~count:300
    QCheck.(int_bound 0xFFFF)
    (fun a -> Idea.mul a (Idea.mul_inv a) = 1)

let prop_idea_add_inverse =
  QCheck.Test.make ~name:"idea add_inv is an additive inverse" ~count:300
    QCheck.(int_bound 0xFFFF)
    (fun a -> Idea.add a (Idea.add_inv a) = 0)

let prop_idea_mul_comm =
  QCheck.Test.make ~name:"idea mul commutative" ~count:300
    QCheck.(pair (int_bound 0xFFFF) (int_bound 0xFFFF))
    (fun (a, b) -> Idea.mul a b = Idea.mul b a)

let test_idea_key_schedule () =
  let key = [| 1; 2; 3; 4; 5; 6; 7; 8 |] in
  let sub = Idea.expand_key key in
  checki "52 subkeys" 52 (Array.length sub);
  checki "first eight are the key" 1 sub.(0);
  checki "k7" 8 sub.(7);
  (* After the 25-bit rotation the 9th subkey is well known for this key. *)
  checki "k8 from rotation" 0x0400 sub.(8)

let test_idea_testvector () =
  (* The published IDEA test vector: K = (1..8), X = (0,1,2,3). *)
  let key = [| 1; 2; 3; 4; 5; 6; 7; 8 |] in
  let sub = Idea.expand_key key in
  let c1, c2, c3, c4 = Idea.crypt_block sub (0, 1, 2, 3) in
  checki "c1" 0x11FB c1;
  checki "c2" 0xED2B c2;
  checki "c3" 0x0198 c3;
  checki "c4" 0x6DE5 c4;
  (* And decryption inverts it. *)
  let inv = Idea.invert_key sub in
  let p1, p2, p3, p4 = Idea.crypt_block inv (c1, c2, c3, c4) in
  checkb "decrypt recovers" true ((p1, p2, p3, p4) = (0, 1, 2, 3))

let prop_idea_roundtrip =
  QCheck.Test.make ~name:"idea decrypt . encrypt = identity (any key/block)"
    ~count:200
    QCheck.(
      pair
        (array_of_size (Gen.return 8) (int_bound 0xFFFF))
        (quad (int_bound 0xFFFF) (int_bound 0xFFFF) (int_bound 0xFFFF)
           (int_bound 0xFFFF)))
    (fun (key, block) ->
      let sub = Idea.expand_key key in
      let inv = Idea.invert_key sub in
      Idea.crypt_block inv (Idea.crypt_block sub block) = block)

let test_idea_bytes_layout () =
  let b = Bytes.of_string "\x11\x22\x33\x44\x55\x66\x77\x88" in
  let x1, x2, x3, x4 = Idea.block_of_bytes b ~pos:0 in
  checki "big-endian words" 0x1122 x1;
  checki "x4" 0x7788 x4;
  let out = Bytes.create 8 in
  Idea.block_to_bytes out ~pos:0 (x1, x2, x3, x4);
  check_bytes "roundtrip" b out;
  (* Bus-word view agrees with byte view. *)
  let lo = 0x44332211 and hi = 0x88776655 in
  checkb "words_of_le32" true (Idea.words_of_le32 ~lo ~hi = (x1, x2, x3, x4));
  checkb "le32_of_words" true (Idea.le32_of_words (x1, x2, x3, x4) = (lo, hi))

let prop_idea_ecb_roundtrip =
  QCheck.Test.make ~name:"idea ECB roundtrip over random buffers" ~count:30
    QCheck.(
      pair (array_of_size (Gen.return 8) (int_bound 0xFFFF)) (int_range 1 16))
    (fun (key, blocks) ->
      let input = Rvi_harness.Workload.random_bytes ~seed:blocks ~n:(8 * blocks) in
      let ct = Idea.ecb ~key ~decrypt:false input in
      (not (Bytes.equal ct input))
      && Bytes.equal (Idea.ecb ~key ~decrypt:true ct) input)

(* {1 Vecadd reference} *)

let test_vecadd_reference () =
  let a = [| 1; 2; 0xFFFF_FFFF |] and b = [| 10; 20; 1 |] in
  Alcotest.(check (array int)) "wrapping add" [| 11; 22; 0 |]
    (Rvi_coproc.Vecadd.reference ~a ~b);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Vecadd.reference: length mismatch") (fun () ->
      ignore (Rvi_coproc.Vecadd.reference ~a ~b:[| 1 |]))

(* {1 Dport protocol} *)

let geom = Rvi_mem.Page.geometry ~page_size:2048 ~n_pages:8

let test_dport_basic () =
  let dpram = Rvi_mem.Dpram.create geom in
  let d = Dport.create ~dpram in
  Dport.set_region d ~region:0 ~base:1024 ~size:64;
  Dport.set_params d [ 5; 6 ];
  Rvi_mem.Dpram.write dpram ~width:32 1028 0xFACE;
  (* cycle 1: issue; commit moves it in flight; cycle 2: data. *)
  Dport.sample d;
  Dport.issue d ~region:0 ~addr:4 ~wr:false ~width:Cp_port.W32 ~data:0;
  checkb "busy" true (Dport.busy d);
  Dport.commit d;
  Dport.sample d;
  checkb "ready next cycle" true (Dport.ready d);
  checki "data" 0xFACE (Dport.data d);
  (* Params are a register file at region 255. *)
  Dport.issue d ~region:Cp_port.param_obj ~addr:4 ~wr:false ~width:Cp_port.W32
    ~data:0;
  Dport.commit d;
  Dport.sample d;
  checki "param" 6 (Dport.data d)

let test_dport_bounds () =
  let dpram = Rvi_mem.Dpram.create geom in
  let d = Dport.create ~dpram in
  Dport.set_region d ~region:0 ~base:0 ~size:16;
  Dport.sample d;
  Dport.issue d ~region:0 ~addr:14 ~wr:false ~width:Cp_port.W32 ~data:0;
  Dport.commit d;
  (match Dport.sample d with
  | () -> Alcotest.fail "out-of-window access accepted"
  | exception Dport.Out_of_region { region = 0; addr = 14 } -> ());
  let d2 = Dport.create ~dpram in
  Dport.sample d2;
  Dport.issue d2 ~region:9 ~addr:0 ~wr:false ~width:Cp_port.W8 ~data:0;
  Dport.commit d2;
  (match Dport.sample d2 with
  | () -> Alcotest.fail "unknown region accepted"
  | exception Dport.Out_of_region { region = 9; _ } -> ());
  Alcotest.check_raises "window outside memory"
    (Invalid_argument "Dport.set_region: window outside the dual-port RAM")
    (fun () -> Dport.set_region d ~region:1 ~base:16000 ~size:1024)

let test_dport_start_finish () =
  let dpram = Rvi_mem.Dpram.create geom in
  let d = Dport.create ~dpram in
  checkb "not started" false (Dport.start_seen d);
  Dport.assert_start d;
  Dport.sample d;
  checkb "start seen once" true (Dport.start_seen d);
  Dport.sample d;
  checkb "start consumed" false (Dport.start_seen d);
  Dport.finish d;
  checkb "finished" true (Dport.finished d);
  Dport.assert_start d;
  Dport.sample d;
  checkb "restart clears fin" false (Dport.finished d)

(* {1 Whole coprocessors over the direct port}

   Running each machine against hand-placed physical windows checks the
   FSMs independently of the whole OS stack: output must be bit-exact
   against the reference. *)

let run_direct ~clock_hz ~divide ~make ~regions ~params ~watchdog_ms =
  let engine = Engine.create () in
  let cost = Rvi_os.Cost_model.default ~cpu_freq_hz:133_000_000 in
  let kernel = Rvi_os.Kernel.create ~engine ~cost ~sdram_bytes:(1024 * 1024) () in
  let dpram = Rvi_mem.Dpram.create geom in
  let dport = Dport.create ~dpram in
  let coproc = make dport in
  let clock = Clock.create engine ~name:"c" ~freq_hz:clock_hz in
  Clock.add clock ~divide coproc.Rvi_coproc.Coproc.component;
  let specs =
    List.map
      (fun (region, data, size, dir) ->
        let buf =
          match data with
          | Some b -> Rvi_os.Uspace.of_bytes kernel b
          | None -> Rvi_os.Uspace.alloc kernel size
        in
        { Rvi_coproc.Normal_driver.region; buf; dir })
      regions
  in
  let result =
    Rvi_coproc.Normal_driver.run ~kernel ~dpram ~ahb:Rvi_mem.Ahb.default
      ~clocks:[ clock ] ~dport ~coproc ~regions:specs ~params
      ~watchdog:(Simtime.of_ms watchdog_ms) ()
  in
  let read region =
    let spec =
      List.find (fun s -> s.Rvi_coproc.Normal_driver.region = region) specs
    in
    Rvi_os.Uspace.read kernel spec.Rvi_coproc.Normal_driver.buf
  in
  (result, read)

let test_vecadd_coproc_direct () =
  let module M = Rvi_coproc.Vecadd.Make (Dport) in
  let n = 50 in
  let a, b = Rvi_harness.Workload.vectors ~seed:3 ~n in
  let to_bytes words =
    let bts = Bytes.create (4 * Array.length words) in
    Array.iteri
      (fun i w ->
        for k = 0 to 3 do
          Bytes.set bts ((4 * i) + k) (Char.chr ((w lsr (8 * k)) land 0xFF))
        done)
      words;
    bts
  in
  let result, read =
    run_direct ~clock_hz:40_000_000 ~divide:1 ~make:M.create
      ~regions:
        [
          (0, Some (to_bytes a), 4 * n, Rvi_core.Mapped_object.In);
          (1, Some (to_bytes b), 4 * n, Rvi_core.Mapped_object.In);
          (2, None, 4 * n, Rvi_core.Mapped_object.Out);
        ]
      ~params:[ n ] ~watchdog_ms:100
  in
  checkb "ran" true (result = Ok ());
  check_bytes "bit-exact against reference"
    (to_bytes (Rvi_coproc.Vecadd.reference ~a ~b))
    (read 2)

let test_adpcm_coproc_direct () =
  let module M = Rvi_coproc.Adpcm_coproc.Make (Dport) in
  let input = Rvi_harness.Workload.adpcm_stream ~seed:4 ~bytes:1024 in
  let result, read =
    run_direct ~clock_hz:40_000_000 ~divide:1 ~make:M.create
      ~regions:
        [
          (0, Some input, Bytes.length input, Rvi_core.Mapped_object.In);
          (1, None, Adpcm.decoded_size (Bytes.length input), Rvi_core.Mapped_object.Out);
        ]
      ~params:[ Bytes.length input ] ~watchdog_ms:1000
  in
  checkb "ran" true (result = Ok ());
  check_bytes "bit-exact against reference" (Adpcm.decode input) (read 1)

let test_idea_coproc_direct () =
  let module M = Rvi_coproc.Idea_coproc.Make (Dport) in
  let key = Rvi_harness.Workload.idea_key ~seed:5 in
  let input = Rvi_harness.Workload.idea_plaintext ~seed:5 ~bytes:2048 in
  let result, read =
    run_direct ~clock_hz:24_000_000 ~divide:4 ~make:M.create
      ~regions:
        [
          (0, Some input, Bytes.length input, Rvi_core.Mapped_object.In);
          (1, None, Bytes.length input, Rvi_core.Mapped_object.Out);
        ]
      ~params:
        (Rvi_coproc.Idea_coproc.params
           ~n_blocks:(Bytes.length input / 8)
           ~decrypt:false ~key)
      ~watchdog_ms:2000
  in
  checkb "ran" true (result = Ok ());
  check_bytes "bit-exact against reference"
    (Idea.ecb ~key ~decrypt:false input)
    (read 1)

let test_idea_coproc_decrypt_direct () =
  let module M = Rvi_coproc.Idea_coproc.Make (Dport) in
  let key = Rvi_harness.Workload.idea_key ~seed:6 in
  let plain = Rvi_harness.Workload.idea_plaintext ~seed:6 ~bytes:512 in
  let ct = Idea.ecb ~key ~decrypt:false plain in
  let result, read =
    run_direct ~clock_hz:24_000_000 ~divide:4 ~make:M.create
      ~regions:
        [
          (0, Some ct, Bytes.length ct, Rvi_core.Mapped_object.In);
          (1, None, Bytes.length ct, Rvi_core.Mapped_object.Out);
        ]
      ~params:
        (Rvi_coproc.Idea_coproc.params ~n_blocks:(Bytes.length ct / 8)
           ~decrypt:true ~key)
      ~watchdog_ms:2000
  in
  checkb "ran" true (result = Ok ());
  check_bytes "decrypt recovers the plaintext" plain (read 1)

(* {1 Normal driver} *)

let test_normal_driver_exceeds () =
  let module M = Rvi_coproc.Vecadd.Make (Dport) in
  let result, _ =
    run_direct ~clock_hz:40_000_000 ~divide:1 ~make:M.create
      ~regions:
        [
          (0, None, 8 * 1024, Rvi_core.Mapped_object.In);
          (1, None, 8 * 1024, Rvi_core.Mapped_object.In);
          (2, None, 8 * 1024, Rvi_core.Mapped_object.Out);
        ]
      ~params:[ 2048 ] ~watchdog_ms:10
  in
  match result with
  | Error (Rvi_coproc.Normal_driver.Exceeds_memory { required; available }) ->
    checki "required" (24 * 1024) required;
    checki "available" (16 * 1024) available
  | Ok () | Error _ -> Alcotest.fail "oversized working set accepted"

let test_normal_driver_watchdog () =
  (* A coprocessor that never finishes must trip the watchdog, not hang. *)
  let dead =
    {
      Rvi_coproc.Coproc.name = "dead";
      component = Clock.component ~name:"dead" ~compute:ignore ~commit:ignore ();
      finished = (fun () -> false);
      reset = ignore;
      stats = Rvi_sim.Stats.create ();
    }
  in
  let result, _ =
    run_direct ~clock_hz:1_000_000 ~divide:1
      ~make:(fun _ -> dead)
      ~regions:[]
      ~params:[] ~watchdog_ms:1
  in
  checkb "watchdog fired" true (result = Error Rvi_coproc.Normal_driver.Hardware_stall)

let suite =
  [
    Alcotest.test_case "adpcm/tables" `Quick test_adpcm_tables;
    Alcotest.test_case "adpcm/decode-basic" `Quick test_adpcm_decode_basic;
    Alcotest.test_case "adpcm/sizes" `Quick test_adpcm_sizes;
    QCheck_alcotest.to_alcotest prop_adpcm_clamped;
    QCheck_alcotest.to_alcotest prop_adpcm_deterministic;
    Alcotest.test_case "adpcm/encode-tracks" `Quick test_adpcm_encode_tracks;
    Alcotest.test_case "idea/mul" `Quick test_idea_mul;
    QCheck_alcotest.to_alcotest prop_idea_mul_inverse;
    QCheck_alcotest.to_alcotest prop_idea_add_inverse;
    QCheck_alcotest.to_alcotest prop_idea_mul_comm;
    Alcotest.test_case "idea/key-schedule" `Quick test_idea_key_schedule;
    Alcotest.test_case "idea/test-vector" `Quick test_idea_testvector;
    QCheck_alcotest.to_alcotest prop_idea_roundtrip;
    Alcotest.test_case "idea/byte-layout" `Quick test_idea_bytes_layout;
    QCheck_alcotest.to_alcotest prop_idea_ecb_roundtrip;
    Alcotest.test_case "vecadd/reference" `Quick test_vecadd_reference;
    Alcotest.test_case "dport/basic" `Quick test_dport_basic;
    Alcotest.test_case "dport/bounds" `Quick test_dport_bounds;
    Alcotest.test_case "dport/start-finish" `Quick test_dport_start_finish;
    Alcotest.test_case "vecadd/coproc-direct" `Quick test_vecadd_coproc_direct;
    Alcotest.test_case "adpcm/coproc-direct" `Quick test_adpcm_coproc_direct;
    Alcotest.test_case "idea/coproc-direct" `Quick test_idea_coproc_direct;
    Alcotest.test_case "idea/coproc-decrypt" `Quick test_idea_coproc_decrypt_direct;
    Alcotest.test_case "normal_driver/exceeds-memory" `Quick test_normal_driver_exceeds;
    Alcotest.test_case "normal_driver/watchdog" `Quick test_normal_driver_watchdog;
  ]

(* {1 FIR reference} *)

module Fir = Rvi_coproc.Fir_ref

let test_fir_impulse () =
  (* With a unit impulse and no shift, the output replays the coefficient
     set (time-reversed index: y[i] = h[p - i]). *)
  let coeffs = [| 3; -5; 7; 11 |] in
  let x = Array.make 16 0 in
  x.(6) <- 1;
  let y = Fir.filter ~coeffs ~shift:0 x in
  checki "y[6] = h0" 3 y.(6);
  checki "y[5] = h1" (-5) y.(5);
  checki "y[4] = h2" 7 y.(4);
  checki "y[3] = h3" 11 y.(3);
  checki "elsewhere zero" 0 y.(0);
  checki "output length" 13 (Array.length y)

let test_fir_saturation () =
  let coeffs = [| 32767; 32767 |] in
  let x = [| 32767; 32767; -32768; -32768 |] in
  let y = Fir.filter ~coeffs ~shift:0 x in
  checki "positive clamp" 32767 y.(0);
  checki "negative clamp" (-32768) y.(2)

let test_fir_dc_gain () =
  (* The low-pass design has unit DC gain in Q12: a constant signal passes
     through (within quantisation). *)
  let coeffs = Fir.lowpass ~taps:16 ~cutoff:0.12 in
  let x = Array.make 64 1000 in
  let y = Fir.filter ~coeffs ~shift:12 x in
  let mid = y.(Array.length y / 2) in
  checkb "dc gain near one" true (abs (mid - 1000) < 40)

let test_fir_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Fir_ref: empty coefficient set")
    (fun () -> ignore (Fir.filter ~coeffs:[||] ~shift:0 [| 1 |]));
  Alcotest.check_raises "too many taps" (Invalid_argument "Fir_ref: too many taps")
    (fun () -> ignore (Fir.filter ~coeffs:(Array.make 65 0) ~shift:0 (Array.make 100 0)));
  Alcotest.check_raises "short input" (Invalid_argument "Fir_ref: fewer samples than taps")
    (fun () -> ignore (Fir.filter ~coeffs:[| 1; 2; 3 |] ~shift:0 [| 1 |]));
  Alcotest.check_raises "bad shift" (Invalid_argument "Fir_ref: shift out of [0, 30]")
    (fun () -> ignore (Fir.filter ~coeffs:[| 1 |] ~shift:31 [| 1 |]))

let prop_fir_linear =
  QCheck.Test.make ~name:"fir is linear below saturation" ~count:100
    QCheck.(list_of_size (Gen.return 24) (int_range (-100) 100))
    (fun xs ->
      let coeffs = [| 2; -3; 5; 1 |] in
      let x = Array.of_list xs in
      let y1 = Fir.filter ~coeffs ~shift:0 x in
      let y2 = Fir.filter ~coeffs ~shift:0 (Array.map (fun v -> 3 * v) x) in
      Array.for_all2 (fun a b -> 3 * a = b) y1 y2)

let prop_fir_bytes_consistent =
  QCheck.Test.make ~name:"fir byte interface agrees with the array interface"
    ~count:50
    QCheck.(list_of_size (Gen.return 40) (int_range (-2000) 2000))
    (fun xs ->
      let coeffs = [| 7; -2; 9 |] in
      let x = Array.of_list xs in
      let input =
        let b = Bytes.create (2 * Array.length x) in
        Array.iteri
          (fun i v ->
            let u = v land 0xFFFF in
            Bytes.set b (2 * i) (Char.chr (u land 0xFF));
            Bytes.set b ((2 * i) + 1) (Char.chr ((u lsr 8) land 0xFF)))
          x;
        b
      in
      let via_bytes = Fir.filter_bytes ~coeffs ~shift:2 input in
      let direct = Fir.filter ~coeffs ~shift:2 x in
      Array.for_all2
        (fun i v ->
          let u =
            Char.code (Bytes.get via_bytes (2 * i))
            lor (Char.code (Bytes.get via_bytes ((2 * i) + 1)) lsl 8)
          in
          let s = if u land 0x8000 <> 0 then u - 0x10000 else u in
          s = v)
        (Array.init (Array.length direct) (fun i -> i))
        direct)

let test_fir_coproc_direct () =
  let module M = Rvi_coproc.Fir_coproc.Make (Dport) in
  let coeffs = Fir.lowpass ~taps:12 ~cutoff:0.2 in
  let input = Rvi_harness.Workload.fir_signal ~seed:8 ~bytes:2048 in
  let taps = Array.length coeffs in
  let coeff_bytes =
    let b = Bytes.create (2 * taps) in
    Array.iteri
      (fun i c ->
        let u = c land 0xFFFF in
        Bytes.set b (2 * i) (Char.chr (u land 0xFF));
        Bytes.set b ((2 * i) + 1) (Char.chr ((u lsr 8) land 0xFF)))
      coeffs;
    b
  in
  let n_out = (Bytes.length input / 2) - taps + 1 in
  let result, read =
    run_direct ~clock_hz:40_000_000 ~divide:1 ~make:M.create
      ~regions:
        [
          (0, Some input, Bytes.length input, Rvi_core.Mapped_object.In);
          (1, Some coeff_bytes, 2 * taps, Rvi_core.Mapped_object.In);
          (2, None, 2 * n_out, Rvi_core.Mapped_object.Out);
        ]
      ~params:(Rvi_coproc.Fir_coproc.params ~n_out ~taps ~shift:12)
      ~watchdog_ms:1000
  in
  checkb "ran" true (result = Ok ());
  check_bytes "bit-exact against reference"
    (Fir.filter_bytes ~coeffs ~shift:12 input)
    (read 2)

let fir_suite =
  [
    Alcotest.test_case "fir/impulse" `Quick test_fir_impulse;
    Alcotest.test_case "fir/saturation" `Quick test_fir_saturation;
    Alcotest.test_case "fir/dc-gain" `Quick test_fir_dc_gain;
    Alcotest.test_case "fir/validation" `Quick test_fir_validation;
    QCheck_alcotest.to_alcotest prop_fir_linear;
    QCheck_alcotest.to_alcotest prop_fir_bytes_consistent;
    Alcotest.test_case "fir/coproc-direct" `Quick test_fir_coproc_direct;
  ]

let suite = suite @ fir_suite

(* {1 IDEA CBC mode} *)

let test_idea_cbc_ref () =
  let key = [| 1; 2; 3; 4; 5; 6; 7; 8 |] in
  let iv = [| 0x1111; 0x2222; 0x3333; 0x4444 |] in
  let plain = Rvi_harness.Workload.random_bytes ~seed:9 ~n:64 in
  let ct = Idea.cbc ~key ~decrypt:false ~iv plain in
  checkb "cbc differs from ecb" true
    (not (Bytes.equal ct (Idea.ecb ~key ~decrypt:false plain)));
  checkb "cbc roundtrip" true
    (Bytes.equal (Idea.cbc ~key ~decrypt:true ~iv ct) plain);
  (* Identical plaintext blocks produce different ciphertext blocks. *)
  let same = Bytes.make 32 '\x42' in
  let ct2 = Idea.cbc ~key ~decrypt:false ~iv same in
  checkb "chaining breaks repetition" true
    (not (Bytes.equal (Bytes.sub ct2 0 8) (Bytes.sub ct2 8 8)));
  (* And ECB famously leaks it. *)
  let ecb2 = Idea.ecb ~key ~decrypt:false same in
  checkb "ecb leaks repetition" true
    (Bytes.equal (Bytes.sub ecb2 0 8) (Bytes.sub ecb2 8 8))

let prop_idea_cbc_roundtrip =
  QCheck.Test.make ~name:"idea CBC roundtrip for random keys/ivs" ~count:30
    QCheck.(
      triple
        (array_of_size (Gen.return 8) (int_bound 0xFFFF))
        (array_of_size (Gen.return 4) (int_bound 0xFFFF))
        (int_range 1 12))
    (fun (key, iv, blocks) ->
      let plain = Rvi_harness.Workload.random_bytes ~seed:blocks ~n:(8 * blocks) in
      let ct = Idea.cbc ~key ~decrypt:false ~iv plain in
      Bytes.equal (Idea.cbc ~key ~decrypt:true ~iv ct) plain)

let test_idea_cbc_coproc_direct () =
  let module M = Rvi_coproc.Idea_coproc.Make (Dport) in
  let key = Rvi_harness.Workload.idea_key ~seed:77 in
  let iv = [| 0xAAAA; 0xBBBB; 0xCCCC; 0xDDDD |] in
  let plain = Rvi_harness.Workload.idea_plaintext ~seed:77 ~bytes:1024 in
  let run mode expected =
    let result, read =
      run_direct ~clock_hz:24_000_000 ~divide:4 ~make:M.create
        ~regions:
          [
            (0, Some plain, Bytes.length plain, Rvi_core.Mapped_object.In);
            (1, None, Bytes.length plain, Rvi_core.Mapped_object.Out);
          ]
        ~params:
          (Rvi_coproc.Idea_coproc.params_mode
             ~n_blocks:(Bytes.length plain / 8)
             ~mode ~key ~iv ())
        ~watchdog_ms:2000
    in
    checkb "ran" true (result = Ok ());
    check_bytes
      ("mode " ^ Rvi_coproc.Idea_coproc.mode_name mode)
      expected (read 1)
  in
  run Rvi_coproc.Idea_coproc.Cbc_encrypt (Idea.cbc ~key ~decrypt:false ~iv plain);
  let ct = Idea.cbc ~key ~decrypt:false ~iv plain in
  let module M2 = Rvi_coproc.Idea_coproc.Make (Dport) in
  let result, read =
    run_direct ~clock_hz:24_000_000 ~divide:4 ~make:M2.create
      ~regions:
        [
          (0, Some ct, Bytes.length ct, Rvi_core.Mapped_object.In);
          (1, None, Bytes.length ct, Rvi_core.Mapped_object.Out);
        ]
      ~params:
        (Rvi_coproc.Idea_coproc.params_mode
           ~n_blocks:(Bytes.length ct / 8)
           ~mode:Rvi_coproc.Idea_coproc.Cbc_decrypt ~key ~iv ())
      ~watchdog_ms:2000
  in
  checkb "decrypt ran" true (result = Ok ());
  check_bytes "cbc decrypt recovers" plain (read 1)

let test_mode_codes () =
  List.iter
    (fun m ->
      checkb "roundtrip" true
        (Rvi_coproc.Idea_coproc.mode_of_code (Rvi_coproc.Idea_coproc.mode_code m)
        = Some m))
    Rvi_coproc.Idea_coproc.
      [ Ecb_encrypt; Ecb_decrypt; Cbc_encrypt; Cbc_decrypt ];
  checkb "unknown" true (Rvi_coproc.Idea_coproc.mode_of_code 9 = None)

let cbc_suite =
  [
    Alcotest.test_case "idea-cbc/reference" `Quick test_idea_cbc_ref;
    QCheck_alcotest.to_alcotest prop_idea_cbc_roundtrip;
    Alcotest.test_case "idea-cbc/coproc-direct" `Quick test_idea_cbc_coproc_direct;
    Alcotest.test_case "idea-cbc/mode-codes" `Quick test_mode_codes;
  ]

let suite = suite @ cbc_suite

(* {1 Arbiter} *)

let test_arbiter_basics () =
  let upstream = Cp_port.create () in
  let arb = Rvi_coproc.Arbiter.create ~upstream ~children:2 in
  checkb "distinct child ports" true
    (Rvi_coproc.Arbiter.child_port arb 0 != Rvi_coproc.Arbiter.child_port arb 1);
  Alcotest.check_raises "child range"
    (Invalid_argument "Arbiter.child_port: no such child") (fun () ->
      ignore (Rvi_coproc.Arbiter.child_port arb 2));
  Alcotest.check_raises "children range"
    (Invalid_argument "Arbiter.create: children out of [1, 4]") (fun () ->
      ignore (Rvi_coproc.Arbiter.create ~upstream ~children:5))

let test_arbiter_forwards_and_relocates () =
  (* Drive the arbiter open-loop for a few cycles: child 1's parameter read
     must appear upstream relocated into its slot; data reads keep their
     object ids; responses route back to the issuer only. *)
  let engine = Engine.create () in
  let clock = Clock.create engine ~name:"c" ~freq_hz:1_000_000 in
  let upstream = Cp_port.create () in
  let arb = Rvi_coproc.Arbiter.create ~upstream ~children:2 in
  Clock.add clock (Rvi_coproc.Arbiter.component arb);
  let p0 = Rvi_coproc.Arbiter.child_port arb 0 in
  let p1 = Rvi_coproc.Arbiter.child_port arb 1 in
  let step () =
    Clock.start clock;
    Engine.run_until engine
      (Simtime.add (Engine.now engine) (Simtime.of_us 1));
    Clock.stop clock
  in
  (* Child 1 pulses a parameter read. *)
  p1.Cp_port.cp_obj <- Cp_port.param_obj;
  p1.Cp_port.cp_addr <- 8;
  p1.Cp_port.cp_access <- true;
  step ();
  p1.Cp_port.cp_access <- false;
  step ();
  checkb "upstream pulse seen" true
    (upstream.Cp_port.cp_obj = Cp_port.param_obj);
  checki "relocated into child 1's slot"
    (8 + (4 * Rvi_coproc.Arbiter.slot_words))
    upstream.Cp_port.cp_addr;
  (* Response routes to child 1 only. *)
  upstream.Cp_port.cp_tlbhit <- true;
  upstream.Cp_port.cp_din <- 0x77;
  step ();
  upstream.Cp_port.cp_tlbhit <- false;
  checkb "child 1 got the hit" true p1.Cp_port.cp_tlbhit;
  checki "child 1 got the data" 0x77 p1.Cp_port.cp_din;
  checkb "child 0 did not" true (not p0.Cp_port.cp_tlbhit);
  let g = Rvi_coproc.Arbiter.grants arb in
  checki "one grant to child 1" 1 g.(1);
  checki "none to child 0" 0 g.(0)

let test_arbiter_fin_conjunction () =
  let engine = Engine.create () in
  let clock = Clock.create engine ~name:"c" ~freq_hz:1_000_000 in
  let upstream = Cp_port.create () in
  let arb = Rvi_coproc.Arbiter.create ~upstream ~children:2 in
  Clock.add clock (Rvi_coproc.Arbiter.component arb);
  let p0 = Rvi_coproc.Arbiter.child_port arb 0 in
  let p1 = Rvi_coproc.Arbiter.child_port arb 1 in
  let step () =
    Clock.start clock;
    Engine.run_until engine (Simtime.add (Engine.now engine) (Simtime.of_us 1));
    Clock.stop clock
  in
  p0.Cp_port.cp_fin <- true;
  step ();
  checkb "one child finished is not enough" true (not upstream.Cp_port.cp_fin);
  p1.Cp_port.cp_fin <- true;
  step ();
  checkb "both finished raises CP_FIN" true upstream.Cp_port.cp_fin

let arbiter_suite =
  [
    Alcotest.test_case "arbiter/basics" `Quick test_arbiter_basics;
    Alcotest.test_case "arbiter/forward-relocate" `Quick
      test_arbiter_forwards_and_relocates;
    Alcotest.test_case "arbiter/fin-conjunction" `Quick test_arbiter_fin_conjunction;
  ]

let suite = suite @ arbiter_suite

(* {1 Chunking is wrong for stateful kernels}

   EXPERIMENTS.md claims the hand-chunked driver, fine for a stateless
   cipher, is *incorrect* for ADPCM because the predictor state crosses
   chunk boundaries. Pin the claim. *)

let test_chunked_adpcm_is_wrong () =
  let module M = Rvi_coproc.Adpcm_coproc.Make (Dport) in
  let input = Rvi_harness.Workload.adpcm_stream ~seed:90 ~bytes:2048 in
  let engine = Engine.create () in
  let cost = Rvi_os.Cost_model.default ~cpu_freq_hz:133_000_000 in
  let kernel = Rvi_os.Kernel.create ~engine ~cost ~sdram_bytes:(1024 * 1024) () in
  let dpram = Rvi_mem.Dpram.create geom in
  let dport = Dport.create ~dpram in
  let coproc = M.create dport in
  let clock = Clock.create engine ~name:"c" ~freq_hz:40_000_000 in
  Clock.add clock coproc.Rvi_coproc.Coproc.component;
  let in_buf = Rvi_os.Uspace.of_bytes kernel input in
  let out_buf = Rvi_os.Uspace.alloc kernel (4 * Bytes.length input) in
  let half = Bytes.length input / 2 in
  let chunk pos =
    ( [
        {
          Rvi_coproc.Normal_driver.region = 0;
          buf = Rvi_os.Uspace.sub in_buf ~pos ~len:half;
          dir = Rvi_core.Mapped_object.In;
        };
        {
          Rvi_coproc.Normal_driver.region = 1;
          buf = Rvi_os.Uspace.sub out_buf ~pos:(4 * pos) ~len:(4 * half);
          dir = Rvi_core.Mapped_object.Out;
        };
      ],
      [ half ] )
  in
  (match
     Rvi_coproc.Normal_driver.run_chunked ~kernel ~dpram
       ~ahb:Rvi_mem.Ahb.default ~clocks:[ clock ] ~dport ~coproc
       ~chunks:[ chunk 0; chunk half ] ()
   with
  | Ok () -> ()
  | Error e ->
    Alcotest.failf "chunked run failed: %s"
      (Rvi_coproc.Normal_driver.error_to_string e));
  let chunked = Rvi_os.Uspace.read kernel out_buf in
  let reference = Adpcm.decode input in
  checkb "first chunk matches (no state yet)" true
    (Bytes.equal (Bytes.sub chunked 0 (4 * half)) (Bytes.sub reference 0 (4 * half)));
  checkb "second chunk DIVERGES (predictor state was lost at the boundary)"
    true
    (not
       (Bytes.equal
          (Bytes.sub chunked (4 * half) (4 * half))
          (Bytes.sub reference (4 * half) (4 * half))))

let chunk_suite =
  [
    Alcotest.test_case "normal_driver/chunked-adpcm-wrong" `Quick
      test_chunked_adpcm_is_wrong;
  ]

let suite = suite @ chunk_suite
