lib/mem/ahb.ml:
