(* Golden-output fixture for the reporting layer.

   Prints the textual artefacts the harness persists — the campaign CSV,
   the campaign summary, the rate x policy sweep table, and the
   Report table / CSV / size labels — for a fixed synthetic data set
   covering every outcome variant. The dune rule diffs the output
   against test/golden_report.expected, so any formatting drift in a
   report has to be acknowledged by re-promoting the golden file. *)

module Faults = Rvi_harness.Faults
module Report = Rvi_harness.Report
module Simtime = Rvi_sim.Simtime

let ppf = Format.std_formatter

let run index seed app outcome injected total_ms =
  { Faults.index; seed; app; outcome; injected; total_ms }

let runs =
  [
    run 0 101 "adpcm" Faults.Clean 0 12.5;
    run 1 202 "idea" (Faults.Recovered { retries = 0 }) 2 14.25;
    run 2 303 "fir" (Faults.Recovered { retries = 3 }) 5 31.0;
    run 3 404 "vecadd"
      (Faults.Degraded { reason = "retries exhausted"; verified = true })
      7 44.125;
    run 4 505 "adpcm"
      (Faults.Degraded { reason = "watchdog"; verified = false })
      9 58.5;
    run 5 606 "idea" (Faults.Failed "bad output") 4 9.75;
    run 6 707 "fir" (Faults.Crashed "Stack_overflow") 11 3.5;
  ]

let sweep_cells =
  let summary runs clean recovered degraded failed crashed injected
      bad_degraded =
    {
      Faults.runs;
      clean;
      recovered;
      degraded;
      failed;
      crashed;
      injected;
      bad_degraded;
    }
  in
  [
    {
      Faults.factor = 0.5;
      max_retries = 0;
      cell_summary = summary 10 8 1 1 0 0 3 0;
    };
    {
      Faults.factor = 0.5;
      max_retries = 3;
      cell_summary = summary 10 8 2 0 0 0 3 0;
    };
    {
      Faults.factor = 2.0;
      max_retries = 0;
      cell_summary = summary 10 2 3 3 1 1 17 2;
    };
    {
      Faults.factor = 2.0;
      max_retries = 3;
      cell_summary = summary 10 2 6 2 0 0 17 1;
    };
  ]

let row app version input_bytes outcome total_ns faults retries verified =
  {
    Report.app;
    version;
    input_bytes;
    outcome;
    total = Simtime.of_ns total_ns;
    hw = Simtime.of_ns (total_ns / 2);
    sw_dp = Simtime.of_ns (total_ns / 8);
    sw_imu = Simtime.of_ns (total_ns / 8);
    sw_app = Simtime.of_ns (total_ns / 8);
    sw_os = Simtime.of_ns (total_ns / 8);
    faults;
    evictions = faults / 2;
    writebacks = faults / 3;
    tlb_refill_faults = faults / 4;
    prefetched = faults * 2;
    accesses = 4096;
    fault_p95_us = 1.5;
    fault_p99_us = 2.25;
    retries;
    verified;
  }

let rows =
  [
    row "adpcm" "SW" 2048 Report.Measured 900_000 0 0 true;
    row "adpcm" "VIM" 2048 Report.Measured 120_000 16 0 true;
    row "adpcm" "NORMAL" 2048 Report.Exceeds_memory 0 0 0 false;
    row "idea" "VIM" 1536 (Report.Degraded "retries exhausted") 250_000 32 3
      true;
    row "idea" "VIM" 512 (Report.Failed "watchdog") 75_000 8 1 false;
  ]

let () =
  print_string "== campaign csv ==\n";
  print_string (Faults.csv runs);
  print_string "== campaign summary ==\n";
  Faults.print_summary ppf (Faults.summarize runs);
  Format.pp_print_flush ppf ();
  print_string "== sweep ==\n";
  Faults.print_sweep ppf sweep_cells;
  Format.pp_print_flush ppf ();
  print_string "== report table ==\n";
  Report.print_table ~title:"golden fixture" ppf rows;
  Format.pp_print_flush ppf ();
  print_string "== report csv ==\n";
  print_string (Report.csv rows);
  print_string "== size labels ==\n";
  List.iter
    (fun b -> Printf.printf "%d -> %s\n" b (Report.size_label b))
    [ 256; 512; 1024; 1536; 2048; 65536 ]
