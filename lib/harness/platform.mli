(** One assembled reconfigurable platform.

    Builds the whole machine from a {!Config.t} and a bit-stream: engine,
    kernel, dual-port RAM, PLD, IMU (on its clock), VIM, the syscall API
    and a coprocessor instantiated behind the virtual interface. This is
    what the examples and the runner share; tests use it to poke the
    internals. *)

type t = {
  engine : Rvi_sim.Engine.t;
  kernel : Rvi_os.Kernel.t;
  dpram : Rvi_mem.Dpram.t;
  pld : Rvi_fpga.Pld.t;
  port : Rvi_core.Cp_port.t;
  imu : Rvi_core.Imu.t;
  clock : Rvi_sim.Clock.t;
  vim : Rvi_core.Vim.t;
  api : Rvi_core.Api.t;
  vport : Rvi_coproc.Vport.t;
  coproc : Rvi_coproc.Coproc.t;
  proc : Rvi_os.Proc.t;  (** the application process, already scheduled *)
}

val create :
  ?app_name:string ->
  ?sdram_bytes:int ->
  Config.t ->
  bitstream:Rvi_fpga.Bitstream.t ->
  make:(Rvi_core.Cp_port.t -> Rvi_coproc.Vport.t * Rvi_coproc.Coproc.t) ->
  t
(** Components are registered on the clock in hardware order: IMU, port
    synchroniser, coprocessor (on the bit-stream's divided clock). *)

val reset : t -> Config.t -> unit
(** Re-arms a platform in place for another run: rewinds the simulation
    timeline to zero, zeroes SDRAM and dual-port RAM, scrubs the IMU/TLB,
    VIM, PLD, port, virtual port and coprocessor back to power-on state,
    and re-attaches the per-run bindings (trace sink, fault injector, VIM
    configuration) from [cfg] exactly as {!create} does. A run on a reset
    platform is byte-identical — report and trace — to the same run on a
    fresh platform (qcheck'd in the test suite). The configuration must
    use the same device geometry and IMU/TLB parameters the platform was
    created with; otherwise [Invalid_argument] is raised. *)

(** A keyed pool of reusable platforms, the campaign hot path: reusing a
    platform skips construction and, above all, the multi-megabyte zeroed
    SDRAM allocation per run. Not domain-safe — parallel shards keep one
    pool each in domain-local storage. *)
module Pool : sig
  type platform = t
  type t

  val create : unit -> t
  val size : t -> int

  val acquire :
    t -> key:string -> Config.t -> create:(unit -> platform) -> platform
  (** Takes the platform stored under [key] out of the pool (resetting it
      against the given configuration), or builds a fresh one with
      [create]. The caller owns the result; {!stash} it back when the run
      succeeds. If the run raises, simply don't — a possibly-wedged
      platform must not be reused. *)

  val stash : t -> key:string -> platform -> unit

  val find : t -> key:string -> platform option
  (** Peeks at the stashed platform without acquiring (no reset): lets the
      ablation harness read end-of-run hardware statistics — TLB hit
      counters, walker latency histograms — after the runner has stashed
      the platform back. *)

  val clear : t -> unit
end

val alloc : t -> int -> Rvi_os.Uspace.buf
val alloc_bytes : t -> Bytes.t -> Rvi_os.Uspace.buf
val read : t -> Rvi_os.Uspace.buf -> Bytes.t

val trace : t -> Rvi_hw.Wave.t
(** Attaches (once) a waveform tracer probing the whole CP port on the
    platform clock and returns it. *)
