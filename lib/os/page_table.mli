(** Per-process software page table for shared virtual addressing.

    A two-level radix tree over global virtual page numbers: a directory
    keyed by the high VPN bits pointing at leaf arrays of PTEs. The OS
    (VIM) writes it when wiring and evicting dual-port-RAM pages; the
    IMU's hardware walker reads it on a TLB-hierarchy miss and charges
    cycles per level actually touched. *)

type pte = {
  frame : int;  (** dual-port-RAM frame backing the page *)
  mutable dirty : bool;
      (** sticky dirty bit folded down from evicted TLB entries, so
          write-back state survives TLB replacement *)
}

type t

val create : unit -> t

val levels : int
(** Depth of the radix tree (2). *)

val find : t -> vpn:int -> pte option
(** Pure lookup; negative [vpn] is never mapped. *)

val walk : t -> vpn:int -> pte option * int
(** Lookup as the hardware walker performs it: the PTE (if present) and
    the number of levels touched — 1 when the directory slot is empty,
    {!levels} otherwise. *)

val map : t -> vpn:int -> frame:int -> unit
(** Installs a clean PTE. Raises [Invalid_argument] if [vpn] is already
    mapped (the VIM never double-wires a page). *)

val unmap : t -> vpn:int -> unit
(** Removes the PTE if present. *)

val mapped_count : t -> int
val clear : t -> unit
