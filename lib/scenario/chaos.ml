module Simtime = Rvi_sim.Simtime
module Prng = Rvi_sim.Prng
module Par = Rvi_par.Par
module Faults = Rvi_harness.Faults
module Config = Rvi_harness.Config
module Platform = Rvi_harness.Platform

type violation =
  | Crash of string
  | Inconsistent of string
  | Bad_output of string
  | Unrecovered of string
  | Progress_gap of float
  | Stat_insane of string
  | Starved of int
  | Slo_insane of string

let violation_class = function
  | Crash _ -> "crash"
  | Inconsistent _ -> "inconsistent"
  | Bad_output _ -> "bad-output"
  | Unrecovered _ -> "unrecovered"
  | Progress_gap _ -> "progress-gap"
  | Stat_insane _ -> "stat-insane"
  | Starved _ -> "starved"
  | Slo_insane _ -> "slo-insane"

let violation_detail = function
  | Crash m | Inconsistent m | Bad_output m | Unrecovered m | Stat_insane m
  | Slo_insane m ->
    m
  | Progress_gap ms -> Printf.sprintf "%.1f ms without completion" ms
  | Starved id -> Printf.sprintf "tenant %d starved" id

let rank = function
  | Crash _ -> 0
  | Inconsistent _ -> 1
  | Bad_output _ -> 2
  | Unrecovered _ -> 3
  | Progress_gap _ -> 4
  | Stat_insane _ -> 5
  | Starved _ -> 6
  | Slo_insane _ -> 7

type report = {
  index : int;
  scenario : Scenario.t;
  violations : violation list;
  runs : Faults.run_result list;
}

let classification r =
  match r.violations with [] -> "pass" | v :: _ -> violation_class v

(* The progress invariant: no healthy campaign run takes anywhere near
   this long (the heaviest workload completes in a few simulated
   milliseconds, and every recovery path is bounded by sane watchdogs at
   50 ms or less), so crossing it means the run only terminated because
   the harness' backstop ran out — a liveness bug. *)
let progress_gap_ms = 500.0

(* "Watchdog disabled" still needs the simulation to terminate; a 2 s
   backstop is four times the progress-gap threshold, so a run saved
   only by the backstop is always classified as a violation. *)
let disabled_watchdog = Simtime.of_ms 2_000

let config_of (sc : Scenario.t) =
  let device =
    match Rvi_fpga.Device.by_name sc.Scenario.device with
    | Some d -> d
    | None -> invalid_arg ("Chaos.run: unknown device " ^ sc.Scenario.device)
  in
  let policy () =
    match Rvi_core.Policy.of_name ~seed:sc.Scenario.seed sc.Scenario.policy with
    | Some p -> p
    | None -> invalid_arg ("Chaos.run: unknown policy " ^ sc.Scenario.policy)
  in
  {
    (Config.default ()) with
    Config.device;
    policy;
    policy_name = sc.Scenario.policy;
    transfer = sc.Scenario.transfer;
    prefetch =
      (if sc.Scenario.prefetch_depth <= 0 then Rvi_core.Prefetch.Off
       else Rvi_core.Prefetch.Sequential { depth = sc.Scenario.prefetch_depth });
    imu_kind = sc.Scenario.imu;
    tlb_entries = sc.Scenario.tlb_entries;
    tlb_organization = sc.Scenario.tlb_org;
    translation = sc.Scenario.translation;
    seed = sc.Scenario.seed;
  }

let run_single ~index (sc : Scenario.t) =
  let base = config_of sc in
  let inconsistencies = ref [] in
  let inspect p =
    match Rvi_core.Vim.consistency p.Platform.vim with
    | Ok () -> ()
    | Error m -> inconsistencies := m :: !inconsistencies
  in
  let recovery =
    {
      Rvi_core.Vim.default_recovery with
      Rvi_core.Vim.max_retries = sc.Scenario.max_retries;
    }
  in
  let watchdog =
    if sc.Scenario.watchdog_us = 0 then disabled_watchdog
    else Simtime.of_us sc.Scenario.watchdog_us
  in
  let runs =
    List.mapi
      (fun i app ->
        (* Each application of the mix gets its own injector seed, a pure
           function of (scenario seed, position). *)
        let seed =
          Prng.next (Prng.derive ~seed:sc.Scenario.seed ~index:i)
          land 0x3FFF_FFFF
        in
        let w =
          Faults.workload_of ~seed ~bytes:(sc.Scenario.input_kb * 1024) app
        in
        Faults.run_one ~base ~events:sc.Scenario.events ~inspect
          ~spec:sc.Scenario.rates ~recovery ~watchdog
          ~exec_retries:sc.Scenario.exec_retries ~seed w)
      sc.Scenario.apps
  in
  let of_run (r : Faults.run_result) =
    let base =
      match r.Faults.outcome with
      | Faults.Crashed m -> [ Crash m ]
      | Faults.Degraded { verified = false; reason } ->
        [ Bad_output ("unverified fallback: " ^ reason) ]
      | Faults.Failed "output not verified" ->
        [ Bad_output "hardware output failed verification" ]
      | Faults.Failed m -> [ Unrecovered m ]
      | Faults.Clean | Faults.Recovered _ | Faults.Degraded _ -> []
    in
    let gap =
      if r.Faults.total_ms > progress_gap_ms then
        [ Progress_gap r.Faults.total_ms ]
      else []
    in
    let insane =
      if r.Faults.total_ms < 0.0 then [ Stat_insane "negative run time" ]
      else if r.Faults.outcome = Faults.Clean && r.Faults.injected > 0 then
        [
          Stat_insane
            (Printf.sprintf "clean outcome with %d faults injected"
               r.Faults.injected);
        ]
      else []
    in
    base @ gap @ insane
  in
  let violations =
    List.concat_map of_run runs
    @ List.rev_map (fun m -> Inconsistent m) !inconsistencies
    |> List.stable_sort (fun a b -> compare (rank a) (rank b))
  in
  { index; scenario = sc; violations; runs }

(* Multi-tenant scenarios run through the service instead of the
   single-tenant runner: a closed-loop load of two requests per tenant
   under the scenario's injector, scheduled by the policy the scenario
   seed selects. The service's own invariants join the classification —
   [starved] (a tenant with queued work making no progress inside the
   budget) and [slo-insane] (a statistically impossible latency report,
   or a breach of the scenario's declared p99 objective). *)
let run_service ~index (sc : Scenario.t) =
  let module Injector = Rvi_inject.Injector in
  let module Service = Rvi_svc.Service in
  let module Loadgen = Rvi_svc.Loadgen in
  let module Slo = Rvi_svc.Slo in
  let base = config_of sc in
  let inj = Injector.create ~seed:sc.Scenario.seed ~spec:sc.Scenario.rates in
  if sc.Scenario.events <> [] then Injector.set_events inj sc.Scenario.events;
  let watchdog =
    if sc.Scenario.watchdog_us = 0 then disabled_watchdog
    else Simtime.of_us sc.Scenario.watchdog_us
  in
  let cfg =
    {
      base with
      Config.injector = Some inj;
      recovery =
        {
          Rvi_core.Vim.default_recovery with
          Rvi_core.Vim.max_retries = sc.Scenario.max_retries;
        };
      watchdog;
      exec_retries = sc.Scenario.exec_retries;
    }
  in
  let policies = Rvi_svc.Sched_policy.all in
  let policy = List.nth policies (sc.Scenario.seed mod List.length policies) in
  let requests = 2 * sc.Scenario.tenants in
  let bytes = Stdlib.min 2048 (sc.Scenario.input_kb * 1024) in
  let lg =
    Loadgen.create ~seed:sc.Scenario.seed ~tenants:sc.Scenario.tenants
      ~requests ~rate_hz:0 ~bytes ()
  in
  let tenants = Loadgen.tenants lg in
  let params =
    {
      (Service.default_params policy) with
      Service.sp_starvation_budget =
        Simtime.of_ms (2_000 + (10 * sc.Scenario.tenants));
    }
  in
  let result =
    try
      let svc = Service.create cfg params ~tenants in
      Ok (Service.run svc (Loadgen.feed lg) ~expect:requests)
    with e -> Error (Printexc.to_string e)
  in
  let violations =
    match result with
    | Error m -> [ Crash m ]
    | Ok outcome ->
      let report = Slo.build ~tenants ~outcome in
      let injected = Injector.injected_total inj in
      List.concat
        [
          List.map (fun m -> Inconsistent m) outcome.Service.o_inconsistencies;
          (if report.Slo.r_degraded > 0 && injected = 0 then
             [
               Bad_output
                 (Printf.sprintf
                    "%d degraded completions with no faults injected"
                    report.Slo.r_degraded);
             ]
           else []);
          (if outcome.Service.o_exhausted then
             [ Unrecovered "service dispatch budget exhausted" ]
           else if outcome.Service.o_completed < requests then
             [
               Unrecovered
                 (Printf.sprintf "%d of %d requests completed"
                    outcome.Service.o_completed requests);
             ]
           else []);
          List.map (fun id -> Starved id) outcome.Service.o_starved;
          (if not report.Slo.r_sane then
             [ Slo_insane "latency report has p99 below p50" ]
           else if
             sc.Scenario.slo_p99_ms > 0
             && report.Slo.r_completed > 0
             && report.Slo.r_p99_us
                > float_of_int sc.Scenario.slo_p99_ms *. 1_000.0
           then
             [
               Slo_insane
                 (Printf.sprintf
                    "p99 %.0f us breaches the declared %d ms objective"
                    report.Slo.r_p99_us sc.Scenario.slo_p99_ms);
             ]
           else []);
        ]
      |> List.stable_sort (fun a b -> compare (rank a) (rank b))
  in
  { index; scenario = sc; violations; runs = [] }

let run ?(index = -1) (sc : Scenario.t) =
  if sc.Scenario.tenants > 1 then run_service ~index sc
  else run_single ~index sc

(* {1 Campaigns} *)

let campaign ?(jobs = 1) ?progress ~seed ~count () =
  let exec i = run ~index:i (Scenario.generate ~seed ~index:i) in
  let indices = List.init count Fun.id in
  if jobs <= 1 then
    List.map
      (fun i ->
        let r = exec i in
        (match progress with Some f -> f r | None -> ());
        r)
      indices
  else
    (* Scenario-per-item sharding: each run builds its own platform (the
       geometry varies run to run, so pooling buys nothing) and depends
       only on (campaign seed, index) — results are independent of
       [jobs]. *)
    Par.Pool.map (Par.Pool.shared ~domains:jobs) ~chunk:1 exec indices
    |> List.map (fun r ->
           (match progress with Some f -> f r | None -> ());
           r)

type summary = {
  scenarios : int;
  passes : int;
  by_class : (string * int) list;
}

let summarize reports =
  let tally = Hashtbl.create 7 in
  let passes = ref 0 in
  List.iter
    (fun r ->
      match classification r with
      | "pass" -> incr passes
      | cls ->
        Hashtbl.replace tally cls (1 + Option.value ~default:0 (Hashtbl.find_opt tally cls)))
    reports;
  {
    scenarios = List.length reports;
    passes = !passes;
    by_class =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally []
      |> List.sort compare;
  }

let print_summary ppf s =
  Format.fprintf ppf "%d scenarios: %d passed, %d violated@." s.scenarios
    s.passes (s.scenarios - s.passes);
  List.iter
    (fun (cls, n) -> Format.fprintf ppf "  %-14s %d@." cls n)
    s.by_class

(* {1 Shrinking}

   Textbook delta debugging over the scenario record: propose
   strictly-smaller candidates (drop fault events in halves then singly,
   drop rate rules, collapse the app mix, halve the input, reset geometry
   fields to the default) and keep the first one that still shows the
   original violation class. Greedy first-improvement terminates because
   the measure strictly decreases at every accepted step. *)

let candidates (sc : Scenario.t) =
  let drop_i l i = List.filteri (fun j _ -> j <> i) l in
  let evs = sc.Scenario.events in
  let n = List.length evs in
  let halves =
    if n > 1 then
      [
        { sc with Scenario.events = List.filteri (fun i _ -> i < n / 2) evs };
        { sc with Scenario.events = List.filteri (fun i _ -> i >= n / 2) evs };
      ]
    else []
  in
  let singles =
    List.init n (fun i -> { sc with Scenario.events = drop_i evs i })
  in
  let rates =
    (if sc.Scenario.rates <> [] then [ { sc with Scenario.rates = [] } ]
     else [])
    @ List.init
        (List.length sc.Scenario.rates)
        (fun i -> { sc with Scenario.rates = drop_i sc.Scenario.rates i })
  in
  let apps =
    if List.length sc.Scenario.apps > 1 then
      List.map (fun a -> { sc with Scenario.apps = [ a ] }) sc.Scenario.apps
    else []
  in
  let kb =
    if sc.Scenario.input_kb > 1 then
      [ { sc with Scenario.input_kb = sc.Scenario.input_kb / 2 } ]
    else []
  in
  let d = Scenario.default in
  let resets =
    [
      { sc with Scenario.device = d.Scenario.device };
      { sc with Scenario.translation = d.Scenario.translation };
      { sc with Scenario.imu = d.Scenario.imu };
      { sc with Scenario.tlb_entries = d.Scenario.tlb_entries };
      { sc with Scenario.tlb_org = d.Scenario.tlb_org };
      { sc with Scenario.policy = d.Scenario.policy };
      { sc with Scenario.prefetch_depth = d.Scenario.prefetch_depth };
      { sc with Scenario.transfer = d.Scenario.transfer };
      { sc with Scenario.exec_retries = d.Scenario.exec_retries };
      { sc with Scenario.max_retries = d.Scenario.max_retries };
      { sc with Scenario.tenants = d.Scenario.tenants };
      { sc with Scenario.slo_p99_ms = d.Scenario.slo_p99_ms };
    ]
  in
  List.filter (fun c -> c <> sc) (halves @ singles @ rates @ apps @ kb @ resets)

let shrink ?(max_steps = 64) ~cls sc0 =
  let rec go sc steps =
    if steps <= 0 then sc
    else
      let smaller =
        List.filter
          (fun c -> Scenario.measure c < Scenario.measure sc)
          (candidates sc)
      in
      match
        List.find_opt (fun c -> classification (run c) = cls) smaller
      with
      | Some c -> go c (steps - 1)
      | None -> sc
  in
  go sc0 max_steps

(* {1 Corpus}

   One file per minimal repro. The content is the serialised scenario
   plus an [# expect:] header carrying the violation class, so a corpus
   file is self-checking: replay runs the scenario and compares the
   classification against the header. *)

let mkdir_p dir =
  let rec go d =
    if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
    else begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let corpus_entry r =
  Printf.sprintf
    "# chaos repro — replay with: rvisim chaos --replay <this file>\n\
     # expect: %s\n\
     %s\n"
    (classification r)
    (Scenario.to_string r.scenario)

let corpus_filename ~campaign_seed r =
  Printf.sprintf "seed%d-i%04d-%s.scenario" campaign_seed (max 0 r.index)
    (classification r)

let save_corpus ~dir ~campaign_seed reports =
  mkdir_p dir;
  List.map
    (fun r ->
      let path = Filename.concat dir (corpus_filename ~campaign_seed r) in
      let oc = open_out path in
      output_string oc (corpus_entry r);
      close_out oc;
      path)
    reports

let load_corpus_file path =
  let ic = open_in path in
  let rec lines acc =
    match input_line ic with
    | line -> lines (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let all = lines [] in
  close_in ic;
  let expect =
    List.find_map
      (fun l ->
        let prefix = "# expect: " in
        if String.length l >= String.length prefix
           && String.sub l 0 (String.length prefix) = prefix
        then Some (String.trim (String.sub l (String.length prefix)
                                  (String.length l - String.length prefix)))
        else None)
      all
  in
  match
    List.find_opt
      (fun l ->
        let l = String.trim l in
        l <> "" && l.[0] <> '#')
      all
  with
  | None -> Error (path ^ ": no scenario line")
  | Some line -> (
    match Scenario.of_string line with
    | Ok sc -> Ok (sc, expect)
    | Error e -> Error (Printf.sprintf "%s: %s" path e))

let replay path =
  match load_corpus_file path with
  | Error e -> Error e
  | Ok (sc, expect) ->
    let r = run sc in
    let cls = classification r in
    (match expect with
    | Some want when want <> cls ->
      Error
        (Printf.sprintf "%s: expected %s, observed %s" path want cls)
    | _ -> Ok r)
