lib/mem/sdram.ml: Bytes Ram
