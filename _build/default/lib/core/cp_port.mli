(** The coprocessor/IMU signal bundle (paper, Figure 4).

    This is the *portable* side of the interface: a coprocessor written
    against these signals never sees a physical address, so the same design
    runs on any device. Signal names follow the paper:

    - [CP_OBJ]/[CP_ADDR]: virtual address — object identifier plus byte
      offset within the object;
    - [CP_DIN]/[CP_DOUT]: data to / from the coprocessor;
    - [CP_ACCESS]/[CP_WR]: access request strobe and write flag;
    - [CP_START]: asserted by the IMU when the user starts execution;
    - [CP_TLBHIT]: translation success — the coprocessor must wait for it
      before consuming [CP_DIN] or considering a write done;
    - [CP_FIN]: asserted by the coprocessor on completion.

    Fields are committed registers: components write them during their
    commit phase and sample them during the next compute phase. *)

type width = W8 | W16 | W32

val width_bits : width -> int
val width_bytes : width -> int

type t = {
  (* coprocessor -> IMU *)
  mutable cp_obj : int;  (** object identifier, 0..254 *)
  mutable cp_addr : int;  (** byte offset within the object *)
  mutable cp_dout : int;  (** write data *)
  mutable cp_access : bool;
  mutable cp_wr : bool;
  mutable cp_width : width;
  mutable cp_fin : bool;
  (* IMU -> coprocessor *)
  mutable cp_start : bool;
  mutable cp_tlbhit : bool;
  mutable cp_din : int;  (** read data, valid while [cp_tlbhit] *)
}

val param_obj : int
(** The reserved object identifier (255) through which the coprocessor
    reads its scalar parameters from the parameter-passing page. *)

val max_data_obj : int
(** Largest identifier usable for mapped data objects (254). *)

val create : unit -> t
(** All signals deasserted. *)

val reset : t -> unit

val probe : t -> Rvi_hw.Wave.t -> unit
(** Registers every signal of the bundle on a waveform tracer, with the
    paper's signal names. *)
