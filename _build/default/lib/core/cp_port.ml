type width = W8 | W16 | W32

let width_bits = function W8 -> 8 | W16 -> 16 | W32 -> 32
let width_bytes = function W8 -> 1 | W16 -> 2 | W32 -> 4

type t = {
  mutable cp_obj : int;
  mutable cp_addr : int;
  mutable cp_dout : int;
  mutable cp_access : bool;
  mutable cp_wr : bool;
  mutable cp_width : width;
  mutable cp_fin : bool;
  mutable cp_start : bool;
  mutable cp_tlbhit : bool;
  mutable cp_din : int;
}

let param_obj = 255
let max_data_obj = 254

let create () =
  {
    cp_obj = 0;
    cp_addr = 0;
    cp_dout = 0;
    cp_access = false;
    cp_wr = false;
    cp_width = W32;
    cp_fin = false;
    cp_start = false;
    cp_tlbhit = false;
    cp_din = 0;
  }

let reset t =
  t.cp_obj <- 0;
  t.cp_addr <- 0;
  t.cp_dout <- 0;
  t.cp_access <- false;
  t.cp_wr <- false;
  t.cp_width <- W32;
  t.cp_fin <- false;
  t.cp_start <- false;
  t.cp_tlbhit <- false;
  t.cp_din <- 0

let probe t wave =
  let b f = if f () then 1 else 0 in
  Rvi_hw.Wave.add_signal wave ~name:"cp_start" ~width:1 (fun () -> b (fun () -> t.cp_start));
  Rvi_hw.Wave.add_signal wave ~name:"cp_obj" ~width:8 (fun () -> t.cp_obj);
  Rvi_hw.Wave.add_signal wave ~name:"cp_addr" ~width:24 (fun () -> t.cp_addr);
  Rvi_hw.Wave.add_signal wave ~name:"cp_access" ~width:1 (fun () -> b (fun () -> t.cp_access));
  Rvi_hw.Wave.add_signal wave ~name:"cp_wr" ~width:1 (fun () -> b (fun () -> t.cp_wr));
  Rvi_hw.Wave.add_signal wave ~name:"cp_tlbhit" ~width:1 (fun () -> b (fun () -> t.cp_tlbhit));
  Rvi_hw.Wave.add_signal wave ~name:"cp_din" ~width:32 (fun () -> t.cp_din);
  Rvi_hw.Wave.add_signal wave ~name:"cp_dout" ~width:32 (fun () -> t.cp_dout);
  Rvi_hw.Wave.add_signal wave ~name:"cp_fin" ~width:1 (fun () -> b (fun () -> t.cp_fin))
