(* Fixed-bin logarithmic histogram: bounded memory whatever the stream
   length, with a bounded relative error set by the bin growth factor.
   Samples at or below zero land in a dedicated underflow bin (simulated
   durations are never negative, but zero-length services do occur). *)

(* gamma^1024 spans ~1e-6 .. 1e15 with gamma = 1.048576^(1/2)... use an
   explicit growth factor: each bin covers [gamma^i, gamma^(i+1)). *)
let gamma = 1.05
let log_gamma = Float.log gamma

(* Bin 0 covers [min_value, min_value * gamma); values below min_value
   (but > 0) clamp into bin 0, values beyond the top clamp into the last
   bin. 1024 bins at 5% growth cover ~21 decades — microseconds to weeks
   when samples are microsecond latencies. *)
let n_bins = 1024
let min_value = 1e-6

type t = {
  bins : int array;
  mutable underflow : int; (* samples <= 0 *)
  mutable count : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
}

let create () =
  {
    bins = Array.make n_bins 0;
    underflow = 0;
    count = 0;
    sum = 0.0;
    min = Float.infinity;
    max = Float.neg_infinity;
  }

let bin_lower i = min_value *. (gamma ** float_of_int i)

let bin_index x =
  if x <= 0.0 then -1
  else
    let i = int_of_float (Float.floor (Float.log (x /. min_value) /. log_gamma)) in
    let i = if i < 0 then 0 else if i >= n_bins then n_bins - 1 else i in
    (* The log quotient is inexact: a sample sitting on an exact bin
       boundary (x = min_value * gamma^k) can round a hair under k and
       land one bin low, or a hair over and land one bin high. Settle
       against the true bin bounds, which are computed the same way on
       both sides of the comparison and therefore consistent. *)
    if i > 0 && x < bin_lower i then i - 1
    else if i < n_bins - 1 && x >= bin_lower (i + 1) then i + 1
    else i

(* Geometric midpoint of a bin — the value reported for any sample that
   fell into it. *)
let bin_value i =
  if i < 0 then 0.0
  else min_value *. (gamma ** (float_of_int i +. 0.5))

let add t x =
  (if x <= 0.0 then t.underflow <- t.underflow + 1
   else
     let i = bin_index x in
     t.bins.(i) <- t.bins.(i) + 1);
  t.count <- t.count + 1;
  t.sum <- t.sum +. x;
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.count
let sum t = t.sum
let min t = if t.count = 0 then 0.0 else t.min
let max t = if t.count = 0 then 0.0 else t.max
let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

(* The q-th percentile (q in [0,100]): the representative value of the bin
   holding the ceil(q/100 * count)-th smallest sample. Exact for the
   underflow bin (those samples are <= 0, reported as 0). The positive
   result is clamped into [min, max] of the observed samples — so a
   single-sample histogram reports the sample itself at every q, and no
   percentile ever exceeds the largest (or undercuts the smallest
   positive) sample because of bin-midpoint rounding. *)
let percentile t q =
  if q < 0.0 || q > 100.0 then invalid_arg "Histogram.percentile: q outside [0,100]";
  if t.count = 0 then 0.0
  else begin
    let rank =
      (* q/100 * count is inexact: an exact-boundary product (q = 50,
         count even) rounding a hair high would push ceil to the next
         rank. Shave an epsilon well under 1/count's resolution first. *)
      let r =
        int_of_float
          (Float.ceil ((q /. 100.0 *. float_of_int t.count) -. 1e-9))
      in
      if r < 1 then 1 else r
    in
    if rank <= t.underflow then 0.0
    else begin
      let remaining = ref (rank - t.underflow) in
      let result = ref (bin_value (n_bins - 1)) in
      (try
         for i = 0 to n_bins - 1 do
           remaining := !remaining - t.bins.(i);
           if !remaining <= 0 then begin
             result := bin_value i;
             raise Exit
           end
         done
       with Exit -> ());
      let v = if !result > t.max then t.max else !result in
      if t.min > 0.0 && v < t.min then t.min else v
    end
  end

(* Bin-wise sum: both histograms share the fixed bin layout, so merging
   is exact for counts and percentiles (same bins a serial stream would
   have filled) and commutative/associative. *)
let merge_into ~into src =
  for i = 0 to n_bins - 1 do
    into.bins.(i) <- into.bins.(i) + src.bins.(i)
  done;
  into.underflow <- into.underflow + src.underflow;
  into.count <- into.count + src.count;
  into.sum <- into.sum +. src.sum;
  if src.count > 0 then begin
    if src.min < into.min then into.min <- src.min;
    if src.max > into.max then into.max <- src.max
  end

let reset t =
  Array.fill t.bins 0 n_bins 0;
  t.underflow <- 0;
  t.count <- 0;
  t.sum <- 0.0;
  t.min <- Float.infinity;
  t.max <- Float.neg_infinity
