module Bits = Rvi_hw.Bits
module Reg = Rvi_hw.Reg

(* State encoding, as a synthesis tool would pick it. *)
let st_idle = Bits.make ~width:2 0
let st_lookup = Bits.make ~width:2 1
let st_access = Bits.make ~width:2 2
let st_fault = Bits.make ~width:2 3

let obj_w = 8
let addr_w = 24
let data_w = 32

type slot_regs = {
  valid : bool Reg.t;
  tag : Bits.t Reg.t; (* object id ++ virtual page number *)
  ppn : Bits.t Reg.t;
  dirty : bool Reg.t;
  referenced : bool Reg.t;
}

type t = {
  port : Cp_port.t;
  dpram : Rvi_mem.Dpram.t;
  raise_irq : unit -> unit;
  geom : Rvi_mem.Page.geometry;
  offset_w : int;
  vpn_w : int;
  ppn_w : int;
  slots : slot_regs array;
  (* datapath registers *)
  state : Bits.t Reg.t;
  lookup_cnt : Bits.t Reg.t;
  req_obj : Bits.t Reg.t;
  req_addr : Bits.t Reg.t;
  req_wr : bool Reg.t;
  req_data : Bits.t Reg.t;
  req_width : Bits.t Reg.t; (* 0 = 8, 1 = 16, 2 = 32 *)
  matched_ppn : Bits.t Reg.t;
  (* architectural flags *)
  fin_seen : bool Reg.t;
  prev_fin : bool Reg.t;
  params_done : bool Reg.t;
  start_pending : bool Reg.t;
  resume_pending : bool Reg.t;
  just_resumed : bool Reg.t;
  fault_key : (int * int) option Reg.t;
  param_page : Bits.t Reg.t;
  param_valid : bool Reg.t;
  (* output registers driving the port *)
  out_start : bool Reg.t;
  out_tlbhit : bool Reg.t;
  out_din : Bits.t Reg.t;
}

let log2 n =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v / 2) in
  go 0 n

let create ?(entries = 8) ~port ~dpram ~raise_irq () =
  let geom = Rvi_mem.Dpram.geometry dpram in
  let offset_w = log2 geom.Rvi_mem.Page.page_size in
  let vpn_w = addr_w - offset_w in
  let ppn_w = log2 geom.Rvi_mem.Page.n_pages in
  let slot () =
    {
      valid = Reg.create false;
      tag = Reg.create (Bits.zero ~width:(obj_w + vpn_w));
      ppn = Reg.create (Bits.zero ~width:ppn_w);
      dirty = Reg.create false;
      referenced = Reg.create false;
    }
  in
  {
    port;
    dpram;
    raise_irq;
    geom;
    offset_w;
    vpn_w;
    ppn_w;
    slots = Array.init entries (fun _ -> slot ());
    state = Reg.create st_idle;
    lookup_cnt = Reg.create (Bits.zero ~width:2);
    req_obj = Reg.create (Bits.zero ~width:obj_w);
    req_addr = Reg.create (Bits.zero ~width:addr_w);
    req_wr = Reg.create false;
    req_data = Reg.create (Bits.zero ~width:data_w);
    req_width = Reg.create (Bits.zero ~width:2);
    matched_ppn = Reg.create (Bits.zero ~width:ppn_w);
    fin_seen = Reg.create false;
    prev_fin = Reg.create false;
    params_done = Reg.create false;
    start_pending = Reg.create false;
    resume_pending = Reg.create false;
    just_resumed = Reg.create false;
    fault_key = Reg.create None;
    param_page = Reg.create (Bits.zero ~width:ppn_w);
    param_valid = Reg.create false;
    out_start = Reg.create false;
    out_tlbhit = Reg.create false;
    out_din = Reg.create (Bits.zero ~width:data_w);
  }

let tag_of t ~obj_id ~vpn =
  Bits.concat (Bits.make ~width:obj_w obj_id) (Bits.make ~width:t.vpn_w vpn)

let req_vpn t =
  Bits.to_int (Bits.slice ~hi:(addr_w - 1) ~lo:t.offset_w (Reg.get t.req_addr))

let req_offset t =
  Bits.to_int (Bits.slice ~hi:(t.offset_w - 1) ~lo:0 (Reg.get t.req_addr))

(* Combinational CAM match over the committed tag registers. *)
let cam_match t ~tag =
  let rec go i =
    if i >= Array.length t.slots then None
    else if
      Reg.get t.slots.(i).valid && Bits.equal (Reg.get t.slots.(i).tag) tag
    then Some i
    else go (i + 1)
  in
  go 0

let width_bits_of t =
  match Bits.to_int (Reg.get t.req_width) with
  | 0 -> 8
  | 1 -> 16
  | _ -> 32

let latch_request t =
  let p = t.port in
  Reg.set t.req_obj (Bits.make ~width:obj_w p.Cp_port.cp_obj);
  Reg.set t.req_addr (Bits.make ~width:addr_w p.Cp_port.cp_addr);
  Reg.set t.req_wr p.Cp_port.cp_wr;
  Reg.set t.req_data (Bits.make ~width:data_w p.Cp_port.cp_dout);
  Reg.set t.req_width
    (Bits.make ~width:2
       (match p.Cp_port.cp_width with
       | Cp_port.W8 -> 0
       | Cp_port.W16 -> 1
       | Cp_port.W32 -> 2));
  Reg.set t.state st_lookup;
  Reg.set t.lookup_cnt (Bits.make ~width:2 2)

(* The CAM result cycle: translate the latched request or trap. *)
let resolve t =
  let obj_id = Bits.to_int (Reg.get t.req_obj) in
  let vpn = req_vpn t in
  if obj_id = Cp_port.param_obj then begin
    if not (Reg.get t.param_valid) then
      failwith "Imu_rtl: parameter access with no parameter page configured";
    Reg.set t.matched_ppn (Reg.get t.param_page);
    Reg.set t.state st_access
  end
  else begin
    if not (Reg.get t.params_done) then Reg.set t.params_done true;
    match cam_match t ~tag:(tag_of t ~obj_id ~vpn) with
    | Some i ->
      let s = t.slots.(i) in
      if Reg.get t.req_wr then Reg.set s.dirty true;
      Reg.set s.referenced true;
      Reg.set t.matched_ppn (Reg.get s.ppn);
      Reg.set t.state st_access;
      Reg.set t.just_resumed false;
      Reg.set t.fault_key None
    | None ->
      if Reg.get t.just_resumed && Reg.get t.fault_key = Some (obj_id, vpn) then
        failwith
          (Printf.sprintf
             "Imu_rtl: double fault on object %d page %d — OS resumed \
              without installing a translation"
             obj_id vpn);
      Reg.set t.fault_key (Some (obj_id, vpn));
      Reg.set t.just_resumed false;
      Reg.set t.state st_fault;
      t.raise_irq ()
  end

let perform_access t =
  let offset = req_offset t in
  let width = width_bits_of t in
  if offset + (width / 8) > t.geom.Rvi_mem.Page.page_size then
    failwith "Imu_rtl: access crosses a page boundary";
  let paddr =
    Rvi_mem.Page.base t.geom (Bits.to_int (Reg.get t.matched_ppn)) + offset
  in
  if Reg.get t.req_wr then
    Rvi_mem.Dpram.write t.dpram ~width paddr
      (Bits.to_int (Reg.get t.req_data))
  else
    Reg.set t.out_din
      (Bits.make ~width:data_w (Rvi_mem.Dpram.read t.dpram ~width paddr));
  Reg.set t.out_tlbhit true;
  Reg.set t.state st_idle

let compute t =
  Reg.set t.out_start false;
  Reg.set t.out_tlbhit false;
  (* CP_FIN rising-edge latch. *)
  let fin_now = t.port.Cp_port.cp_fin in
  if fin_now && (not (Reg.get t.prev_fin)) && not (Reg.get t.fin_seen) then begin
    Reg.set t.fin_seen true;
    t.raise_irq ()
  end;
  Reg.set t.prev_fin fin_now;
  let state = Reg.get t.state in
  if Bits.equal state st_idle then begin
    if Reg.get t.start_pending then begin
      Reg.set t.start_pending false;
      Reg.set t.out_start true
    end
    else if t.port.Cp_port.cp_access && not (Reg.get t.fin_seen) then
      latch_request t
  end
  else if Bits.equal state st_lookup then begin
    let cnt = Bits.to_int (Reg.get t.lookup_cnt) in
    if cnt > 1 then Reg.set t.lookup_cnt (Bits.make ~width:2 (cnt - 1))
    else resolve t
  end
  else if Bits.equal state st_access then perform_access t
  else if Reg.get t.resume_pending then begin
    (* fault state, OS asked for a retry *)
    Reg.set t.resume_pending false;
    Reg.set t.just_resumed true;
    Reg.set t.state st_lookup;
    Reg.set t.lookup_cnt (Bits.make ~width:2 2)
  end

let commit t =
  Reg.commit t.state;
  Reg.commit t.lookup_cnt;
  Reg.commit t.req_obj;
  Reg.commit t.req_addr;
  Reg.commit t.req_wr;
  Reg.commit t.req_data;
  Reg.commit t.req_width;
  Reg.commit t.matched_ppn;
  Reg.commit t.fin_seen;
  Reg.commit t.prev_fin;
  Reg.commit t.params_done;
  Reg.commit t.start_pending;
  Reg.commit t.resume_pending;
  Reg.commit t.just_resumed;
  Reg.commit t.fault_key;
  Reg.commit t.param_page;
  Reg.commit t.param_valid;
  Reg.commit t.out_start;
  Reg.commit t.out_tlbhit;
  Reg.commit t.out_din;
  Array.iter
    (fun s ->
      Reg.commit s.valid;
      Reg.commit s.tag;
      Reg.commit s.ppn;
      Reg.commit s.dirty;
      Reg.commit s.referenced)
    t.slots;
  t.port.Cp_port.cp_start <- Reg.get t.out_start;
  t.port.Cp_port.cp_tlbhit <- Reg.get t.out_tlbhit;
  if Reg.get t.out_tlbhit then
    t.port.Cp_port.cp_din <- Bits.to_int (Reg.get t.out_din)

let component t =
  Rvi_sim.Clock.component ~name:"imu-rtl"
    ~compute:(fun () -> compute t)
    ~commit:(fun () -> commit t)
    ()

(* Bus-side accessors run in OS context, between clock edges: they act on
   the committed register values directly (asynchronous register file
   port), so both current and pending views are updated. *)

let read_ar t =
  Imu_regs.ar_encode
    ~obj_id:(Bits.to_int (Reg.get t.req_obj))
    ~addr:(Bits.to_int (Reg.get t.req_addr))

let read_sr t =
  Imu_regs.sr_encode
    ~fault:(Bits.equal (Reg.get t.state) st_fault)
    ~fin:(Reg.get t.fin_seen)
    ~busy:(not (Bits.equal (Reg.get t.state) st_idle))
    ~params_done:(Reg.get t.params_done)

let write_cr t word =
  if Imu_regs.test word Imu_regs.cr_reset then begin
    Reg.reset t.state st_idle;
    Reg.reset t.fin_seen false;
    Reg.reset t.prev_fin t.port.Cp_port.cp_fin;
    Reg.reset t.params_done false;
    Reg.reset t.start_pending false;
    Reg.reset t.resume_pending false;
    Reg.reset t.just_resumed false;
    Reg.reset t.fault_key None;
    Reg.reset t.out_start false;
    Reg.reset t.out_tlbhit false;
    t.port.Cp_port.cp_start <- false;
    t.port.Cp_port.cp_tlbhit <- false
  end;
  if Imu_regs.test word Imu_regs.cr_start then Reg.reset t.start_pending true;
  if Imu_regs.test word Imu_regs.cr_resume then Reg.reset t.resume_pending true

let set_param_page t = function
  | Some ppn ->
    Reg.reset t.param_page (Bits.make ~width:t.ppn_w ppn);
    Reg.reset t.param_valid true
  | None -> Reg.reset t.param_valid false

let check_slot t slot =
  if slot < 0 || slot >= Array.length t.slots then
    invalid_arg "Imu_rtl: slot out of range"

let tlb_write t ~slot ~obj_id ~vpn ~ppn =
  check_slot t slot;
  let s = t.slots.(slot) in
  Reg.reset s.valid true;
  Reg.reset s.tag (tag_of t ~obj_id ~vpn);
  Reg.reset s.ppn (Bits.make ~width:t.ppn_w ppn);
  Reg.reset s.dirty false;
  Reg.reset s.referenced false

let tlb_invalidate t ~slot =
  check_slot t slot;
  Reg.reset t.slots.(slot).valid false

let tlb_invalidate_all t =
  Array.iteri (fun slot _ -> tlb_invalidate t ~slot) t.slots

let tlb_dirty t ~slot =
  check_slot t slot;
  Reg.get t.slots.(slot).dirty

let tlb_valid t ~slot =
  check_slot t slot;
  Reg.get t.slots.(slot).valid

let fault t =
  if Bits.equal (Reg.get t.state) st_fault then Reg.get t.fault_key else None

let finished t = Reg.get t.fin_seen
