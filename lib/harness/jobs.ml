module Simtime = Rvi_sim.Simtime
module Clock = Rvi_sim.Clock
module Kernel = Rvi_os.Kernel
module Uspace = Rvi_os.Uspace
module Accounting = Rvi_os.Accounting
module Cost_model = Rvi_os.Cost_model
module Device = Rvi_fpga.Device

type app_kind = Adpcm | Idea | Fir

let app_name = function Adpcm -> "adpcm" | Idea -> "idea" | Fir -> "fir"

type job = { kind : app_kind; seed : int; input_bytes : int }

type discipline = Fcfs | Grouped

let discipline_name = function Fcfs -> "fcfs" | Grouped -> "grouped"

type result = {
  jobs_done : int;
  all_verified : bool;
  makespan : Simtime.t;
  reconfigurations : int;
  configuration_time : Simtime.t;
}

type station = {
  kind : app_kind;
  bitstream : Rvi_fpga.Bitstream.t;
  vim : Rvi_core.Vim.t;
  run_job : job -> bool; (* maps, executes, verifies *)
}

let bitstream_of = function
  | Adpcm -> Calibration.adpcm_bitstream
  | Idea -> Calibration.idea_bitstream
  | Fir -> Calibration.fir_bitstream

(* One station = the hardware a bit-stream instantiates (IMU + coprocessor
   on their clock domain) plus the VIM bound to it on a dedicated
   interrupt line. All stations share the kernel, the PLD and the
   dual-port RAM; only the station whose bit-stream is configured has its
   clock running. *)
let make_station (cfg : Config.t) ~kernel ~dpram ~irq_line kind =
  let bitstream = bitstream_of kind in
  let port = Rvi_core.Cp_port.create () in
  let imu =
    Rvi_core.Imu.create ~config:(Config.imu_config cfg) ~port ~dpram
      ~raise_irq:(fun () -> Rvi_os.Irq.raise_line (Kernel.irq kernel) ~line:irq_line)
      ()
  in
  let clock =
    Clock.create (Kernel.engine kernel)
      ~name:(app_name kind ^ "-pld")
      ~freq_hz:bitstream.Rvi_fpga.Bitstream.imu_freq_hz
  in
  let vim =
    Rvi_core.Vim.create ~irq_line ~kernel ~dpram ~imu
      ~ahb:cfg.Config.device.Device.ahb ~clocks:[ clock ]
      (Config.vim_config cfg)
  in
  let vport, coproc =
    match kind with
    | Adpcm -> Rvi_coproc.Adpcm_coproc.Virtual.create port
    | Idea -> Rvi_coproc.Idea_coproc.Virtual.create port
    | Fir -> Rvi_coproc.Fir_coproc.Virtual.create port
  in
  let divide = bitstream.Rvi_fpga.Bitstream.coproc_divide in
  if divide = 1 then
    Clock.add clock
      (Rvi_coproc.Vport.fused_component vport ~imu
         coproc.Rvi_coproc.Coproc.component)
  else begin
    Clock.add clock (Rvi_core.Imu.component imu);
    Clock.add clock (Rvi_coproc.Vport.sync_component vport);
    Clock.add clock ~divide coproc.Rvi_coproc.Coproc.component
  end;
  let map vim ~id ~buf ~dir ~stream =
    match
      Rvi_core.Vim.map_object vim
        (Rvi_core.Mapped_object.make ~id ~buf ~dir ~stream ())
    with
    | Ok () -> ()
    | Error msg -> failwith ("Jobs: map_object failed: " ^ msg)
  in
  let run_job (job : job) =
    Rvi_core.Vim.unmap_all vim;
    match job.kind with
    | Adpcm ->
      let input = Workload.adpcm_stream ~seed:job.seed ~bytes:job.input_bytes in
      let in_buf = Uspace.of_bytes kernel input in
      let out_buf =
        Uspace.alloc kernel (Rvi_coproc.Adpcm_ref.decoded_size job.input_bytes)
      in
      map vim ~id:Rvi_coproc.Adpcm_coproc.obj_in ~buf:in_buf
        ~dir:Rvi_core.Mapped_object.In ~stream:true;
      map vim ~id:Rvi_coproc.Adpcm_coproc.obj_out ~buf:out_buf
        ~dir:Rvi_core.Mapped_object.Out ~stream:true;
      (match Rvi_core.Vim.execute vim ~params:[ job.input_bytes ] with
      | Ok () ->
        Bytes.equal (Uspace.read kernel out_buf)
          (Rvi_coproc.Adpcm_ref.decode input)
      | Error _ -> false)
    | Idea ->
      let key = Workload.idea_key ~seed:job.seed in
      let input = Workload.idea_plaintext ~seed:job.seed ~bytes:job.input_bytes in
      let in_buf = Uspace.of_bytes kernel input in
      let out_buf = Uspace.alloc kernel job.input_bytes in
      map vim ~id:Rvi_coproc.Idea_coproc.obj_in ~buf:in_buf
        ~dir:Rvi_core.Mapped_object.In ~stream:true;
      map vim ~id:Rvi_coproc.Idea_coproc.obj_out ~buf:out_buf
        ~dir:Rvi_core.Mapped_object.Out ~stream:true;
      (match
         Rvi_core.Vim.execute vim
           ~params:
             (Rvi_coproc.Idea_coproc.params
                ~n_blocks:(job.input_bytes / 8)
                ~decrypt:false ~key)
       with
      | Ok () ->
        Bytes.equal (Uspace.read kernel out_buf)
          (Rvi_coproc.Idea_ref.ecb ~key ~decrypt:false input)
      | Error _ -> false)
    | Fir ->
      let coeffs = Workload.fir_coeffs ~taps:16 in
      let shift = 12 in
      let taps = Array.length coeffs in
      let input = Workload.fir_signal ~seed:job.seed ~bytes:job.input_bytes in
      let coeff_bytes = Bytes.create (2 * taps) in
      Array.iteri
        (fun i c ->
          let u = c land 0xFFFF in
          Bytes.set coeff_bytes (2 * i) (Char.chr (u land 0xFF));
          Bytes.set coeff_bytes ((2 * i) + 1) (Char.chr ((u lsr 8) land 0xFF)))
        coeffs;
      let in_buf = Uspace.of_bytes kernel input in
      let coeff_buf = Uspace.of_bytes kernel coeff_bytes in
      let out_buf =
        Uspace.alloc kernel (Rvi_coproc.Fir_ref.output_bytes ~taps job.input_bytes)
      in
      map vim ~id:Rvi_coproc.Fir_coproc.obj_in ~buf:in_buf
        ~dir:Rvi_core.Mapped_object.In ~stream:true;
      map vim ~id:Rvi_coproc.Fir_coproc.obj_coeff ~buf:coeff_buf
        ~dir:Rvi_core.Mapped_object.In ~stream:false;
      map vim ~id:Rvi_coproc.Fir_coproc.obj_out ~buf:out_buf
        ~dir:Rvi_core.Mapped_object.Out ~stream:true;
      (match
         Rvi_core.Vim.execute vim
           ~params:
             (Rvi_coproc.Fir_coproc.params
                ~n_out:((job.input_bytes / 2) - taps + 1)
                ~taps ~shift)
       with
      | Ok () ->
        Bytes.equal (Uspace.read kernel out_buf)
          (Rvi_coproc.Fir_ref.filter_bytes ~coeffs ~shift input)
      | Error _ -> false)
  in
  { kind; bitstream; vim; run_job }

let run (cfg : Config.t) ~jobs discipline =
  let engine = Rvi_sim.Engine.create () in
  let cost = Cost_model.default ~cpu_freq_hz:cfg.Config.device.Device.cpu_freq_hz in
  let kernel = Kernel.create ~engine ~cost ~sdram_bytes:(4 * 1024 * 1024) () in
  let dpram = Rvi_mem.Dpram.create (Device.geometry cfg.Config.device) in
  let pld = Rvi_fpga.Pld.create cfg.Config.device in
  let sched = Kernel.sched kernel in
  let dispatcher = Rvi_os.Sched.spawn sched ~name:"dispatcher" in
  ignore (Rvi_os.Sched.schedule sched);
  let kinds =
    List.fold_left
      (fun acc (j : job) -> if List.mem j.kind acc then acc else acc @ [ j.kind ])
      [] jobs
  in
  let stations =
    List.mapi (fun i kind -> make_station cfg ~kernel ~dpram ~irq_line:i kind) kinds
  in
  let station_of kind = List.find (fun s -> s.kind = kind) stations in
  let order =
    match discipline with
    | Fcfs -> jobs
    | Grouped ->
      List.stable_sort
        (fun (a : job) (b : job) -> compare (app_name a.kind) (app_name b.kind))
        jobs
  in
  let pid = dispatcher.Rvi_os.Proc.pid in
  let config_time = ref Simtime.zero in
  let t0 = Kernel.now kernel in
  let all_verified = ref true in
  let done_count = ref 0 in
  List.iter
    (fun (job : job) ->
      let st = station_of job.kind in
      if Rvi_fpga.Pld.loaded pld <> Some st.bitstream then begin
        (match Rvi_fpga.Pld.owner pld with
        | Some owner -> (
          match Rvi_fpga.Pld.release pld ~pid:owner with
          | Ok () -> ()
          | Error _ -> failwith "Jobs: release failed")
        | None -> ());
        let t_cfg = Kernel.now kernel in
        Kernel.charge kernel Accounting.Sw_os
          ~cycles:cost.Cost_model.configure_pld;
        (match Rvi_fpga.Pld.configure pld ~pid st.bitstream with
        | Ok () -> ()
        | Error e -> failwith ("Jobs: " ^ Rvi_fpga.Pld.error_to_string e));
        config_time :=
          Simtime.add !config_time (Simtime.sub (Kernel.now kernel) t_cfg)
      end;
      let ok = st.run_job job in
      if not ok then all_verified := false;
      incr done_count;
      (* Job buffers are dead now; recycle the arena. *)
      Rvi_mem.Sdram.release_all (Kernel.sdram kernel))
    order;
  {
    jobs_done = !done_count;
    all_verified = !all_verified;
    makespan = Simtime.sub (Kernel.now kernel) t0;
    reconfigurations = Rvi_fpga.Pld.reconfigurations pld;
    configuration_time = !config_time;
  }

let mixed_batch ~seed ~jobs_per_app =
  List.concat
    (List.init jobs_per_app (fun i ->
         [
           { kind = Adpcm; seed = seed + (3 * i); input_bytes = 4 * 1024 };
           { kind = Idea; seed = seed + (3 * i) + 1; input_bytes = 4 * 1024 };
           { kind = Fir; seed = seed + (3 * i) + 2; input_bytes = 8 * 1024 };
         ]))
