(* Integration tests: the full virtualised stack end to end, the syscall
   API's failure modes, calibration pins, and the experiment drivers on
   reduced workloads. *)

module Simtime = Rvi_sim.Simtime
module Config = Rvi_harness.Config
module Runner = Rvi_harness.Runner
module Report = Rvi_harness.Report
module Workload = Rvi_harness.Workload
module Platform = Rvi_harness.Platform
module Calibration = Rvi_harness.Calibration
module Experiments = Rvi_harness.Experiments
module Api = Rvi_core.Api

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let cfg () = Config.default ()

let null_ppf = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

(* {1 Calibration} *)

let test_calibration_pins () =
  List.iter
    (fun p ->
      let rel =
        abs_float (p.Calibration.computed -. p.Calibration.expected)
        /. p.Calibration.expected
      in
      if rel > p.Calibration.tolerance then
        Alcotest.failf "%s: expected %.3f, computed %.3f (rel err %.3f)"
          p.Calibration.name p.Calibration.expected p.Calibration.computed rel)
    (Calibration.check ())

(* {1 Workloads} *)

let test_workloads_deterministic () =
  checkb "adpcm" true
    (Bytes.equal
       (Workload.adpcm_stream ~seed:1 ~bytes:256)
       (Workload.adpcm_stream ~seed:1 ~bytes:256));
  checkb "different seeds differ" true
    (not
       (Bytes.equal
          (Workload.adpcm_stream ~seed:1 ~bytes:256)
          (Workload.adpcm_stream ~seed:2 ~bytes:256)));
  checki "idea key words" 8 (Array.length (Workload.idea_key ~seed:1));
  checki "requested size" 512 (Bytes.length (Workload.idea_plaintext ~seed:1 ~bytes:512));
  Alcotest.check_raises "idea size multiple of 8"
    (Invalid_argument "Workload.idea_plaintext: need a multiple of 8 bytes")
    (fun () -> ignore (Workload.idea_plaintext ~seed:1 ~bytes:100))

(* {1 End-to-end correctness through the whole stack} *)

let test_vecadd_end_to_end () =
  (* 3 x 8 KB of objects against 16 KB of dual-port memory: must fault. *)
  let a, b = Workload.vectors ~seed:11 ~n:2000 in
  let row = Runner.vecadd_vim (cfg ()) ~a ~b in
  checkb "measured and verified" true (Report.ok row);
  checkb "working set exceeded the memory" true (row.Report.faults > 0)

let test_adpcm_end_to_end_fits () =
  (* 2 KB input: everything fits, so the paper says no page faults occur. *)
  let input = Workload.adpcm_stream ~seed:12 ~bytes:2048 in
  let row = Runner.adpcm_vim (cfg ()) ~input in
  checkb "verified" true (Report.ok row);
  checki "no faults when the data fits" 0 row.Report.faults

let test_adpcm_end_to_end_faults () =
  let input = Workload.adpcm_stream ~seed:13 ~bytes:4096 in
  let row = Runner.adpcm_vim (cfg ()) ~input in
  checkb "verified" true (Report.ok row);
  checkb "faults beyond 2 KB (paper §4.1)" true (row.Report.faults > 0);
  checkb "write-backs happened" true (row.Report.writebacks > 0)

let test_idea_end_to_end () =
  let key = Workload.idea_key ~seed:14 in
  let input = Workload.idea_plaintext ~seed:14 ~bytes:4096 in
  let row = Runner.idea_vim (cfg ()) ~key ~input in
  checkb "verified" true (Report.ok row);
  let dec = Runner.idea_vim ~decrypt:true (cfg ()) ~key ~input in
  checkb "decrypt verified" true (Report.ok dec)

let test_idea_normal_vs_vim () =
  let key = Workload.idea_key ~seed:15 in
  let small = Workload.idea_plaintext ~seed:15 ~bytes:4096 in
  let nrm = Runner.idea_normal (cfg ()) ~key ~input:small in
  let vim = Runner.idea_vim (cfg ()) ~key ~input:small in
  checkb "normal verified" true (Report.ok nrm);
  checkb "normal is faster at small sizes" true
    Simtime.(nrm.Report.total < vim.Report.total);
  let big = Workload.idea_plaintext ~seed:15 ~bytes:(16 * 1024) in
  let nrm_big = Runner.idea_normal (cfg ()) ~key ~input:big in
  checkb "normal cannot exceed the memory" true
    (nrm_big.Report.outcome = Report.Exceeds_memory);
  let vim_big = Runner.idea_vim (cfg ()) ~key ~input:big in
  checkb "vim can" true (Report.ok vim_big)

let test_sw_baselines () =
  let input = Workload.adpcm_stream ~seed:16 ~bytes:2048 in
  let sw = Runner.adpcm_sw (cfg ()) ~input in
  checkb "sw verified" true (Report.ok sw);
  checkb "all time is application software" true
    (Simtime.equal sw.Report.total sw.Report.sw_app)

(* The headline property: for random sizes, seeds, policies and devices,
   the coprocessor output through the full virtualised stack is bit-exact
   against the software reference. *)
let prop_stack_bit_exact =
  QCheck.Test.make ~name:"full stack bit-exact for random configurations"
    ~count:12
    QCheck.(
      quad (int_range 1 48) (int_bound 1000) (int_bound 3) (int_bound 2))
    (fun (kb8, seed, policy_idx, device_idx) ->
      let policy = List.nth Rvi_core.Policy.all_names policy_idx in
      let device = List.nth Rvi_fpga.Device.all device_idx in
      let cfg = Config.with_policy { (cfg ()) with Config.device; seed } policy in
      let bytes = 128 * kb8 in
      let input = Workload.adpcm_stream ~seed ~bytes in
      let row = Runner.adpcm_vim cfg ~input in
      Report.ok row)

let prop_stack_idea_bit_exact =
  QCheck.Test.make ~name:"full IDEA stack bit-exact for random keys and sizes"
    ~count:8
    QCheck.(pair (int_range 1 12) (int_bound 1000))
    (fun (kblocks, seed) ->
      let key = Workload.idea_key ~seed in
      let input = Workload.idea_plaintext ~seed ~bytes:(256 * kblocks) in
      let row = Runner.idea_vim (cfg ()) ~key ~input in
      Report.ok row)

(* {1 Re-execution: the coprocessor "should be ready and waiting for new
   execution, if another FPGA_EXECUTE call appears" (§3.3)} *)

let test_reexecution () =
  let p =
    Platform.create ~app_name:"re" (cfg ())
      ~bitstream:Calibration.vecadd_bitstream
      ~make:Rvi_coproc.Vecadd.Virtual.create
  in
  let n = 100 in
  let to_bytes words =
    let b = Bytes.create (4 * Array.length words) in
    Array.iteri
      (fun i w ->
        for k = 0 to 3 do
          Bytes.set b ((4 * i) + k) (Char.chr ((w lsr (8 * k)) land 0xFF))
        done)
      words;
    b
  in
  let a, b = Workload.vectors ~seed:21 ~n in
  let buf_a = Platform.alloc_bytes p (to_bytes a) in
  let buf_b = Platform.alloc_bytes p (to_bytes b) in
  let buf_c = Platform.alloc p (4 * n) in
  let ok = function Ok () -> () | Error _ -> Alcotest.fail "syscall failed" in
  ok (Api.fpga_load p.Platform.api Calibration.vecadd_bitstream);
  ok (Api.fpga_map_object p.Platform.api ~id:0 ~buf:buf_a ~dir:Rvi_core.Mapped_object.In ());
  ok (Api.fpga_map_object p.Platform.api ~id:1 ~buf:buf_b ~dir:Rvi_core.Mapped_object.In ());
  ok (Api.fpga_map_object p.Platform.api ~id:2 ~buf:buf_c ~dir:Rvi_core.Mapped_object.Out ());
  ok (Api.fpga_execute p.Platform.api ~params:[ n ]);
  let first = Platform.read p buf_c in
  (* Change an input in place and execute again without remapping. *)
  let a2 = Array.map (fun x -> x + 1) a in
  Rvi_os.Uspace.write p.Platform.kernel buf_a (to_bytes a2);
  ok (Api.fpga_execute p.Platform.api ~params:[ n ]);
  let second = Platform.read p buf_c in
  checkb "first run correct" true
    (Bytes.equal first (to_bytes (Rvi_coproc.Vecadd.reference ~a ~b)));
  checkb "second run correct" true
    (Bytes.equal second (to_bytes (Rvi_coproc.Vecadd.reference ~a:a2 ~b)));
  checki "two executions" 2
    (Rvi_sim.Stats.get (Rvi_core.Vim.stats p.Platform.vim) "executions")

(* {1 Failure injection through the syscall API} *)

let test_api_unmapped_object () =
  let p =
    Platform.create (cfg ()) ~bitstream:Calibration.vecadd_bitstream
      ~make:Rvi_coproc.Vecadd.Virtual.create
  in
  let buf = Platform.alloc p 400 in
  let ok = function Ok () -> () | Error _ -> Alcotest.fail "setup failed" in
  ok (Api.fpga_load p.Platform.api Calibration.vecadd_bitstream);
  ok (Api.fpga_map_object p.Platform.api ~id:0 ~buf ~dir:Rvi_core.Mapped_object.In ());
  (* objects 1 and 2 deliberately missing *)
  (match Api.fpga_execute p.Platform.api ~params:[ 100 ] with
  | Error Rvi_os.Syscall.EFAULT -> ()
  | Ok () -> Alcotest.fail "execute with unmapped objects succeeded"
  | Error e -> Alcotest.failf "wrong errno %s" (Rvi_os.Syscall.errno_name e));
  checkb "diagnostic available" true (Api.last_error p.Platform.api <> None)

let test_api_object_overflow () =
  let p =
    Platform.create (cfg ()) ~bitstream:Calibration.vecadd_bitstream
      ~make:Rvi_coproc.Vecadd.Virtual.create
  in
  let n = 1024 in
  let ok = function Ok () -> () | Error _ -> Alcotest.fail "setup failed" in
  ok (Api.fpga_load p.Platform.api Calibration.vecadd_bitstream);
  let full = Platform.alloc p (4 * n) in
  let short = Platform.alloc p 64 in
  ok (Api.fpga_map_object p.Platform.api ~id:0 ~buf:full ~dir:Rvi_core.Mapped_object.In ());
  ok (Api.fpga_map_object p.Platform.api ~id:1 ~buf:full ~dir:Rvi_core.Mapped_object.In ());
  (* The output object is far too small for n elements. *)
  ok (Api.fpga_map_object p.Platform.api ~id:2 ~buf:short ~dir:Rvi_core.Mapped_object.Out ());
  match Api.fpga_execute p.Platform.api ~params:[ n ] with
  | Error Rvi_os.Syscall.EFAULT -> ()
  | Ok () -> Alcotest.fail "overflowing execute succeeded"
  | Error e -> Alcotest.failf "wrong errno %s" (Rvi_os.Syscall.errno_name e)

let test_api_execute_without_load () =
  let p =
    Platform.create (cfg ()) ~bitstream:Calibration.vecadd_bitstream
      ~make:Rvi_coproc.Vecadd.Virtual.create
  in
  match Api.fpga_execute p.Platform.api ~params:[ 1 ] with
  | Error Rvi_os.Syscall.EINVAL -> ()
  | Ok () -> Alcotest.fail "execute without a bit-stream succeeded"
  | Error e -> Alcotest.failf "wrong errno %s" (Rvi_os.Syscall.errno_name e)

let test_api_duplicate_map () =
  let p =
    Platform.create (cfg ()) ~bitstream:Calibration.vecadd_bitstream
      ~make:Rvi_coproc.Vecadd.Virtual.create
  in
  let buf = Platform.alloc p 64 in
  let ok = function Ok () -> () | Error _ -> Alcotest.fail "setup failed" in
  ok (Api.fpga_map_object p.Platform.api ~id:0 ~buf ~dir:Rvi_core.Mapped_object.In ());
  match Api.fpga_map_object p.Platform.api ~id:0 ~buf ~dir:Rvi_core.Mapped_object.In () with
  | Error Rvi_os.Syscall.EINVAL -> ()
  | Ok () -> Alcotest.fail "duplicate identifier accepted"
  | Error e -> Alcotest.failf "wrong errno %s" (Rvi_os.Syscall.errno_name e)

let test_api_oversized_bitstream () =
  let p =
    Platform.create (cfg ()) ~bitstream:Calibration.vecadd_bitstream
      ~make:Rvi_coproc.Vecadd.Virtual.create
  in
  let monster =
    Rvi_fpga.Bitstream.make ~name:"monster" ~logic_elements:1_000_000
      ~imu_freq_hz:40_000_000 ~param_words:0 ()
  in
  match Api.fpga_load p.Platform.api monster with
  | Error Rvi_os.Syscall.ENOSPC -> ()
  | Ok () -> Alcotest.fail "oversized bit-stream loaded"
  | Error e -> Alcotest.failf "wrong errno %s" (Rvi_os.Syscall.errno_name e)

let test_api_unload () =
  let p =
    Platform.create (cfg ()) ~bitstream:Calibration.vecadd_bitstream
      ~make:Rvi_coproc.Vecadd.Virtual.create
  in
  let ok = function Ok () -> () | Error _ -> Alcotest.fail "setup failed" in
  ok (Api.fpga_load p.Platform.api Calibration.vecadd_bitstream);
  ok (Api.fpga_unload p.Platform.api);
  checkb "lattice free" true (Rvi_fpga.Pld.loaded p.Platform.pld = None);
  checkb "objects forgotten" true (Rvi_core.Vim.objects p.Platform.vim = [])

let test_tiny_dpram_no_frames () =
  (* One-page dual-port memory: no room for data next to the parameter
     page. The VIM must fail cleanly with ENOMEM. *)
  let device =
    { Rvi_fpga.Device.epxa1 with Rvi_fpga.Device.dpram_bytes = 2048; name = "TINY" }
  in
  let cfg = { (cfg ()) with Config.device } in
  let a, b = Workload.vectors ~seed:1 ~n:16 in
  let row = Runner.vecadd_vim cfg ~a ~b in
  match row.Report.outcome with
  | Report.Failed msg ->
    checkb "mentions memory" true (String.length msg > 0)
  | Report.Measured | Report.Exceeds_memory | Report.Degraded _ ->
    Alcotest.fail "one-page memory unexpectedly worked"

let test_tiny_tlb_still_correct () =
  let cfg = { (cfg ()) with Config.tlb_entries = Some 2 } in
  let input = Workload.adpcm_stream ~seed:30 ~bytes:4096 in
  let row = Runner.adpcm_vim cfg ~input in
  checkb "verified with a 2-entry TLB" true (Report.ok row);
  checkb "refill faults appear" true (row.Report.tlb_refill_faults > 0)

(* {1 Config and report helpers} *)

let test_config () =
  let c = cfg () in
  checkb "describe mentions device" true
    (String.length (Config.describe c) > 0);
  Alcotest.check_raises "unknown policy"
    (Invalid_argument "Config.with_policy: unknown policy \"belady\"")
    (fun () -> ignore (Config.with_policy c "belady"));
  let pipelined = { c with Config.imu_kind = Config.Pipelined } in
  checki "pipelined lookup states" 0
    (Config.imu_config pipelined).Rvi_core.Imu.lookup_states;
  checki "default tlb = pages" 8 (Config.imu_config c).Rvi_core.Imu.tlb_entries

let test_report_helpers () =
  let mk total =
    {
      Report.app = "x";
      version = "SW";
      input_bytes = 2048;
      outcome = Report.Measured;
      total = Simtime.of_ms total;
      hw = Simtime.zero;
      sw_dp = Simtime.zero;
      sw_imu = Simtime.zero;
      sw_app = Simtime.of_ms total;
      sw_os = Simtime.zero;
      faults = 0;
      evictions = 0;
      writebacks = 0;
      tlb_refill_faults = 0;
      prefetched = 0;
      accesses = 0;
      fault_p95_us = 0.0;
      fault_p99_us = 0.0;
      retries = 0;
      verified = true;
    }
  in
  let baseline = mk 10 and fast = { (mk 2) with Report.version = "VIM" } in
  (match Report.speedup ~baseline fast with
  | Some s -> Alcotest.(check (float 1e-6)) "speedup" 5.0 s
  | None -> Alcotest.fail "no speedup");
  Alcotest.(check string) "size label KB" "2KB" (Report.size_label 2048);
  Alcotest.(check string) "size label B" "100B" (Report.size_label 100);
  (* Regression: non-KiB-aligned sizes were mislabelled in bytes
     ("1536B"); they must render as fractional KB. *)
  Alcotest.(check string) "size label 1.5KB" "1.5KB" (Report.size_label 1536);
  Alcotest.(check string) "size label 1.25KB" "1.25KB" (Report.size_label 1280);
  Alcotest.(check string) "size label just over" "1.0KB" (Report.size_label 1025);
  Alcotest.(check string) "size label under 1K" "1000B" (Report.size_label 1000);
  let csv = Report.csv [ baseline; fast ] in
  checkb "csv header" true (String.length csv > 0 && String.sub csv 0 3 = "app");
  checki "csv lines" 3
    (List.length (String.split_on_char '\n' (String.trim csv)))

(* {1 Experiments on reduced workloads} *)

let test_fig7_latency () =
  let f = Experiments.fig7 null_ppf () in
  checki "four-cycle translation (Figure 7)" 4 f.Experiments.latency_cycles;
  checkb "waveform mentions cp_tlbhit" true
    (String.length f.Experiments.waveform > 0);
  checkb "vcd non-empty" true (String.length f.Experiments.vcd > 0);
  let p = Experiments.fig7 ~pipelined:true null_ppf () in
  checkb "pipelined is faster" true
    (p.Experiments.latency_cycles < f.Experiments.latency_cycles)

let test_fig8_shape () =
  let rows = Experiments.fig8 ~sizes_kb:[ 2 ] null_ppf (cfg ()) in
  checki "two rows per size" 2 (List.length rows);
  let sw = List.nth rows 0 and vim = List.nth rows 1 in
  checkb "all verified" true (Report.ok sw && Report.ok vim);
  match Report.speedup ~baseline:sw vim with
  | Some s -> checkb "speedup near the paper's 1.5x" true (s > 1.2 && s < 1.9)
  | None -> Alcotest.fail "no speedup"

let test_fig9_shape () =
  let rows = Experiments.fig9 ~sizes_kb:[ 4; 16 ] null_ppf (cfg ()) in
  checki "three rows per size" 6 (List.length rows);
  let sw4 = List.nth rows 0 and nrm4 = List.nth rows 1 and vim4 = List.nth rows 2 in
  let nrm16 = List.nth rows 4 and vim16 = List.nth rows 5 in
  checkb "sw/normal/vim at 4KB verified" true
    (Report.ok sw4 && Report.ok nrm4 && Report.ok vim4);
  (match Report.speedup ~baseline:sw4 nrm4 with
  | Some s -> checkb "normal near the paper's 18x" true (s > 14.0 && s < 22.0)
  | None -> Alcotest.fail "no normal speedup");
  (match Report.speedup ~baseline:sw4 vim4 with
  | Some s -> checkb "vim near the paper's 11-12x" true (s > 9.0 && s < 16.0)
  | None -> Alcotest.fail "no vim speedup");
  checkb "normal exceeds memory at 16KB" true
    (nrm16.Report.outcome = Report.Exceeds_memory);
  checkb "vim runs 16KB" true (Report.ok vim16)

let test_overhead_claims () =
  let o = Experiments.overheads null_ppf (cfg ()) in
  checkb "IMU management small (paper: <= 2.5%)" true
    (o.Experiments.adpcm_imu_share_max < 0.05);
  checkb "translation overhead in the paper's ballpark (~20%)" true
    (o.Experiments.idea_translation_share > 0.05
    && o.Experiments.idea_translation_share < 0.35);
  checkb "DP management dominates software overhead" true
    (o.Experiments.dp_share_of_overhead > 0.5)

let test_ablation_transfer_halves_dp () =
  let rows = Experiments.ablation_transfer null_ppf (cfg ()) in
  let find label = List.assoc label rows in
  let double = find "adpcm-8KB/double" and single = find "adpcm-8KB/single" in
  let ratio = Simtime.to_ms double.Report.sw_dp /. Simtime.to_ms single.Report.sw_dp in
  checkb "double transfers cost twice the DP time" true
    (ratio > 1.9 && ratio < 2.1)

let test_ablation_pipelined_imu_faster () =
  let rows = Experiments.ablation_pipelined_imu null_ppf (cfg ()) in
  let find label = List.assoc label rows in
  checkb "pipelined IMU cuts hardware time" true
    Simtime.(
      (find "idea-32KB/pipelined").Report.hw
      < (find "idea-32KB/4-cycle").Report.hw)

let test_ablation_prefetch_cuts_faults () =
  let rows = Experiments.ablation_prefetch null_ppf (cfg ()) in
  let find label = List.assoc label rows in
  checkb "prefetch reduces faults" true
    ((find "adpcm-8KB/prefetch-sequential-2").Report.faults
    < (find "adpcm-8KB/prefetch-off").Report.faults)

let test_portability_rows () =
  let rows = Experiments.portability null_ppf (cfg ()) in
  checkb "all verified on all devices" true
    (List.for_all (fun (_, r) -> Report.ok r) rows);
  let find label = List.assoc label rows in
  checkb "bigger device, no faults" true
    ((find "adpcm-8KB/EPXA10").Report.faults = 0
    && (find "adpcm-8KB/EPXA1").Report.faults > 0)

let test_chunked_normal () =
  let rows = Experiments.ablation_chunked_normal null_ppf (cfg ()) in
  let find label = List.assoc label rows in
  checkb "plain normal fails" true
    ((find "idea-16KB/normal-plain").Report.outcome = Report.Exceeds_memory);
  checkb "chunked normal verified" true
    ((find "idea-16KB/normal-chunked").Report.outcome = Report.Measured
    && (find "idea-16KB/normal-chunked").Report.verified);
  checkb "vim verified" true (Report.ok (find "idea-16KB/vim"))

let suite =
  [
    Alcotest.test_case "calibration/pins" `Quick test_calibration_pins;
    Alcotest.test_case "workload/deterministic" `Quick test_workloads_deterministic;
    Alcotest.test_case "e2e/vecadd" `Quick test_vecadd_end_to_end;
    Alcotest.test_case "e2e/adpcm-fits" `Quick test_adpcm_end_to_end_fits;
    Alcotest.test_case "e2e/adpcm-faults" `Quick test_adpcm_end_to_end_faults;
    Alcotest.test_case "e2e/idea" `Quick test_idea_end_to_end;
    Alcotest.test_case "e2e/idea-normal-vs-vim" `Quick test_idea_normal_vs_vim;
    Alcotest.test_case "e2e/sw-baselines" `Quick test_sw_baselines;
    QCheck_alcotest.to_alcotest prop_stack_bit_exact;
    QCheck_alcotest.to_alcotest prop_stack_idea_bit_exact;
    Alcotest.test_case "e2e/re-execution" `Quick test_reexecution;
    Alcotest.test_case "api/unmapped-object" `Quick test_api_unmapped_object;
    Alcotest.test_case "api/object-overflow" `Quick test_api_object_overflow;
    Alcotest.test_case "api/execute-without-load" `Quick test_api_execute_without_load;
    Alcotest.test_case "api/duplicate-map" `Quick test_api_duplicate_map;
    Alcotest.test_case "api/oversized-bitstream" `Quick test_api_oversized_bitstream;
    Alcotest.test_case "api/unload" `Quick test_api_unload;
    Alcotest.test_case "fail/tiny-dpram" `Quick test_tiny_dpram_no_frames;
    Alcotest.test_case "fail/tiny-tlb-correct" `Quick test_tiny_tlb_still_correct;
    Alcotest.test_case "config/helpers" `Quick test_config;
    Alcotest.test_case "report/helpers" `Quick test_report_helpers;
    Alcotest.test_case "experiments/fig7" `Quick test_fig7_latency;
    Alcotest.test_case "experiments/fig8" `Slow test_fig8_shape;
    Alcotest.test_case "experiments/fig9" `Slow test_fig9_shape;
    Alcotest.test_case "experiments/overheads" `Slow test_overhead_claims;
    Alcotest.test_case "experiments/transfer-ablation" `Slow
      test_ablation_transfer_halves_dp;
    Alcotest.test_case "experiments/pipelined-ablation" `Slow
      test_ablation_pipelined_imu_faster;
    Alcotest.test_case "experiments/prefetch-ablation" `Slow
      test_ablation_prefetch_cuts_faults;
    Alcotest.test_case "experiments/portability" `Slow test_portability_rows;
    Alcotest.test_case "experiments/chunked-normal" `Slow test_chunked_normal;
  ]

(* {1 FIR end to end} *)

let test_fir_end_to_end () =
  let coeffs = Workload.fir_coeffs ~taps:16 in
  let input = Workload.fir_signal ~seed:40 ~bytes:(12 * 1024) in
  let sw = Runner.fir_sw (cfg ()) ~coeffs ~shift:12 ~input in
  let vim = Runner.fir_vim (cfg ()) ~coeffs ~shift:12 ~input in
  checkb "sw verified" true (Report.ok sw);
  checkb "vim verified" true (Report.ok vim);
  checkb "faults on a 24 KB working set" true (vim.Report.faults > 0);
  match Report.speedup ~baseline:sw vim with
  | Some s -> checkb "hardware wins" true (s > 1.0)
  | None -> Alcotest.fail "no speedup"

let test_fir_normal_exceeds () =
  let coeffs = Workload.fir_coeffs ~taps:16 in
  let input = Workload.fir_signal ~seed:41 ~bytes:(16 * 1024) in
  let row = Runner.fir_normal (cfg ()) ~coeffs ~shift:12 ~input in
  checkb "fir normal exceeds memory at 16 KB" true
    (row.Report.outcome = Report.Exceeds_memory)

(* {1 DMA copy engine} *)

let test_dma_time () =
  let dma = Rvi_mem.Dma.default in
  checki "zero is free" 0
    (Simtime.to_ps (Rvi_mem.Dma.transfer_time dma ~bytes:0));
  let t = Rvi_mem.Dma.transfer_time dma ~bytes:2048 in
  (* 512 words at 66 MHz: ~7.8 us. *)
  checkb "page burst near 8us" true
    (Simtime.to_us t > 7.0 && Simtime.to_us t < 9.0);
  Alcotest.check_raises "negative" (Invalid_argument "Dma.transfer_time: negative size")
    (fun () -> ignore (Rvi_mem.Dma.transfer_time dma ~bytes:(-1)))

let test_dma_vim_cheaper () =
  let input = Workload.adpcm_stream ~seed:42 ~bytes:(8 * 1024) in
  let cpu = Runner.adpcm_vim (cfg ()) ~input in
  let dma =
    Runner.adpcm_vim
      { (cfg ()) with Config.copy_engine = Rvi_core.Vim.Dma_engine Rvi_mem.Dma.default }
      ~input
  in
  checkb "both verified" true (Report.ok cpu && Report.ok dma);
  checkb "dma slashes DP management time" true
    (Simtime.to_ms dma.Report.sw_dp < 0.2 *. Simtime.to_ms cpu.Report.sw_dp);
  checkb "same fault behaviour" true (dma.Report.faults = cpu.Report.faults)

(* {1 Overlapped prefetch} *)

let test_overlap_prefetch () =
  let input = Workload.adpcm_stream ~seed:43 ~bytes:(8 * 1024) in
  let base = { (cfg ()) with Config.prefetch = Rvi_core.Prefetch.sequential ~depth:2 } in
  let sync = Runner.adpcm_vim base ~input in
  let over = Runner.adpcm_vim { base with Config.overlap_prefetch = true } ~input in
  checkb "both verified" true (Report.ok sync && Report.ok over);
  checkb "overlap reduces wall time" true
    Simtime.(over.Report.total < sync.Report.total);
  checkb "same fault count" true (over.Report.faults = sync.Report.faults)

(* {1 Miss-ratio-curve analysis} *)

let test_mrc_hand_trace () =
  let refs = [| (0, 0); (0, 1); (0, 0); (0, 2); (0, 0); (0, 1) |] in
  checki "distinct" 3 (Rvi_harness.Mrc.distinct_pages refs);
  let d = Rvi_harness.Mrc.lru_stack_distances refs in
  checkb "distances" true
    (Array.to_list d = [ None; None; Some 1; None; Some 1; Some 2 ]);
  let misses = Rvi_harness.Mrc.lru_misses refs ~max_frames:3 in
  Alcotest.(check (array int)) "lru curve" [| 6; 4; 3 |] misses;
  checki "fifo at 2" 5 (Rvi_harness.Mrc.fifo_misses refs ~frames:2);
  checki "fifo at 3" 3 (Rvi_harness.Mrc.fifo_misses refs ~frames:3)

let prop_mrc_curve_monotone =
  QCheck.Test.make ~name:"lru miss curve is non-increasing and ends compulsory"
    ~count:100
    QCheck.(list_of_size (Gen.return 60) (int_bound 9))
    (fun pages ->
      let refs = Array.of_list (List.map (fun p -> (0, p)) pages) in
      let curve = Rvi_harness.Mrc.lru_misses refs ~max_frames:12 in
      let monotone = ref true in
      for i = 1 to Array.length curve - 1 do
        if curve.(i) > curve.(i - 1) then monotone := false
      done;
      !monotone
      && curve.(11) = Rvi_harness.Mrc.distinct_pages refs)

let prop_mrc_fifo_at_least_compulsory =
  QCheck.Test.make ~name:"fifo misses >= compulsory misses" ~count:100
    QCheck.(pair (list_of_size (Gen.return 40) (int_bound 7)) (int_range 1 8))
    (fun (pages, frames) ->
      let refs = Array.of_list (List.map (fun p -> (1, p)) pages) in
      Rvi_harness.Mrc.fifo_misses refs ~frames
      >= Rvi_harness.Mrc.distinct_pages refs)

let test_trace_recording () =
  (* Record a small adpcm run; the reference string must cover exactly the
     pages of the two data objects and exclude the parameter object. *)
  let input = Workload.adpcm_stream ~seed:44 ~bytes:2048 in
  let p =
    Platform.create (cfg ()) ~bitstream:Calibration.adpcm_bitstream
      ~make:Rvi_coproc.Adpcm_coproc.Virtual.create
  in
  let collect = Rvi_harness.Mrc.record p.Platform.imu in
  let in_buf = Platform.alloc_bytes p input in
  let out_buf = Platform.alloc p (Rvi_coproc.Adpcm_ref.decoded_size 2048) in
  let ok = function Ok () -> () | Error _ -> Alcotest.fail "setup failed" in
  ok (Api.fpga_load p.Platform.api Calibration.adpcm_bitstream);
  ok
    (Api.fpga_map_object p.Platform.api ~id:0 ~buf:in_buf
       ~dir:Rvi_core.Mapped_object.In ~stream:true ());
  ok
    (Api.fpga_map_object p.Platform.api ~id:1 ~buf:out_buf
       ~dir:Rvi_core.Mapped_object.Out ~stream:true ());
  ok (Api.fpga_execute p.Platform.api ~params:[ 2048 ]);
  let refs = collect () in
  checki "one reference per data access" (2048 + 4096)
    (Array.length refs);
  checkb "no parameter references" true
    (Array.for_all (fun (o, _) -> o <> Rvi_core.Cp_port.param_obj) refs);
  (* 1 input page + 4 output pages *)
  checki "distinct pages" 5 (Rvi_harness.Mrc.distinct_pages refs);
  (* Detached: further execution must not grow the trace. *)
  ok (Api.fpga_execute p.Platform.api ~params:[ 2048 ]);
  checki "probe detached" (2048 + 4096) (Array.length refs)

let ext_suite =
  [
    Alcotest.test_case "fir/e2e" `Quick test_fir_end_to_end;
    Alcotest.test_case "fir/normal-exceeds" `Quick test_fir_normal_exceeds;
    Alcotest.test_case "dma/timing" `Quick test_dma_time;
    Alcotest.test_case "dma/vim-cheaper" `Quick test_dma_vim_cheaper;
    Alcotest.test_case "overlap/prefetch" `Quick test_overlap_prefetch;
    Alcotest.test_case "mrc/hand-trace" `Quick test_mrc_hand_trace;
    QCheck_alcotest.to_alcotest prop_mrc_curve_monotone;
    QCheck_alcotest.to_alcotest prop_mrc_fifo_at_least_compulsory;
    Alcotest.test_case "mrc/trace-recording" `Quick test_trace_recording;
  ]

let suite = suite @ ext_suite

(* {1 CBC through the full stack} *)

let test_cbc_vim_pipeline_cost () =
  let key = Workload.idea_key ~seed:50 in
  let iv = [| 1; 2; 3; 4 |] in
  let input = Workload.idea_plaintext ~seed:50 ~bytes:4096 in
  let run mode = Runner.idea_cbc_vim (cfg ()) ~mode ~key ~iv ~input in
  let ecb = run Rvi_coproc.Idea_coproc.Ecb_encrypt in
  let cbc_enc = run Rvi_coproc.Idea_coproc.Cbc_encrypt in
  let cbc_dec =
    let ct = Rvi_coproc.Idea_ref.cbc ~key ~decrypt:false ~iv input in
    Runner.idea_cbc_vim (cfg ()) ~mode:Rvi_coproc.Idea_coproc.Cbc_decrypt ~key
      ~iv ~input:ct
  in
  checkb "all verified" true
    (ecb.Report.verified && cbc_enc.Report.verified && cbc_dec.Report.verified);
  checkb "cbc encryption serialises the pipeline" true
    (Simtime.to_ms cbc_enc.Report.hw > 1.8 *. Simtime.to_ms ecb.Report.hw);
  checkb "cbc decryption still pipelines" true
    (Simtime.to_ms cbc_dec.Report.hw < 1.2 *. Simtime.to_ms ecb.Report.hw)

(* {1 Lattice multiprogramming} *)

let test_jobs_batch () =
  let jobs = Rvi_harness.Jobs.mixed_batch ~seed:3 ~jobs_per_app:3 in
  checki "batch size" 9 (List.length jobs);
  let fcfs = Rvi_harness.Jobs.run (cfg ()) ~jobs Rvi_harness.Jobs.Fcfs in
  let grouped = Rvi_harness.Jobs.run (cfg ()) ~jobs Rvi_harness.Jobs.Grouped in
  checkb "fcfs all verified" true fcfs.Rvi_harness.Jobs.all_verified;
  checkb "grouped all verified" true grouped.Rvi_harness.Jobs.all_verified;
  checki "fcfs jobs done" 9 fcfs.Rvi_harness.Jobs.jobs_done;
  checki "fcfs reconfigures every job" 9 fcfs.Rvi_harness.Jobs.reconfigurations;
  checki "grouped reconfigures once per app" 3
    grouped.Rvi_harness.Jobs.reconfigurations;
  checkb "grouping cuts the makespan" true
    Simtime.(
      grouped.Rvi_harness.Jobs.makespan < fcfs.Rvi_harness.Jobs.makespan)

let test_jobs_single_kind () =
  (* A homogeneous batch configures once under either discipline. *)
  let jobs =
    List.init 4 (fun i ->
        { Rvi_harness.Jobs.kind = Rvi_harness.Jobs.Adpcm; seed = i; input_bytes = 2048 })
  in
  let r = Rvi_harness.Jobs.run (cfg ()) ~jobs Rvi_harness.Jobs.Fcfs in
  checki "one configuration" 1 r.Rvi_harness.Jobs.reconfigurations;
  checkb "verified" true r.Rvi_harness.Jobs.all_verified

let more_suite =
  [
    Alcotest.test_case "cbc/pipeline-cost" `Slow test_cbc_vim_pipeline_cost;
    Alcotest.test_case "jobs/mixed-batch" `Slow test_jobs_batch;
    Alcotest.test_case "jobs/single-kind" `Quick test_jobs_single_kind;
  ]

let suite = suite @ more_suite

(* {1 Belady's optimal} *)

let test_opt_hand () =
  (* The textbook Belady example where FIFO loses pages it still needs. *)
  let refs = Array.map (fun p -> (0, p)) [| 0; 1; 2; 0; 1; 3; 0; 1 |] in
  checki "opt at 3 frames" 4 (Rvi_harness.Mrc.opt_misses refs ~frames:3);
  checkb "fifo is worse or equal" true
    (Rvi_harness.Mrc.fifo_misses refs ~frames:3
    >= Rvi_harness.Mrc.opt_misses refs ~frames:3)

let prop_opt_lower_bound =
  QCheck.Test.make ~name:"opt lower-bounds lru and fifo at every size"
    ~count:100
    QCheck.(pair (list_of_size (Gen.return 50) (int_bound 8)) (int_range 1 8))
    (fun (pages, frames) ->
      let refs = Array.of_list (List.map (fun p -> (0, p)) pages) in
      let opt = Rvi_harness.Mrc.opt_misses refs ~frames in
      let lru = (Rvi_harness.Mrc.lru_misses refs ~max_frames:frames).(frames - 1) in
      let fifo = Rvi_harness.Mrc.fifo_misses refs ~frames in
      opt <= lru && opt <= fifo
      && opt >= Rvi_harness.Mrc.distinct_pages refs * 0
      && opt >= (if Array.length refs > 0 then 1 else 0) * min 1 (Array.length refs))

let opt_suite =
  [
    Alcotest.test_case "mrc/opt-hand" `Quick test_opt_hand;
    QCheck_alcotest.to_alcotest prop_opt_lower_bound;
  ]

let suite = suite @ opt_suite

(* {1 Analytical model vs simulator} *)

let within pct a b = abs_float (a -. b) /. Float.max 1e-9 b <= pct

let test_model_adpcm () =
  List.iter
    (fun kb ->
      let input = Workload.adpcm_stream ~seed:70 ~bytes:(kb * 1024) in
      let row = Runner.adpcm_vim (cfg ()) ~input in
      let p = Rvi_harness.Model.adpcm_vim (cfg ()) ~input_bytes:(kb * 1024) in
      checkb
        (Printf.sprintf "hw within 5%% at %dKB (model %.3f, sim %.3f)" kb
           p.Rvi_harness.Model.hw_ms
           (Simtime.to_ms row.Report.hw))
        true
        (within 0.05 p.Rvi_harness.Model.hw_ms (Simtime.to_ms row.Report.hw));
      checkb "compulsory dp is a lower bound" true
        (p.Rvi_harness.Model.dp_compulsory_ms
        <= Simtime.to_ms row.Report.sw_dp +. 0.001))
    [ 2; 8 ]

let test_model_adpcm_pipelined () =
  let cfg = { (cfg ()) with Config.imu_kind = Config.Pipelined } in
  let input = Workload.adpcm_stream ~seed:71 ~bytes:8192 in
  let row = Runner.adpcm_vim cfg ~input in
  let p = Rvi_harness.Model.adpcm_vim cfg ~input_bytes:8192 in
  checkb "pipelined hw within 5%" true
    (within 0.05 p.Rvi_harness.Model.hw_ms (Simtime.to_ms row.Report.hw))

let test_model_idea () =
  let key = Workload.idea_key ~seed:72 in
  let input = Workload.idea_plaintext ~seed:72 ~bytes:8192 in
  let row = Runner.idea_vim (cfg ()) ~key ~input in
  let p = Rvi_harness.Model.idea_vim (cfg ()) ~input_bytes:8192 in
  checkb
    (Printf.sprintf "idea hw within 10%% (model %.3f, sim %.3f)"
       p.Rvi_harness.Model.hw_ms
       (Simtime.to_ms row.Report.hw))
    true
    (within 0.10 p.Rvi_harness.Model.hw_ms (Simtime.to_ms row.Report.hw))

let test_model_fir () =
  let coeffs = Workload.fir_coeffs ~taps:16 in
  let input = Workload.fir_signal ~seed:73 ~bytes:4096 in
  let row = Runner.fir_vim (cfg ()) ~coeffs ~shift:12 ~input in
  let p = Rvi_harness.Model.fir_vim (cfg ()) ~taps:16 ~input_bytes:4096 in
  checkb
    (Printf.sprintf "fir hw within 10%% (model %.3f, sim %.3f)"
       p.Rvi_harness.Model.hw_ms
       (Simtime.to_ms row.Report.hw))
    true
    (within 0.10 p.Rvi_harness.Model.hw_ms (Simtime.to_ms row.Report.hw))

let model_suite =
  [
    Alcotest.test_case "model/adpcm" `Quick test_model_adpcm;
    Alcotest.test_case "model/adpcm-pipelined" `Quick test_model_adpcm_pipelined;
    Alcotest.test_case "model/idea" `Quick test_model_idea;
    Alcotest.test_case "model/fir" `Quick test_model_fir;
  ]

let suite = suite @ model_suite

(* {1 Verification has teeth + determinism} *)

let test_corruption_detected () =
  (* Flip bits in the dual-port RAM while the coprocessor runs; the
     bit-exact verification must notice — otherwise every "verified"
     column in this repository would be vacuous. *)
  let p =
    Platform.create (cfg ()) ~bitstream:Calibration.adpcm_bitstream
      ~make:Rvi_coproc.Adpcm_coproc.Virtual.create
  in
  let input = Workload.adpcm_stream ~seed:80 ~bytes:2048 in
  let in_buf = Platform.alloc_bytes p input in
  let out_buf = Platform.alloc p (Rvi_coproc.Adpcm_ref.decoded_size 2048) in
  let strikes = ref 0 in
  Rvi_sim.Clock.add p.Platform.clock
    (Rvi_sim.Clock.component ~name:"gamma-ray"
       ~compute:(fun () ->
         if Rvi_sim.Clock.cycles p.Platform.clock = 20_000 then begin
           (* Page 2 holds decoded output by then; flip one byte. *)
           let addr = (2 * 2048) + 100 in
           let v = Rvi_mem.Dpram.cpu_read32 p.Platform.dpram addr in
           Rvi_mem.Dpram.cpu_write32 p.Platform.dpram addr (v lxor 0xFF);
           incr strikes
         end)
       ~commit:ignore ());
  let ok = function Ok () -> () | Error _ -> Alcotest.fail "setup failed" in
  ok (Api.fpga_load p.Platform.api Calibration.adpcm_bitstream);
  ok
    (Api.fpga_map_object p.Platform.api ~id:0 ~buf:in_buf
       ~dir:Rvi_core.Mapped_object.In ~stream:true ());
  ok
    (Api.fpga_map_object p.Platform.api ~id:1 ~buf:out_buf
       ~dir:Rvi_core.Mapped_object.Out ~stream:true ());
  ok (Api.fpga_execute p.Platform.api ~params:[ 2048 ]);
  checki "exactly one strike" 1 !strikes;
  let out = Platform.read p out_buf in
  checkb "corruption detected by verification" true
    (not (Bytes.equal out (Rvi_coproc.Adpcm_ref.decode input)))

let test_determinism () =
  let run () =
    let input = Workload.adpcm_stream ~seed:81 ~bytes:4096 in
    Runner.adpcm_vim (cfg ()) ~input
  in
  let a = run () and b = run () in
  checkb "identical wall time" true (Simtime.equal a.Report.total b.Report.total);
  checki "identical faults" a.Report.faults b.Report.faults;
  checki "identical accesses" a.Report.accesses b.Report.accesses;
  checkb "identical split" true
    (Simtime.equal a.Report.hw b.Report.hw
    && Simtime.equal a.Report.sw_dp b.Report.sw_dp)

let robustness_suite =
  [
    Alcotest.test_case "verify/corruption-detected" `Quick test_corruption_detected;
    Alcotest.test_case "verify/deterministic" `Quick test_determinism;
  ]

let suite = suite @ robustness_suite

(* {1 Calibration sensitivity} *)

let test_sensitivity_orderings () =
  let rows = Experiments.sensitivity null_ppf (cfg ()) in
  checki "three sweep points" 3 (List.length rows);
  List.iter
    (fun (_, (a_sw, a_vim), (i_sw, i_nrm, i_vim)) ->
      checkb "adpcm VIM beats SW" true
        Simtime.(a_vim.Report.total < a_sw.Report.total);
      checkb "idea VIM beats SW" true
        Simtime.(i_vim.Report.total < i_sw.Report.total);
      checkb "normal beats VIM where it runs" true
        Simtime.(i_nrm.Report.total < i_vim.Report.total))
    rows

let sensitivity_suite =
  [ Alcotest.test_case "sensitivity/orderings" `Slow test_sensitivity_orderings ]

let suite = suite @ sensitivity_suite

(* {1 Dual coprocessors behind one IMU} *)

let test_dual_coprocessors () =
  let serial_ms, dual_ms, both_ok =
    Experiments.ext_dual null_ppf
      { (cfg ()) with Config.device = Rvi_fpga.Device.epxa4 }
  in
  checkb "both outputs bit-exact" true both_ok;
  checkb "concurrency wins when memory suffices" true (dual_ms < serial_ms)

let dual_suite =
  [ Alcotest.test_case "dual/arbiter-e2e" `Slow test_dual_coprocessors ]

let suite = suite @ dual_suite

let test_report_json () =
  let row =
    {
      Report.app = "x\"y";
      version = "VIM";
      input_bytes = 2048;
      outcome = Report.Measured;
      total = Simtime.of_ms 3;
      hw = Simtime.of_ms 2;
      sw_dp = Simtime.of_ms 1;
      sw_imu = Simtime.zero;
      sw_app = Simtime.zero;
      sw_os = Simtime.zero;
      faults = 4;
      evictions = 3;
      writebacks = 2;
      tlb_refill_faults = 1;
      prefetched = 0;
      accesses = 99;
      fault_p95_us = 12.5;
      fault_p99_us = 14.25;
      retries = 0;
      verified = true;
    }
  in
  let j = Report.json [ row; row ] in
  checkb "array" true (String.length j > 2 && j.[0] = '[');
  checkb "escapes quotes" true
    (let rec has i =
       i + 6 <= String.length j && (String.sub j i 6 = {|"x\"y"|} || has (i + 1))
     in
     has 0);
  checkb "fields present" true
    (let has needle =
       let rec go i =
         (i + String.length needle <= String.length j)
         && (String.sub j i (String.length needle) = needle || go (i + 1))
       in
       go 0
     in
     has {|"faults":4|} && has {|"verified":true|} && has {|"total_ms":3.0|})

let json_suite = [ Alcotest.test_case "report/json" `Quick test_report_json ]
let suite = suite @ json_suite

(* {1 Syscall-interface fuzzing}

   Random sequences of syscalls with random arguments must never crash the
   kernel: every outcome is a return code. (The one deliberate exception
   is hardware integration bugs like double faults, which cannot be
   produced through the syscall surface.) *)

let prop_syscall_fuzz =
  QCheck.Test.make ~name:"random syscall sequences never crash the kernel"
    ~count:25
    QCheck.(pair (int_bound 10_000) (int_range 5 25))
    (fun (seed, n_calls) ->
      let prng = Rvi_sim.Prng.create ~seed in
      let p =
        Platform.create (cfg ()) ~bitstream:Calibration.vecadd_bitstream
          ~make:Rvi_coproc.Vecadd.Virtual.create
      in
      let kernel = p.Platform.kernel in
      let numbers =
        [|
          Rvi_os.Syscall.fpga_load;
          Rvi_os.Syscall.fpga_map_object;
          Rvi_os.Syscall.fpga_execute;
          Rvi_os.Syscall.fpga_unload;
          9999 (* unknown *);
        |]
      in
      let ok = ref true in
      for _ = 1 to n_calls do
        let number = numbers.(Rvi_sim.Prng.int prng (Array.length numbers)) in
        let argc = Rvi_sim.Prng.int prng 7 in
        let args =
          Array.init argc (fun _ -> Rvi_sim.Prng.int prng 70_000 - 1_000)
        in
        match Rvi_os.Kernel.syscall kernel ~number args with
        | (_ : int) -> ()
        | exception _ -> ok := false
      done;
      !ok)

let fuzz_suite = [ QCheck_alcotest.to_alcotest prop_syscall_fuzz ]
let suite = suite @ fuzz_suite

(* {1 Jobs discipline properties} *)

let prop_grouped_minimises_reconfig =
  QCheck.Test.make
    ~name:"grouped dispatch reconfigures once per application kind" ~count:5
    QCheck.(pair (int_bound 1000) (int_range 1 3))
    (fun (seed, per_app) ->
      let jobs = Rvi_harness.Jobs.mixed_batch ~seed ~jobs_per_app:per_app in
      let r = Rvi_harness.Jobs.run (cfg ()) ~jobs Rvi_harness.Jobs.Grouped in
      r.Rvi_harness.Jobs.reconfigurations = 3 && r.Rvi_harness.Jobs.all_verified)

let jobs_prop_suite = [ QCheck_alcotest.to_alcotest prop_grouped_minimises_reconfig ]
let suite = suite @ jobs_prop_suite

(* {1 Model holds across random sizes and both IMU variants} *)

let prop_model_tracks_simulator =
  QCheck.Test.make ~name:"analytical model tracks the simulator (adpcm)"
    ~count:6
    QCheck.(pair (int_range 1 10) bool)
    (fun (kb, pipelined) ->
      let cfg =
        {
          (cfg ()) with
          Config.imu_kind = (if pipelined then Config.Pipelined else Config.Four_cycle);
        }
      in
      let bytes = kb * 1024 in
      let input = Workload.adpcm_stream ~seed:kb ~bytes in
      let row = Runner.adpcm_vim cfg ~input in
      let p = Rvi_harness.Model.adpcm_vim cfg ~input_bytes:bytes in
      abs_float (p.Rvi_harness.Model.hw_ms -. Simtime.to_ms row.Report.hw)
      /. Simtime.to_ms row.Report.hw
      < 0.05)

let model_prop_suite = [ QCheck_alcotest.to_alcotest prop_model_tracks_simulator ]
let suite = suite @ model_prop_suite

(* {1 Profile-guided optimal replacement} *)

let test_oracle_reaches_belady () =
  let results, opt_bound = Experiments.ext_oracle null_ppf (cfg ()) in
  let get name = List.assoc name results in
  let fifo_faults, fifo_ok = get "fifo" in
  let oracle_faults, oracle_ok = get "oracle" in
  checkb "both verified" true (fifo_ok && oracle_ok);
  checkb "fifo thrashes on the cyclic pattern" true (fifo_faults > oracle_faults);
  checki "oracle exactly meets the analytic OPT bound" opt_bound oracle_faults

let oracle_suite =
  [ Alcotest.test_case "oracle/belady-live" `Slow test_oracle_reaches_belady ]

let suite = suite @ oracle_suite

(* {1 Cross-feature combinations} *)

let prop_feature_combinations =
  QCheck.Test.make
    ~name:"feature combinations stay bit-exact (dma x overlap x tlb-org x imu)"
    ~count:6
    QCheck.(
      quad bool bool (int_bound 2) bool)
    (fun (dma, overlap, org_idx, pipelined) ->
      let org =
        List.nth
          [
            Rvi_core.Tlb.Fully_associative;
            Rvi_core.Tlb.Set_associative 2;
            Rvi_core.Tlb.Direct_mapped;
          ]
          org_idx
      in
      let cfg =
        {
          (cfg ()) with
          Config.copy_engine =
            (if dma then Rvi_core.Vim.Dma_engine Rvi_mem.Dma.default
             else Rvi_core.Vim.Cpu);
          prefetch =
            (if overlap then Rvi_core.Prefetch.sequential ~depth:1
             else Rvi_core.Prefetch.off);
          overlap_prefetch = overlap;
          tlb_organization = org;
          imu_kind = (if pipelined then Config.Pipelined else Config.Four_cycle);
        }
      in
      let input = Workload.adpcm_stream ~seed:(org_idx + 7) ~bytes:4096 in
      Report.ok (Runner.adpcm_vim cfg ~input))

let prop_demand_paging_bit_exact =
  QCheck.Test.make ~name:"demand paging (no eager mapping) stays bit-exact"
    ~count:6
    QCheck.(pair (int_bound 500) (int_range 1 8))
    (fun (seed, kb) ->
      let cfg = { (cfg ()) with Config.eager_mapping = false; seed } in
      let input = Workload.adpcm_stream ~seed ~bytes:(kb * 1024) in
      let row = Runner.adpcm_vim cfg ~input in
      Report.ok row
      (* every page must now arrive by demand fault *)
      && row.Report.faults > 0)

let combo_suite =
  [
    QCheck_alcotest.to_alcotest prop_feature_combinations;
    QCheck_alcotest.to_alcotest prop_demand_paging_bit_exact;
  ]

let suite = suite @ combo_suite

(* Regression: a prefetch refill must never evict the TLB entry of the
   page whose fault is being serviced (direct-mapped conflict), which
   previously tripped the IMU's double-fault guard. *)
let test_prefetch_vs_faulting_entry () =
  List.iter
    (fun overlap_prefetch ->
      let cfg =
        {
          (cfg ()) with
          Config.tlb_organization = Rvi_core.Tlb.Direct_mapped;
          prefetch = Rvi_core.Prefetch.sequential ~depth:2;
          overlap_prefetch;
        }
      in
      let input = Workload.adpcm_stream ~seed:91 ~bytes:4096 in
      let row = Runner.adpcm_vim cfg ~input in
      checkb
        (Printf.sprintf "verified (overlap=%b)" overlap_prefetch)
        true (Report.ok row))
    [ false; true ]

let regression_suite =
  [
    Alcotest.test_case "regression/prefetch-vs-faulting-entry" `Quick
      test_prefetch_vs_faulting_entry;
  ]

let suite = suite @ regression_suite

(* {1 Pooled platforms}

   The campaign fast path re-arms a pooled platform in place instead of
   constructing a fresh one. [Platform.reset]'s contract is that the two
   are indistinguishable: the same (workload, injector seed) run on a
   pooled platform must produce a byte-identical result row — outcome,
   fault counts, simulated times — to the run on a freshly built
   platform, fault schedule included. *)

let prop_pooled_equals_fresh =
  QCheck.Test.make
    ~name:"pooled platform run is byte-identical to a fresh-platform run"
    ~count:8
    QCheck.(pair (int_bound 3) (int_bound 10_000))
    (fun (app_index, seed) ->
      let apps = Rvi_harness.Faults.workloads ~seed:2004 in
      let app = apps.(app_index) in
      let spec = Rvi_inject.Spec.all () in
      let run ?pool () =
        Rvi_harness.Faults.run_one ?pool ~spec
          ~recovery:Rvi_core.Vim.default_recovery
          ~watchdog:Rvi_harness.Faults.default_watchdog ~exec_retries:2 ~seed
          app
      in
      let fresh = run () in
      let pool = Platform.Pool.create () in
      (* first run populates the pool, second re-arms the stashed
         platform — both must match the no-pool run *)
      let first = run ~pool () in
      let stashed = Platform.Pool.size pool = 1 in
      let pooled = run ~pool () in
      stashed && first = fresh && pooled = fresh)

let pooled_suite = [ QCheck_alcotest.to_alcotest prop_pooled_equals_fresh ]
let suite = suite @ pooled_suite

(* {1 Bench trajectory schema}

   The benchmark CLI appends trajectory points to BENCH_campaign.json
   with a hand-rolled writer (no JSON library in the image), so the
   writer itself is the schema: a regression-gate script that greps a
   key out of the newest entry silently reads garbage if a field is
   renamed or the object loses its shape. The file in the repo root is
   outside the test sandbox, so the check validates the writer's output
   for a synthetic point instead. *)

let test_bench_point_json_schema () =
  let p =
    {
      Rvi_harness.Bench_campaign.benchmark = "faults-campaign";
      commit = "deadbee";
      host_cores = 4;
      runs = 200;
      seed = 2004;
      jobs = 2;
      serial_s = 1.25;
      parallel_s = 1.5;
      serial_runs_per_sec = 160.0;
      parallel_runs_per_sec = 133.3;
      speedup = 0.83;
      deterministic = true;
      survival = 56.5;
      phase_setup_s = 0.2;
      phase_execute_s = 0.9;
      phase_report_s = 0.05;
    }
  in
  let json = Rvi_harness.Bench_campaign.point_json p in
  List.iter
    (fun key ->
      let needle = "\"" ^ key ^ "\"" in
      let found =
        let nl = String.length needle and jl = String.length json in
        let rec scan i = i + nl <= jl && (String.sub json i nl = needle || scan (i + 1)) in
        scan 0
      in
      checkb (Printf.sprintf "key %S present" key) true found)
    [
      "benchmark"; "commit"; "host_cores"; "runs"; "seed"; "jobs";
      "serial_s"; "parallel_s"; "serial_runs_per_sec";
      "parallel_runs_per_sec"; "speedup"; "deterministic"; "survival_pct";
      "phase_setup_s"; "phase_execute_s"; "phase_report_s";
    ];
  (* shape: one balanced object, no trailing comma before the brace *)
  let depth = ref 0 and min_depth = ref 0 and last = ref ' ' in
  String.iter
    (fun c ->
      (match c with
      | '{' -> incr depth
      | '}' ->
        decr depth;
        if !depth < !min_depth then min_depth := !depth
      | _ -> ());
      if c <> ' ' && c <> '\n' then begin
        if c = '}' then checkb "no trailing comma" true (!last <> ',');
        last := c
      end)
    json;
  checkb "braces balanced" true (!depth = 0);
  checkb "never dips below top level" true (!min_depth >= 0);
  checkb "bool rendered as literal" true
    (let nl = String.length "\"deterministic\": true" in
     let rec scan i =
       i + nl <= String.length json
       && (String.sub json i nl = "\"deterministic\": true" || scan (i + 1))
     in
     scan 0)

let bench_suite =
  [
    Alcotest.test_case "bench/point-json-schema" `Quick
      test_bench_point_json_schema;
  ]

let suite = suite @ bench_suite

(* {1 Translation modes}

   The IOMMU/SVA path replaces per-object page lists with a per-process
   page table, a hardware walker and an L1/L2 TLB hierarchy. Three
   guarantees matter: the batched IMU stays equivalent to the reference
   IMU under TLB miss bursts in BOTH modes, every campaign workload
   still verifies end to end under SVA, and SVA runs are deterministic. *)

let prop_imu_variants_agree_across_modes =
  QCheck.Test.make
    ~name:"pipelined IMU matches four-cycle IMU under miss bursts, both modes"
    ~count:8
    QCheck.(triple (int_bound 500) (int_range 2 6) bool)
    (fun (seed, kb, sva) ->
      let translation =
        if sva then Rvi_core.Translation_mode.Iommu_sva
        else Rvi_core.Translation_mode.Paper_objects
      in
      (* A 2-entry TLB over a multi-page working set keeps the IMU in a
         near-permanent miss burst — the regime where a batched engine
         could legally reorder itself into different behaviour. *)
      let with_kind imu_kind =
        {
          (cfg ()) with
          Config.tlb_entries = Some 2;
          seed;
          imu_kind;
          translation;
        }
      in
      let input = Workload.adpcm_stream ~seed ~bytes:(kb * 1024) in
      let four = Runner.adpcm_vim (with_kind Config.Four_cycle) ~input in
      let pipe = Runner.adpcm_vim (with_kind Config.Pipelined) ~input in
      Report.ok four && Report.ok pipe
      && four.Report.faults = pipe.Report.faults
      && four.Report.evictions = pipe.Report.evictions
      && four.Report.writebacks = pipe.Report.writebacks
      && four.Report.accesses = pipe.Report.accesses)

let test_sva_end_to_end () =
  (* All four campaign workloads must verify bit-exact in SVA mode. *)
  let sva = { (cfg ()) with Config.translation = Rvi_core.Translation_mode.Iommu_sva } in
  let seed = sva.Config.seed in
  let check_row name row =
    checkb (name ^ " verified under SVA") true (Report.ok row)
  in
  check_row "adpcm"
    (Runner.adpcm_vim sva ~input:(Workload.adpcm_stream ~seed ~bytes:8192));
  check_row "idea"
    (Runner.idea_vim sva ~key:(Workload.idea_key ~seed)
       ~input:(Workload.idea_plaintext ~seed ~bytes:8192));
  check_row "fir"
    (Runner.fir_vim sva
       ~coeffs:(Workload.fir_coeffs ~taps:16)
       ~shift:12
       ~input:(Workload.fir_signal ~seed ~bytes:8192));
  let a, b = Workload.vectors ~seed ~n:1024 in
  check_row "vecadd" (Runner.vecadd_vim sva ~a ~b)

let prop_sva_deterministic =
  QCheck.Test.make ~name:"identical SVA runs produce identical rows" ~count:6
    QCheck.(pair (int_bound 500) (int_range 1 6))
    (fun (seed, kb) ->
      let sva =
        {
          (cfg ()) with
          Config.translation = Rvi_core.Translation_mode.Iommu_sva;
          seed;
        }
      in
      let input = Workload.adpcm_stream ~seed ~bytes:(kb * 1024) in
      let first = Runner.adpcm_vim sva ~input in
      let second = Runner.adpcm_vim sva ~input in
      Report.ok first && first = second)

let translation_suite =
  [
    QCheck_alcotest.to_alcotest prop_imu_variants_agree_across_modes;
    Alcotest.test_case "sva/end-to-end-workloads" `Quick test_sva_end_to_end;
    QCheck_alcotest.to_alcotest prop_sva_deterministic;
  ]

let suite = suite @ translation_suite
