module Simtime = Rvi_sim.Simtime

type kind =
  | Exec_begin
  | Exec_end of { ok : bool }
  | Fault of { obj_id : int; vpn : int; refill_only : bool }
  | Decode
  | Copy of { bytes : int; dma : bool }
  | Tlb_update of { obj_id : int; vpn : int; ppn : int }
  | Tlb_invalidate of { ppn : int }
  | Page_load of { obj_id : int; vpn : int; frame : int; bytes : int }
  | Page_writeback of { obj_id : int; vpn : int; frame : int; bytes : int }
  | Page_evict of {
      obj_id : int;
      vpn : int;
      frame : int;
      policy : string;
      dirty : bool;
    }
  | Prefetch of { obj_id : int; vpn : int; frame : int }
  | Irq_raise of { line : int; name : string }
  | Irq_service
  | Watchdog
  | Inject of { fault : string }
  | Retry of { what : string; attempt : int }
  | Recover of { what : string; retries : int }
  | Degrade of { reason : string }

type event = {
  seq : int;
  at : Simtime.t;
  dur : Simtime.t;
  shard : int;
  kind : kind;
}

type t = {
  buf : event array;
  capacity : int;
  shard : int;
  mutable len : int;
  mutable head : int; (* index of the oldest event when len = capacity *)
  mutable next_seq : int;
  mutable dropped : int;
}

let dummy =
  { seq = -1; at = Simtime.zero; dur = Simtime.zero; shard = 0; kind = Exec_begin }

let create ?(capacity = 1 lsl 16) ?(shard = 0) () =
  if capacity < 1 then invalid_arg "Trace.create: need at least one slot";
  {
    buf = Array.make capacity dummy;
    capacity;
    shard;
    len = 0;
    head = 0;
    next_seq = 0;
    dropped = 0;
  }

let shard t = t.shard

let push t e =
  if t.len < t.capacity then begin
    t.buf.((t.head + t.len) mod t.capacity) <- e;
    t.len <- t.len + 1
  end
  else begin
    (* Ring full: overwrite the oldest event. *)
    t.buf.(t.head) <- e;
    t.head <- (t.head + 1) mod t.capacity;
    t.dropped <- t.dropped + 1
  end

let emit t ~at ?(dur = Simtime.zero) kind =
  let e = { seq = t.next_seq; at; dur; shard = t.shard; kind } in
  t.next_seq <- t.next_seq + 1;
  push t e

let append t e =
  (* Restamp the sequence number so destination order is total; keep the
     event's own shard so merged exports still say where it ran. *)
  let e = { e with seq = t.next_seq } in
  t.next_seq <- t.next_seq + 1;
  push t e

let length t = t.len
let dropped t = t.dropped
let emitted t = t.next_seq

let events t =
  List.init t.len (fun i -> t.buf.((t.head + i) mod t.capacity))

let clear t =
  t.len <- 0;
  t.head <- 0;
  t.dropped <- 0

let merge_into ~into src =
  List.iter (append into) (events src);
  into.dropped <- into.dropped + src.dropped

let kind_name = function
  | Exec_begin -> "exec_begin"
  | Exec_end _ -> "exec"
  | Fault _ -> "fault"
  | Decode -> "decode"
  | Copy _ -> "copy"
  | Tlb_update _ -> "tlb_update"
  | Tlb_invalidate _ -> "tlb_invalidate"
  | Page_load _ -> "page_load"
  | Page_writeback _ -> "page_writeback"
  | Page_evict _ -> "page_evict"
  | Prefetch _ -> "prefetch"
  | Irq_raise _ -> "irq_raise"
  | Irq_service -> "irq_service"
  | Watchdog -> "watchdog"
  | Inject _ -> "inject"
  | Retry _ -> "retry"
  | Recover _ -> "recover"
  | Degrade _ -> "degrade"

type arg = Int of int | Str of string | Bool of bool

(* Structured payload of each kind, used by both exporters so they never
   disagree about field names. *)
let args = function
  | Exec_begin | Decode | Irq_service | Watchdog -> []
  | Exec_end { ok } -> [ ("ok", Bool ok) ]
  | Fault { obj_id; vpn; refill_only } ->
    [ ("obj", Int obj_id); ("vpn", Int vpn); ("refill_only", Bool refill_only) ]
  | Copy { bytes; dma } -> [ ("bytes", Int bytes); ("dma", Bool dma) ]
  | Tlb_update { obj_id; vpn; ppn } ->
    [ ("obj", Int obj_id); ("vpn", Int vpn); ("ppn", Int ppn) ]
  | Tlb_invalidate { ppn } -> [ ("ppn", Int ppn) ]
  | Page_load { obj_id; vpn; frame; bytes } ->
    [ ("obj", Int obj_id); ("vpn", Int vpn); ("frame", Int frame); ("bytes", Int bytes) ]
  | Page_writeback { obj_id; vpn; frame; bytes } ->
    [ ("obj", Int obj_id); ("vpn", Int vpn); ("frame", Int frame); ("bytes", Int bytes) ]
  | Page_evict { obj_id; vpn; frame; policy; dirty } ->
    [
      ("obj", Int obj_id);
      ("vpn", Int vpn);
      ("frame", Int frame);
      ("policy", Str policy);
      ("dirty", Bool dirty);
    ]
  | Prefetch { obj_id; vpn; frame } ->
    [ ("obj", Int obj_id); ("vpn", Int vpn); ("frame", Int frame) ]
  | Irq_raise { line; name } -> [ ("line", Int line); ("name", Str name) ]
  | Inject { fault } -> [ ("fault", Str fault) ]
  | Retry { what; attempt } -> [ ("what", Str what); ("attempt", Int attempt) ]
  | Recover { what; retries } -> [ ("what", Str what); ("retries", Int retries) ]
  | Degrade { reason } -> [ ("reason", Str reason) ]

(* Inverse of {!args} ∘ {!kind_name}: rebuild a kind from its name and a
   field lookup. Returns [None] on unknown names or missing fields. *)
let kind_of_name name lookup =
  let int k = match lookup k with Some (Int i) -> Some i | _ -> None in
  let str k = match lookup k with Some (Str s) -> Some s | _ -> None in
  let bool k = match lookup k with Some (Bool b) -> Some b | _ -> None in
  let ( let* ) = Option.bind in
  match name with
  | "exec_begin" -> Some Exec_begin
  | "exec" ->
    let* ok = bool "ok" in
    Some (Exec_end { ok })
  | "fault" ->
    let* obj_id = int "obj" in
    let* vpn = int "vpn" in
    let* refill_only = bool "refill_only" in
    Some (Fault { obj_id; vpn; refill_only })
  | "decode" -> Some Decode
  | "copy" ->
    let* bytes = int "bytes" in
    let* dma = bool "dma" in
    Some (Copy { bytes; dma })
  | "tlb_update" ->
    let* obj_id = int "obj" in
    let* vpn = int "vpn" in
    let* ppn = int "ppn" in
    Some (Tlb_update { obj_id; vpn; ppn })
  | "tlb_invalidate" ->
    let* ppn = int "ppn" in
    Some (Tlb_invalidate { ppn })
  | "page_load" ->
    let* obj_id = int "obj" in
    let* vpn = int "vpn" in
    let* frame = int "frame" in
    let* bytes = int "bytes" in
    Some (Page_load { obj_id; vpn; frame; bytes })
  | "page_writeback" ->
    let* obj_id = int "obj" in
    let* vpn = int "vpn" in
    let* frame = int "frame" in
    let* bytes = int "bytes" in
    Some (Page_writeback { obj_id; vpn; frame; bytes })
  | "page_evict" ->
    let* obj_id = int "obj" in
    let* vpn = int "vpn" in
    let* frame = int "frame" in
    let* policy = str "policy" in
    let* dirty = bool "dirty" in
    Some (Page_evict { obj_id; vpn; frame; policy; dirty })
  | "prefetch" ->
    let* obj_id = int "obj" in
    let* vpn = int "vpn" in
    let* frame = int "frame" in
    Some (Prefetch { obj_id; vpn; frame })
  | "irq_raise" ->
    let* line = int "line" in
    let* name = str "name" in
    Some (Irq_raise { line; name })
  | "irq_service" -> Some Irq_service
  | "watchdog" -> Some Watchdog
  | "inject" ->
    let* fault = str "fault" in
    Some (Inject { fault })
  | "retry" ->
    let* what = str "what" in
    let* attempt = int "attempt" in
    Some (Retry { what; attempt })
  | "recover" ->
    let* what = str "what" in
    let* retries = int "retries" in
    Some (Recover { what; retries })
  | "degrade" ->
    let* reason = str "reason" in
    Some (Degrade { reason })
  | _ -> None

(* The paper's time categories, for exporters that color by category. *)
let category = function
  | Exec_begin | Exec_end _ -> "exec"
  | Fault _ | Irq_service -> "vim"
  | Decode | Tlb_update _ | Tlb_invalidate _ -> "swimu"
  | Copy _ -> "swdp"
  | Page_load _ | Page_writeback _ | Page_evict _ | Prefetch _ -> "paging"
  | Irq_raise _ | Watchdog -> "irq"
  | Inject _ | Retry _ | Recover _ | Degrade _ -> "reliability"

let pp_event ppf e =
  Format.fprintf ppf "[%a+%a] %s" Simtime.pp e.at Simtime.pp e.dur
    (kind_name e.kind);
  List.iter
    (fun (k, v) ->
      match v with
      | Int i -> Format.fprintf ppf " %s=%d" k i
      | Str s -> Format.fprintf ppf " %s=%s" k s
      | Bool b -> Format.fprintf ppf " %s=%b" k b)
    (args e.kind)
