(** Clock domains driving synchronous components.

    A clock fires a rising edge every period. On each edge, every registered
    component first has its [compute] function called (it reads the values
    that other components committed on previous edges and decides its next
    state) and then its [commit] function (it publishes the new state). The
    two-phase discipline gives register-transfer semantics: all components
    observe a consistent pre-edge snapshot regardless of registration order.

    A component registered with [~divide:n] only ticks on edges where
    [cycle mod n = phase]; this models a slower derived clock, e.g. the
    paper's 6 MHz IDEA core deriving from the 24 MHz memory clock. *)

type component = {
  name : string;
  compute : unit -> unit;
  commit : unit -> unit;
}

val component :
  name:string -> compute:(unit -> unit) -> commit:(unit -> unit) -> component

type t

val create : Engine.t -> name:string -> freq_hz:int -> t
(** Creates a stopped clock attached to [engine]. *)

val add : ?divide:int -> ?phase:int -> t -> component -> unit
(** Registers a component. [divide] defaults to 1 (every edge); [phase]
    defaults to 0 and must satisfy [0 <= phase < divide]. *)

val on_edge : t -> (int -> unit) -> unit
(** Registers an observer called after all commits on each edge with the
    just-completed cycle index. Used by waveform tracers. *)

val start : t -> unit
(** Starts the clock: the first edge fires one period from now. Idempotent. *)

val stop : t -> unit
(** Stops the clock after the current edge, if any. Idempotent. *)

val running : t -> bool
val cycles : t -> int
(** Number of edges fired since creation. *)

val freq_hz : t -> int
val period : t -> Simtime.t
val name : t -> string
