(* The 64-bit state lives in an 8-byte buffer accessed through the
   compiler's raw 64-bit load/store primitives: a [mutable state : int64]
   field would re-box the value on every step (one minor-heap block per
   draw — the injector draws on every guarded hardware event), whereas
   the buffer write is a plain store and the whole step stays unboxed
   when inlined into a caller. Endianness is irrelevant: the buffer only
   ever round-trips values this module wrote. *)
type t = Bytes.t

external get64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external set64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

let of_int64 s =
  let b = Bytes.create 8 in
  set64 b 0 s;
  b

let create ~seed = of_int64 (Int64.of_int seed)

(* splitmix64 step (Steele, Lea & Flood 2014). *)
let next64 t =
  let z = Int64.add (get64 t 0) 0x9E3779B97F4A7C15L in
  set64 t 0 z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: non-positive bound";
  next t mod bound

let byte t = Int64.to_int (Int64.logand (next64 t) 0xFFL)
let bool t = Int64.logand (next64 t) 1L = 1L

let fill_bytes t b =
  for i = 0 to Bytes.length b - 1 do
    Bytes.unsafe_set b i (Char.unsafe_chr (byte t))
  done

let split t = of_int64 (next64 t)

(* [derive] must decorrelate adjacent indices (shards use consecutive
   run indices), so the index is pushed through one splitmix64 step
   before being mixed into the seed's stream — neighbouring (seed,
   index) pairs then start from states differing in ~half their bits. *)
let derive ~seed ~index =
  if index < 0 then invalid_arg "Prng.derive: negative index";
  let t = of_int64 (Int64.of_int seed) in
  let a = next64 t in
  let i = of_int64 (Int64.logxor 0x6C62272E07BB0142L (Int64.of_int index)) in
  let b = next64 i in
  of_int64 (Int64.logxor a b)
