(** Fixed-point FIR filter — software reference for the DSP workload.

    The paper motivates reconfigurable SoCs with signal processing
    ("embedded memories and arithmetic blocks suited for signal
    processing"); this is the corresponding third application: a direct-
    form FIR with signed 16-bit samples and coefficients, a configurable
    accumulator right-shift, and saturation back to 16 bits.

    y[i] = sat16( (sum_k h[k] * x[i+k]) >> shift ),  0 <= i < n - taps + 1 *)

val max_taps : int
(** Largest coefficient count the coprocessor's register file holds (64). *)

val filter : coeffs:int array -> shift:int -> int array -> int array
(** [filter ~coeffs ~shift x] with [x] of length n returns the
    [n - taps + 1] filtered samples. Raises [Invalid_argument] if
    [coeffs] is empty, longer than {!max_taps}, longer than [x], any value
    is outside signed 16 bits, or [shift] is outside [0, 30]. *)

val filter_bytes : coeffs:int array -> shift:int -> Bytes.t -> Bytes.t
(** Same over little-endian 16-bit sample buffers (the coprocessor's
    memory layout). Input length must be even. *)

val output_bytes : taps:int -> int -> int
(** Output buffer size for a given input buffer size. *)

val lowpass : taps:int -> cutoff:float -> int array
(** A Hamming-windowed sinc low-pass design quantised to Q15-ish 16-bit
    coefficients — a realistic coefficient set for the workloads.
    [cutoff] is the normalised frequency in (0, 0.5). *)

val sw_cycles_per_tap : int
(** Calibrated ARM cycles per multiply-accumulate of the software
    version. *)

val sw_cycles_per_output : int
(** Fixed per-output-sample overhead (load/store, loop, saturation). *)
