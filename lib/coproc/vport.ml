module Cp_port = Rvi_core.Cp_port

(* The bus side of the wrapper lives in the IMU clock domain
   ([sync_component]): requests leave as single-cycle CP_ACCESS pulses at
   the IMU rate and the IMU's single-cycle response pulses are latched
   into sticky flags, which the (possibly slower) coprocessor consumes at
   its own rate.

   The posted request is held in flat mutable fields guarded by
   [pending_valid] rather than a [request option]: [issue] runs once per
   coprocessor access on the campaign hot path, and an option-of-record
   costs a fresh heap block per access where the flat fields cost
   stores. *)
type t = {
  port : Cp_port.t;
  (* posted by the coprocessor; fields meaningful iff [pending_valid] *)
  mutable pending_valid : bool;
  mutable pend_region : int;
  mutable pend_addr : int;
  mutable pend_wr : bool;
  mutable pend_width : Cp_port.width;
  mutable pend_data : int;
  mutable waiting : bool; (* pulse sent, response not yet consumed *)
  mutable resp_valid : bool;
  mutable resp_data : int;
  mutable start_flag : bool;
  (* values latched for the coprocessor's current compute cycle *)
  mutable hit_now : bool;
  mutable data_now : int;
  mutable start_now : bool;
  mutable fin_req : bool;
  mutable accesses : int;
}

let create port =
  {
    port;
    pending_valid = false;
    pend_region = 0;
    pend_addr = 0;
    pend_wr = false;
    pend_width = Cp_port.W32;
    pend_data = 0;
    waiting = false;
    resp_valid = false;
    resp_data = 0;
    start_flag = false;
    hit_now = false;
    data_now = 0;
    start_now = false;
    fin_req = false;
    accesses = 0;
  }

let sync_compute t =
  if t.port.Cp_port.cp_start then t.start_flag <- true;
  if t.waiting && t.port.Cp_port.cp_tlbhit then begin
    t.resp_valid <- true;
    t.resp_data <- t.port.Cp_port.cp_din
  end

let sync_commit t =
  let p = t.port in
  if t.pending_valid && not t.waiting then begin
    p.Cp_port.cp_obj <- t.pend_region;
    p.Cp_port.cp_addr <- t.pend_addr;
    p.Cp_port.cp_wr <- t.pend_wr;
    p.Cp_port.cp_width <- t.pend_width;
    p.Cp_port.cp_dout <- t.pend_data;
    p.Cp_port.cp_access <- true;
    t.pending_valid <- false;
    t.waiting <- true
  end
  else p.Cp_port.cp_access <- false;
  p.Cp_port.cp_fin <- t.fin_req

(* The sync tick is a no-op iff there is no IMU pulse to latch, no posted
   request to move onto the bus, and the committed bus outputs already
   equal what [sync_commit] would drive ([cp_access] low, [cp_fin] equal
   to the requested level). State changes only arrive through the IMU or
   the coprocessor ticking — both end an idle-skip window themselves — so
   a quiescent sync stays quiescent until then. *)
let sync_idle t =
  let p = t.port in
  if p.Cp_port.cp_start || (t.waiting && p.Cp_port.cp_tlbhit) then 0
  else if t.pending_valid then 0
  else if p.Cp_port.cp_access then 0
  else if p.Cp_port.cp_fin <> t.fin_req then 0
  else max_int

let sync_component t =
  (* [commit_hazard]: the owning coprocessor registers after the sync slot
     and posts requests / fin levels from its compute phase that
     [sync_commit] must drive onto the bus the same edge. *)
  Rvi_sim.Clock.component ~name:"vport-sync" ~commit_hazard:true
    ~idle_hint:(fun () -> sync_idle t)
    ~skip:(fun _ -> ())
    ~compute:(fun () -> sync_compute t)
    ~commit:(fun () -> sync_commit t)
    ()

(* When the coprocessor runs at the IMU rate (divide 1) the IMU, the sync
   stage and the coprocessor tick on every edge, always back to back, so
   they can share one slot: compute = imu;sync_compute;coproc.compute and
   commit = imu;sync_commit;coproc.commit reproduce the exact global call
   order of the three separate registrations. The compute->commit hazard
   that forces [commit_hazard] on the standalone sync slot becomes
   internal to the fused slot, so the fused component needs no hazard
   flag. Fusing is a pure host-side optimisation, but a load-bearing one:
   each campaign edge dispatches one flat closure layer that calls the
   IMU's direct edge interface and the sync-stage statics, instead of
   three slots (or nested [Clock.compose] wrappers) each paying their own
   closure indirections. *)
let fused_component t ~imu (coproc : Rvi_sim.Clock.component) =
  let name = "imu+" ^ coproc.Rvi_sim.Clock.name ^ "+vport-sync" in
  let ccompute = coproc.Rvi_sim.Clock.compute in
  let ccommit = coproc.Rvi_sim.Clock.commit in
  let compute () =
    Rvi_core.Imu.compute imu;
    sync_compute t;
    ccompute ()
  in
  let commit () =
    Rvi_core.Imu.commit imu;
    sync_commit t;
    ccommit ()
  in
  match (coproc.Rvi_sim.Clock.idle_hint, coproc.Rvi_sim.Clock.skip) with
  | Some chint, Some cskip ->
    Rvi_sim.Clock.component ~name
      ~idle_hint:(fun () ->
        (* min of the three hints, in slot order, bailing at the first
           zero — identical window to the separate registrations. *)
        let hi = Rvi_core.Imu.idle_hint imu in
        if hi <= 0 then 0
        else if sync_idle t = 0 then 0
        else
          let hc = chint () in
          if hc < hi then hc else hi)
      ~skip:(fun k ->
        Rvi_core.Imu.skip imu k;
        cskip k)
      ~compute ~commit ()
  | _ -> Rvi_sim.Clock.component ~name ~compute ~commit ()

let sample t =
  t.start_now <- t.start_flag;
  t.start_flag <- false;
  if t.start_now then t.fin_req <- false;
  t.hit_now <- t.resp_valid;
  if t.hit_now then begin
    t.data_now <- t.resp_data;
    t.resp_valid <- false;
    t.waiting <- false
  end

let start_seen t = t.start_now
let busy t = t.pending_valid || t.waiting
let ready t = t.hit_now
let data t = t.data_now

(* [sample] only changes state when a latched start or response is waiting
   to be consumed, or when a consumed one must drop back low. A request
   merely in flight ([waiting]) keeps the coprocessor quiescent — the
   response arrives through IMU/sync activity, which is itself visible to
   the idle-skip window. *)
let quiescent t =
  (not t.start_flag) && (not t.start_now) && (not t.resp_valid)
  && not t.hit_now

let issue t ~region ~addr ~wr ~width ~data =
  assert (not (busy t));
  t.pend_region <- region;
  t.pend_addr <- addr;
  t.pend_wr <- wr;
  t.pend_width <- width;
  t.pend_data <- data;
  t.pending_valid <- true;
  t.accesses <- t.accesses + 1

let finish t = t.fin_req <- true

(* Port driving happens in the IMU domain ({!sync_component}); nothing to
   do at the coprocessor's own commit. *)
let commit _t = ()

let reset t =
  t.pending_valid <- false;
  t.waiting <- false;
  t.resp_valid <- false;
  t.resp_data <- 0;
  t.start_flag <- false;
  t.hit_now <- false;
  t.data_now <- 0;
  t.start_now <- false;
  t.fin_req <- false

let accesses t = t.accesses
