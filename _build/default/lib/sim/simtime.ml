type t = int

let zero = 0

let of_ps n =
  if n < 0 then invalid_arg "Simtime.of_ps: negative";
  n

let of_ns n = of_ps (n * 1_000)
let of_us n = of_ps (n * 1_000_000)
let of_ms n = of_ps (n * 1_000_000_000)
let to_ps t = t
let to_ns t = float_of_int t /. 1e3
let to_us t = float_of_int t /. 1e6
let to_ms t = float_of_int t /. 1e9
let to_s t = float_of_int t /. 1e12

let add a b =
  let s = a + b in
  if s < 0 then invalid_arg "Simtime.add: overflow";
  s

let sub a b =
  if a < b then invalid_arg "Simtime.sub: negative result";
  a - b

let mul t k =
  if k < 0 then invalid_arg "Simtime.mul: negative factor";
  let p = t * k in
  if k <> 0 && p / k <> t then invalid_arg "Simtime.mul: overflow";
  p

let compare = Int.compare
let equal = Int.equal
let ( <= ) (a : t) (b : t) = a <= b
let ( < ) (a : t) (b : t) = a < b
let min (a : t) (b : t) = Stdlib.min a b
let max (a : t) (b : t) = Stdlib.max a b

let picos_per_second = 1_000_000_000_000

let period_of_hz f =
  if f <= 0 then invalid_arg "Simtime.period_of_hz: non-positive frequency";
  if f > picos_per_second then
    invalid_arg "Simtime.period_of_hz: frequency above 1 THz";
  picos_per_second / f

let of_cycles ~hz n = mul (period_of_hz hz) n
let cycles_of ~hz t = t / period_of_hz hz

let pp ppf t =
  if t = 0 then Format.fprintf ppf "0s"
  else if t < 1_000 then Format.fprintf ppf "%dps" t
  else if t < 1_000_000 then Format.fprintf ppf "%.3fns" (to_ns t)
  else if t < 1_000_000_000 then Format.fprintf ppf "%.3fus" (to_us t)
  else if t < picos_per_second then Format.fprintf ppf "%.3fms" (to_ms t)
  else Format.fprintf ppf "%.3fs" (to_s t)
