test/test_hw.ml: Alcotest Format List QCheck QCheck_alcotest Rvi_hw String
