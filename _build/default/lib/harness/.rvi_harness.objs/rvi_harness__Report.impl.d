lib/harness/report.ml: Buffer Char Float Format List Printf Rvi_sim String
