lib/hw/wave.mli: Rvi_sim
