module Prng = Rvi_sim.Prng
module Stats = Rvi_sim.Stats

(* Bernoulli draws compare a 30-bit slice of the PRNG stream against a
   precomputed integer threshold: cheap, exact for rate 0 and 1, and
   deterministic across platforms (no float accumulation). *)
let resolution = 1 lsl 30

type t = {
  prng : Prng.t;
  thresholds : (Fault.kind * int) list;
  spec : Spec.t;
  seed : int;
  stats : Stats.t;
  mutable enabled : bool;
  mutable observer : (Fault.kind -> unit) option;
}

let threshold rate =
  if rate >= 1.0 then resolution
  else if rate <= 0.0 then 0
  else int_of_float (rate *. float_of_int resolution)

let create ~seed ~spec =
  {
    prng = Prng.create ~seed;
    thresholds =
      List.map (fun r -> (r.Spec.kind, threshold r.Spec.rate)) spec;
    spec;
    seed;
    stats = Stats.create ();
    enabled = true;
    observer = None;
  }

let seed t = t.seed
let spec t = t.spec
let stats t = t.stats
let set_enabled t b = t.enabled <- b
let enabled t = t.enabled
let set_observer t f = t.observer <- f

let fire t kind =
  match List.assq_opt kind t.thresholds with
  | None -> false
  | Some 0 -> false
  | Some thr ->
    if not t.enabled then false
    else begin
      Stats.incr t.stats (Printf.sprintf "chances_%s" (Fault.name kind));
      let hit = Prng.next t.prng land (resolution - 1) < thr in
      if hit then begin
        Stats.incr t.stats (Printf.sprintf "injected_%s" (Fault.name kind));
        match t.observer with Some f -> f kind | None -> ()
      end;
      hit
    end

let draw t bound = Prng.int t.prng bound

let injected t kind =
  Stats.get t.stats (Printf.sprintf "injected_%s" (Fault.name kind))

let injected_total t =
  List.fold_left (fun acc k -> acc + injected t k) 0 Fault.all
