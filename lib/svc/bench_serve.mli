(** The gated perf series for the serve campaign ([BENCH_serve.json]).

    Same machine-written JSON-array format and append discipline as
    [BENCH_campaign.json]: one entry per (policy, translation) cell,
    keyed by a ["serve-<policy>-<mode>"] benchmark label, the baseline
    read {e before} the new point is appended. The gate bounds host
    throughput regressions and simulated p99 growth. *)

type point = {
  benchmark : string;
  commit : string;
  tenants : int;
  requests : int;
  completed : int;
  seed : int;
  jobs : int;
  wall_s : float;
  runs_per_sec : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  jain : float;
  makespan_ms : float;
  reconfigurations : int;
  preemptions : int;
  deterministic : bool;
  digest : string;
}

val benchmark_label : Serve.cell -> string
val of_result : ?jobs:int -> ?deterministic:bool -> Serve.cell_result -> point

val default_path : string
(** ["BENCH_serve.json"]. *)

val append : ?path:string -> point -> string
(** Appends the point, creating the file if needed; returns the path. *)

type baseline = { base_runs_per_sec : float; base_p99_us : float }

val last_baseline : ?path:string -> benchmark:string -> unit -> baseline option
(** The newest point of the given series — call before {!append}. *)

val gate : tolerance:float -> baseline:baseline option -> point -> string list
(** Failure descriptions; empty means the gate passes (or no baseline
    exists yet). *)

val print : Format.formatter -> point -> unit
