type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable now : Simtime.t;
  mutable events_processed : int;
}

exception Stalled

let create () =
  { queue = Event_queue.create (); now = Simtime.zero; events_processed = 0 }

let now t = t.now

let schedule_at t time f =
  if Simtime.(time < t.now) then
    invalid_arg "Engine.schedule_at: time in the past";
  Event_queue.push t.queue ~time f

let schedule_after t delay f = schedule_at t (Simtime.add t.now delay) f

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, f) ->
    t.now <- time;
    t.events_processed <- t.events_processed + 1;
    f ();
    true

let run_until t deadline =
  let rec loop () =
    match Event_queue.peek_time t.queue with
    | Some time when Simtime.(time <= deadline) ->
      ignore (step t);
      loop ()
    | Some _ | None -> ()
  in
  loop ();
  if Simtime.(t.now < deadline) then t.now <- deadline

let advance t dt = run_until t (Simtime.add t.now dt)

let run_while t cond =
  let rec loop () =
    if cond () then
      if step t then loop () else raise Stalled
  in
  loop ()

let events_processed t = t.events_processed
