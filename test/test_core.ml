(* Unit and cycle-level tests for the paper's core contribution (rvi_core):
   registers, TLB, frame table, policies, prefetcher, and the IMU state
   machine driven edge by edge. *)

module Simtime = Rvi_sim.Simtime
module Engine = Rvi_sim.Engine
module Clock = Rvi_sim.Clock
module Cp_port = Rvi_core.Cp_port
module Imu_regs = Rvi_core.Imu_regs
module Tlb = Rvi_core.Tlb
module Imu = Rvi_core.Imu
module Frame_table = Rvi_core.Frame_table
module Policy = Rvi_core.Policy
module Prefetch = Rvi_core.Prefetch
module Mapped_object = Rvi_core.Mapped_object
module Vport = Rvi_coproc.Vport

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* {1 Imu_regs} *)

let test_ar_encoding () =
  let ar = Imu_regs.ar_encode ~obj_id:0xAB ~addr:0x123456 in
  checki "obj" 0xAB (Imu_regs.ar_obj ar);
  checki "addr" 0x123456 (Imu_regs.ar_addr ar);
  Alcotest.check_raises "obj range"
    (Invalid_argument "Imu_regs.ar_encode: bad object id") (fun () ->
      ignore (Imu_regs.ar_encode ~obj_id:256 ~addr:0))

let prop_ar_roundtrip =
  QCheck.Test.make ~name:"AR encode/decode roundtrip" ~count:300
    QCheck.(pair (int_bound 255) (int_bound 0xFF_FFFF))
    (fun (obj_id, addr) ->
      let ar = Imu_regs.ar_encode ~obj_id ~addr in
      Imu_regs.ar_obj ar = obj_id && Imu_regs.ar_addr ar = addr)

let test_sr_bits () =
  let sr = Imu_regs.sr_encode ~fault:true ~fin:false ~busy:true ~params_done:false in
  checkb "fault" true (Imu_regs.test sr Imu_regs.sr_fault);
  checkb "fin" false (Imu_regs.test sr Imu_regs.sr_fin);
  checkb "busy" true (Imu_regs.test sr Imu_regs.sr_busy);
  checkb "params" false (Imu_regs.test sr Imu_regs.sr_params_done)

(* {1 Tlb} *)

let test_tlb_basic () =
  let tlb = Tlb.create ~entries:4 () in
  checki "entries" 4 (Tlb.entries tlb);
  checkb "initially empty" true (Tlb.lookup tlb ~obj_id:0 ~vpn:0 = Tlb.Miss);
  Tlb.insert tlb ~slot:1 ~obj_id:3 ~vpn:7 ~ppn:5 ~stamp:0;
  (match Tlb.lookup tlb ~obj_id:3 ~vpn:7 with
  | Tlb.Hit 1 -> ()
  | Tlb.Hit _ | Tlb.Miss -> Alcotest.fail "lookup miss");
  checkb "ppn reverse lookup" true (Tlb.slot_of_ppn tlb ~ppn:5 = Some 1);
  checkb "free slot exists" true (Tlb.free_slot tlb = Some 0);
  checki "valid count" 1 (Tlb.valid_count tlb)

let test_tlb_translate_metadata () =
  let tlb = Tlb.create ~entries:2 () in
  Tlb.insert tlb ~slot:0 ~obj_id:1 ~vpn:2 ~ppn:3 ~stamp:0;
  let e = Tlb.get tlb ~slot:0 in
  checkb "clean after insert" true ((not e.Tlb.dirty) && not e.Tlb.referenced);
  checkb "read hit" true (Tlb.translate tlb ~obj_id:1 ~vpn:2 ~stamp:11 ~wr:false = Some 3);
  checkb "referenced set, clean kept" true (e.Tlb.referenced && not e.Tlb.dirty);
  checki "stamp" 11 e.Tlb.last_access;
  checkb "write hit" true (Tlb.translate tlb ~obj_id:1 ~vpn:2 ~stamp:12 ~wr:true = Some 3);
  checkb "dirty after write" true e.Tlb.dirty;
  checkb "miss" true (Tlb.translate tlb ~obj_id:1 ~vpn:9 ~stamp:13 ~wr:false = None);
  checki "hit count" 2 (Rvi_sim.Stats.get (Tlb.stats tlb) "hits");
  checki "miss count" 1 (Rvi_sim.Stats.get (Tlb.stats tlb) "misses");
  Tlb.clear_referenced tlb ~slot:0;
  checkb "ref cleared" true (not e.Tlb.referenced)

let test_tlb_invalidate () =
  let tlb = Tlb.create ~entries:3 () in
  Tlb.insert tlb ~slot:0 ~obj_id:0 ~vpn:0 ~ppn:0 ~stamp:0;
  Tlb.insert tlb ~slot:1 ~obj_id:0 ~vpn:1 ~ppn:1 ~stamp:0;
  Tlb.invalidate tlb ~slot:0;
  checkb "gone" true (Tlb.lookup tlb ~obj_id:0 ~vpn:0 = Tlb.Miss);
  Tlb.invalidate_all tlb;
  checki "all invalid" 0 (Tlb.valid_count tlb);
  checki "invalidations counted" 2
    (Rvi_sim.Stats.get (Tlb.stats tlb) "invalidations")

let prop_tlb_dirty_only_on_write =
  QCheck.Test.make ~name:"tlb dirty bit set exactly by writes" ~count:200
    QCheck.(list bool)
    (fun writes ->
      let tlb = Tlb.create ~entries:1 () in
      Tlb.insert tlb ~slot:0 ~obj_id:0 ~vpn:0 ~ppn:0 ~stamp:0;
      List.iteri
        (fun i wr -> ignore (Tlb.translate tlb ~obj_id:0 ~vpn:0 ~stamp:i ~wr))
        writes;
      (Tlb.get tlb ~slot:0).Tlb.dirty = List.exists (fun w -> w) writes)

(* {1 Frame_table} *)

let test_frame_table () =
  let ft = Frame_table.create ~frames:4 in
  checki "frames" 4 (Frame_table.frames ft);
  checkb "all free" true (Frame_table.free_frame ft = Some 0);
  Frame_table.set_param ft ~frame:0;
  checkb "param tracked" true (Frame_table.param_frame ft = Some 0);
  Frame_table.hold ft ~frame:1 ~obj_id:5 ~vpn:2 ~loaded_at:100;
  checkb "find" true (Frame_table.find ft ~obj_id:5 ~vpn:2 = Some 1);
  checki "held" 1 (Frame_table.held_count ft);
  checkb "resident" true (Frame_table.resident ft = [ (1, 5, 2) ]);
  Alcotest.check_raises "double hold"
    (Invalid_argument "Frame_table.hold: frame not free") (fun () ->
      Frame_table.hold ft ~frame:1 ~obj_id:0 ~vpn:0 ~loaded_at:0);
  Alcotest.check_raises "duplicate pair"
    (Invalid_argument "Frame_table.hold: object 5 page 2 already in frame 1")
    (fun () -> Frame_table.hold ft ~frame:2 ~obj_id:5 ~vpn:2 ~loaded_at:0);
  Frame_table.release ft ~frame:1;
  checkb "released" true (Frame_table.find ft ~obj_id:5 ~vpn:2 = None);
  Frame_table.release_all ft;
  checkb "param cleared too" true (Frame_table.param_frame ft = None)

let prop_frame_conservation =
  QCheck.Test.make ~name:"frame table conserves holds minus releases"
    ~count:200
    QCheck.(list (pair (int_bound 7) bool))
    (fun ops ->
      let ft = Frame_table.create ~frames:8 in
      let model = Array.make 8 false in
      List.iteri
        (fun i (frame, hold) ->
          if hold then begin
            if not model.(frame) then begin
              (* unique (obj, vpn) per op index *)
              Frame_table.hold ft ~frame ~obj_id:(i mod 200) ~vpn:i ~loaded_at:i;
              model.(frame) <- true
            end
          end
          else begin
            Frame_table.release ft ~frame;
            model.(frame) <- false
          end)
        ops;
      Frame_table.held_count ft
      = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 model)

(* {1 Policy} *)

let cand ~frame ~loaded_at ~last_access ~referenced ~dirty =
  { Policy.frame; page = (0, frame); loaded_at; last_access; referenced; dirty }

let test_policy_fifo () =
  let p = Policy.fifo () in
  let cands =
    [|
      cand ~frame:0 ~loaded_at:30 ~last_access:1 ~referenced:true ~dirty:false;
      cand ~frame:1 ~loaded_at:10 ~last_access:99 ~referenced:true ~dirty:true;
      cand ~frame:2 ~loaded_at:20 ~last_access:5 ~referenced:false ~dirty:false;
    |]
  in
  checki "oldest load wins" 1 (Policy.choose p ~clear_ref:ignore cands)

let test_policy_lru () =
  let p = Policy.lru () in
  let cands =
    [|
      cand ~frame:0 ~loaded_at:1 ~last_access:50 ~referenced:false ~dirty:false;
      cand ~frame:1 ~loaded_at:2 ~last_access:40 ~referenced:false ~dirty:false;
      cand ~frame:2 ~loaded_at:3 ~last_access:60 ~referenced:false ~dirty:false;
    |]
  in
  checki "least recently used wins" 1 (Policy.choose p ~clear_ref:ignore cands);
  (* A page never touched since load falls back to its load stamp. *)
  let cands2 =
    [|
      cand ~frame:0 ~loaded_at:70 ~last_access:0 ~referenced:false ~dirty:false;
      cand ~frame:1 ~loaded_at:2 ~last_access:40 ~referenced:false ~dirty:false;
    |]
  in
  checki "untouched page uses load stamp" 1 (Policy.choose p ~clear_ref:ignore cands2)

let test_policy_random_deterministic () =
  let cands =
    Array.init 6 (fun frame ->
        cand ~frame ~loaded_at:frame ~last_access:frame ~referenced:false
          ~dirty:false)
  in
  let run seed =
    let p = Policy.random ~seed in
    List.init 10 (fun _ -> Policy.choose p ~clear_ref:ignore cands)
  in
  Alcotest.(check (list int)) "same seed, same picks" (run 7) (run 7);
  checkb "in range" true (List.for_all (fun f -> f >= 0 && f < 6) (run 11))

let test_policy_second_chance () =
  let p = Policy.second_chance () in
  let cleared = ref [] in
  let cands =
    [|
      cand ~frame:0 ~loaded_at:0 ~last_access:0 ~referenced:true ~dirty:false;
      cand ~frame:1 ~loaded_at:0 ~last_access:0 ~referenced:false ~dirty:false;
    |]
  in
  let victim =
    Policy.choose p ~clear_ref:(fun f -> cleared := f :: !cleared) cands
  in
  checki "skips referenced" 1 victim;
  Alcotest.(check (list int)) "stripped the skipped frame" [ 0 ] !cleared;
  (* All referenced: one full revolution clears, then the scan start wins. *)
  let p2 = Policy.second_chance () in
  let all_ref =
    Array.init 3 (fun frame ->
        cand ~frame ~loaded_at:0 ~last_access:0 ~referenced:true ~dirty:false)
  in
  let v2 = Policy.choose p2 ~clear_ref:ignore all_ref in
  checkb "picks something" true (v2 >= 0 && v2 < 3)

let test_policy_names () =
  checkb "all named" true
    (List.for_all
       (fun n -> Policy.of_name n <> None)
       Policy.all_names);
  checkb "unknown" true (Policy.of_name "belady" = None);
  Alcotest.check_raises "empty candidates"
    (Invalid_argument "Policy.choose: no candidates") (fun () ->
      ignore (Policy.choose (Policy.fifo ()) ~clear_ref:ignore [||]))

let prop_policy_victim_valid =
  QCheck.Test.make ~name:"every policy picks one of the candidates" ~count:200
    QCheck.(pair (int_bound 3) (int_range 1 8))
    (fun (which, n) ->
      let p =
        match which with
        | 0 -> Policy.fifo ()
        | 1 -> Policy.lru ()
        | 2 -> Policy.random ~seed:n
        | _ -> Policy.second_chance ()
      in
      let cands =
        Array.init n (fun frame ->
            cand ~frame:(frame * 2) ~loaded_at:frame
              ~last_access:(n - frame) ~referenced:(frame mod 2 = 0)
              ~dirty:false)
      in
      let v = Policy.choose p ~clear_ref:ignore cands in
      Array.exists (fun c -> c.Policy.frame = v) cands)

(* {1 Prefetch} *)

let test_prefetch () =
  Alcotest.(check (list int)) "off" []
    (Prefetch.predict Prefetch.off ~stream:true ~vpn:0 ~last_vpn:9);
  let p = Prefetch.sequential ~depth:2 in
  Alcotest.(check (list int)) "two ahead" [ 4; 5 ]
    (Prefetch.predict p ~stream:true ~vpn:3 ~last_vpn:9);
  Alcotest.(check (list int)) "clipped at object end" [ 9 ]
    (Prefetch.predict p ~stream:true ~vpn:8 ~last_vpn:9);
  Alcotest.(check (list int)) "nothing past the end" []
    (Prefetch.predict p ~stream:true ~vpn:9 ~last_vpn:9);
  Alcotest.(check (list int)) "needs the stream hint" []
    (Prefetch.predict p ~stream:false ~vpn:3 ~last_vpn:9);
  Alcotest.check_raises "bad depth"
    (Invalid_argument "Prefetch.sequential: depth < 1") (fun () ->
      ignore (Prefetch.sequential ~depth:0))

(* {1 Mapped_object} *)

let geom = Rvi_mem.Page.geometry ~page_size:2048 ~n_pages:8

let test_mapped_object () =
  let engine = Engine.create () in
  let kernel =
    Rvi_os.Kernel.create ~engine
      ~cost:(Rvi_os.Cost_model.default ~cpu_freq_hz:133_000_000)
      ~sdram_bytes:(64 * 1024) ()
  in
  let buf = Rvi_os.Uspace.alloc kernel 5000 in
  let obj = Mapped_object.make ~id:3 ~buf ~dir:Mapped_object.Inout () in
  checki "size" 5000 (Mapped_object.size obj);
  checki "span" 3 (Mapped_object.page_span obj geom);
  checki "full page" 2048 (Mapped_object.bytes_on_page obj geom ~vpn:1);
  checki "tail page" (5000 - 4096) (Mapped_object.bytes_on_page obj geom ~vpn:2);
  checki "beyond" 0 (Mapped_object.bytes_on_page obj geom ~vpn:3);
  checki "user offset" 4096 (Mapped_object.user_offset obj geom ~vpn:2);
  Alcotest.check_raises "id 255 reserved"
    (Invalid_argument "Mapped_object.make: identifier out of [0, 254]")
    (fun () -> ignore (Mapped_object.make ~id:255 ~buf ~dir:Mapped_object.In ()))

(* {1 IMU at cycle level} *)

type rig = {
  engine : Engine.t;
  clock : Clock.t;
  dpram : Rvi_mem.Dpram.t;
  port : Cp_port.t;
  imu : Imu.t;
  vport : Vport.t;
  irqs : int ref;
}

(* A bare IMU on a 1 MHz clock with a Vport for hand-driven accesses. *)
let make_rig ?(config = Imu.default_config) () =
  let engine = Engine.create () in
  let dpram = Rvi_mem.Dpram.create geom in
  let port = Cp_port.create () in
  let irqs = ref 0 in
  let imu = Imu.create ~config ~port ~dpram ~raise_irq:(fun () -> incr irqs) () in
  let clock = Clock.create engine ~name:"c" ~freq_hz:1_000_000 in
  let vport = Vport.create port in
  Clock.add clock (Imu.component imu);
  Clock.add clock (Vport.sync_component vport);
  { engine; clock; dpram; port; imu; vport; irqs }

(* Run the rig for [n] edges, calling [driver] as a coprocessor compute
   function on each edge. *)
let run_rig rig ~edges driver =
  let cycle = ref 0 in
  Clock.add rig.clock
    (Clock.component ~name:"driver"
       ~compute:(fun () ->
         Vport.sample rig.vport;
         driver !cycle;
         incr cycle)
       ~commit:(fun () -> Vport.commit rig.vport) ());
  Clock.start rig.clock;
  Engine.run_until rig.engine (Simtime.of_us edges);
  Clock.stop rig.clock

let test_imu_hit_latency () =
  let rig = make_rig () in
  Tlb.insert (Imu.tlb rig.imu) ~slot:0 ~obj_id:4 ~vpn:0 ~ppn:2 ~stamp:0;
  Rvi_mem.Dpram.write rig.dpram ~width:32 (2 * 2048) 0xDEAD;
  let issued_at = ref (-1) and data_at = ref (-1) and got = ref 0 in
  run_rig rig ~edges:20 (fun cycle ->
      if cycle = 2 then begin
        issued_at := cycle;
        Vport.issue rig.vport ~region:4 ~addr:0 ~wr:false ~width:Cp_port.W32
          ~data:0
      end;
      if Vport.ready rig.vport then begin
        data_at := cycle;
        got := Vport.data rig.vport
      end);
  checki "data value" 0xDEAD !got;
  (* Pulse committed on edge 2; the IMU latches on 3, searches on 4-5 and
     performs the access on 6 — CP_TLBHIT on the 4th edge after the request,
     as in Figure 7. The synchroniser hands the data to the coprocessor one
     edge later. *)
  checki "coprocessor-visible latency" 5 (!data_at - !issued_at);
  checki "no faults" 0 !(rig.irqs);
  checki "one access" 1 (Rvi_sim.Stats.get (Imu.stats rig.imu) "accesses");
  checki "one read" 1 (Rvi_sim.Stats.get (Imu.stats rig.imu) "reads")

let test_imu_pipelined_latency () =
  let rig = make_rig ~config:Imu.pipelined_config () in
  Tlb.insert (Imu.tlb rig.imu) ~slot:0 ~obj_id:1 ~vpn:0 ~ppn:1 ~stamp:0;
  let issued_at = ref (-1) and data_at = ref (-1) in
  run_rig rig ~edges:20 (fun cycle ->
      if cycle = 2 then begin
        issued_at := cycle;
        Vport.issue rig.vport ~region:1 ~addr:8 ~wr:false ~width:Cp_port.W32
          ~data:0
      end;
      if Vport.ready rig.vport then data_at := cycle);
  checkb "pipelined is faster" true (!data_at - !issued_at < 4);
  checkb "completed" true (!data_at > 0)

let test_imu_write_sets_dirty () =
  let rig = make_rig () in
  let tlb = Imu.tlb rig.imu in
  Tlb.insert tlb ~slot:0 ~obj_id:0 ~vpn:1 ~ppn:3 ~stamp:0;
  let done_ = ref false in
  run_rig rig ~edges:20 (fun cycle ->
      if cycle = 1 then
        Vport.issue rig.vport ~region:0 ~addr:(2048 + 12) ~wr:true
          ~width:Cp_port.W16 ~data:0xBEEF;
      if Vport.ready rig.vport then done_ := true);
  checkb "write completed" true !done_;
  checki "memory updated" 0xBEEF
    (Rvi_mem.Dpram.read rig.dpram ~width:16 ((3 * 2048) + 12));
  checkb "dirty bit set by hardware" true (Tlb.get tlb ~slot:0).Tlb.dirty

let test_imu_fault_and_resume () =
  let rig = make_rig () in
  let data_at = ref (-1) and got = ref 0 in
  run_rig rig ~edges:40 (fun cycle ->
      if cycle = 1 then
        Vport.issue rig.vport ~region:9 ~addr:4096 ~wr:false ~width:Cp_port.W32
          ~data:0;
      (* Play the VIM: service the fault at cycle 15. *)
      if cycle = 15 then begin
        checki "exactly one interrupt" 1 !(rig.irqs);
        checkb "fault identifies the page" true (Imu.fault rig.imu = Some (9, 2));
        checki "AR has the virtual address"
          (Imu_regs.ar_encode ~obj_id:9 ~addr:4096)
          (Imu.read_ar rig.imu);
        checkb "SR fault bit" true
          (Imu_regs.test (Imu.read_sr rig.imu) Imu_regs.sr_fault);
        Rvi_mem.Dpram.write rig.dpram ~width:32 (5 * 2048) 0x5A5A;
        Tlb.insert (Imu.tlb rig.imu) ~slot:0 ~obj_id:9 ~vpn:2 ~ppn:5 ~stamp:0;
        Imu.write_cr rig.imu Imu_regs.cr_resume
      end;
      if Vport.ready rig.vport then begin
        data_at := cycle;
        got := Vport.data rig.vport
      end);
  checkb "completed after resume" true (!data_at > 15);
  checki "correct data after resume" 0x5A5A !got;
  let stalls = Rvi_sim.Stats.get (Imu.stats rig.imu) "stall_cycles" in
  checkb "stalled for the service window" true (stalls >= 10 && stalls <= 14)

let test_imu_double_fault_detected () =
  let rig = make_rig () in
  let boom = ref false in
  (try
     run_rig rig ~edges:40 (fun cycle ->
         if cycle = 1 then
           Vport.issue rig.vport ~region:3 ~addr:0 ~wr:false ~width:Cp_port.W32
             ~data:0;
         (* Resume without installing any translation: an OS bug the
            hardware must flag rather than loop on. *)
         if cycle = 10 then Imu.write_cr rig.imu Imu_regs.cr_resume)
   with Failure msg ->
     boom := true;
     checkb "diagnostic names the page" true (String.length msg > 0));
  checkb "double fault detected" true !boom

let test_imu_param_page_and_start () =
  let rig = make_rig () in
  Imu.set_param_page rig.imu (Some 0);
  Rvi_mem.Dpram.cpu_write32 rig.dpram 0 777;
  Imu.write_cr rig.imu Imu_regs.cr_start;
  Tlb.insert (Imu.tlb rig.imu) ~slot:0 ~obj_id:0 ~vpn:0 ~ppn:1 ~stamp:0;
  let started_at = ref (-1) and param = ref (-1) and phase = ref 0 in
  run_rig rig ~edges:40 (fun cycle ->
      if Vport.start_seen rig.vport && !started_at < 0 then begin
        started_at := cycle;
        Vport.issue rig.vport ~region:Cp_port.param_obj ~addr:0 ~wr:false
          ~width:Cp_port.W32 ~data:0;
        phase := 1
      end
      else if Vport.ready rig.vport && !phase = 1 then begin
        param := Vport.data rig.vport;
        checkb "params not consumed during param reads" true
          (not (Imu.params_done rig.imu));
        Vport.issue rig.vport ~region:0 ~addr:0 ~wr:false ~width:Cp_port.W32
          ~data:0;
        phase := 2
      end
      else if Vport.ready rig.vport && !phase = 2 then phase := 3;
      ignore cycle);
  checkb "start pulse delivered" true (!started_at >= 0);
  checki "parameter read through the param page" 777 !param;
  checki "finished both accesses" 3 !phase;
  checkb "params consumed after first data access" true (Imu.params_done rig.imu);
  checki "param reads counted" 1
    (Rvi_sim.Stats.get (Imu.stats rig.imu) "param_reads")

let test_imu_fin_edge () =
  let rig = make_rig () in
  run_rig rig ~edges:20 (fun cycle ->
      if cycle = 3 then Vport.finish rig.vport);
  checkb "fin latched" true (Imu.finished rig.imu);
  checki "fin raised one interrupt" 1 !(rig.irqs);
  (* Reset must not re-trigger on the still-held CP_FIN level. *)
  Imu.write_cr rig.imu Imu_regs.cr_reset;
  checkb "cleared by reset" true (not (Imu.finished rig.imu));
  Clock.start rig.clock;
  Engine.run_until rig.engine (Simtime.of_us 30);
  Clock.stop rig.clock;
  checkb "held level not re-latched" true (not (Imu.finished rig.imu));
  checki "no extra interrupt" 1 !(rig.irqs)

let test_imu_alignment_guard () =
  let rig = make_rig () in
  Tlb.insert (Imu.tlb rig.imu) ~slot:0 ~obj_id:0 ~vpn:0 ~ppn:0 ~stamp:0;
  let boom = ref false in
  (try
     run_rig rig ~edges:20 (fun cycle ->
         if cycle = 1 then
           (* A 32-bit access straddling the page boundary. *)
           Vport.issue rig.vport ~region:0 ~addr:2046 ~wr:false
             ~width:Cp_port.W32 ~data:0)
   with Failure _ -> boom := true);
  checkb "page-crossing access rejected" true !boom

let suite =
  [
    Alcotest.test_case "imu_regs/ar" `Quick test_ar_encoding;
    QCheck_alcotest.to_alcotest prop_ar_roundtrip;
    Alcotest.test_case "imu_regs/sr" `Quick test_sr_bits;
    Alcotest.test_case "tlb/basic" `Quick test_tlb_basic;
    Alcotest.test_case "tlb/translate-metadata" `Quick test_tlb_translate_metadata;
    Alcotest.test_case "tlb/invalidate" `Quick test_tlb_invalidate;
    QCheck_alcotest.to_alcotest prop_tlb_dirty_only_on_write;
    Alcotest.test_case "frame_table/basic" `Quick test_frame_table;
    QCheck_alcotest.to_alcotest prop_frame_conservation;
    Alcotest.test_case "policy/fifo" `Quick test_policy_fifo;
    Alcotest.test_case "policy/lru" `Quick test_policy_lru;
    Alcotest.test_case "policy/random-deterministic" `Quick
      test_policy_random_deterministic;
    Alcotest.test_case "policy/second-chance" `Quick test_policy_second_chance;
    Alcotest.test_case "policy/names" `Quick test_policy_names;
    QCheck_alcotest.to_alcotest prop_policy_victim_valid;
    Alcotest.test_case "prefetch/predict" `Quick test_prefetch;
    Alcotest.test_case "mapped_object/pages" `Quick test_mapped_object;
    Alcotest.test_case "imu/hit-latency-fig7" `Quick test_imu_hit_latency;
    Alcotest.test_case "imu/pipelined-latency" `Quick test_imu_pipelined_latency;
    Alcotest.test_case "imu/write-dirty" `Quick test_imu_write_sets_dirty;
    Alcotest.test_case "imu/fault-resume" `Quick test_imu_fault_and_resume;
    Alcotest.test_case "imu/double-fault" `Quick test_imu_double_fault_detected;
    Alcotest.test_case "imu/param-page-start" `Quick test_imu_param_page_and_start;
    Alcotest.test_case "imu/fin-edge" `Quick test_imu_fin_edge;
    Alcotest.test_case "imu/alignment" `Quick test_imu_alignment_guard;
  ]

(* {1 VHDL generation} *)

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_vhdl_package () =
  let d =
    Rvi_core.Vhdl_gen.make ~name:"idea_core" ~device:Rvi_fpga.Device.epxa1 ()
  in
  let pkg = Rvi_core.Vhdl_gen.package_vhdl d in
  checkb "package name" true (contains_sub pkg "package idea_core_vif_pkg is");
  checkb "page offset bits (2 KB pages)" true
    (contains_sub pkg "PAGE_OFFS_W : natural := 11");
  checkb "ppn bits (8 pages)" true (contains_sub pkg "PPN_W       : natural := 3");
  checkb "tlb depth" true (contains_sub pkg "TLB_ENTRIES : natural := 8");
  checkb "param object id" true (contains_sub pkg "PARAM_OBJ   : natural := 255")

let test_vhdl_entities () =
  let d =
    Rvi_core.Vhdl_gen.make ~name:"fir8" ~device:Rvi_fpga.Device.epxa4
      ~imu_config:Rvi_core.Imu.pipelined_config ~data_width:16 ()
  in
  let coproc = Rvi_core.Vhdl_gen.coproc_entity_vhdl d in
  checkb "portable entity" true (contains_sub coproc "entity fir8 is");
  checkb "coproc drives cp_access" true
    (contains_sub coproc "cp_access : out std_logic");
  checkb "coproc samples cp_tlbhit" true
    (contains_sub coproc "cp_tlbhit : in  std_logic");
  checkb "no physical signal on the portable side" true
    (not (contains_sub coproc "dp_addr"));
  let imu = Rvi_core.Vhdl_gen.imu_entity_vhdl d in
  checkb "imu mirrors direction" true
    (contains_sub imu "cp_access : in  std_logic");
  checkb "imu exposes dual-port pins" true (contains_sub imu "dp_addr   : out");
  checkb "imu has registers" true
    (contains_sub imu "bus_ar" && contains_sub imu "bus_sr"
    && contains_sub imu "bus_cr");
  checkb "imu interrupts" true (contains_sub imu "int_pld");
  let top = Rvi_core.Vhdl_gen.toplevel_vhdl d in
  checkb "top instantiates both" true
    (contains_sub top "entity work.fir8" && contains_sub top "entity work.fir8_imu")

let test_vhdl_emit_all () =
  let d = Rvi_core.Vhdl_gen.make ~name:"x1" ~device:Rvi_fpga.Device.epxa10 () in
  let files = Rvi_core.Vhdl_gen.emit_all d in
  checki "four units" 4 (List.length files);
  checkb "compile order starts with the package" true
    (fst (List.hd files) = "x1_vif_pkg.vhd");
  (* EPXA10: 64 pages of 2 KB -> 6 PPN bits, 17 DP address bits. *)
  checkb "device-specific widths" true
    (contains_sub (List.assoc "x1_vif_pkg.vhd" files) "PPN_W       : natural := 6")

let test_vhdl_validation () =
  Alcotest.check_raises "bad identifier"
    (Invalid_argument "Vhdl_gen.make: name must be a VHDL identifier")
    (fun () ->
      ignore (Rvi_core.Vhdl_gen.make ~name:"2fast" ~device:Rvi_fpga.Device.epxa1 ()));
  Alcotest.check_raises "bad width"
    (Invalid_argument "Vhdl_gen.make: data_width must be 8, 16 or 32")
    (fun () ->
      ignore
        (Rvi_core.Vhdl_gen.make ~name:"ok" ~device:Rvi_fpga.Device.epxa1
           ~data_width:24 ()))

let vhdl_suite =
  [
    Alcotest.test_case "vhdl/package" `Quick test_vhdl_package;
    Alcotest.test_case "vhdl/entities" `Quick test_vhdl_entities;
    Alcotest.test_case "vhdl/emit-all" `Quick test_vhdl_emit_all;
    Alcotest.test_case "vhdl/validation" `Quick test_vhdl_validation;
  ]

let suite = suite @ vhdl_suite

(* {1 C stub generation} *)

let test_stub_header () =
  let h = Rvi_core.Stub_gen.header Rvi_core.Stub_gen.vecadd_spec in
  checkb "guard" true (contains_sub h "#ifndef ADD_VECTORS_VIF_H");
  checkb "object macros" true
    (contains_sub h "#define ADD_VECTORS_OBJ_A 0"
    && contains_sub h "#define ADD_VECTORS_OBJ_C 2");
  checkb "prototype mirrors Figure 6" true
    (contains_sub h
       "int add_vectors_run(uint32_t *a, size_t a_len, uint32_t *b, size_t \
        b_len, uint32_t *c, size_t c_len, int32_t size)")

let test_stub_source () =
  let c = Rvi_core.Stub_gen.source Rvi_core.Stub_gen.adpcm_spec in
  checkb "maps input with stream hint" true
    (contains_sub c "FPGA_MAP_OBJECT(ADPCMDECODE_OBJ_INPUT, input");
  checkb "stream flag" true (contains_sub c "FPGA_OBJ_IN | FPGA_OBJ_STREAM");
  checkb "output direction" true (contains_sub c "FPGA_OBJ_OUT");
  checkb "executes with the scalar" true
    (contains_sub c "FPGA_EXECUTE(1, (int32_t)input_bytes)")

let test_stub_validation () =
  Alcotest.check_raises "bad app"
    (Invalid_argument "Stub_gen.make: bad app name") (fun () ->
      ignore (Rvi_core.Stub_gen.make ~app:"9lives" ~objects:[] ~params:[]));
  Alcotest.check_raises "duplicate ids"
    (Invalid_argument "Stub_gen.make: duplicate object identifiers") (fun () ->
      ignore
        (Rvi_core.Stub_gen.make ~app:"x"
           ~objects:
             [
               {
                 Rvi_core.Stub_gen.id = 1;
                 c_name = "p";
                 ty = Rvi_core.Stub_gen.U8;
                 dir = Rvi_core.Mapped_object.In;
                 stream = false;
               };
               {
                 Rvi_core.Stub_gen.id = 1;
                 c_name = "q";
                 ty = Rvi_core.Stub_gen.U8;
                 dir = Rvi_core.Mapped_object.Out;
                 stream = false;
               };
             ]
           ~params:[]))

let test_stub_canned () =
  List.iter
    (fun spec ->
      let files = Rvi_core.Stub_gen.emit_all spec in
      checki "two files" 2 (List.length files))
    Rvi_core.Stub_gen.[ vecadd_spec; adpcm_spec; idea_spec; fir_spec ]

let stub_suite =
  [
    Alcotest.test_case "stubs/header" `Quick test_stub_header;
    Alcotest.test_case "stubs/source" `Quick test_stub_source;
    Alcotest.test_case "stubs/validation" `Quick test_stub_validation;
    Alcotest.test_case "stubs/canned" `Quick test_stub_canned;
  ]

let suite = suite @ stub_suite

(* {1 TLB organisations} *)

let test_tlb_organizations () =
  let dm = Tlb.create ~organization:Tlb.Direct_mapped ~entries:8 () in
  checki "direct-mapped has one way" 1
    (List.length (Tlb.way_slots dm ~obj_id:1 ~vpn:5));
  let sa = Tlb.create ~organization:(Tlb.Set_associative 2) ~entries:8 () in
  checki "2-way has two slots" 2 (List.length (Tlb.way_slots sa ~obj_id:1 ~vpn:5));
  let fa = Tlb.create ~entries:8 () in
  checki "cam allows all slots" 8 (List.length (Tlb.way_slots fa ~obj_id:1 ~vpn:5));
  (* A translation inserted in its way is found; one placed elsewhere is
     invisible to the indexed lookup, like real hardware. *)
  let slot = List.hd (Tlb.way_slots dm ~obj_id:3 ~vpn:9) in
  Tlb.insert dm ~slot ~obj_id:3 ~vpn:9 ~ppn:1 ~stamp:0;
  checkb "hit in its way" true (Tlb.lookup dm ~obj_id:3 ~vpn:9 = Tlb.Hit slot);
  checkb "free way slot reported" true
    (Tlb.free_way_slot dm ~obj_id:3 ~vpn:9 = None);
  Alcotest.check_raises "ways must divide entries"
    (Invalid_argument "Tlb.create: ways must divide the entry count")
    (fun () -> ignore (Tlb.create ~organization:(Tlb.Set_associative 3) ~entries:8 ()))

let test_tlb_org_end_to_end () =
  (* Full runs stay bit-exact under every organisation; cheaper ones just
     take conflict refill faults. *)
  let input = Rvi_harness.Workload.adpcm_stream ~seed:60 ~bytes:4096 in
  List.iter
    (fun org ->
      let cfg =
        { (Rvi_harness.Config.default ()) with
          Rvi_harness.Config.tlb_organization = org }
      in
      let row = Rvi_harness.Runner.adpcm_vim cfg ~input in
      checkb (Tlb.organization_name org) true (Rvi_harness.Report.ok row))
    [ Tlb.Fully_associative; Tlb.Set_associative 2; Tlb.Direct_mapped ]

let org_suite =
  [
    Alcotest.test_case "tlb/organizations" `Quick test_tlb_organizations;
    Alcotest.test_case "tlb/organizations-e2e" `Quick test_tlb_org_end_to_end;
  ]

let suite = suite @ org_suite

(* {1 VHDL testbench generation from a golden capture} *)

let test_vhdl_testbench () =
  (* Record a tiny verified run, then emit the testbench from it. *)
  let p =
    Rvi_harness.Platform.create (Rvi_harness.Config.default ())
      ~bitstream:Rvi_harness.Calibration.vecadd_bitstream
      ~make:Rvi_coproc.Vecadd.Virtual.create
  in
  let wave = Rvi_harness.Platform.trace p in
  let a, b = Rvi_harness.Workload.vectors ~seed:9 ~n:4 in
  let to_bytes words =
    let bts = Bytes.create (4 * Array.length words) in
    Array.iteri
      (fun i w ->
        for k = 0 to 3 do
          Bytes.set bts ((4 * i) + k) (Char.chr ((w lsr (8 * k)) land 0xFF))
        done)
      words;
    bts
  in
  let buf_a = Rvi_harness.Platform.alloc_bytes p (to_bytes a) in
  let buf_b = Rvi_harness.Platform.alloc_bytes p (to_bytes b) in
  let buf_c = Rvi_harness.Platform.alloc p 16 in
  let ok = function Ok () -> () | Error _ -> Alcotest.fail "setup" in
  ok (Rvi_core.Api.fpga_load p.Rvi_harness.Platform.api
        Rvi_harness.Calibration.vecadd_bitstream);
  ok (Rvi_core.Api.fpga_map_object p.Rvi_harness.Platform.api ~id:0 ~buf:buf_a
        ~dir:Rvi_core.Mapped_object.In ());
  ok (Rvi_core.Api.fpga_map_object p.Rvi_harness.Platform.api ~id:1 ~buf:buf_b
        ~dir:Rvi_core.Mapped_object.In ());
  ok (Rvi_core.Api.fpga_map_object p.Rvi_harness.Platform.api ~id:2 ~buf:buf_c
        ~dir:Rvi_core.Mapped_object.Out ());
  ok (Rvi_core.Api.fpga_execute p.Rvi_harness.Platform.api ~params:[ 4 ]);
  let d =
    Rvi_core.Vhdl_gen.make ~name:"vecadd" ~device:Rvi_fpga.Device.epxa1 ()
  in
  let tb = Rvi_core.Vhdl_gen.testbench_vhdl d ~wave in
  checkb "entity" true (contains_sub tb "entity vecadd_tb is");
  checkb "has stimulus" true (contains_sub tb "cp_access <= '1'");
  checkb "asserts responses" true (contains_sub tb "assert cp_tlbhit = '1'");
  checkb "asserts data" true (contains_sub tb "assert cp_din = std_logic_vector");
  checkb "one vector block per cycle" true
    (contains_sub tb
       (Printf.sprintf "-- cycle %d" (Rvi_hw.Wave.length wave - 1)));
  checkb "self-reporting" true (contains_sub tb "vectors passed")

let tb_suite =
  [ Alcotest.test_case "vhdl/testbench-from-capture" `Quick test_vhdl_testbench ]

let suite = suite @ tb_suite

(* {1 Pipelined IMU constructor} *)

let test_imu_pipelined_module () =
  let dpram =
    Rvi_mem.Dpram.create (Rvi_mem.Page.geometry ~page_size:2048 ~n_pages:8)
  in
  let port = Cp_port.create () in
  let imu =
    Rvi_core.Imu_pipelined.create ~tlb_entries:4 ~port ~dpram
      ~raise_irq:ignore ()
  in
  checki "zero lookup states" 0 (Imu.config imu).Imu.lookup_states;
  checki "tlb entries honoured" 4 (Tlb.entries (Imu.tlb imu))

let pipelined_suite =
  [ Alcotest.test_case "imu/pipelined-constructor" `Quick test_imu_pipelined_module ]

let suite = suite @ pipelined_suite

(* {1 More IMU edge cases} *)

let test_imu_reset_mid_fault () =
  let rig = make_rig () in
  run_rig rig ~edges:20 (fun cycle ->
      if cycle = 1 then
        Vport.issue rig.vport ~region:5 ~addr:0 ~wr:false ~width:Cp_port.W32
          ~data:0;
      (* Abort the whole execution instead of servicing the fault. *)
      if cycle = 10 then Imu.write_cr rig.imu Imu_regs.cr_reset);
  checkb "fault cleared by reset" true (Imu.fault rig.imu = None);
  checkb "SR clean" true
    (not (Imu_regs.test (Imu.read_sr rig.imu) Imu_regs.sr_fault));
  checkb "not busy" true
    (not (Imu_regs.test (Imu.read_sr rig.imu) Imu_regs.sr_busy))

let test_rtl_double_fault_guard () =
  (* The RTL refinement keeps the same integration tripwire as the
     behavioural machine. *)
  let engine = Engine.create () in
  let dpram = Rvi_mem.Dpram.create geom in
  let port = Cp_port.create () in
  let imu = Rvi_core.Imu_rtl.create ~port ~dpram ~raise_irq:ignore () in
  let clock = Clock.create engine ~name:"c" ~freq_hz:1_000_000 in
  let vport = Vport.create port in
  Clock.add clock (Rvi_core.Imu_rtl.component imu);
  Clock.add clock (Vport.sync_component vport);
  let cycle = ref 0 in
  Clock.add clock
    (Clock.component ~name:"driver"
       ~compute:(fun () ->
         Vport.sample vport;
         if !cycle = 1 then
           Vport.issue vport ~region:3 ~addr:0 ~wr:false ~width:Cp_port.W32
             ~data:0;
         if !cycle = 10 then
           Rvi_core.Imu_rtl.write_cr imu Imu_regs.cr_resume;
         incr cycle)
       ~commit:(fun () -> Vport.commit vport) ());
  Clock.start clock;
  let boom = ref false in
  (try Engine.run_until engine (Simtime.of_us 30)
   with Failure _ -> boom := true);
  checkb "rtl double fault detected" true !boom

let test_cp_port_reset () =
  let p = Cp_port.create () in
  p.Cp_port.cp_access <- true;
  p.Cp_port.cp_fin <- true;
  p.Cp_port.cp_obj <- 9;
  Cp_port.reset p;
  checkb "all deasserted" true
    ((not p.Cp_port.cp_access) && (not p.Cp_port.cp_fin) && p.Cp_port.cp_obj = 0)

let edge_suite =
  [
    Alcotest.test_case "imu/reset-mid-fault" `Quick test_imu_reset_mid_fault;
    Alcotest.test_case "rtl/double-fault-guard" `Quick test_rtl_double_fault_guard;
    Alcotest.test_case "cp_port/reset" `Quick test_cp_port_reset;
  ]

let suite = suite @ edge_suite

(* {1 TLB page-run fast path}

   [translate] keeps an MRU memo so page runs (consecutive accesses to
   the same page — the dominant coprocessor pattern) skip the CAM scan.
   The memo must be pure acceleration: against an arbitrary interleaving
   of inserts, invalidations and translates, every translate must return
   exactly what the scan-only [lookup] — which never reads or writes the
   memo — reports just before it, and the hit/miss counters must advance
   accordingly. *)

let prop_tlb_memo_matches_scan =
  (* op encoding: 0-5 translate, 6-7 insert, 8 invalidate slot,
     9 invalidate_all — translate-heavy so page runs actually form *)
  let org_of = function
    | 0 -> Tlb.Fully_associative
    | 1 -> Tlb.Direct_mapped
    | _ -> Tlb.Set_associative 2
  in
  QCheck.Test.make
    ~name:"tlb translate (memoised) agrees with scan-only lookup under \
           random op interleavings"
    ~count:60
    QCheck.(
      triple (int_bound 2) (int_bound 3)
        (list_of_size Gen.(int_range 20 120) (int_bound 0x3FFFFFFF)))
    (fun (orgsel, entsel, ops) ->
      let entries = 4 lsl entsel in
      let tlb = Tlb.create ~organization:(org_of orgsel) ~entries () in
      let stamp = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          incr stamp;
          let kind = op mod 10 in
          let obj_id = op lsr 4 land 3 in
          let vpn = op lsr 6 land 7 in
          if kind <= 5 then begin
            let scan = Tlb.lookup tlb ~obj_id ~vpn in
            let hits0 = Rvi_sim.Stats.get (Tlb.stats tlb) "hits" in
            let misses0 = Rvi_sim.Stats.get (Tlb.stats tlb) "misses" in
            let got =
              Tlb.translate tlb ~obj_id ~vpn ~stamp:!stamp ~wr:(op land 1 = 1)
            in
            let hits1 = Rvi_sim.Stats.get (Tlb.stats tlb) "hits" in
            let misses1 = Rvi_sim.Stats.get (Tlb.stats tlb) "misses" in
            match scan with
            | Tlb.Hit slot ->
              let e = Tlb.get tlb ~slot in
              if
                got <> Some e.Tlb.ppn
                || hits1 <> hits0 + 1
                || misses1 <> misses0
                || e.Tlb.last_access <> !stamp
              then ok := false
            | Tlb.Miss ->
              if got <> None || misses1 <> misses0 + 1 || hits1 <> hits0 then
                ok := false
          end
          else if kind <= 7 then begin
            let slot =
              match Tlb.free_way_slot tlb ~obj_id ~vpn with
              | Some s -> s
              | None -> (
                match Tlb.way_slots tlb ~obj_id ~vpn with
                | s :: _ -> s
                | [] -> 0)
            in
            Tlb.insert tlb ~slot ~obj_id ~vpn ~ppn:(op lsr 9 land 7)
              ~stamp:!stamp
          end
          else if kind = 8 then
            Tlb.invalidate tlb ~slot:(op lsr 4 mod entries)
          else Tlb.invalidate_all tlb)
        ops;
      !ok)

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_tlb_memo_matches_scan ]

(* {1 Replacement-stream independence (injection must not perturb victims)}

   [Policy.random] must draw victims from a PRNG stream statistically
   independent of every other consumer of the campaign seed — the fault
   injector seeds [Prng.create ~seed] directly, so a random policy doing
   the same would pick victims in lockstep with the fault schedule, and
   enabling --inject would silently shift replacement behaviour relative
   to a differently-seeded injector. *)

let test_policy_random_derived_stream () =
  let cands =
    Array.init 8 (fun frame ->
        cand ~frame ~loaded_at:frame ~last_access:frame ~referenced:false
          ~dirty:false)
  in
  List.iter
    (fun seed ->
      let p = Policy.random ~seed in
      let victims =
        List.init 50 (fun _ -> Policy.choose p ~clear_ref:ignore cands)
      in
      (* The injector's stream head over the same draws. *)
      let raw = Rvi_sim.Prng.create ~seed in
      let raw_picks = List.init 50 (fun _ -> Rvi_sim.Prng.int raw 8) in
      checkb
        (Printf.sprintf "decorrelated from Prng.create (seed %d)" seed)
        true
        (victims <> raw_picks))
    [ 0; 1; 42; 1234 ];
  (* Pin the exact derivation for the default campaign seed: the victim
     stream is the [index = 0x9EC7] member of the seed's derived family.
     Any accidental change to the derivation (back to [Prng.create], or a
     different index) shows up here before it shows up as a silently
     different campaign. *)
  let p = Policy.random ~seed:42 in
  let victims = List.init 12 (fun _ -> Policy.choose p ~clear_ref:ignore cands) in
  let expected =
    let q = Rvi_sim.Prng.derive ~seed:42 ~index:0x9EC7 in
    List.init 12 (fun _ -> Rvi_sim.Prng.int q 8)
  in
  Alcotest.(check (list int)) "seed-42 victim stream pinned" expected victims

(* {1 Frame wiring (pinned frames survive replacement)} *)

let prop_wired_frames_never_victims =
  (* Fill the dual-port frame table, declare a parameter page, wire a
     random subset of held frames, then build eviction candidates the way
     the VIM does — resident frames minus wired ones — and let every
     policy choose victims repeatedly. No choice may ever name a wired
     frame or the parameter page. *)
  QCheck.Test.make
    ~name:"pinned frames survive FIFO/LRU/random/second-chance eviction"
    ~count:100
    QCheck.(triple (int_range 3 16) (int_bound 0xFFFF) (int_bound 3))
    (fun (frames, pinmask, which) ->
      let ft = Frame_table.create ~frames in
      Frame_table.set_param ft ~frame:0;
      for f = 1 to frames - 1 do
        Frame_table.hold ft ~frame:f ~obj_id:0 ~vpn:f ~loaded_at:f
      done;
      let wired =
        List.filter (fun f -> pinmask land (1 lsl f) <> 0)
          (List.init (frames - 1) (fun i -> i + 1))
      in
      List.iter (fun frame -> Frame_table.wire ft ~frame) wired;
      let candidates =
        List.filter_map
          (fun (frame, obj_id, vpn) ->
            if Frame_table.wired ft ~frame then None
            else
              Some
                (cand ~frame ~loaded_at:frame ~last_access:(vpn + obj_id)
                   ~referenced:(frame mod 2 = 0) ~dirty:false))
          (Frame_table.resident ft)
        |> Array.of_list
      in
      let policy () =
        match which with
        | 0 -> Policy.fifo ()
        | 1 -> Policy.lru ()
        | 2 -> Policy.random ~seed:pinmask
        | _ -> Policy.second_chance ()
      in
      (* With every held frame wired there is nothing to evict — the VIM
         reports No_frames rather than consulting the policy. *)
      if Array.length candidates = 0 then List.length wired = frames - 1
      else begin
        let p = policy () in
        List.for_all
          (fun _ ->
            let v = Policy.choose p ~clear_ref:ignore candidates in
            (not (Frame_table.wired ft ~frame:v)) && v <> 0)
          (List.init 32 Fun.id)
      end)

let test_frame_wire_basics () =
  let ft = Frame_table.create ~frames:4 in
  Alcotest.check_raises "cannot wire a free frame"
    (Invalid_argument "Frame_table.wire: cannot wire a free frame") (fun () ->
      Frame_table.wire ft ~frame:1);
  Frame_table.set_param ft ~frame:0;
  checkb "param page wired by construction" true (Frame_table.wired ft ~frame:0);
  Frame_table.hold ft ~frame:1 ~obj_id:3 ~vpn:9 ~loaded_at:5;
  checkb "held frame starts unwired" false (Frame_table.wired ft ~frame:1);
  Frame_table.wire ft ~frame:1;
  checkb "wired after wire" true (Frame_table.wired ft ~frame:1);
  Frame_table.unwire ft ~frame:1;
  checkb "unwired again" false (Frame_table.wired ft ~frame:1);
  Frame_table.wire ft ~frame:1;
  Frame_table.release ft ~frame:1;
  checkb "release clears wiring" false (Frame_table.wired ft ~frame:1);
  Frame_table.hold ft ~frame:1 ~obj_id:3 ~vpn:9 ~loaded_at:6;
  Frame_table.wire ft ~frame:1;
  Frame_table.release_all ft;
  checkb "release_all clears wiring" false (Frame_table.wired ft ~frame:1)

let wiring_suite =
  [
    Alcotest.test_case "policy/random-derived-stream" `Quick
      test_policy_random_derived_stream;
    Alcotest.test_case "frame_table/wire-basics" `Quick test_frame_wire_basics;
    QCheck_alcotest.to_alcotest prop_wired_frames_never_victims;
  ]

let suite = suite @ wiring_suite
